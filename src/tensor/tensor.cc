#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/string_util.h"

namespace deeplens {

namespace {
int64_t Volume(const std::vector<int64_t>& shape) {
  int64_t v = 1;
  for (int64_t d : shape) v *= d;
  return v;
}
}  // namespace

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)),
      size_(Volume(shape_)),
      data_(std::make_shared<std::vector<float>>(
          static_cast<size_t>(size_), 0.0f)) {}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)),
      size_(Volume(shape_)),
      data_(std::make_shared<std::vector<float>>(std::move(data))) {
  // Callers are expected to pass matching sizes; enforce to avoid UB.
  if (static_cast<int64_t>(data_->size()) != size_) {
    data_->resize(static_cast<size_t>(size_), 0.0f);
  }
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  std::fill(t.data_->begin(), t.data_->end(), value);
  return t;
}

Tensor Tensor::FromVector(std::vector<float> values) {
  const int64_t n = static_cast<int64_t>(values.size());
  return Tensor({n}, std::move(values));
}

Result<Tensor> Tensor::Reshape(std::vector<int64_t> new_shape) const {
  if (Volume(new_shape) != size_) {
    return Status::InvalidArgument(
        StringFormat("reshape volume mismatch: %lld vs %lld",
                     static_cast<long long>(Volume(new_shape)),
                     static_cast<long long>(size_)));
  }
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.size_ = size_;
  out.data_ = data_;
  return out;
}

Tensor Tensor::Clone() const {
  Tensor out;
  out.shape_ = shape_;
  out.size_ = size_;
  out.data_ = data_ ? std::make_shared<std::vector<float>>(*data_)
                    : nullptr;
  return out;
}

bool Tensor::AllClose(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  for (int64_t i = 0; i < size_; ++i) {
    if (std::fabs((*this)[i] - other[i]) > atol) return false;
  }
  return true;
}

std::string Tensor::ShapeString() const {
  std::string out = "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(shape_[i]);
  }
  out += "]";
  return out;
}

size_t Tensor::Offset(std::initializer_list<int64_t> idx) const {
  size_t off = 0;
  size_t d = 0;
  for (int64_t i : idx) {
    off = off * static_cast<size_t>(shape_[d]) + static_cast<size_t>(i);
    ++d;
  }
  return off;
}

Image::Image(int width, int height, int channels)
    : width_(width),
      height_(height),
      channels_(channels),
      data_(static_cast<size_t>(width) * height * channels, 0) {}

Image Image::Crop(int x0, int y0, int x1, int y1) const {
  x0 = std::clamp(x0, 0, width_);
  x1 = std::clamp(x1, x0, width_);
  y0 = std::clamp(y0, 0, height_);
  y1 = std::clamp(y1, y0, height_);
  Image out(x1 - x0, y1 - y0, channels_);
  const size_t row_bytes = static_cast<size_t>(out.width_) * channels_;
  for (int y = y0; y < y1; ++y) {
    const uint8_t* src =
        data_.data() +
        (static_cast<size_t>(y) * width_ + x0) * channels_;
    uint8_t* dst = out.data_.data() +
                   static_cast<size_t>(y - y0) * row_bytes;
    std::memcpy(dst, src, row_bytes);
  }
  return out;
}

Image Image::Resize(int new_width, int new_height) const {
  if (new_width <= 0 || new_height <= 0 || empty()) {
    return Image(std::max(new_width, 0), std::max(new_height, 0), channels_);
  }
  Image out(new_width, new_height, channels_);
  for (int y = 0; y < new_height; ++y) {
    const int sy = static_cast<int>(
        (static_cast<int64_t>(y) * height_) / new_height);
    for (int x = 0; x < new_width; ++x) {
      const int sx = static_cast<int>(
          (static_cast<int64_t>(x) * width_) / new_width);
      for (int c = 0; c < channels_; ++c) {
        out.At(x, y, c) = At(sx, sy, c);
      }
    }
  }
  return out;
}

Tensor Image::ToTensorCHW() const {
  Tensor t({channels_, height_, width_});
  float* dst = t.data();
  for (int c = 0; c < channels_; ++c) {
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) {
        *dst++ = static_cast<float>(At(x, y, c)) / 255.0f;
      }
    }
  }
  return t;
}

Image Image::FromTensorCHW(const Tensor& t) {
  if (t.rank() != 3) return Image();
  const int c = static_cast<int>(t.dim(0));
  const int h = static_cast<int>(t.dim(1));
  const int w = static_cast<int>(t.dim(2));
  Image img(w, h, c);
  for (int ci = 0; ci < c; ++ci) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const float v = t.At(ci, y, x) * 255.0f;
        img.At(x, y, ci) = static_cast<uint8_t>(
            std::clamp(v, 0.0f, 255.0f));
      }
    }
  }
  return img;
}

double Image::MeanAbsDiff(const Image& a, const Image& b) {
  if (!a.SameShape(b) || a.empty()) return 255.0;
  uint64_t total = 0;
  const size_t n = a.data_.size();
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<uint64_t>(
        std::abs(static_cast<int>(a.data_[i]) - static_cast<int>(b.data_[i])));
  }
  return static_cast<double>(total) / static_cast<double>(n);
}

}  // namespace deeplens
