// Dense tensors. `Tensor` is a contiguous float32 n-d array (used for
// features and neural-network activations); `Image` is a uint8 H×W×C
// raster (used for frames and patches).
#pragma once

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/status.h"

namespace deeplens {

/// \brief Contiguous row-major float32 tensor with shared ownership of the
/// underlying buffer. Copies are shallow; use Clone() for a deep copy.
class Tensor {
 public:
  /// Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  /// Wraps existing data; data.size() must equal the shape volume.
  Tensor(std::vector<int64_t> shape, std::vector<float> data);

  static Tensor Zeros(std::vector<int64_t> shape) {
    return Tensor(std::move(shape));
  }
  static Tensor Full(std::vector<int64_t> shape, float value);
  /// 1-d tensor from values.
  static Tensor FromVector(std::vector<float> values);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(size_t i) const { return shape_[i]; }
  size_t rank() const { return shape_.size(); }
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  float* data() { return data_ ? data_->data() : nullptr; }
  const float* data() const { return data_ ? data_->data() : nullptr; }

  float& operator[](int64_t i) { return (*data_)[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const {
    return (*data_)[static_cast<size_t>(i)];
  }

  /// Element access for rank-2/3/4 tensors (debug-checked in tests).
  float& At(int64_t i, int64_t j) { return (*data_)[Offset({i, j})]; }
  float At(int64_t i, int64_t j) const { return (*data_)[Offset({i, j})]; }
  float& At(int64_t i, int64_t j, int64_t k) {
    return (*data_)[Offset({i, j, k})];
  }
  float At(int64_t i, int64_t j, int64_t k) const {
    return (*data_)[Offset({i, j, k})];
  }
  float& At(int64_t i, int64_t j, int64_t k, int64_t l) {
    return (*data_)[Offset({i, j, k, l})];
  }
  float At(int64_t i, int64_t j, int64_t k, int64_t l) const {
    return (*data_)[Offset({i, j, k, l})];
  }

  /// Returns a tensor sharing this buffer with a new shape of equal volume.
  Result<Tensor> Reshape(std::vector<int64_t> new_shape) const;

  /// Deep copy.
  Tensor Clone() const;

  /// True if shapes are equal and all elements are within `atol`.
  bool AllClose(const Tensor& other, float atol = 1e-5f) const;

  std::string ShapeString() const;

 private:
  size_t Offset(std::initializer_list<int64_t> idx) const;

  std::vector<int64_t> shape_;
  int64_t size_ = 0;
  std::shared_ptr<std::vector<float>> data_;
};

/// \brief Interleaved uint8 raster image, row-major H×W×C. This is the
/// canonical representation of video frames and pixel patches.
class Image {
 public:
  Image() = default;
  /// Allocates a zeroed image.
  Image(int width, int height, int channels);

  int width() const { return width_; }
  int height() const { return height_; }
  int channels() const { return channels_; }
  size_t size_bytes() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }
  std::vector<uint8_t>& bytes() { return data_; }
  const std::vector<uint8_t>& bytes() const { return data_; }

  uint8_t& At(int x, int y, int c) {
    return data_[(static_cast<size_t>(y) * width_ + x) * channels_ + c];
  }
  uint8_t At(int x, int y, int c) const {
    return data_[(static_cast<size_t>(y) * width_ + x) * channels_ + c];
  }

  /// Copies the rectangle [x0,x1)×[y0,y1) into a new image. Coordinates are
  /// clamped to bounds.
  Image Crop(int x0, int y0, int x1, int y1) const;

  /// Nearest-neighbour resize.
  Image Resize(int new_width, int new_height) const;

  /// Converts to a float tensor of shape {C, H, W}, scaled to [0, 1].
  Tensor ToTensorCHW() const;
  /// Inverse of ToTensorCHW (values clamped to [0, 255]).
  static Image FromTensorCHW(const Tensor& t);

  /// Mean absolute per-pixel difference; used to quantify codec loss.
  static double MeanAbsDiff(const Image& a, const Image& b);

  bool SameShape(const Image& other) const {
    return width_ == other.width_ && height_ == other.height_ &&
           channels_ == other.channels_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::vector<uint8_t> data_;
};

}  // namespace deeplens
