// Numeric kernels over Tensor / raw float spans. Each kernel comes in a
// scalar and a vectorized variant; the vectorized variants are written so
// the compiler auto-vectorizes them (manual 8-lane unrolling, no aliasing),
// standing in for the paper's AVX execution path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace deeplens {
namespace ops {

// --- Elementwise -------------------------------------------------------

/// out[i] = a[i] + b[i].
void AddScalarKernel(const float* a, const float* b, float* out, size_t n);
void AddVectorKernel(const float* a, const float* b, float* out, size_t n);

/// out[i] = a[i] * b[i].
void MulScalarKernel(const float* a, const float* b, float* out, size_t n);
void MulVectorKernel(const float* a, const float* b, float* out, size_t n);

/// In-place max(x, 0).
void ReluScalarKernel(float* x, size_t n);
void ReluVectorKernel(float* x, size_t n);

/// out[i] = a[i] * scale + bias.
void ScaleBiasScalarKernel(const float* a, float scale, float bias,
                           float* out, size_t n);
void ScaleBiasVectorKernel(const float* a, float scale, float bias,
                           float* out, size_t n);

// --- Reductions --------------------------------------------------------

float SumScalar(const float* a, size_t n);
float SumVector(const float* a, size_t n);
float DotScalar(const float* a, const float* b, size_t n);
float DotVector(const float* a, const float* b, size_t n);
float MaxScalar(const float* a, size_t n);

// --- Distances (used by Ball-Tree / similarity joins) ------------------

/// Squared Euclidean distance.
float L2SquaredScalar(const float* a, const float* b, size_t n);
float L2SquaredVector(const float* a, const float* b, size_t n);
/// L1 (Manhattan) distance.
float L1Scalar(const float* a, const float* b, size_t n);
/// Cosine similarity in [-1, 1]; returns 0 for zero vectors.
float CosineSimilarity(const float* a, const float* b, size_t n);

// --- Matmul ------------------------------------------------------------

/// C(m×n) = A(m×k) · B(k×n), all row-major. Scalar triple loop.
void MatmulScalar(const float* a, const float* b, float* c, size_t m,
                  size_t k, size_t n);
/// Cache-blocked, unrolled variant (the "AVX" path).
void MatmulVector(const float* a, const float* b, float* c, size_t m,
                  size_t k, size_t n);

// --- Tensor-level conveniences -----------------------------------------

Result<Tensor> Add(const Tensor& a, const Tensor& b);
Result<Tensor> Mul(const Tensor& a, const Tensor& b);
Tensor Relu(const Tensor& a);
Result<Tensor> Matmul(const Tensor& a, const Tensor& b);
float L2Distance(const Tensor& a, const Tensor& b);

/// Softmax over the last axis of a rank-1 or rank-2 tensor.
Tensor Softmax(const Tensor& a);

/// Index of the maximum element of a rank-1 tensor (-1 if empty).
int64_t Argmax(const Tensor& a);

}  // namespace ops
}  // namespace deeplens
