#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace deeplens {
namespace ops {

// The *VectorKernel variants use 8-lane manual unrolling with restrict-
// qualified pointers so GCC/Clang emit SIMD. They stand in for the paper's
// hand-written AVX kernels.

void AddScalarKernel(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void AddVectorKernel(const float* a, const float* b, float* out, size_t n) {
  const float* __restrict__ pa = a;
  const float* __restrict__ pb = b;
  float* __restrict__ po = out;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    po[i + 0] = pa[i + 0] + pb[i + 0];
    po[i + 1] = pa[i + 1] + pb[i + 1];
    po[i + 2] = pa[i + 2] + pb[i + 2];
    po[i + 3] = pa[i + 3] + pb[i + 3];
    po[i + 4] = pa[i + 4] + pb[i + 4];
    po[i + 5] = pa[i + 5] + pb[i + 5];
    po[i + 6] = pa[i + 6] + pb[i + 6];
    po[i + 7] = pa[i + 7] + pb[i + 7];
  }
  for (; i < n; ++i) po[i] = pa[i] + pb[i];
}

void MulScalarKernel(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void MulVectorKernel(const float* a, const float* b, float* out, size_t n) {
  const float* __restrict__ pa = a;
  const float* __restrict__ pb = b;
  float* __restrict__ po = out;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int k = 0; k < 8; ++k) po[i + k] = pa[i + k] * pb[i + k];
  }
  for (; i < n; ++i) po[i] = pa[i] * pb[i];
}

void ReluScalarKernel(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (x[i] < 0.0f) x[i] = 0.0f;
  }
}

void ReluVectorKernel(float* x, size_t n) {
  float* __restrict__ px = x;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int k = 0; k < 8; ++k) {
      px[i + k] = px[i + k] > 0.0f ? px[i + k] : 0.0f;
    }
  }
  for (; i < n; ++i) px[i] = px[i] > 0.0f ? px[i] : 0.0f;
}

void ScaleBiasScalarKernel(const float* a, float scale, float bias,
                           float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] * scale + bias;
}

void ScaleBiasVectorKernel(const float* a, float scale, float bias,
                           float* out, size_t n) {
  const float* __restrict__ pa = a;
  float* __restrict__ po = out;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int k = 0; k < 8; ++k) po[i + k] = pa[i + k] * scale + bias;
  }
  for (; i < n; ++i) po[i] = pa[i] * scale + bias;
}

float SumScalar(const float* a, size_t n) {
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += a[i];
  return s;
}

float SumVector(const float* a, size_t n) {
  float acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int k = 0; k < 8; ++k) acc[k] += a[i + k];
  }
  float s = 0.0f;
  for (int k = 0; k < 8; ++k) s += acc[k];
  for (; i < n; ++i) s += a[i];
  return s;
}

float DotScalar(const float* a, const float* b, size_t n) {
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

float DotVector(const float* a, const float* b, size_t n) {
  float acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int k = 0; k < 8; ++k) acc[k] += a[i + k] * b[i + k];
  }
  float s = 0.0f;
  for (int k = 0; k < 8; ++k) s += acc[k];
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

float MaxScalar(const float* a, size_t n) {
  if (n == 0) return 0.0f;
  float m = a[0];
  for (size_t i = 1; i < n; ++i) m = std::max(m, a[i]);
  return m;
}

float L2SquaredScalar(const float* a, const float* b, size_t n) {
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

float L2SquaredVector(const float* a, const float* b, size_t n) {
  float acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int k = 0; k < 8; ++k) {
      const float d = a[i + k] - b[i + k];
      acc[k] += d * d;
    }
  }
  float s = 0.0f;
  for (int k = 0; k < 8; ++k) s += acc[k];
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

float L1Scalar(const float* a, const float* b, size_t n) {
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += std::fabs(a[i] - b[i]);
  return s;
}

float CosineSimilarity(const float* a, const float* b, size_t n) {
  const float dot = DotVector(a, b, n);
  const float na = DotVector(a, a, n);
  const float nb = DotVector(b, b, n);
  if (na <= 0.0f || nb <= 0.0f) return 0.0f;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void MatmulScalar(const float* a, const float* b, float* c, size_t m,
                  size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float s = 0.0f;
      for (size_t p = 0; p < k; ++p) s += a[i * k + p] * b[p * n + j];
      c[i * n + j] = s;
    }
  }
}

void MatmulVector(const float* a, const float* b, float* c, size_t m,
                  size_t k, size_t n) {
  // ikj loop order keeps B row access sequential so the inner loop is a
  // vectorizable axpy; this is the classic cache-friendly ordering.
  std::memset(c, 0, m * n * sizeof(float));
  for (size_t i = 0; i < m; ++i) {
    float* __restrict__ crow = c + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      const float* __restrict__ brow = b + p * n;
      size_t j = 0;
      for (; j + 8 <= n; j += 8) {
        for (int u = 0; u < 8; ++u) crow[j + u] += av * brow[j + u];
      }
      for (; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Result<Tensor> Add(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return Status::InvalidArgument("Add: shape mismatch " + a.ShapeString() +
                                   " vs " + b.ShapeString());
  }
  Tensor out(a.shape());
  AddVectorKernel(a.data(), b.data(), out.data(),
                  static_cast<size_t>(a.size()));
  return out;
}

Result<Tensor> Mul(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return Status::InvalidArgument("Mul: shape mismatch " + a.ShapeString() +
                                   " vs " + b.ShapeString());
  }
  Tensor out(a.shape());
  MulVectorKernel(a.data(), b.data(), out.data(),
                  static_cast<size_t>(a.size()));
  return out;
}

Tensor Relu(const Tensor& a) {
  Tensor out = a.Clone();
  ReluVectorKernel(out.data(), static_cast<size_t>(out.size()));
  return out;
}

Result<Tensor> Matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    return Status::InvalidArgument("Matmul: incompatible shapes " +
                                   a.ShapeString() + " x " + b.ShapeString());
  }
  Tensor out({a.dim(0), b.dim(1)});
  MatmulVector(a.data(), b.data(), out.data(),
               static_cast<size_t>(a.dim(0)), static_cast<size_t>(a.dim(1)),
               static_cast<size_t>(b.dim(1)));
  return out;
}

float L2Distance(const Tensor& a, const Tensor& b) {
  if (a.size() != b.size()) return std::numeric_limits<float>::infinity();
  return std::sqrt(
      L2SquaredVector(a.data(), b.data(), static_cast<size_t>(a.size())));
}

Tensor Softmax(const Tensor& a) {
  Tensor out = a.Clone();
  const int64_t cols = a.rank() == 2 ? a.dim(1) : a.size();
  const int64_t rows = a.rank() == 2 ? a.dim(0) : 1;
  for (int64_t r = 0; r < rows; ++r) {
    float* row = out.data() + r * cols;
    const float mx = MaxScalar(row, static_cast<size_t>(cols));
    float denom = 0.0f;
    for (int64_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    if (denom > 0.0f) {
      for (int64_t j = 0; j < cols; ++j) row[j] /= denom;
    }
  }
  return out;
}

int64_t Argmax(const Tensor& a) {
  if (a.empty()) return -1;
  int64_t best = 0;
  for (int64_t i = 1; i < a.size(); ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

}  // namespace ops
}  // namespace deeplens
