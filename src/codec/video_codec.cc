#include "codec/video_codec.h"

#include <cstring>

namespace deeplens {
namespace codec {

namespace {
constexpr uint32_t kDlv1Magic = 0xD1F00D01;
constexpr uint8_t kIFrame = 0;
constexpr uint8_t kPFrame = 1;
}  // namespace

VideoEncoder::VideoEncoder(VideoCodecOptions options) : options_(options) {
  if (options_.gop_size < 1) options_.gop_size = 1;
}

Status VideoEncoder::AddFrame(const Image& frame) {
  if (frame.empty()) {
    return Status::InvalidArgument("cannot encode an empty frame");
  }
  if (num_frames_ == 0) {
    width_ = frame.width();
    height_ = frame.height();
    channels_ = frame.channels();
  } else if (frame.width() != width_ || frame.height() != height_ ||
             frame.channels() != channels_) {
    return Status::InvalidArgument(
        "all frames in a DLV1 stream must share dimensions");
  }

  const bool intra =
      (num_frames_ % options_.gop_size == 0) || prev_reconstructed_.empty();
  ByteBuffer frame_buf;
  if (intra) {
    frame_buf.PutU8(kIFrame);
    EncodePlanesInto(frame, options_.quality, &frame_buf);
    // The decoder predicts P-frames from *reconstructed* pixels, so the
    // encoder must track the same reconstruction to avoid drift.
    ByteReader r(frame_buf.AsSlice());
    (void)r.GetU8();
    auto rec = DecodePlanes(&r, width_, height_, channels_, options_.quality);
    prev_reconstructed_ = std::move(rec).value();
  } else {
    frame_buf.PutU8(kPFrame);
    EncodeResidualInto(frame, prev_reconstructed_, options_.quality,
                       &frame_buf);
    ByteReader r(frame_buf.AsSlice());
    (void)r.GetU8();
    auto rec =
        DecodeResidualOnto(&r, prev_reconstructed_, options_.quality);
    prev_reconstructed_ = std::move(rec).value();
  }
  body_.PutVarint(frame_buf.size());
  body_.PutBytes(frame_buf.data().data(), frame_buf.size());
  ++num_frames_;
  return Status::OK();
}

std::vector<uint8_t> VideoEncoder::Finish() {
  ByteBuffer out;
  out.PutU32(kDlv1Magic);
  out.PutU32(static_cast<uint32_t>(width_));
  out.PutU32(static_cast<uint32_t>(height_));
  out.PutU8(static_cast<uint8_t>(channels_));
  out.PutU8(static_cast<uint8_t>(options_.quality));
  out.PutU32(static_cast<uint32_t>(options_.gop_size));
  out.PutU32(static_cast<uint32_t>(num_frames_));
  out.PutBytes(body_.data().data(), body_.size());
  return out.Release();
}

VideoDecoder::VideoDecoder(Slice stream)
    : stream_(stream), reader_(stream) {}

Status VideoDecoder::Init() {
  DL_ASSIGN_OR_RETURN(uint32_t magic, reader_.GetU32());
  if (magic != kDlv1Magic) return Status::Corruption("not a DLV1 stream");
  DL_ASSIGN_OR_RETURN(uint32_t w, reader_.GetU32());
  DL_ASSIGN_OR_RETURN(uint32_t h, reader_.GetU32());
  DL_ASSIGN_OR_RETURN(uint8_t c, reader_.GetU8());
  DL_ASSIGN_OR_RETURN(uint8_t q, reader_.GetU8());
  if (q > 2) return Status::Corruption("bad quality byte");
  DL_ASSIGN_OR_RETURN(uint32_t gop, reader_.GetU32());
  DL_ASSIGN_OR_RETURN(uint32_t nframes, reader_.GetU32());
  // Header fields are untrusted bytes: bound them before anything is
  // sized off them. Each frame record carries at least a 4-byte length
  // prefix and a kind byte, so a genuine stream can't claim more frames
  // than remaining/5 — this also bounds DecodeVideo's reserve().
  DL_RETURN_NOT_OK(ValidateDecodedImageHeader(w, h, c));
  if (gop < 1) return Status::Corruption("bad DLV1 GOP size");
  if (nframes > reader_.remaining() / 5) {
    return Status::Corruption("DLV1 stream shorter than its frame count");
  }
  width_ = static_cast<int>(w);
  height_ = static_cast<int>(h);
  channels_ = static_cast<int>(c);
  options_.quality = static_cast<Quality>(q);
  options_.gop_size = static_cast<int>(gop);
  num_frames_ = static_cast<int>(nframes);
  initialized_ = true;
  return Status::OK();
}

Result<Image> VideoDecoder::NextFrame() {
  if (!initialized_) {
    return Status::Internal("VideoDecoder::Init() not called");
  }
  if (next_frame_ >= num_frames_) {
    return Status::OutOfRange("end of DLV1 stream");
  }
  DL_ASSIGN_OR_RETURN(Slice frame_bytes, reader_.GetLengthPrefixed());
  ByteReader fr(frame_bytes);
  DL_ASSIGN_OR_RETURN(uint8_t kind, fr.GetU8());
  if (kind == kIFrame) {
    DL_ASSIGN_OR_RETURN(
        Image img,
        DecodePlanes(&fr, width_, height_, channels_, options_.quality));
    prev_ = img;
    ++next_frame_;
    return img;
  }
  if (kind == kPFrame) {
    if (prev_.empty()) {
      return Status::Corruption("P-frame with no reference frame");
    }
    DL_ASSIGN_OR_RETURN(Image img,
                        DecodeResidualOnto(&fr, prev_, options_.quality));
    prev_ = img;
    ++next_frame_;
    return img;
  }
  return Status::Corruption("unknown frame kind");
}

Result<Image> VideoDecoder::SeekDecode(int target) {
  if (target < next_frame_) {
    return Status::InvalidArgument(
        "DLV1 streams decode forward only; re-open to rewind");
  }
  Image img;
  while (next_frame_ <= target) {
    DL_ASSIGN_OR_RETURN(img, NextFrame());
  }
  return img;
}

Result<std::vector<uint8_t>> EncodeVideo(const std::vector<Image>& frames,
                                         VideoCodecOptions options) {
  VideoEncoder enc(options);
  for (const Image& f : frames) {
    DL_RETURN_NOT_OK(enc.AddFrame(f));
  }
  return enc.Finish();
}

Result<std::vector<Image>> DecodeVideo(const Slice& stream) {
  VideoDecoder dec(stream);
  DL_RETURN_NOT_OK(dec.Init());
  std::vector<Image> frames;
  frames.reserve(static_cast<size_t>(dec.num_frames()));
  for (int i = 0; i < dec.num_frames(); ++i) {
    DL_ASSIGN_OR_RETURN(Image f, dec.NextFrame());
    frames.push_back(std::move(f));
  }
  return frames;
}

}  // namespace codec
}  // namespace deeplens
