// Entropy coding for quantized DCT blocks: zigzag reordering followed by a
// zero-run-length + zigzag-varint code. Smooth synthetic content produces
// long zero runs, which is where the 20–50× compression comes from.
#pragma once

#include <cstdint>

#include "codec/dct.h"
#include "common/bytes.h"

namespace deeplens {
namespace codec {

/// Zigzag scan order for an 8×8 block (maps block index → scan position).
const int* ZigzagOrder();

/// Encodes 64 quantized coefficients into `out` (appends).
void EncodeBlock(const int32_t* qcoeffs, ByteBuffer* out);

/// Decodes one block from `reader` into `qcoeffs` (64 entries).
Status DecodeBlock(ByteReader* reader, int32_t* qcoeffs);

}  // namespace codec
}  // namespace deeplens
