// Quantization tables for the DCT codecs. Quality maps to a scale applied
// to a JPEG-like base table: higher quality → finer quantization → larger
// files and less loss. These three levels are the paper's High/Medium/Low
// encodings (Figure 2).
#pragma once

#include <cstdint>

#include "codec/dct.h"

namespace deeplens {
namespace codec {

/// Lossy-encoding quality levels (paper Figure 2: High / Medium / Low).
enum class Quality : uint8_t { kHigh = 0, kMedium = 1, kLow = 2 };

const char* QualityName(Quality q);

/// Returns the 64-entry quantization table for a quality level. Entries
/// are >= 1.
const float* QuantTable(Quality q);

/// Quantizes DCT coefficients: out[i] = round(in[i] / table[i]).
void QuantizeBlock(const float* coeffs, Quality q, int32_t* out);

/// Dequantizes: out[i] = in[i] * table[i].
void DequantizeBlock(const int32_t* qcoeffs, Quality q, float* out);

}  // namespace codec
}  // namespace deeplens
