#include "codec/dct.h"

#include <cmath>
#include <cstring>

namespace deeplens {
namespace codec {

namespace {

// Precomputed cosine basis: kCos[u][x] = c(u) * cos((2x+1)u*pi/16) where
// c(0) = sqrt(1/8), c(u>0) = sqrt(2/8). Orthonormal so the inverse is the
// transpose.
struct DctBasis {
  float m[kBlockSize][kBlockSize];
  DctBasis() {
    const double pi = 3.14159265358979323846;
    for (int u = 0; u < kBlockSize; ++u) {
      const double cu = u == 0 ? std::sqrt(1.0 / kBlockSize)
                               : std::sqrt(2.0 / kBlockSize);
      for (int x = 0; x < kBlockSize; ++x) {
        m[u][x] = static_cast<float>(
            cu * std::cos((2 * x + 1) * u * pi / (2 * kBlockSize)));
      }
    }
  }
};

const DctBasis& Basis() {
  static const DctBasis basis;
  return basis;
}

}  // namespace

void ForwardDct8x8(const float* in, float* out) {
  const DctBasis& b = Basis();
  float tmp[kBlockArea];
  // Rows: tmp[y][u] = sum_x in[y][x] * basis[u][x]
  for (int y = 0; y < kBlockSize; ++y) {
    for (int u = 0; u < kBlockSize; ++u) {
      float s = 0.0f;
      for (int x = 0; x < kBlockSize; ++x) {
        s += in[y * kBlockSize + x] * b.m[u][x];
      }
      tmp[y * kBlockSize + u] = s;
    }
  }
  // Columns: out[v][u] = sum_y tmp[y][u] * basis[v][y]
  float result[kBlockArea];
  for (int v = 0; v < kBlockSize; ++v) {
    for (int u = 0; u < kBlockSize; ++u) {
      float s = 0.0f;
      for (int y = 0; y < kBlockSize; ++y) {
        s += tmp[y * kBlockSize + u] * b.m[v][y];
      }
      result[v * kBlockSize + u] = s;
    }
  }
  std::memcpy(out, result, sizeof(result));
}

void InverseDct8x8(const float* in, float* out) {
  const DctBasis& b = Basis();
  float tmp[kBlockArea];
  // Columns first (transpose of forward).
  for (int y = 0; y < kBlockSize; ++y) {
    for (int u = 0; u < kBlockSize; ++u) {
      float s = 0.0f;
      for (int v = 0; v < kBlockSize; ++v) {
        s += in[v * kBlockSize + u] * b.m[v][y];
      }
      tmp[y * kBlockSize + u] = s;
    }
  }
  float result[kBlockArea];
  for (int y = 0; y < kBlockSize; ++y) {
    for (int x = 0; x < kBlockSize; ++x) {
      float s = 0.0f;
      for (int u = 0; u < kBlockSize; ++u) {
        s += tmp[y * kBlockSize + u] * b.m[u][x];
      }
      result[y * kBlockSize + x] = s;
    }
  }
  std::memcpy(out, result, sizeof(result));
}

}  // namespace codec
}  // namespace deeplens
