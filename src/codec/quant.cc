#include "codec/quant.h"

#include <cmath>

namespace deeplens {
namespace codec {

namespace {

// JPEG Annex K luminance table — the de-facto base for block-DCT codecs.
constexpr float kBaseTable[kBlockArea] = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

// Scale factors chosen so that High is near-lossless on smooth content,
// Medium shows mild loss, and Low visibly degrades small objects — the
// accuracy profile Figure 2 reports.
float QualityScale(Quality q) {
  switch (q) {
    case Quality::kHigh:
      return 0.25f;
    case Quality::kMedium:
      return 2.0f;
    case Quality::kLow:
      return 20.0f;
  }
  return 1.0f;
}

struct Tables {
  float t[3][kBlockArea];
  Tables() {
    for (int qi = 0; qi < 3; ++qi) {
      const float scale = QualityScale(static_cast<Quality>(qi));
      for (int i = 0; i < kBlockArea; ++i) {
        float v = kBaseTable[i] * scale;
        if (v < 1.0f) v = 1.0f;
        t[qi][i] = v;
      }
    }
  }
};

const Tables& AllTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

const char* QualityName(Quality q) {
  switch (q) {
    case Quality::kHigh:
      return "high";
    case Quality::kMedium:
      return "medium";
    case Quality::kLow:
      return "low";
  }
  return "?";
}

const float* QuantTable(Quality q) {
  return AllTables().t[static_cast<int>(q)];
}

void QuantizeBlock(const float* coeffs, Quality q, int32_t* out) {
  const float* table = QuantTable(q);
  for (int i = 0; i < kBlockArea; ++i) {
    out[i] = static_cast<int32_t>(std::lround(coeffs[i] / table[i]));
  }
}

void DequantizeBlock(const int32_t* qcoeffs, Quality q, float* out) {
  const float* table = QuantTable(q);
  for (int i = 0; i < kBlockArea; ++i) {
    out[i] = static_cast<float>(qcoeffs[i]) * table[i];
  }
}

}  // namespace codec
}  // namespace deeplens
