// LJPG: the DeepLens intra-frame (single image) lossy codec. JPEG-shaped:
// per-channel 8×8 block DCT → quantize → zigzag-RLE entropy code. Also
// provides lossless raw serialization for the RAW storage format.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/quant.h"
#include "common/bytes.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace deeplens {
namespace codec {

/// Encodes `img` at the given quality. Output layout:
///   magic(u16) w(u32) h(u32) c(u8) quality(u8) blocks...
std::vector<uint8_t> EncodeImage(const Image& img, Quality q);

/// Decodes an LJPG byte stream produced by EncodeImage.
Result<Image> DecodeImage(const Slice& bytes);

/// Lossless raw serialization: header + verbatim pixels.
std::vector<uint8_t> SerializeRawImage(const Image& img);
Result<Image> DeserializeRawImage(const Slice& bytes);

/// Encodes the *residual* between `img` and `pred` (P-frame block path used
/// by the video codec). Residuals are signed; the DCT operates on the
/// signed difference directly.
void EncodeResidualInto(const Image& img, const Image& pred, Quality q,
                        ByteBuffer* out);

/// Applies a residual stream on top of `pred`, producing the reconstructed
/// image. `pred`'s dimensions determine the output.
Result<Image> DecodeResidualOnto(ByteReader* reader, const Image& pred,
                                 Quality q);

/// Encodes image planes (no header) into `out`; used by both paths.
void EncodePlanesInto(const Image& img, Quality q, ByteBuffer* out);
Result<Image> DecodePlanes(ByteReader* reader, int width, int height,
                           int channels, Quality q);

/// Plausibility bounds on decoded image headers. The header fields come
/// from untrusted bytes (spill logs, fuzzed streams); the decoder must
/// reject implausible dimensions *before* allocating the frame, or a
/// 14-byte stream can demand a petabyte image.
inline constexpr uint32_t kMaxDecodeDimension = 1u << 15;  // 32768 px/side
inline constexpr uint32_t kMaxDecodeChannels = 4;

/// Returns Corruption unless (w, h, c) describes an image the decoders
/// are willing to allocate: every side ≤ kMaxDecodeDimension, channel
/// count in [1, kMaxDecodeChannels]. Zero-area images are allowed (their
/// allocation is empty).
Status ValidateDecodedImageHeader(uint32_t w, uint32_t h, uint32_t c);

}  // namespace codec
}  // namespace deeplens
