#include "codec/image_codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "codec/dct.h"
#include "codec/entropy.h"

namespace deeplens {
namespace codec {

namespace {

constexpr uint16_t kLjpgMagic = 0xD11E;
constexpr uint16_t kRawMagic = 0xD1AA;

// Extracts one 8×8 block of channel `c` starting at (bx*8, by*8), centered
// to [-128, 127]; out-of-bounds pixels replicate the edge.
void ExtractBlock(const Image& img, int c, int bx, int by, float* block) {
  const int w = img.width();
  const int h = img.height();
  for (int y = 0; y < kBlockSize; ++y) {
    const int sy = std::min(by * kBlockSize + y, h - 1);
    for (int x = 0; x < kBlockSize; ++x) {
      const int sx = std::min(bx * kBlockSize + x, w - 1);
      block[y * kBlockSize + x] =
          static_cast<float>(img.At(sx, sy, c)) - 128.0f;
    }
  }
}

void StoreBlock(Image* img, int c, int bx, int by, const float* block) {
  const int w = img->width();
  const int h = img->height();
  for (int y = 0; y < kBlockSize; ++y) {
    const int dy = by * kBlockSize + y;
    if (dy >= h) break;
    for (int x = 0; x < kBlockSize; ++x) {
      const int dx = bx * kBlockSize + x;
      if (dx >= w) break;
      const float v = block[y * kBlockSize + x] + 128.0f;
      img->At(dx, dy, c) =
          static_cast<uint8_t>(std::clamp(v, 0.0f, 255.0f));
    }
  }
}

// Residual variants work on signed differences (no 128 centering).
void ExtractResidualBlock(const Image& img, const Image& pred, int c, int bx,
                          int by, float* block) {
  const int w = img.width();
  const int h = img.height();
  for (int y = 0; y < kBlockSize; ++y) {
    const int sy = std::min(by * kBlockSize + y, h - 1);
    for (int x = 0; x < kBlockSize; ++x) {
      const int sx = std::min(bx * kBlockSize + x, w - 1);
      block[y * kBlockSize + x] =
          static_cast<float>(img.At(sx, sy, c)) -
          static_cast<float>(pred.At(sx, sy, c));
    }
  }
}

void StoreResidualBlock(Image* img, const Image& pred, int c, int bx, int by,
                        const float* block) {
  const int w = img->width();
  const int h = img->height();
  for (int y = 0; y < kBlockSize; ++y) {
    const int dy = by * kBlockSize + y;
    if (dy >= h) break;
    for (int x = 0; x < kBlockSize; ++x) {
      const int dx = bx * kBlockSize + x;
      if (dx >= w) break;
      const float v =
          block[y * kBlockSize + x] + static_cast<float>(pred.At(dx, dy, c));
      img->At(dx, dy, c) =
          static_cast<uint8_t>(std::clamp(v, 0.0f, 255.0f));
    }
  }
}

int BlocksAlong(int extent) {
  return (extent + kBlockSize - 1) / kBlockSize;
}

}  // namespace

void EncodePlanesInto(const Image& img, Quality q, ByteBuffer* out) {
  const int bw = BlocksAlong(img.width());
  const int bh = BlocksAlong(img.height());
  float block[kBlockArea];
  float coeffs[kBlockArea];
  int32_t qcoeffs[kBlockArea];
  for (int c = 0; c < img.channels(); ++c) {
    for (int by = 0; by < bh; ++by) {
      for (int bx = 0; bx < bw; ++bx) {
        ExtractBlock(img, c, bx, by, block);
        ForwardDct8x8(block, coeffs);
        QuantizeBlock(coeffs, q, qcoeffs);
        EncodeBlock(qcoeffs, out);
      }
    }
  }
}

Result<Image> DecodePlanes(ByteReader* reader, int width, int height,
                           int channels, Quality q) {
  Image img(width, height, channels);
  const int bw = BlocksAlong(width);
  const int bh = BlocksAlong(height);
  int32_t qcoeffs[kBlockArea];
  float coeffs[kBlockArea];
  float block[kBlockArea];
  for (int c = 0; c < channels; ++c) {
    for (int by = 0; by < bh; ++by) {
      for (int bx = 0; bx < bw; ++bx) {
        DL_RETURN_NOT_OK(DecodeBlock(reader, qcoeffs));
        DequantizeBlock(qcoeffs, q, coeffs);
        InverseDct8x8(coeffs, block);
        StoreBlock(&img, c, bx, by, block);
      }
    }
  }
  return img;
}

std::vector<uint8_t> EncodeImage(const Image& img, Quality q) {
  ByteBuffer out;
  out.PutU16(kLjpgMagic);
  out.PutU32(static_cast<uint32_t>(img.width()));
  out.PutU32(static_cast<uint32_t>(img.height()));
  out.PutU8(static_cast<uint8_t>(img.channels()));
  out.PutU8(static_cast<uint8_t>(q));
  EncodePlanesInto(img, q, &out);
  return out.Release();
}

Status ValidateDecodedImageHeader(uint32_t w, uint32_t h, uint32_t c) {
  if (w > kMaxDecodeDimension || h > kMaxDecodeDimension) {
    return Status::Corruption("decoded image dimensions out of range");
  }
  if (c < 1 || c > kMaxDecodeChannels) {
    return Status::Corruption("decoded image channel count out of range");
  }
  return Status::OK();
}

Result<Image> DecodeImage(const Slice& bytes) {
  ByteReader reader(bytes);
  DL_ASSIGN_OR_RETURN(uint16_t magic, reader.GetU16());
  if (magic != kLjpgMagic) {
    return Status::Corruption("not an LJPG stream");
  }
  DL_ASSIGN_OR_RETURN(uint32_t w, reader.GetU32());
  DL_ASSIGN_OR_RETURN(uint32_t h, reader.GetU32());
  DL_ASSIGN_OR_RETURN(uint8_t c, reader.GetU8());
  DL_ASSIGN_OR_RETURN(uint8_t q, reader.GetU8());
  if (q > 2) return Status::Corruption("bad quality byte");
  DL_RETURN_NOT_OK(ValidateDecodedImageHeader(w, h, c));
  // Every 8×8 block costs at least one encoded byte, so a genuine stream
  // can't claim vastly more blocks than it has bytes — reject before the
  // frame allocation instead of zero-filling gigabytes.
  const uint64_t min_blocks = static_cast<uint64_t>(BlocksAlong(
                                  static_cast<int>(w))) *
                              BlocksAlong(static_cast<int>(h)) * c;
  if (min_blocks > reader.remaining()) {
    return Status::Corruption("LJPG stream shorter than its block count");
  }
  return DecodePlanes(&reader, static_cast<int>(w), static_cast<int>(h),
                      static_cast<int>(c), static_cast<Quality>(q));
}

std::vector<uint8_t> SerializeRawImage(const Image& img) {
  ByteBuffer out;
  out.PutU16(kRawMagic);
  out.PutU32(static_cast<uint32_t>(img.width()));
  out.PutU32(static_cast<uint32_t>(img.height()));
  out.PutU8(static_cast<uint8_t>(img.channels()));
  out.PutBytes(img.data(), img.size_bytes());
  return out.Release();
}

Result<Image> DeserializeRawImage(const Slice& bytes) {
  ByteReader reader(bytes);
  DL_ASSIGN_OR_RETURN(uint16_t magic, reader.GetU16());
  if (magic != kRawMagic) {
    return Status::Corruption("not a RAW image record");
  }
  DL_ASSIGN_OR_RETURN(uint32_t w, reader.GetU32());
  DL_ASSIGN_OR_RETURN(uint32_t h, reader.GetU32());
  DL_ASSIGN_OR_RETURN(uint8_t c, reader.GetU8());
  DL_RETURN_NOT_OK(ValidateDecodedImageHeader(w, h, c));
  // Raw is verbatim: the stream must actually hold the pixels the header
  // promises. Checked before the allocation so a truncated record costs
  // nothing.
  const uint64_t pixel_bytes = static_cast<uint64_t>(w) * h * c;
  if (pixel_bytes > reader.remaining()) {
    return Status::Corruption("RAW image record shorter than its header");
  }
  Image img(static_cast<int>(w), static_cast<int>(h), static_cast<int>(c));
  DL_ASSIGN_OR_RETURN(Slice pixels, reader.GetBytes(img.size_bytes()));
  std::memcpy(img.data(), pixels.data(), img.size_bytes());
  return img;
}

void EncodeResidualInto(const Image& img, const Image& pred, Quality q,
                        ByteBuffer* out) {
  const int bw = BlocksAlong(img.width());
  const int bh = BlocksAlong(img.height());
  float block[kBlockArea];
  float coeffs[kBlockArea];
  int32_t qcoeffs[kBlockArea];
  for (int c = 0; c < img.channels(); ++c) {
    for (int by = 0; by < bh; ++by) {
      for (int bx = 0; bx < bw; ++bx) {
        ExtractResidualBlock(img, pred, c, bx, by, block);
        ForwardDct8x8(block, coeffs);
        QuantizeBlock(coeffs, q, qcoeffs);
        EncodeBlock(qcoeffs, out);
      }
    }
  }
}

Result<Image> DecodeResidualOnto(ByteReader* reader, const Image& pred,
                                 Quality q) {
  Image img(pred.width(), pred.height(), pred.channels());
  const int bw = BlocksAlong(pred.width());
  const int bh = BlocksAlong(pred.height());
  int32_t qcoeffs[kBlockArea];
  float coeffs[kBlockArea];
  float block[kBlockArea];
  for (int c = 0; c < pred.channels(); ++c) {
    for (int by = 0; by < bh; ++by) {
      for (int bx = 0; bx < bw; ++bx) {
        DL_RETURN_NOT_OK(DecodeBlock(reader, qcoeffs));
        DequantizeBlock(qcoeffs, q, coeffs);
        InverseDct8x8(coeffs, block);
        StoreResidualBlock(&img, pred, c, bx, by, block);
      }
    }
  }
  return img;
}

}  // namespace codec
}  // namespace deeplens
