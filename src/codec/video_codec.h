// DLV1: the DeepLens inter-frame video codec — the stand-in for H.264 in
// the paper's experiments. The stream is a sequence of GOPs: an I-frame
// (intra, LJPG planes) followed by P-frames (DCT-coded residuals against
// the previously *reconstructed* frame). Decoding is strictly sequential
// within a GOP, which is exactly the property that precludes temporal
// filter push-down (paper §3.1, Figure 3).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "codec/image_codec.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace deeplens {
namespace codec {

/// Stream-level parameters.
struct VideoCodecOptions {
  Quality quality = Quality::kHigh;
  /// Keyframe interval: 1 = all-intra; large values maximize compression
  /// but force long sequential decodes.
  int gop_size = 32;
};

/// \brief Incremental encoder. Feed frames in order, then Finish().
class VideoEncoder {
 public:
  explicit VideoEncoder(VideoCodecOptions options);

  /// Appends a frame. All frames must share dimensions with the first.
  Status AddFrame(const Image& frame);

  /// Completes the stream and returns the encoded bytes.
  std::vector<uint8_t> Finish();

  int num_frames() const { return num_frames_; }

 private:
  VideoCodecOptions options_;
  ByteBuffer body_;
  Image prev_reconstructed_;
  int num_frames_ = 0;
  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
};

/// \brief Sequential decoder over a DLV1 stream. NextFrame() yields frames
/// in order; there is deliberately no random access (a Seek is a decode
/// of everything before the target).
class VideoDecoder {
 public:
  /// The slice must outlive the decoder.
  explicit VideoDecoder(Slice stream);

  /// Validates the header; must be called before NextFrame().
  Status Init();

  int num_frames() const { return num_frames_; }
  int width() const { return width_; }
  int height() const { return height_; }
  int frames_decoded() const { return next_frame_; }

  /// Decodes the next frame; OutOfRange at end of stream.
  Result<Image> NextFrame();

  /// Decodes (and discards) frames until frame `target` is produced.
  /// This is the "sequential scan" cost that encoded files pay for
  /// temporal predicates.
  Result<Image> SeekDecode(int target);

 private:
  Slice stream_;
  ByteReader reader_;
  VideoCodecOptions options_;
  Image prev_;
  int num_frames_ = 0;
  int next_frame_ = 0;
  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  bool initialized_ = false;
};

/// One-shot helpers.
Result<std::vector<uint8_t>> EncodeVideo(const std::vector<Image>& frames,
                                         VideoCodecOptions options);
Result<std::vector<Image>> DecodeVideo(const Slice& stream);

}  // namespace codec
}  // namespace deeplens
