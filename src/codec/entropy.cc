#include "codec/entropy.h"

#include <cstring>

namespace deeplens {
namespace codec {

namespace {

struct Zigzag {
  int order[kBlockArea];
  Zigzag() {
    int idx = 0;
    for (int s = 0; s < 2 * kBlockSize - 1; ++s) {
      if (s % 2 == 0) {
        // Walk up-right.
        for (int y = (s < kBlockSize ? s : kBlockSize - 1);
             y >= 0 && s - y < kBlockSize; --y) {
          order[idx++] = y * kBlockSize + (s - y);
        }
      } else {
        for (int x = (s < kBlockSize ? s : kBlockSize - 1);
             x >= 0 && s - x < kBlockSize; --x) {
          order[idx++] = (s - x) * kBlockSize + x;
        }
      }
    }
  }
};

const Zigzag& Z() {
  static const Zigzag z;
  return z;
}

}  // namespace

const int* ZigzagOrder() { return Z().order; }

void EncodeBlock(const int32_t* qcoeffs, ByteBuffer* out) {
  // Scan in zigzag order emitting (zero_run, value) pairs; a trailing
  // all-zero suffix is encoded as a single end-of-block marker (run=63,
  // value=0 disambiguated by position).
  const int* order = ZigzagOrder();
  int32_t scanned[kBlockArea];
  for (int i = 0; i < kBlockArea; ++i) scanned[i] = qcoeffs[order[i]];

  int last_nonzero = -1;
  for (int i = 0; i < kBlockArea; ++i) {
    if (scanned[i] != 0) last_nonzero = i;
  }
  // Number of scan positions that carry data.
  out->PutU8(static_cast<uint8_t>(last_nonzero + 1));
  int i = 0;
  while (i <= last_nonzero) {
    int run = 0;
    while (scanned[i] == 0) {
      ++run;
      ++i;
    }
    out->PutVarint(static_cast<uint64_t>(run));
    out->PutSignedVarint(scanned[i]);
    ++i;
  }
}

Status DecodeBlock(ByteReader* reader, int32_t* qcoeffs) {
  std::memset(qcoeffs, 0, kBlockArea * sizeof(int32_t));
  DL_ASSIGN_OR_RETURN(uint8_t count, reader->GetU8());
  if (count > kBlockArea) {
    return Status::Corruption("entropy block count out of range");
  }
  const int* order = ZigzagOrder();
  int i = 0;
  while (i < count) {
    DL_ASSIGN_OR_RETURN(uint64_t run, reader->GetVarint());
    // Bound the run *before* narrowing: a 64-bit run can wrap the int
    // accumulator negative and walk qcoeffs[order[i]] off the block.
    if (run >= static_cast<uint64_t>(count - i)) {
      return Status::Corruption("entropy run overflows block");
    }
    i += static_cast<int>(run);
    DL_ASSIGN_OR_RETURN(int64_t value, reader->GetSignedVarint());
    qcoeffs[order[i]] = static_cast<int32_t>(value);
    ++i;
  }
  return Status::OK();
}

}  // namespace codec
}  // namespace deeplens
