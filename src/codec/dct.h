// 8×8 type-II discrete cosine transform used by the LJPG image codec and
// the DLV1 video codec. Forward/inverse pair is orthonormal: applying
// Forward then Inverse reproduces the input up to float rounding.
#pragma once

namespace deeplens {
namespace codec {

/// Side length of a transform block.
inline constexpr int kBlockSize = 8;
/// Number of coefficients in a block.
inline constexpr int kBlockArea = kBlockSize * kBlockSize;

/// In-place-safe forward 8×8 DCT-II. `in` and `out` are row-major 64-float
/// arrays and may alias.
void ForwardDct8x8(const float* in, float* out);

/// Inverse 8×8 DCT (DCT-III with orthonormal scaling).
void InverseDct8x8(const float* in, float* out);

}  // namespace codec
}  // namespace deeplens
