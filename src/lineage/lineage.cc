#include "lineage/lineage.h"

#include "common/bytes.h"

namespace deeplens {

std::string LineageStore::FrameKey(const std::string& dataset,
                                   int64_t frameno) {
  // dataset + NUL + big-endian frameno: orders by dataset then frame.
  std::string key = dataset;
  key.push_back('\0');
  key += EncodeKeyI64(frameno);
  return key;
}

void LineageStore::Record(const Patch& patch) {
  Record(patch.id(), patch.ref());
}

void LineageStore::Record(PatchId id, const ImgRef& ref) {
  if (id == kInvalidPatchId) return;
  refs_[id] = ref;
  if (ref.parent != kInvalidPatchId) {
    children_[ref.parent].push_back(id);
  }
  // Index by *root* frame: resolve the chain now so queries are O(log n).
  ImgRef root = ref;
  int hops = 0;
  while (root.parent != kInvalidPatchId && hops < 64) {
    auto it = refs_.find(root.parent);
    if (it == refs_.end()) break;
    // Prefer the ancestor's dataset/frameno when this link does not carry
    // its own provenance.
    if (root.dataset.empty() && root.frameno < 0) {
      root.dataset = it->second.dataset;
      root.frameno = it->second.frameno;
    }
    root = it->second;
    ++hops;
  }
  const ImgRef& own = refs_[id];
  const std::string dataset =
      !own.dataset.empty() ? own.dataset : root.dataset;
  const int64_t frameno = own.frameno >= 0 ? own.frameno : root.frameno;
  if (!dataset.empty() && frameno >= 0) {
    frame_index_.Insert(Slice(FrameKey(dataset, frameno)),
                        static_cast<RowId>(id));
  }
}

Result<ImgRef> LineageStore::GetRef(PatchId id) const {
  auto it = refs_.find(id);
  if (it == refs_.end()) {
    return Status::NotFound("no lineage recorded for patch " +
                            std::to_string(id));
  }
  return it->second;
}

Result<ImgRef> LineageStore::Backtrace(PatchId id) const {
  DL_ASSIGN_OR_RETURN(ImgRef ref, GetRef(id));
  int hops = 0;
  while (ref.parent != kInvalidPatchId) {
    if (++hops > 1024) {
      return Status::Corruption("lineage chain cycle detected");
    }
    auto it = refs_.find(ref.parent);
    if (it == refs_.end()) break;  // chain truncated: return best-known root
    ImgRef parent_ref = it->second;
    // The root's provenance wins; keep descending.
    if (parent_ref.dataset.empty()) parent_ref.dataset = ref.dataset;
    if (parent_ref.frameno < 0) parent_ref.frameno = ref.frameno;
    ref = parent_ref;
  }
  return ref;
}

Result<std::vector<ImgRef>> LineageStore::Chain(PatchId id) const {
  std::vector<ImgRef> chain;
  DL_ASSIGN_OR_RETURN(ImgRef ref, GetRef(id));
  chain.push_back(ref);
  int hops = 0;
  while (ref.parent != kInvalidPatchId) {
    if (++hops > 1024) {
      return Status::Corruption("lineage chain cycle detected");
    }
    auto it = refs_.find(ref.parent);
    if (it == refs_.end()) break;
    ref = it->second;
    chain.push_back(ref);
  }
  return chain;
}

void LineageStore::PatchesForFrame(const std::string& dataset,
                                   int64_t frameno,
                                   std::vector<PatchId>* out) const {
  std::vector<RowId> rows;
  frame_index_.Lookup(Slice(FrameKey(dataset, frameno)), &rows);
  out->insert(out->end(), rows.begin(), rows.end());
}

void LineageStore::PatchesForFrameRange(const std::string& dataset,
                                        int64_t lo, int64_t hi,
                                        std::vector<PatchId>* out) const {
  std::vector<RowId> rows;
  frame_index_.RangeScan(Slice(FrameKey(dataset, lo)),
                         Slice(FrameKey(dataset, hi)), &rows);
  out->insert(out->end(), rows.begin(), rows.end());
}

void LineageStore::Children(PatchId id, std::vector<PatchId>* out) const {
  auto it = children_.find(id);
  if (it == children_.end()) return;
  out->insert(out->end(), it->second.begin(), it->second.end());
}

}  // namespace deeplens
