// Tuple-level lineage (paper §5.1): every Patch carries an ImgRef chain
// back to its base image. The LineageStore centralizes those chains and
// *indexes* them, so backtracing queries ("which raw frame produced this
// patch?") and forward queries ("which patches derive from frame f?") are
// index lookups instead of base-data rescans — the 41×/60× effect in
// Figure 4.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/patch.h"
#include "index/btree.h"

namespace deeplens {

/// \brief In-memory lineage registry with a frame-keyed secondary index.
class LineageStore {
 public:
  /// Records (or updates) the lineage of a patch.
  void Record(const Patch& patch);
  void Record(PatchId id, const ImgRef& ref);

  uint64_t size() const { return refs_.size(); }

  /// The immediate derivation descriptor; NotFound for unknown ids.
  Result<ImgRef> GetRef(PatchId id) const;

  /// Follows parent pointers to the root ImgRef (the raw image). Detects
  /// cycles defensively and fails with Corruption.
  Result<ImgRef> Backtrace(PatchId id) const;

  /// The full chain from the patch to its root, inclusive.
  Result<std::vector<ImgRef>> Chain(PatchId id) const;

  /// All patches whose *root* frame is (dataset, frameno). Uses the
  /// secondary index (kept incrementally by Record).
  void PatchesForFrame(const std::string& dataset, int64_t frameno,
                       std::vector<PatchId>* out) const;

  /// All patches whose root frame lies in [lo, hi] of `dataset`.
  void PatchesForFrameRange(const std::string& dataset, int64_t lo,
                            int64_t hi, std::vector<PatchId>* out) const;

  /// Direct children of a patch (patches recorded with parent == id).
  void Children(PatchId id, std::vector<PatchId>* out) const;

 private:
  static std::string FrameKey(const std::string& dataset, int64_t frameno);

  std::unordered_map<PatchId, ImgRef> refs_;
  BPlusTree frame_index_;  // FrameKey(root dataset, root frameno) → PatchId
  std::unordered_map<PatchId, std::vector<PatchId>> children_;
};

}  // namespace deeplens
