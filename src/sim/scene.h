// Synthetic scene generation. Scenes are composed of objects drawn with
// their class's canonical color signature (nn/domain.h) over a noisy
// background, with full ground truth: object identity, class, box, depth,
// and rendered text. This replaces the paper's real datasets while keeping
// every accuracy experiment *measurable* (we know the truth exactly).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/domain.h"
#include "tensor/tensor.h"

namespace deeplens {
namespace sim {

/// Projective constant: focal_length × real object height. Pedestrians at
/// depth d meters render with pixel height kDepthConstant / d. Shared
/// with TinyDepth so the model's geometry cue matches the camera.
inline constexpr float kDepthConstant = nn::kFocalTimesHeight;

/// Ground truth for one rendered object.
struct SceneObject {
  nn::ObjectClass cls = nn::ObjectClass::kCar;
  nn::BBox bbox;
  /// Persistent identity across frames/videos (distinct-count truth).
  int object_id = -1;
  /// Metric depth (meters); <= 0 when not meaningful for the class.
  float depth = -1.0f;
  /// Digits rendered on the object (jersey number / text block content).
  std::string text;
  /// Identity-specific color jitter applied to the class base color, so
  /// appearance features can re-identify the object.
  int color_jitter[3] = {0, 0, 0};
};

/// Ground truth for one frame.
struct FrameTruth {
  int frameno = 0;
  std::vector<SceneObject> objects;
};

/// Background styles for the different datasets.
enum class Background {
  kAsphalt,   // mid gray (traffic scenes)
  kField,     // desaturated dark green (football)
  kDocument,  // light gray (PC screenshots / scans)
};

/// Renders a frame: textured background + each object's body color (and
/// glyphs for text/player objects). `texture_seed` drives the *static*
/// background texture — pass the same value for every frame of a video so
/// inter-frame codecs see a still background (like real road/field
/// surfaces); `noise_seed` drives per-frame object noise. Deterministic
/// given both seeds. Passing texture_seed = noise_seed reproduces fully
/// independent frames (the PC corpus of single images).
Image RenderScene(int width, int height, Background background,
                  const std::vector<SceneObject>& objects,
                  uint64_t noise_seed, int noise_amplitude = 6,
                  uint64_t texture_seed = 0);

/// Derives the identity color of an object (class base + jitter).
void ObjectColor(const SceneObject& obj, uint8_t rgb[3]);

/// Draws a digit string centered in `box` (used by the renderer; exposed
/// for tests). Glyphs are kGlyphBrightness-bright.
void DrawDigits(Image* img, const nn::BBox& box, const std::string& digits);

}  // namespace sim
}  // namespace deeplens
