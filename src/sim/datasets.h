// The three benchmark datasets (paper §6.1), generated procedurally with
// full ground truth. Each sim is a pure function of (config, frame index),
// so frames can be streamed without materializing whole videos, and every
// run is bit-reproducible.
//
// Paper-scale cardinalities (35,280 traffic frames; 15 football videos /
// 15,244 frames; 779 PC images) are available via PaperScale(); the
// default configs are laptop-scale so the full benchmark suite runs in
// minutes. EXPERIMENTS.md records which scale each experiment used.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sim/scene.h"

namespace deeplens {
namespace sim {

// ---------------------------------------------------------------------
// TrafficCam
// ---------------------------------------------------------------------

/// Traffic camera simulation: cars stream through lanes; a rotating cast
/// of pedestrian identities crosses at different depths.
struct TrafficCamConfig {
  int width = 128;
  int height = 72;
  int num_frames = 600;
  /// Concurrent car slots (one car per lane; lanes are 16 px apart).
  int num_cars = 3;
  /// Distinct pedestrian identities over the whole video (q4's truth).
  int num_pedestrians = 12;
  /// Fraction of frames that contain no cars at all (empty road gaps).
  double empty_fraction = 0.25;
  uint64_t seed = 0x7AFF1Cull;
  /// Identities of cars shared with another camera (cross-camera joins);
  /// empty = all cars private to this camera.
  std::vector<int> shared_car_ids;

  /// The paper's cardinality: 24 min 30 s of 1080p at 24 fps = 35,280
  /// frames (resolution stays scaled; see DESIGN.md substitutions).
  static TrafficCamConfig PaperScale() {
    TrafficCamConfig c;
    c.num_frames = 35280;
    c.num_pedestrians = 160;
    return c;
  }
};

/// Object-id ranges used by TrafficCamSim: pedestrians occupy
/// [kPedestrianIdBase, kPedestrianIdBase + num_pedestrians); private car
/// ids stay below 10000 (camera hash × 100 + slot).
inline constexpr int kPedestrianIdBase = 100000;

class TrafficCamSim {
 public:
  explicit TrafficCamSim(TrafficCamConfig config);

  /// True if `object_id` denotes a pedestrian identity.
  static bool IsPedestrianId(int object_id) {
    return object_id >= kPedestrianIdBase;
  }

  const TrafficCamConfig& config() const { return config_; }
  int num_frames() const { return config_.num_frames; }

  /// Ground truth at frame f (objects fully inside the frame only).
  FrameTruth TruthAt(int frameno) const;

  /// Rendered frame.
  Image FrameAt(int frameno) const;

  /// q2 truth: number of frames containing >= 1 car.
  int FramesWithVehicles() const;

  /// q4 truth: distinct pedestrian identities that ever appear.
  int DistinctPedestrians() const;

  /// q6 truth: (behind, front) pedestrian object-id pairs per frame.
  std::vector<std::pair<int, int>> BehindPairsAt(int frameno) const;

 private:
  struct CarTrack {
    int id;
    int lane_y;
    int speed;
    int length;
    int height;
    int phase;
    int color_jitter[3];
  };
  struct PedTrack {
    int id;
    float depth;
    int start_frame;
    int duration;
    int start_x;
    float speed;
    int color_jitter[3];
  };

  TrafficCamConfig config_;
  std::vector<CarTrack> cars_;
  std::vector<PedTrack> peds_;
  int cycle_frames_;  // car positions repeat with this period
};

// ---------------------------------------------------------------------
// Football
// ---------------------------------------------------------------------

/// Football clips: each video shows players (blue, numbered jerseys)
/// moving on a field; one tracked jersey number appears in every video.
struct FootballConfig {
  int width = 160;
  int height = 96;
  int num_videos = 15;
  int frames_per_video = 48;
  int players_per_video = 6;
  /// The jersey number whose trajectory q3 tracks.
  int tracked_jersey = 7;
  uint64_t seed = 0xF00B11ull;

  /// Paper cardinality: 15 videos, 15,244 frames total (~1016 each).
  static FootballConfig PaperScale() {
    FootballConfig c;
    c.frames_per_video = 1016;
    return c;
  }
};

class FootballSim {
 public:
  explicit FootballSim(FootballConfig config);

  const FootballConfig& config() const { return config_; }
  int num_videos() const { return config_.num_videos; }
  int frames_per_video() const { return config_.frames_per_video; }

  FrameTruth TruthAt(int video, int frameno) const;
  Image FrameAt(int video, int frameno) const;

  /// q3 truth: the tracked player's bbox in every frame of `video`.
  std::vector<nn::BBox> TrackedTrajectory(int video) const;

 private:
  struct PlayerTrack {
    int jersey;
    float x0, y0;   // start position
    float vx, vy;   // velocity px/frame
    int w, h;
    int color_jitter[3];
  };

  const PlayerTrack& PlayerAt(int video, int slot) const;

  FootballConfig config_;
  std::vector<std::vector<PlayerTrack>> players_;  // [video][slot]
};

// ---------------------------------------------------------------------
// PC (personal computer image corpus)
// ---------------------------------------------------------------------

/// Mixed-size image corpus with known near-duplicate pairs (q1) and
/// embedded digit-string text blocks (q5).
struct PcConfig {
  int num_images = 779;
  /// The last `num_duplicates` images are noisy re-renders of the first
  /// `num_duplicates` (ground truth for q1).
  int num_duplicates = 40;
  /// Images [0, num_text_images) carry a text block with a digit string.
  int num_text_images = 60;
  int min_width = 48, max_width = 144;
  int min_height = 36, max_height = 108;
  /// The q5 target string; embedded in exactly one image.
  std::string target_string = "42137";
  uint64_t seed = 0x9CC0DEull;

  static PcConfig PaperScale() { return PcConfig(); }  // already 779
};

class PcSim {
 public:
  explicit PcSim(PcConfig config);

  const PcConfig& config() const { return config_; }
  int num_images() const { return config_.num_images; }

  Image ImageAt(int index) const;

  /// Index of the base image this one near-duplicates, or -1.
  int DuplicateOf(int index) const;
  /// All ground-truth duplicate pairs (base, dup), base < dup.
  std::vector<std::pair<int, int>> DuplicatePairs() const;

  /// The digit string embedded in image `index` ("" if none).
  std::string TextAt(int index) const;
  /// Index of the image carrying the q5 target string.
  int TargetImage() const { return target_image_; }

 private:
  struct Content {
    int width, height;
    struct Block {
      int x0, y0, x1, y1;
      uint8_t rgb[3];
    };
    std::vector<Block> blocks;
    std::string text;  // "" = no text block
    nn::BBox text_box;
  };

  Content ContentFor(int base_index) const;

  PcConfig config_;
  int target_image_ = 0;
};

}  // namespace sim
}  // namespace deeplens
