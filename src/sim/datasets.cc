#include "sim/datasets.h"

#include <algorithm>
#include <cmath>

namespace deeplens {
namespace sim {

namespace {

// Deterministic per-identity color jitter so the same object identity
// renders identically everywhere (appearance-based re-identification).
void IdentityJitter(uint64_t domain_seed, int id, int jitter[3]) {
  Rng rng(domain_seed ^ (static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ull));
  // Jitter is large enough that different identities are separable in
  // color-histogram space but small enough to stay class-dominant.
  jitter[0] = static_cast<int>(rng.NextInt(-28, 28));
  jitter[1] = static_cast<int>(rng.NextInt(-28, 28));
  jitter[2] = static_cast<int>(rng.NextInt(-28, 28));
}

}  // namespace

// ---------------------------------------------------------------------
// TrafficCam
// ---------------------------------------------------------------------

TrafficCamSim::TrafficCamSim(TrafficCamConfig config)
    : config_(std::move(config)) {
  Rng rng(config_.seed);
  const int w = config_.width;
  const int h = config_.height;

  cars_.reserve(static_cast<size_t>(config_.num_cars));
  for (int i = 0; i < config_.num_cars; ++i) {
    CarTrack car;
    // Shared identities (cross-camera) take globally-stable ids; private
    // cars take camera-local ids derived from the seed.
    if (i < static_cast<int>(config_.shared_car_ids.size())) {
      car.id = config_.shared_car_ids[static_cast<size_t>(i)];
    } else {
      car.id = static_cast<int>((config_.seed % 97) * 100) + i;  // < 10000
    }
    // Lanes are 17 px apart with cars <= 8 px tall: the 9+ px gap always
    // contains one full detector-grid row, so same-class detections in
    // adjacent lanes never merge. Three lanes fit a 72 px frame.
    car.lane_y = 30 + (i % 3) * 17;
    car.speed = static_cast<int>(rng.NextInt(1, 3));
    car.length = static_cast<int>(rng.NextInt(12, 18));
    car.height = static_cast<int>(rng.NextInt(6, 8));
    car.phase = static_cast<int>(rng.NextInt(0, w + car.length - 1));
    IdentityJitter(0xCA5ull, car.id, car.color_jitter);
    cars_.push_back(car);
  }

  peds_.reserve(static_cast<size_t>(config_.num_pedestrians));
  const int spacing =
      std::max(1, config_.num_frames / std::max(1, config_.num_pedestrians));
  for (int i = 0; i < config_.num_pedestrians; ++i) {
    PedTrack ped;
    ped.id = kPedestrianIdBase + i;
    ped.depth = static_cast<float>(rng.NextUniform(12.5, 30.0));
    ped.start_frame = i * spacing;
    ped.duration = static_cast<int>(spacing * 1.8);
    ped.start_x = static_cast<int>(rng.NextInt(0, std::max(1, w / 2)));
    ped.speed = static_cast<float>(rng.NextUniform(0.2, 0.7));
    IdentityJitter(0x9EDull, ped.id, ped.color_jitter);
    peds_.push_back(ped);
  }
  cycle_frames_ = std::max(60, config_.num_frames / 6);
}

FrameTruth TrafficCamSim::TruthAt(int frameno) const {
  FrameTruth truth;
  truth.frameno = frameno;
  const int w = config_.width;
  const int h = config_.height;

  // Global traffic-light gating creates genuinely car-free frames so q2's
  // count is non-trivial.
  const int red_window =
      static_cast<int>(cycle_frames_ * config_.empty_fraction);
  const bool red_light = (frameno % cycle_frames_) < red_window;

  if (!red_light) {
    for (const CarTrack& car : cars_) {
      const int cycle = w + car.length;
      const int pos = (car.phase + frameno * car.speed) % cycle;
      const int x0 = pos - car.length;
      const int x1 = pos;
      // Require a meaningful visible extent.
      const int vis_x0 = std::max(0, x0);
      const int vis_x1 = std::min(w, x1);
      if (vis_x1 - vis_x0 < 6) continue;
      SceneObject obj;
      obj.cls = nn::ObjectClass::kCar;
      obj.object_id = car.id;
      obj.bbox = nn::BBox{vis_x0, car.lane_y, vis_x1,
                          std::min(h, car.lane_y + car.height)};
      obj.depth = 50.0f;  // cars sit on the far road plane
      std::copy(car.color_jitter, car.color_jitter + 3, obj.color_jitter);
      truth.objects.push_back(obj);
    }
  }

  for (const PedTrack& ped : peds_) {
    if (frameno < ped.start_frame ||
        frameno >= ped.start_frame + ped.duration) {
      continue;
    }
    const int age = frameno - ped.start_frame;
    const int height_px =
        static_cast<int>(kDepthConstant / ped.depth);  // 10..25 px
    const int width_px = std::max(3, height_px / 3 + 1);
    const int x0 =
        ped.start_x + static_cast<int>(ped.speed * static_cast<float>(age));
    // Pedestrians walk the sidewalk band above the car lanes.
    const int y0 = 2;
    const nn::BBox box{x0, y0, x0 + width_px, y0 + height_px};
    if (box.x0 < 0 || box.x1 > w || box.y1 > h) continue;
    SceneObject obj;
    obj.cls = nn::ObjectClass::kPerson;
    obj.object_id = ped.id;
    obj.bbox = box;
    obj.depth = ped.depth;
    std::copy(ped.color_jitter, ped.color_jitter + 3, obj.color_jitter);
    truth.objects.push_back(obj);
  }
  return truth;
}

Image TrafficCamSim::FrameAt(int frameno) const {
  const FrameTruth truth = TruthAt(frameno);
  return RenderScene(config_.width, config_.height, Background::kAsphalt,
                     truth.objects,
                     config_.seed ^ static_cast<uint64_t>(frameno) * 31ull,
                     /*noise_amplitude=*/6, /*texture_seed=*/config_.seed);
}

int TrafficCamSim::FramesWithVehicles() const {
  int count = 0;
  for (int f = 0; f < config_.num_frames; ++f) {
    const FrameTruth truth = TruthAt(f);
    for (const SceneObject& o : truth.objects) {
      if (o.cls == nn::ObjectClass::kCar) {
        ++count;
        break;
      }
    }
  }
  return count;
}

int TrafficCamSim::DistinctPedestrians() const {
  // Identities whose track window intersects the video and whose walk
  // keeps them on-screen for at least one frame.
  int count = 0;
  for (const PedTrack& ped : peds_) {
    bool seen = false;
    for (int f = ped.start_frame;
         f < std::min(config_.num_frames, ped.start_frame + ped.duration) &&
         !seen;
         ++f) {
      for (const SceneObject& o : TruthAt(f).objects) {
        if (o.object_id == ped.id) {
          seen = true;
          break;
        }
      }
    }
    if (seen) ++count;
  }
  return count;
}

std::vector<std::pair<int, int>> TrafficCamSim::BehindPairsAt(
    int frameno) const {
  std::vector<std::pair<int, int>> pairs;
  const FrameTruth truth = TruthAt(frameno);
  for (const SceneObject& a : truth.objects) {
    if (a.cls != nn::ObjectClass::kPerson) continue;
    for (const SceneObject& b : truth.objects) {
      if (b.cls != nn::ObjectClass::kPerson) continue;
      if (a.object_id == b.object_id) continue;
      if (a.depth > b.depth + 2.0f) {
        pairs.emplace_back(a.object_id, b.object_id);
      }
    }
  }
  return pairs;
}

// ---------------------------------------------------------------------
// Football
// ---------------------------------------------------------------------

FootballSim::FootballSim(FootballConfig config) : config_(std::move(config)) {
  Rng rng(config_.seed);
  players_.resize(static_cast<size_t>(config_.num_videos));
  for (int v = 0; v < config_.num_videos; ++v) {
    auto& roster = players_[static_cast<size_t>(v)];
    roster.reserve(static_cast<size_t>(config_.players_per_video));
    for (int s = 0; s < config_.players_per_video; ++s) {
      PlayerTrack p;
      if (s == 0) {
        p.jersey = config_.tracked_jersey;
      } else {
        // Distinct non-tracked jerseys from the pool {1..9} \ {tracked},
        // rotated per video so rosters differ across videos.
        int pool[8];
        int count = 0;
        for (int j = 1; j <= 9; ++j) {
          if (j != config_.tracked_jersey) pool[count++] = j;
        }
        p.jersey = pool[(s - 1 + v) % 8];
      }
      p.w = 14;
      p.h = 20;
      p.x0 = static_cast<float>(
          rng.NextUniform(0, std::max(1, config_.width - p.w)));
      p.y0 = static_cast<float>(
          rng.NextUniform(0, std::max(1, config_.height - p.h)));
      p.vx = static_cast<float>(rng.NextUniform(-1.2, 1.2));
      p.vy = static_cast<float>(rng.NextUniform(-0.8, 0.8));
      IdentityJitter(0xF00ull, v * 100 + p.jersey, p.color_jitter);
      roster.push_back(p);
    }
  }
}

const FootballSim::PlayerTrack& FootballSim::PlayerAt(int video,
                                                      int slot) const {
  return players_[static_cast<size_t>(video)][static_cast<size_t>(slot)];
}

namespace {
// Reflective fold of `pos` into [0, limit] (bouncing motion).
float Fold(float pos, float limit) {
  if (limit <= 0) return 0;
  const float period = 2.0f * limit;
  float p = std::fmod(pos, period);
  if (p < 0) p += period;
  return p <= limit ? p : period - p;
}
}  // namespace

FrameTruth FootballSim::TruthAt(int video, int frameno) const {
  FrameTruth truth;
  truth.frameno = frameno;
  const auto& roster = players_[static_cast<size_t>(video)];
  for (const PlayerTrack& p : roster) {
    const float fx =
        Fold(p.x0 + p.vx * static_cast<float>(frameno),
             static_cast<float>(config_.width - p.w));
    const float fy =
        Fold(p.y0 + p.vy * static_cast<float>(frameno),
             static_cast<float>(config_.height - p.h));
    SceneObject obj;
    obj.cls = nn::ObjectClass::kPlayer;
    obj.object_id = video * 100 + p.jersey;
    obj.bbox = nn::BBox{static_cast<int>(fx), static_cast<int>(fy),
                        static_cast<int>(fx) + p.w,
                        static_cast<int>(fy) + p.h};
    obj.depth = 20.0f;
    obj.text = std::to_string(p.jersey);
    std::copy(p.color_jitter, p.color_jitter + 3, obj.color_jitter);
    truth.objects.push_back(obj);
  }
  return truth;
}

Image FootballSim::FrameAt(int video, int frameno) const {
  const FrameTruth truth = TruthAt(video, frameno);
  return RenderScene(
      config_.width, config_.height, Background::kField, truth.objects,
      config_.seed ^ (static_cast<uint64_t>(video) * 7919ull +
                      static_cast<uint64_t>(frameno) * 31ull),
      /*noise_amplitude=*/6,
      /*texture_seed=*/config_.seed ^
          (static_cast<uint64_t>(video) * 7919ull));
}

std::vector<nn::BBox> FootballSim::TrackedTrajectory(int video) const {
  std::vector<nn::BBox> out;
  out.reserve(static_cast<size_t>(config_.frames_per_video));
  for (int f = 0; f < config_.frames_per_video; ++f) {
    const FrameTruth truth = TruthAt(video, f);
    for (const SceneObject& o : truth.objects) {
      if (o.text == std::to_string(config_.tracked_jersey)) {
        out.push_back(o.bbox);
        break;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// PC
// ---------------------------------------------------------------------

PcSim::PcSim(PcConfig config) : config_(std::move(config)) {
  target_image_ =
      std::max(config_.num_duplicates, config_.num_text_images / 2);
  if (target_image_ >= config_.num_text_images) {
    // Degenerate configs: keep the target inside the text range.
    target_image_ = std::max(0, config_.num_text_images - 1);
  }
}

int PcSim::DuplicateOf(int index) const {
  const int first_dup = config_.num_images - config_.num_duplicates;
  if (index >= first_dup && index < config_.num_images) {
    return index - first_dup;
  }
  return -1;
}

std::vector<std::pair<int, int>> PcSim::DuplicatePairs() const {
  std::vector<std::pair<int, int>> pairs;
  const int first_dup = config_.num_images - config_.num_duplicates;
  for (int i = first_dup; i < config_.num_images; ++i) {
    pairs.emplace_back(DuplicateOf(i), i);
  }
  return pairs;
}

std::string PcSim::TextAt(int index) const {
  const int dup = DuplicateOf(index);
  const int base = dup >= 0 ? dup : index;
  return ContentFor(base).text;
}

PcSim::Content PcSim::ContentFor(int base_index) const {
  Rng rng(config_.seed ^
          (static_cast<uint64_t>(base_index) * 0x2545F4914F6CDD1Dull));
  Content c;
  c.width = static_cast<int>(
      rng.NextInt(config_.min_width, config_.max_width));
  c.height = static_cast<int>(
      rng.NextInt(config_.min_height, config_.max_height));
  const int num_blocks = static_cast<int>(rng.NextInt(3, 8));
  for (int b = 0; b < num_blocks; ++b) {
    Content::Block block;
    block.x0 = static_cast<int>(rng.NextInt(0, c.width - 8));
    block.y0 = static_cast<int>(rng.NextInt(0, c.height - 8));
    block.x1 = block.x0 + static_cast<int>(
                              rng.NextInt(6, std::max(7, c.width / 2)));
    block.y1 = block.y0 + static_cast<int>(
                              rng.NextInt(6, std::max(7, c.height / 2)));
    block.x1 = std::min(block.x1, c.width);
    block.y1 = std::min(block.y1, c.height);
    for (int ch = 0; ch < 3; ++ch) {
      // Capped below the detector's whiteness threshold so content blocks
      // never masquerade as text regions (only glyphs render near-white).
      block.rgb[ch] = static_cast<uint8_t>(rng.NextInt(30, 180));
    }
    c.blocks.push_back(block);
  }
  if (base_index < config_.num_text_images) {
    if (base_index == target_image_) {
      c.text = config_.target_string;
    } else {
      c.text.clear();
      const int len = static_cast<int>(rng.NextInt(4, 6));
      for (int i = 0; i < len; ++i) {
        c.text += static_cast<char>('0' + rng.NextInt(0, 9));
      }
      // Regenerate on accidental collision with the target string.
      if (c.text == config_.target_string) c.text[0] = '9';
    }
    const int box_h = std::max(12, c.height / 4);
    c.text_box = nn::BBox{2, c.height - box_h - 2, c.width - 2,
                          c.height - 2};
  }
  return c;
}

Image PcSim::ImageAt(int index) const {
  const int dup = DuplicateOf(index);
  const int base = dup >= 0 ? dup : index;
  const Content c = ContentFor(base);

  Rng noise(config_.seed ^
            (static_cast<uint64_t>(index) * 0xDA3E39CB94B95BDBull));
  Image img(c.width, c.height, 3);
  for (int y = 0; y < c.height; ++y) {
    for (int x = 0; x < c.width; ++x) {
      const int n = static_cast<int>(noise.NextInt(-5, 5));
      for (int ch = 0; ch < 3; ++ch) {
        img.At(x, y, ch) =
            static_cast<uint8_t>(std::clamp(186 + n, 0, 255));
      }
    }
  }
  for (const Content::Block& block : c.blocks) {
    for (int y = block.y0; y < block.y1; ++y) {
      for (int x = block.x0; x < block.x1; ++x) {
        const int n = static_cast<int>(noise.NextInt(-4, 4));
        for (int ch = 0; ch < 3; ++ch) {
          img.At(x, y, ch) = static_cast<uint8_t>(
              std::clamp(static_cast<int>(block.rgb[ch]) + n, 0, 255));
        }
      }
    }
  }
  if (!c.text.empty()) {
    // Dark text panel with bright digits.
    for (int y = std::max(0, c.text_box.y0);
         y < std::min(c.height, c.text_box.y1); ++y) {
      for (int x = std::max(0, c.text_box.x0);
           x < std::min(c.width, c.text_box.x1); ++x) {
        for (int ch = 0; ch < 3; ++ch) {
          img.At(x, y, ch) = 25;
        }
      }
    }
    DrawDigits(&img, c.text_box, c.text);
  }
  return img;
}

}  // namespace sim
}  // namespace deeplens
