#include "sim/scene.h"

#include <algorithm>

namespace deeplens {
namespace sim {

namespace {

void BackgroundColor(Background bg, uint8_t rgb[3]) {
  switch (bg) {
    case Background::kAsphalt:
      rgb[0] = 120;
      rgb[1] = 120;
      rgb[2] = 124;
      return;
    case Background::kField:
      rgb[0] = 72;
      rgb[1] = 86;
      rgb[2] = 72;
      return;
    case Background::kDocument:
      rgb[0] = 186;
      rgb[1] = 186;
      rgb[2] = 186;
      return;
  }
}

uint8_t ClampByte(int v) {
  return static_cast<uint8_t>(std::clamp(v, 0, 255));
}

}  // namespace

void ObjectColor(const SceneObject& obj, uint8_t rgb[3]) {
  const uint8_t* base = nn::kClassColor[static_cast<int>(obj.cls)];
  for (int c = 0; c < 3; ++c) {
    rgb[c] = ClampByte(static_cast<int>(base[c]) + obj.color_jitter[c]);
  }
}

void DrawDigits(Image* img, const nn::BBox& box,
                const std::string& digits) {
  if (digits.empty()) return;
  const int n = static_cast<int>(digits.size());
  // Scale glyphs to fit the box with one glyph-column spacing between.
  const int total_cols = n * (nn::kGlyphWidth + 1) - 1;
  const int sx = std::max(1, box.Width() / std::max(1, total_cols));
  const int sy = std::max(1, box.Height() / (nn::kGlyphHeight + 2));
  const int scale = std::max(1, std::min(sx, sy));
  const int text_w = total_cols * scale;
  const int text_h = nn::kGlyphHeight * scale;
  const int ox = box.x0 + std::max(0, (box.Width() - text_w) / 2);
  const int oy = box.y0 + std::max(0, (box.Height() - text_h) / 2);

  for (int i = 0; i < n; ++i) {
    const char ch = digits[static_cast<size_t>(i)];
    if (ch < '0' || ch > '9') continue;
    const int digit = ch - '0';
    const int gx0 = ox + i * (nn::kGlyphWidth + 1) * scale;
    for (int gy = 0; gy < nn::kGlyphHeight; ++gy) {
      for (int gx = 0; gx < nn::kGlyphWidth; ++gx) {
        if (!nn::GlyphPixel(digit, gx, gy)) continue;
        for (int dy = 0; dy < scale; ++dy) {
          for (int dx = 0; dx < scale; ++dx) {
            const int px = gx0 + gx * scale + dx;
            const int py = oy + gy * scale + dy;
            if (px < 0 || px >= img->width() || py < 0 ||
                py >= img->height()) {
              continue;
            }
            for (int c = 0; c < img->channels(); ++c) {
              img->At(px, py, c) = nn::kGlyphBrightness;
            }
          }
        }
      }
    }
  }
}

Image RenderScene(int width, int height, Background background,
                  const std::vector<SceneObject>& objects,
                  uint64_t noise_seed, int noise_amplitude,
                  uint64_t texture_seed) {
  Image img(width, height, 3);
  uint8_t bg[3];
  BackgroundColor(background, bg);
  Rng rng(noise_seed);
  Rng texture(texture_seed != 0 ? texture_seed : noise_seed);

  // Background with per-pixel texture (keeps codecs honest: a perfectly
  // flat background would compress unrealistically well). The texture is
  // a function of texture_seed only, so consecutive frames of a video
  // share it and P-frames stay cheap — like a real static camera.
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const int n = static_cast<int>(texture.NextInt(-noise_amplitude,
                                                     noise_amplitude));
      for (int c = 0; c < 3; ++c) {
        img.At(x, y, c) = ClampByte(static_cast<int>(bg[c]) + n);
      }
    }
  }

  // Objects are painted back-to-front by depth (far first) so occlusion
  // is physically plausible.
  std::vector<const SceneObject*> order;
  order.reserve(objects.size());
  for (const SceneObject& o : objects) order.push_back(&o);
  std::stable_sort(order.begin(), order.end(),
                   [](const SceneObject* a, const SceneObject* b) {
                     return a->depth > b->depth;
                   });

  for (const SceneObject* obj : order) {
    uint8_t rgb[3];
    ObjectColor(*obj, rgb);
    const nn::BBox& b = obj->bbox;
    for (int y = std::max(0, b.y0); y < std::min(height, b.y1); ++y) {
      for (int x = std::max(0, b.x0); x < std::min(width, b.x1); ++x) {
        const int n =
            static_cast<int>(rng.NextInt(-noise_amplitude / 2,
                                         noise_amplitude / 2));
        for (int c = 0; c < 3; ++c) {
          img.At(x, y, c) = ClampByte(static_cast<int>(rgb[c]) + n);
        }
      }
    }
    if (!obj->text.empty()) {
      DrawDigits(&img, b, obj->text);
    }
  }
  return img;
}

}  // namespace sim
}  // namespace deeplens
