// Accuracy scoring against ground truth: detection precision/recall
// (greedy IoU matching), pair-set precision/recall (q1/q6), and scalar
// error summaries. Used by the Figure 2 and Table 1 reproductions.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "nn/models.h"
#include "sim/scene.h"

namespace deeplens {
namespace sim {

/// Standard detection metrics.
struct PrecisionRecall {
  int tp = 0;
  int fp = 0;
  int fn = 0;

  double precision() const {
    return tp + fp == 0 ? 1.0 : static_cast<double>(tp) / (tp + fp);
  }
  double recall() const {
    return tp + fn == 0 ? 1.0 : static_cast<double>(tp) / (tp + fn);
  }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r == 0 ? 0.0 : 2 * p * r / (p + r);
  }

  /// Accumulates another frame's counts.
  void Merge(const PrecisionRecall& o) {
    tp += o.tp;
    fp += o.fp;
    fn += o.fn;
  }
};

/// Greedy one-to-one matching of detections to ground-truth objects of
/// class `cls` at IoU >= `iou_threshold`.
PrecisionRecall MatchDetections(const std::vector<nn::Detection>& detections,
                                const std::vector<SceneObject>& truth,
                                nn::ObjectClass cls,
                                float iou_threshold = 0.3f);

/// Precision/recall of an unordered pair set against truth (pairs are
/// canonicalized to (min, max)).
PrecisionRecall ScorePairs(const std::vector<std::pair<int, int>>& found,
                           const std::vector<std::pair<int, int>>& truth);

/// Relative error |predicted - actual| / actual.
double RelativeError(double predicted, double actual);

/// Accuracy estimate for a reject-only proxy cascade (exec/nn_udf.h) from
/// its execution counters. Precision is exact (1.0): every emitted row was
/// confirmed by the full model, so fp = 0. Recall is estimated from the
/// audit slice: of `audits` would-be skips that ran the full model anyway,
/// `audit_overturns` disagreed; scaling that disagreement rate over the
/// `skips` unaudited rejects estimates the matches lost (fn). With no
/// audits, skips are conservatively assumed lossless (fn = 0).
PrecisionRecall EstimateCascadeAccuracy(uint64_t passes, uint64_t skips,
                                        uint64_t audits,
                                        uint64_t audit_overturns);

}  // namespace sim
}  // namespace deeplens
