#include "sim/accuracy.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace deeplens {
namespace sim {

PrecisionRecall MatchDetections(const std::vector<nn::Detection>& detections,
                                const std::vector<SceneObject>& truth,
                                nn::ObjectClass cls, float iou_threshold) {
  std::vector<const nn::Detection*> dets;
  for (const nn::Detection& d : detections) {
    if (d.label == cls) dets.push_back(&d);
  }
  std::vector<const SceneObject*> gts;
  for (const SceneObject& o : truth) {
    if (o.cls == cls) gts.push_back(&o);
  }

  // Greedy: highest-scoring detections claim ground truths first.
  std::sort(dets.begin(), dets.end(),
            [](const nn::Detection* a, const nn::Detection* b) {
              return a->score > b->score;
            });
  std::vector<bool> claimed(gts.size(), false);
  PrecisionRecall pr;
  for (const nn::Detection* d : dets) {
    float best_iou = 0.0f;
    int best = -1;
    for (size_t g = 0; g < gts.size(); ++g) {
      if (claimed[g]) continue;
      const float iou = d->bbox.Iou(gts[g]->bbox);
      if (iou > best_iou) {
        best_iou = iou;
        best = static_cast<int>(g);
      }
    }
    if (best >= 0 && best_iou >= iou_threshold) {
      claimed[static_cast<size_t>(best)] = true;
      ++pr.tp;
    } else {
      ++pr.fp;
    }
  }
  for (bool c : claimed) {
    if (!c) ++pr.fn;
  }
  return pr;
}

PrecisionRecall ScorePairs(const std::vector<std::pair<int, int>>& found,
                           const std::vector<std::pair<int, int>>& truth) {
  auto canonical = [](const std::vector<std::pair<int, int>>& pairs) {
    std::set<std::pair<int, int>> out;
    for (auto [a, b] : pairs) {
      out.emplace(std::min(a, b), std::max(a, b));
    }
    return out;
  };
  const std::set<std::pair<int, int>> f = canonical(found);
  const std::set<std::pair<int, int>> t = canonical(truth);
  PrecisionRecall pr;
  for (const auto& p : f) {
    if (t.count(p)) {
      ++pr.tp;
    } else {
      ++pr.fp;
    }
  }
  for (const auto& p : t) {
    if (!f.count(p)) ++pr.fn;
  }
  return pr;
}

double RelativeError(double predicted, double actual) {
  if (actual == 0.0) return predicted == 0.0 ? 0.0 : 1.0;
  return std::fabs(predicted - actual) / std::fabs(actual);
}

PrecisionRecall EstimateCascadeAccuracy(uint64_t passes, uint64_t skips,
                                        uint64_t audits,
                                        uint64_t audit_overturns) {
  PrecisionRecall pr;
  // Counter-to-int clamp: these are per-query row counts, far below
  // INT_MAX in practice, but a saturating cast keeps the metrics sane if
  // a pathological workload ever overflows them.
  auto clamp = [](uint64_t v) {
    return v > static_cast<uint64_t>(std::numeric_limits<int>::max())
               ? std::numeric_limits<int>::max()
               : static_cast<int>(v);
  };
  pr.tp = clamp(passes);
  pr.fp = 0;  // every emitted row was confirmed by the full model
  if (audits > 0 && skips > 0) {
    const double overturn_rate =
        static_cast<double>(audit_overturns) / static_cast<double>(audits);
    pr.fn = clamp(static_cast<uint64_t>(
        overturn_rate * static_cast<double>(skips) + 0.5));
  }
  return pr;
}

}  // namespace sim
}  // namespace deeplens
