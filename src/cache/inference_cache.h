// InferenceCache: sharded, byte-budgeted memoization of NN UDF outputs,
// keyed by (model name, patch/frame fingerprint). The paper's §7.4
// observation is that inference dominates visual query time; repeated
// queries over the same view should therefore pay one inference per
// distinct patch, not one per query. Morsel workers consult the shared
// shards concurrently (per-shard mutexes; values returned by shared_ptr
// so no lock is held during use).
//
// Get/Put/Stats are virtual so the persistence layer
// (cache/persistent_cache.h) can layer a RecordStore-backed spill log
// under the same pointer every call site already holds — the paper's
// materialized-UDF-view idea: inference results are expensive views that
// should survive the process.
//
// The typed Cached* wrappers are the integration points: call sites hand
// them a model, the pixels, and an optional cache; a null or disabled
// cache degrades to a plain inference call, which is what the
// differential tests exploit to prove cache-on == cache-off.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "cache/sharded_lru.h"
#include "common/bytes.h"
#include "core/patch.h"
#include "nn/models.h"
#include "tensor/tensor.h"

namespace deeplens {

class InflightTable;  // cache/inflight.h — includes this header back
class BatchFormer;    // exec/batch_former.h — includes this header back

/// Canonical model names used in cache keys and plan explanations.
namespace model_names {
inline constexpr const char* kDetector = "tiny-ssd";
inline constexpr const char* kOcr = "tiny-ocr";
inline constexpr const char* kDepth = "tiny-depth";
}  // namespace model_names

/// One memoized inference output. Which alternative is active is
/// determined by the model that produced it.
struct InferenceValue {
  std::variant<std::string, double, Tensor, std::vector<nn::Detection>>
      payload;

  /// Approximate total footprint (object + heap), charged against the
  /// cache budget. Heap-bearing payloads are charged by *capacity*, not
  /// size, so budget accounting tracks what the allocator really holds.
  size_t ByteSize() const;

  /// Appends the versioned wire encoding (used by the persistent spill
  /// log): u8 format version, u8 payload tag, then the payload. All four
  /// variant alternatives round-trip exactly.
  void SerializeInto(ByteBuffer* buf) const;

  /// Decodes a value produced by SerializeInto. Unknown versions or
  /// tags, truncated input, and implausible tensor shapes return
  /// Corruption — a persistent cache treats that as a miss, never as a
  /// wrong answer.
  static Result<InferenceValue> Parse(const Slice& data);

  /// Bumped whenever the wire encoding changes shape; Parse rejects
  /// anything else, so stale spill logs invalidate themselves.
  static constexpr uint8_t kFormatVersion = 1;
};

class InferenceCache {
 public:
  /// `budget_bytes` = 0 disables the cache (all lookups miss, inserts
  /// are dropped, no locks taken). Admission defaults to TinyLFU so a
  /// cold scan cannot flush hot inference results; pass
  /// CacheAdmission::kLru for the classic admit-everything behavior.
  InferenceCache(size_t budget_bytes, size_t num_shards,
                 CacheAdmission admission = CacheAdmission::kTinyLfu)
      : cache_(budget_bytes, num_shards, admission) {}
  virtual ~InferenceCache() = default;

  bool enabled() const { return cache_.enabled(); }

  /// True when lookups can be served from (and survive to) disk.
  virtual bool persistent() const { return false; }

  /// Cache key for `model` applied to content with `fingerprint`.
  /// `variant` distinguishes runs of the same model under different
  /// parameters (e.g. the frame height fed to the depth head) and is
  /// always encoded — including 0 — so a parameter that happens to be
  /// zero can never alias a differently-parameterized call. The model
  /// component is length-prefixed: keys are durable on disk, so a model
  /// string containing '#'/'@' must not be able to collide with another
  /// key. Fold the device into `model` (ModelOnDevice) — backends are
  /// only tolerance-equal, so their outputs must not share entries.
  static std::string KeyFor(const std::string& model, uint64_t fingerprint,
                            uint64_t variant = 0);

  /// Device-qualified model identity for device-dependent outputs. Both
  /// components are length-prefixed, so no (model, device) pair can
  /// alias another.
  static std::string ModelOnDevice(const char* model, nn::Device* device);

  virtual std::shared_ptr<const InferenceValue> Get(const std::string& key) {
    return cache_.Get(key);
  }
  virtual void Put(const std::string& key, InferenceValue value);

  virtual void Clear() { cache_.Clear(); }

  /// Called by the Database when this instance is replaced: releases
  /// entries (and, for persistent caches, spills them and closes the
  /// log so a successor can reopen it). Raw-pointer holders keep using
  /// the retired object safely; lookups just miss.
  virtual void Retire() { Clear(); }

  virtual CacheStats Stats() const { return cache_.Stats(); }

  /// Optional singleflight table (cache/inflight.h): when set, the
  /// Cached* wrappers run their miss-path inference through it so
  /// concurrent identical misses pay for one model call instead of K.
  /// Not owned; the Database owns one table and installs it on every
  /// inference cache (including per-tenant ones) so in-flight dedup
  /// works *across* tenants even when their caches are partitioned.
  InflightTable* inflight() const { return inflight_; }
  void set_inflight(InflightTable* table) { inflight_ = table; }

  /// Optional cross-query batch former (exec/batch_former.h): when set
  /// *and* enabled, the Cached* wrappers stage their miss-path inference
  /// into it so distinct patches from concurrent sessions amortize one
  /// device invocation. Not owned; like the inflight table, the Database
  /// owns one former and installs it on every inference cache so batches
  /// form *across* tenants.
  BatchFormer* batch_former() const { return batch_former_; }
  void set_batch_former(BatchFormer* former) { batch_former_ = former; }

 protected:
  ShardedLruCache<InferenceValue> cache_;

 private:
  InflightTable* inflight_ = nullptr;
  BatchFormer* batch_former_ = nullptr;
};

// --- Memoized inference entry points ------------------------------------
// Each consults `cache` first (when non-null and enabled) and stores the
// result on a miss. Results are bit-identical to the direct model call:
// the cache stores outputs, it never approximates them. The execution
// device is part of the key — kernels on different backends are only
// tolerance-equal, so a scalar-device result must never answer a
// vector-device query. Pass `fingerprint` = 0 when no cache is attached
// to skip hashing entirely (callers: compute it only for an enabled
// cache).

/// OCR over patch pixels. `fingerprint` is Patch::Fingerprint() (or
/// ImageFingerprint for bare crops). `computed`, when non-null, reports
/// whether this call ran the model itself (miss path) as opposed to
/// being served by the cache or a concurrent in-flight computation — the
/// cost model's hit/miss discriminator for its runtime EWMAs.
Result<std::string> CachedOcrText(const nn::TinyOcr& ocr,
                                  const Image& pixels, uint64_t fingerprint,
                                  nn::Device* device, InferenceCache* cache,
                                  bool* computed = nullptr);

/// Monocular depth over patch pixels + box geometry. `computed` as in
/// CachedOcrText.
Result<double> CachedDepth(const nn::TinyDepth& model, const Image& pixels,
                           const nn::BBox& bbox, int frame_h,
                           uint64_t fingerprint, nn::Device* device,
                           InferenceCache* cache, bool* computed = nullptr);

/// Fingerprint for cache use: 0 (no hashing at all) when no enabled
/// cache is attached, so the cache-disabled configuration pays nothing.
inline uint64_t CacheFingerprint(const Patch& p, InferenceCache* cache) {
  return cache != nullptr && cache->enabled() ? p.Fingerprint() : 0;
}

}  // namespace deeplens
