#include "cache/cache_config.h"

#include <algorithm>
#include <thread>

#include "common/env.h"

namespace deeplens {

CacheConfig CacheConfig::FromEnv() {
  CacheConfig config;
  // Cap at 1 TB: anything above that is almost certainly a typo'd value,
  // and the validated parser treats out-of-range as garbage.
  const uint64_t mb = PositiveIntFromEnv(
      "DEEPLENS_CACHE_MB", kDefaultBudgetBytes >> 20,
      /*max_value=*/1ull << 20, /*allow_zero=*/true);
  config.budget_bytes = static_cast<size_t>(mb) << 20;
  config.cache_dir = PathFromEnv("DEEPLENS_CACHE_DIR");
  config.admission = ChoiceFromEnv("DEEPLENS_CACHE_ADMISSION",
                                   {"lru", "tinylfu"}, "tinylfu") == "lru"
                         ? CacheAdmission::kLru
                         : CacheAdmission::kTinyLfu;
  return config;
}

size_t CacheConfig::ResolvedShards() const {
  if (shards > 0) return shards;
  // Mirrors ThreadPool::Global()'s sizing without instantiating the pool
  // (opening a Database must not spin up worker threads as a side
  // effect).
  const uint64_t width = PositiveIntFromEnv(
      "DEEPLENS_NUM_THREADS",
      std::max<uint64_t>(2, std::thread::hardware_concurrency()),
      /*max_value=*/4096);
  return 2 * static_cast<size_t>(width);
}

}  // namespace deeplens
