// PersistentInferenceCache: the paper's materialized-UDF-view idea made
// durable. NN UDF results are expensive materialized views; a purely
// in-memory cache re-runs every inference after a restart. This layer
// keeps the sharded in-memory LRU as the hot tier and writes entries
// through to a crash-safe, CRC-framed RecordStore log (the same
// chunked-log machinery that backs the storage layer):
//
//   - inserts land in memory; entries the LRU evicts — and values memory
//     refuses to hold (oversized for a shard, or denied by the TinyLFU
//     admission filter) — are spilled to the log,
//   - an in-memory miss consults the log before giving up (a disk hit
//     is promoted back into memory, admission permitting; a denied
//     promotion still serves the caller from disk),
//   - a resident-key Bloom filter built during replay answers "known
//     absent" memory misses without touching the store mutex,
//   - Retire()/destruction spill every resident entry and flush, so a
//     clean shutdown persists the whole working set,
//   - open compacts the log when dead versions outweigh live bytes
//     (rewrite to a temp log + atomic rename; see RecordStore::Compact),
//     then warm-loads entries until the memory budget is full, so the
//     first post-restart query is lookup-bound.
//
// Invalidation is structural: keys embed the device-qualified model
// identity, so results from another model/device/backend can never be
// served; values carry a format version, so a stale log degrades to
// misses, never to wrong answers. Torn log tails are dropped by the
// RecordStore's CRC framing on replay.
//
// Thread-safety: the memory tier keeps its per-shard mutexes; the
// single-writer RecordStore is guarded by one store mutex, taken only
// on the (rare, already I/O-bound) miss/spill paths and never while a
// shard lock is held.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "cache/inference_cache.h"
#include "cache/key_filter.h"
#include "storage/record_store.h"

namespace deeplens {

class PersistentInferenceCache : public InferenceCache {
 public:
  /// Spill log file created under the cache directory.
  static constexpr const char* kLogFileName = "inference.dlog";
  /// Advisory lock file guarding the single-writer log.
  static constexpr const char* kLockFileName = "inference.lock";

  /// Opens (creating as needed) the spill log under directory `dir`,
  /// replays it — compacting first when dead bytes have outgrown live
  /// bytes — and warm-loads entries into memory until `budget_bytes` is
  /// reached. `budget_bytes` = 0 still persists nothing and serves
  /// nothing (a disabled cache stays disabled). The log is single-writer
  /// (RecordStore offsets are private to the writer): an exclusive flock
  /// on the lock file guards it, and a second opener — same or another
  /// process — gets AlreadyExists instead of silently corrupting the
  /// shared tail (Database then degrades that opener to volatile
  /// caching).
  static Result<std::unique_ptr<PersistentInferenceCache>> Open(
      const std::string& dir, size_t budget_bytes, size_t num_shards,
      CacheAdmission admission = CacheAdmission::kTinyLfu);

  /// Auto-compaction trigger, checked at Open(): rewrite when the log
  /// holds at least as many dead bytes as live ones (so the log never
  /// stays above 2x its live payload across restarts) and the dead
  /// weight is worth an I/O pass at all.
  static constexpr uint64_t kCompactMinDeadBytes = 4096;
  static bool ShouldCompact(const RecordStoreStats& stats) {
    return stats.dead_bytes() >= kCompactMinDeadBytes &&
           stats.dead_bytes() >= stats.live_bytes;
  }

  /// Rewrites the spill log to hold only the newest version of each live
  /// key (temp log + atomic rename; crash-safe — an interrupted run
  /// leaves the old log intact and its temp file is discarded on the
  /// next Open). Runs automatically at Open() when ShouldCompact(); this
  /// entry point exists for tests and operational tooling. No-op after
  /// Retire().
  Status Compact();

  ~PersistentInferenceCache() override;

  bool persistent() const override { return true; }

  /// Memory first; on miss, the resident-key filter and then the spill
  /// log (promoting a disk hit back into the memory tier when admission
  /// allows — a denied promotion still serves the caller from disk).
  /// Keys the filter knows are absent never touch the store mutex.
  std::shared_ptr<const InferenceValue> Get(const std::string& key) override;

  /// Inserts into memory. Values memory refuses — oversized for a shard,
  /// or colder than their would-be eviction victim under TinyLFU — go
  /// straight to the log instead of being dropped: an admission-denied
  /// inference result is still an expensive materialized view, and the
  /// next miss on it must find it on disk.
  void Put(const std::string& key, InferenceValue value) override;

  /// Spills every memory-resident entry to the log and flushes it.
  Status Persist();

  /// Persist(), then close the log (so a successor instance can reopen
  /// it) and drop the memory tier. Lookups miss from here on.
  void Retire() override;

  /// Memory-tier stats plus disk provenance (disk_hits/disk_misses/
  /// spilled/warm_loaded and the spill log's record/byte counts).
  CacheStats Stats() const override;

  const std::string& log_path() const { return log_path_; }

 private:
  PersistentInferenceCache(size_t budget_bytes, size_t num_shards,
                           CacheAdmission admission, std::string log_path)
      : InferenceCache(budget_bytes, num_shards, admission),
        log_path_(std::move(log_path)) {}

  /// Serializes and appends one entry. Caller holds store_mu_.
  void SpillLocked(const std::string& key, const InferenceValue& value);

  /// Loads the log's live records (the store's index already keeps only
  /// the latest version per key; ScanAll visits them in key order) into
  /// the memory tier until the budget is full — when the log outgrows
  /// the budget, the remainder stays disk-only and is served via the
  /// miss path. Called once from Open, before the eviction hook is
  /// installed, so warm-loading can never churn the log it is reading.
  void WarmLoad();

  std::string log_path_;

  // Resident-key filter over everything the log holds (seeded from the
  // replay index, extended on every spill): a memory miss whose key is
  // "definitely absent" returns without touching store_mu_, so the
  // (morsel-parallel) miss path of a never-cached workload can't
  // serialize on guaranteed-miss probes. Subsumes the old empty-log
  // boolean hint — an empty log is just an empty filter.
  KeyFilter resident_keys_;
  std::atomic<uint64_t> filter_skips_{0};

  mutable std::mutex store_mu_;
  std::unique_ptr<RecordStore> store_;  // null after Retire()
  int lock_fd_ = -1;                    // held while store_ is open
  uint64_t disk_hits_ = 0;
  uint64_t disk_misses_ = 0;
  uint64_t spilled_ = 0;
  uint64_t warm_loaded_ = 0;
};

}  // namespace deeplens
