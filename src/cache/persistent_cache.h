// PersistentInferenceCache: the paper's materialized-UDF-view idea made
// durable. NN UDF results are expensive materialized views; a purely
// in-memory cache re-runs every inference after a restart. This layer
// keeps the sharded in-memory LRU as the hot tier and writes entries
// through to a crash-safe, CRC-framed RecordStore log (the same
// chunked-log machinery that backs the storage layer):
//
//   - inserts land in memory; entries the LRU evicts — and oversized
//     values memory rejects outright — are spilled to the log,
//   - an in-memory miss consults the log before giving up (a disk hit
//     is promoted back into memory),
//   - Retire()/destruction spill every resident entry and flush, so a
//     clean shutdown persists the whole working set,
//   - open warm-loads entries from the log until the memory budget is
//     full, so the first post-restart query is lookup-bound.
//
// Invalidation is structural: keys embed the device-qualified model
// identity, so results from another model/device/backend can never be
// served; values carry a format version, so a stale log degrades to
// misses, never to wrong answers. Torn log tails are dropped by the
// RecordStore's CRC framing on replay.
//
// Thread-safety: the memory tier keeps its per-shard mutexes; the
// single-writer RecordStore is guarded by one store mutex, taken only
// on the (rare, already I/O-bound) miss/spill paths and never while a
// shard lock is held.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "cache/inference_cache.h"
#include "storage/record_store.h"

namespace deeplens {

class PersistentInferenceCache : public InferenceCache {
 public:
  /// Spill log file created under the cache directory.
  static constexpr const char* kLogFileName = "inference.dlog";
  /// Advisory lock file guarding the single-writer log.
  static constexpr const char* kLockFileName = "inference.lock";

  /// Opens (creating as needed) the spill log under directory `dir`,
  /// replays it, and warm-loads entries into memory until `budget_bytes`
  /// is reached. `budget_bytes` = 0 still persists nothing and serves
  /// nothing (a disabled cache stays disabled). The log is single-writer
  /// (RecordStore offsets are private to the writer): an exclusive flock
  /// on the lock file guards it, and a second opener — same or another
  /// process — gets AlreadyExists instead of silently corrupting the
  /// shared tail (Database then degrades that opener to volatile
  /// caching).
  static Result<std::unique_ptr<PersistentInferenceCache>> Open(
      const std::string& dir, size_t budget_bytes, size_t num_shards);

  ~PersistentInferenceCache() override;

  bool persistent() const override { return true; }

  /// Memory first; on miss, the spill log (promoting a disk hit back
  /// into the memory tier).
  std::shared_ptr<const InferenceValue> Get(const std::string& key) override;

  /// Inserts into memory. Values memory refuses (oversized for a shard)
  /// go straight to the log instead of being dropped.
  void Put(const std::string& key, InferenceValue value) override;

  /// Spills every memory-resident entry to the log and flushes it.
  Status Persist();

  /// Persist(), then close the log (so a successor instance can reopen
  /// it) and drop the memory tier. Lookups miss from here on.
  void Retire() override;

  /// Memory-tier stats plus disk provenance (disk_hits/disk_misses/
  /// spilled/warm_loaded and the spill log's record/byte counts).
  CacheStats Stats() const override;

  const std::string& log_path() const { return log_path_; }

 private:
  PersistentInferenceCache(size_t budget_bytes, size_t num_shards,
                           std::string log_path)
      : InferenceCache(budget_bytes, num_shards),
        log_path_(std::move(log_path)) {}

  /// Serializes and appends one entry. Caller holds store_mu_.
  void SpillLocked(const std::string& key, const InferenceValue& value);

  /// Loads the log's live records (the store's index already keeps only
  /// the latest version per key; ScanAll visits them in key order) into
  /// the memory tier until the budget is full — when the log outgrows
  /// the budget, the remainder stays disk-only and is served via the
  /// miss path. Called once from Open, before the eviction hook is
  /// installed, so warm-loading can never churn the log it is reading.
  void WarmLoad();

  std::string log_path_;

  // Fast-path hint: false until the log has ever held a record, letting
  // the (morsel-parallel) miss path skip the global store mutex on a
  // fresh cache dir — the one case where every single miss would
  // otherwise serialize on a guaranteed-empty probe. Conservative: once
  // true it stays true (tombstoning may re-empty the log; misses then
  // just pay the probe).
  std::atomic<bool> log_has_records_{false};

  mutable std::mutex store_mu_;
  std::unique_ptr<RecordStore> store_;  // null after Retire()
  int lock_fd_ = -1;                    // held while store_ is open
  uint64_t disk_hits_ = 0;
  uint64_t disk_misses_ = 0;
  uint64_t spilled_ = 0;
  uint64_t warm_loaded_ = 0;
};

}  // namespace deeplens
