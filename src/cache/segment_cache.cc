#include "cache/segment_cache.h"

namespace deeplens {

std::string SegmentCache::StreamId(const std::string& path,
                                   uint64_t size_bytes, uint32_t crc) {
  return path + "#" + std::to_string(size_bytes) + "#" +
         std::to_string(crc);
}

std::string SegmentCache::KeyFor(const std::string& stream_id,
                                 int start_frame) {
  return stream_id + "@" + std::to_string(start_frame);
}

std::shared_ptr<const SegmentCache::Segment> SegmentCache::Get(
    const std::string& stream_id, int start_frame) {
  return cache_.Get(KeyFor(stream_id, start_frame));
}

void SegmentCache::Put(const std::string& stream_id, int start_frame,
                       Segment frames) {
  Put(stream_id, start_frame,
      std::make_shared<const Segment>(std::move(frames)));
}

void SegmentCache::Put(const std::string& stream_id, int start_frame,
                       std::shared_ptr<const Segment> frames) {
  size_t charge = sizeof(Segment);
  for (const Image& f : *frames) charge += f.size_bytes() + sizeof(Image);
  cache_.Put(KeyFor(stream_id, start_frame), std::move(frames), charge);
}

}  // namespace deeplens
