#include "cache/segment_cache.h"

#include "cache/cache_key.h"

namespace deeplens {

std::string SegmentCache::StreamId(const std::string& path,
                                   uint64_t size_bytes, uint32_t crc) {
  std::string id;
  id.reserve(path.size() + 40);
  AppendKeyPart(&id, path);
  id += '#';
  id += std::to_string(size_bytes);
  id += '#';
  id += std::to_string(crc);
  return id;
}

std::string SegmentCache::KeyFor(const std::string& stream_id,
                                 int start_frame) {
  // The stream id's free-form component (the path) is length-prefixed by
  // StreamId, so appending the numeric frame stays unambiguous.
  return stream_id + "@" + std::to_string(start_frame);
}

std::shared_ptr<const SegmentCache::Segment> SegmentCache::Get(
    const std::string& stream_id, int start_frame) {
  return cache_.Get(KeyFor(stream_id, start_frame));
}

bool SegmentCache::Put(const std::string& stream_id, int start_frame,
                       Segment frames) {
  return Put(stream_id, start_frame,
             std::make_shared<const Segment>(std::move(frames)));
}

bool SegmentCache::Put(const std::string& stream_id, int start_frame,
                       std::shared_ptr<const Segment> frames) {
  size_t charge = sizeof(Segment);
  for (const Image& f : *frames) charge += f.size_bytes() + sizeof(Image);
  return cache_.Put(KeyFor(stream_id, start_frame), std::move(frames),
                    charge);
}

bool SegmentCache::Contains(const std::string& stream_id,
                            int start_frame) const {
  return cache_.Contains(KeyFor(stream_id, start_frame));
}

}  // namespace deeplens
