// Singleflight table for in-flight NN inference: the inference cache
// dedups *completed* work, this dedups work that is still running.
// Under multi-tenant serving, K concurrent queries touching the same
// (model, device, Patch::Fingerprint) used to all miss the cache (the
// first Put lands only after the first inference finishes) and run K
// inferences; now the first caller becomes the *leader* and runs the
// model, every concurrent duplicate *joins* the in-flight computation
// and blocks on its result, and late arrivals hit the cache as before —
// so a distinct piece of content costs exactly one inference no matter
// how many tenants ask at once.
//
// Keys are the inference-cache keys (model@device#fingerprint@variant,
// see InferenceCache::KeyFor), so what joins here is exactly what would
// have collided in the cache. Results are shared as
// shared_ptr<const InferenceValue>; a leader's error Status propagates
// to every joiner (all K queries fail identically, just as if each had
// run the failing inference itself).
//
// Deadlock-safety: joiners block on a shared_future while holding no
// locks, and the leader computes on its own thread without touching the
// pool, so a joined worker always unblocks once the leader's model call
// returns. Morsel workers may join; they never lead *and* wait on the
// same key.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cache/inference_cache.h"
#include "common/status.h"

namespace deeplens {

/// Counters for Explain() / the serving bench. `joined` is the dedup
/// hit count: inferences that did NOT run because an identical one was
/// already in flight.
struct InflightStats {
  uint64_t leaders = 0;
  uint64_t joined = 0;
  uint64_t failures = 0;  // leader computations that returned an error
};

class InflightTable {
 public:
  using Outcome = Result<std::shared_ptr<const InferenceValue>>;

  /// Returns the result of `compute` for `key`, running it at most once
  /// across all concurrent callers: the first becomes the leader and
  /// runs `compute` on its own thread; concurrent duplicates block until
  /// the leader finishes and share its value (or error). `compute`
  /// should also publish to the backing cache so late arrivals hit
  /// there instead of re-entering the table.
  Outcome Do(const std::string& key,
             const std::function<Result<InferenceValue>()>& compute) {
    std::promise<Outcome> promise;
    std::shared_future<Outcome> joined_flight;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        ++joined_;
        joined_flight = it->second;
      } else {
        ++leaders_;
        inflight_.emplace(key, promise.get_future().share());
      }
    }
    // Joiners wait outside the lock: the leader needs it to retire the
    // key before fulfilling the promise.
    if (joined_flight.valid()) return joined_flight.get();
    Outcome outcome = [&]() -> Outcome {
      auto computed = compute();
      if (!computed.ok()) return computed.status();
      return std::make_shared<const InferenceValue>(
          std::move(computed).value());
    }();
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(key);
      if (!outcome.ok()) ++failures_;
    }
    // After the erase, new callers start a fresh flight (and normally
    // hit the cache instead); everyone who joined this one wakes here.
    promise.set_value(outcome);
    return outcome;
  }

  InflightStats Stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return InflightStats{leaders_, joined_, failures_};
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_future<Outcome>> inflight_;
  uint64_t leaders_ = 0;
  uint64_t joined_ = 0;
  uint64_t failures_ = 0;
};

}  // namespace deeplens
