// Unambiguous cache-key composition. Cache keys concatenate
// caller-supplied components (model names, device names, file paths)
// with '#'/'@' separators; a component that itself contains a separator
// must not be able to alias another key — especially now that inference
// keys are durable on disk, where a collision would silently serve one
// stream's results for another. Free-form components are therefore
// length-prefixed ("<decimal length>:<bytes>"), which makes any
// concatenation of parts uniquely decodable regardless of content.
#pragma once

#include <string>

namespace deeplens {

/// Appends `part` to `key` as "<decimal length>:<bytes>". Numeric
/// components (fingerprints, sizes, CRCs) don't need this — decimal
/// digits can never contain a separator — only free-form strings do.
inline void AppendKeyPart(std::string* key, const std::string& part) {
  *key += std::to_string(part.size());
  *key += ':';
  *key += part;
}

}  // namespace deeplens
