// Sharded, thread-safe, byte-budgeted LRU cache — the core of the
// inference / decode memoization subsystem (paper §3.1 decode cost,
// §7.4 inference reuse: repeated visual queries should be lookup-bound,
// not compute-bound).
//
// The byte budget is split evenly across shards; each shard owns its own
// mutex, hash map, and recency list, so morsel workers hitting different
// shards never contend. A budget of 0 disables the cache entirely: Get
// always misses, Put is a no-op, and neither takes a lock.
//
// Eviction is LRU; *admission* is pluggable. Under CacheAdmission::
// kTinyLfu (the default for the Database-owned caches) each shard keeps a
// 4-bit count-min frequency sketch of every access, and an insert that
// would force an eviction is refused when the candidate's estimated
// frequency does not beat the eviction victim's — so a one-pass cold scan
// cannot flush a hot working set. CacheAdmission::kLru admits every
// insert (the classic behavior).
//
// Values are held as shared_ptr<const V>: readers keep entries alive even
// if a concurrent insert evicts them, so no lock is held while a caller
// uses a cached value.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/admission.h"
#include "cache/frequency_sketch.h"
#include "common/checksum.h"

namespace deeplens {

/// Aggregate counters over all shards of a cache. Point-in-time snapshot;
/// counters from different shards are read under their own locks, so the
/// totals are consistent per shard but not globally atomic.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Inserts refused because one entry alone exceeded a shard's budget.
  uint64_t rejected = 0;
  /// Would-evict inserts refused by the TinyLFU admission filter because
  /// the candidate's estimated frequency did not beat the victim's.
  uint64_t admission_denied = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
  uint64_t budget_bytes = 0;
  uint64_t shards = 0;

  // --- Persistence provenance (zero for purely in-memory caches) -------
  // `hits` above are memory hits; a lookup that misses memory but is
  // served from the spill log counts one `misses` AND one `disk_hits`,
  // so memory-vs-disk provenance is always reconstructible.
  uint64_t disk_hits = 0;    // in-memory misses answered by the spill log
  uint64_t disk_misses = 0;  // spill-log probes that found nothing usable
  uint64_t spilled = 0;      // entries written through to the spill log
  uint64_t warm_loaded = 0;  // entries preloaded from the log on open
  uint64_t disk_entries = 0;  // live records in the spill log
  uint64_t disk_bytes = 0;    // spill log size (incl. dead versions)
  uint64_t disk_live_bytes = 0;  // bytes of the newest version of live keys
  // Memory misses the resident-key filter answered "known absent" without
  // touching the store mutex (they are counted in `misses`, not in
  // `disk_misses` — no spill-log probe ever happened).
  uint64_t filter_skips = 0;

  uint64_t lookups() const { return hits + misses; }
  double HitRate() const {
    const uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
  /// Hit rate counting disk-served lookups as hits.
  double CombinedHitRate() const {
    const uint64_t n = lookups();
    return n == 0 ? 0.0
                  : static_cast<double>(hits + disk_hits) /
                        static_cast<double>(n);
  }
};

/// \brief Generic sharded LRU core. `V` is the cached value type; the
/// caller supplies an explicit byte charge per entry (the key's bytes are
/// added on top so budget accounting tracks real footprint).
template <typename V>
class ShardedLruCache {
 public:
  /// `budget_bytes` = 0 disables the cache. `num_shards` is clamped to
  /// [1, 256]; size it to the thread pool (see DefaultCacheShards()).
  /// `admission` defaults to TinyLFU — callers that need the classic
  /// admit-everything behavior (tests of LRU semantics, workloads known
  /// to be scan-free) pass CacheAdmission::kLru explicitly.
  ShardedLruCache(size_t budget_bytes, size_t num_shards,
                  CacheAdmission admission = CacheAdmission::kTinyLfu)
      : budget_bytes_(budget_bytes), admission_(admission) {
    if (num_shards < 1) num_shards = 1;
    if (num_shards > 256) num_shards = 256;
    if (budget_bytes == 0) return;  // disabled: no shards allocated
    shards_.reserve(num_shards);
    const size_t per_shard = (budget_bytes + num_shards - 1) / num_shards;
    for (size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
      shards_.back()->budget = per_shard;
      if (admission_ == CacheAdmission::kTinyLfu) {
        // Size the sketch for the entry count this shard can plausibly
        // hold: assume small entries (the sketch only needs enough
        // counters that distinct keys rarely collide).
        shards_.back()->sketch = std::make_unique<FrequencySketch>(
            per_shard / kSketchBytesPerEntry + 1);
      }
    }
  }

  bool enabled() const { return !shards_.empty(); }
  size_t budget_bytes() const { return budget_bytes_; }
  size_t num_shards() const { return shards_.size(); }
  CacheAdmission admission() const { return admission_; }

  /// Called once per evicted entry, after the shard lock has been
  /// released (so the callback may take its own locks, e.g. around a
  /// spill log). Entries dropped by Clear() are invalidations, not
  /// evictions, and do not fire the callback. Not thread-safe against
  /// concurrent cache operations: install before the cache is shared.
  using EvictionCallback = std::function<void(
      const std::string& key, std::shared_ptr<const V> value, size_t charge)>;
  void SetEvictionCallback(EvictionCallback cb) {
    eviction_cb_ = std::move(cb);
  }

  /// Returns the cached value or nullptr on miss.
  std::shared_ptr<const V> Get(const std::string& key) {
    if (!enabled()) return nullptr;
    const uint64_t hash = HashKey(key);
    Shard& shard = ShardAt(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    // Every lookup — hit or miss — is an access the admission filter
    // should know about: repeated misses are how a genuinely re-read key
    // earns its way past a resident victim.
    if (shard.sketch) shard.sketch->Increment(hash);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return nullptr;
    }
    ++shard.hits;
    // Move to the front of the recency list.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->value;
  }

  /// Inserts (or replaces) `key`, charging `charge` + key bytes against
  /// the shard budget and evicting least-recently-used entries as needed.
  /// An entry larger than a whole shard's budget is rejected outright so
  /// one oversized value cannot flush the shard. Returns true iff the
  /// entry is resident afterwards (false: disabled or rejected), so
  /// write-through layers can persist what memory refused to hold.
  bool Put(const std::string& key, std::shared_ptr<const V> value,
           size_t charge) {
    if (!enabled()) return false;
    const uint64_t hash = HashKey(key);
    Shard& shard = ShardAt(hash);
    const size_t total = charge + key.size() + kEntryOverhead;
    std::vector<Entry> victims;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (total > shard.budget) {
        ++shard.rejected;
        return false;
      }
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        // Replacing a resident key is a value refresh, never subject to
        // admission: the key already proved its worth by being resident.
        shard.bytes -= it->second->charge;
        shard.lru.erase(it->second);
        shard.map.erase(it);
      } else if (shard.sketch && shard.bytes + total > shard.budget &&
                 !shard.lru.empty()) {
        // Would-evict insert under TinyLFU: the candidate must be hotter
        // than the LRU victim it wants to displace, or it is refused and
        // the resident working set survives the scan. The comparison
        // uses the candidate's *pre-insert* frequency (its misses, via
        // Get) — counting this write as an access first would hand every
        // one-shot scan key a head start over decayed resident victims.
        const Entry& victim = shard.lru.back();
        if (shard.sketch->Estimate(hash) <=
            shard.sketch->Estimate(victim.hash)) {
          ++shard.admission_denied;
          return false;
        }
      }
      // An admitted write is an access: without this, a key seen only
      // through the miss→compute→Put path would keep frequency 0.
      if (shard.sketch) shard.sketch->Increment(hash);
      shard.lru.push_front(Entry{key, hash, std::move(value), total});
      shard.map[key] = shard.lru.begin();
      shard.bytes += total;
      ++shard.insertions;
      while (shard.bytes > shard.budget && shard.lru.size() > 1) {
        Entry& victim = shard.lru.back();
        shard.bytes -= victim.charge;
        shard.map.erase(victim.key);
        if (eviction_cb_) victims.push_back(std::move(victim));
        shard.lru.pop_back();
        ++shard.evictions;
      }
    }
    // Outside the shard lock: the callback may do I/O or take other
    // locks without blocking concurrent hits on this shard.
    for (Entry& v : victims) {
      eviction_cb_(v.key, std::move(v.value), v.charge);
    }
    return true;
  }

  /// True if `key` is resident. Touches neither the recency order nor
  /// the hit/miss counters — a pure residency probe for callers deciding
  /// whether a (re-)insert is worthwhile.
  bool Contains(const std::string& key) const {
    if (!enabled()) return false;
    const Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.find(key) != shard.map.end();
  }

  /// Visits a snapshot of every resident entry (most-recent first within
  /// each shard). Entries are copied out under the shard lock and the
  /// visitor runs after it is released, so the visitor may take locks of
  /// its own (e.g. a spill log's) without ordering hazards.
  void ForEach(const std::function<void(const std::string& key,
                                        const std::shared_ptr<const V>& value,
                                        size_t charge)>& fn) const {
    for (const auto& shard : shards_) {
      std::vector<Entry> snapshot;
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        snapshot.reserve(shard->lru.size());
        for (const Entry& e : shard->lru) snapshot.push_back(e);
      }
      for (const Entry& e : snapshot) fn(e.key, e.value, e.charge);
    }
  }

  /// Drops every entry (stats counters are preserved).
  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->lru.clear();
      shard->map.clear();
      shard->bytes = 0;
    }
  }

  CacheStats Stats() const {
    CacheStats stats;
    stats.budget_bytes = budget_bytes_;
    stats.shards = shards_.size();
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      stats.hits += shard->hits;
      stats.misses += shard->misses;
      stats.insertions += shard->insertions;
      stats.evictions += shard->evictions;
      stats.rejected += shard->rejected;
      stats.admission_denied += shard->admission_denied;
      stats.entries += shard->lru.size();
      stats.bytes += shard->bytes;
    }
    return stats;
  }

 private:
  // Fixed bookkeeping charge per entry (list/map node overhead), so even
  // zero-byte payloads cannot grow the cache unboundedly.
  static constexpr size_t kEntryOverhead = 64;

  // Rough per-entry footprint used only to size the admission sketch
  // (counter count, not correctness): assuming entries this small gives
  // the sketch headroom when real entries are bigger.
  static constexpr size_t kSketchBytesPerEntry = 256;

  struct Entry {
    std::string key;
    uint64_t hash = 0;  // HashKey(key), kept so victims aren't rehashed
    std::shared_ptr<const V> value;
    size_t charge = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string,
                       typename std::list<Entry>::iterator>
        map;
    std::unique_ptr<FrequencySketch> sketch;  // null under kLru
    size_t budget = 0;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t rejected = 0;
    uint64_t admission_denied = 0;
  };

  static uint64_t HashKey(const std::string& key) {
    return Fnv1a64(key.data(), key.size());
  }
  Shard& ShardAt(uint64_t hash) { return *shards_[hash % shards_.size()]; }
  const Shard& ShardFor(const std::string& key) const {
    return *shards_[HashKey(key) % shards_.size()];
  }

  size_t budget_bytes_ = 0;
  CacheAdmission admission_ = CacheAdmission::kTinyLfu;
  std::vector<std::unique_ptr<Shard>> shards_;
  EvictionCallback eviction_cb_;
};

}  // namespace deeplens
