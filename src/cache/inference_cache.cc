#include "cache/inference_cache.h"

#include "cache/cache_key.h"
#include "cache/inflight.h"
#include "common/clock.h"
#include "core/cost_model.h"
#include "exec/batch_former.h"
#include "nn/device.h"

namespace deeplens {

namespace {

// Payload tags in the wire encoding. Append-only: reusing a retired tag
// would let an old spill log parse as the wrong type.
enum PayloadTag : uint8_t {
  kTagString = 0,
  kTagDouble = 1,
  kTagTensor = 2,
  kTagDetections = 3,
};

// Heap bytes held by each payload alternative, charged by capacity so
// the budget tracks what the allocator really committed (a string or
// vector routinely holds more than size() bytes). The inline object
// itself lives in the variant and is covered by sizeof(InferenceValue).
struct HeapSizeVisitor {
  size_t operator()(const std::string& s) const { return s.capacity(); }
  size_t operator()(double) const { return 0; }
  size_t operator()(const Tensor& t) const {
    // Element buffer + shape vector + the shared buffer's control block.
    return static_cast<size_t>(t.size()) * sizeof(float) +
           t.shape().capacity() * sizeof(int64_t) + kSharedBufferOverhead;
  }
  size_t operator()(const std::vector<nn::Detection>& d) const {
    return d.capacity() * sizeof(nn::Detection);
  }

  static constexpr size_t kSharedBufferOverhead = 48;
};

struct SerializeVisitor {
  ByteBuffer* buf;

  void operator()(const std::string& s) const {
    buf->PutU8(kTagString);
    buf->PutLengthPrefixed(Slice(s));
  }
  void operator()(double d) const {
    buf->PutU8(kTagDouble);
    buf->PutF64(d);
  }
  void operator()(const Tensor& t) const {
    buf->PutU8(kTagTensor);
    buf->PutVarint(t.rank());
    for (int64_t dim : t.shape()) buf->PutI64(dim);
    // Element count is written explicitly: rank 0 is ambiguous between
    // the default (empty, 0 elements) tensor and a scalar (1 element),
    // so the shape alone cannot tell the parser how much data follows.
    buf->PutVarint(static_cast<uint64_t>(t.size()));
    const float* data = t.data();
    for (int64_t i = 0; i < t.size(); ++i) {
      buf->PutF32(data[static_cast<size_t>(i)]);
    }
  }
  void operator()(const std::vector<nn::Detection>& dets) const {
    buf->PutU8(kTagDetections);
    buf->PutVarint(dets.size());
    for (const nn::Detection& d : dets) {
      buf->PutSignedVarint(d.bbox.x0);
      buf->PutSignedVarint(d.bbox.y0);
      buf->PutSignedVarint(d.bbox.x1);
      buf->PutSignedVarint(d.bbox.y1);
      buf->PutU8(static_cast<uint8_t>(d.label));
      buf->PutF32(d.score);
    }
  }
};

Result<Tensor> ParseTensor(ByteReader* reader) {
  DL_ASSIGN_OR_RETURN(uint64_t rank, reader->GetVarint());
  // No model emits high-rank tensors; a huge rank means a torn or alien
  // record, and rejecting it here keeps the shape loop bounded.
  if (rank > 8) {
    return Status::Corruption("inference value: implausible tensor rank");
  }
  std::vector<int64_t> shape;
  shape.reserve(static_cast<size_t>(rank));
  uint64_t volume = 1;
  for (uint64_t i = 0; i < rank; ++i) {
    DL_ASSIGN_OR_RETURN(int64_t dim, reader->GetI64());
    if (dim < 0) {
      return Status::Corruption("inference value: negative tensor dim");
    }
    // Overflow-safe cap check (divide before multiplying): dims like
    // [2^30, 2^34] would wrap a plain running product back under the
    // cap and smuggle an implausible shape through.
    if (dim != 0 &&
        volume > (1ull << 30) / static_cast<uint64_t>(dim)) {
      return Status::Corruption("inference value: implausible tensor size");
    }
    volume *= static_cast<uint64_t>(dim);
    shape.push_back(dim);
  }
  DL_ASSIGN_OR_RETURN(uint64_t count, reader->GetVarint());
  // The declared count must match the shape (rank 0 legitimately holds
  // either 0 elements — the default empty tensor — or 1, a scalar).
  const bool count_ok =
      rank == 0 ? count <= 1 : count == volume;
  if (!count_ok) {
    return Status::Corruption("inference value: tensor count/shape mismatch");
  }
  if (rank == 0 && count == 0) return Tensor();
  // Every element must actually be present in the record; checking up
  // front turns a truncated buffer into one Corruption instead of 2^30
  // underflow probes.
  if (reader->remaining() < count * sizeof(float)) {
    return Status::Corruption("inference value: truncated tensor data");
  }
  std::vector<float> data(static_cast<size_t>(count));
  for (auto& f : data) {
    DL_ASSIGN_OR_RETURN(f, reader->GetF32());
  }
  return Tensor(std::move(shape), std::move(data));
}

Result<std::vector<nn::Detection>> ParseDetections(ByteReader* reader) {
  DL_ASSIGN_OR_RETURN(uint64_t count, reader->GetVarint());
  // Each detection is at least 7 bytes on the wire; a count beyond what
  // the buffer could hold is corruption, not a big result.
  if (count > reader->remaining() / 7) {
    return Status::Corruption("inference value: implausible detection count");
  }
  std::vector<nn::Detection> dets(static_cast<size_t>(count));
  for (auto& d : dets) {
    DL_ASSIGN_OR_RETURN(int64_t x0, reader->GetSignedVarint());
    DL_ASSIGN_OR_RETURN(int64_t y0, reader->GetSignedVarint());
    DL_ASSIGN_OR_RETURN(int64_t x1, reader->GetSignedVarint());
    DL_ASSIGN_OR_RETURN(int64_t y1, reader->GetSignedVarint());
    d.bbox = nn::BBox{static_cast<int>(x0), static_cast<int>(y0),
                      static_cast<int>(x1), static_cast<int>(y1)};
    DL_ASSIGN_OR_RETURN(uint8_t label, reader->GetU8());
    if (label >= nn::kNumClasses) {
      return Status::Corruption("inference value: unknown detection class");
    }
    d.label = static_cast<nn::ObjectClass>(label);
    DL_ASSIGN_OR_RETURN(d.score, reader->GetF32());
  }
  return dets;
}

// The batch former engages only for a keyed miss (enabled cache) on a
// former that is installed and configured on — otherwise the wrappers
// keep their inline eval path, which is also the byte-identity oracle.
BatchFormer* ActiveFormer(InferenceCache* cache, const std::string& key) {
  if (cache == nullptr || key.empty()) return nullptr;
  BatchFormer* former = cache->batch_former();
  return (former != nullptr && former->enabled()) ? former : nullptr;
}

std::vector<BatchFormer::ItemOutcome> ReplicatedError(size_t n,
                                                      const Status& status) {
  return std::vector<BatchFormer::ItemOutcome>(
      n, BatchFormer::ItemOutcome(status));
}

BatchFormer::BatchFn OcrBatchFn(const nn::TinyOcr* ocr, nn::Device* device) {
  return [ocr, device](const std::vector<const BatchFormer::Item*>& items)
             -> std::vector<BatchFormer::ItemOutcome> {
    std::vector<const Image*> patches;
    patches.reserve(items.size());
    for (const BatchFormer::Item* item : items) {
      patches.push_back(item->pixels);
    }
    Stopwatch sw;
    auto texts = ocr->RecognizeTextBatch(patches, device);
    if (!texts.ok()) return ReplicatedError(items.size(), texts.status());
    CostModel::Global()->RecordDeviceBatch(model_names::kOcr, items.size(),
                                           sw.ElapsedMillis());
    std::vector<BatchFormer::ItemOutcome> out;
    out.reserve(items.size());
    for (std::string& text : *texts) {
      out.emplace_back(InferenceValue{std::move(text)});
    }
    return out;
  };
}

BatchFormer::BatchFn DepthBatchFn(const nn::TinyDepth* model,
                                  nn::Device* device) {
  return [model, device](const std::vector<const BatchFormer::Item*>& items)
             -> std::vector<BatchFormer::ItemOutcome> {
    // Pre-validate per item (the exact check — and message — PredictDepth
    // applies) so one degenerate patch fails only its own callers and the
    // rest of the batch stays byte-identical to unbatched execution.
    std::vector<BatchFormer::ItemOutcome> out(
        items.size(), BatchFormer::ItemOutcome(
                          Status::Internal("depth batch: item not evaluated")));
    std::vector<const Image*> patches;
    std::vector<nn::BBox> bboxes;
    std::vector<int> frame_hs;
    std::vector<size_t> slots;
    for (size_t i = 0; i < items.size(); ++i) {
      const BatchFormer::Item& item = *items[i];
      if (item.pixels == nullptr || item.pixels->empty() ||
          item.bbox.Height() <= 0) {
        out[i] = BatchFormer::ItemOutcome(
            Status::InvalidArgument("TinyDepth needs a non-degenerate patch"));
        continue;
      }
      patches.push_back(item.pixels);
      bboxes.push_back(item.bbox);
      frame_hs.push_back(item.frame_h);
      slots.push_back(i);
    }
    if (patches.empty()) return out;
    Stopwatch sw;
    auto depths = model->PredictDepthBatch(patches, bboxes, frame_hs, device);
    if (!depths.ok()) {
      for (size_t slot : slots) {
        out[slot] = BatchFormer::ItemOutcome(depths.status());
      }
      return out;
    }
    CostModel::Global()->RecordDeviceBatch(model_names::kDepth, patches.size(),
                                           sw.ElapsedMillis());
    for (size_t j = 0; j < slots.size(); ++j) {
      out[slots[j]] = BatchFormer::ItemOutcome(
          InferenceValue{static_cast<double>((*depths)[j])});
    }
    return out;
  };
}

}  // namespace

size_t InferenceValue::ByteSize() const {
  return sizeof(InferenceValue) + std::visit(HeapSizeVisitor{}, payload);
}

void InferenceValue::SerializeInto(ByteBuffer* buf) const {
  buf->PutU8(kFormatVersion);
  std::visit(SerializeVisitor{buf}, payload);
}

Result<InferenceValue> InferenceValue::Parse(const Slice& data) {
  ByteReader reader(data);
  DL_ASSIGN_OR_RETURN(uint8_t version, reader.GetU8());
  if (version != kFormatVersion) {
    return Status::Corruption("inference value: unsupported format version " +
                              std::to_string(version));
  }
  DL_ASSIGN_OR_RETURN(uint8_t tag, reader.GetU8());
  InferenceValue value;
  switch (tag) {
    case kTagString: {
      DL_ASSIGN_OR_RETURN(Slice s, reader.GetLengthPrefixed());
      value.payload = s.ToString();
      break;
    }
    case kTagDouble: {
      DL_ASSIGN_OR_RETURN(double d, reader.GetF64());
      value.payload = d;
      break;
    }
    case kTagTensor: {
      DL_ASSIGN_OR_RETURN(Tensor t, ParseTensor(&reader));
      value.payload = std::move(t);
      break;
    }
    case kTagDetections: {
      DL_ASSIGN_OR_RETURN(auto dets, ParseDetections(&reader));
      value.payload = std::move(dets);
      break;
    }
    default:
      return Status::Corruption("inference value: unknown payload tag " +
                                std::to_string(tag));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("inference value: trailing bytes");
  }
  return value;
}

std::string InferenceCache::KeyFor(const std::string& model,
                                   uint64_t fingerprint, uint64_t variant) {
  std::string key;
  key.reserve(model.size() + 48);
  AppendKeyPart(&key, model);
  key += '#';
  key += std::to_string(fingerprint);
  // Always encoded — a variant of 0 is a real parameter value (e.g.
  // frame height 0), not "no variant", and must not alias anything.
  key += '@';
  key += std::to_string(variant);
  return key;
}

std::string InferenceCache::ModelOnDevice(const char* model,
                                          nn::Device* device) {
  std::string key;
  AppendKeyPart(&key, model);
  key += '@';
  AppendKeyPart(&key, device != nullptr ? device->name() : "default");
  return key;
}

void InferenceCache::Put(const std::string& key, InferenceValue value) {
  const size_t charge = value.ByteSize();
  cache_.Put(key, std::make_shared<const InferenceValue>(std::move(value)),
             charge);
}

Result<std::string> CachedOcrText(const nn::TinyOcr& ocr,
                                  const Image& pixels, uint64_t fingerprint,
                                  nn::Device* device, InferenceCache* cache,
                                  bool* computed) {
  if (computed != nullptr) *computed = false;
  std::string key;
  if (cache != nullptr && cache->enabled() && fingerprint != 0) {
    key = InferenceCache::KeyFor(
        InferenceCache::ModelOnDevice(model_names::kOcr, device),
        fingerprint);
    if (auto hit = cache->Get(key)) {
      // A wrong-typed payload (conceivable only via a spill log written
      // by a build that changed a model's output type without bumping
      // the format version) degrades to a miss, never a crash.
      if (const auto* text = std::get_if<std::string>(&hit->payload)) {
        return *text;
      }
    }
  }
  BatchFormer* former = ActiveFormer(cache, key);
  // Miss-path compute, shared by the singleflight and standalone paths.
  // With a former installed, the patch stages into the cross-query batch
  // (the former Puts on our behalf before resolving the flight);
  // otherwise it evaluates inline — the pre-batching behavior and the
  // differential tests' oracle.
  const auto compute = [&]() -> Result<InferenceValue> {
    if (former != nullptr) {
      bool led = false;
      DL_ASSIGN_OR_RETURN(
          auto shared,
          former->Run(
              InferenceCache::ModelOnDevice(model_names::kOcr, device), key,
              BatchFormer::Item{&pixels, nn::BBox{}, 0}, cache,
              OcrBatchFn(&ocr, device), &led));
      if (led && computed != nullptr) *computed = true;
      return InferenceValue(*shared);
    }
    if (computed != nullptr) *computed = true;  // flight leader
    DL_ASSIGN_OR_RETURN(std::string text, ocr.RecognizeText(pixels, device));
    InferenceValue value{text};
    cache->Put(key, value);
    return value;
  };
  if (!key.empty() && cache->inflight() != nullptr) {
    // Singleflight the miss: under concurrent serving, K identical
    // misses in flight at once cost one model call. The leader Puts
    // before the flight resolves, so by the time followers (or late
    // arrivals) run, the cache answers.
    DL_ASSIGN_OR_RETURN(auto shared, cache->inflight()->Do(key, compute));
    if (const auto* text = std::get_if<std::string>(&shared->payload)) {
      return *text;
    }
    return Status::Internal("in-flight OCR value has non-string payload");
  }
  if (former != nullptr) {
    // No singleflight table installed: the former's own staged map
    // dedups identical concurrent misses.
    DL_ASSIGN_OR_RETURN(InferenceValue value, compute());
    if (const auto* text = std::get_if<std::string>(&value.payload)) {
      return *text;
    }
    return Status::Internal("batched OCR value has non-string payload");
  }
  if (computed != nullptr) *computed = true;
  DL_ASSIGN_OR_RETURN(std::string text, ocr.RecognizeText(pixels, device));
  if (!key.empty()) {
    cache->Put(key, InferenceValue{text});
  }
  return text;
}

Result<double> CachedDepth(const nn::TinyDepth& model, const Image& pixels,
                           const nn::BBox& bbox, int frame_h,
                           uint64_t fingerprint, nn::Device* device,
                           InferenceCache* cache, bool* computed) {
  if (computed != nullptr) *computed = false;
  std::string key;
  if (cache != nullptr && cache->enabled() && fingerprint != 0) {
    // The geometry cue depends on the source-frame height, so it is part
    // of the key (the bbox is already folded into the fingerprint).
    key = InferenceCache::KeyFor(
        InferenceCache::ModelOnDevice(model_names::kDepth, device),
        fingerprint, static_cast<uint64_t>(frame_h));
    if (auto hit = cache->Get(key)) {
      // Wrong-typed hit (alien spill log): recompute instead of crash.
      if (const double* depth = std::get_if<double>(&hit->payload)) {
        return *depth;
      }
    }
  }
  BatchFormer* former = ActiveFormer(cache, key);
  const auto compute = [&]() -> Result<InferenceValue> {
    if (former != nullptr) {
      bool led = false;
      DL_ASSIGN_OR_RETURN(
          auto shared,
          former->Run(
              InferenceCache::ModelOnDevice(model_names::kDepth, device), key,
              BatchFormer::Item{&pixels, bbox, frame_h}, cache,
              DepthBatchFn(&model, device), &led));
      if (led && computed != nullptr) *computed = true;
      return InferenceValue(*shared);
    }
    if (computed != nullptr) *computed = true;  // flight leader
    DL_ASSIGN_OR_RETURN(float predicted,
                        model.PredictDepth(pixels, bbox, frame_h, device));
    InferenceValue value{static_cast<double>(predicted)};
    cache->Put(key, value);
    return value;
  };
  if (!key.empty() && cache->inflight() != nullptr) {
    DL_ASSIGN_OR_RETURN(auto shared, cache->inflight()->Do(key, compute));
    if (const double* depth = std::get_if<double>(&shared->payload)) {
      return *depth;
    }
    return Status::Internal("in-flight depth value has non-double payload");
  }
  if (former != nullptr) {
    DL_ASSIGN_OR_RETURN(InferenceValue value, compute());
    if (const double* depth = std::get_if<double>(&value.payload)) {
      return *depth;
    }
    return Status::Internal("batched depth value has non-double payload");
  }
  if (computed != nullptr) *computed = true;
  DL_ASSIGN_OR_RETURN(float depth,
                      model.PredictDepth(pixels, bbox, frame_h, device));
  const double value = static_cast<double>(depth);
  if (!key.empty()) {
    cache->Put(key, InferenceValue{value});
  }
  return value;
}

}  // namespace deeplens
