#include "cache/inference_cache.h"

#include "nn/device.h"

namespace deeplens {

namespace {

struct ByteSizeVisitor {
  size_t operator()(const std::string& s) const { return s.size(); }
  size_t operator()(double) const { return sizeof(double); }
  size_t operator()(const Tensor& t) const {
    return static_cast<size_t>(t.size()) * sizeof(float) +
           t.shape().size() * sizeof(int64_t);
  }
  size_t operator()(const std::vector<nn::Detection>& d) const {
    return d.size() * sizeof(nn::Detection);
  }
};

}  // namespace

size_t InferenceValue::ByteSize() const {
  return sizeof(InferenceValue) + std::visit(ByteSizeVisitor{}, payload);
}

std::string InferenceCache::KeyFor(const std::string& model,
                                   uint64_t fingerprint, uint64_t variant) {
  std::string key;
  key.reserve(model.size() + 34);
  key += model;
  key += '#';
  key += std::to_string(fingerprint);
  if (variant != 0) {
    key += '@';
    key += std::to_string(variant);
  }
  return key;
}

std::string InferenceCache::ModelOnDevice(const char* model,
                                          nn::Device* device) {
  std::string key(model);
  key += '@';
  key += device != nullptr ? device->name() : "default";
  return key;
}

void InferenceCache::Put(const std::string& key, InferenceValue value) {
  const size_t charge = value.ByteSize();
  cache_.Put(key, std::make_shared<const InferenceValue>(std::move(value)),
             charge);
}

Result<std::string> CachedOcrText(const nn::TinyOcr& ocr,
                                  const Image& pixels, uint64_t fingerprint,
                                  nn::Device* device,
                                  InferenceCache* cache) {
  std::string key;
  if (cache != nullptr && cache->enabled() && fingerprint != 0) {
    key = InferenceCache::KeyFor(
        InferenceCache::ModelOnDevice(model_names::kOcr, device),
        fingerprint);
    if (auto hit = cache->Get(key)) {
      return std::get<std::string>(hit->payload);
    }
  }
  DL_ASSIGN_OR_RETURN(std::string text, ocr.RecognizeText(pixels, device));
  if (!key.empty()) {
    cache->Put(key, InferenceValue{text});
  }
  return text;
}

Result<double> CachedDepth(const nn::TinyDepth& model, const Image& pixels,
                           const nn::BBox& bbox, int frame_h,
                           uint64_t fingerprint, nn::Device* device,
                           InferenceCache* cache) {
  std::string key;
  if (cache != nullptr && cache->enabled() && fingerprint != 0) {
    // The geometry cue depends on the source-frame height, so it is part
    // of the key (the bbox is already folded into the fingerprint).
    key = InferenceCache::KeyFor(
        InferenceCache::ModelOnDevice(model_names::kDepth, device),
        fingerprint, static_cast<uint64_t>(frame_h));
    if (auto hit = cache->Get(key)) {
      return std::get<double>(hit->payload);
    }
  }
  DL_ASSIGN_OR_RETURN(float depth,
                      model.PredictDepth(pixels, bbox, frame_h, device));
  const double value = static_cast<double>(depth);
  if (!key.empty()) {
    cache->Put(key, InferenceValue{value});
  }
  return value;
}

}  // namespace deeplens
