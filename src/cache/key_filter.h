// Lock-free resident-key filter for the persistent inference cache: a
// fixed-size atomic Bloom filter over the keys the spill log is known to
// hold. A memory miss first asks the filter; "definitely absent" skips
// the global store mutex entirely, so morsel workers running a cold
// (never-cached) workload against a warm log never serialize on
// guaranteed-miss probes. Bloom semantics are exactly what the fast path
// needs: false positives just pay the mutex probe they would have paid
// anyway, and false negatives are impossible, so a spilled entry can
// never be hidden.
//
// Keys are only ever added (spills); tombstoned keys stay set, which is
// conservative and safe. Concurrency: Add uses relaxed fetch_or and
// MightContain relaxed loads — the filter is a hint whose worst-case
// staleness (a reader missing a just-spilled key) degrades to one
// recompute, the same outcome as losing the race without a filter.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace deeplens {

class KeyFilter {
 public:
  /// `bits` is rounded up to a power of two; the default (2^20 bits =
  /// 128 KB) keeps the false-positive rate under ~1% out to several
  /// hundred thousand spilled keys.
  explicit KeyFilter(size_t bits = size_t{1} << 20) {
    size_t n = 64;
    while (n < bits) n <<= 1;
    bit_mask_ = n - 1;
    words_ = std::make_unique<std::atomic<uint64_t>[]>(n / 64);
    for (size_t i = 0; i < n / 64; ++i) {
      words_[i].store(0, std::memory_order_relaxed);
    }
  }

  void Add(uint64_t hash) {
    for (int i = 0; i < kProbes; ++i) {
      const size_t bit = BitOf(hash, i);
      words_[bit / 64].fetch_or(uint64_t{1} << (bit % 64),
                                std::memory_order_relaxed);
    }
  }

  bool MightContain(uint64_t hash) const {
    for (int i = 0; i < kProbes; ++i) {
      const size_t bit = BitOf(hash, i);
      if ((words_[bit / 64].load(std::memory_order_relaxed) &
           (uint64_t{1} << (bit % 64))) == 0) {
        return false;
      }
    }
    return true;
  }

 private:
  static constexpr int kProbes = 3;

  size_t BitOf(uint64_t hash, int i) const {
    static constexpr uint64_t kSeeds[kProbes] = {
        0x9e3779b97f4a7c15ull, 0xc2b2ae3d27d4eb4full, 0x165667b19e3779f9ull};
    uint64_t h = (hash ^ kSeeds[i]) * kSeeds[i];
    h ^= h >> 29;
    return static_cast<size_t>(h) & bit_mask_;
  }

  std::unique_ptr<std::atomic<uint64_t>[]> words_;
  size_t bit_mask_ = 0;
};

}  // namespace deeplens
