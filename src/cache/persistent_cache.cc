#include "cache/persistent_cache.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/checksum.h"
#include "common/logging.h"
#include "storage/file_io.h"

namespace deeplens {

namespace {

// The filter hashes with the same FNV the cache shards use; the filter
// remixes internally, so sharing the input hash is harmless. Takes a
// Slice so log-index keys hash in place, without a std::string copy.
uint64_t KeyHash(const Slice& key) {
  return Fnv1a64(key.data(), key.size());
}

// Acquires an exclusive, non-blocking advisory lock. flock locks follow
// the open file description, so this also refuses a second opener inside
// the same process. Returns the held fd, or -1 (errno set) on failure.
int AcquireLockFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) return -1;
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

Result<std::unique_ptr<PersistentInferenceCache>>
PersistentInferenceCache::Open(const std::string& dir, size_t budget_bytes,
                               size_t num_shards,
                               CacheAdmission admission) {
  DL_RETURN_NOT_OK(CreateDirs(dir));
  auto cache = std::unique_ptr<PersistentInferenceCache>(
      new PersistentInferenceCache(budget_bytes, num_shards, admission,
                                   dir + "/" + kLogFileName));
  cache->lock_fd_ = AcquireLockFile(dir + "/" + kLockFileName);
  if (cache->lock_fd_ < 0) {
    return Status::AlreadyExists(
        "inference spill log in '" + dir +
        "' is held by another writer (" + std::strerror(errno) +
        "); the log is single-writer");
  }
  DL_ASSIGN_OR_RETURN(cache->store_, RecordStore::Open(cache->log_path()));
  // Compact before warm-loading: churny predecessors (eviction/overwrite
  // traffic, divergent respills) leave dead versions behind, and folding
  // them out now means the warm load scans — and the resident-key filter
  // indexes — a minimal log. A failed compaction is survivable (the old
  // log is intact), so it only warns.
  if (ShouldCompact(cache->store_->Stats())) {
    const RecordStoreStats before = cache->store_->Stats();
    const Status status = cache->store_->Compact();
    if (status.ok()) {
      DL_LOG(kInfo) << "inference spill log " << cache->log_path()
                    << ": compacted " << before.log_bytes << " -> "
                    << cache->store_->Stats().log_bytes << " bytes ("
                    << before.dead_bytes() << " dead)";
    } else {
      DL_LOG(kWarn) << "inference spill log " << cache->log_path()
                    << ": compaction failed: " << status.ToString();
    }
  }
  cache->store_->ForEachKey([&](const Slice& key) {
    cache->resident_keys_.Add(KeyHash(key));
  });
  if (cache->enabled()) cache->WarmLoad();
  // Installed after the warm load: replaying the log must never evict
  // back into the log it is reading.
  cache->cache_.SetEvictionCallback(
      [raw = cache.get()](const std::string& key,
                          std::shared_ptr<const InferenceValue> value,
                          size_t /*charge*/) {
        std::lock_guard<std::mutex> lock(raw->store_mu_);
        if (raw->store_ != nullptr) raw->SpillLocked(key, *value);
      });
  return cache;
}

PersistentInferenceCache::~PersistentInferenceCache() { Retire(); }

void PersistentInferenceCache::WarmLoad() {
  const size_t budget = cache_.budget_bytes();
  size_t attempted_bytes = 0;
  uint64_t loaded = 0;
  uint64_t dropped = 0;
  (void)store_->ScanAll([&](const Slice& key, const Slice& value) {
    auto parsed = InferenceValue::Parse(value);
    if (!parsed.ok()) {
      // Stale format or torn record: a persistent cache degrades to a
      // miss, never to a wrong answer.
      ++dropped;
      return true;
    }
    const size_t charge = parsed->ByteSize();
    attempted_bytes += charge;
    if (cache_.Put(key.ToString(),
                   std::make_shared<const InferenceValue>(std::move(*parsed)),
                   charge)) {
      ++loaded;
    }
    // Stop once a budget's worth of entries has been *offered*, whether
    // or not memory kept each one: under TinyLFU admission a full shard
    // refuses further loads (every estimate is 0 right after open), and
    // counting only accepted bytes would keep this scan parsing an
    // arbitrarily large log long after the hot tier stopped filling.
    return attempted_bytes < budget;
  });
  warm_loaded_ = loaded;
  if (dropped > 0) {
    DL_LOG(kWarn) << "inference spill log " << log_path() << ": skipped "
                  << dropped << " unreadable entries during warm load";
  }
}

std::shared_ptr<const InferenceValue> PersistentInferenceCache::Get(
    const std::string& key) {
  if (auto hit = cache_.Get(key)) return hit;
  if (!enabled()) return nullptr;
  // Known absent from the log (no false negatives): don't serialize
  // concurrent workers on the store mutex for a guaranteed miss. Covers
  // both the empty-log cold first run and, via the replay-built filter,
  // never-spilled keys against an arbitrarily large warm log.
  if (!resident_keys_.MightContain(KeyHash(key))) {
    filter_skips_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  InferenceValue value;
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    if (store_ == nullptr) return nullptr;
    auto bytes = store_->Get(Slice(key));
    if (!bytes.ok()) {
      ++disk_misses_;
      return nullptr;
    }
    auto parsed = InferenceValue::Parse(Slice(*bytes));
    if (!parsed.ok()) {
      ++disk_misses_;
      // Unreadable records can never become hits; tombstone them so
      // repeated lookups stop paying the parse attempt.
      (void)store_->Delete(Slice(key));
      return nullptr;
    }
    ++disk_hits_;
    value = std::move(*parsed);
  }
  // Promote outside the store lock: the memory Put may evict, and the
  // eviction write-through takes the store lock itself.
  auto shared = std::make_shared<const InferenceValue>(std::move(value));
  cache_.Put(key, shared, shared->ByteSize());
  return shared;
}

void PersistentInferenceCache::Put(const std::string& key,
                                   InferenceValue value) {
  const size_t charge = value.ByteSize();
  auto shared = std::make_shared<const InferenceValue>(std::move(value));
  if (cache_.Put(key, shared, charge)) return;
  if (!enabled()) return;
  // Memory rejected the entry (oversized for a shard slice). It is still
  // an expensive materialized view — keep it on disk, where the next
  // lookup finds it.
  std::lock_guard<std::mutex> lock(store_mu_);
  if (store_ != nullptr) SpillLocked(key, *shared);
}

void PersistentInferenceCache::SpillLocked(const std::string& key,
                                           const InferenceValue& value) {
  ByteBuffer buf;
  value.SerializeInto(&buf);
  // Keys are content-addressed, so a live record normally already holds
  // these exact bytes: re-appending would only grow the append-only
  // log — unboundedly so under eviction/promote churn, and on every
  // shutdown for entries warm-loaded unchanged from this log. Skip on
  // *byte equality*, not mere presence: a divergent live record (e.g. a
  // wrong-typed value from a build that changed a payload type without
  // bumping the format version) must be overwritten so the log
  // self-heals instead of re-triggering recompute on every restart.
  if (auto live = store_->Get(Slice(key));
      live.ok() && Slice(*live) == buf.AsSlice()) {
    return;
  }
  const Status status = store_->Put(Slice(key), buf.AsSlice());
  if (!status.ok()) {
    DL_LOG(kWarn) << "inference spill log " << log_path()
                  << ": write failed: " << status.ToString();
    return;
  }
  ++spilled_;
  resident_keys_.Add(KeyHash(key));
}

Status PersistentInferenceCache::Compact() {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (store_ == nullptr) return Status::OK();
  const RecordStoreStats before = store_->Stats();
  DL_RETURN_NOT_OK(store_->Compact());
  DL_LOG(kInfo) << "inference spill log " << log_path() << ": compacted "
                << before.log_bytes << " -> " << store_->Stats().log_bytes
                << " bytes";
  return Status::OK();
}

Status PersistentInferenceCache::Persist() {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (store_ == nullptr) return Status::OK();
  cache_.ForEach([this](const std::string& key,
                        const std::shared_ptr<const InferenceValue>& value,
                        size_t /*charge*/) { SpillLocked(key, *value); });
  return store_->Flush();
}

void PersistentInferenceCache::Retire() {
  const Status status = Persist();
  if (!status.ok()) {
    DL_LOG(kWarn) << "inference spill log " << log_path()
                  << ": final persist failed: " << status.ToString();
  }
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    store_.reset();
    if (lock_fd_ >= 0) {
      ::close(lock_fd_);  // releases the flock; a successor can open now
      lock_fd_ = -1;
    }
  }
  Clear();
}

CacheStats PersistentInferenceCache::Stats() const {
  CacheStats stats = cache_.Stats();
  std::lock_guard<std::mutex> lock(store_mu_);
  stats.disk_hits = disk_hits_;
  stats.disk_misses = disk_misses_;
  stats.spilled = spilled_;
  stats.warm_loaded = warm_loaded_;
  stats.filter_skips = filter_skips_.load(std::memory_order_relaxed);
  if (store_ != nullptr) {
    const RecordStoreStats rs = store_->Stats();
    stats.disk_entries = rs.num_records;
    stats.disk_bytes = rs.log_bytes;
    stats.disk_live_bytes = rs.live_bytes;
  }
  return stats;
}

}  // namespace deeplens
