// SegmentCache: memoization of decoded group-of-pictures segments, so
// random reads over DLV1 streams decode each GOP once instead of
// replaying the stream per read (paper §3.1: the Encoded File layout's
// whole cost is redundant sequential decode). Modeled on pod5's
// chunked-record reads: the unit of caching is the codec's natural
// chunk — a GOP (EncodedFile) or a clip (SegmentedFile) — keyed by
// (stream identity, start frame).
//
// Stream identity includes the file's byte size and a CRC so a rewritten
// file at the same path can never serve stale frames.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cache/sharded_lru.h"
#include "tensor/tensor.h"

namespace deeplens {

class SegmentCache {
 public:
  /// A decoded run of consecutive frames starting at the keyed frameno.
  using Segment = std::vector<Image>;

  /// `budget_bytes` = 0 disables the cache. Segments are large (a whole
  /// decoded GOP/clip) and must fit inside one shard's slice of the
  /// budget, so the shard count is capped low — readers are few compared
  /// to morsel workers, and a finer split would silently reject every
  /// realistic segment. Admission defaults to TinyLFU (a one-pass sweep
  /// over a long video cannot flush the hot GOPs).
  SegmentCache(size_t budget_bytes, size_t num_shards,
               CacheAdmission admission = CacheAdmission::kTinyLfu)
      : cache_(budget_bytes, std::min<size_t>(num_shards, kMaxShards),
               admission) {}

  static constexpr size_t kMaxShards = 4;

  bool enabled() const { return cache_.enabled(); }

  /// Builds a collision-safe stream identity for a stored stream. The
  /// path component is length-prefixed so a path containing '#'/'@' can
  /// never alias another stream's identity (or, once keys reach a spill
  /// log, another stream's durable entries).
  static std::string StreamId(const std::string& path, uint64_t size_bytes,
                              uint32_t crc);

  std::shared_ptr<const Segment> Get(const std::string& stream_id,
                                     int start_frame);
  bool Put(const std::string& stream_id, int start_frame, Segment frames);
  /// Shared-ownership insert: lets a reader keep using the segment it
  /// just decoded without re-fetching (and regardless of later eviction).
  /// Returns false when the segment was not admitted (cache disabled, or
  /// the segment alone exceeds a shard's budget slice) so readers can
  /// keep a fallback reference instead of re-decoding forever.
  bool Put(const std::string& stream_id, int start_frame,
           std::shared_ptr<const Segment> frames);

  /// Residency probe: no stats, no recency update. Lets the decode loop
  /// skip re-inserting GOPs that are already resident.
  bool Contains(const std::string& stream_id, int start_frame) const;

  void Clear() { cache_.Clear(); }
  CacheStats Stats() const { return cache_.Stats(); }

 private:
  static std::string KeyFor(const std::string& stream_id, int start_frame);

  ShardedLruCache<Segment> cache_;
};

}  // namespace deeplens
