// The cache admission policy enum, split into its own header so config
// surfaces (cache_config.h, env plumbing) can name the policy without
// compiling the templated cache implementation.
#pragma once

namespace deeplens {

/// Admission policy for a would-evict insert. Eviction order is always
/// LRU; this only decides whether a new entry may displace residents.
enum class CacheAdmission {
  /// Admit every insert (a cold scan can flush the working set).
  kLru,
  /// Admit only candidates whose sketch-estimated access frequency beats
  /// the eviction victim's (scan-resistant).
  kTinyLfu,
};

inline const char* CacheAdmissionName(CacheAdmission admission) {
  return admission == CacheAdmission::kTinyLfu ? "tinylfu" : "lru";
}

}  // namespace deeplens
