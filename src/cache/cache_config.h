// Sizing knobs for the Database-owned caches. The environment knob
// DEEPLENS_CACHE_MB sets the *total* byte budget, split evenly between
// the inference cache and the decoded-segment cache; 0 disables both.
// DEEPLENS_CACHE_DIR names a directory for the persistent inference
// cache's spill log (unset = volatile-only caching, the pre-persistence
// behavior). Shard counts default to the global thread pool width so
// morsel workers rarely contend on a shard mutex.
#pragma once

#include <cstddef>
#include <string>

#include "cache/admission.h"

namespace deeplens {

struct CacheConfig {
  /// Total budget in bytes across both caches. 0 = caching disabled.
  size_t budget_bytes = kDefaultBudgetBytes;
  /// Mutex shards per cache; 0 = auto (2× the global pool width).
  size_t shards = 0;
  /// Directory for the inference cache's persistent spill log. Empty =
  /// in-memory only (NN UDF results die with the process).
  std::string cache_dir;
  /// Admission policy for both caches. TinyLFU (the default) refuses
  /// would-evict inserts colder than their eviction victim, so scan
  /// traffic cannot flush the hot working set; kLru admits everything.
  CacheAdmission admission = CacheAdmission::kTinyLfu;

  static constexpr size_t kDefaultBudgetBytes = 64ull << 20;  // 64 MB

  /// Reads DEEPLENS_CACHE_MB (validated like DEEPLENS_NUM_THREADS:
  /// garbage / negative values fall back to the 64 MB default; an
  /// explicit 0 disables caching), DEEPLENS_CACHE_DIR (validated path;
  /// blank/control-character values fall back to unset), and
  /// DEEPLENS_CACHE_ADMISSION (`lru` | `tinylfu`, case-insensitive;
  /// anything else warns and falls back to tinylfu).
  static CacheConfig FromEnv();

  size_t inference_budget() const { return budget_bytes / 2; }
  size_t segment_budget() const { return budget_bytes - budget_bytes / 2; }
  /// The resolved shard count (applies the auto rule).
  size_t ResolvedShards() const;
};

}  // namespace deeplens
