// 4-bit count-min sketch with periodic halving — the frequency
// "doorkeeper" behind TinyLFU admission (Einziger et al., "TinyLFU: A
// Highly Efficient Cache Admission Policy"). The cache records every
// access; on a would-evict insert it asks the sketch whether the
// candidate has been touched more often than the eviction victim, and
// refuses the insert otherwise. One cold scan over a view can therefore
// no longer flush a hot inference working set: every scan key carries an
// estimated frequency of ~1 and loses to any key that has ever been
// re-read.
//
// Counters saturate at 15 (4 bits) and every counter is halved once the
// number of recorded accesses reaches a multiple of the sketch size (the
// "sample period"), so the estimate tracks recent popularity instead of
// all-time popularity and a formerly-hot key can age out.
//
// Not thread-safe: each ShardedLruCache shard owns one sketch and
// touches it only under the shard mutex it already holds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace deeplens {

class FrequencySketch {
 public:
  /// Sizes the sketch for roughly `est_entries` resident cache entries.
  /// The counter table is 16 counters per estimated entry, rounded up to
  /// a power of two and clamped to [64, 2^18] counters (a 2^18-counter
  /// sketch is 128 KB — the ceiling for one shard of a huge cache). The
  /// sample period is 10 accesses per estimated entry (Caffeine's
  /// ratio): with 4 counter-increments per access that works out to ~2.5
  /// increments per counter per period, so unrelated uniform traffic
  /// cannot saturate the table between halvings and a genuinely cold key
  /// keeps a near-zero estimate.
  explicit FrequencySketch(size_t est_entries) {
    size_t counters = 64;
    while (counters < est_entries * kCountersPerEntry &&
           counters < kMaxCounters) {
      counters <<= 1;
    }
    table_.assign(counters / kCountersPerWord, 0);
    index_mask_ = counters - 1;
    sample_period_ = kSampleFactor * counters / kCountersPerEntry;
  }

  /// Records one access to the key hashed to `hash`. Each of the four
  /// derived counters is incremented (saturating at 15); once the sample
  /// period elapses, every counter in the table is halved.
  void Increment(uint64_t hash) {
    for (int i = 0; i < kHashes; ++i) {
      const size_t idx = IndexOf(hash, i);
      const uint64_t nibble = NibbleAt(idx);
      if (nibble < kMaxCount) {
        table_[idx / kCountersPerWord] +=
            uint64_t{1} << (4 * (idx % kCountersPerWord));
      }
    }
    if (++accesses_ >= sample_period_) Halve();
  }

  /// Estimated access count for `hash`: the minimum over its four
  /// counters (the count-min bound — overestimates are possible under
  /// collision, underestimates only through halving).
  uint32_t Estimate(uint64_t hash) const {
    uint32_t est = kMaxCount;
    for (int i = 0; i < kHashes; ++i) {
      const uint32_t nibble =
          static_cast<uint32_t>(NibbleAt(IndexOf(hash, i)));
      if (nibble < est) est = nibble;
    }
    return est;
  }

  size_t num_counters() const { return index_mask_ + 1; }
  uint64_t halvings() const { return halvings_; }

 private:
  static constexpr int kHashes = 4;
  static constexpr uint64_t kMaxCount = 15;  // 4-bit saturating counters
  static constexpr size_t kCountersPerWord = 16;
  static constexpr size_t kCountersPerEntry = 16;
  static constexpr size_t kMaxCounters = size_t{1} << 18;
  static constexpr size_t kSampleFactor = 10;  // accesses per entry

  // One multiplicative remix per probe; the odd constants are from
  // splitmix64 / Murmur3 finalizers, so the four indexes are pairwise
  // near-independent even for sequential input hashes.
  size_t IndexOf(uint64_t hash, int i) const {
    static constexpr uint64_t kSeeds[kHashes] = {
        0x9e3779b97f4a7c15ull, 0xbf58476d1ce4e5b9ull, 0x94d049bb133111ebull,
        0xff51afd7ed558ccdull};
    uint64_t h = (hash + kSeeds[i]) * kSeeds[i];
    h ^= h >> 32;
    return static_cast<size_t>(h) & index_mask_;
  }

  uint64_t NibbleAt(size_t idx) const {
    return (table_[idx / kCountersPerWord] >>
            (4 * (idx % kCountersPerWord))) &
           0xf;
  }

  void Halve() {
    for (uint64_t& word : table_) {
      word = (word >> 1) & 0x7777777777777777ull;
    }
    accesses_ /= 2;
    ++halvings_;
  }

  std::vector<uint64_t> table_;
  size_t index_mask_ = 0;
  size_t sample_period_ = 0;
  size_t accesses_ = 0;
  uint64_t halvings_ = 0;
};

}  // namespace deeplens
