#include "common/checksum.h"

namespace deeplens {

namespace {
// Lazily-built CRC32C (Castagnoli polynomial, reflected) lookup table.
struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82f63b78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
  }
};
const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}
}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const Crc32cTable& tab = Table();
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = tab.t[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace deeplens
