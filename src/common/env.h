// Validated parsing of the DEEPLENS_* environment tuning knobs. Every
// knob that sizes a resource (thread pool width, cache budget) goes
// through PositiveIntFromEnv so zero, negative, overflowing, or garbage
// values fall back to a sane default instead of silently misconfiguring
// the process.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>

namespace deeplens {

/// Parses environment variable `name` as a strictly positive decimal
/// integer. Returns `fallback` when the variable is unset. Malformed
/// values — empty, non-numeric, trailing garbage, zero, negative, or
/// greater than `max_value` — are rejected with a warning log and also
/// fall back. `allow_zero` admits 0 as a valid value (used by knobs where
/// 0 means "disabled").
uint64_t PositiveIntFromEnv(const char* name, uint64_t fallback,
                            uint64_t max_value = UINT64_MAX,
                            bool allow_zero = false);

/// Parses environment variable `name` as a strictly positive power of
/// two, via the PositiveIntFromEnv validation path. Values that parse but
/// are not powers of two are clamped *down* to the nearest power of two
/// with a warning (a partition-count knob rounded down still honors the
/// operator's intent; rounding up could double memory). Garbage, zero,
/// negative, or out-of-range values fall back like PositiveIntFromEnv
/// does. `fallback` is returned verbatim when the variable is unset or
/// rejected — callers using 0 as "auto/heuristic" get that back.
uint64_t PowerOfTwoFromEnv(const char* name, uint64_t fallback,
                           uint64_t max_value = UINT64_MAX);

/// Parses environment variable `name` as a filesystem path. Returns
/// `fallback` when unset. Values that are empty, whitespace-only, or
/// contain control characters are rejected with a warning and fall back:
/// a blank path knob is a misconfiguration, never a request for "here".
std::string PathFromEnv(const char* name, const std::string& fallback = "");

/// Parses environment variable `name` as a comma-separated `key=weight`
/// map (e.g. `DEEPLENS_TENANT_PRIORITY=gold=4,free=1`). Keys are
/// arbitrary non-empty strings without '=', ',', whitespace, or control
/// characters; weights are decimal integers in [1, max_weight]. The spec
/// is all-or-nothing: any malformed entry (missing '=', empty key, zero
/// / negative / garbage / out-of-range weight, duplicate key) rejects
/// the whole value with a warning and returns `fallback` — a policy map
/// must never half-apply because one entry has a typo. Unset returns
/// `fallback`.
std::map<std::string, uint64_t> WeightMapFromEnv(
    const char* name, uint64_t max_weight,
    const std::map<std::string, uint64_t>& fallback = {});

/// Parses environment variable `name` as a decimal floating-point value
/// in [min_value, max_value]. Returns `fallback` when unset. The value
/// must be a bare decimal number — an optional leading '-', digits, and
/// at most one '.' (e.g. "0.25", "1", "0."): scientific notation, hex
/// floats, inf/nan, whitespace, and trailing garbage are rejected with a
/// warning and fall back, as are out-of-range values. This is the float
/// analogue of PositiveIntFromEnv, used by ratio/threshold knobs.
double BoundedDoubleFromEnv(const char* name, double fallback,
                            double min_value, double max_value);

/// Parses environment variable `name` as one of a closed set of choices
/// (matched ASCII-case-insensitively; the canonical lowercase spelling is
/// returned). Unset returns `fallback`; a value outside the set is
/// rejected with a warning listing the valid choices and falls back —
/// a policy knob must never silently degrade to a default because of a
/// typo the operator can't see.
std::string ChoiceFromEnv(const char* name,
                          std::initializer_list<const char*> choices,
                          const char* fallback);

}  // namespace deeplens
