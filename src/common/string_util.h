// Small string helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace deeplens {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(const std::string& s, char sep);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);

/// ASCII lowercase copy.
std::string ToLowerAscii(const std::string& s);

/// True if `s` starts with / ends with the given affix.
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a byte count as "12.3 MB" style text.
std::string HumanBytes(uint64_t bytes);

}  // namespace deeplens
