#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace deeplens {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kSaturated:
      return "Saturated";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(std::make_shared<const State>(State{code, std::move(msg)})) {}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return state_ == nullptr ? kEmpty : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

namespace internal {
void FatalStatus(const std::string& what, const char* file, int line) {
  std::fprintf(stderr, "FATAL %s:%d: %s\n", file, line, what.c_str());
  std::abort();
}
}  // namespace internal

}  // namespace deeplens
