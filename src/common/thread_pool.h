// Fixed-size worker pool used by the vectorized / GPU-simulated execution
// backends and by parallel ETL.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace deeplens {

/// \brief Simple FIFO thread pool. Tasks are std::function<void()>; use
/// Submit() for fire-and-forget or ParallelFor() for blocking data-parallel
/// loops.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Returns a future completed when the task finishes.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(i) for i in [begin, end), split into roughly equal chunks
  /// across the pool, and blocks until all complete. Grain controls the
  /// minimum chunk size.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn, size_t grain = 1);

  /// Process-wide shared pool sized to the hardware concurrency (minimum
  /// 2 workers); the DEEPLENS_NUM_THREADS environment variable overrides
  /// the width, with 1 forcing serial execution everywhere.
  static ThreadPool& Global();

  /// True when the calling thread is a pool worker (of any pool). Blocking
  /// parallel constructs use this to degrade to serial execution instead of
  /// risking a deadlock on nested waits.
  static bool InWorker();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace deeplens
