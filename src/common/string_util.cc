#include "common/string_util.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace deeplens {

std::vector<std::string> SplitString(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLowerAscii(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string StringFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (n < 0) {
    va_end(ap2);
    return "";
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return StringFormat("%.2f %s", v, units[u]);
}

}  // namespace deeplens
