// Minimal leveled logging to stderr. Off by default below kWarn so that
// benchmarks are not polluted; set via SetLogLevel or DEEPLENS_LOG env var.
#pragma once

#include <sstream>
#include <string>

namespace deeplens {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogEmit(LogLevel level, const char* file, int line,
             const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogEmit(level_, file_, line_, ss_.str()); }
  std::ostringstream& stream() { return ss_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream ss_;
};
}  // namespace internal

#define DL_LOG(level)                                                     \
  if (static_cast<int>(::deeplens::LogLevel::level) <                     \
      static_cast<int>(::deeplens::GetLogLevel())) {                      \
  } else                                                                  \
    ::deeplens::internal::LogMessage(::deeplens::LogLevel::level,         \
                                     __FILE__, __LINE__)                  \
        .stream()

}  // namespace deeplens
