#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace deeplens {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::once_flag g_env_once;

void InitFromEnv() {
  const char* env = std::getenv("DEEPLENS_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) g_level = 0;
  else if (std::strcmp(env, "info") == 0) g_level = 1;
  else if (std::strcmp(env, "warn") == 0) g_level = 2;
  else if (std::strcmp(env, "error") == 0) g_level = 3;
}

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel GetLogLevel() {
  std::call_once(g_env_once, InitFromEnv);
  return static_cast<LogLevel>(g_level.load());
}

namespace internal {
void LogEmit(LogLevel level, const char* file, int line,
             const std::string& msg) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               msg.c_str());
}
}  // namespace internal

}  // namespace deeplens
