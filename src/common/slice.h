// A non-owning view over contiguous bytes (RocksDB idiom).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace deeplens {

/// \brief Non-owning byte view. The referenced storage must outlive the
/// Slice. Comparable lexicographically (used as index key ordering).
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  /// From a NUL-terminated C string.
  Slice(const char* s)  // NOLINT(runtime/explicit)
      : data_(reinterpret_cast<const uint8_t*>(s)), size_(std::strlen(s)) {}
  Slice(const std::string& s)  // NOLINT(runtime/explicit)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  Slice(const std::vector<uint8_t>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Drops the first n bytes from this view.
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }
  std::vector<uint8_t> ToBytes() const {
    return std::vector<uint8_t>(data_, data_ + size_);
  }
  std::string_view ToView() const {
    return std::string_view(reinterpret_cast<const char*>(data_), size_);
  }

  /// Three-way lexicographic comparison: <0, 0, >0.
  int Compare(const Slice& other) const {
    const size_t n = size_ < other.size_ ? size_ : other.size_;
    int r = (n == 0) ? 0 : std::memcmp(data_, other.data_, n);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return 1;
    }
    return r;
  }

  bool StartsWith(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           std::memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0);
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.Compare(b) < 0;
}

}  // namespace deeplens
