// Binary serialization helpers: fixed-width little-endian integers, varints,
// length-prefixed strings, and order-preserving index-key encodings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace deeplens {

/// \brief Growable byte buffer used as a serialization sink.
class ByteBuffer {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF32(float v);
  void PutF64(double v);
  /// LEB128 unsigned varint.
  void PutVarint(uint64_t v);
  /// Zigzag-encoded signed varint.
  void PutSignedVarint(int64_t v);
  /// Varint length prefix followed by raw bytes.
  void PutLengthPrefixed(const Slice& s);
  void PutBytes(const void* data, size_t n);

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }
  Slice AsSlice() const { return Slice(buf_.data(), buf_.size()); }

 private:
  std::vector<uint8_t> buf_;
};

/// \brief Cursor over a byte slice used as a deserialization source.
/// All Get* methods return Corruption on underflow.
class ByteReader {
 public:
  explicit ByteReader(Slice s) : s_(s) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<float> GetF32();
  Result<double> GetF64();
  Result<uint64_t> GetVarint();
  Result<int64_t> GetSignedVarint();
  /// Returns a view into the underlying slice (no copy).
  Result<Slice> GetLengthPrefixed();
  Result<Slice> GetBytes(size_t n);

  size_t remaining() const { return s_.size(); }
  bool AtEnd() const { return s_.empty(); }

 private:
  Slice s_;
};

// --- Order-preserving key encodings -----------------------------------
// These map values to byte strings whose lexicographic order equals the
// natural order of the values, so they can be used as B+Tree / sorted-file
// keys directly.

/// Encodes a uint64 as 8 big-endian bytes (order-preserving).
std::string EncodeKeyU64(uint64_t v);
/// Encodes an int64 with the sign bit flipped (order-preserving).
std::string EncodeKeyI64(int64_t v);
/// Encodes a double using the IEEE-754 total-order trick.
std::string EncodeKeyF64(double v);

Result<uint64_t> DecodeKeyU64(const Slice& s);
Result<int64_t> DecodeKeyI64(const Slice& s);
Result<double> DecodeKeyF64(const Slice& s);

}  // namespace deeplens
