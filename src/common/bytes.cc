#include "common/bytes.h"

#include <cstring>

namespace deeplens {

namespace {
Status Underflow(const char* what) {
  return Status::Corruption(std::string("byte reader underflow reading ") +
                            what);
}
}  // namespace

void ByteBuffer::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v & 0xff));
  PutU8(static_cast<uint8_t>(v >> 8));
}
void ByteBuffer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}
void ByteBuffer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}
void ByteBuffer::PutF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  PutU32(bits);
}
void ByteBuffer::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(bits);
}
void ByteBuffer::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}
void ByteBuffer::PutSignedVarint(int64_t v) {
  // Zigzag: maps small-magnitude signed values to small unsigned values.
  PutVarint((static_cast<uint64_t>(v) << 1) ^
            static_cast<uint64_t>(v >> 63));
}
void ByteBuffer::PutLengthPrefixed(const Slice& s) {
  PutVarint(s.size());
  PutBytes(s.data(), s.size());
}
void ByteBuffer::PutBytes(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

Result<uint8_t> ByteReader::GetU8() {
  if (s_.size() < 1) return Underflow("u8");
  uint8_t v = s_[0];
  s_.RemovePrefix(1);
  return v;
}
Result<uint16_t> ByteReader::GetU16() {
  if (s_.size() < 2) return Underflow("u16");
  uint16_t v = static_cast<uint16_t>(s_[0]) |
               (static_cast<uint16_t>(s_[1]) << 8);
  s_.RemovePrefix(2);
  return v;
}
Result<uint32_t> ByteReader::GetU32() {
  if (s_.size() < 4) return Underflow("u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(s_[i]) << (8 * i);
  s_.RemovePrefix(4);
  return v;
}
Result<uint64_t> ByteReader::GetU64() {
  if (s_.size() < 8) return Underflow("u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(s_[i]) << (8 * i);
  s_.RemovePrefix(8);
  return v;
}
Result<int64_t> ByteReader::GetI64() {
  DL_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}
Result<float> ByteReader::GetF32() {
  DL_ASSIGN_OR_RETURN(uint32_t bits, GetU32());
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}
Result<double> ByteReader::GetF64() {
  DL_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}
Result<uint64_t> ByteReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (s_.empty()) return Underflow("varint");
    if (shift > 63) return Status::Corruption("varint too long");
    uint8_t b = s_[0];
    s_.RemovePrefix(1);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return v;
}
Result<int64_t> ByteReader::GetSignedVarint() {
  DL_ASSIGN_OR_RETURN(uint64_t z, GetVarint());
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}
Result<Slice> ByteReader::GetLengthPrefixed() {
  DL_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
  return GetBytes(static_cast<size_t>(n));
}
Result<Slice> ByteReader::GetBytes(size_t n) {
  if (s_.size() < n) return Underflow("bytes");
  Slice out(s_.data(), n);
  s_.RemovePrefix(n);
  return out;
}

std::string EncodeKeyU64(uint64_t v) {
  std::string out(8, '\0');
  for (int i = 0; i < 8; ++i)
    out[i] = static_cast<char>((v >> (8 * (7 - i))) & 0xff);
  return out;
}
std::string EncodeKeyI64(int64_t v) {
  // Flip the sign bit so negative values sort before positives.
  return EncodeKeyU64(static_cast<uint64_t>(v) ^ (1ull << 63));
}
std::string EncodeKeyF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  // IEEE-754 total order: positive values get the sign bit set; negative
  // values are bitwise complemented.
  if (bits & (1ull << 63)) {
    bits = ~bits;
  } else {
    bits |= (1ull << 63);
  }
  return EncodeKeyU64(bits);
}

Result<uint64_t> DecodeKeyU64(const Slice& s) {
  if (s.size() != 8) return Status::Corruption("bad u64 key length");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | s[i];
  return v;
}
Result<int64_t> DecodeKeyI64(const Slice& s) {
  DL_ASSIGN_OR_RETURN(uint64_t v, DecodeKeyU64(s));
  return static_cast<int64_t>(v ^ (1ull << 63));
}
Result<double> DecodeKeyF64(const Slice& s) {
  DL_ASSIGN_OR_RETURN(uint64_t bits, DecodeKeyU64(s));
  if (bits & (1ull << 63)) {
    bits &= ~(1ull << 63);
  } else {
    bits = ~bits;
  }
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

}  // namespace deeplens
