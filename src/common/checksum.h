// CRC32C checksum (software implementation) used to detect page / record
// corruption in the storage layer.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace deeplens {

/// Computes CRC32C over `data`, seeded with `seed` (0 for a fresh CRC).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32c(const Slice& s, uint32_t seed = 0) {
  return Crc32c(s.data(), s.size(), seed);
}

/// 64-bit FNV-1a hash, used by the hash index and hash join.
uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed = 14695981039346656037ull);

inline uint64_t Fnv1a64(const Slice& s) { return Fnv1a64(s.data(), s.size()); }

}  // namespace deeplens
