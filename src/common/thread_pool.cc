#include "common/thread_pool.h"

#include <algorithm>

#include "common/env.h"

namespace deeplens {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn,
                             size_t grain) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t max_chunks = (n + grain - 1) / grain;
  const size_t num_chunks = std::min(max_chunks, num_threads() * 4);
  if (num_chunks <= 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t lo = begin + c * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futs.push_back(Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.wait();
}

ThreadPool& ThreadPool::Global() {
  // DEEPLENS_NUM_THREADS overrides the pool width (1 = fully serial
  // execution everywhere); the default keeps at least two workers so the
  // parallel paths stay exercised even on single-core machines. Zero,
  // negative, or garbage values fall back to the hardware default rather
  // than constructing a pool with no workers.
  static ThreadPool pool(static_cast<size_t>(PositiveIntFromEnv(
      "DEEPLENS_NUM_THREADS",
      std::max<uint64_t>(2, std::thread::hardware_concurrency()),
      /*max_value=*/4096)));
  return pool;
}

namespace {
thread_local bool t_in_pool_worker = false;
}  // namespace

bool ThreadPool::InWorker() { return t_in_pool_worker; }

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace deeplens
