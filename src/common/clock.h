// Wall-clock timing helpers for benchmarks and the cost model.
#pragma once

#include <chrono>
#include <cstdint>

namespace deeplens {

/// Monotonic timestamp in nanoseconds.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// \brief Scoped stopwatch. `ElapsedMillis()` may be read repeatedly.
class Stopwatch {
 public:
  Stopwatch() : start_(NowNanos()) {}
  void Reset() { start_ = NowNanos(); }
  uint64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  uint64_t start_;
};

}  // namespace deeplens
