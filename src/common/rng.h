// Deterministic pseudo-random number generation. All synthetic data in
// DeepLens is seeded so experiments and tests are exactly reproducible.
#pragma once

#include <cstdint>

namespace deeplens {

/// \brief splitmix64-seeded xoshiro256** generator. Deterministic across
/// platforms; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedull) {
    // splitmix64 to spread the seed across the state.
    uint64_t z = seed;
    for (int i = 0; i < 4; ++i) {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      s_[i] = x ^ (x >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextU64Below(uint64_t n) { return NextU64() % n; }

  /// Uniform int in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextU64Below(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }
  /// Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextDouble()); }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586 * u2);
  }

  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace deeplens
