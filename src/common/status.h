// Status / Result error-handling primitives (Arrow/RocksDB idiom).
//
// DeepLens does not throw exceptions across public API boundaries. Every
// fallible operation returns a `Status`, or a `Result<T>` which is either a
// value or a `Status`.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace deeplens {

/// Error categories used across the system.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIOError = 4,
  kCorruption = 5,
  kNotImplemented = 6,
  kOutOfRange = 7,
  kTypeError = 8,
  kInternal = 9,
  /// The serving layer is at its concurrency bound and the admission
  /// deadline expired — retry later. A load-shedding signal, distinct
  /// from a real failure: the query itself was never started.
  kSaturated = 10,
};

/// Returns a human-readable name for a status code ("OK", "IOError", ...).
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation.
///
/// An OK status carries no allocation; error statuses carry a code plus a
/// message. Statuses are cheap to copy (shared message payload).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Saturated(std::string msg) {
    return Status(StatusCode::kSaturated, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// The error message; empty for OK.
  const std::string& message() const;

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsSaturated() const { return code() == StatusCode::kSaturated; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;  // nullptr == OK
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. `s` must not be OK.
  Result(Status s) : v_(std::move(s)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  /// Access the value; undefined if !ok().
  T& value() & { return std::get<T>(v_); }
  const T& value() const& { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out, or returns `alt` on error.
  T ValueOr(T alt) const& { return ok() ? value() : std::move(alt); }

 private:
  std::variant<T, Status> v_;
};

// Propagate-on-error macros (Arrow idiom).
#define DL_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::deeplens::Status _st = (expr);           \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define DL_CONCAT_IMPL(a, b) a##b
#define DL_CONCAT(a, b) DL_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns the status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define DL_ASSIGN_OR_RETURN(lhs, expr)                        \
  DL_ASSIGN_OR_RETURN_IMPL(DL_CONCAT(_dl_res_, __LINE__), lhs, expr)
#define DL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();

/// Aborts the process if `expr` is not OK. For use in tests/benchmarks and
/// unrecoverable invariant violations only.
#define DL_CHECK_OK(expr)                                              \
  do {                                                                 \
    ::deeplens::Status _st = (expr);                                   \
    if (!_st.ok()) {                                                   \
      ::deeplens::internal::FatalStatus(_st.ToString(), __FILE__,      \
                                        __LINE__);                     \
    }                                                                  \
  } while (0)

namespace internal {
[[noreturn]] void FatalStatus(const std::string& what, const char* file,
                              int line);
}  // namespace internal

}  // namespace deeplens
