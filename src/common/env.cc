#include "common/env.h"

#include <cerrno>
#include <cstdlib>

#include "common/logging.h"

namespace deeplens {

uint64_t PositiveIntFromEnv(const char* name, uint64_t fallback,
                            uint64_t max_value, bool allow_zero) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(env, &end, 10);
  // strtoll tolerates leading whitespace and '+'; a knob must be a bare
  // decimal number (optionally negative, rejected below), nothing else.
  const bool bare_decimal =
      (env[0] >= '0' && env[0] <= '9') ||
      (env[0] == '-' && env[1] >= '0' && env[1] <= '9');
  const bool numeric =
      bare_decimal && end != env && end != nullptr && *end == '\0';
  if (!numeric || errno == ERANGE || parsed < 0 ||
      (parsed == 0 && !allow_zero) ||
      static_cast<unsigned long long>(parsed) > max_value) {
    DL_LOG(kWarn) << name << "='" << env
                  << "' is not a valid value; using default " << fallback;
    return fallback;
  }
  return static_cast<uint64_t>(parsed);
}

uint64_t PowerOfTwoFromEnv(const char* name, uint64_t fallback,
                           uint64_t max_value) {
  const uint64_t parsed = PositiveIntFromEnv(name, fallback, max_value);
  if (parsed == fallback || (parsed & (parsed - 1)) == 0) return parsed;
  uint64_t clamped = 1;
  while (clamped * 2 <= parsed) clamped *= 2;
  DL_LOG(kWarn) << name << "=" << parsed
                << " is not a power of two; clamping down to " << clamped;
  return clamped;
}

std::string ChoiceFromEnv(const char* name,
                          std::initializer_list<const char*> choices,
                          const char* fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  std::string value(env);
  for (char& c : value) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  for (const char* choice : choices) {
    if (value == choice) return choice;
  }
  std::string allowed;
  for (const char* choice : choices) {
    if (!allowed.empty()) allowed += "|";
    allowed += choice;
  }
  // Mask control bytes before echoing (same escape-injection hygiene as
  // PathFromEnv).
  std::string shown(env);
  for (char& c : shown) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 || u == 0x7f) c = '?';
  }
  DL_LOG(kWarn) << name << "='" << shown << "' is not one of {" << allowed
                << "}; using default '" << fallback << "'";
  return fallback;
}

std::string PathFromEnv(const char* name, const std::string& fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const std::string value(env);
  bool all_space = true;
  bool has_control = false;
  for (unsigned char c : value) {
    if (c != ' ' && c != '\t') all_space = false;
    if (c < 0x20 || c == 0x7f) has_control = true;
  }
  if (value.empty() || all_space || has_control) {
    // Echo the rejected value with control bytes masked — the raw bytes
    // of a value rejected *for* containing control characters must not
    // reach the terminal (escape injection / log forgery).
    std::string shown = value;
    for (char& c : shown) {
      const unsigned char u = static_cast<unsigned char>(c);
      if (u < 0x20 || u == 0x7f) c = '?';
    }
    DL_LOG(kWarn) << name << "='" << shown
                  << "' is not a usable path; using default '" << fallback
                  << "'";
    return fallback;
  }
  return value;
}

}  // namespace deeplens
