#include "common/env.h"

#include <cerrno>
#include <cstdlib>

#include "common/logging.h"

namespace deeplens {

uint64_t PositiveIntFromEnv(const char* name, uint64_t fallback,
                            uint64_t max_value, bool allow_zero) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(env, &end, 10);
  // strtoll tolerates leading whitespace and '+'; a knob must be a bare
  // decimal number (optionally negative, rejected below), nothing else.
  const bool bare_decimal =
      (env[0] >= '0' && env[0] <= '9') ||
      (env[0] == '-' && env[1] >= '0' && env[1] <= '9');
  const bool numeric =
      bare_decimal && end != env && end != nullptr && *end == '\0';
  if (!numeric || errno == ERANGE || parsed < 0 ||
      (parsed == 0 && !allow_zero) ||
      static_cast<unsigned long long>(parsed) > max_value) {
    DL_LOG(kWarn) << name << "='" << env
                  << "' is not a valid value; using default " << fallback;
    return fallback;
  }
  return static_cast<uint64_t>(parsed);
}

uint64_t PowerOfTwoFromEnv(const char* name, uint64_t fallback,
                           uint64_t max_value) {
  const uint64_t parsed = PositiveIntFromEnv(name, fallback, max_value);
  if (parsed == fallback || (parsed & (parsed - 1)) == 0) return parsed;
  uint64_t clamped = 1;
  while (clamped * 2 <= parsed) clamped *= 2;
  DL_LOG(kWarn) << name << "=" << parsed
                << " is not a power of two; clamping down to " << clamped;
  return clamped;
}

double BoundedDoubleFromEnv(const char* name, double fallback,
                            double min_value, double max_value) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  // Shape check before strtod: strtod happily accepts "1e9", "0x1p2",
  // "inf", "nan", and leading whitespace — none of which a threshold
  // knob should. Accept only -?[0-9]+(\.[0-9]*)?.
  const char* p = env;
  if (*p == '-') ++p;
  const char* digits_start = p;
  while (*p >= '0' && *p <= '9') ++p;
  const bool has_int_digits = p != digits_start;
  if (*p == '.') {
    ++p;
    while (*p >= '0' && *p <= '9') ++p;
  }
  const bool bare_decimal = has_int_digits && *p == '\0';
  errno = 0;
  char* end = nullptr;
  const double parsed = bare_decimal ? std::strtod(env, &end) : 0.0;
  if (!bare_decimal || errno == ERANGE || end == nullptr || *end != '\0' ||
      parsed < min_value || parsed > max_value) {
    DL_LOG(kWarn) << name << "='" << env << "' is not a valid value in ["
                  << min_value << ", " << max_value << "]; using default "
                  << fallback;
    return fallback;
  }
  return parsed;
}

std::map<std::string, uint64_t> WeightMapFromEnv(
    const char* name, uint64_t max_weight,
    const std::map<std::string, uint64_t>& fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const std::string spec(env);
  std::map<std::string, uint64_t> parsed;
  // Reject the whole spec on the first malformed entry: a half-applied
  // priority map silently misweights every tenant the typo'd entry was
  // meant to govern.
  const auto reject = [&](const std::string& why) {
    std::string shown = spec;
    for (char& c : shown) {
      const unsigned char u = static_cast<unsigned char>(c);
      if (u < 0x20 || u == 0x7f) c = '?';
    }
    DL_LOG(kWarn) << name << "='" << shown << "' rejected (" << why
                  << "); using default map (" << fallback.size()
                  << " entries)";
    return fallback;
  };
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (entry.empty()) return reject("empty entry");
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
      return reject("entry '" + entry + "' is not key=weight");
    }
    const std::string key = entry.substr(0, eq);
    for (unsigned char c : key) {
      if (c <= ' ' || c == 0x7f || c == '=' || c == ',') {
        return reject("key contains whitespace/control/reserved bytes");
      }
    }
    const std::string weight_str = entry.substr(eq + 1);
    uint64_t weight = 0;
    for (char c : weight_str) {
      if (c < '0' || c > '9') return reject("weight '" + weight_str +
                                            "' is not a decimal integer");
      const uint64_t digit = static_cast<uint64_t>(c - '0');
      if (weight > (max_weight - digit) / 10) {
        return reject("weight '" + weight_str + "' exceeds max " +
                      std::to_string(max_weight));
      }
      weight = weight * 10 + digit;
    }
    if (weight == 0) return reject("weight 0 for '" + key + "'");
    if (!parsed.emplace(key, weight).second) {
      return reject("duplicate key '" + key + "'");
    }
  }
  return parsed;
}

std::string ChoiceFromEnv(const char* name,
                          std::initializer_list<const char*> choices,
                          const char* fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  std::string value(env);
  for (char& c : value) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  for (const char* choice : choices) {
    if (value == choice) return choice;
  }
  std::string allowed;
  for (const char* choice : choices) {
    if (!allowed.empty()) allowed += "|";
    allowed += choice;
  }
  // Mask control bytes before echoing (same escape-injection hygiene as
  // PathFromEnv).
  std::string shown(env);
  for (char& c : shown) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 || u == 0x7f) c = '?';
  }
  DL_LOG(kWarn) << name << "='" << shown << "' is not one of {" << allowed
                << "}; using default '" << fallback << "'";
  return fallback;
}

std::string PathFromEnv(const char* name, const std::string& fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const std::string value(env);
  bool all_space = true;
  bool has_control = false;
  for (unsigned char c : value) {
    if (c != ' ' && c != '\t') all_space = false;
    if (c < 0x20 || c == 0x7f) has_control = true;
  }
  if (value.empty() || all_space || has_control) {
    // Echo the rejected value with control bytes masked — the raw bytes
    // of a value rejected *for* containing control characters must not
    // reach the terminal (escape injection / log forgery).
    std::string shown = value;
    for (char& c : shown) {
      const unsigned char u = static_cast<unsigned char>(c);
      if (u < 0x20 || u == 0x7f) c = '?';
    }
    DL_LOG(kWarn) << name << "='" << shown
                  << "' is not a usable path; using default '" << fallback
                  << "'";
    return fallback;
  }
  return value;
}

}  // namespace deeplens
