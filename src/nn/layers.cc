#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/ops.h"

namespace deeplens {
namespace nn {

namespace {
int OutExtent(int in, int kernel, int stride, int padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}
}  // namespace

Tensor Im2Col(const Tensor& input_chw, int kernel, int stride, int padding) {
  const int c = static_cast<int>(input_chw.dim(0));
  const int h = static_cast<int>(input_chw.dim(1));
  const int w = static_cast<int>(input_chw.dim(2));
  const int oh = OutExtent(h, kernel, stride, padding);
  const int ow = OutExtent(w, kernel, stride, padding);
  Tensor out({static_cast<int64_t>(c) * kernel * kernel,
              static_cast<int64_t>(oh) * ow});
  float* dst = out.data();
  const float* src = input_chw.data();
  for (int ci = 0; ci < c; ++ci) {
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        for (int y = 0; y < oh; ++y) {
          const int sy = y * stride + ky - padding;
          for (int x = 0; x < ow; ++x) {
            const int sx = x * stride + kx - padding;
            float v = 0.0f;
            if (sy >= 0 && sy < h && sx >= 0 && sx < w) {
              v = src[(static_cast<size_t>(ci) * h + sy) * w + sx];
            }
            *dst++ = v;
          }
        }
      }
    }
  }
  return out;
}

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int padding)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weights_({out_channels,
                static_cast<int64_t>(in_channels) * kernel * kernel}),
      bias_({out_channels}) {}

void Conv2d::InitRandom(Rng* rng, float scale) {
  for (int64_t i = 0; i < weights_.size(); ++i) {
    weights_[i] = static_cast<float>(rng->NextGaussian()) * scale;
  }
  for (int64_t i = 0; i < bias_.size(); ++i) bias_[i] = 0.0f;
}

Result<Tensor> Conv2d::Forward(const Tensor& input, Device* device) const {
  if (input.rank() != 3) {
    return Status::InvalidArgument("Conv2d expects CHW input, got " +
                                   input.ShapeString());
  }
  if (input.dim(0) != in_channels_) {
    return Status::InvalidArgument("Conv2d channel mismatch");
  }
  const int h = static_cast<int>(input.dim(1));
  const int w = static_cast<int>(input.dim(2));
  const int oh = OutExtent(h, kernel_, stride_, padding_);
  const int ow = OutExtent(w, kernel_, stride_, padding_);
  if (oh <= 0 || ow <= 0) {
    return Status::InvalidArgument("Conv2d input smaller than kernel");
  }

  const Tensor cols = Im2Col(input, kernel_, stride_, padding_);
  Tensor out({out_channels_, static_cast<int64_t>(oh) * ow});
  device->Matmul(weights_.data(), cols.data(), out.data(),
                 static_cast<size_t>(out_channels_),
                 static_cast<size_t>(weights_.dim(1)),
                 static_cast<size_t>(cols.dim(1)));
  // Add bias per output channel.
  for (int oc = 0; oc < out_channels_; ++oc) {
    const float b = bias_[oc];
    if (b != 0.0f) {
      float* row = out.data() + static_cast<size_t>(oc) * oh * ow;
      device->ScaleBias(row, 1.0f, b, row, static_cast<size_t>(oh) * ow);
    }
  }
  return out.Reshape({out_channels_, oh, ow});
}

Result<Tensor> ReluLayer::Forward(const Tensor& input,
                                  Device* device) const {
  Tensor out = input.Clone();
  device->Relu(out.data(), static_cast<size_t>(out.size()));
  return out;
}

Result<Tensor> MaxPool2d::Forward(const Tensor& input,
                                  Device* /*device*/) const {
  if (input.rank() != 3) {
    return Status::InvalidArgument("MaxPool2d expects CHW input");
  }
  const int c = static_cast<int>(input.dim(0));
  const int h = static_cast<int>(input.dim(1));
  const int w = static_cast<int>(input.dim(2));
  const int oh = OutExtent(h, kernel_, stride_, 0);
  const int ow = OutExtent(w, kernel_, stride_, 0);
  if (oh <= 0 || ow <= 0) {
    return Status::InvalidArgument("MaxPool2d input smaller than kernel");
  }
  Tensor out({c, oh, ow});
  for (int ci = 0; ci < c; ++ci) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        float m = -std::numeric_limits<float>::max();
        for (int ky = 0; ky < kernel_; ++ky) {
          for (int kx = 0; kx < kernel_; ++kx) {
            const int sy = y * stride_ + ky;
            const int sx = x * stride_ + kx;
            if (sy < h && sx < w) {
              m = std::max(m, input.At(ci, sy, sx));
            }
          }
        }
        out.At(ci, y, x) = m;
      }
    }
  }
  return out;
}

Result<Tensor> AvgPool2d::Forward(const Tensor& input,
                                  Device* /*device*/) const {
  if (input.rank() != 3) {
    return Status::InvalidArgument("AvgPool2d expects CHW input");
  }
  const int c = static_cast<int>(input.dim(0));
  const int h = static_cast<int>(input.dim(1));
  const int w = static_cast<int>(input.dim(2));
  const int oh = OutExtent(h, kernel_, stride_, 0);
  const int ow = OutExtent(w, kernel_, stride_, 0);
  if (oh <= 0 || ow <= 0) {
    return Status::InvalidArgument("AvgPool2d input smaller than kernel");
  }
  Tensor out({c, oh, ow});
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (int ci = 0; ci < c; ++ci) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        float s = 0.0f;
        for (int ky = 0; ky < kernel_; ++ky) {
          for (int kx = 0; kx < kernel_; ++kx) {
            const int sy = y * stride_ + ky;
            const int sx = x * stride_ + kx;
            if (sy < h && sx < w) s += input.At(ci, sy, sx);
          }
        }
        out.At(ci, y, x) = s * inv;
      }
    }
  }
  return out;
}

Linear::Linear(int in_features, int out_features)
    : in_features_(in_features),
      out_features_(out_features),
      weights_({out_features, in_features}),
      bias_({out_features}) {}

void Linear::InitRandom(Rng* rng, float scale) {
  for (int64_t i = 0; i < weights_.size(); ++i) {
    weights_[i] = static_cast<float>(rng->NextGaussian()) * scale;
  }
  for (int64_t i = 0; i < bias_.size(); ++i) bias_[i] = 0.0f;
}

Result<Tensor> Linear::Forward(const Tensor& input, Device* device) const {
  if (input.size() != in_features_) {
    return Status::InvalidArgument(
        "Linear input size mismatch: " + input.ShapeString());
  }
  Tensor out({out_features_});
  device->Matmul(weights_.data(), input.data(), out.data(),
                 static_cast<size_t>(out_features_),
                 static_cast<size_t>(in_features_), 1);
  device->Add(out.data(), bias_.data(), out.data(),
              static_cast<size_t>(out_features_));
  return out;
}

Result<Tensor> SoftmaxLayer::Forward(const Tensor& input,
                                     Device* /*device*/) const {
  DL_ASSIGN_OR_RETURN(Tensor flat, input.Reshape({input.size()}));
  return ops::Softmax(flat);
}

Result<Tensor> FlattenLayer::Forward(const Tensor& input,
                                     Device* /*device*/) const {
  return input.Reshape({input.size()});
}

}  // namespace nn
}  // namespace deeplens
