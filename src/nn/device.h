// Execution-device abstraction for compute kernels (paper §7.4.2).
//
// Three backends reproduce the paper's CPU / AVX / GPU comparison:
//  * kCpuScalar — single-threaded scalar kernels (the "CPU" bars).
//  * kCpuVector — single-threaded vectorized kernels (the "AVX" bars).
//  * kGpuSim    — a *simulated* accelerator: kernels run vectorized and
//    data-parallel across a thread pool (high throughput), but every
//    launch pays a fixed kernel-launch latency plus a host↔device
//    transfer cost proportional to the bytes touched. This reproduces the
//    behaviour the paper reports: large batched ETL wins big on GPU,
//    small query-time workloads lose to the launch/transfer overhead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/status.h"

namespace deeplens {
namespace nn {

enum class DeviceKind : int { kCpuScalar = 0, kCpuVector = 1, kGpuSim = 2 };

const char* DeviceKindName(DeviceKind kind);

/// Cost parameters of the simulated GPU.
struct GpuSimOptions {
  /// Fixed per-kernel-launch latency (models driver + PCIe round trip).
  uint64_t launch_overhead_nanos = 60000;  // 60 µs
  /// Host↔device copy bandwidth in bytes/second (PCIe 3.0 x16-ish).
  double transfer_bytes_per_sec = 12e9;
  /// Modeled on-device compute speed relative to the host's vectorized
  /// path. Used for the *modeled-time* clock (below), since a software
  /// simulator cannot make wall-clock compute faster than the host.
  double compute_speedup = 6.0;
};

/// \brief A compute device. Stateless; obtain shared instances via
/// GetDevice(). All kernels block until complete.
class Device {
 public:
  virtual ~Device() = default;

  virtual DeviceKind kind() const = 0;
  const char* name() const { return DeviceKindName(kind()); }

  /// C(m×n) = A(m×k) · B(k×n), row-major. `bytes_touched` lets the GPU
  /// model charge transfer for operands it has not cached; pass 0 to let
  /// the device infer it from the shapes.
  virtual void Matmul(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n) = 0;

  /// In-place ReLU.
  virtual void Relu(float* x, size_t n) = 0;

  /// out = a + b elementwise.
  virtual void Add(const float* a, const float* b, float* out,
                   size_t n) = 0;

  /// out = a * scale + bias elementwise.
  virtual void ScaleBias(const float* a, float scale, float bias,
                         float* out, size_t n) = 0;

  /// Full pairwise squared-L2 matrix: out[i*nb + j] = ||A_i - B_j||².
  /// This is the all-pairs matching kernel used by q1/q4 (paper §7.4.2).
  virtual void PairwiseL2Squared(const float* a, size_t na, const float* b,
                                 size_t nb, size_t dim, float* out) = 0;

  /// Runs fn(i) for i in [0, n). The GPU backend executes across the
  /// thread pool and charges one launch + `transfer_bytes` of copy cost;
  /// CPU backends run sequentially with no overhead.
  virtual void ParallelMap(size_t n, const std::function<void(size_t)>& fn,
                           size_t transfer_bytes = 0) = 0;

  /// Total simulated overhead charged so far (0 for CPU backends).
  virtual uint64_t simulated_overhead_nanos() const { return 0; }

  // --- Modeled-time clock (GPU backend only) ---------------------------
  // A software simulator executes device kernels on the host, so wall
  // clock understates a real accelerator. The GPU backend therefore keeps
  // two counters per kernel: the *real* nanoseconds the host spent
  // (overhead sleep + compute), and the *modeled* nanoseconds a device
  // with `compute_speedup` would have spent (overhead + compute/speedup).
  // Benchmarks report modeled_time = wall - real + modeled.

  /// Host nanoseconds spent inside device kernels since the last reset.
  virtual uint64_t real_kernel_nanos() const { return 0; }
  /// Modeled device nanoseconds for those kernels.
  virtual uint64_t modeled_kernel_nanos() const { return 0; }
  /// Resets both kernel clocks.
  virtual void ResetKernelClocks() {}
};

/// Returns the shared instance for a backend. Never null.
Device* GetDevice(DeviceKind kind);

/// Reconfigures the simulated GPU (affects the shared instance; intended
/// for benchmarks/tests).
void ConfigureGpuSim(const GpuSimOptions& options);

}  // namespace nn
}  // namespace deeplens
