// Neural-network layers for the DeepLens inference engine. Layers are
// inference-only (no autograd) and dispatch their math through a Device so
// the CPU/AVX/GPU comparison of Figure 8 exercises identical code paths.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/device.h"
#include "tensor/tensor.h"

namespace deeplens {
namespace nn {

/// \brief Base class. Forward() maps an input tensor to an output tensor
/// on the given device.
class Layer {
 public:
  virtual ~Layer() = default;
  virtual Result<Tensor> Forward(const Tensor& input,
                                 Device* device) const = 0;
  virtual std::string name() const = 0;
  /// Number of parameters (for model summaries).
  virtual int64_t num_params() const { return 0; }
};

/// \brief 2-d convolution over CHW tensors, implemented as im2col + the
/// device's Matmul. Weight shape {out_ch, in_ch, k, k}; bias {out_ch}.
class Conv2d : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride = 1,
         int padding = 0);

  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  std::string name() const override { return "conv2d"; }
  int64_t num_params() const override {
    return weights_.size() + bias_.size();
  }

  Tensor& weights() { return weights_; }
  const Tensor& weights() const { return weights_; }
  Tensor& bias() { return bias_; }

  /// Fills weights with small deterministic pseudo-random values.
  void InitRandom(Rng* rng, float scale = 0.1f);

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int padding() const { return padding_; }

 private:
  int in_channels_, out_channels_, kernel_, stride_, padding_;
  Tensor weights_;  // {out_ch, in_ch * k * k} stored pre-flattened
  Tensor bias_;     // {out_ch}
};

/// \brief In-place ReLU.
class ReluLayer : public Layer {
 public:
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  std::string name() const override { return "relu"; }
};

/// \brief 2-d max pooling over CHW tensors.
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(int kernel, int stride = -1)
      : kernel_(kernel), stride_(stride > 0 ? stride : kernel) {}
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  std::string name() const override { return "maxpool2d"; }

 private:
  int kernel_, stride_;
};

/// \brief 2-d average pooling over CHW tensors.
class AvgPool2d : public Layer {
 public:
  explicit AvgPool2d(int kernel, int stride = -1)
      : kernel_(kernel), stride_(stride > 0 ? stride : kernel) {}
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  std::string name() const override { return "avgpool2d"; }

 private:
  int kernel_, stride_;
};

/// \brief Fully connected layer: y = W·x + b. Accepts any input shape and
/// flattens it. Weight shape {out, in}.
class Linear : public Layer {
 public:
  Linear(int in_features, int out_features);

  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  std::string name() const override { return "linear"; }
  int64_t num_params() const override {
    return weights_.size() + bias_.size();
  }

  Tensor& weights() { return weights_; }
  Tensor& bias() { return bias_; }
  void InitRandom(Rng* rng, float scale = 0.1f);

 private:
  int in_features_, out_features_;
  Tensor weights_;  // {out, in}
  Tensor bias_;     // {out}
};

/// \brief Softmax over the flattened input (rank-1 output).
class SoftmaxLayer : public Layer {
 public:
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  std::string name() const override { return "softmax"; }
};

/// \brief Flattens to rank 1.
class FlattenLayer : public Layer {
 public:
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  std::string name() const override { return "flatten"; }
};

/// im2col: unrolls conv receptive fields into a {in_ch*k*k, out_h*out_w}
/// matrix so convolution becomes a matmul. Exposed for tests.
Tensor Im2Col(const Tensor& input_chw, int kernel, int stride, int padding);

}  // namespace nn
}  // namespace deeplens
