#include "nn/models.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "tensor/ops.h"

namespace deeplens {
namespace nn {

namespace {

// Color-contrast weight vectors over (R, G, B) in [0,1], one per class.
// Applied as a 3×3 box filter so mild blur/noise averages out. The text
// channel is a "whiteness" detector with a negative bias so mid-gray
// background stays below zero after ReLU.
struct ContrastSpec {
  float wr, wg, wb, bias;
  /// Box-spread filters average the contrast over the 3×3 support (noise
  /// robustness for solid-colored bodies); center-tap filters keep the
  /// per-pixel value, which sparse structures (thin glyph strokes) need —
  /// averaging brightness before the bias would drown them in background.
  bool center_only;
};
constexpr ContrastSpec kContrast[kNumClasses] = {
    {+2.0f, -1.0f, -1.0f, 0.0f, false},   // car (red-dominant)
    {-1.0f, +2.0f, -1.0f, 0.0f, false},   // person (green-dominant)
    {-1.0f, -1.0f, +2.0f, 0.0f, false},   // player (blue-dominant)
    {+1.0f, +1.0f, +1.0f, -2.2f, true},   // text glyphs (near-white)
};

constexpr int kBackboneChannels = 8;

}  // namespace

// ---------------------------------------------------------------------
// TinySSD
// ---------------------------------------------------------------------

TinySsdDetector::TinySsdDetector(DetectorOptions options)
    : options_(options), net_("tiny-ssd") {
  Rng rng(0x55Dull);

  // conv1: 3 → 8. Channels 0..3 are the class color-contrast filters
  // spread over the 3×3 support; channels 4..7 are fixed pseudo-random
  // texture filters that add realistic compute (and are consumed with
  // small weights downstream).
  auto* conv1 = net_.Add<Conv2d>(3, kBackboneChannels, 3, 1, 1);
  conv1->InitRandom(&rng, 0.05f);
  {
    Tensor& w = conv1->weights();  // {8, 3*3*3} = {out, in*k*k}
    for (int cls = 0; cls < kNumClasses; ++cls) {
      const ContrastSpec& spec = kContrast[cls];
      for (int in_c = 0; in_c < 3; ++in_c) {
        const float wv =
            in_c == 0 ? spec.wr : (in_c == 1 ? spec.wg : spec.wb);
        for (int tap = 0; tap < 9; ++tap) {
          if (spec.center_only) {
            w.At(cls, in_c * 9 + tap) = tap == 4 ? wv : 0.0f;
          } else {
            w.At(cls, in_c * 9 + tap) = wv / 9.0f;
          }
        }
      }
      conv1->bias()[cls] = spec.bias;
    }
  }
  net_.Add<ReluLayer>();

  // conv2: 8 → 8 smoothing. The class channels pass through a 3×3 box on
  // themselves; texture channels stay random.
  auto* conv2 = net_.Add<Conv2d>(kBackboneChannels, kBackboneChannels, 3, 1, 1);
  conv2->InitRandom(&rng, 0.05f);
  {
    Tensor& w = conv2->weights();  // {8, 8*9}
    for (int cls = 0; cls < kNumClasses; ++cls) {
      for (int in_c = 0; in_c < kBackboneChannels; ++in_c) {
        for (int tap = 0; tap < 9; ++tap) {
          w.At(cls, in_c * 9 + tap) =
              in_c == cls ? (1.0f / 9.0f) : 0.0f;
        }
      }
    }
  }
  net_.Add<ReluLayer>();

  // Head: pool down to the detection grid, then a 1×1 conv that selects
  // the class channels.
  const int pool = options_.input_size / options_.grid;
  net_.Add<AvgPool2d>(pool);
  auto* head = net_.Add<Conv2d>(kBackboneChannels, kNumClasses, 1, 1, 0);
  {
    Tensor& w = head->weights();  // {4, 8}
    for (int cls = 0; cls < kNumClasses; ++cls) {
      for (int in_c = 0; in_c < kBackboneChannels; ++in_c) {
        w.At(cls, in_c) = in_c == cls ? 1.0f : 0.0f;
      }
    }
  }
}

std::vector<Detection> TinySsdDetector::DecodeGrid(const Tensor& scores,
                                                   int frame_w,
                                                   int frame_h) const {
  const int grid = options_.grid;
  std::vector<Detection> out;

  // Per class: threshold the grid, then merge 4-adjacent active cells
  // into connected components (union-find over the grid).
  std::vector<int> parent(static_cast<size_t>(grid) * grid);
  std::vector<float> cell_score(static_cast<size_t>(grid) * grid);
  std::vector<bool> active(static_cast<size_t>(grid) * grid);

  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };

  for (int cls = 0; cls < kNumClasses; ++cls) {
    const float threshold = options_.threshold[cls];
    bool any = false;
    for (int gy = 0; gy < grid; ++gy) {
      for (int gx = 0; gx < grid; ++gx) {
        const int idx = gy * grid + gx;
        const float s = scores.At(cls, gy, gx);
        active[static_cast<size_t>(idx)] = s >= threshold;
        cell_score[static_cast<size_t>(idx)] = s;
        parent[static_cast<size_t>(idx)] = idx;
        any = any || active[static_cast<size_t>(idx)];
      }
    }
    if (!any) continue;
    for (int gy = 0; gy < grid; ++gy) {
      for (int gx = 0; gx < grid; ++gx) {
        const int idx = gy * grid + gx;
        if (!active[static_cast<size_t>(idx)]) continue;
        if (gx > 0 && active[static_cast<size_t>(idx - 1)]) {
          parent[static_cast<size_t>(find(idx))] = find(idx - 1);
        }
        if (gy > 0 && active[static_cast<size_t>(idx - grid)]) {
          parent[static_cast<size_t>(find(idx))] = find(idx - grid);
        }
      }
    }
    // Gather component extents.
    struct Comp {
      int min_gx = 1 << 30, min_gy = 1 << 30, max_gx = -1, max_gy = -1;
      float score = 0.0f;
    };
    std::unordered_map<int, Comp> comps;
    for (int gy = 0; gy < grid; ++gy) {
      for (int gx = 0; gx < grid; ++gx) {
        const int idx = gy * grid + gx;
        if (!active[static_cast<size_t>(idx)]) continue;
        Comp& comp = comps[find(idx)];
        comp.min_gx = std::min(comp.min_gx, gx);
        comp.min_gy = std::min(comp.min_gy, gy);
        comp.max_gx = std::max(comp.max_gx, gx);
        comp.max_gy = std::max(comp.max_gy, gy);
        comp.score = std::max(comp.score, cell_score[static_cast<size_t>(idx)]);
      }
    }
    const float cell_w = static_cast<float>(frame_w) / grid;
    const float cell_h = static_cast<float>(frame_h) / grid;
    for (const auto& [root, comp] : comps) {
      (void)root;
      Detection d;
      d.bbox.x0 = static_cast<int>(comp.min_gx * cell_w);
      d.bbox.y0 = static_cast<int>(comp.min_gy * cell_h);
      d.bbox.x1 = static_cast<int>((comp.max_gx + 1) * cell_w);
      d.bbox.y1 = static_cast<int>((comp.max_gy + 1) * cell_h);
      d.label = static_cast<ObjectClass>(cls);
      d.score = comp.score;
      out.push_back(d);
    }
  }
  return out;
}

namespace {

// Per-pixel class contrast in [0,1]-scaled RGB (mirrors conv1's filters).
float PixelContrast(const Image& frame, int x, int y,
                    const ContrastSpec& spec) {
  const float r = static_cast<float>(frame.At(x, y, 0)) / 255.0f;
  const float g = static_cast<float>(frame.At(x, y, 1)) / 255.0f;
  const float b = static_cast<float>(frame.At(x, y, 2)) / 255.0f;
  return r * spec.wr + g * spec.wg + b * spec.wb + spec.bias;
}

}  // namespace

// Grid cells quantize boxes coarsely (a 5 px pedestrian gets a 10 px cell
// box that is half background). Like an SSD's regression head, refine each
// box to the tight extent of pixels matching the class contrast — this is
// what makes downstream crops identity-pure.
static void RefineDetections(const Image& frame, std::vector<Detection>* dets) {
  constexpr int kMargin = 2;
  constexpr float kPixelThreshold = 0.30f;
  for (Detection& d : *dets) {
    const ContrastSpec& spec = kContrast[static_cast<int>(d.label)];
    int x0 = frame.width(), y0 = frame.height(), x1 = -1, y1 = -1;
    const int sx0 = std::max(0, d.bbox.x0 - kMargin);
    const int sy0 = std::max(0, d.bbox.y0 - kMargin);
    const int sx1 = std::min(frame.width(), d.bbox.x1 + kMargin);
    const int sy1 = std::min(frame.height(), d.bbox.y1 + kMargin);
    for (int y = sy0; y < sy1; ++y) {
      for (int x = sx0; x < sx1; ++x) {
        if (PixelContrast(frame, x, y, spec) < kPixelThreshold) continue;
        x0 = std::min(x0, x);
        y0 = std::min(y0, y);
        x1 = std::max(x1, x);
        y1 = std::max(y1, y);
      }
    }
    if (x1 >= x0 && y1 >= y0) {
      d.bbox = BBox{x0, y0, x1 + 1, y1 + 1};
    }
  }
}

Result<std::vector<Detection>> TinySsdDetector::Detect(
    const Image& frame, Device* device) const {
  if (frame.empty() || frame.channels() != 3) {
    return Status::InvalidArgument("TinySSD expects a non-empty RGB frame");
  }
  const Image resized =
      frame.Resize(options_.input_size, options_.input_size);
  DL_ASSIGN_OR_RETURN(Tensor scores,
                      net_.Forward(resized.ToTensorCHW(), device));
  std::vector<Detection> dets =
      DecodeGrid(scores, frame.width(), frame.height());
  RefineDetections(frame, &dets);
  return dets;
}

Result<std::vector<std::vector<Detection>>> TinySsdDetector::DetectBatch(
    const std::vector<Image>& frames, Device* device) const {
  for (const Image& f : frames) {
    if (f.empty() || f.channels() != 3) {
      return Status::InvalidArgument("TinySSD expects RGB frames");
    }
  }

  if (device->kind() == DeviceKind::kGpuSim) {
    // One launch for the whole batch, with the full per-frame pipeline
    // (resample → forward → decode → refine) running data-parallel on
    // device — the way production inference services batch preprocessing
    // alongside the network.
    size_t transfer_bytes = 0;
    for (const Image& f : frames) transfer_bytes += f.size_bytes();
    std::vector<std::vector<Detection>> result(frames.size());
    Device* on_device_math = GetDevice(DeviceKind::kCpuVector);
    std::atomic<bool> failed{false};
    device->ParallelMap(
        frames.size(),
        [&](size_t i) {
          const Image resized =
              frames[i].Resize(options_.input_size, options_.input_size);
          auto scores = net_.Forward(resized.ToTensorCHW(), on_device_math);
          if (!scores.ok()) {
            failed = true;
            return;
          }
          result[i] = DecodeGrid(*scores, frames[i].width(),
                                 frames[i].height());
          RefineDetections(frames[i], &result[i]);
        },
        transfer_bytes);
    if (failed) return Status::Internal("batched detection failed");
    return result;
  }

  std::vector<Tensor> inputs;
  inputs.reserve(frames.size());
  for (const Image& f : frames) {
    inputs.push_back(
        f.Resize(options_.input_size, options_.input_size).ToTensorCHW());
  }
  DL_ASSIGN_OR_RETURN(std::vector<Tensor> outputs,
                      ForwardBatch(net_, inputs, device));
  std::vector<std::vector<Detection>> result(frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    result[i] =
        DecodeGrid(outputs[i], frames[i].width(), frames[i].height());
    RefineDetections(frames[i], &result[i]);
  }
  return result;
}

// ---------------------------------------------------------------------
// TinyOCR
// ---------------------------------------------------------------------

namespace {
constexpr int kOcrInput = 8;  // glyphs are resampled to 8×8 grayscale

// Binarization threshold for glyph ink. Glyphs render near-white
// (kGlyphBrightness = 240) while every background the corpus produces —
// document gray (~186), jersey blue, text panels — stays below 200, so a
// high threshold keeps bright backgrounds out of the ink mask. Lossy
// encodings that pull glyphs below this threshold genuinely break OCR,
// which is the Figure 2 accuracy effect.
constexpr int kInkThreshold = 200;

// Renders digit `d`'s 5×7 glyph into an 8×8 [0,1] template, the same
// resampling the recognizer applies to incoming glyph crops.
void DigitTemplate(int d, float* out /* 64 */) {
  for (int y = 0; y < kOcrInput; ++y) {
    const int sy = y * kGlyphHeight / kOcrInput;
    for (int x = 0; x < kOcrInput; ++x) {
      const int sx = x * kGlyphWidth / kOcrInput;
      out[y * kOcrInput + x] = GlyphPixel(d, sx, sy) ? 1.0f : 0.0f;
    }
  }
}
}  // namespace

TinyOcr::TinyOcr() : net_("tiny-ocr") {
  auto* fc = net_.Add<Linear>(kOcrInput * kOcrInput, 10);
  Tensor& w = fc->weights();  // {10, 64}
  float tmpl[kOcrInput * kOcrInput];
  // Temperature applied to the matched-filter scores: a perfect match
  // scores ~1.0 before scaling, which softmax over 10 classes would turn
  // into only ~0.23 probability; ×6 sharpens perfect matches to ~0.98
  // while garbage stays diffuse (rejected by min_confidence_).
  constexpr float kLogitScale = 6.0f;
  for (int d = 0; d < 10; ++d) {
    DigitTemplate(d, tmpl);
    // Matched filter: +1 on ink, -1 off ink, normalized by template mass
    // so every digit's perfect-match score is ~1.
    float mass = 0.0f;
    for (float v : tmpl) mass += v;
    for (int i = 0; i < kOcrInput * kOcrInput; ++i) {
      w.At(d, i) = kLogitScale * (tmpl[i] > 0.5f ? 1.0f : -1.0f) / mass;
    }
  }
  net_.Add<SoftmaxLayer>();
}

Result<int> TinyOcr::RecognizeDigit(const Image& glyph,
                                    Device* device) const {
  if (glyph.empty()) return Status::InvalidArgument("empty glyph");
  // Segmentation crops to the ink extent, which distorts narrow digits
  // ('1' uses 3 of the font's 5 columns); pad to the font's 5:7 aspect,
  // centered, before resampling so crops align with the templates.
  Image padded = glyph;
  {
    const int target_w = std::max(
        glyph.width(), glyph.height() * kGlyphWidth / kGlyphHeight);
    const int target_h = std::max(
        glyph.height(), glyph.width() * kGlyphHeight / kGlyphWidth);
    if (target_w != glyph.width() || target_h != glyph.height()) {
      Image canvas(target_w, target_h, glyph.channels());
      const int ox = (target_w - glyph.width()) / 2;
      const int oy = (target_h - glyph.height()) / 2;
      for (int y = 0; y < glyph.height(); ++y) {
        for (int x = 0; x < glyph.width(); ++x) {
          for (int c = 0; c < glyph.channels(); ++c) {
            canvas.At(ox + x, oy + y, c) = glyph.At(x, y, c);
          }
        }
      }
      padded = std::move(canvas);
    }
  }
  // Grayscale + binarize to [0,1] at 8×8.
  const Image small = padded.Resize(kOcrInput, kOcrInput);
  Tensor input({kOcrInput * kOcrInput});
  for (int y = 0; y < kOcrInput; ++y) {
    for (int x = 0; x < kOcrInput; ++x) {
      int lum = 0;
      for (int c = 0; c < small.channels(); ++c) lum += small.At(x, y, c);
      lum /= std::max(1, small.channels());
      input[y * kOcrInput + x] = lum >= kInkThreshold ? 1.0f : 0.0f;
    }
  }
  DL_ASSIGN_OR_RETURN(Tensor probs, net_.Forward(input, device));
  const int64_t best = ops::Argmax(probs);
  if (best < 0 || probs[best] < min_confidence_) {
    return Status::NotFound("glyph not legible");
  }
  return static_cast<int>(best);
}

Result<std::string> TinyOcr::RecognizeText(const Image& patch,
                                           Device* device) const {
  if (patch.empty()) return std::string();
  // Column projection profile over the binarized patch: runs of columns
  // containing ink are candidate glyphs.
  const int w = patch.width();
  const int h = patch.height();
  std::vector<int> col_ink(static_cast<size_t>(w), 0);
  std::vector<int> row_ink(static_cast<size_t>(h), 0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int lum = 0;
      for (int c = 0; c < patch.channels(); ++c) lum += patch.At(x, y, c);
      lum /= std::max(1, patch.channels());
      if (lum >= kInkThreshold) {
        ++col_ink[static_cast<size_t>(x)];
        ++row_ink[static_cast<size_t>(y)];
      }
    }
  }
  // Vertical extent of the ink.
  int y0 = 0, y1 = h;
  while (y0 < h && row_ink[static_cast<size_t>(y0)] == 0) ++y0;
  while (y1 > y0 && row_ink[static_cast<size_t>(y1 - 1)] == 0) --y1;
  if (y0 >= y1) return std::string();

  std::string result;
  int x = 0;
  while (x < w) {
    while (x < w && col_ink[static_cast<size_t>(x)] == 0) ++x;
    if (x >= w) break;
    int run_start = x;
    while (x < w && col_ink[static_cast<size_t>(x)] > 0) ++x;
    const Image glyph = patch.Crop(run_start, y0, x, y1);
    auto digit = RecognizeDigit(glyph, device);
    if (digit.ok()) {
      result += static_cast<char>('0' + digit.value());
    }
  }
  return result;
}

Result<std::vector<std::string>> TinyOcr::RecognizeTextBatch(
    const std::vector<const Image*>& patches, Device* device) const {
  for (const Image* p : patches) {
    if (p == nullptr) {
      return Status::InvalidArgument("TinyOCR batch: null patch");
    }
  }
  std::vector<std::string> result(patches.size());
  if (device != nullptr && device->kind() == DeviceKind::kGpuSim) {
    // One launch for the whole batch: per-patch segmentation + matched
    // filters run data-parallel with host-vectorized math (the
    // DetectBatch convention), so K staged patches pay one launch
    // overhead instead of K.
    size_t transfer_bytes = 0;
    for (const Image* p : patches) transfer_bytes += p->size_bytes();
    Device* on_device_math = GetDevice(DeviceKind::kCpuVector);
    std::atomic<bool> failed{false};
    device->ParallelMap(
        patches.size(),
        [&](size_t i) {
          auto text = RecognizeText(*patches[i], on_device_math);
          if (!text.ok()) {
            failed = true;
            return;
          }
          result[i] = *std::move(text);
        },
        transfer_bytes);
    if (failed) return Status::Internal("batched OCR failed");
    return result;
  }
  // CPU backends: the batch is a plain loop of the single-patch routine,
  // so batched output is identical to unbatched by construction.
  for (size_t i = 0; i < patches.size(); ++i) {
    DL_ASSIGN_OR_RETURN(result[i], RecognizeText(*patches[i], device));
  }
  return result;
}

bool TinyOcr::ProxyHasInk(const Image& patch) const {
  if (patch.empty()) return false;
  // Stride-2 scan: the 5×7 font's strokes span multiple pixels at any
  // render scale the corpus produces, so sampling half the rows/columns
  // still lands on ink when there is any. ~4× cheaper than the full
  // binarization pass, and vastly cheaper than segmentation + per-glyph
  // matched filters.
  for (int y = 0; y < patch.height(); y += 2) {
    for (int x = 0; x < patch.width(); x += 2) {
      int lum = 0;
      for (int c = 0; c < patch.channels(); ++c) lum += patch.At(x, y, c);
      lum /= std::max(1, patch.channels());
      if (lum >= kInkThreshold) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------
// TinyDepth
// ---------------------------------------------------------------------

namespace {
constexpr int kDepthInput = 16;
constexpr int kDepthConvFeatures = 4;
}  // namespace

TinyDepth::TinyDepth(float focal_times_height)
    : focal_times_height_(focal_times_height),
      conv_net_("tiny-depth"),
      head_(1 + kDepthConvFeatures, 1) {
  Rng rng(0xDEB7ull);
  auto* conv1 = conv_net_.Add<Conv2d>(3, 4, 3, 2, 1);
  conv1->InitRandom(&rng, 0.2f);
  conv_net_.Add<ReluLayer>();
  auto* conv2 = conv_net_.Add<Conv2d>(4, kDepthConvFeatures, 3, 2, 1);
  conv2->InitRandom(&rng, 0.2f);
  conv_net_.Add<ReluLayer>();
  conv_net_.Add<AvgPool2d>(kDepthInput / 4);
  conv_net_.Add<FlattenLayer>();

  // Head: depth = focal·H / apparent_height + ε·conv_features. The first
  // input carries the geometric cue; pixel features perturb it slightly
  // (they model the residual corrections a trained FCRN would apply).
  Tensor& w = head_.weights();
  w.At(0, 0) = 1.0f;
  for (int i = 0; i < kDepthConvFeatures; ++i) {
    w.At(0, 1 + i) = 0.02f * static_cast<float>(rng.NextGaussian());
  }
}

float TinyDepth::ProxyDepth(const BBox& bbox) const {
  if (bbox.Height() <= 0) return 0.1f;
  // The geometry cue carries head weight 1.0 while the conv features are
  // scaled by 0.02; the proxy is the full prediction minus that small
  // pixel-dependent residual, clamped like PredictDepth's output.
  return std::max(0.1f,
                  focal_times_height_ / static_cast<float>(bbox.Height()));
}

Result<float> TinyDepth::PredictDepth(const Image& patch, const BBox& bbox,
                                      int /*frame_h*/, Device* device) const {
  if (patch.empty() || bbox.Height() <= 0) {
    return Status::InvalidArgument("TinyDepth needs a non-degenerate patch");
  }
  const Image resized = patch.Resize(kDepthInput, kDepthInput);
  DL_ASSIGN_OR_RETURN(Tensor features,
                      conv_net_.Forward(resized.ToTensorCHW(), device));
  Tensor head_in({1 + kDepthConvFeatures});
  head_in[0] = focal_times_height_ / static_cast<float>(bbox.Height());
  for (int i = 0; i < kDepthConvFeatures && i < features.size(); ++i) {
    head_in[1 + i] = features[i];
  }
  DL_ASSIGN_OR_RETURN(Tensor depth, head_.Forward(head_in, device));
  return std::max(0.1f, depth[0]);
}

Result<std::vector<float>> TinyDepth::PredictDepthBatch(
    const std::vector<const Image*>& patches, const std::vector<BBox>& bboxes,
    const std::vector<int>& frame_hs, Device* device) const {
  if (patches.size() != bboxes.size() || patches.size() != frame_hs.size()) {
    return Status::InvalidArgument("TinyDepth batch: mismatched item arrays");
  }
  for (size_t i = 0; i < patches.size(); ++i) {
    if (patches[i] == nullptr || patches[i]->empty() ||
        bboxes[i].Height() <= 0) {
      return Status::InvalidArgument("TinyDepth needs a non-degenerate patch");
    }
  }
  std::vector<float> result(patches.size(), 0.0f);
  if (device != nullptr && device->kind() == DeviceKind::kGpuSim) {
    size_t transfer_bytes = 0;
    for (const Image* p : patches) transfer_bytes += p->size_bytes();
    Device* on_device_math = GetDevice(DeviceKind::kCpuVector);
    std::atomic<bool> failed{false};
    device->ParallelMap(
        patches.size(),
        [&](size_t i) {
          auto depth = PredictDepth(*patches[i], bboxes[i], frame_hs[i],
                                    on_device_math);
          if (!depth.ok()) {
            failed = true;
            return;
          }
          result[i] = *depth;
        },
        transfer_bytes);
    if (failed) return Status::Internal("batched depth prediction failed");
    return result;
  }
  for (size_t i = 0; i < patches.size(); ++i) {
    DL_ASSIGN_OR_RETURN(
        result[i], PredictDepth(*patches[i], bboxes[i], frame_hs[i], device));
  }
  return result;
}

}  // namespace nn
}  // namespace deeplens
