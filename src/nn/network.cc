#include "nn/network.h"

#include <atomic>

#include "common/string_util.h"

namespace deeplens {
namespace nn {

Result<Tensor> Network::Forward(const Tensor& input, Device* device) const {
  Tensor cur = input;
  for (const auto& layer : layers_) {
    DL_ASSIGN_OR_RETURN(cur, layer->Forward(cur, device));
  }
  return cur;
}

int64_t Network::num_params() const {
  int64_t n = 0;
  for (const auto& layer : layers_) n += layer->num_params();
  return n;
}

std::string Network::Summary() const {
  std::string out = name_ + " (" + std::to_string(num_params()) + " params)";
  for (const auto& layer : layers_) {
    out += "\n  " + layer->name();
  }
  return out;
}

Result<std::vector<Tensor>> ForwardBatch(const Network& net,
                                         const std::vector<Tensor>& inputs,
                                         Device* device) {
  std::vector<Tensor> outputs(inputs.size());
  if (inputs.empty()) return outputs;

  if (device->kind() == DeviceKind::kGpuSim) {
    // One launch for the whole batch: the host pays a single transfer of
    // all inputs; per-item math runs "on device" (parallel, vectorized).
    size_t transfer_bytes = 0;
    for (const Tensor& t : inputs) {
      transfer_bytes += static_cast<size_t>(t.size()) * sizeof(float);
    }
    Device* on_device_math = GetDevice(DeviceKind::kCpuVector);
    std::atomic<bool> failed{false};
    device->ParallelMap(
        inputs.size(),
        [&](size_t i) {
          auto r = net.Forward(inputs[i], on_device_math);
          if (r.ok()) {
            outputs[i] = std::move(r).value();
          } else {
            failed = true;
          }
        },
        transfer_bytes);
    if (failed) {
      return Status::Internal("batched forward failed on an item");
    }
    return outputs;
  }

  for (size_t i = 0; i < inputs.size(); ++i) {
    DL_ASSIGN_OR_RETURN(outputs[i], net.Forward(inputs[i], device));
  }
  return outputs;
}

}  // namespace nn
}  // namespace deeplens
