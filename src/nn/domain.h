// Shared visual-domain definitions: object classes, their canonical render
// colors in the synthetic datasets, bounding boxes, and the 5×7 digit font
// used both by the scene renderer (jersey numbers, text blocks) and by the
// TinyOCR templates. Header-only so sim/ and nn/ can share it without a
// link dependency.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

namespace deeplens {
namespace nn {

/// Closed world of labels the TinySSD detector can emit (paper §4.2:
/// "object detection networks have a closed-world of labels").
enum class ObjectClass : int {
  kCar = 0,
  kPerson = 1,
  kPlayer = 2,
  kText = 3,
};
inline constexpr int kNumClasses = 4;

inline const char* ObjectClassName(ObjectClass c) {
  switch (c) {
    case ObjectClass::kCar:
      return "car";
    case ObjectClass::kPerson:
      return "person";
    case ObjectClass::kPlayer:
      return "player";
    case ObjectClass::kText:
      return "text";
  }
  return "?";
}

/// Canonical body color each class is rendered with (R, G, B). The
/// detector's first conv layer computes contrasts against these.
inline constexpr uint8_t kClassColor[kNumClasses][3] = {
    {200, 40, 40},   // car: red-dominant
    {40, 180, 60},   // person: green-dominant
    {40, 60, 200},   // player: blue-dominant
    {25, 25, 25},    // text: dark block (glyphs drawn near-white)
};

/// Brightness of text glyph pixels.
inline constexpr uint8_t kGlyphBrightness = 240;

/// Projective constant shared by the scene camera model and TinyDepth:
/// focal length × real object height. An object at depth d meters renders
/// with pixel height kFocalTimesHeight / d.
inline constexpr float kFocalTimesHeight = 320.0f;

/// \brief Integer pixel bounding box, half-open is avoided: [x0,x1]×[y0,y1]
/// inclusive of x0/y0, exclusive of x1/y1 like Image::Crop.
struct BBox {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;

  int Width() const { return x1 - x0; }
  int Height() const { return y1 - y0; }
  int Area() const { return std::max(0, Width()) * std::max(0, Height()); }

  /// Intersection-over-union; 0 when disjoint or degenerate.
  float Iou(const BBox& o) const {
    const int ix0 = std::max(x0, o.x0);
    const int iy0 = std::max(y0, o.y0);
    const int ix1 = std::min(x1, o.x1);
    const int iy1 = std::min(y1, o.y1);
    const int iw = ix1 - ix0;
    const int ih = iy1 - iy0;
    if (iw <= 0 || ih <= 0) return 0.0f;
    const float inter = static_cast<float>(iw) * ih;
    const float uni = static_cast<float>(Area()) + o.Area() - inter;
    return uni > 0.0f ? inter / uni : 0.0f;
  }

  int CenterX() const { return (x0 + x1) / 2; }
  int CenterY() const { return (y0 + y1) / 2; }

  bool ContainsPoint(int x, int y) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }
};

// --- 5×7 digit font -----------------------------------------------------

inline constexpr int kGlyphWidth = 5;
inline constexpr int kGlyphHeight = 7;

/// Row bitmaps, MSB = leftmost of the 5 columns.
inline constexpr uint8_t kDigitFont[10][kGlyphHeight] = {
    {0x0E, 0x11, 0x13, 0x15, 0x19, 0x11, 0x0E},  // 0
    {0x04, 0x0C, 0x04, 0x04, 0x04, 0x04, 0x0E},  // 1
    {0x0E, 0x11, 0x01, 0x02, 0x04, 0x08, 0x1F},  // 2
    {0x1F, 0x02, 0x04, 0x02, 0x01, 0x11, 0x0E},  // 3
    {0x02, 0x06, 0x0A, 0x12, 0x1F, 0x02, 0x02},  // 4
    {0x1F, 0x10, 0x1E, 0x01, 0x01, 0x11, 0x0E},  // 5
    {0x06, 0x08, 0x10, 0x1E, 0x11, 0x11, 0x0E},  // 6
    {0x1F, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08},  // 7
    {0x0E, 0x11, 0x11, 0x0E, 0x11, 0x11, 0x0E},  // 8
    {0x0E, 0x11, 0x11, 0x0F, 0x01, 0x02, 0x0C},  // 9
};

/// True if pixel (x, y) of `digit`'s glyph is foreground.
inline bool GlyphPixel(int digit, int x, int y) {
  if (digit < 0 || digit > 9 || x < 0 || x >= kGlyphWidth || y < 0 ||
      y >= kGlyphHeight) {
    return false;
  }
  return (kDigitFont[digit][y] >> (kGlyphWidth - 1 - x)) & 1;
}

}  // namespace nn
}  // namespace deeplens
