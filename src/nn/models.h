// The three model instantiations DeepLens' benchmark uses (paper §4.1):
//  * TinySsdDetector — object detection (the paper's SSD [20]),
//  * TinyOcr         — text recognition on patches,
//  * TinyDepth       — monocular depth prediction (the paper's FCRN [18]).
//
// Unlike the paper's pre-trained networks, weights here are *constructed*:
// the first conv layer computes color-contrast features matched to the
// synthetic domain's class colors, so predictions genuinely respond to
// pixel content (and genuinely degrade under lossy encoding — Figure 2),
// while remaining fully deterministic and trainable-free for offline use.
#pragma once

#include <string>
#include <vector>

#include "nn/domain.h"
#include "nn/network.h"

namespace deeplens {
namespace nn {

/// One detected object in frame coordinates.
struct Detection {
  BBox bbox;
  ObjectClass label = ObjectClass::kCar;
  float score = 0.0f;
};

/// TinySSD tuning knobs.
struct DetectorOptions {
  /// Square resolution frames are resampled to before the backbone.
  int input_size = 64;
  /// Detection grid (cells per side); input_size must be a multiple.
  int grid = 16;
  /// Per-class score thresholds.
  float threshold[kNumClasses] = {0.22f, 0.22f, 0.22f, 0.035f};
};

/// \brief Grid-based single-shot detector over color-contrast features.
class TinySsdDetector {
 public:
  explicit TinySsdDetector(DetectorOptions options = DetectorOptions());

  /// Detects objects in one frame.
  Result<std::vector<Detection>> Detect(const Image& frame,
                                        Device* device) const;

  /// Batched variant: one GPU launch for the whole batch.
  Result<std::vector<std::vector<Detection>>> DetectBatch(
      const std::vector<Image>& frames, Device* device) const;

  const Network& network() const { return net_; }
  const DetectorOptions& options() const { return options_; }

 private:
  std::vector<Detection> DecodeGrid(const Tensor& scores, int frame_w,
                                    int frame_h) const;

  DetectorOptions options_;
  Network net_;
};

/// \brief Digit/string recognizer. Glyphs are segmented by column
/// projection, then classified by a matched-filter linear layer whose
/// weights are the font templates.
class TinyOcr {
 public:
  TinyOcr();

  /// Recognizes a single pre-cropped glyph (any size; resampled to 8×8).
  /// Returns the digit 0-9, or NotFound if confidence is too low.
  Result<int> RecognizeDigit(const Image& glyph, Device* device) const;

  /// Segments and recognizes a digit string in a text patch. Returns the
  /// empty string when nothing legible is found.
  Result<std::string> RecognizeText(const Image& patch,
                                    Device* device) const;

  /// Batched variant for the cross-query batch former: one device launch
  /// for the whole batch on GpuSim, a plain loop of RecognizeText on CPU
  /// backends (so batched output is identical to unbatched by
  /// construction). Returns one string per patch, in order.
  Result<std::vector<std::string>> RecognizeTextBatch(
      const std::vector<const Image*>& patches, Device* device) const;

  /// Cheap proxy for RecognizeText: a subsampled ink scan. False means
  /// no sampled pixel reaches the glyph-ink threshold, so the full
  /// recognizer would almost certainly return "" — the planner's cascade
  /// uses this to skip OCR on inkless patches.
  bool ProxyHasInk(const Image& patch) const;

  const Network& network() const { return net_; }

 private:
  Network net_;
  float min_confidence_ = 0.30f;
};

/// \brief Monocular depth head. Combines the projective-geometry cue
/// (apparent height ∝ 1/depth) with a small conv feature extractor over
/// the patch pixels, mirroring how the FCRN baseline consumes pixels.
class TinyDepth {
 public:
  /// `focal_times_height` = focal length × real-world object height, the
  /// constant that maps apparent pixel height to metric depth. The sim
  /// renders pedestrians with the same constant (sim::kDepthConstant).
  explicit TinyDepth(float focal_times_height);

  /// Predicts depth (meters) of the object in `patch` whose bounding box
  /// in the source frame was `bbox` (frame height `frame_h` pixels).
  Result<float> PredictDepth(const Image& patch, const BBox& bbox,
                             int frame_h, Device* device) const;

  /// Batched variant for the cross-query batch former (parallel arrays,
  /// one entry per item): one device launch on GpuSim, a loop of
  /// PredictDepth on CPU backends. Any degenerate item fails the whole
  /// batch — callers that need per-item isolation pre-validate.
  Result<std::vector<float>> PredictDepthBatch(
      const std::vector<const Image*>& patches,
      const std::vector<BBox>& bboxes, const std::vector<int>& frame_hs,
      Device* device) const;

  /// Cheap proxy for PredictDepth: the projective-geometry cue alone,
  /// skipping the conv feature extractor (whose contribution perturbs
  /// the geometric estimate by a few percent). Used by the planner's
  /// proxy cascades to reject rows whose estimate is far from the
  /// predicate's threshold without running the network.
  float ProxyDepth(const BBox& bbox) const;

  const Network& network() const { return conv_net_; }

 private:
  float focal_times_height_;
  Network conv_net_;  // pixel feature extractor (the compute-bound part)
  Linear head_;       // combines geometry cue with pixel features
};

}  // namespace nn
}  // namespace deeplens
