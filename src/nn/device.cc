#include "nn/device.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "tensor/ops.h"

namespace deeplens {
namespace nn {

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kCpuScalar:
      return "cpu";
    case DeviceKind::kCpuVector:
      return "avx";
    case DeviceKind::kGpuSim:
      return "gpu";
  }
  return "?";
}

namespace {

class CpuScalarDevice : public Device {
 public:
  DeviceKind kind() const override { return DeviceKind::kCpuScalar; }

  void Matmul(const float* a, const float* b, float* c, size_t m, size_t k,
              size_t n) override {
    ops::MatmulScalar(a, b, c, m, k, n);
  }
  void Relu(float* x, size_t n) override { ops::ReluScalarKernel(x, n); }
  void Add(const float* a, const float* b, float* out, size_t n) override {
    ops::AddScalarKernel(a, b, out, n);
  }
  void ScaleBias(const float* a, float scale, float bias, float* out,
                 size_t n) override {
    ops::ScaleBiasScalarKernel(a, scale, bias, out, n);
  }
  void PairwiseL2Squared(const float* a, size_t na, const float* b,
                         size_t nb, size_t dim, float* out) override {
    for (size_t i = 0; i < na; ++i) {
      for (size_t j = 0; j < nb; ++j) {
        out[i * nb + j] =
            ops::L2SquaredScalar(a + i * dim, b + j * dim, dim);
      }
    }
  }
  void ParallelMap(size_t n, const std::function<void(size_t)>& fn,
                   size_t /*transfer_bytes*/) override {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
};

class CpuVectorDevice : public Device {
 public:
  DeviceKind kind() const override { return DeviceKind::kCpuVector; }

  void Matmul(const float* a, const float* b, float* c, size_t m, size_t k,
              size_t n) override {
    ops::MatmulVector(a, b, c, m, k, n);
  }
  void Relu(float* x, size_t n) override { ops::ReluVectorKernel(x, n); }
  void Add(const float* a, const float* b, float* out, size_t n) override {
    ops::AddVectorKernel(a, b, out, n);
  }
  void ScaleBias(const float* a, float scale, float bias, float* out,
                 size_t n) override {
    ops::ScaleBiasVectorKernel(a, scale, bias, out, n);
  }
  void PairwiseL2Squared(const float* a, size_t na, const float* b,
                         size_t nb, size_t dim, float* out) override {
    for (size_t i = 0; i < na; ++i) {
      for (size_t j = 0; j < nb; ++j) {
        out[i * nb + j] =
            ops::L2SquaredVector(a + i * dim, b + j * dim, dim);
      }
    }
  }
  void ParallelMap(size_t n, const std::function<void(size_t)>& fn,
                   size_t /*transfer_bytes*/) override {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
};

class GpuSimDevice : public Device {
 public:
  explicit GpuSimDevice(GpuSimOptions options) : options_(options) {}

  DeviceKind kind() const override { return DeviceKind::kGpuSim; }

  void set_options(const GpuSimOptions& options) { options_ = options; }

  // RAII scope around a kernel: measures the host time and books the
  // modeled device time (sleep already charged separately is part of the
  // host time; the modeled clock divides only the compute part).
  class KernelScope {
   public:
    KernelScope(GpuSimDevice* device, uint64_t charged_nanos)
        : device_(device), charged_nanos_(charged_nanos) {}
    ~KernelScope() {
      const uint64_t real = timer_.ElapsedNanos();
      const uint64_t compute =
          real > charged_nanos_ ? real - charged_nanos_ : 0;
      device_->real_kernel_nanos_ += real;
      device_->modeled_kernel_nanos_ +=
          charged_nanos_ + static_cast<uint64_t>(
                               static_cast<double>(compute) /
                               device_->options_.compute_speedup);
    }

   private:
    GpuSimDevice* device_;
    uint64_t charged_nanos_;
    Stopwatch timer_;
  };

  void Matmul(const float* a, const float* b, float* c, size_t m, size_t k,
              size_t n) override {
    KernelScope scope(this,
                      ChargeOverhead((m * k + k * n + m * n) * sizeof(float)));
    // Data-parallel over rows of A across the pool = "SM occupancy".
    ThreadPool::Global().ParallelFor(
        0, m,
        [&](size_t i) {
          float* crow = c + i * n;
          for (size_t j = 0; j < n; ++j) crow[j] = 0.0f;
          for (size_t p = 0; p < k; ++p) {
            const float av = a[i * k + p];
            const float* brow = b + p * n;
            for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        },
        /*grain=*/8);
  }
  void Relu(float* x, size_t n) override {
    KernelScope scope(this, ChargeOverhead(n * sizeof(float)));
    ops::ReluVectorKernel(x, n);
  }
  void Add(const float* a, const float* b, float* out, size_t n) override {
    KernelScope scope(this, ChargeOverhead(3 * n * sizeof(float)));
    ops::AddVectorKernel(a, b, out, n);
  }
  void ScaleBias(const float* a, float scale, float bias, float* out,
                 size_t n) override {
    KernelScope scope(this, ChargeOverhead(2 * n * sizeof(float)));
    ops::ScaleBiasVectorKernel(a, scale, bias, out, n);
  }
  void PairwiseL2Squared(const float* a, size_t na, const float* b,
                         size_t nb, size_t dim, float* out) override {
    KernelScope scope(
        this,
        ChargeOverhead((na * dim + nb * dim + na * nb) * sizeof(float)));
    ThreadPool::Global().ParallelFor(
        0, na,
        [&](size_t i) {
          for (size_t j = 0; j < nb; ++j) {
            out[i * nb + j] =
                ops::L2SquaredVector(a + i * dim, b + j * dim, dim);
          }
        },
        /*grain=*/4);
  }
  void ParallelMap(size_t n, const std::function<void(size_t)>& fn,
                   size_t transfer_bytes) override {
    KernelScope scope(this, ChargeOverhead(transfer_bytes));
    ThreadPool::Global().ParallelFor(0, n, fn);
  }

  uint64_t simulated_overhead_nanos() const override {
    return total_overhead_nanos_.load();
  }

  uint64_t real_kernel_nanos() const override {
    return real_kernel_nanos_.load();
  }
  uint64_t modeled_kernel_nanos() const override {
    return modeled_kernel_nanos_.load();
  }
  void ResetKernelClocks() override {
    real_kernel_nanos_ = 0;
    modeled_kernel_nanos_ = 0;
  }

 private:
  // Models launch latency + PCIe copy by actually waiting: the wall-clock
  // cost must be visible to the benchmarks exactly as a real device stall
  // would be. Returns the nanoseconds charged.
  uint64_t ChargeOverhead(size_t transfer_bytes) {
    const uint64_t copy_nanos = static_cast<uint64_t>(
        static_cast<double>(transfer_bytes) /
        options_.transfer_bytes_per_sec * 1e9);
    const uint64_t total = options_.launch_overhead_nanos + copy_nanos;
    total_overhead_nanos_ += total;
    std::this_thread::sleep_for(std::chrono::nanoseconds(total));
    return total;
  }

  GpuSimOptions options_;
  std::atomic<uint64_t> total_overhead_nanos_{0};
  std::atomic<uint64_t> real_kernel_nanos_{0};
  std::atomic<uint64_t> modeled_kernel_nanos_{0};
};

CpuScalarDevice* ScalarInstance() {
  static CpuScalarDevice device;
  return &device;
}
CpuVectorDevice* VectorInstance() {
  static CpuVectorDevice device;
  return &device;
}
GpuSimDevice* GpuInstance() {
  static GpuSimDevice device{GpuSimOptions{}};
  return &device;
}

}  // namespace

Device* GetDevice(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kCpuScalar:
      return ScalarInstance();
    case DeviceKind::kCpuVector:
      return VectorInstance();
    case DeviceKind::kGpuSim:
      return GpuInstance();
  }
  return ScalarInstance();
}

void ConfigureGpuSim(const GpuSimOptions& options) {
  GpuInstance()->set_options(options);
}

}  // namespace nn
}  // namespace deeplens
