// Sequential network container plus a batched runner that amortizes the
// simulated GPU's launch overhead across a batch — mirroring how real
// inference engines batch frames (paper §7.4.2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"

namespace deeplens {
namespace nn {

/// \brief A straight-line stack of layers.
class Network {
 public:
  explicit Network(std::string name) : name_(std::move(name)) {}

  /// Appends a layer; returns a borrowed pointer for weight surgery.
  template <typename L, typename... Args>
  L* Add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* ptr = layer.get();
    layers_.push_back(std::move(layer));
    return ptr;
  }

  /// Runs the stack on one input.
  Result<Tensor> Forward(const Tensor& input, Device* device) const;

  const std::string& name() const { return name_; }
  size_t num_layers() const { return layers_.size(); }
  int64_t num_params() const;
  std::string Summary() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Runs `net` over a batch of inputs. On the GPU backend the batch is
/// dispatched as one ParallelMap (single launch + one transfer charge);
/// on CPU backends items run sequentially.
Result<std::vector<Tensor>> ForwardBatch(const Network& net,
                                         const std::vector<Tensor>& inputs,
                                         Device* device);

}  // namespace nn
}  // namespace deeplens
