#include "etl/generators.h"

#include <deque>

#include "cache/inference_cache.h"

namespace deeplens {

namespace {

PatchId AllocateId(const EtlOptions& options) {
  static std::atomic<uint64_t> fallback_counter{1};
  std::atomic<uint64_t>* counter =
      options.id_counter != nullptr ? options.id_counter : &fallback_counter;
  return counter->fetch_add(1);
}

nn::Device* DeviceOf(const EtlOptions& options) {
  return options.device != nullptr
             ? options.device
             : nn::GetDevice(nn::DeviceKind::kCpuVector);
}

// Device for small per-tuple model invocations (single-glyph OCR, one
// patch's depth head). Offloading these to the GPU would pay a kernel
// launch per tuple — exactly the overhead the paper warns about — so the
// planner places them on the vectorized CPU path when the batch device is
// the GPU.
nn::Device* PerTupleDeviceOf(const EtlOptions& options) {
  nn::Device* device = DeviceOf(options);
  if (device->kind() == nn::DeviceKind::kGpuSim) {
    return nn::GetDevice(nn::DeviceKind::kCpuVector);
  }
  return device;
}

void RecordLineage(const EtlOptions& options, const Patch& patch) {
  if (options.lineage != nullptr) options.lineage->Record(patch);
}

// Detector over a frame batch with per-frame memoization: cached frames
// are served by fingerprint, only the misses go through one DetectBatch
// launch (so the GPU batching amortization is preserved for cold frames).
Result<std::vector<std::vector<nn::Detection>>> DetectBatchCached(
    const nn::TinySsdDetector* detector, const std::vector<Image>& frames,
    const EtlOptions& options) {
  InferenceCache* cache = options.inference_cache;
  nn::Device* device = DeviceOf(options);
  if (cache == nullptr || !cache->enabled()) {
    return detector->DetectBatch(frames, device);
  }
  std::vector<std::vector<nn::Detection>> out(frames.size());
  std::vector<std::string> keys(frames.size());
  std::vector<size_t> miss_indices;
  const std::string model =
      InferenceCache::ModelOnDevice(model_names::kDetector, device);
  for (size_t i = 0; i < frames.size(); ++i) {
    keys[i] = InferenceCache::KeyFor(model, ImageFingerprint(frames[i]));
    const auto hit = cache->Get(keys[i]);
    // Wrong-typed hit (a persistent log written by a build that changed
    // the payload type without bumping the format version): recompute
    // instead of crash.
    const auto* dets =
        hit ? std::get_if<std::vector<nn::Detection>>(&hit->payload)
            : nullptr;
    if (dets != nullptr) {
      out[i] = *dets;
    } else {
      miss_indices.push_back(i);
    }
  }
  if (miss_indices.size() == frames.size()) {
    // All cold (the common first pass): run the batch directly, no frame
    // copies.
    DL_ASSIGN_OR_RETURN(out, detector->DetectBatch(frames, device));
    for (size_t i = 0; i < frames.size(); ++i) {
      cache->Put(keys[i], InferenceValue{out[i]});
    }
  } else if (!miss_indices.empty()) {
    std::vector<Image> miss_frames;
    miss_frames.reserve(miss_indices.size());
    for (size_t i : miss_indices) miss_frames.push_back(frames[i]);
    DL_ASSIGN_OR_RETURN(auto fresh,
                        detector->DetectBatch(miss_frames, device));
    for (size_t m = 0; m < miss_indices.size(); ++m) {
      cache->Put(keys[miss_indices[m]], InferenceValue{fresh[m]});
      out[miss_indices[m]] = std::move(fresh[m]);
    }
  }
  return out;
}

// Base class for generators that buffer a batch of frames, process them,
// and stream out the resulting patches.
class BatchedGenerator : public PatchIterator {
 public:
  BatchedGenerator(FrameIterator frames, EtlOptions options)
      : frames_(std::move(frames)), options_(std::move(options)) {}

  Result<std::optional<PatchTuple>> Next() override {
    while (pending_.empty()) {
      if (exhausted_) return std::optional<PatchTuple>();
      DL_RETURN_NOT_OK(FillBatch());
    }
    PatchTuple t{std::move(pending_.front())};
    pending_.pop_front();
    return std::optional<PatchTuple>(std::move(t));
  }

 protected:
  /// Pulls up to batch_size frames and appends output patches via Emit().
  Status FillBatch() {
    std::vector<std::pair<int, Image>> batch;
    for (int i = 0; i < std::max(1, options_.batch_size); ++i) {
      DL_ASSIGN_OR_RETURN(auto frame, frames_());
      if (!frame.has_value()) {
        exhausted_ = true;
        break;
      }
      batch.push_back(std::move(*frame));
    }
    if (batch.empty()) return Status::OK();
    return ProcessBatch(batch);
  }

  virtual Status ProcessBatch(
      const std::vector<std::pair<int, Image>>& batch) = 0;

  void Emit(Patch patch) {
    RecordLineage(options_, patch);
    pending_.push_back(std::move(patch));
  }

  const EtlOptions& options() const { return options_; }

 private:
  FrameIterator frames_;
  EtlOptions options_;
  std::deque<Patch> pending_;
  bool exhausted_ = false;
};

class WholeImageGenerator : public BatchedGenerator {
 public:
  using BatchedGenerator::BatchedGenerator;

 protected:
  Status ProcessBatch(
      const std::vector<std::pair<int, Image>>& batch) override {
    for (const auto& [frameno, frame] : batch) {
      Patch p;
      p.set_id(AllocateId(options()));
      p.set_ref(ImgRef{options().dataset_name, frameno, kInvalidPatchId});
      p.set_pixels(frame);
      p.set_bbox(nn::BBox{0, 0, frame.width(), frame.height()});
      p.mutable_meta().Set(meta_keys::kFrameNo, int64_t{frameno});
      p.mutable_meta().Set(meta_keys::kDataset, options().dataset_name);
      p.mutable_meta().Set(meta_keys::kPatchId,
                           static_cast<int64_t>(p.id()));
      Emit(std::move(p));
    }
    return Status::OK();
  }
};

class ObjectDetectorGenerator : public BatchedGenerator {
 public:
  ObjectDetectorGenerator(FrameIterator frames,
                          const nn::TinySsdDetector* detector,
                          EtlOptions options)
      : BatchedGenerator(std::move(frames), std::move(options)),
        detector_(detector) {}

 protected:
  Status ProcessBatch(
      const std::vector<std::pair<int, Image>>& batch) override {
    std::vector<Image> frames;
    frames.reserve(batch.size());
    for (const auto& [frameno, frame] : batch) frames.push_back(frame);
    DL_ASSIGN_OR_RETURN(auto detections,
                        DetectBatchCached(detector_, frames, options()));
    for (size_t i = 0; i < batch.size(); ++i) {
      const int frameno = batch[i].first;
      const Image& frame = batch[i].second;
      for (const nn::Detection& d : detections[i]) {
        Patch p;
        p.set_id(AllocateId(options()));
        p.set_ref(ImgRef{options().dataset_name, frameno, kInvalidPatchId});
        p.set_bbox(d.bbox);
        if (options().crop_pixels) {
          p.set_pixels(frame.Crop(d.bbox.x0, d.bbox.y0, d.bbox.x1,
                                  d.bbox.y1));
        }
        MetaDict& meta = p.mutable_meta();
        meta.Set(meta_keys::kLabel,
                 std::string(nn::ObjectClassName(d.label)));
        meta.Set(meta_keys::kScore, static_cast<double>(d.score));
        meta.Set(meta_keys::kFrameNo, int64_t{frameno});
        meta.Set(meta_keys::kDataset, options().dataset_name);
        meta.Set(meta_keys::kPatchId, static_cast<int64_t>(p.id()));
        meta.Set(meta_keys::kBoxX0, int64_t{d.bbox.x0});
        meta.Set(meta_keys::kBoxY0, int64_t{d.bbox.y0});
        meta.Set(meta_keys::kBoxX1, int64_t{d.bbox.x1});
        meta.Set(meta_keys::kBoxY1, int64_t{d.bbox.y1});
        Emit(std::move(p));
      }
    }
    return Status::OK();
  }

 private:
  const nn::TinySsdDetector* detector_;
};

class OcrGenerator : public BatchedGenerator {
 public:
  OcrGenerator(FrameIterator frames, const nn::TinySsdDetector* detector,
               const nn::TinyOcr* ocr, EtlOptions options)
      : BatchedGenerator(std::move(frames), std::move(options)),
        detector_(detector),
        ocr_(ocr) {}

 protected:
  Status ProcessBatch(
      const std::vector<std::pair<int, Image>>& batch) override {
    std::vector<Image> frames;
    frames.reserve(batch.size());
    for (const auto& [frameno, frame] : batch) frames.push_back(frame);
    DL_ASSIGN_OR_RETURN(auto detections,
                        DetectBatchCached(detector_, frames, options()));
    for (size_t i = 0; i < batch.size(); ++i) {
      const int frameno = batch[i].first;
      const Image& frame = batch[i].second;
      for (const nn::Detection& d : detections[i]) {
        if (d.label != nn::ObjectClass::kText) continue;
        const Image crop =
            frame.Crop(d.bbox.x0, d.bbox.y0, d.bbox.x1, d.bbox.y1);
        InferenceCache* cache = options().inference_cache;
        DL_ASSIGN_OR_RETURN(
            std::string text,
            CachedOcrText(*ocr_, crop,
                          cache != nullptr && cache->enabled()
                              ? ImageFingerprint(crop)
                              : 0,
                          PerTupleDeviceOf(options()), cache));
        if (text.empty()) continue;
        Patch p;
        p.set_id(AllocateId(options()));
        p.set_ref(ImgRef{options().dataset_name, frameno, kInvalidPatchId});
        p.set_bbox(d.bbox);
        if (options().crop_pixels) p.set_pixels(crop);
        MetaDict& meta = p.mutable_meta();
        meta.Set(meta_keys::kText, text);
        meta.Set(meta_keys::kScore, static_cast<double>(d.score));
        meta.Set(meta_keys::kFrameNo, int64_t{frameno});
        meta.Set(meta_keys::kDataset, options().dataset_name);
        meta.Set(meta_keys::kPatchId, static_cast<int64_t>(p.id()));
        Emit(std::move(p));
      }
    }
    return Status::OK();
  }

 private:
  const nn::TinySsdDetector* detector_;
  const nn::TinyOcr* ocr_;
};

class TileGenerator : public BatchedGenerator {
 public:
  TileGenerator(FrameIterator frames, int tile_w, int tile_h,
                EtlOptions options)
      : BatchedGenerator(std::move(frames), std::move(options)),
        tile_w_(tile_w),
        tile_h_(tile_h) {}

 protected:
  Status ProcessBatch(
      const std::vector<std::pair<int, Image>>& batch) override {
    for (const auto& [frameno, frame] : batch) {
      for (int ty = 0; ty * tile_h_ < frame.height(); ++ty) {
        for (int tx = 0; tx * tile_w_ < frame.width(); ++tx) {
          const int x0 = tx * tile_w_;
          const int y0 = ty * tile_h_;
          const int x1 = std::min(frame.width(), x0 + tile_w_);
          const int y1 = std::min(frame.height(), y0 + tile_h_);
          Patch p;
          p.set_id(AllocateId(options()));
          p.set_ref(
              ImgRef{options().dataset_name, frameno, kInvalidPatchId});
          p.set_bbox(nn::BBox{x0, y0, x1, y1});
          p.set_pixels(frame.Crop(x0, y0, x1, y1));
          MetaDict& meta = p.mutable_meta();
          meta.Set(meta_keys::kFrameNo, int64_t{frameno});
          meta.Set(meta_keys::kDataset, options().dataset_name);
          meta.Set(meta_keys::kPatchId, static_cast<int64_t>(p.id()));
          meta.Set("tile_x", int64_t{tx});
          meta.Set("tile_y", int64_t{ty});
          Emit(std::move(p));
        }
      }
    }
    return Status::OK();
  }

 private:
  int tile_w_, tile_h_;
};

}  // namespace

FrameIterator FramesFromVideo(std::shared_ptr<VideoReader> reader) {
  auto state = std::make_shared<int>(0);
  return [reader, state]() -> Result<std::optional<std::pair<int, Image>>> {
    if (*state >= reader->num_frames()) {
      return std::optional<std::pair<int, Image>>();
    }
    const int frameno = (*state)++;
    DL_ASSIGN_OR_RETURN(Image frame, reader->ReadFrame(frameno));
    return std::optional<std::pair<int, Image>>(
        std::make_pair(frameno, std::move(frame)));
  };
}

FrameIterator FramesFromVector(std::vector<Image> frames,
                               int first_frameno) {
  auto data = std::make_shared<std::vector<Image>>(std::move(frames));
  auto pos = std::make_shared<size_t>(0);
  return [data, pos,
          first_frameno]() -> Result<std::optional<std::pair<int, Image>>> {
    if (*pos >= data->size()) {
      return std::optional<std::pair<int, Image>>();
    }
    const size_t i = (*pos)++;
    return std::optional<std::pair<int, Image>>(std::make_pair(
        first_frameno + static_cast<int>(i), (*data)[i]));
  };
}

PatchIteratorPtr MakeWholeImageGenerator(FrameIterator frames,
                                         EtlOptions options) {
  return std::make_unique<WholeImageGenerator>(std::move(frames),
                                               std::move(options));
}

PatchIteratorPtr MakeObjectDetectorGenerator(
    FrameIterator frames, const nn::TinySsdDetector* detector,
    EtlOptions options) {
  return std::make_unique<ObjectDetectorGenerator>(
      std::move(frames), detector, std::move(options));
}

PatchIteratorPtr MakeOcrGenerator(FrameIterator frames,
                                  const nn::TinySsdDetector* detector,
                                  const nn::TinyOcr* ocr,
                                  EtlOptions options) {
  return std::make_unique<OcrGenerator>(std::move(frames), detector, ocr,
                                        std::move(options));
}

PatchIteratorPtr MakeTileGenerator(FrameIterator frames, int tile_width,
                                   int tile_height, EtlOptions options) {
  return std::make_unique<TileGenerator>(std::move(frames), tile_width,
                                         tile_height, std::move(options));
}

PatchSchema WholeImageSchema() {
  PatchSchema schema;
  schema.AddAttribute(meta_keys::kFrameNo, ValueType::kInt)
      .AddAttribute(meta_keys::kDataset, ValueType::kString);
  return schema;
}

PatchSchema DetectorSchema() {
  PatchSchema schema;
  AttributeSpec label;
  label.name = meta_keys::kLabel;
  label.type = ValueType::kString;
  for (int c = 0; c < nn::kNumClasses; ++c) {
    label.domain.insert(
        nn::ObjectClassName(static_cast<nn::ObjectClass>(c)));
  }
  schema.AddAttribute(std::move(label))
      .AddAttribute(meta_keys::kScore, ValueType::kFloat)
      .AddAttribute(meta_keys::kFrameNo, ValueType::kInt)
      .AddAttribute(meta_keys::kDataset, ValueType::kString)
      .AddAttribute(meta_keys::kBoxX0, ValueType::kInt)
      .AddAttribute(meta_keys::kBoxY0, ValueType::kInt)
      .AddAttribute(meta_keys::kBoxX1, ValueType::kInt)
      .AddAttribute(meta_keys::kBoxY1, ValueType::kInt);
  return schema;
}

PatchSchema OcrSchema() {
  PatchSchema schema;
  schema.AddAttribute(meta_keys::kText, ValueType::kString)
      .AddAttribute(meta_keys::kScore, ValueType::kFloat)
      .AddAttribute(meta_keys::kFrameNo, ValueType::kInt)
      .AddAttribute(meta_keys::kDataset, ValueType::kString);
  return schema;
}

}  // namespace deeplens
