// Materialization (paper §4.1 "Materialize"): any stage of the patch
// dataflow can be persisted to disk and reloaded, so expensive ETL (neural
// inference) amortizes across queries — the ETL-vs-Query-time separation
// of §7.2.
#pragma once

#include <memory>
#include <string>

#include "core/patch.h"
#include "exec/batch.h"
#include "exec/operators.h"
#include "storage/record_store.h"

namespace deeplens {

/// \brief A named, persisted patch collection backed by a RecordStore
/// (keys are patch ids).
class MaterializedView {
 public:
  /// Opens (or creates) the view's backing store.
  static Result<std::unique_ptr<MaterializedView>> Open(
      const std::string& path);

  /// Drains a batch iterator into the store (the native path). Returns
  /// the number of patches written.
  Result<uint64_t> Write(BatchIterator* it);

  /// Drains a tuple iterator by batching it through the vectorized engine.
  Result<uint64_t> Write(PatchIterator* it);

  /// Appends a single patch.
  Status Append(const Patch& patch);

  /// Loads every stored patch (ordered by id).
  Result<PatchCollection> LoadAll() const;

  /// Batch source over the stored patches.
  BatchIteratorPtr ScanBatches(size_t batch_size = kDefaultBatchSize) const;

  /// Tuple source over the stored patches (adapter over ScanBatches).
  PatchIteratorPtr Scan() const;

  uint64_t size() const { return store_->Stats().num_records; }
  uint64_t storage_bytes() const { return store_->Stats().log_bytes; }
  Status Flush() { return store_->Flush(); }

 private:
  explicit MaterializedView(std::unique_ptr<RecordStore> store)
      : store_(std::move(store)) {}

  std::shared_ptr<RecordStore> store_;
};

}  // namespace deeplens
