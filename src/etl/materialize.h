// Materialization (paper §4.1 "Materialize"): any stage of the patch
// dataflow can be persisted to disk and reloaded, so expensive ETL (neural
// inference) amortizes across queries — the ETL-vs-Query-time separation
// of §7.2.
//
// Two on-disk formats live behind this one API. New views default to the
// chunked columnar format (storage/columnar/, switchable with
// DEEPLENS_VIEW_FORMAT); files written before the columnar format existed
// are sniffed by their header bytes and keep working through the legacy
// RecordStore path. Columnar views additionally expose OpenReader() so
// the planner can scan them with zone-map pruning, projection pushdown,
// and async decode-ahead instead of a full materialize.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/patch.h"
#include "exec/batch.h"
#include "exec/operators.h"
#include "storage/columnar/columnar_file.h"
#include "storage/record_store.h"

namespace deeplens {

/// \brief A named, persisted patch collection (keys are patch ids; a
/// re-appended id overwrites the stored row in either format).
class MaterializedView {
 public:
  enum class Format { kLegacy, kColumnar };

  /// Opens (or creates) the view's backing file. Existing non-empty files
  /// keep their on-disk format (sniffed from the header); new files use
  /// DEEPLENS_VIEW_FORMAT (default columnar).
  static Result<std::unique_ptr<MaterializedView>> Open(
      const std::string& path);

  /// Like Open(path), but new/empty files are created in `format`
  /// explicitly (benchmarks and differential tests pin both formats).
  static Result<std::unique_ptr<MaterializedView>> Open(
      const std::string& path, Format format);

  Format format() const {
    return store_ != nullptr ? Format::kLegacy : Format::kColumnar;
  }

  /// Drains a batch iterator into the store (the native path). Returns
  /// the number of patches written.
  Result<uint64_t> Write(BatchIterator* it);

  /// Drains a tuple iterator by batching it through the vectorized engine.
  Result<uint64_t> Write(PatchIterator* it);

  /// Appends a single patch (columnar: buffered until Flush/scan when it
  /// arrives out of id order or overwrites an existing id).
  Status Append(const Patch& patch);

  /// Loads every stored patch (ordered by id).
  Result<PatchCollection> LoadAll() const;

  /// Batch source over the stored patches. The iterator is a snapshot
  /// taken at call time: it survives the view and never sees later
  /// appends. Columnar views stream chunk-at-a-time through the async
  /// decode-ahead loader instead of materializing everything eagerly.
  BatchIteratorPtr ScanBatches(size_t batch_size = kDefaultBatchSize) const;

  /// Tuple source over the stored patches (adapter over ScanBatches).
  PatchIteratorPtr Scan() const;

  /// Columnar views only: a footer snapshot handle for planner-side
  /// chunk-pruned scans. InvalidArgument on legacy views.
  Result<std::shared_ptr<columnar::ColumnarReader>> OpenReader() const;

  uint64_t size() const;
  uint64_t storage_bytes() const;
  Status Flush();

 private:
  explicit MaterializedView(std::unique_ptr<RecordStore> store)
      : store_(std::move(store)) {}
  MaterializedView(std::string path,
                   std::unique_ptr<columnar::ColumnarWriter> writer)
      : path_(std::move(path)), writer_(std::move(writer)) {}

  /// Columnar: drains the pending reorder/overwrite buffer into the file
  /// (merge-rewriting when ids collide or interleave) and commits the
  /// footer, so readers opened afterwards see every append. Const because
  /// every read path must observe pending appends (mutable backend).
  Status SyncColumnar() const;

  // Exactly one backend is set.
  std::shared_ptr<RecordStore> store_;  // legacy

  std::string path_;  // columnar
  mutable std::unique_ptr<columnar::ColumnarWriter> writer_;
  // Out-of-order / overwriting appends park here until SyncColumnar().
  mutable std::map<PatchId, Patch> pending_;
};

}  // namespace deeplens
