#include "etl/transformers.h"

#include <cmath>

#include "cache/inference_cache.h"

namespace deeplens {

Tensor ColorHistogramFeature(const Image& patch,
                             const ColorHistogramOptions& options) {
  const int bins = std::max(1, options.bins);
  const int grid = std::max(1, options.grid);
  const int dim = 3 * bins + (grid > 1 ? 3 * grid * grid : 0);
  Tensor feature({dim});
  if (patch.empty()) return feature;

  const int w = patch.width();
  const int h = patch.height();
  const int channels = std::min(3, patch.channels());
  float* hist = feature.data();

  // Soft (linear) binning: each pixel splits its mass between the two
  // nearest bin centers. Hard binning makes near-boundary colors flip
  // bins under pixel noise, which destroys identity matching; soft
  // binning keeps the feature Lipschitz in the underlying color.
  const float bin_width = 256.0f / static_cast<float>(bins);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < channels; ++c) {
        const float pos =
            (static_cast<float>(patch.At(x, y, c)) + 0.5f) / bin_width -
            0.5f;
        int lo_bin = static_cast<int>(std::floor(pos));
        const float frac = pos - static_cast<float>(lo_bin);
        if (lo_bin < 0) {
          hist[c * bins] += 1.0f;
        } else if (lo_bin >= bins - 1) {
          hist[c * bins + bins - 1] += 1.0f;
        } else {
          hist[c * bins + lo_bin] += 1.0f - frac;
          hist[c * bins + lo_bin + 1] += frac;
        }
      }
    }
  }
  // L1 normalization makes histograms comparable across patch sizes.
  const float inv = 1.0f / static_cast<float>(w * h);
  for (int i = 0; i < 3 * bins; ++i) hist[i] *= inv;

  if (grid > 1) {
    float* cells = hist + 3 * bins;
    for (int gy = 0; gy < grid; ++gy) {
      for (int gx = 0; gx < grid; ++gx) {
        const int x0 = gx * w / grid;
        const int x1 = std::max(x0 + 1, (gx + 1) * w / grid);
        const int y0 = gy * h / grid;
        const int y1 = std::max(y0 + 1, (gy + 1) * h / grid);
        float sum[3] = {0, 0, 0};
        int count = 0;
        for (int y = y0; y < y1 && y < h; ++y) {
          for (int x = x0; x < x1 && x < w; ++x) {
            for (int c = 0; c < channels; ++c) {
              sum[c] += static_cast<float>(patch.At(x, y, c)) / 255.0f;
            }
            ++count;
          }
        }
        for (int c = 0; c < 3; ++c) {
          cells[(gy * grid + gx) * 3 + c] =
              count > 0 ? sum[c] / static_cast<float>(count) : 0.0f;
        }
      }
    }
  }
  return feature;
}

PatchIteratorPtr MakeColorHistogramTransformer(
    PatchIteratorPtr child, ColorHistogramOptions options) {
  return MakeMap(std::move(child),
                 [options](PatchTuple tuple) -> Result<PatchTuple> {
                   for (Patch& p : tuple) {
                     if (!p.has_pixels()) {
                       return Status::InvalidArgument(
                           "ColorHistogramTransformer needs pixel data");
                     }
                     p.set_features(
                         ColorHistogramFeature(p.pixels(), options));
                   }
                   return tuple;
                 });
}

PatchIteratorPtr MakeDepthTransformer(PatchIteratorPtr child,
                                      const nn::TinyDepth* model,
                                      int frame_height, nn::Device* device,
                                      InferenceCache* cache) {
  nn::Device* dev = device != nullptr
                        ? device
                        : nn::GetDevice(nn::DeviceKind::kCpuVector);
  return MakeMap(
      std::move(child),
      [model, frame_height, dev,
       cache](PatchTuple tuple) -> Result<PatchTuple> {
        for (Patch& p : tuple) {
          if (!p.has_pixels()) {
            return Status::InvalidArgument(
                "DepthTransformer needs pixel data");
          }
          DL_ASSIGN_OR_RETURN(
              double depth,
              CachedDepth(*model, p.pixels(), p.bbox(), frame_height,
                          CacheFingerprint(p, cache), dev, cache));
          p.mutable_meta().Set(meta_keys::kDepth, depth);
        }
        return tuple;
      });
}

PatchIteratorPtr MakeOcrTransformer(PatchIteratorPtr child,
                                    const nn::TinyOcr* ocr,
                                    nn::Device* device,
                                    InferenceCache* cache) {
  nn::Device* dev = device != nullptr
                        ? device
                        : nn::GetDevice(nn::DeviceKind::kCpuVector);
  return MakeMap(std::move(child),
                 [ocr, dev, cache](PatchTuple tuple) -> Result<PatchTuple> {
                   for (Patch& p : tuple) {
                     if (!p.has_pixels()) continue;
                     DL_ASSIGN_OR_RETURN(
                         std::string text,
                         CachedOcrText(*ocr, p.pixels(),
                                       CacheFingerprint(p, cache), dev,
                                       cache));
                     if (!text.empty()) {
                       p.mutable_meta().Set(meta_keys::kText, text);
                     }
                   }
                   return tuple;
                 });
}

PatchIteratorPtr MakeResizeTransformer(PatchIteratorPtr child, int width,
                                       int height) {
  return MakeMap(std::move(child),
                 [width, height](PatchTuple tuple) -> Result<PatchTuple> {
                   for (Patch& p : tuple) {
                     if (p.has_pixels()) {
                       p.set_pixels(p.pixels().Resize(width, height));
                     }
                   }
                   return tuple;
                 });
}

}  // namespace deeplens
