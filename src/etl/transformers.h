// Transformers (paper §4.1): patch in, transformed patch out. The two the
// paper evaluates — color-histogram featurization (image matching) and a
// depth-prediction network — plus resize and OCR-annotation transformers.
#pragma once

#include "etl/generators.h"
#include "exec/operators.h"
#include "nn/models.h"

namespace deeplens {

class InferenceCache;

/// Color-histogram featurization.
struct ColorHistogramOptions {
  /// Histogram bins per channel → 3*bins feature dims.
  int bins = 8;
  /// Spatial grid: when > 1, appends per-cell channel means
  /// (3*grid*grid dims) — the high-dimensional variant of Figure 7.
  int grid = 1;

  int FeatureDim() const { return 3 * bins + (grid > 1 ? 3 * grid * grid : 0); }
};

/// Computes the feature vector directly (exposed for tests/benchmarks).
Tensor ColorHistogramFeature(const Image& patch,
                             const ColorHistogramOptions& options);

/// Sets `features` on every patch from its pixels (L1-normalized).
PatchIteratorPtr MakeColorHistogramTransformer(
    PatchIteratorPtr child, ColorHistogramOptions options);

/// Runs TinyDepth and stores the prediction under meta key "depth".
/// `frame_height` is the source-frame height used by the geometry cue.
/// With `cache`, predictions are memoized by patch fingerprint.
PatchIteratorPtr MakeDepthTransformer(PatchIteratorPtr child,
                                      const nn::TinyDepth* model,
                                      int frame_height,
                                      nn::Device* device = nullptr,
                                      InferenceCache* cache = nullptr);

/// Runs TinyOCR on the patch pixels and stores the string under "text"
/// (empty results set no key). With `cache`, recognitions are memoized
/// by patch fingerprint.
PatchIteratorPtr MakeOcrTransformer(PatchIteratorPtr child,
                                    const nn::TinyOcr* ocr,
                                    nn::Device* device = nullptr,
                                    InferenceCache* cache = nullptr);

/// Resamples patch pixels to a fixed resolution (most networks require
/// fixed inputs — §4.2).
PatchIteratorPtr MakeResizeTransformer(PatchIteratorPtr child, int width,
                                       int height);

}  // namespace deeplens
