#include "etl/materialize.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/bytes.h"
#include "storage/columnar/async_loader.h"
#include "storage/columnar/format.h"
#include "storage/file_io.h"

namespace deeplens {

namespace {

// An existing non-empty file dictates its own format: columnar files
// start with the columnar magic, anything else is a legacy RecordStore
// log. Missing/empty files use `requested`.
Result<MaterializedView::Format> SniffFormat(
    const std::string& path, MaterializedView::Format requested) {
  if (!FileExists(path)) return requested;
  DL_ASSIGN_OR_RETURN(uint64_t size, FileSize(path));
  if (size == 0) return requested;
  DL_ASSIGN_OR_RETURN(auto file, RandomAccessFile::Open(path));
  if (size < columnar::kHeaderSize) return MaterializedView::Format::kLegacy;
  std::vector<uint8_t> head;
  DL_RETURN_NOT_OK(file->ReadAt(0, columnar::kHeaderSize, &head));
  uint64_t magic = 0;
  std::memcpy(&magic, head.data(), sizeof(magic));
  return magic == columnar::kColumnarMagic
             ? MaterializedView::Format::kColumnar
             : MaterializedView::Format::kLegacy;
}

MaterializedView::Format FormatFromEnv() {
  return columnar::ViewFormatFromEnv() == "legacy"
             ? MaterializedView::Format::kLegacy
             : MaterializedView::Format::kColumnar;
}

}  // namespace

Result<std::unique_ptr<MaterializedView>> MaterializedView::Open(
    const std::string& path) {
  return Open(path, FormatFromEnv());
}

Result<std::unique_ptr<MaterializedView>> MaterializedView::Open(
    const std::string& path, Format format) {
  DL_ASSIGN_OR_RETURN(Format actual, SniffFormat(path, format));
  if (actual == Format::kLegacy) {
    DL_ASSIGN_OR_RETURN(auto store, RecordStore::Open(path));
    return std::unique_ptr<MaterializedView>(
        new MaterializedView(std::move(store)));
  }
  DL_ASSIGN_OR_RETURN(auto writer, columnar::ColumnarWriter::Open(path));
  return std::unique_ptr<MaterializedView>(
      new MaterializedView(path, std::move(writer)));
}

Status MaterializedView::Append(const Patch& patch) {
  if (store_ != nullptr) {
    ByteBuffer buf;
    patch.SerializeInto(&buf);
    return store_->Put(Slice(EncodeKeyU64(patch.id())), buf.AsSlice());
  }
  // Columnar: the file wants strictly ascending ids. The common ETL case
  // (fresh ids from the database counter) streams straight into chunks;
  // out-of-order or overwriting appends park in the pending buffer and
  // merge at the next sync.
  if (pending_.empty() &&
      (!writer_->has_rows() || patch.id() > writer_->last_id())) {
    return writer_->Append(patch);
  }
  pending_[patch.id()] = patch;
  return Status::OK();
}

Status MaterializedView::SyncColumnar() const {
  if (pending_.empty()) return writer_->Commit();
  if (!writer_->has_rows() ||
      pending_.begin()->first > writer_->last_id()) {
    // Everything pending lands after the last stored row: append in order.
    for (const auto& [id, patch] : pending_) {
      DL_RETURN_NOT_OK(writer_->Append(patch));
    }
    pending_.clear();
    return writer_->Commit();
  }
  // Ids collide or interleave with stored rows: merge-rewrite the whole
  // file through a temp + atomic rename (the RecordStore::Compact
  // pattern). Readers holding the old file keep their snapshot via the
  // open descriptor.
  DL_RETURN_NOT_OK(writer_->Commit());
  DL_ASSIGN_OR_RETURN(auto reader, columnar::ColumnarReader::Open(path_));
  const std::string tmp_path = path_ + ".rewrite";
  DL_RETURN_NOT_OK(RemoveFileIfExists(tmp_path));
  {
    DL_ASSIGN_OR_RETURN(auto rewriter,
                        columnar::ColumnarWriter::Open(tmp_path));
    auto it = pending_.begin();
    columnar::ChunkReadOptions full;
    for (size_t c = 0; c < reader->num_chunks(); ++c) {
      DL_ASSIGN_OR_RETURN(PatchCollection rows, reader->ReadChunk(c, full));
      for (Patch& p : rows) {
        while (it != pending_.end() && it->first < p.id()) {
          DL_RETURN_NOT_OK(rewriter->Append(it->second));
          ++it;
        }
        if (it != pending_.end() && it->first == p.id()) {
          DL_RETURN_NOT_OK(rewriter->Append(it->second));  // overwrite
          ++it;
        } else {
          DL_RETURN_NOT_OK(rewriter->Append(p));
        }
      }
    }
    for (; it != pending_.end(); ++it) {
      DL_RETURN_NOT_OK(rewriter->Append(it->second));
    }
    DL_RETURN_NOT_OK(rewriter->Commit());
  }
  writer_.reset();  // close our handle before swapping the files
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    const Status rename_status = Status::IOError(
        "rename '" + tmp_path + "' -> '" + path_ + "': " +
        std::strerror(errno));
    auto reopened = columnar::ColumnarWriter::Open(path_);
    if (reopened.ok()) writer_ = std::move(reopened).value();
    return rename_status;
  }
  DL_ASSIGN_OR_RETURN(writer_, columnar::ColumnarWriter::Open(path_));
  pending_.clear();
  return Status::OK();
}

Result<uint64_t> MaterializedView::Write(BatchIterator* it) {
  uint64_t written = 0;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto batch, it->Next());
    if (!batch.has_value()) break;
    for (const PatchTuple& tuple : batch->tuples) {
      for (const Patch& p : tuple) {
        DL_RETURN_NOT_OK(Append(p));
        ++written;
      }
    }
  }
  DL_RETURN_NOT_OK(Flush());
  return written;
}

Result<uint64_t> MaterializedView::Write(PatchIterator* it) {
  auto batched = TupleToBatch(it);
  return Write(batched.get());
}

Result<PatchCollection> MaterializedView::LoadAll() const {
  if (store_ != nullptr) {
    PatchCollection out;
    Status decode_status;
    DL_RETURN_NOT_OK(
        store_->ScanAll([&](const Slice& /*key*/, const Slice& value) {
          ByteReader reader(value);
          auto patch = Patch::Deserialize(&reader);
          if (!patch.ok()) {
            decode_status = patch.status();
            return false;
          }
          out.push_back(std::move(patch).value());
          return true;
        }));
    DL_RETURN_NOT_OK(decode_status);
    return out;
  }
  DL_RETURN_NOT_OK(SyncColumnar());
  DL_ASSIGN_OR_RETURN(auto reader, columnar::ColumnarReader::Open(path_));
  return reader->ReadAll();
}

Result<std::shared_ptr<columnar::ColumnarReader>>
MaterializedView::OpenReader() const {
  if (store_ != nullptr) {
    return Status::InvalidArgument(
        "OpenReader: view '" + store_->path() + "' uses the legacy format");
  }
  DL_RETURN_NOT_OK(SyncColumnar());
  return columnar::ColumnarReader::Open(path_);
}

namespace {

// Emits a load error on every Next(), matching the pre-batch generator.
class FailedScan : public BatchIterator {
 public:
  explicit FailedScan(Status status) : status_(std::move(status)) {}
  Result<std::optional<PatchBatch>> Next() override { return status_; }

 private:
  Status status_;
};

// Streams a columnar file batch-at-a-time through the decode-ahead
// loader. Owns its reader snapshot, so it is self-contained like the
// legacy eager scan: it survives the view and never sees later appends.
class ColumnarBatchScan : public BatchIterator {
 public:
  ColumnarBatchScan(std::shared_ptr<const columnar::ColumnarReader> reader,
                    size_t batch_size)
      : reader_(reader), batch_size_(batch_size == 0 ? 1 : batch_size) {
    std::vector<size_t> all_chunks(reader->num_chunks());
    for (size_t i = 0; i < all_chunks.size(); ++i) all_chunks[i] = i;
    loader_ = std::make_unique<columnar::AsyncChunkLoader>(
        std::move(reader), std::move(all_chunks),
        columnar::ChunkReadOptions{});
  }

  Result<std::optional<PatchBatch>> Next() override {
    PatchBatch batch;
    batch.reserve(batch_size_);
    while (batch.size() < batch_size_) {
      if (pos_ >= buffer_.size()) {
        DL_ASSIGN_OR_RETURN(auto rows, loader_->Next());
        if (!rows.has_value()) break;
        buffer_ = std::move(*rows);
        pos_ = 0;
        continue;  // chunk may be empty under a row filter
      }
      batch.tuples.push_back(PatchTuple{std::move(buffer_[pos_])});
      ++pos_;
    }
    if (batch.empty()) return std::optional<PatchBatch>{};
    return std::optional<PatchBatch>(std::move(batch));
  }

 private:
  std::shared_ptr<const columnar::ColumnarReader> reader_;
  std::unique_ptr<columnar::AsyncChunkLoader> loader_;
  PatchCollection buffer_;
  size_t pos_ = 0;
  size_t batch_size_;
};

}  // namespace

BatchIteratorPtr MaterializedView::ScanBatches(size_t batch_size) const {
  if (store_ != nullptr) {
    // Materialize eagerly: RecordStore scans are callback-driven, patch
    // decode cost dominates iteration overhead, and an eager snapshot
    // keeps the iterator self-contained (it neither references the view
    // nor sees writes made after Scan).
    auto loaded = LoadAll();
    if (!loaded.ok()) return std::make_unique<FailedScan>(loaded.status());
    return MakeBatchVectorSource(std::move(loaded).value(), batch_size);
  }
  auto reader = OpenReader();
  if (!reader.ok()) return std::make_unique<FailedScan>(reader.status());
  return std::make_unique<ColumnarBatchScan>(std::move(reader).value(),
                                             batch_size);
}

PatchIteratorPtr MaterializedView::Scan() const {
  return BatchToTuple(ScanBatches());
}

uint64_t MaterializedView::size() const {
  if (store_ != nullptr) return store_->Stats().num_records;
  if (SyncColumnar().ok()) return writer_->rows();
  // Sync failed (e.g. I/O error): report the upper bound we know of.
  return writer_->rows() + pending_.size();
}

uint64_t MaterializedView::storage_bytes() const {
  if (store_ != nullptr) return store_->Stats().log_bytes;
  (void)SyncColumnar();
  return writer_->file_bytes();
}

Status MaterializedView::Flush() {
  if (store_ != nullptr) return store_->Flush();
  return SyncColumnar();
}

}  // namespace deeplens
