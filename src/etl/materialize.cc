#include "etl/materialize.h"

#include "common/bytes.h"

namespace deeplens {

Result<std::unique_ptr<MaterializedView>> MaterializedView::Open(
    const std::string& path) {
  DL_ASSIGN_OR_RETURN(auto store, RecordStore::Open(path));
  return std::unique_ptr<MaterializedView>(
      new MaterializedView(std::move(store)));
}

Status MaterializedView::Append(const Patch& patch) {
  ByteBuffer buf;
  patch.SerializeInto(&buf);
  return store_->Put(Slice(EncodeKeyU64(patch.id())), buf.AsSlice());
}

Result<uint64_t> MaterializedView::Write(PatchIterator* it) {
  uint64_t written = 0;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto tuple, it->Next());
    if (!tuple.has_value()) break;
    for (const Patch& p : *tuple) {
      DL_RETURN_NOT_OK(Append(p));
      ++written;
    }
  }
  DL_RETURN_NOT_OK(store_->Flush());
  return written;
}

Result<PatchCollection> MaterializedView::LoadAll() const {
  PatchCollection out;
  Status decode_status;
  DL_RETURN_NOT_OK(
      store_->ScanAll([&](const Slice& /*key*/, const Slice& value) {
        ByteReader reader(value);
        auto patch = Patch::Deserialize(&reader);
        if (!patch.ok()) {
          decode_status = patch.status();
          return false;
        }
        out.push_back(std::move(patch).value());
        return true;
      }));
  DL_RETURN_NOT_OK(decode_status);
  return out;
}

PatchIteratorPtr MaterializedView::Scan() const {
  // Materialize eagerly: RecordStore scans are callback-driven, and patch
  // decode cost dominates iteration overhead anyway.
  auto loaded = std::make_shared<Result<PatchCollection>>(LoadAll());
  auto pos = std::make_shared<size_t>(0);
  return MakeGeneratorSource(
      [loaded, pos]() -> Result<std::optional<PatchTuple>> {
        if (!loaded->ok()) return loaded->status();
        const PatchCollection& patches = loaded->value();
        if (*pos >= patches.size()) return std::optional<PatchTuple>();
        PatchTuple t{patches[(*pos)++]};
        return std::optional<PatchTuple>(std::move(t));
      });
}

}  // namespace deeplens
