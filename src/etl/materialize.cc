#include "etl/materialize.h"

#include "common/bytes.h"

namespace deeplens {

Result<std::unique_ptr<MaterializedView>> MaterializedView::Open(
    const std::string& path) {
  DL_ASSIGN_OR_RETURN(auto store, RecordStore::Open(path));
  return std::unique_ptr<MaterializedView>(
      new MaterializedView(std::move(store)));
}

Status MaterializedView::Append(const Patch& patch) {
  ByteBuffer buf;
  patch.SerializeInto(&buf);
  return store_->Put(Slice(EncodeKeyU64(patch.id())), buf.AsSlice());
}

Result<uint64_t> MaterializedView::Write(BatchIterator* it) {
  uint64_t written = 0;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto batch, it->Next());
    if (!batch.has_value()) break;
    for (const PatchTuple& tuple : batch->tuples) {
      for (const Patch& p : tuple) {
        DL_RETURN_NOT_OK(Append(p));
        ++written;
      }
    }
  }
  DL_RETURN_NOT_OK(store_->Flush());
  return written;
}

Result<uint64_t> MaterializedView::Write(PatchIterator* it) {
  auto batched = TupleToBatch(it);
  return Write(batched.get());
}

Result<PatchCollection> MaterializedView::LoadAll() const {
  PatchCollection out;
  Status decode_status;
  DL_RETURN_NOT_OK(
      store_->ScanAll([&](const Slice& /*key*/, const Slice& value) {
        ByteReader reader(value);
        auto patch = Patch::Deserialize(&reader);
        if (!patch.ok()) {
          decode_status = patch.status();
          return false;
        }
        out.push_back(std::move(patch).value());
        return true;
      }));
  DL_RETURN_NOT_OK(decode_status);
  return out;
}

namespace {

// Emits a load error on every Next(), matching the pre-batch generator.
class FailedScan : public BatchIterator {
 public:
  explicit FailedScan(Status status) : status_(std::move(status)) {}
  Result<std::optional<PatchBatch>> Next() override { return status_; }

 private:
  Status status_;
};

}  // namespace

BatchIteratorPtr MaterializedView::ScanBatches(size_t batch_size) const {
  // Materialize eagerly: RecordStore scans are callback-driven, patch
  // decode cost dominates iteration overhead, and an eager snapshot keeps
  // the iterator self-contained (it neither references the view nor sees
  // writes made after Scan).
  auto loaded = LoadAll();
  if (!loaded.ok()) return std::make_unique<FailedScan>(loaded.status());
  return MakeBatchVectorSource(std::move(loaded).value(), batch_size);
}

PatchIteratorPtr MaterializedView::Scan() const {
  return BatchToTuple(ScanBatches());
}

}  // namespace deeplens
