// Patch generators (paper §4.1): turn raw frames into patch collections.
// Three instantiations mirror the paper's: object detection (TinySSD),
// OCR (TinySSD text regions + TinyOCR), and whole-image patches; a tiling
// generator is included for classical segmentation-style workloads.
// Generators batch frames through the device so GPU launches amortize.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/types.h"
#include "exec/operators.h"
#include "lineage/lineage.h"
#include "nn/models.h"
#include "storage/video_store.h"

namespace deeplens {

class InferenceCache;

/// Pull-based frame source: yields (frameno, frame) until nullopt.
using FrameIterator =
    std::function<Result<std::optional<std::pair<int, Image>>>()>;

/// Shared ETL context: device placement, provenance, id allocation.
struct EtlOptions {
  nn::Device* device = nullptr;  // null = vectorized CPU
  std::string dataset_name;
  /// When set, every generated patch's lineage is recorded.
  LineageStore* lineage = nullptr;
  /// Monotonic patch-id allocator (shared across a Database).
  std::atomic<uint64_t>* id_counter = nullptr;
  /// Frames per inference batch (amortizes GPU launch overhead).
  int batch_size = 8;
  /// When set, generator-side detector/OCR runs are memoized by frame
  /// fingerprint, so re-running ETL over unchanged frames is
  /// lookup-bound (Database::MakeEtlOptions wires the database's cache).
  InferenceCache* inference_cache = nullptr;
  /// Keep the cropped pixels on detection patches (needed by downstream
  /// transformers; drop to save memory when only metadata is queried).
  bool crop_pixels = true;
};

/// Builds a FrameIterator over a stored video (all frames).
FrameIterator FramesFromVideo(std::shared_ptr<VideoReader> reader);
/// Builds a FrameIterator over a materialized frame vector.
FrameIterator FramesFromVector(std::vector<Image> frames, int first_frameno = 0);

/// Whole-image generator: one patch per frame, full frame as pixels.
/// Meta: frameno, dataset.
PatchIteratorPtr MakeWholeImageGenerator(FrameIterator frames,
                                         EtlOptions options);

/// Object-detection generator: runs the detector on every frame and emits
/// one patch per detection. Meta: label, score, frameno, dataset, and the
/// box coordinates (x0, y0, x1, y1).
PatchIteratorPtr MakeObjectDetectorGenerator(
    FrameIterator frames, const nn::TinySsdDetector* detector,
    EtlOptions options);

/// OCR generator: detects text regions, recognizes their digit strings,
/// and emits one patch per legible region. Meta: text, frameno, dataset.
PatchIteratorPtr MakeOcrGenerator(FrameIterator frames,
                                  const nn::TinySsdDetector* detector,
                                  const nn::TinyOcr* ocr,
                                  EtlOptions options);

/// Tiling generator: fixed-grid tiles of each frame (classical
/// segmentation stand-in). Meta: frameno, dataset, tile_x, tile_y.
PatchIteratorPtr MakeTileGenerator(FrameIterator frames, int tile_width,
                                   int tile_height, EtlOptions options);

/// Declared output schemas for pipeline validation (paper §4.2).
PatchSchema WholeImageSchema();
PatchSchema DetectorSchema();
PatchSchema OcrSchema();

}  // namespace deeplens
