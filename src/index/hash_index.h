// Chained hash index over byte-string keys → RowId multimap. Supports
// equality lookups only; the structure of choice for label / string
// metadata predicates (paper §3.2).
#pragma once

#include <string>
#include <vector>

#include "common/slice.h"
#include "index/index.h"

namespace deeplens {

/// \brief Equality-only multimap index with FNV-1a hashing and chaining.
/// Grows by doubling when load factor exceeds 1.
class HashIndex {
 public:
  HashIndex();

  /// Inserts a (key, row) pair; duplicate keys accumulate.
  void Insert(const Slice& key, RowId row);

  /// Appends all rows whose key equals `key` to `out`, in insertion
  /// order.
  void Lookup(const Slice& key, std::vector<RowId>* out) const;

  /// True if at least one entry has this key.
  bool Contains(const Slice& key) const;

  /// Removes all entries with this key; returns how many were removed.
  size_t Erase(const Slice& key);

  uint64_t size() const { return num_entries_; }
  IndexStats Stats() const;

 private:
  struct Entry {
    std::string key;
    RowId row;
    int32_t next;  // chain link, -1 terminates
    bool dead = false;  // tombstone set by Erase
  };

  void MaybeGrow();
  size_t BucketFor(const Slice& key) const;

  std::vector<int32_t> buckets_;  // head entry index per bucket, -1 empty
  std::vector<Entry> entries_;
  uint64_t num_entries_ = 0;
};

}  // namespace deeplens
