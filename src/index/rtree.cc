#include "index/rtree.h"

#include <algorithm>
#include <limits>

namespace deeplens {

struct RTree::Entry {
  Rect rect;
  RowId row = 0;     // leaves
  Node* child = nullptr;  // internal nodes
};

struct RTree::Node {
  bool leaf = true;
  Node* parent = nullptr;
  std::vector<Entry> entries;
};

RTree::RTree(int max_entries)
    : root_(new Node()), max_entries_(max_entries < 4 ? 4 : max_entries) {}

RTree::~RTree() { FreeTree(root_); }

void RTree::FreeTree(Node* n) {
  if (n == nullptr) return;
  if (!n->leaf) {
    for (const Entry& e : n->entries) FreeTree(e.child);
  }
  delete n;
}

Rect RTree::NodeRect(const Node* n) {
  Rect r = n->entries.empty() ? Rect{} : n->entries[0].rect;
  for (size_t i = 1; i < n->entries.size(); ++i) {
    r = r.Union(n->entries[i].rect);
  }
  return r;
}

RTree::Node* RTree::ChooseLeaf(const Rect& rect) const {
  Node* n = root_;
  while (!n->leaf) {
    // Guttman: descend into the child needing least enlargement; ties
    // break on smaller area.
    float best_enlarge = std::numeric_limits<float>::max();
    float best_area = std::numeric_limits<float>::max();
    Node* best = nullptr;
    for (const Entry& e : n->entries) {
      const float enlarge = e.rect.Enlargement(rect);
      const float area = e.rect.Area();
      if (enlarge < best_enlarge ||
          (enlarge == best_enlarge && area < best_area)) {
        best_enlarge = enlarge;
        best_area = area;
        best = e.child;
      }
    }
    n = best;
  }
  return n;
}

void RTree::SplitNode(Node* node) {
  // Quadratic split: pick the pair of entries wasting the most area as
  // seeds, then greedily assign the rest by enlargement preference.
  std::vector<Entry> entries = std::move(node->entries);
  node->entries.clear();

  size_t seed_a = 0, seed_b = 1;
  float worst = -std::numeric_limits<float>::max();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const float waste = entries[i].rect.Union(entries[j].rect).Area() -
                          entries[i].rect.Area() - entries[j].rect.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto* sibling = new Node();
  sibling->leaf = node->leaf;

  Rect rect_a = entries[seed_a].rect;
  Rect rect_b = entries[seed_b].rect;
  std::vector<Entry> group_a{entries[seed_a]};
  std::vector<Entry> group_b{entries[seed_b]};

  const size_t min_fill = static_cast<size_t>(max_entries_) / 2;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i == seed_a || i == seed_b) continue;
    const size_t remaining = entries.size() - group_a.size() -
                             group_b.size() - 1 /* this one */;
    // Force assignment if one group must take everything left to reach
    // minimum fill.
    if (group_a.size() + remaining + 1 <= min_fill) {
      rect_a = rect_a.Union(entries[i].rect);
      group_a.push_back(entries[i]);
      continue;
    }
    if (group_b.size() + remaining + 1 <= min_fill) {
      rect_b = rect_b.Union(entries[i].rect);
      group_b.push_back(entries[i]);
      continue;
    }
    const float da = rect_a.Enlargement(entries[i].rect);
    const float db = rect_b.Enlargement(entries[i].rect);
    if (da < db || (da == db && rect_a.Area() <= rect_b.Area())) {
      rect_a = rect_a.Union(entries[i].rect);
      group_a.push_back(entries[i]);
    } else {
      rect_b = rect_b.Union(entries[i].rect);
      group_b.push_back(entries[i]);
    }
  }

  node->entries = std::move(group_a);
  sibling->entries = std::move(group_b);
  if (!node->leaf) {
    for (Entry& e : node->entries) e.child->parent = node;
    for (Entry& e : sibling->entries) e.child->parent = sibling;
  }

  if (node->parent == nullptr) {
    // Grow the tree: new root with the two halves as children.
    auto* new_root = new Node();
    new_root->leaf = false;
    new_root->entries.push_back(Entry{NodeRect(node), 0, node});
    new_root->entries.push_back(Entry{NodeRect(sibling), 0, sibling});
    node->parent = new_root;
    sibling->parent = new_root;
    root_ = new_root;
    return;
  }

  sibling->parent = node->parent;
  node->parent->entries.push_back(Entry{NodeRect(sibling), 0, sibling});
  if (node->parent->entries.size() > static_cast<size_t>(max_entries_)) {
    SplitNode(node->parent);
  }
}

void RTree::AdjustUpward(Node* node) {
  Node* n = node;
  while (n->parent != nullptr) {
    Node* p = n->parent;
    for (Entry& e : p->entries) {
      if (e.child == n) {
        e.rect = NodeRect(n);
        break;
      }
    }
    n = p;
  }
}

void RTree::Insert(const Rect& rect, RowId row) {
  Node* leaf = ChooseLeaf(rect);
  leaf->entries.push_back(Entry{rect, row, nullptr});
  AdjustUpward(leaf);
  if (leaf->entries.size() > static_cast<size_t>(max_entries_)) {
    SplitNode(leaf);
    // Parent rectangles may be stale after splits; recompute on the way up
    // from the (possibly new) leaf location.
    AdjustUpward(leaf);
  }
  ++num_entries_;
}

void RTree::SearchIntersects(const Rect& query,
                             std::vector<RowId>* out) const {
  std::vector<const Node*> stack{root_};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    for (const Entry& e : n->entries) {
      if (!e.rect.Intersects(query)) continue;
      if (n->leaf) {
        out->push_back(e.row);
      } else {
        stack.push_back(e.child);
      }
    }
  }
}

void RTree::SearchContained(const Rect& query,
                            std::vector<RowId>* out) const {
  std::vector<const Node*> stack{root_};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    for (const Entry& e : n->entries) {
      if (n->leaf) {
        if (query.Contains(e.rect)) out->push_back(e.row);
      } else if (e.rect.Intersects(query)) {
        stack.push_back(e.child);
      }
    }
  }
}

void RTree::SearchPoint(float x, float y, std::vector<RowId>* out) const {
  std::vector<const Node*> stack{root_};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    for (const Entry& e : n->entries) {
      if (!e.rect.ContainsPoint(x, y)) continue;
      if (n->leaf) {
        out->push_back(e.row);
      } else {
        stack.push_back(e.child);
      }
    }
  }
}

uint64_t RTree::height() const {
  uint64_t h = 1;
  const Node* n = root_;
  while (!n->leaf && !n->entries.empty()) {
    ++h;
    n = n->entries[0].child;
  }
  return h;
}

IndexStats RTree::Stats() const {
  IndexStats s;
  s.num_entries = num_entries_;
  s.depth = height();
  uint64_t bytes = 0;
  std::vector<const Node*> stack{root_};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    bytes += sizeof(Node) + n->entries.size() * sizeof(Entry);
    if (!n->leaf) {
      for (const Entry& e : n->entries) stack.push_back(e.child);
    }
  }
  s.memory_bytes = bytes;
  return s;
}

}  // namespace deeplens
