#include "index/lsh.h"

#include <cmath>
#include <unordered_set>

#include "tensor/ops.h"

namespace deeplens {

LshIndex::LshIndex(LshOptions options) : options_(options) {
  if (options_.num_tables < 1) options_.num_tables = 1;
  if (options_.bits_per_table < 1) options_.bits_per_table = 1;
  if (options_.bits_per_table > 63) options_.bits_per_table = 63;
  if (options_.bucket_width <= 0.0f) options_.bucket_width = 1.0f;
}

Status LshIndex::Build(std::vector<float> points, size_t dim,
                       std::vector<RowId> rows) {
  if (dim == 0) return Status::InvalidArgument("LshIndex dim must be > 0");
  if (points.size() % dim != 0) {
    return Status::InvalidArgument(
        "LshIndex points buffer is not a multiple of dim");
  }
  const size_t n = points.size() / dim;
  if (rows.empty()) {
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) rows[i] = static_cast<RowId>(i);
  }
  if (rows.size() != n) {
    return Status::InvalidArgument("LshIndex rows size mismatch");
  }
  dim_ = dim;
  points_ = std::move(points);
  rows_ = std::move(rows);

  Rng rng(options_.seed);
  projections_.assign(static_cast<size_t>(options_.num_tables), {});
  for (auto& table_proj : projections_) {
    table_proj.resize(static_cast<size_t>(options_.bits_per_table) *
                      (dim_ + 1));
    for (float& w : table_proj) {
      w = static_cast<float>(rng.NextGaussian());
    }
  }

  tables_.assign(static_cast<size_t>(options_.num_tables), {});
  for (int t = 0; t < options_.num_tables; ++t) {
    auto& table = tables_[static_cast<size_t>(t)];
    for (size_t i = 0; i < n; ++i) {
      const uint64_t sig = SignatureFor(t, points_.data() + i * dim_);
      table[sig].push_back(static_cast<uint32_t>(i));
    }
  }
  return Status::OK();
}

uint64_t LshIndex::SignatureFor(int table, const float* point) const {
  const auto& proj = projections_[static_cast<size_t>(table)];
  uint64_t sig = 0;
  for (int b = 0; b < options_.bits_per_table; ++b) {
    const float* row = proj.data() + static_cast<size_t>(b) * (dim_ + 1);
    const float v =
        ops::DotVector(row, point, dim_) + row[dim_] * options_.bucket_width;
    // Sign hash: robust for threshold-style similarity predicates.
    sig = (sig << 1) | (v >= 0.0f ? 1u : 0u);
  }
  return sig;
}

void LshIndex::RangeSearch(const float* query, float radius,
                           std::vector<RowId>* out) const {
  if (!built()) return;
  const float r2 = radius * radius;
  std::unordered_set<uint32_t> seen;
  for (int t = 0; t < options_.num_tables; ++t) {
    const uint64_t sig = SignatureFor(t, query);
    const auto& table = tables_[static_cast<size_t>(t)];
    auto it = table.find(sig);
    if (it == table.end()) continue;
    for (uint32_t i : it->second) {
      if (!seen.insert(i).second) continue;
      if (ops::L2SquaredVector(query, points_.data() + static_cast<size_t>(i) * dim_,
                               dim_) <= r2) {
        out->push_back(rows_[i]);
      }
    }
  }
}

IndexStats LshIndex::Stats() const {
  IndexStats s;
  s.num_entries = rows_.size();
  s.depth = static_cast<uint64_t>(options_.num_tables);
  uint64_t bytes = points_.size() * sizeof(float) +
                   rows_.size() * sizeof(RowId);
  for (const auto& proj : projections_) bytes += proj.size() * sizeof(float);
  for (const auto& table : tables_) {
    for (const auto& kv : table) {
      bytes += sizeof(uint64_t) + kv.second.size() * sizeof(uint32_t);
    }
  }
  s.memory_bytes = bytes;
  return s;
}

}  // namespace deeplens
