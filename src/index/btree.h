// In-memory B+Tree over byte-string keys → RowId multimap, with linked
// leaves for range scans. This is the workhorse single-dimensional index:
// frame-number predicates, time windows, and one-sided bounding-box
// queries all compile to B+Tree range scans (paper §3.2).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "index/index.h"

namespace deeplens {

/// \brief B+Tree multimap. Keys are compared lexicographically (use the
/// EncodeKey* helpers for numeric attributes).
class BPlusTree {
 public:
  /// `fanout` = max keys per node (>= 4).
  explicit BPlusTree(int fanout = 64);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  void Insert(const Slice& key, RowId row);

  /// Appends rows with key exactly equal to `key`.
  void Lookup(const Slice& key, std::vector<RowId>* out) const;

  /// Appends rows with lo <= key <= hi (inclusive both ends), in key order.
  void RangeScan(const Slice& lo, const Slice& hi,
                 std::vector<RowId>* out) const;

  /// Appends rows with key >= lo (open-ended upper bound).
  void ScanFrom(const Slice& lo, std::vector<RowId>* out) const;

  /// Visits every (key, row) in order; return false from the visitor to
  /// stop early.
  void ForEach(
      const std::function<bool(const Slice&, RowId)>& visitor) const;

  uint64_t size() const { return num_entries_; }
  uint64_t height() const;
  IndexStats Stats() const;

 private:
  struct Node;
  struct LeafPos {
    const Node* leaf;
    size_t slot;
  };

  Node* root_ = nullptr;
  Node* first_leaf_ = nullptr;
  int fanout_;
  uint64_t num_entries_ = 0;

  LeafPos LowerBound(const Slice& key) const;
  void FreeTree(Node* n);
  /// Recursive insert; returns true if `node` split, filling `sep` and
  /// `right` with the promoted separator and new right sibling.
  bool InsertRec(Node* node, const Slice& key, RowId row, std::string* sep,
                 Node** right);
};

}  // namespace deeplens
