// Ball-Tree over d-dimensional float vectors, built in bulk. Answers
// Euclidean threshold ("similarity") queries and k-nearest-neighbour
// queries — the structure the paper found most effective for
// high-dimensional image-feature matching (§3.2, Figures 4/5/7).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "index/index.h"

namespace deeplens {

/// \brief Bulk-built Ball-Tree. Points are stored in a flat row-major
/// buffer; internal nodes hold a centroid and covering radius used to
/// prune subtrees whose ball cannot contain a match.
class BallTree {
 public:
  /// `leaf_size` = max points per leaf node.
  explicit BallTree(int leaf_size = 16);

  /// Builds over `points` (n × dim, row-major) with external ids `rows`
  /// (parallel to points; pass empty to use 0..n-1).
  Status Build(std::vector<float> points, size_t dim,
               std::vector<RowId> rows);

  bool built() const { return dim_ > 0; }
  size_t dim() const { return dim_; }
  uint64_t size() const { return rows_.size(); }

  /// Rows within Euclidean distance <= `radius` of `query` (dim_ floats).
  void RangeSearch(const float* query, float radius,
                   std::vector<RowId>* out) const;

  /// The k nearest rows to `query`, closest first. Returns pairs of
  /// (distance, row).
  void KnnSearch(const float* query, size_t k,
                 std::vector<std::pair<float, RowId>>* out) const;

  /// Number of point-distance evaluations performed since construction;
  /// exposed so tests can verify pruning actually happens. Searches are
  /// const and safe to issue concurrently (the morsel-parallel join probe
  /// does); each search folds its evaluation count in atomically when it
  /// finishes.
  uint64_t distance_evals() const {
    return distance_evals_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    distance_evals_.store(0, std::memory_order_relaxed);
  }

  IndexStats Stats() const;
  uint64_t height() const;

 private:
  struct Node {
    // Points in [begin, end) of the permuted order.
    uint32_t begin = 0;
    uint32_t end = 0;
    int32_t left = -1;   // child node indexes, -1 for leaves
    int32_t right = -1;
    float radius = 0.0f;
    uint32_t centroid = 0;  // offset into centroids_ (units of dim_)
  };

  // The tree is laid out pre-order with every node's slot computed up
  // front: a range of `count` points always produces NodeCountFor(count)
  // nodes (the median split is a pure function of count), so a node at
  // index i has its left child at i+1 and its right child at
  // i+1+NodeCountFor(left_count), and its centroid lives at offset i.
  // That makes subtree builds independent writers into disjoint
  // preallocated ranges — the parallel build dispatches subtrees to pool
  // workers and still produces a byte-identical layout to the serial one.
  static uint32_t NodeCountFor(uint32_t count, uint32_t leaf_size);
  // Fills node geometry (range, centroid, covering radius) for the node
  // at `node_idx` over perm_[begin, end).
  void FillNodeGeometry(int32_t node_idx, uint32_t begin, uint32_t end);
  // Splits an internal node: picks the far-pair axis, permutes the range
  // around the median projection, links the children's preallocated
  // indexes, and returns the split point.
  uint32_t SplitInternal(int32_t node_idx, uint32_t begin, uint32_t end);
  // Serial recursive build of the subtree rooted at node_idx.
  void BuildAt(int32_t node_idx, uint32_t begin, uint32_t end, int depth,
               uint64_t* max_depth);
  const float* PointAt(uint32_t perm_idx) const {
    return points_.data() + static_cast<size_t>(perm_[perm_idx]) * dim_;
  }

  int leaf_size_;
  size_t dim_ = 0;
  std::vector<float> points_;     // original order, n × dim
  std::vector<RowId> rows_;       // original order
  std::vector<uint32_t> perm_;    // permutation defining node ranges
  std::vector<Node> nodes_;       // nodes_[0] is the root (if any)
  std::vector<float> centroids_;  // one dim_-vector per node
  uint64_t max_depth_ = 0;
  mutable std::atomic<uint64_t> distance_evals_{0};
};

}  // namespace deeplens
