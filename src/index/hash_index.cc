#include "index/hash_index.h"

#include <algorithm>

#include "common/checksum.h"

namespace deeplens {

namespace {
constexpr size_t kInitialBuckets = 64;
}

HashIndex::HashIndex() : buckets_(kInitialBuckets, -1) {}

size_t HashIndex::BucketFor(const Slice& key) const {
  return static_cast<size_t>(Fnv1a64(key)) & (buckets_.size() - 1);
}

void HashIndex::Insert(const Slice& key, RowId row) {
  MaybeGrow();
  const size_t b = BucketFor(key);
  Entry e;
  e.key = key.ToString();
  e.row = row;
  e.next = buckets_[b];
  buckets_[b] = static_cast<int32_t>(entries_.size());
  entries_.push_back(std::move(e));
  ++num_entries_;
}

void HashIndex::Lookup(const Slice& key, std::vector<RowId>* out) const {
  const size_t first = out->size();
  int32_t cur = buckets_[BucketFor(key)];
  while (cur >= 0) {
    const Entry& e = entries_[static_cast<size_t>(cur)];
    if (Slice(e.key) == key) out->push_back(e.row);
    cur = e.next;
  }
  // Chains are LIFO; reverse so callers see insertion order (scan and
  // join outputs then follow input order, matching the full-scan paths).
  std::reverse(out->begin() + static_cast<ptrdiff_t>(first), out->end());
}

bool HashIndex::Contains(const Slice& key) const {
  int32_t cur = buckets_[BucketFor(key)];
  while (cur >= 0) {
    const Entry& e = entries_[static_cast<size_t>(cur)];
    if (Slice(e.key) == key) return true;
    cur = e.next;
  }
  return false;
}

size_t HashIndex::Erase(const Slice& key) {
  const size_t b = BucketFor(key);
  size_t removed = 0;
  int32_t* link = &buckets_[b];
  while (*link >= 0) {
    Entry& e = entries_[static_cast<size_t>(*link)];
    if (Slice(e.key) == key) {
      // Unlink and tombstone; the slot is reclaimed at the next rehash.
      e.dead = true;
      *link = e.next;
      ++removed;
    } else {
      link = &e.next;
    }
  }
  num_entries_ -= removed;
  return removed;
}

void HashIndex::MaybeGrow() {
  if (entries_.size() < buckets_.size()) return;
  std::vector<int32_t> grown(buckets_.size() * 2, -1);
  buckets_.swap(grown);
  // Relink every live entry under the new bucket count.
  for (auto& b : buckets_) b = -1;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].dead) continue;
    const size_t b = BucketFor(Slice(entries_[i].key));
    entries_[i].next = buckets_[b];
    buckets_[b] = static_cast<int32_t>(i);
  }
}

IndexStats HashIndex::Stats() const {
  IndexStats s;
  s.num_entries = num_entries_;
  s.depth = buckets_.size();
  uint64_t bytes = buckets_.size() * sizeof(int32_t);
  for (const Entry& e : entries_) {
    bytes += sizeof(Entry) + e.key.size();
  }
  s.memory_bytes = bytes;
  return s;
}

}  // namespace deeplens
