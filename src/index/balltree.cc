#include "index/balltree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/thread_pool.h"
#include "tensor/ops.h"

namespace deeplens {

namespace {

// Below this many points the split work per level is too small to
// amortize dispatching subtree tasks to pool workers.
constexpr uint32_t kParallelBuildMinPoints = 2048;

}  // namespace

BallTree::BallTree(int leaf_size)
    : leaf_size_(leaf_size < 2 ? 2 : leaf_size) {}

Status BallTree::Build(std::vector<float> points, size_t dim,
                       std::vector<RowId> rows) {
  if (dim == 0) return Status::InvalidArgument("BallTree dim must be > 0");
  if (points.size() % dim != 0) {
    return Status::InvalidArgument(
        "BallTree points buffer is not a multiple of dim");
  }
  const size_t n = points.size() / dim;
  if (rows.empty()) {
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) rows[i] = static_cast<RowId>(i);
  }
  if (rows.size() != n) {
    return Status::InvalidArgument("BallTree rows size mismatch");
  }
  dim_ = dim;
  points_ = std::move(points);
  rows_ = std::move(rows);
  perm_.resize(n);
  for (size_t i = 0; i < n; ++i) perm_[i] = static_cast<uint32_t>(i);
  max_depth_ = 0;
  distance_evals_ = 0;
  nodes_.clear();
  centroids_.clear();
  if (n == 0) return Status::OK();

  // Every node's slot is known up front (pre-order layout, see header),
  // so both the serial and parallel builds write into preallocated
  // storage and produce identical bytes.
  const uint32_t total = NodeCountFor(static_cast<uint32_t>(n),
                                      static_cast<uint32_t>(leaf_size_));
  nodes_.assign(total, Node{});
  centroids_.assign(static_cast<size_t>(total) * dim_, 0.0f);

  ThreadPool& pool = ThreadPool::Global();
  const bool parallel = n >= kParallelBuildMinPoints &&
                        pool.num_threads() > 1 && !ThreadPool::InWorker();
  if (!parallel) {
    uint64_t depth = 0;
    BuildAt(0, 0, static_cast<uint32_t>(n), 1, &depth);
    max_depth_ = depth;
    return Status::OK();
  }

  // Parallel build: split the top levels serially (each split must finish
  // permuting its range before its children can start), collecting
  // subtree tasks until there are enough to keep the pool busy, then
  // build the subtrees concurrently — each writes a disjoint node /
  // centroid / perm range.
  struct SubtreeTask {
    int32_t node = 0;
    uint32_t begin = 0;
    uint32_t end = 0;
    int depth = 1;
  };
  std::vector<SubtreeTask> tasks{{0, 0, static_cast<uint32_t>(n), 1}};
  uint64_t descend_depth = 1;
  const size_t target_tasks = pool.num_threads() * 4;
  bool split_any = true;
  while (tasks.size() < target_tasks && split_any) {
    split_any = false;
    std::vector<SubtreeTask> next;
    next.reserve(tasks.size() * 2);
    for (const SubtreeTask& t : tasks) {
      if (t.end - t.begin <= static_cast<uint32_t>(leaf_size_)) {
        next.push_back(t);
        continue;
      }
      descend_depth = std::max<uint64_t>(descend_depth,
                                         static_cast<uint64_t>(t.depth));
      FillNodeGeometry(t.node, t.begin, t.end);
      const uint32_t split = SplitInternal(t.node, t.begin, t.end);
      const Node& node = nodes_[static_cast<size_t>(t.node)];
      next.push_back(SubtreeTask{node.left, t.begin, split, t.depth + 1});
      next.push_back(SubtreeTask{node.right, split, t.end, t.depth + 1});
      split_any = true;
    }
    tasks.swap(next);
  }
  std::vector<uint64_t> depths(tasks.size(), 0);
  pool.ParallelFor(
      0, tasks.size(),
      [&](size_t i) {
        BuildAt(tasks[i].node, tasks[i].begin, tasks[i].end, tasks[i].depth,
                &depths[i]);
      },
      1);
  max_depth_ = descend_depth;
  for (uint64_t d : depths) max_depth_ = std::max(max_depth_, d);
  return Status::OK();
}

uint32_t BallTree::NodeCountFor(uint32_t count, uint32_t leaf_size) {
  if (count <= leaf_size) return 1;
  // The median split is a pure function of count (the degenerate guards
  // in SplitInternal can't fire for count >= 3, and internal nodes always
  // have count > leaf_size >= 2).
  const uint32_t mid = count / 2;
  return 1 + NodeCountFor(mid, leaf_size) +
         NodeCountFor(count - mid, leaf_size);
}

void BallTree::FillNodeGeometry(int32_t node_idx, uint32_t begin,
                                uint32_t end) {
  // Centroid = mean of the points in range; stored at offset node_idx
  // (one centroid per node, pre-order).
  float* c = centroids_.data() + static_cast<size_t>(node_idx) * dim_;
  for (uint32_t i = begin; i < end; ++i) {
    const float* p = PointAt(i);
    for (size_t d = 0; d < dim_; ++d) c[d] += p[d];
  }
  const float inv = 1.0f / static_cast<float>(end - begin);
  for (size_t d = 0; d < dim_; ++d) c[d] *= inv;

  // Covering radius.
  float r2max = 0.0f;
  for (uint32_t i = begin; i < end; ++i) {
    r2max = std::max(r2max, ops::L2SquaredVector(PointAt(i), c, dim_));
  }

  Node& node = nodes_[static_cast<size_t>(node_idx)];
  node.begin = begin;
  node.end = end;
  node.radius = std::sqrt(r2max);
  node.centroid = static_cast<uint32_t>(node_idx);
}

uint32_t BallTree::SplitInternal(int32_t node_idx, uint32_t begin,
                                 uint32_t end) {
  const float* c = centroids_.data() + static_cast<size_t>(node_idx) * dim_;

  // Split direction: the vector between the two approximately-farthest
  // points (standard ball-tree construction). Pick p1 far from centroid,
  // then p2 far from p1; project everything on (p2 - p1) and split at the
  // median projection.
  uint32_t p1 = begin;
  {
    float best = -1.0f;
    for (uint32_t i = begin; i < end; ++i) {
      const float d2 = ops::L2SquaredVector(PointAt(i), c, dim_);
      if (d2 > best) {
        best = d2;
        p1 = i;
      }
    }
  }
  uint32_t p2 = begin;
  {
    const float* a = PointAt(p1);
    float best = -1.0f;
    for (uint32_t i = begin; i < end; ++i) {
      const float d2 = ops::L2SquaredVector(PointAt(i), a, dim_);
      if (d2 > best) {
        best = d2;
        p2 = i;
      }
    }
  }

  // Projection values. Copy the axis first: PointAt references move as we
  // permute, so materialize it.
  std::vector<float> axis(dim_);
  {
    const float* a = PointAt(p1);
    const float* b = PointAt(p2);
    for (size_t d = 0; d < dim_; ++d) axis[d] = b[d] - a[d];
  }
  const uint32_t count = end - begin;
  std::vector<float> proj(count);
  for (uint32_t i = 0; i < count; ++i) {
    proj[i] = ops::DotVector(PointAt(begin + i), axis.data(), dim_);
  }
  // Median split via nth_element over an index permutation.
  std::vector<uint32_t> order(count);
  for (uint32_t i = 0; i < count; ++i) order[i] = i;
  const uint32_t mid = count / 2;
  std::nth_element(order.begin(), order.begin() + mid, order.end(),
                   [&proj](uint32_t a, uint32_t b) {
                     return proj[a] < proj[b];
                   });
  // Apply: rearrange perm_[begin..end) so the low-projection half is first.
  std::vector<uint32_t> rearranged(count);
  for (uint32_t i = 0; i < count; ++i) {
    rearranged[i] = perm_[begin + order[i]];
  }
  std::copy(rearranged.begin(), rearranged.end(), perm_.begin() + begin);

  // Degenerate split guard (all projections equal): force a halfway cut.
  // Dead for count >= 3 (mid is in [1, count-1]), which NodeCountFor's
  // pure-function-of-count invariant relies on.
  uint32_t split = begin + mid;
  if (split == begin) split = begin + 1;
  if (split == end) split = end - 1;

  Node& node = nodes_[static_cast<size_t>(node_idx)];
  node.left = node_idx + 1;
  node.right = node_idx + 1 +
               static_cast<int32_t>(NodeCountFor(
                   split - begin, static_cast<uint32_t>(leaf_size_)));
  return split;
}

void BallTree::BuildAt(int32_t node_idx, uint32_t begin, uint32_t end,
                       int depth, uint64_t* max_depth) {
  *max_depth = std::max<uint64_t>(*max_depth, static_cast<uint64_t>(depth));
  FillNodeGeometry(node_idx, begin, end);
  if (end - begin <= static_cast<uint32_t>(leaf_size_)) return;  // leaf
  const uint32_t split = SplitInternal(node_idx, begin, end);
  const Node& node = nodes_[static_cast<size_t>(node_idx)];
  BuildAt(node.left, begin, split, depth + 1, max_depth);
  BuildAt(node.right, split, end, depth + 1, max_depth);
}

void BallTree::RangeSearch(const float* query, float radius,
                           std::vector<RowId>* out) const {
  if (nodes_.empty()) return;
  const float r2 = radius * radius;
  // Count locally and fold in once: concurrent searches then contend on
  // the shared counter once per query instead of once per distance.
  uint64_t evals = 0;
  std::vector<int32_t> stack{0};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    const float* c = centroids_.data() + static_cast<size_t>(node.centroid) * dim_;
    const float dc = std::sqrt(ops::L2SquaredVector(query, c, dim_));
    ++evals;
    // Prune: the closest any member can be is dc - radius_of_ball.
    if (dc - node.radius > radius) continue;
    if (node.left < 0) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        ++evals;
        if (ops::L2SquaredVector(query, PointAt(i), dim_) <= r2) {
          out->push_back(rows_[perm_[i]]);
        }
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  distance_evals_.fetch_add(evals, std::memory_order_relaxed);
}

void BallTree::KnnSearch(const float* query, size_t k,
                         std::vector<std::pair<float, RowId>>* out) const {
  out->clear();
  if (nodes_.empty() || k == 0) return;
  // Max-heap of the best k candidates (top = worst of the best).
  std::priority_queue<std::pair<float, RowId>> best;
  uint64_t evals = 0;
  std::vector<int32_t> stack{0};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    const float* c = centroids_.data() + static_cast<size_t>(node.centroid) * dim_;
    const float dc = std::sqrt(ops::L2SquaredVector(query, c, dim_));
    ++evals;
    if (best.size() == k && dc - node.radius > best.top().first) continue;
    if (node.left < 0) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        ++evals;
        const float d =
            std::sqrt(ops::L2SquaredVector(query, PointAt(i), dim_));
        if (best.size() < k) {
          best.emplace(d, rows_[perm_[i]]);
        } else if (d < best.top().first) {
          best.pop();
          best.emplace(d, rows_[perm_[i]]);
        }
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  distance_evals_.fetch_add(evals, std::memory_order_relaxed);
  out->resize(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    (*out)[i] = best.top();
    best.pop();
  }
}

IndexStats BallTree::Stats() const {
  IndexStats s;
  s.num_entries = rows_.size();
  s.depth = max_depth_;
  s.memory_bytes = points_.size() * sizeof(float) +
                   rows_.size() * sizeof(RowId) +
                   perm_.size() * sizeof(uint32_t) +
                   nodes_.size() * sizeof(Node) +
                   centroids_.size() * sizeof(float);
  return s;
}

uint64_t BallTree::height() const { return max_depth_; }

}  // namespace deeplens
