// R-Tree over 2-d bounding boxes (quadratic-split Guttman variant).
// Used for containment / intersection queries over patch bounding boxes
// (paper §3.2). Deliberately 2-d: the paper observes that R-Trees are
// tuned for geospatial data and do not extend well to high dimensions —
// that role belongs to the Ball-Tree.
#pragma once

#include <cstdint>
#include <vector>

#include "index/index.h"

namespace deeplens {

/// \brief In-memory R-Tree mapping Rect → RowId.
class RTree {
 public:
  /// `max_entries` = node capacity M (>= 4); min capacity is M/2.
  explicit RTree(int max_entries = 16);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  void Insert(const Rect& rect, RowId row);

  /// Rows whose rect intersects `query`.
  void SearchIntersects(const Rect& query, std::vector<RowId>* out) const;

  /// Rows whose rect is fully contained in `query`.
  void SearchContained(const Rect& query, std::vector<RowId>* out) const;

  /// Rows whose rect contains the point (x, y).
  void SearchPoint(float x, float y, std::vector<RowId>* out) const;

  uint64_t size() const { return num_entries_; }
  uint64_t height() const;
  IndexStats Stats() const;

 private:
  struct Node;
  struct Entry;

  Node* ChooseLeaf(const Rect& rect) const;
  void SplitNode(Node* node);
  void AdjustUpward(Node* node);
  void FreeTree(Node* n);
  static Rect NodeRect(const Node* n);

  Node* root_;
  int max_entries_;
  uint64_t num_entries_ = 0;
};

}  // namespace deeplens
