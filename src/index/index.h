// Common definitions for DeepLens index structures.
//
// DeepLens supports single-dimensional indexes (Hash, B+Tree, SortedFile)
// over order-preserving key encodings, and multi-dimensional indexes
// (R-Tree over bounding boxes, Ball-Tree over feature vectors, LSH as an
// approximate alternative) — paper §3.2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace deeplens {

/// Identifier of an indexed tuple (a patch id or record id).
using RowId = uint64_t;

/// Kinds of indexes the planner can choose between.
enum class IndexKind : int {
  kHash = 0,
  kBPlusTree = 1,
  kSortedFile = 2,
  kRTree = 3,
  kBallTree = 4,
  kLsh = 5,
};

const char* IndexKindName(IndexKind kind);

/// \brief Build/occupancy statistics used by Figure 6 and the cost model.
struct IndexStats {
  uint64_t num_entries = 0;
  uint64_t memory_bytes = 0;
  double build_millis = 0.0;
  /// Structure-specific depth (tree height, #buckets, ...).
  uint64_t depth = 0;
};

/// \brief Axis-aligned 2-d rectangle (bounding box), the R-Tree key type.
struct Rect {
  float x0 = 0, y0 = 0, x1 = 0, y1 = 0;

  bool Intersects(const Rect& o) const {
    return x0 <= o.x1 && o.x0 <= x1 && y0 <= o.y1 && o.y0 <= y1;
  }
  bool Contains(const Rect& o) const {
    return x0 <= o.x0 && o.x1 <= x1 && y0 <= o.y0 && o.y1 <= y1;
  }
  bool ContainsPoint(float x, float y) const {
    return x0 <= x && x <= x1 && y0 <= y && y <= y1;
  }
  float Area() const { return (x1 - x0) * (y1 - y0); }
  /// Smallest rectangle covering both.
  Rect Union(const Rect& o) const {
    return Rect{x0 < o.x0 ? x0 : o.x0, y0 < o.y0 ? y0 : o.y0,
                x1 > o.x1 ? x1 : o.x1, y1 > o.y1 ? y1 : o.y1};
  }
  /// Area increase needed to cover `o` (R-Tree insertion heuristic).
  float Enlargement(const Rect& o) const {
    return Union(o).Area() - Area();
  }
};

}  // namespace deeplens
