// Locality-sensitive hashing index for approximate Euclidean similarity.
// Implements the paper's future-work suggestion (§7.3): when exact
// multidimensional indexing is too expensive, random-projection LSH can
// trade a little recall for much cheaper construction and probes.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "index/index.h"

namespace deeplens {

/// Tuning parameters for the LSH index.
struct LshOptions {
  /// Number of independent hash tables; more tables → higher recall.
  int num_tables = 8;
  /// Hyperplanes per table (signature bits); more bits → fewer collisions.
  int bits_per_table = 12;
  /// Quantization width for the projection (p-stable E2LSH style).
  float bucket_width = 1.0f;
  uint64_t seed = 0xD11Cull;
};

/// \brief E2LSH-style index: each table hashes a point by quantized random
/// projections; candidates are verified with exact distances.
class LshIndex {
 public:
  explicit LshIndex(LshOptions options = LshOptions());

  /// Bulk-builds over `points` (n × dim row-major) with ids `rows`
  /// (empty → 0..n-1).
  Status Build(std::vector<float> points, size_t dim,
               std::vector<RowId> rows);

  bool built() const { return dim_ > 0; }
  uint64_t size() const { return rows_.size(); }

  /// Approximate Euclidean range search. Exact distances verify every
  /// candidate, so precision is 1; recall < 1 is possible.
  void RangeSearch(const float* query, float radius,
                   std::vector<RowId>* out) const;

  IndexStats Stats() const;

 private:
  uint64_t SignatureFor(int table, const float* point) const;

  LshOptions options_;
  size_t dim_ = 0;
  std::vector<float> points_;
  std::vector<RowId> rows_;
  /// projections_[t] is bits_per_table rows of (dim_ weights + offset).
  std::vector<std::vector<float>> projections_;
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> tables_;
};

}  // namespace deeplens
