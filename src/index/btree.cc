#include "index/btree.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace deeplens {

struct BPlusTree::Node {
  bool leaf = true;
  std::vector<std::string> keys;
  std::vector<Node*> children;  // internal nodes: keys.size() + 1 children
  std::vector<RowId> values;    // leaves: parallel to keys
  Node* next = nullptr;         // leaf chain
};

namespace {

// First index with keys[i] >= key.
size_t LowerBoundSlot(const std::vector<std::string>& keys,
                      const Slice& key) {
  size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (Slice(keys[mid]).Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// First index with keys[i] > key (used to pick internal children so equal
// keys route right, keeping duplicates contiguous in leaf order).
size_t UpperBoundSlot(const std::vector<std::string>& keys,
                      const Slice& key) {
  size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (Slice(keys[mid]).Compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

BPlusTree::BPlusTree(int fanout) : fanout_(fanout < 4 ? 4 : fanout) {}

BPlusTree::~BPlusTree() { FreeTree(root_); }

BPlusTree::BPlusTree(BPlusTree&& o) noexcept
    : root_(o.root_),
      first_leaf_(o.first_leaf_),
      fanout_(o.fanout_),
      num_entries_(o.num_entries_) {
  o.root_ = nullptr;
  o.first_leaf_ = nullptr;
  o.num_entries_ = 0;
}

BPlusTree& BPlusTree::operator=(BPlusTree&& o) noexcept {
  if (this != &o) {
    FreeTree(root_);
    root_ = o.root_;
    first_leaf_ = o.first_leaf_;
    fanout_ = o.fanout_;
    num_entries_ = o.num_entries_;
    o.root_ = nullptr;
    o.first_leaf_ = nullptr;
    o.num_entries_ = 0;
  }
  return *this;
}

void BPlusTree::FreeTree(Node* n) {
  if (n == nullptr) return;
  if (!n->leaf) {
    for (Node* c : n->children) FreeTree(c);
  }
  delete n;
}

bool BPlusTree::InsertRec(Node* node, const Slice& key, RowId row,
                          std::string* sep, Node** right_out) {
  if (node->leaf) {
    const size_t slot = UpperBoundSlot(node->keys, key);
    node->keys.insert(node->keys.begin() + static_cast<ptrdiff_t>(slot),
                      key.ToString());
    node->values.insert(node->values.begin() + static_cast<ptrdiff_t>(slot),
                        row);
    if (node->keys.size() <= static_cast<size_t>(fanout_)) {
      return false;
    }
    // Split the leaf in half; the right sibling's first key is promoted
    // (copied, B+ semantics) to the parent.
    const size_t mid = node->keys.size() / 2;
    auto* right = new Node();
    right->leaf = true;
    right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(mid),
                       node->keys.end());
    right->values.assign(node->values.begin() + static_cast<ptrdiff_t>(mid),
                         node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next = node->next;
    node->next = right;
    *sep = right->keys.front();
    *right_out = right;
    return true;
  }

  const size_t child_idx = UpperBoundSlot(node->keys, key);
  std::string child_sep;
  Node* child_right = nullptr;
  if (!InsertRec(node->children[child_idx], key, row, &child_sep,
                 &child_right)) {
    return false;
  }

  node->keys.insert(node->keys.begin() + static_cast<ptrdiff_t>(child_idx),
                    std::move(child_sep));
  node->children.insert(
      node->children.begin() + static_cast<ptrdiff_t>(child_idx) + 1,
      child_right);
  if (node->keys.size() <= static_cast<size_t>(fanout_)) {
    return false;
  }
  // Split the internal node: the middle key moves up (not copied).
  const size_t mid = node->keys.size() / 2;
  auto* right = new Node();
  right->leaf = false;
  *sep = node->keys[mid];
  right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(mid) + 1,
                     node->keys.end());
  right->children.assign(
      node->children.begin() + static_cast<ptrdiff_t>(mid) + 1,
      node->children.end());
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  *right_out = right;
  return true;
}

void BPlusTree::Insert(const Slice& key, RowId row) {
  if (root_ == nullptr) {
    root_ = new Node();
    root_->leaf = true;
    first_leaf_ = root_;
  }
  std::string sep;
  Node* right = nullptr;
  if (InsertRec(root_, key, row, &sep, &right)) {
    auto* new_root = new Node();
    new_root->leaf = false;
    new_root->keys.push_back(std::move(sep));
    new_root->children.push_back(root_);
    new_root->children.push_back(right);
    root_ = new_root;
  }
  ++num_entries_;
}

BPlusTree::LeafPos BPlusTree::LowerBound(const Slice& key) const {
  const Node* n = root_;
  if (n == nullptr) return {nullptr, 0};
  while (!n->leaf) {
    // Descend left on equality so we land on the first duplicate.
    n = n->children[LowerBoundSlot(n->keys, key)];
  }
  size_t slot = LowerBoundSlot(n->keys, key);
  if (slot == n->keys.size()) {
    n = n->next;
    slot = 0;
  }
  return {n, slot};
}

void BPlusTree::Lookup(const Slice& key, std::vector<RowId>* out) const {
  RangeScan(key, key, out);
}

void BPlusTree::RangeScan(const Slice& lo, const Slice& hi,
                          std::vector<RowId>* out) const {
  LeafPos pos = LowerBound(lo);
  const Node* n = pos.leaf;
  size_t slot = pos.slot;
  while (n != nullptr) {
    for (; slot < n->keys.size(); ++slot) {
      if (Slice(n->keys[slot]).Compare(hi) > 0) return;
      out->push_back(n->values[slot]);
    }
    n = n->next;
    slot = 0;
  }
}

void BPlusTree::ScanFrom(const Slice& lo, std::vector<RowId>* out) const {
  LeafPos pos = LowerBound(lo);
  const Node* n = pos.leaf;
  size_t slot = pos.slot;
  while (n != nullptr) {
    for (; slot < n->keys.size(); ++slot) out->push_back(n->values[slot]);
    n = n->next;
    slot = 0;
  }
}

void BPlusTree::ForEach(
    const std::function<bool(const Slice&, RowId)>& visitor) const {
  const Node* n = first_leaf_;
  while (n != nullptr) {
    for (size_t i = 0; i < n->keys.size(); ++i) {
      if (!visitor(Slice(n->keys[i]), n->values[i])) return;
    }
    n = n->next;
  }
}

uint64_t BPlusTree::height() const {
  uint64_t h = 0;
  const Node* n = root_;
  while (n != nullptr) {
    ++h;
    if (n->leaf) break;
    n = n->children[0];
  }
  return h;
}

IndexStats BPlusTree::Stats() const {
  IndexStats s;
  s.num_entries = num_entries_;
  s.depth = height();
  // DFS byte accounting.
  uint64_t bytes = 0;
  std::vector<const Node*> stack;
  if (root_) stack.push_back(root_);
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    bytes += sizeof(Node) + n->values.size() * sizeof(RowId) +
             n->children.size() * sizeof(Node*);
    for (const auto& k : n->keys) bytes += k.size() + sizeof(std::string);
    if (!n->leaf) {
      for (const Node* c : n->children) stack.push_back(c);
    }
  }
  s.memory_bytes = bytes;
  return s;
}

}  // namespace deeplens
