#include "index/index.h"

namespace deeplens {

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kHash:
      return "hash";
    case IndexKind::kBPlusTree:
      return "b+tree";
    case IndexKind::kSortedFile:
      return "sorted-file";
    case IndexKind::kRTree:
      return "r-tree";
    case IndexKind::kBallTree:
      return "ball-tree";
    case IndexKind::kLsh:
      return "lsh";
  }
  return "?";
}

}  // namespace deeplens
