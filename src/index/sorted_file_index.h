// Sorted-file index: a bulk-built, binary-searched array of (key, RowId).
// This models the paper's default FrameFile organization — records kept in
// a file sorted by frame number / wall-clock time, enabling temporal
// filter push-down without a tree.
#pragma once

#include <string>
#include <vector>

#include "common/slice.h"
#include "index/index.h"

namespace deeplens {

/// \brief Append-then-Build sorted index. Lookups before Build() (or after
/// appends that follow a Build()) see only the built portion.
class SortedFileIndex {
 public:
  /// Stages an entry; not visible until Build().
  void Append(const Slice& key, RowId row);

  /// Sorts staged entries (stable) and makes them queryable.
  void Build();

  bool built() const { return built_; }
  uint64_t size() const { return entries_.size(); }

  /// Appends rows with key == `key`.
  void Lookup(const Slice& key, std::vector<RowId>* out) const;

  /// Appends rows with lo <= key <= hi in key order.
  void RangeScan(const Slice& lo, const Slice& hi,
                 std::vector<RowId>* out) const;

  IndexStats Stats() const;

 private:
  struct Entry {
    std::string key;
    RowId row;
  };
  std::vector<Entry> entries_;
  bool built_ = false;

  /// Index of the first entry with key >= `key`.
  size_t LowerBound(const Slice& key) const;
};

}  // namespace deeplens
