#include "index/sorted_file_index.h"

#include <algorithm>

namespace deeplens {

void SortedFileIndex::Append(const Slice& key, RowId row) {
  entries_.push_back(Entry{key.ToString(), row});
  built_ = false;
}

void SortedFileIndex::Build() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     return Slice(a.key).Compare(Slice(b.key)) < 0;
                   });
  built_ = true;
}

size_t SortedFileIndex::LowerBound(const Slice& key) const {
  size_t lo = 0, hi = entries_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (Slice(entries_[mid].key).Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void SortedFileIndex::Lookup(const Slice& key,
                             std::vector<RowId>* out) const {
  for (size_t i = LowerBound(key); i < entries_.size(); ++i) {
    if (Slice(entries_[i].key) != key) break;
    out->push_back(entries_[i].row);
  }
}

void SortedFileIndex::RangeScan(const Slice& lo, const Slice& hi,
                                std::vector<RowId>* out) const {
  for (size_t i = LowerBound(lo); i < entries_.size(); ++i) {
    if (Slice(entries_[i].key).Compare(hi) > 0) break;
    out->push_back(entries_[i].row);
  }
}

IndexStats SortedFileIndex::Stats() const {
  IndexStats s;
  s.num_entries = entries_.size();
  s.depth = 1;
  uint64_t bytes = 0;
  for (const Entry& e : entries_) {
    bytes += sizeof(Entry) + e.key.size();
  }
  s.memory_bytes = bytes;
  return s;
}

}  // namespace deeplens
