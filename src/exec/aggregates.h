// Aggregation and deduplication operators: count, group-by count,
// exact distinct on a key, and similarity-based deduplication (the hard
// part of q4 "count distinct pedestrians": near-duplicate detections of
// the same physical object must collapse into one).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "exec/operators.h"
#include "exec/pipeline.h"
#include "nn/device.h"

namespace deeplens {

// Each aggregate has a batch-at-a-time core (BatchIterator overload); the
// tuple-iterator form batches its input through the vectorized engine.
// The Parallel* family below additionally pushes predicate evaluation and
// partial aggregation into the morsel workers ("pre-merge aggregation"),
// so scan-fed aggregate queries never materialize intermediate survivors.

/// Counts tuples.
Result<uint64_t> CountAll(PatchIterator* it);
Result<uint64_t> CountAll(BatchIterator* it);

/// Count of distinct values of `key` (exact, hash-based).
Result<uint64_t> CountDistinctKey(PatchIterator* it, const std::string& key);
Result<uint64_t> CountDistinctKey(BatchIterator* it, const std::string& key);

/// Group-by `key` → count, ordered by key.
Result<std::map<std::string, uint64_t>> GroupByCount(PatchIterator* it,
                                                     const std::string& key);
Result<std::map<std::string, uint64_t>> GroupByCount(BatchIterator* it,
                                                     const std::string& key);

/// Which numeric reduction a group-by computes per group. Rows whose
/// `value_key` is missing or non-numeric don't aggregate (and don't
/// create their group).
enum class NumericAgg { kSum, kMin, kMax };

/// Group-by `group_key` → numeric reduction of `value_key`, ordered by
/// group.
Result<std::map<std::string, double>> GroupByNumeric(
    BatchIterator* it, const std::string& group_key,
    const std::string& value_key, NumericAgg agg);
Result<std::map<std::string, double>> GroupByNumeric(
    PatchIterator* it, const std::string& group_key,
    const std::string& value_key, NumericAgg agg);

/// Per-group minimum of a numeric attribute (e.g. first frame per label).
Result<std::map<std::string, double>> GroupByMin(PatchIterator* it,
                                                 const std::string& group_key,
                                                 const std::string& value_key);
Result<std::map<std::string, double>> GroupByMin(BatchIterator* it,
                                                 const std::string& group_key,
                                                 const std::string& value_key);

/// Per-group maximum / sum, same conventions as GroupByMin.
Result<std::map<std::string, double>> GroupByMax(BatchIterator* it,
                                                 const std::string& group_key,
                                                 const std::string& value_key);
Result<std::map<std::string, double>> GroupBySum(BatchIterator* it,
                                                 const std::string& group_key,
                                                 const std::string& value_key);

// --- Pre-merge parallel aggregation (the morsel-driver fast path) ---------
//
// Each function evaluates `predicate` (null = keep everything) against the
// source rows inside the morsel workers — late materialization, survivors
// are never copied — accumulates per-morsel partials, and combines the
// partials in morsel-index order. Count/Min/Max/GroupBy combine
// associatively, so results are identical to a serial scan for any morsel
// geometry. kSum adds each morsel's partial in morsel order: deterministic
// run-to-run for a fixed geometry, exact for integer-valued doubles, but
// floating-point sums may round differently than a serial left-to-right
// scan.

/// COUNT(*) over the rows passing `predicate`.
Result<uint64_t> ParallelCount(const PatchCollection& rows,
                               const ExprPtr& predicate = nullptr,
                               const MorselOptions& options = {});

/// COUNT(DISTINCT key) over the rows passing `predicate`.
Result<uint64_t> ParallelCountDistinctKey(const PatchCollection& rows,
                                          const std::string& key,
                                          const ExprPtr& predicate = nullptr,
                                          const MorselOptions& options = {});

/// Group-by `key` → count over the rows passing `predicate`.
Result<std::map<std::string, uint64_t>> ParallelGroupByCount(
    const PatchCollection& rows, const std::string& key,
    const ExprPtr& predicate = nullptr, const MorselOptions& options = {});

/// Group-by `group_key` → numeric reduction of `value_key` over the rows
/// passing `predicate`.
Result<std::map<std::string, double>> ParallelGroupByNumeric(
    const PatchCollection& rows, const std::string& group_key,
    const std::string& value_key, NumericAgg agg,
    const ExprPtr& predicate = nullptr, const MorselOptions& options = {});

/// The earliest surviving row with the minimal `order_key` value (ties
/// break to the earliest input row — Query::FirstBy's argmin, pushed below
/// the merge). Missing keys compare as nulls, which order before every
/// typed value.
Result<std::optional<Patch>> ParallelMinBy(const PatchCollection& rows,
                                           const std::string& order_key,
                                           const ExprPtr& predicate = nullptr,
                                           const MorselOptions& options = {});

/// \brief Similarity dedup options. Two patches are duplicates when their
/// feature distance is <= max_distance; dedup is single-linkage clustering
/// (connected components of the duplicate graph).
struct DedupOptions {
  float max_distance = 0.25f;
  /// kBallTree builds the on-the-fly index; kAllPairs runs the dense
  /// distance matrix on `device` (the Figure 8 query-time comparison).
  enum class Strategy { kBallTree, kAllPairs } strategy = Strategy::kBallTree;
  nn::Device* device = nullptr;  // kAllPairs only; null = vector CPU
};

/// Result of similarity dedup: cluster count plus one representative
/// patch per cluster.
struct DedupResult {
  uint64_t num_clusters = 0;
  PatchCollection representatives;
  uint64_t pairs_examined = 0;
  /// Cluster id per input patch, in input order (ids are arbitrary but
  /// equal within a cluster).
  std::vector<uint32_t> cluster_of;
};

/// Collapses near-duplicates into clusters (q4's distinct qualifier).
Result<DedupResult> SimilarityDedup(PatchIterator* it,
                                    const DedupOptions& options);
Result<DedupResult> SimilarityDedup(BatchIterator* it,
                                    const DedupOptions& options);

/// Sorts a materialized tuple stream by a metadata key (ascending).
Result<std::vector<PatchTuple>> SortByKey(PatchIterator* it,
                                          const std::string& key);
Result<std::vector<PatchTuple>> SortByKey(BatchIterator* it,
                                          const std::string& key);

}  // namespace deeplens
