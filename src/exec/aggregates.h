// Aggregation and deduplication operators: count, group-by count,
// exact distinct on a key, and similarity-based deduplication (the hard
// part of q4 "count distinct pedestrians": near-duplicate detections of
// the same physical object must collapse into one).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "exec/operators.h"
#include "nn/device.h"

namespace deeplens {

// Each aggregate has a batch-at-a-time core (BatchIterator overload); the
// tuple-iterator form batches its input through the vectorized engine.

/// Counts tuples.
Result<uint64_t> CountAll(PatchIterator* it);
Result<uint64_t> CountAll(BatchIterator* it);

/// Count of distinct values of `key` (exact, hash-based).
Result<uint64_t> CountDistinctKey(PatchIterator* it, const std::string& key);
Result<uint64_t> CountDistinctKey(BatchIterator* it, const std::string& key);

/// Group-by `key` → count, ordered by key.
Result<std::map<std::string, uint64_t>> GroupByCount(PatchIterator* it,
                                                     const std::string& key);
Result<std::map<std::string, uint64_t>> GroupByCount(BatchIterator* it,
                                                     const std::string& key);

/// Per-group minimum of a numeric attribute (e.g. first frame per label).
Result<std::map<std::string, double>> GroupByMin(PatchIterator* it,
                                                 const std::string& group_key,
                                                 const std::string& value_key);
Result<std::map<std::string, double>> GroupByMin(BatchIterator* it,
                                                 const std::string& group_key,
                                                 const std::string& value_key);

/// \brief Similarity dedup options. Two patches are duplicates when their
/// feature distance is <= max_distance; dedup is single-linkage clustering
/// (connected components of the duplicate graph).
struct DedupOptions {
  float max_distance = 0.25f;
  /// kBallTree builds the on-the-fly index; kAllPairs runs the dense
  /// distance matrix on `device` (the Figure 8 query-time comparison).
  enum class Strategy { kBallTree, kAllPairs } strategy = Strategy::kBallTree;
  nn::Device* device = nullptr;  // kAllPairs only; null = vector CPU
};

/// Result of similarity dedup: cluster count plus one representative
/// patch per cluster.
struct DedupResult {
  uint64_t num_clusters = 0;
  PatchCollection representatives;
  uint64_t pairs_examined = 0;
  /// Cluster id per input patch, in input order (ids are arbitrary but
  /// equal within a cluster).
  std::vector<uint32_t> cluster_of;
};

/// Collapses near-duplicates into clusters (q4's distinct qualifier).
Result<DedupResult> SimilarityDedup(PatchIterator* it,
                                    const DedupOptions& options);
Result<DedupResult> SimilarityDedup(BatchIterator* it,
                                    const DedupOptions& options);

/// Sorts a materialized tuple stream by a metadata key (ascending).
Result<std::vector<PatchTuple>> SortByKey(PatchIterator* it,
                                          const std::string& key);
Result<std::vector<PatchTuple>> SortByKey(BatchIterator* it,
                                          const std::string& key);

}  // namespace deeplens
