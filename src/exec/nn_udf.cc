#include "exec/nn_udf.h"

namespace deeplens {

namespace {

Status CheckUdfSlot(size_t slot, const PatchTuple& tuple) {
  if (slot >= tuple.size()) {
    return Status::OutOfRange("NN UDF references tuple slot " +
                              std::to_string(slot) + " of " +
                              std::to_string(tuple.size()));
  }
  return Status::OK();
}

nn::Device* ResolveDevice(nn::Device* device) {
  // Per-tuple inference is a small kernel: default to the vectorized CPU
  // path (a simulated-GPU launch per row would dominate — paper §7.4.2).
  return device != nullptr ? device
                           : nn::GetDevice(nn::DeviceKind::kCpuVector);
}

class OcrTextUdfExpr : public Expr {
 public:
  OcrTextUdfExpr(size_t slot, const nn::TinyOcr* ocr, InferenceCache* cache,
                 nn::Device* device)
      : slot_(slot), ocr_(ocr), cache_(cache), device_(ResolveDevice(device)) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_RETURN_NOT_OK(CheckUdfSlot(slot_, tuple));
    const Patch& p = tuple[slot_];
    if (!p.has_pixels()) return MetaValue();
    DL_ASSIGN_OR_RETURN(std::string text,
                        CachedOcrText(*ocr_, p.pixels(),
                                      CacheFingerprint(p, cache_), device_,
                                      cache_));
    return MetaValue(std::move(text));
  }

  std::string ToString() const override {
    return "ocr($" + std::to_string(slot_) + ")";
  }

  void CollectUdfUse(std::vector<UdfUse>* out) const override {
    const bool cached = cache_ != nullptr && cache_->enabled();
    out->push_back(
        UdfUse{model_names::kOcr, cached, cached && cache_->persistent()});
  }

 private:
  size_t slot_;
  const nn::TinyOcr* ocr_;
  InferenceCache* cache_;
  nn::Device* device_;
};

class DepthUdfExpr : public Expr {
 public:
  DepthUdfExpr(size_t slot, const nn::TinyDepth* model, int frame_height,
               InferenceCache* cache, nn::Device* device)
      : slot_(slot),
        model_(model),
        frame_height_(frame_height),
        cache_(cache),
        device_(ResolveDevice(device)) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_RETURN_NOT_OK(CheckUdfSlot(slot_, tuple));
    const Patch& p = tuple[slot_];
    if (!p.has_pixels()) return MetaValue();
    DL_ASSIGN_OR_RETURN(double depth,
                        CachedDepth(*model_, p.pixels(), p.bbox(),
                                    frame_height_,
                                    CacheFingerprint(p, cache_), device_,
                                    cache_));
    return MetaValue(depth);
  }

  std::string ToString() const override {
    return "depth($" + std::to_string(slot_) +
           ", h=" + std::to_string(frame_height_) + ")";
  }

  void CollectUdfUse(std::vector<UdfUse>* out) const override {
    const bool cached = cache_ != nullptr && cache_->enabled();
    out->push_back(
        UdfUse{model_names::kDepth, cached, cached && cache_->persistent()});
  }

 private:
  size_t slot_;
  const nn::TinyDepth* model_;
  int frame_height_;
  InferenceCache* cache_;
  nn::Device* device_;
};

}  // namespace

ExprPtr OcrTextUdf(size_t slot, const nn::TinyOcr* ocr,
                   InferenceCache* cache, nn::Device* device) {
  return std::make_shared<OcrTextUdfExpr>(slot, ocr, cache, device);
}

ExprPtr DepthUdf(size_t slot, const nn::TinyDepth* model, int frame_height,
                 InferenceCache* cache, nn::Device* device) {
  return std::make_shared<DepthUdfExpr>(slot, model, frame_height, cache,
                                        device);
}

}  // namespace deeplens
