#include "exec/nn_udf.h"

#include <utility>

#include "common/checksum.h"
#include "common/clock.h"
#include "core/cost_model.h"
#include "exec/batch_former.h"

namespace deeplens {

namespace {

Status CheckUdfSlot(size_t slot, const PatchTuple& tuple) {
  if (slot >= tuple.size()) {
    return Status::OutOfRange("NN UDF references tuple slot " +
                              std::to_string(slot) + " of " +
                              std::to_string(tuple.size()));
  }
  return Status::OK();
}

nn::Device* ResolveDevice(nn::Device* device) {
  // Per-tuple inference is a small kernel: default to the vectorized CPU
  // path (a simulated-GPU launch per row would dominate — paper §7.4.2).
  return device != nullptr ? device
                           : nn::GetDevice(nn::DeviceKind::kCpuVector);
}

// Live hit rate of `cache` for UdfUse, 0 when absent/disabled.
double LiveHitRate(InferenceCache* cache) {
  if (cache == nullptr || !cache->enabled()) return 0.0;
  return cache->Stats().HitRate();
}

// Configured cross-query batch size for UdfUse: nonzero only when this
// cache's misses will actually stage into an enabled batch former.
uint64_t LiveDeviceBatchSize(InferenceCache* cache) {
  if (cache == nullptr || !cache->enabled()) return 0;
  BatchFormer* former = cache->batch_former();
  if (former == nullptr || !former->enabled()) return 0;
  return former->config().batch_size;
}

class OcrTextUdfExpr : public Expr {
 public:
  OcrTextUdfExpr(size_t slot, const nn::TinyOcr* ocr, InferenceCache* cache,
                 nn::Device* device)
      : slot_(slot), ocr_(ocr), cache_(cache), device_(ResolveDevice(device)) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_RETURN_NOT_OK(CheckUdfSlot(slot_, tuple));
    const Patch& p = tuple[slot_];
    if (!p.has_pixels()) return MetaValue();
    bool computed = false;
    Stopwatch sw;
    DL_ASSIGN_OR_RETURN(std::string text,
                        CachedOcrText(*ocr_, p.pixels(),
                                      CacheFingerprint(p, cache_), device_,
                                      cache_, &computed));
    CostModel::Global()->RecordUdfEval(model_names::kOcr, !computed,
                                       sw.ElapsedMillis());
    return MetaValue(std::move(text));
  }

  std::string ToString() const override {
    return "ocr($" + std::to_string(slot_) + ")";
  }

  void CollectUdfUse(std::vector<UdfUse>* out) const override {
    const bool cached = cache_ != nullptr && cache_->enabled();
    out->push_back(UdfUse{model_names::kOcr, cached,
                          cached && cache_->persistent(),
                          LiveHitRate(cache_)});
    out->back().device_batch_size = LiveDeviceBatchSize(cache_);
  }

  bool has_proxy_value() const override { return true; }

  bool EvalProxyValue(const PatchTuple& tuple, ProxyValue* out) const override {
    if (slot_ >= tuple.size()) return false;
    const Patch& p = tuple[slot_];
    if (!p.has_pixels()) {
      // The full UDF returns null for pixel-less patches, exactly.
      out->estimate = MetaValue();
      out->rel_error = 0.0;
      out->confidence = 1.0;
      return true;
    }
    // Inkless patch → the recognizer would find no glyph columns. Not
    // quite certain (the ink scan is subsampled), hence 0.95.
    if (!ocr_->ProxyHasInk(p.pixels())) {
      out->estimate = MetaValue(std::string());
      out->rel_error = 0.0;
      out->confidence = 0.95;
      return true;
    }
    return false;  // ink present: no cheap estimate of the actual text
  }

 private:
  size_t slot_;
  const nn::TinyOcr* ocr_;
  InferenceCache* cache_;
  nn::Device* device_;
};

class DepthUdfExpr : public Expr {
 public:
  DepthUdfExpr(size_t slot, const nn::TinyDepth* model, int frame_height,
               InferenceCache* cache, nn::Device* device)
      : slot_(slot),
        model_(model),
        frame_height_(frame_height),
        cache_(cache),
        device_(ResolveDevice(device)) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_RETURN_NOT_OK(CheckUdfSlot(slot_, tuple));
    const Patch& p = tuple[slot_];
    if (!p.has_pixels()) return MetaValue();
    bool computed = false;
    Stopwatch sw;
    DL_ASSIGN_OR_RETURN(double depth,
                        CachedDepth(*model_, p.pixels(), p.bbox(),
                                    frame_height_,
                                    CacheFingerprint(p, cache_), device_,
                                    cache_, &computed));
    CostModel::Global()->RecordUdfEval(model_names::kDepth, !computed,
                                       sw.ElapsedMillis());
    return MetaValue(depth);
  }

  std::string ToString() const override {
    return "depth($" + std::to_string(slot_) +
           ", h=" + std::to_string(frame_height_) + ")";
  }

  void CollectUdfUse(std::vector<UdfUse>* out) const override {
    const bool cached = cache_ != nullptr && cache_->enabled();
    out->push_back(UdfUse{model_names::kDepth, cached,
                          cached && cache_->persistent(),
                          LiveHitRate(cache_)});
    out->back().device_batch_size = LiveDeviceBatchSize(cache_);
  }

  bool has_proxy_value() const override { return true; }

  bool EvalProxyValue(const PatchTuple& tuple, ProxyValue* out) const override {
    if (slot_ >= tuple.size()) return false;
    const Patch& p = tuple[slot_];
    if (!p.has_pixels()) {
      out->estimate = MetaValue();
      out->rel_error = 0.0;
      out->confidence = 1.0;
      return true;
    }
    // Geometry cue alone; the conv features perturb it by a few percent,
    // so a 10% relative error bound comfortably covers the full model.
    out->estimate =
        MetaValue(static_cast<double>(model_->ProxyDepth(p.bbox())));
    out->rel_error = 0.10;
    out->confidence = 1.0;
    return true;
  }

 private:
  size_t slot_;
  const nn::TinyDepth* model_;
  int frame_height_;
  InferenceCache* cache_;
  nn::Device* device_;
};

// Reject-only cascade around one proxy-capable conjunct; see MakeCascade.
class CascadeExpr : public Expr {
 public:
  CascadeExpr(ExprPtr inner, double threshold,
              std::shared_ptr<CascadeTelemetry> telemetry)
      : inner_(std::move(inner)),
        threshold_(threshold),
        telemetry_(std::move(telemetry)) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_ASSIGN_OR_RETURN(ProxyVerdict verdict, inner_->EvalProxy(tuple));
    CascadeTelemetry* tel = telemetry_.get();
    if (tel != nullptr && verdict.confidence > 0.0) {
      tel->proxy_evals.fetch_add(1, std::memory_order_relaxed);
    }
    if (!verdict.pass && verdict.confidence >= threshold_) {
      // Confident reject. A deterministic 1-in-16 slice (by row-id hash:
      // stable across runs and thread schedules, and — unlike the pixel
      // fingerprint — free on the path whose whole point is not touching
      // the pixels) runs the full conjunct anyway as an accuracy audit;
      // its answer is used, so audited rows are always exact.
      const uint64_t id = tuple.empty() ? 0 : tuple[0].id();
      if (Fnv1a64(&id, sizeof(id)) % 16 != 0) {
        if (tel != nullptr) {
          tel->proxy_skips.fetch_add(1, std::memory_order_relaxed);
        }
        return MetaValue(false);
      }
      DL_ASSIGN_OR_RETURN(bool full, inner_->EvalBool(tuple));
      if (tel != nullptr) {
        tel->audits.fetch_add(1, std::memory_order_relaxed);
        tel->full_evals.fetch_add(1, std::memory_order_relaxed);
        if (full) {
          tel->audit_overturns.fetch_add(1, std::memory_order_relaxed);
          tel->passes.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return MetaValue(full);
    }
    // Proxy passed or was unsure: the full conjunct decides.
    DL_ASSIGN_OR_RETURN(bool full, inner_->EvalBool(tuple));
    if (tel != nullptr) {
      tel->full_evals.fetch_add(1, std::memory_order_relaxed);
      if (full) tel->passes.fetch_add(1, std::memory_order_relaxed);
    }
    return MetaValue(full);
  }

  std::string ToString() const override {
    return "cascade(" + inner_->ToString() + ")";
  }

  Status Validate(const std::vector<PatchSchema>& schemas) const override {
    return inner_->Validate(schemas);
  }

  void CollectUdfUse(std::vector<UdfUse>* out) const override {
    const size_t first = out->size();
    inner_->CollectUdfUse(out);
    for (size_t i = first; i < out->size(); ++i) (*out)[i].cascaded = true;
  }

 private:
  ExprPtr inner_;
  double threshold_;
  std::shared_ptr<CascadeTelemetry> telemetry_;
};

}  // namespace

ExprPtr OcrTextUdf(size_t slot, const nn::TinyOcr* ocr,
                   InferenceCache* cache, nn::Device* device) {
  return std::make_shared<OcrTextUdfExpr>(slot, ocr, cache, device);
}

ExprPtr DepthUdf(size_t slot, const nn::TinyDepth* model, int frame_height,
                 InferenceCache* cache, nn::Device* device) {
  return std::make_shared<DepthUdfExpr>(slot, model, frame_height, cache,
                                        device);
}

ExprPtr MakeCascade(ExprPtr conjunct, double threshold,
                    std::shared_ptr<CascadeTelemetry> telemetry) {
  return std::make_shared<CascadeExpr>(std::move(conjunct), threshold,
                                       std::move(telemetry));
}

}  // namespace deeplens
