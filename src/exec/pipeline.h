// Morsel-driven parallel pipeline driver (the batch engine's scheduler).
//
// A BatchPipeline is a compiled chain of embarrassingly-parallel stages —
// Filter / Map / Project — that can either be bound lazily over any
// BatchIterator (serial, streaming) or run morsel-parallel over a
// materialized input: the input is split into contiguous morsels, each
// morsel is processed batch-at-a-time by a ThreadPool::Global() worker, and
// the per-morsel outputs are merged back in input order, so results are
// deterministic regardless of scheduling.
//
// Filters over bare patch collections are evaluated against the source
// rows in place (late materialization): rows the predicate rejects are
// never copied, which is where most of the batch engine's scan speedup
// comes from.
#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "exec/batch.h"
#include "exec/expression.h"
#include "exec/operators.h"

namespace deeplens {

struct MorselOptions {
  /// Floor for the auto-computed morsel size. Each morsel is processed as
  /// one unit per stage (no finer sub-batching), so this only guards
  /// against morsels too small to amortize scheduling overhead.
  size_t batch_size = kDefaultBatchSize;
  /// Rows per scheduled work unit; 0 = auto (≈ input / (4 × workers),
  /// never below batch_size).
  size_t morsel_size = 0;
  /// Worker cap; 0 = the global pool's width, 1 = force serial.
  size_t num_threads = 0;
};

struct PipelineStats {
  uint64_t input_rows = 0;
  uint64_t output_rows = 0;
  uint64_t morsels = 0;
  double millis = 0.0;
};

/// \brief Morsel geometry resolved against the global pool: how many
/// contiguous work units an input of `n` rows splits into and whether they
/// may run on pool workers. Shared by the pipeline driver, the parallel
/// join probes (exec/joins.cc) and pre-merge aggregation
/// (exec/aggregates.cc) so every parallel operator slices inputs the same
/// way.
struct MorselPlan {
  size_t morsel_size = 0;
  size_t num_morsels = 0;
  bool parallel = false;
};

MorselPlan PlanMorsels(size_t n, const MorselOptions& options);

/// Effective worker count `options` resolves to against the global pool
/// (>= 1; 1 means forced-serial). The radix join uses this to size its
/// partition fan-out, and the bench harness to report per-case worker
/// counts.
size_t ResolveMorselWorkers(const MorselOptions& options);

/// Plan for dispatching `n` explicitly pre-sliced work units (e.g. one
/// radix partition, or one probe chunk of a partition) rather than
/// contiguous row ranges: every unit is its own morsel. Parallel under
/// the same rules as PlanMorsels (worker cap, nested-invocation
/// degradation).
MorselPlan PlanUnitTasks(size_t n, const MorselOptions& options);

/// Runs worker(morsel_index, lo, hi) over every morsel of an n-row input,
/// on the global pool when the plan allows, serially otherwise. Each
/// worker owns its morsel's output slot, so merging per-morsel results in
/// morsel-index order yields a deterministic, input-ordered stream.
/// Returns the error of the earliest failing morsel.
Status DispatchMorsels(
    size_t n, const MorselPlan& plan,
    const std::function<Status(size_t, size_t, size_t)>& worker);

/// \brief Compiled chain of filter/map/project stages.
///
/// Map functions must be thread-safe: the morsel driver invokes them
/// concurrently from pool workers. Order-sensitive operators (Limit) are
/// deliberately not expressible here — wrap the pipeline's output instead.
class BatchPipeline {
 public:
  BatchPipeline& Filter(ExprPtr predicate);
  BatchPipeline& Map(std::function<Result<PatchTuple>(PatchTuple)> fn);
  BatchPipeline& Project(ProjectSpec spec);

  size_t num_stages() const { return stages_.size(); }

  /// Lazy serial composition over an arbitrary batch source.
  BatchIteratorPtr Bind(BatchIteratorPtr source) const;

  /// Morsel-parallel execution over materialized tuple rows; the output
  /// preserves input order (ordered merge by morsel index). Errors report
  /// the earliest failing morsel.
  Result<std::vector<PatchTuple>> Run(const std::vector<PatchTuple>& rows,
                                      const MorselOptions& options = {},
                                      PipelineStats* stats = nullptr) const;

  /// Same, over bare patches treated as 1-tuple rows. A leading Filter
  /// stage runs against `rows` in place, so rejected rows are never
  /// copied. Every output tuple must still be a 1-tuple (maps that widen
  /// tuples are an error on this path).
  Result<PatchCollection> RunOnPatches(const PatchCollection& rows,
                                       const MorselOptions& options = {},
                                       PipelineStats* stats = nullptr) const;

 private:
  struct Stage {
    enum class Kind { kFilter, kMap, kProject };
    Kind kind = Kind::kFilter;
    CompiledPredicate predicate;   // kFilter (compiled once, shared)
    ExprPtr predicate_expr;        // kFilter (for Bind)
    std::function<Result<PatchTuple>(PatchTuple)> map_fn;  // kMap
    ProjectSpec project;           // kProject
  };

  // Applies stages [first_stage..] to `working` in place.
  Status RunStagesOnTuples(std::vector<PatchTuple>* working,
                           size_t first_stage) const;

  std::vector<Stage> stages_;
};

/// Morsel-parallel predicate scan over a collection: the planner's
/// full-scan fast path. A null predicate copies everything.
Result<PatchCollection> ParallelSelect(const PatchCollection& rows,
                                       const ExprPtr& predicate,
                                       const MorselOptions& options = {},
                                       PipelineStats* stats = nullptr);

}  // namespace deeplens
