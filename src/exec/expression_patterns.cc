#include "exec/expression_patterns.h"

namespace deeplens {

void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (!expr) return;
  ExprPtr left, right;
  if (expr->AsConjunction(&left, &right)) {
    CollectConjuncts(left, out);
    CollectConjuncts(right, out);
    return;
  }
  out->push_back(expr);
}

std::optional<AttrEqLitPattern> MatchAttrEqLit(const ExprPtr& expr) {
  int op;
  AttrEqLitPattern p;
  if (expr && expr->AsAttrCmpLit(&op, &p.slot, &p.key, &p.value) &&
      op == 0) {
    return p;
  }
  return std::nullopt;
}

std::optional<AttrRangePattern> MatchAttrRange(const ExprPtr& expr) {
  int op;
  size_t slot;
  std::string key;
  MetaValue value;
  if (!expr || !expr->AsAttrCmpLit(&op, &slot, &key, &value)) {
    return std::nullopt;
  }
  AttrRangePattern p;
  p.slot = slot;
  p.key = std::move(key);
  switch (op) {
    case 0:
      p.lo = value;
      p.hi = value;
      break;
    case -1:  // attr <= v
    case -2:  // attr < v (treated as <= for candidate generation; the
              // residual predicate re-checks exactness)
      p.hi = value;
      break;
    case 1:  // attr >= v
    case 2:  // attr > v
      p.lo = value;
      break;
    default:
      return std::nullopt;
  }
  return p;
}

}  // namespace deeplens
