#include "exec/pipeline.h"

#include <algorithm>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "exec/scheduler.h"

namespace deeplens {

MorselPlan PlanMorsels(size_t n, const MorselOptions& options) {
  MorselPlan plan;
  ThreadPool& pool = ThreadPool::Global();
  size_t threads = options.num_threads == 0
                       ? pool.num_threads()
                       : std::min(options.num_threads, pool.num_threads());
  if (threads == 0) threads = 1;
  const size_t batch = std::max<size_t>(1, options.batch_size);
  if (options.morsel_size > 0) {
    plan.morsel_size = options.morsel_size;
  } else {
    // ~4 morsels per worker for load balancing, but no smaller than a
    // batch so the per-morsel overhead stays amortized.
    const size_t target_chunks = threads * 4;
    plan.morsel_size = std::max(batch, (n + target_chunks - 1) /
                                           std::max<size_t>(1, target_chunks));
  }
  plan.num_morsels =
      n == 0 ? 0 : (n + plan.morsel_size - 1) / plan.morsel_size;
  // Nested invocation from a pool worker degrades to serial rather than
  // risking a deadlock on nested waits.
  plan.parallel =
      threads > 1 && plan.num_morsels > 1 && !ThreadPool::InWorker();
  return plan;
}

size_t ResolveMorselWorkers(const MorselOptions& options) {
  ThreadPool& pool = ThreadPool::Global();
  size_t threads = options.num_threads == 0
                       ? pool.num_threads()
                       : std::min(options.num_threads, pool.num_threads());
  return threads == 0 ? 1 : threads;
}

MorselPlan PlanUnitTasks(size_t n, const MorselOptions& options) {
  MorselPlan plan;
  plan.morsel_size = 1;
  plan.num_morsels = n;
  plan.parallel = ResolveMorselWorkers(options) > 1 && n > 1 &&
                  !ThreadPool::InWorker();
  return plan;
}

Status DispatchMorsels(size_t n, const MorselPlan& plan,
                       const std::function<Status(size_t, size_t, size_t)>&
                           worker) {
  if (plan.num_morsels == 0) return Status::OK();
  std::vector<Status> morsel_status(plan.num_morsels);
  auto run_one = [&](size_t m) {
    const size_t lo = m * plan.morsel_size;
    const size_t hi = std::min(n, lo + plan.morsel_size);
    morsel_status[m] = worker(m, lo, hi);
  };
  if (plan.parallel) {
    // Through the fair-share scheduler, not straight into the pool FIFO:
    // concurrent queries' morsels interleave by tenant weight instead of
    // enqueue order, so a long scan cannot starve a short lookup. The
    // calling thread's SchedulingContext (installed by Session::Run)
    // tags the whole task set.
    MorselScheduler::Global().Run(plan.num_morsels, run_one,
                                  ScopedSchedulingContext::Current());
  } else {
    for (size_t m = 0; m < plan.num_morsels; ++m) run_one(m);
  }
  for (const Status& st : morsel_status) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

BatchPipeline& BatchPipeline::Filter(ExprPtr predicate) {
  Stage stage;
  stage.kind = Stage::Kind::kFilter;
  stage.predicate = CompiledPredicate(predicate);
  stage.predicate_expr = std::move(predicate);
  stages_.push_back(std::move(stage));
  return *this;
}

BatchPipeline& BatchPipeline::Map(
    std::function<Result<PatchTuple>(PatchTuple)> fn) {
  Stage stage;
  stage.kind = Stage::Kind::kMap;
  stage.map_fn = std::move(fn);
  stages_.push_back(std::move(stage));
  return *this;
}

BatchPipeline& BatchPipeline::Project(ProjectSpec spec) {
  Stage stage;
  stage.kind = Stage::Kind::kProject;
  stage.project = std::move(spec);
  stages_.push_back(std::move(stage));
  return *this;
}

BatchIteratorPtr BatchPipeline::Bind(BatchIteratorPtr source) const {
  for (const Stage& stage : stages_) {
    switch (stage.kind) {
      case Stage::Kind::kFilter:
        source = MakeBatchFilter(std::move(source), stage.predicate_expr);
        break;
      case Stage::Kind::kMap:
        source = MakeBatchMap(std::move(source), stage.map_fn);
        break;
      case Stage::Kind::kProject:
        source = MakeBatchProject(std::move(source), stage.project);
        break;
    }
  }
  return source;
}

Status BatchPipeline::RunStagesOnTuples(std::vector<PatchTuple>* working,
                                        size_t first_stage) const {
  std::vector<uint8_t> selection;
  for (size_t s = first_stage; s < stages_.size(); ++s) {
    const Stage& stage = stages_[s];
    switch (stage.kind) {
      case Stage::Kind::kFilter: {
        const size_t n = working->size();
        selection.resize(n);
        DL_RETURN_NOT_OK(stage.predicate.EvalTupleRows(working->data(), n,
                                                       selection.data()));
        size_t w = 0;
        for (size_t i = 0; i < n; ++i) {
          if (!selection[i]) continue;
          if (w != i) (*working)[w] = std::move((*working)[i]);
          ++w;
        }
        working->resize(w);
        break;
      }
      case Stage::Kind::kMap: {
        for (PatchTuple& t : *working) {
          DL_ASSIGN_OR_RETURN(t, stage.map_fn(std::move(t)));
        }
        break;
      }
      case Stage::Kind::kProject: {
        for (PatchTuple& t : *working) {
          for (Patch& p : t) ApplyProjectSpec(stage.project, &p);
        }
        break;
      }
    }
  }
  return Status::OK();
}

Result<std::vector<PatchTuple>> BatchPipeline::Run(
    const std::vector<PatchTuple>& rows, const MorselOptions& options,
    PipelineStats* stats) const {
  Stopwatch timer;
  const size_t n = rows.size();
  const MorselPlan plan = PlanMorsels(n, options);
  std::vector<std::vector<PatchTuple>> partials(plan.num_morsels);

  const bool leading_filter =
      !stages_.empty() && stages_[0].kind == Stage::Kind::kFilter;

  DL_RETURN_NOT_OK(DispatchMorsels(
      n, plan, [&](size_t m, size_t lo, size_t hi) -> Status {
        std::vector<PatchTuple>& working = partials[m];
        size_t first_stage = 0;
        if (leading_filter) {
          // Late materialization: evaluate against the source rows in
          // place; only survivors are copied.
          std::vector<uint8_t> selection(hi - lo);
          DL_RETURN_NOT_OK(stages_[0].predicate.EvalTupleRows(
              rows.data() + lo, hi - lo, selection.data()));
          for (size_t i = 0; i < hi - lo; ++i) {
            if (selection[i]) working.push_back(rows[lo + i]);
          }
          first_stage = 1;
        } else {
          working.assign(rows.begin() + static_cast<ptrdiff_t>(lo),
                         rows.begin() + static_cast<ptrdiff_t>(hi));
        }
        return RunStagesOnTuples(&working, first_stage);
      }));

  std::vector<PatchTuple> out;
  size_t total = 0;
  for (const auto& partial : partials) total += partial.size();
  out.reserve(total);
  for (auto& partial : partials) {
    for (PatchTuple& t : partial) out.push_back(std::move(t));
  }
  if (stats != nullptr) {
    stats->input_rows = n;
    stats->output_rows = out.size();
    stats->morsels = plan.num_morsels;
    stats->millis = timer.ElapsedMillis();
  }
  return out;
}

Result<PatchCollection> BatchPipeline::RunOnPatches(
    const PatchCollection& rows, const MorselOptions& options,
    PipelineStats* stats) const {
  Stopwatch timer;
  const size_t n = rows.size();
  const MorselPlan plan = PlanMorsels(n, options);
  std::vector<PatchCollection> partials(plan.num_morsels);

  const bool leading_filter =
      !stages_.empty() && stages_[0].kind == Stage::Kind::kFilter;

  DL_RETURN_NOT_OK(DispatchMorsels(
      n, plan, [&](size_t m, size_t lo, size_t hi) -> Status {
        std::vector<PatchTuple> working;
        size_t first_stage = 0;
        if (leading_filter) {
          std::vector<uint8_t> selection(hi - lo);
          DL_RETURN_NOT_OK(stages_[0].predicate.EvalPatchRows(
              rows.data() + lo, hi - lo, selection.data()));
          for (size_t i = 0; i < hi - lo; ++i) {
            if (selection[i]) working.push_back(PatchTuple{rows[lo + i]});
          }
          first_stage = 1;
        } else {
          working.reserve(hi - lo);
          for (size_t i = lo; i < hi; ++i) {
            working.push_back(PatchTuple{rows[i]});
          }
        }
        DL_RETURN_NOT_OK(RunStagesOnTuples(&working, first_stage));
        PatchCollection& out = partials[m];
        out.reserve(working.size());
        for (PatchTuple& t : working) {
          if (t.size() != 1) {
            return Status::InvalidArgument(
                "RunOnPatches produced a multi-patch tuple");
          }
          out.push_back(std::move(t[0]));
        }
        return Status::OK();
      }));

  PatchCollection out;
  size_t total = 0;
  for (const auto& partial : partials) total += partial.size();
  out.reserve(total);
  for (auto& partial : partials) {
    for (Patch& p : partial) out.push_back(std::move(p));
  }
  if (stats != nullptr) {
    stats->input_rows = n;
    stats->output_rows = out.size();
    stats->morsels = plan.num_morsels;
    stats->millis = timer.ElapsedMillis();
  }
  return out;
}

Result<PatchCollection> ParallelSelect(const PatchCollection& rows,
                                       const ExprPtr& predicate,
                                       const MorselOptions& options,
                                       PipelineStats* stats) {
  BatchPipeline pipeline;
  if (predicate) pipeline.Filter(predicate);
  return pipeline.RunOnPatches(rows, options, stats);
}

}  // namespace deeplens
