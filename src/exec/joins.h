// Join operators (paper §5): nested-loop θ-join, index equality join,
// R-Tree spatial join, and the on-the-fly Ball-Tree similarity join that
// the paper highlights for image matching. Join outputs concatenate the
// input tuples (left ++ right).
#pragma once

#include <memory>
#include <string>

#include "exec/batch.h"
#include "exec/operators.h"
#include "exec/pipeline.h"
#include "index/balltree.h"
#include "index/hash_index.h"
#include "index/rtree.h"
#include "nn/device.h"

namespace deeplens {

/// Counters the benchmarks report (pairs examined vs emitted), plus the
/// radix join's per-phase breakdown so a parallel-join regression is
/// diagnosable from query output (Explain) instead of a bench rebuild.
struct JoinStats {
  uint64_t pairs_examined = 0;
  uint64_t tuples_emitted = 0;
  /// Index/table build time. On the radix path this is the per-partition
  /// table-build phase; on the shared-build core, the single index build.
  double index_build_millis = 0.0;
  /// Radix-only phases; all zero when the shared-build core ran.
  double partition_millis = 0.0;
  double probe_millis = 0.0;
  double merge_millis = 0.0;
  /// Partitions the radix pass fanned out to (0 = shared-build core).
  uint64_t partitions_used = 0;
  /// max partition size / mean partition size over both inputs' non-NULL
  /// rows; 1.0 is perfectly uniform. Large values mean key skew
  /// concentrated work in few partitions (probe chunking still balances
  /// it, but the partition pass can't).
  double max_partition_skew = 0.0;
};

// Every join materializes both sides, so each comes in three flavours
// sharing one batch-at-a-time core: tuple-iterator sources (legacy API),
// batch-iterator sources, and pre-materialized collections. Pair
// predicates/residuals are evaluated through CompiledPredicate, batch-wise
// where the join examines pairs in bulk.
//
// The probe phases are morsel-parallel (exec/pipeline.h): any index is
// built once, single-threaded, then probe morsels run on pool workers with
// per-worker output batches that are merged back in probe order. Output is
// therefore byte-identical to single-threaded execution regardless of
// scheduling; pass MorselOptions{.num_threads = 1} to force the serial
// core (the differential tests do).

/// \brief Nested-loop θ-join: every pair is tested against `predicate`.
/// The baseline all plans are compared to (Figure 4's "no index" bars).
/// Materializes both sides; outer-loop morsels run in parallel.
Result<std::vector<PatchTuple>> NestedLoopJoin(PatchIterator* left,
                                               PatchIterator* right,
                                               const ExprPtr& predicate,
                                               JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> NestedLoopJoin(BatchIterator* left,
                                               BatchIterator* right,
                                               const ExprPtr& predicate,
                                               JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> NestedLoopJoin(
    const PatchCollection& left, const PatchCollection& right,
    const ExprPtr& predicate,
    JoinStats* stats = nullptr, const MorselOptions& options = {});

/// \brief Hash equality join on a metadata key. Two cores behind one
/// interface:
///
/// - Radix-partitioned (the parallel path): both inputs are hashed into
///   2^k partitions (k from worker count and build cardinality, or the
///   DEEPLENS_JOIN_PARTITIONS override), each partition gets its own
///   local build table with zero shared state, probes run chunk-parallel
///   within partitions, and the output is stitched back into canonical
///   order by a counts/prefix-sum/scatter pass keyed on the left row id —
///   no global sort. Chosen when the morsel plan is parallel and the
///   combined input is large enough (or the partition override is set).
/// - Shared-build (the serial core): one single-pass HashIndex over the
///   smaller input, morsel-parallel probe. Small joins and forced-serial
///   runs (`MorselOptions{.num_threads = 1}`) take this path, so tiny
///   joins never pay the partition pass.
///
/// An optional `residual` predicate filters matched pairs. NULL keys
/// never match (SQL equality, like Eq(attr, attr) through the expression
/// engine). Output order is canonical on both cores regardless of build
/// side — left input order, with each left row's matches in right input
/// order — so results are byte-identical across cores, worker counts and
/// partition counts.
Result<std::vector<PatchTuple>> HashEqualityJoin(
    PatchIterator* left, PatchIterator* right, const std::string& key,
    const ExprPtr& residual = nullptr, JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> HashEqualityJoin(
    BatchIterator* left, BatchIterator* right, const std::string& key,
    const ExprPtr& residual = nullptr, JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> HashEqualityJoin(
    const PatchCollection& left, const PatchCollection& right,
    const std::string& key,
    const ExprPtr& residual = nullptr, JoinStats* stats = nullptr,
    const MorselOptions& options = {});

/// \brief On-the-fly Ball-Tree similarity join (paper §5 "On-The-Fly
/// Index Similarity Join"): loads the smaller relation into an in-memory
/// Ball-Tree over patch features, probes with the other side, and emits
/// pairs within `max_distance`. `residual` optionally filters pairs.
struct SimilarityJoinOptions {
  float max_distance = 0.25f;
  /// Build the index over the right side even if it is larger.
  bool force_index_right = false;
  /// Skip self-pairs (same patch id) — needed for self-joins (q1).
  bool skip_identical_ids = true;
};
Result<std::vector<PatchTuple>> BallTreeSimilarityJoin(
    PatchIterator* left, PatchIterator* right,
    const SimilarityJoinOptions& options, const ExprPtr& residual = nullptr,
    JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> BallTreeSimilarityJoin(
    BatchIterator* left, BatchIterator* right,
    const SimilarityJoinOptions& options, const ExprPtr& residual = nullptr,
    JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> BallTreeSimilarityJoin(
    const PatchCollection& left, const PatchCollection& right,
    const SimilarityJoinOptions& options, const ExprPtr& residual = nullptr,
    JoinStats* stats = nullptr, const MorselOptions& morsels = {});

/// \brief All-pairs similarity join on a Device: computes the full
/// pairwise distance matrix with the device's matching kernel (the GPU /
/// AVX comparison of §7.4.2), then filters by threshold.
Result<std::vector<PatchTuple>> AllPairsSimilarityJoin(
    PatchIterator* left, PatchIterator* right, float max_distance,
    nn::Device* device, const ExprPtr& residual = nullptr,
    JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> AllPairsSimilarityJoin(
    BatchIterator* left, BatchIterator* right, float max_distance,
    nn::Device* device, const ExprPtr& residual = nullptr,
    JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> AllPairsSimilarityJoin(
    const PatchCollection& left, const PatchCollection& right,
    float max_distance,
    nn::Device* device, const ExprPtr& residual = nullptr,
    JoinStats* stats = nullptr);

/// \brief R-Tree spatial join: emits pairs whose bounding boxes intersect
/// (containment/intersection queries of §3.2). Builds the R-Tree over the
/// right side.
Result<std::vector<PatchTuple>> RTreeSpatialJoin(
    PatchIterator* left, PatchIterator* right,
    const ExprPtr& residual = nullptr, JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> RTreeSpatialJoin(
    BatchIterator* left, BatchIterator* right,
    const ExprPtr& residual = nullptr, JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> RTreeSpatialJoin(
    const PatchCollection& left, const PatchCollection& right,
    const ExprPtr& residual = nullptr, JoinStats* stats = nullptr,
    const MorselOptions& options = {});

}  // namespace deeplens
