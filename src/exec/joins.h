// Join operators (paper §5): nested-loop θ-join, index equality join,
// R-Tree spatial join, and the on-the-fly Ball-Tree similarity join that
// the paper highlights for image matching. Join outputs concatenate the
// input tuples (left ++ right).
#pragma once

#include <memory>
#include <string>

#include "exec/batch.h"
#include "exec/operators.h"
#include "exec/pipeline.h"
#include "index/balltree.h"
#include "index/hash_index.h"
#include "index/rtree.h"
#include "nn/device.h"

namespace deeplens {

/// Counters the benchmarks report (pairs examined vs emitted).
struct JoinStats {
  uint64_t pairs_examined = 0;
  uint64_t tuples_emitted = 0;
  double index_build_millis = 0.0;
};

// Every join materializes both sides, so each comes in three flavours
// sharing one batch-at-a-time core: tuple-iterator sources (legacy API),
// batch-iterator sources, and pre-materialized collections. Pair
// predicates/residuals are evaluated through CompiledPredicate, batch-wise
// where the join examines pairs in bulk.
//
// The probe phases are morsel-parallel (exec/pipeline.h): any index is
// built once, single-threaded, then probe morsels run on pool workers with
// per-worker output batches that are merged back in probe order. Output is
// therefore byte-identical to single-threaded execution regardless of
// scheduling; pass MorselOptions{.num_threads = 1} to force the serial
// core (the differential tests do).

/// \brief Nested-loop θ-join: every pair is tested against `predicate`.
/// The baseline all plans are compared to (Figure 4's "no index" bars).
/// Materializes both sides; outer-loop morsels run in parallel.
Result<std::vector<PatchTuple>> NestedLoopJoin(PatchIterator* left,
                                               PatchIterator* right,
                                               const ExprPtr& predicate,
                                               JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> NestedLoopJoin(BatchIterator* left,
                                               BatchIterator* right,
                                               const ExprPtr& predicate,
                                               JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> NestedLoopJoin(
    const PatchCollection& left, const PatchCollection& right,
    const ExprPtr& predicate,
    JoinStats* stats = nullptr, const MorselOptions& options = {});

/// \brief Hash equality join on a metadata key: one shared single-pass
/// HashIndex build over the smaller input, then a morsel-parallel probe
/// with the other. An optional `residual` predicate filters matched pairs.
/// NULL keys never match (SQL equality, like Eq(attr, attr) through the
/// expression engine). Output order is canonical regardless of build
/// side: left input order, with each left row's matches in right input
/// order.
Result<std::vector<PatchTuple>> HashEqualityJoin(
    PatchIterator* left, PatchIterator* right, const std::string& key,
    const ExprPtr& residual = nullptr, JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> HashEqualityJoin(
    BatchIterator* left, BatchIterator* right, const std::string& key,
    const ExprPtr& residual = nullptr, JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> HashEqualityJoin(
    const PatchCollection& left, const PatchCollection& right,
    const std::string& key,
    const ExprPtr& residual = nullptr, JoinStats* stats = nullptr,
    const MorselOptions& options = {});

/// \brief On-the-fly Ball-Tree similarity join (paper §5 "On-The-Fly
/// Index Similarity Join"): loads the smaller relation into an in-memory
/// Ball-Tree over patch features, probes with the other side, and emits
/// pairs within `max_distance`. `residual` optionally filters pairs.
struct SimilarityJoinOptions {
  float max_distance = 0.25f;
  /// Build the index over the right side even if it is larger.
  bool force_index_right = false;
  /// Skip self-pairs (same patch id) — needed for self-joins (q1).
  bool skip_identical_ids = true;
};
Result<std::vector<PatchTuple>> BallTreeSimilarityJoin(
    PatchIterator* left, PatchIterator* right,
    const SimilarityJoinOptions& options, const ExprPtr& residual = nullptr,
    JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> BallTreeSimilarityJoin(
    BatchIterator* left, BatchIterator* right,
    const SimilarityJoinOptions& options, const ExprPtr& residual = nullptr,
    JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> BallTreeSimilarityJoin(
    const PatchCollection& left, const PatchCollection& right,
    const SimilarityJoinOptions& options, const ExprPtr& residual = nullptr,
    JoinStats* stats = nullptr, const MorselOptions& morsels = {});

/// \brief All-pairs similarity join on a Device: computes the full
/// pairwise distance matrix with the device's matching kernel (the GPU /
/// AVX comparison of §7.4.2), then filters by threshold.
Result<std::vector<PatchTuple>> AllPairsSimilarityJoin(
    PatchIterator* left, PatchIterator* right, float max_distance,
    nn::Device* device, const ExprPtr& residual = nullptr,
    JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> AllPairsSimilarityJoin(
    BatchIterator* left, BatchIterator* right, float max_distance,
    nn::Device* device, const ExprPtr& residual = nullptr,
    JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> AllPairsSimilarityJoin(
    const PatchCollection& left, const PatchCollection& right,
    float max_distance,
    nn::Device* device, const ExprPtr& residual = nullptr,
    JoinStats* stats = nullptr);

/// \brief R-Tree spatial join: emits pairs whose bounding boxes intersect
/// (containment/intersection queries of §3.2). Builds the R-Tree over the
/// right side.
Result<std::vector<PatchTuple>> RTreeSpatialJoin(
    PatchIterator* left, PatchIterator* right,
    const ExprPtr& residual = nullptr, JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> RTreeSpatialJoin(
    BatchIterator* left, BatchIterator* right,
    const ExprPtr& residual = nullptr, JoinStats* stats = nullptr);
Result<std::vector<PatchTuple>> RTreeSpatialJoin(
    const PatchCollection& left, const PatchCollection& right,
    const ExprPtr& residual = nullptr, JoinStats* stats = nullptr,
    const MorselOptions& options = {});

}  // namespace deeplens
