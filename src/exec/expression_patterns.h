// Pattern extraction over expression trees, used by the planner to match
// predicates against available indexes (attr == literal → hash/B+Tree
// lookup; attr </<= literal → B+Tree range).
#pragma once

#include <optional>
#include <vector>

#include "exec/expression.h"

namespace deeplens {

/// attr(slot, key) == literal.
struct AttrEqLitPattern {
  size_t slot = 0;
  std::string key;
  MetaValue value;
};

/// lo <= attr <= hi (either bound may be absent).
struct AttrRangePattern {
  size_t slot = 0;
  std::string key;
  std::optional<MetaValue> lo;
  std::optional<MetaValue> hi;
};

/// Splits a predicate into its top-level AND conjuncts.
void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

/// Matches `expr` as attr == literal (either operand order).
std::optional<AttrEqLitPattern> MatchAttrEqLit(const ExprPtr& expr);

/// Matches `expr` as a one-sided comparison of attr vs literal.
std::optional<AttrRangePattern> MatchAttrRange(const ExprPtr& expr);

}  // namespace deeplens
