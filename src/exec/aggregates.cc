#include "exec/aggregates.h"

#include <algorithm>
#include <unordered_set>

#include "index/balltree.h"

namespace deeplens {

Result<uint64_t> CountAll(BatchIterator* it) { return DrainBatches(it); }

Result<uint64_t> CountAll(PatchIterator* it) {
  auto batched = TupleToBatch(it);
  return CountAll(batched.get());
}

Result<uint64_t> CountDistinctKey(BatchIterator* it,
                                  const std::string& key) {
  std::unordered_set<std::string> seen;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto batch, it->Next());
    if (!batch.has_value()) break;
    for (const PatchTuple& tuple : batch->tuples) {
      for (const Patch& p : tuple) {
        seen.insert(p.meta().Get(key).ToIndexKey());
      }
    }
  }
  return static_cast<uint64_t>(seen.size());
}

Result<uint64_t> CountDistinctKey(PatchIterator* it,
                                  const std::string& key) {
  auto batched = TupleToBatch(it);
  return CountDistinctKey(batched.get(), key);
}

Result<std::map<std::string, uint64_t>> GroupByCount(
    BatchIterator* it, const std::string& key) {
  std::map<std::string, uint64_t> groups;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto batch, it->Next());
    if (!batch.has_value()) break;
    for (const PatchTuple& tuple : batch->tuples) {
      if (tuple.empty()) continue;
      const MetaValue& v = tuple[0].meta().Get(key);
      ++groups[v.ToDisplayString()];
    }
  }
  return groups;
}

Result<std::map<std::string, uint64_t>> GroupByCount(
    PatchIterator* it, const std::string& key) {
  auto batched = TupleToBatch(it);
  return GroupByCount(batched.get(), key);
}

Result<std::map<std::string, double>> GroupByMin(
    BatchIterator* it, const std::string& group_key,
    const std::string& value_key) {
  std::map<std::string, double> groups;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto batch, it->Next());
    if (!batch.has_value()) break;
    for (const PatchTuple& tuple : batch->tuples) {
      if (tuple.empty()) continue;
      const Patch& p = tuple[0];
      const MetaValue& g = p.meta().Get(group_key);
      auto num = p.meta().Get(value_key).AsNumeric();
      if (!num.ok()) continue;  // missing/typed-out values don't aggregate
      auto [iter, inserted] =
          groups.emplace(g.ToDisplayString(), num.value());
      if (!inserted) iter->second = std::min(iter->second, num.value());
    }
  }
  return groups;
}

Result<std::map<std::string, double>> GroupByMin(
    PatchIterator* it, const std::string& group_key,
    const std::string& value_key) {
  auto batched = TupleToBatch(it);
  return GroupByMin(batched.get(), group_key, value_key);
}

namespace {

// Union-find over cluster ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

namespace {

Result<DedupResult> SimilarityDedupCore(PatchCollection patches,
                                        const DedupOptions& options);

}  // namespace

Result<DedupResult> SimilarityDedup(PatchIterator* it,
                                    const DedupOptions& options) {
  DL_ASSIGN_OR_RETURN(PatchCollection patches, CollectPatches(it));
  return SimilarityDedupCore(std::move(patches), options);
}

Result<DedupResult> SimilarityDedup(BatchIterator* it,
                                    const DedupOptions& options) {
  DL_ASSIGN_OR_RETURN(PatchCollection patches, CollectBatchPatches(it));
  return SimilarityDedupCore(std::move(patches), options);
}

namespace {

Result<DedupResult> SimilarityDedupCore(PatchCollection patches,
                                        const DedupOptions& options) {
  DedupResult result;
  if (patches.empty()) return result;

  size_t dim = 0;
  for (const Patch& p : patches) {
    if (!p.has_features()) {
      return Status::InvalidArgument(
          "SimilarityDedup requires featurized patches");
    }
    const size_t d = static_cast<size_t>(p.features().size());
    if (dim == 0) dim = d;
    if (d != dim) {
      return Status::InvalidArgument(
          "SimilarityDedup: inconsistent feature dimensionality");
    }
  }

  UnionFind uf(patches.size());
  if (options.strategy == DedupOptions::Strategy::kBallTree) {
    std::vector<float> points(patches.size() * dim);
    for (size_t i = 0; i < patches.size(); ++i) {
      const float* f = patches[i].features().data();
      std::copy(f, f + dim,
                points.begin() + static_cast<ptrdiff_t>(i * dim));
    }
    BallTree tree;
    DL_RETURN_NOT_OK(tree.Build(std::move(points), dim, {}));
    std::vector<RowId> matches;
    for (size_t i = 0; i < patches.size(); ++i) {
      matches.clear();
      tree.RangeSearch(patches[i].features().data(), options.max_distance,
                       &matches);
      for (RowId r : matches) {
        if (static_cast<size_t>(r) != i) uf.Union(i, static_cast<size_t>(r));
      }
    }
    result.pairs_examined = tree.distance_evals();
  } else {
    nn::Device* device =
        options.device != nullptr
            ? options.device
            : nn::GetDevice(nn::DeviceKind::kCpuVector);
    std::vector<float> pts(patches.size() * dim);
    for (size_t i = 0; i < patches.size(); ++i) {
      const float* f = patches[i].features().data();
      std::copy(f, f + dim, pts.begin() + static_cast<ptrdiff_t>(i * dim));
    }
    std::vector<float> d2(patches.size() * patches.size());
    device->PairwiseL2Squared(pts.data(), patches.size(), pts.data(),
                              patches.size(), dim, d2.data());
    const float t2 = options.max_distance * options.max_distance;
    for (size_t i = 0; i < patches.size(); ++i) {
      for (size_t j = i + 1; j < patches.size(); ++j) {
        if (d2[i * patches.size() + j] <= t2) uf.Union(i, j);
      }
    }
    result.pairs_examined = patches.size() * patches.size();
  }

  std::unordered_set<size_t> roots;
  result.cluster_of.resize(patches.size());
  for (size_t i = 0; i < patches.size(); ++i) {
    const size_t root = uf.Find(i);
    result.cluster_of[i] = static_cast<uint32_t>(root);
    if (roots.insert(root).second) {
      result.representatives.push_back(patches[i]);
    }
  }
  result.num_clusters = roots.size();
  return result;
}

}  // namespace

namespace {

std::vector<PatchTuple> SortTuplesByKey(std::vector<PatchTuple> tuples,
                                        const std::string& key) {
  std::stable_sort(tuples.begin(), tuples.end(),
                   [&key](const PatchTuple& a, const PatchTuple& b) {
                     if (a.empty() || b.empty()) return b.empty() < a.empty();
                     return a[0].meta().Get(key) < b[0].meta().Get(key);
                   });
  return tuples;
}

}  // namespace

Result<std::vector<PatchTuple>> SortByKey(PatchIterator* it,
                                          const std::string& key) {
  DL_ASSIGN_OR_RETURN(std::vector<PatchTuple> tuples, Collect(it));
  return SortTuplesByKey(std::move(tuples), key);
}

Result<std::vector<PatchTuple>> SortByKey(BatchIterator* it,
                                          const std::string& key) {
  DL_ASSIGN_OR_RETURN(std::vector<PatchTuple> tuples, CollectBatches(it));
  return SortTuplesByKey(std::move(tuples), key);
}

}  // namespace deeplens
