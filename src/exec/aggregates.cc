#include "exec/aggregates.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.h"
#include "exec/radix.h"
#include "index/balltree.h"

namespace deeplens {

Result<uint64_t> CountAll(BatchIterator* it) { return DrainBatches(it); }

Result<uint64_t> CountAll(PatchIterator* it) {
  auto batched = TupleToBatch(it);
  return CountAll(batched.get());
}

Result<uint64_t> CountDistinctKey(BatchIterator* it,
                                  const std::string& key) {
  std::unordered_set<std::string> seen;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto batch, it->Next());
    if (!batch.has_value()) break;
    for (const PatchTuple& tuple : batch->tuples) {
      for (const Patch& p : tuple) {
        seen.insert(p.meta().Get(key).ToIndexKey());
      }
    }
  }
  return static_cast<uint64_t>(seen.size());
}

Result<uint64_t> CountDistinctKey(PatchIterator* it,
                                  const std::string& key) {
  auto batched = TupleToBatch(it);
  return CountDistinctKey(batched.get(), key);
}

Result<std::map<std::string, uint64_t>> GroupByCount(
    BatchIterator* it, const std::string& key) {
  std::map<std::string, uint64_t> groups;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto batch, it->Next());
    if (!batch.has_value()) break;
    for (const PatchTuple& tuple : batch->tuples) {
      if (tuple.empty()) continue;
      const MetaValue& v = tuple[0].meta().Get(key);
      ++groups[v.ToDisplayString()];
    }
  }
  return groups;
}

Result<std::map<std::string, uint64_t>> GroupByCount(
    PatchIterator* it, const std::string& key) {
  auto batched = TupleToBatch(it);
  return GroupByCount(batched.get(), key);
}

namespace {

// Folds `value` into `slot` under the chosen reduction.
void FoldNumeric(NumericAgg agg, double value, bool fresh, double* slot) {
  switch (agg) {
    case NumericAgg::kSum:
      *slot = fresh ? value : *slot + value;
      break;
    case NumericAgg::kMin:
      *slot = fresh ? value : std::min(*slot, value);
      break;
    case NumericAgg::kMax:
      *slot = fresh ? value : std::max(*slot, value);
      break;
  }
}

}  // namespace

Result<std::map<std::string, double>> GroupByNumeric(
    BatchIterator* it, const std::string& group_key,
    const std::string& value_key, NumericAgg agg) {
  std::map<std::string, double> groups;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto batch, it->Next());
    if (!batch.has_value()) break;
    for (const PatchTuple& tuple : batch->tuples) {
      if (tuple.empty()) continue;
      const Patch& p = tuple[0];
      const MetaValue& g = p.meta().Get(group_key);
      auto num = p.meta().Get(value_key).AsNumeric();
      if (!num.ok()) continue;  // missing/typed-out values don't aggregate
      auto [iter, inserted] = groups.emplace(g.ToDisplayString(), 0.0);
      FoldNumeric(agg, num.value(), inserted, &iter->second);
    }
  }
  return groups;
}

Result<std::map<std::string, double>> GroupByNumeric(
    PatchIterator* it, const std::string& group_key,
    const std::string& value_key, NumericAgg agg) {
  auto batched = TupleToBatch(it);
  return GroupByNumeric(batched.get(), group_key, value_key, agg);
}

Result<std::map<std::string, double>> GroupByMin(
    BatchIterator* it, const std::string& group_key,
    const std::string& value_key) {
  return GroupByNumeric(it, group_key, value_key, NumericAgg::kMin);
}

Result<std::map<std::string, double>> GroupByMin(
    PatchIterator* it, const std::string& group_key,
    const std::string& value_key) {
  auto batched = TupleToBatch(it);
  return GroupByMin(batched.get(), group_key, value_key);
}

Result<std::map<std::string, double>> GroupByMax(
    BatchIterator* it, const std::string& group_key,
    const std::string& value_key) {
  return GroupByNumeric(it, group_key, value_key, NumericAgg::kMax);
}

Result<std::map<std::string, double>> GroupBySum(
    BatchIterator* it, const std::string& group_key,
    const std::string& value_key) {
  return GroupByNumeric(it, group_key, value_key, NumericAgg::kSum);
}

// --- Pre-merge parallel aggregation ----------------------------------------

namespace {

// Morsel-parallel scan driver for aggregation: evaluates `predicate`
// against [lo, hi) of the source rows in place and calls
// update(&partials[m], row_index) for every surviving row, in row order
// within each morsel. Partials are indexed by morsel, so callers combine
// them deterministically in morsel order. `update` stays a deduced
// template parameter so the per-row call inlines (it sits in the hottest
// aggregation loop).
template <typename Partial, typename UpdateFn>
Result<std::vector<Partial>> AggregateMorsels(const PatchCollection& rows,
                                              const ExprPtr& predicate,
                                              const MorselOptions& options,
                                              const UpdateFn& update) {
  const CompiledPredicate compiled(predicate);
  const MorselPlan plan = PlanMorsels(rows.size(), options);
  std::vector<Partial> partials(plan.num_morsels);
  DL_RETURN_NOT_OK(DispatchMorsels(
      rows.size(), plan, [&](size_t m, size_t lo, size_t hi) -> Status {
        Partial* partial = &partials[m];
        if (compiled.always_true()) {
          for (size_t i = lo; i < hi; ++i) update(partial, i);
          return Status::OK();
        }
        std::vector<uint8_t> selection(hi - lo);
        DL_RETURN_NOT_OK(compiled.EvalPatchRows(rows.data() + lo, hi - lo,
                                                selection.data()));
        for (size_t i = 0; i < hi - lo; ++i) {
          if (selection[i]) update(partial, lo + i);
        }
        return Status::OK();
      }));
  return partials;
}

// Below this many partial entries (summed across morsels) the single
// merge loop is faster than partitioning it; the gate keeps the tiny
// group-count cases (a handful of labels) on the serial merge.
constexpr size_t kPartitionedMergeMinEntries = 4096;

// Partition-wise parallel merge of per-morsel hash-table partials: group
// keys are scattered into hash partitions (each group lands wholly in one
// partition), then every partition folds its groups across morsels *in
// morsel order* — exactly the serial merge's fold order per group, so
// floating-point sums stay bit-identical. `fold(slot, fresh, value)`
// combines one partial value into the group's slot.
template <typename V, typename FoldFn>
Result<std::map<std::string, V>> MergeGroupPartials(
    const std::vector<std::unordered_map<std::string, V>>& partials,
    const MorselOptions& options, const FoldFn& fold) {
  size_t entries = 0;
  for (const auto& partial : partials) entries += partial.size();
  const size_t workers = ResolveMorselWorkers(options);
  if (workers <= 1 || ThreadPool::InWorker() ||
      entries < kPartitionedMergeMinEntries) {
    std::map<std::string, V> groups;
    for (const auto& partial : partials) {
      for (const auto& [group, value] : partial) {
        auto [iter, inserted] = groups.emplace(group, V{});
        fold(&iter->second, inserted, value);
      }
    }
    return groups;
  }

  size_t log2_parts = 0;
  while ((size_t{1} << log2_parts) < workers * 2 && log2_parts < 6) {
    ++log2_parts;
  }
  const size_t num_parts = size_t{1} << log2_parts;

  // Scatter each morsel's entries into per-partition buckets (parallel
  // over morsels)...
  std::vector<std::vector<std::vector<std::pair<std::string, V>>>> buckets(
      partials.size());
  DL_RETURN_NOT_OK(DispatchMorsels(
      partials.size(), PlanUnitTasks(partials.size(), options),
      [&](size_t, size_t lo, size_t hi) -> Status {
        for (size_t m = lo; m < hi; ++m) {
          buckets[m].resize(num_parts);
          for (const auto& [group, value] : partials[m]) {
            const size_t p =
                RadixPartitionOf(RadixHashKey(group), log2_parts);
            buckets[m][p].emplace_back(group, value);
          }
        }
        return Status::OK();
      }));

  // ...then fold each partition across morsels in morsel order (parallel
  // over partitions; zero shared state).
  std::vector<std::map<std::string, V>> part_groups(num_parts);
  DL_RETURN_NOT_OK(DispatchMorsels(
      num_parts, PlanUnitTasks(num_parts, options),
      [&](size_t, size_t lo, size_t hi) -> Status {
        for (size_t p = lo; p < hi; ++p) {
          std::map<std::string, V>& groups = part_groups[p];
          for (auto& morsel : buckets) {
            for (auto& [group, value] : morsel[p]) {
              auto [iter, inserted] = groups.emplace(std::move(group), V{});
              fold(&iter->second, inserted, value);
            }
          }
        }
        return Status::OK();
      }));

  std::map<std::string, V> groups;
  for (std::map<std::string, V>& part : part_groups) {
    groups.merge(part);
  }
  return groups;
}

}  // namespace

Result<uint64_t> ParallelCount(const PatchCollection& rows,
                               const ExprPtr& predicate,
                               const MorselOptions& options) {
  DL_ASSIGN_OR_RETURN(
      std::vector<uint64_t> partials,
      (AggregateMorsels<uint64_t>(
          rows, predicate, options,
          [](uint64_t* count, size_t) { ++*count; })));
  uint64_t total = 0;
  for (uint64_t c : partials) total += c;
  return total;
}

Result<uint64_t> ParallelCountDistinctKey(const PatchCollection& rows,
                                          const std::string& key,
                                          const ExprPtr& predicate,
                                          const MorselOptions& options) {
  using Partial = std::unordered_set<std::string>;
  DL_ASSIGN_OR_RETURN(
      std::vector<Partial> partials,
      (AggregateMorsels<Partial>(rows, predicate, options,
                                 [&](Partial* seen, size_t i) {
                                   seen->insert(
                                       rows[i].meta().Get(key).ToIndexKey());
                                 })));
  size_t entries = 0;
  for (const Partial& partial : partials) entries += partial.size();
  const size_t workers = ResolveMorselWorkers(options);
  if (workers <= 1 || ThreadPool::InWorker() ||
      entries < kPartitionedMergeMinEntries) {
    std::unordered_set<std::string> seen;
    for (Partial& partial : partials) {
      seen.merge(partial);
    }
    return static_cast<uint64_t>(seen.size());
  }
  // Partition-wise distinct union: every key lands in exactly one hash
  // partition, so per-partition set sizes sum to the global count.
  size_t log2_parts = 0;
  while ((size_t{1} << log2_parts) < workers * 2 && log2_parts < 6) {
    ++log2_parts;
  }
  const size_t num_parts = size_t{1} << log2_parts;
  std::vector<std::vector<std::vector<std::string>>> buckets(partials.size());
  DL_RETURN_NOT_OK(DispatchMorsels(
      partials.size(), PlanUnitTasks(partials.size(), options),
      [&](size_t, size_t lo, size_t hi) -> Status {
        for (size_t m = lo; m < hi; ++m) {
          buckets[m].resize(num_parts);
          for (const std::string& k : partials[m]) {
            buckets[m][RadixPartitionOf(RadixHashKey(k), log2_parts)]
                .push_back(k);
          }
        }
        return Status::OK();
      }));
  std::vector<uint64_t> part_counts(num_parts, 0);
  DL_RETURN_NOT_OK(DispatchMorsels(
      num_parts, PlanUnitTasks(num_parts, options),
      [&](size_t, size_t lo, size_t hi) -> Status {
        for (size_t p = lo; p < hi; ++p) {
          std::unordered_set<std::string> seen;
          for (auto& morsel : buckets) {
            for (std::string& k : morsel[p]) seen.insert(std::move(k));
          }
          part_counts[p] = seen.size();
        }
        return Status::OK();
      }));
  uint64_t total = 0;
  for (uint64_t c : part_counts) total += c;
  return total;
}

Result<std::map<std::string, uint64_t>> ParallelGroupByCount(
    const PatchCollection& rows, const std::string& key,
    const ExprPtr& predicate, const MorselOptions& options) {
  using Partial = std::unordered_map<std::string, uint64_t>;
  DL_ASSIGN_OR_RETURN(
      std::vector<Partial> partials,
      (AggregateMorsels<Partial>(
          rows, predicate, options, [&](Partial* groups, size_t i) {
            ++(*groups)[rows[i].meta().Get(key).ToDisplayString()];
          })));
  return MergeGroupPartials<uint64_t>(
      partials, options,
      [](uint64_t* slot, bool, uint64_t count) { *slot += count; });
}

Result<std::map<std::string, double>> ParallelGroupByNumeric(
    const PatchCollection& rows, const std::string& group_key,
    const std::string& value_key, NumericAgg agg, const ExprPtr& predicate,
    const MorselOptions& options) {
  using Partial = std::unordered_map<std::string, double>;
  DL_ASSIGN_OR_RETURN(
      std::vector<Partial> partials,
      (AggregateMorsels<Partial>(
          rows, predicate, options, [&](Partial* groups, size_t i) {
            const Patch& p = rows[i];
            auto num = p.meta().Get(value_key).AsNumeric();
            if (!num.ok()) return;  // non-numeric values don't aggregate
            auto [iter, inserted] = groups->emplace(
                p.meta().Get(group_key).ToDisplayString(), 0.0);
            FoldNumeric(agg, num.value(), inserted, &iter->second);
          })));
  return MergeGroupPartials<double>(
      partials, options, [agg](double* slot, bool fresh, double value) {
        FoldNumeric(agg, value, fresh, slot);
      });
}

Result<std::optional<Patch>> ParallelMinBy(const PatchCollection& rows,
                                           const std::string& order_key,
                                           const ExprPtr& predicate,
                                           const MorselOptions& options) {
  struct Partial {
    bool has = false;
    MetaValue key;
    size_t row = 0;
  };
  DL_ASSIGN_OR_RETURN(
      std::vector<Partial> partials,
      (AggregateMorsels<Partial>(
          rows, predicate, options, [&](Partial* best, size_t i) {
            const MetaValue& k = rows[i].meta().Get(order_key);
            // Strict less keeps the earliest row per morsel; rows are
            // visited in input order within a morsel.
            if (!best->has || k.Compare(best->key) < 0) {
              best->has = true;
              best->key = k;
              best->row = i;
            }
          })));
  const Partial* best = nullptr;
  for (const Partial& partial : partials) {
    // Morsels are combined in index order, so on ties the earlier
    // (lower-row) morsel wins — exactly the serial scan's answer.
    if (!partial.has) continue;
    if (best == nullptr || partial.key.Compare(best->key) < 0) {
      best = &partial;
    }
  }
  if (best == nullptr) return std::optional<Patch>();
  return std::optional<Patch>(rows[best->row]);
}

namespace {

// Union-find over cluster ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

namespace {

Result<DedupResult> SimilarityDedupCore(PatchCollection patches,
                                        const DedupOptions& options);

}  // namespace

Result<DedupResult> SimilarityDedup(PatchIterator* it,
                                    const DedupOptions& options) {
  DL_ASSIGN_OR_RETURN(PatchCollection patches, CollectPatches(it));
  return SimilarityDedupCore(std::move(patches), options);
}

Result<DedupResult> SimilarityDedup(BatchIterator* it,
                                    const DedupOptions& options) {
  DL_ASSIGN_OR_RETURN(PatchCollection patches, CollectBatchPatches(it));
  return SimilarityDedupCore(std::move(patches), options);
}

namespace {

Result<DedupResult> SimilarityDedupCore(PatchCollection patches,
                                        const DedupOptions& options) {
  DedupResult result;
  if (patches.empty()) return result;

  size_t dim = 0;
  for (const Patch& p : patches) {
    if (!p.has_features()) {
      return Status::InvalidArgument(
          "SimilarityDedup requires featurized patches");
    }
    const size_t d = static_cast<size_t>(p.features().size());
    if (dim == 0) dim = d;
    if (d != dim) {
      return Status::InvalidArgument(
          "SimilarityDedup: inconsistent feature dimensionality");
    }
  }

  UnionFind uf(patches.size());
  if (options.strategy == DedupOptions::Strategy::kBallTree) {
    std::vector<float> points(patches.size() * dim);
    for (size_t i = 0; i < patches.size(); ++i) {
      const float* f = patches[i].features().data();
      std::copy(f, f + dim,
                points.begin() + static_cast<ptrdiff_t>(i * dim));
    }
    BallTree tree;
    DL_RETURN_NOT_OK(tree.Build(std::move(points), dim, {}));
    std::vector<RowId> matches;
    for (size_t i = 0; i < patches.size(); ++i) {
      matches.clear();
      tree.RangeSearch(patches[i].features().data(), options.max_distance,
                       &matches);
      for (RowId r : matches) {
        if (static_cast<size_t>(r) != i) uf.Union(i, static_cast<size_t>(r));
      }
    }
    result.pairs_examined = tree.distance_evals();
  } else {
    nn::Device* device =
        options.device != nullptr
            ? options.device
            : nn::GetDevice(nn::DeviceKind::kCpuVector);
    std::vector<float> pts(patches.size() * dim);
    for (size_t i = 0; i < patches.size(); ++i) {
      const float* f = patches[i].features().data();
      std::copy(f, f + dim, pts.begin() + static_cast<ptrdiff_t>(i * dim));
    }
    std::vector<float> d2(patches.size() * patches.size());
    device->PairwiseL2Squared(pts.data(), patches.size(), pts.data(),
                              patches.size(), dim, d2.data());
    const float t2 = options.max_distance * options.max_distance;
    for (size_t i = 0; i < patches.size(); ++i) {
      for (size_t j = i + 1; j < patches.size(); ++j) {
        if (d2[i * patches.size() + j] <= t2) uf.Union(i, j);
      }
    }
    result.pairs_examined = patches.size() * patches.size();
  }

  std::unordered_set<size_t> roots;
  result.cluster_of.resize(patches.size());
  for (size_t i = 0; i < patches.size(); ++i) {
    const size_t root = uf.Find(i);
    result.cluster_of[i] = static_cast<uint32_t>(root);
    if (roots.insert(root).second) {
      result.representatives.push_back(patches[i]);
    }
  }
  result.num_clusters = roots.size();
  return result;
}

}  // namespace

namespace {

std::vector<PatchTuple> SortTuplesByKey(std::vector<PatchTuple> tuples,
                                        const std::string& key) {
  std::stable_sort(tuples.begin(), tuples.end(),
                   [&key](const PatchTuple& a, const PatchTuple& b) {
                     if (a.empty() || b.empty()) return b.empty() < a.empty();
                     return a[0].meta().Get(key) < b[0].meta().Get(key);
                   });
  return tuples;
}

}  // namespace

Result<std::vector<PatchTuple>> SortByKey(PatchIterator* it,
                                          const std::string& key) {
  DL_ASSIGN_OR_RETURN(std::vector<PatchTuple> tuples, Collect(it));
  return SortTuplesByKey(std::move(tuples), key);
}

Result<std::vector<PatchTuple>> SortByKey(BatchIterator* it,
                                          const std::string& key) {
  DL_ASSIGN_OR_RETURN(std::vector<PatchTuple> tuples, CollectBatches(it));
  return SortTuplesByKey(std::move(tuples), key);
}

}  // namespace deeplens
