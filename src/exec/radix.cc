#include "exec/radix.h"

#include <algorithm>

#include "common/env.h"

namespace deeplens {

uint64_t RadixHashKey(const std::string& encoded) {
  // FNV-1a, 64-bit.
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : encoded) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t JoinPartitionOverride() {
  // Cap at 2^16: beyond that every partition of any realistic input is
  // empty and the dispatch overhead is pure waste.
  return PowerOfTwoFromEnv("DEEPLENS_JOIN_PARTITIONS", 0, uint64_t{1} << 16);
}

size_t ChooseJoinPartitions(size_t build_rows, size_t workers) {
  size_t parts = 1;
  const size_t target = std::max<size_t>(1, workers * 4);
  while (parts < target && parts < 1024) parts *= 2;
  // Shrink while the average build partition would be tiny: a partition
  // that holds a handful of rows costs more to dispatch than to probe.
  while (parts > 1 && build_rows / parts < 64) parts /= 2;
  return parts;
}

Status RadixPartitionByKey(const PatchCollection& rows,
                           const std::string& key, size_t log2_parts,
                           const MorselOptions& options,
                           RadixPartitions* out) {
  const size_t num_parts = size_t{1} << log2_parts;
  const size_t n = rows.size();
  const MorselPlan plan = PlanMorsels(n, options);

  // Classify morsel-parallel into per-morsel partition buckets...
  std::vector<std::vector<std::vector<RadixRow>>> morsel_parts(
      plan.num_morsels);
  DL_RETURN_NOT_OK(DispatchMorsels(
      n, plan, [&](size_t m, size_t lo, size_t hi) -> Status {
        std::vector<std::vector<RadixRow>>& local = morsel_parts[m];
        local.resize(num_parts);
        for (size_t i = lo; i < hi; ++i) {
          const MetaValue& k = rows[i].meta().Get(key);
          if (k.is_null()) continue;  // SQL equality: NULL never matches
          RadixRow r;
          r.row = static_cast<uint32_t>(i);
          r.key = k.ToIndexKey();
          r.hash = RadixHashKey(r.key);
          local[RadixPartitionOf(r.hash, log2_parts)].push_back(
              std::move(r));
        }
        return Status::OK();
      }));

  // ...then concatenate each partition across morsels in morsel order, so
  // every partition holds its rows in ascending source-row order. Each
  // partition is an independent unit, so this pass parallelizes too.
  out->parts.assign(num_parts, {});
  const MorselPlan merge_plan = PlanUnitTasks(num_parts, options);
  DL_RETURN_NOT_OK(DispatchMorsels(
      num_parts, merge_plan, [&](size_t, size_t lo, size_t hi) -> Status {
        for (size_t p = lo; p < hi; ++p) {
          size_t total = 0;
          for (const auto& local : morsel_parts) total += local[p].size();
          std::vector<RadixRow>& part = out->parts[p];
          part.reserve(total);
          for (auto& local : morsel_parts) {
            for (RadixRow& r : local[p]) part.push_back(std::move(r));
          }
        }
        return Status::OK();
      }));

  out->rows_kept = 0;
  out->max_partition = 0;
  for (const auto& part : out->parts) {
    out->rows_kept += part.size();
    out->max_partition = std::max(out->max_partition, part.size());
  }
  return Status::OK();
}

void LocalKeyTable::Build(const std::vector<RadixRow>& rows) {
  rows_ = &rows;
  size_t buckets = 1;
  while (buckets < rows.size()) buckets *= 2;
  mask_ = buckets - 1;
  heads_.assign(buckets, -1);
  next_.assign(rows.size(), -1);
  // Head-insertion reverses chain order, so insert in descending row
  // order: chains then read ascending, which is the order Lookup must
  // return (each probe row's matches right-ascending).
  for (size_t i = rows.size(); i-- > 0;) {
    const size_t b = static_cast<size_t>(rows[i].hash) & mask_;
    next_[i] = heads_[b];
    heads_[b] = static_cast<int32_t>(i);
  }
}

void LocalKeyTable::Lookup(uint64_t hash, const std::string& key,
                           std::vector<uint32_t>* out) const {
  if (rows_ == nullptr || rows_->empty()) return;
  const std::vector<RadixRow>& rows = *rows_;
  for (int32_t i = heads_[static_cast<size_t>(hash) & mask_]; i >= 0;
       i = next_[static_cast<size_t>(i)]) {
    const RadixRow& r = rows[static_cast<size_t>(i)];
    if (r.hash == hash && r.key == key) out->push_back(r.row);
  }
}

}  // namespace deeplens
