#include "exec/joins.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_map>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "exec/radix.h"

namespace deeplens {

namespace {

PatchTuple Concat(const Patch& a, const Patch& b) {
  PatchTuple t;
  t.reserve(2);
  t.push_back(a);
  t.push_back(b);
  return t;
}

// Gathers the feature matrix of a collection; fails if any patch lacks
// features or dimensions disagree.
Result<size_t> FeatureDim(const PatchCollection& patches) {
  size_t dim = 0;
  for (const Patch& p : patches) {
    if (!p.has_features()) {
      return Status::InvalidArgument(
          "similarity join requires featurized patches (run a Transformer "
          "first)");
    }
    const size_t d = static_cast<size_t>(p.features().size());
    if (dim == 0) {
      dim = d;
    } else if (dim != d) {
      return Status::InvalidArgument(
          "similarity join: inconsistent feature dimensionality");
    }
  }
  return dim;
}

// Accumulates candidate pair tuples and flushes them through a compiled
// predicate batch-at-a-time, keeping only passing tuples in `out`.
class PairBatcher {
 public:
  PairBatcher(const CompiledPredicate* predicate,
              std::vector<PatchTuple>* out)
      : predicate_(predicate), out_(out) {}

  Status Add(PatchTuple tuple) {
    pending_.push_back(std::move(tuple));
    if (pending_.size() >= kDefaultBatchSize) return Flush();
    return Status::OK();
  }

  Status Flush() {
    if (pending_.empty()) return Status::OK();
    const size_t n = pending_.size();
    selection_.resize(n);
    DL_RETURN_NOT_OK(
        predicate_->EvalTupleRows(pending_.data(), n, selection_.data()));
    for (size_t i = 0; i < n; ++i) {
      if (selection_[i]) out_->push_back(std::move(pending_[i]));
    }
    pending_.clear();
    return Status::OK();
  }

 private:
  const CompiledPredicate* predicate_;
  std::vector<PatchTuple>* out_;
  std::vector<PatchTuple> pending_;
  std::vector<uint8_t> selection_;
};

// Concatenates per-morsel outputs in morsel-index order — the ordered
// merge restoring probe order after a parallel dispatch.
std::vector<PatchTuple> MergePartials(
    std::vector<std::vector<PatchTuple>>* partials) {
  std::vector<PatchTuple> out;
  size_t total = 0;
  for (const auto& partial : *partials) total += partial.size();
  out.reserve(total);
  for (auto& partial : *partials) {
    for (PatchTuple& t : partial) out.push_back(std::move(t));
  }
  return out;
}

// Morsel-parallel probe driver shared by the join cores. `probe_row` is
// called for every probe-side row, in row order within a morsel, and adds
// candidate tuples to the morsel's PairBatcher (which applies the residual
// batch-wise). Per-morsel outputs are merged in morsel order, so the
// result is byte-identical to running the same probes serially.
Result<std::vector<PatchTuple>> MorselProbeJoin(
    size_t probe_rows, const CompiledPredicate& residual,
    const MorselOptions& options, uint64_t* pairs_examined,
    const std::function<Status(size_t, std::vector<RowId>*, PairBatcher*,
                               uint64_t*)>& probe_row) {
  const MorselPlan plan = PlanMorsels(probe_rows, options);
  std::vector<std::vector<PatchTuple>> partials(plan.num_morsels);
  std::atomic<uint64_t> examined{0};
  DL_RETURN_NOT_OK(DispatchMorsels(
      probe_rows, plan, [&](size_t m, size_t lo, size_t hi) -> Status {
        PairBatcher batcher(&residual, &partials[m]);
        std::vector<RowId> matches;  // per-worker probe scratch
        uint64_t local = 0;
        for (size_t i = lo; i < hi; ++i) {
          DL_RETURN_NOT_OK(probe_row(i, &matches, &batcher, &local));
        }
        DL_RETURN_NOT_OK(batcher.Flush());
        examined.fetch_add(local, std::memory_order_relaxed);
        return Status::OK();
      }));
  if (pairs_examined != nullptr) {
    *pairs_examined = examined.load(std::memory_order_relaxed);
  }
  return MergePartials(&partials);
}

// Materializes (left_row, right_row) candidate pairs as concatenated
// tuples and applies the residual, morsel-parallel over the pair list with
// ordered merge. Used by join paths that cannot emit during the probe
// (e.g. a hash join that probed with the right side and re-sorted pairs
// into canonical left-major order).
Result<std::vector<PatchTuple>> EmitPairsParallel(
    const PatchCollection& lhs, const PatchCollection& rhs,
    const std::vector<std::pair<size_t, size_t>>& pairs,
    const CompiledPredicate& residual, const MorselOptions& options) {
  const MorselPlan plan = PlanMorsels(pairs.size(), options);
  std::vector<std::vector<PatchTuple>> partials(plan.num_morsels);
  DL_RETURN_NOT_OK(DispatchMorsels(
      pairs.size(), plan, [&](size_t m, size_t lo, size_t hi) -> Status {
        PairBatcher batcher(&residual, &partials[m]);
        for (size_t i = lo; i < hi; ++i) {
          DL_RETURN_NOT_OK(batcher.Add(
              Concat(lhs[pairs[i].first], rhs[pairs[i].second])));
        }
        return batcher.Flush();
      }));
  return MergePartials(&partials);
}

// --- Radix hash-join core ---------------------------------------------------

// Below this combined input size the partition pass costs more than the
// shared-build core's whole run; the radix path is only entered above it
// (or when DEEPLENS_JOIN_PARTITIONS explicitly forces it).
constexpr size_t kRadixMinRows = 4096;

// One schedulable slice of a partition's probe rows. Build work is
// per-partition, but probe parallelism is chunk-level so a single hot
// partition (key skew) doesn't serialize the whole pass.
struct ProbeChunk {
  uint32_t part = 0;
  uint32_t lo = 0;
  uint32_t hi = 0;
};

Result<std::vector<PatchTuple>> RadixHashJoin(
    const PatchCollection& lhs, const PatchCollection& rhs,
    const std::string& key, const CompiledPredicate& residual,
    size_t num_parts, JoinStats* stats, const MorselOptions& options) {
  const bool build_right = rhs.size() <= lhs.size();
  const PatchCollection& build = build_right ? rhs : lhs;
  const PatchCollection& probe = build_right ? lhs : rhs;

  size_t log2_parts = 0;
  while ((size_t{1} << log2_parts) < num_parts) ++log2_parts;
  num_parts = size_t{1} << log2_parts;

  // Phase 1: partition both inputs by key hash (morsel-parallel; NULL
  // keys dropped). Keys are encoded and hashed exactly once here — the
  // build and probe phases below reuse RadixRow::hash/key.
  Stopwatch partition_timer;
  RadixPartitions build_parts;
  RadixPartitions probe_parts;
  DL_RETURN_NOT_OK(
      RadixPartitionByKey(build, key, log2_parts, options, &build_parts));
  DL_RETURN_NOT_OK(
      RadixPartitionByKey(probe, key, log2_parts, options, &probe_parts));
  const double partition_ms = partition_timer.ElapsedMillis();

  // Phase 2: per-partition local tables, zero shared state.
  Stopwatch build_timer;
  std::vector<LocalKeyTable> tables(num_parts);
  DL_RETURN_NOT_OK(DispatchMorsels(
      num_parts, PlanUnitTasks(num_parts, options),
      [&](size_t, size_t lo, size_t hi) -> Status {
        for (size_t p = lo; p < hi; ++p) tables[p].Build(build_parts.parts[p]);
        return Status::OK();
      }));
  const double build_ms = build_timer.ElapsedMillis();

  // Phase 3: chunked probe. Within a chunk, probe rows ascend and each
  // row's matches ascend, so chunk outputs concatenated in (partition,
  // chunk) order list every left row's survivors in right-ascending
  // order — which is all the stitch below needs.
  Stopwatch probe_timer;
  const size_t workers = ResolveMorselWorkers(options);
  const size_t chunk_rows =
      std::max<size_t>(kDefaultBatchSize,
                       (probe_parts.rows_kept + workers * 16 - 1) /
                           std::max<size_t>(1, workers * 16));
  std::vector<ProbeChunk> chunks;  // canonical (partition, chunk) order
  for (size_t p = 0; p < num_parts; ++p) {
    const size_t rows = probe_parts.parts[p].size();
    for (size_t lo = 0; lo < rows; lo += chunk_rows) {
      chunks.push_back(ProbeChunk{static_cast<uint32_t>(p),
                                  static_cast<uint32_t>(lo),
                                  static_cast<uint32_t>(
                                      std::min(rows, lo + chunk_rows))});
    }
  }
  // Dispatch order interleaves partitions round-robin (every partition's
  // first chunk, then every second chunk, ...): the pool schedules
  // contiguous task ranges statically, so a skewed partition's chunks
  // must not sit next to each other or one worker inherits the whole hot
  // key range. Output slots stay canonical — scheduling order can't
  // affect results.
  std::vector<uint32_t> dispatch(chunks.size());
  for (uint32_t i = 0; i < chunks.size(); ++i) dispatch[i] = i;
  std::stable_sort(dispatch.begin(), dispatch.end(),
                   [&](uint32_t a, uint32_t b) {
                     return chunks[a].lo / chunk_rows <
                            chunks[b].lo / chunk_rows;
                   });

  struct ChunkOut {
    std::vector<PatchTuple> tuples;
    std::vector<uint32_t> left_rows;  // left row id per surviving tuple
  };
  std::vector<ChunkOut> outs(chunks.size());
  std::atomic<uint64_t> examined{0};
  const bool no_residual = residual.always_true();
  DL_RETURN_NOT_OK(DispatchMorsels(
      chunks.size(), PlanUnitTasks(chunks.size(), options),
      [&](size_t, size_t task_lo, size_t task_hi) -> Status {
        std::vector<uint32_t> matches;
        // Residual scratch: a 2-slot tuple whose patches are *assigned*
        // per candidate rather than constructed, so a failing pair never
        // pays tuple materialization — only the survivors are Concat'd.
        PatchTuple scratch(2);
        uint64_t local = 0;
        for (size_t t = task_lo; t < task_hi; ++t) {
          const size_t c = dispatch[t];
          const ProbeChunk& chunk = chunks[c];
          ChunkOut& out = outs[c];
          const std::vector<RadixRow>& rows = probe_parts.parts[chunk.part];
          const LocalKeyTable& table = tables[chunk.part];
          for (size_t i = chunk.lo; i < chunk.hi; ++i) {
            const RadixRow& pr = rows[i];
            matches.clear();
            table.Lookup(pr.hash, pr.key, &matches);
            if (matches.empty()) continue;
            const size_t probe_row = pr.row;
            if (!no_residual) {
              scratch[build_right ? 0 : 1] = probe[probe_row];
            }
            for (uint32_t b : matches) {
              ++local;
              const size_t l = build_right ? probe_row : b;
              const size_t r = build_right ? b : probe_row;
              if (!no_residual) {
                scratch[build_right ? 1 : 0] = build[b];
                DL_ASSIGN_OR_RETURN(bool pass, residual.EvalOne(scratch));
                if (!pass) continue;
              }
              out.tuples.push_back(Concat(lhs[l], rhs[r]));
              out.left_rows.push_back(static_cast<uint32_t>(l));
            }
          }
        }
        examined.fetch_add(local, std::memory_order_relaxed);
        return Status::OK();
      }));
  const double probe_ms = probe_timer.ElapsedMillis();

  // Phase 4: stitch back to canonical left-major order without a sort.
  // Every left row's matches live in exactly one partition (its key
  // hashes to one partition; NULL keys joined nothing), and they appear
  // right-ascending across that partition's chunks — so counting
  // survivors per left row, prefix-summing, and scattering chunk outputs
  // in (partition, chunk) order reproduces the exact serial output in
  // O(|lhs| + |output|).
  Stopwatch merge_timer;
  size_t total = 0;
  for (const ChunkOut& o : outs) total += o.tuples.size();
  std::vector<size_t> offsets(lhs.size() + 1, 0);
  for (const ChunkOut& o : outs) {
    for (uint32_t l : o.left_rows) ++offsets[l + 1];
  }
  for (size_t i = 1; i <= lhs.size(); ++i) offsets[i] += offsets[i - 1];
  std::vector<PatchTuple> result(total);
  for (ChunkOut& o : outs) {
    for (size_t i = 0; i < o.tuples.size(); ++i) {
      result[offsets[o.left_rows[i]]++] = std::move(o.tuples[i]);
    }
  }
  const double merge_ms = merge_timer.ElapsedMillis();

  if (stats != nullptr) {
    stats->pairs_examined = examined.load(std::memory_order_relaxed);
    stats->tuples_emitted = result.size();
    stats->index_build_millis = build_ms;
    stats->partition_millis = partition_ms;
    stats->probe_millis = probe_ms;
    stats->merge_millis = merge_ms;
    stats->partitions_used = num_parts;
    const double avg =
        static_cast<double>(build_parts.rows_kept + probe_parts.rows_kept) /
        static_cast<double>(num_parts);
    if (avg > 0) {
      size_t max_rows = 0;
      for (size_t p = 0; p < num_parts; ++p) {
        max_rows = std::max(max_rows, build_parts.parts[p].size() +
                                          probe_parts.parts[p].size());
      }
      stats->max_partition_skew = static_cast<double>(max_rows) / avg;
    }
  }
  return result;
}

}  // namespace

// --- Nested-loop ------------------------------------------------------------

Result<std::vector<PatchTuple>> NestedLoopJoin(const PatchCollection& lhs,
                                               const PatchCollection& rhs,
                                               const ExprPtr& predicate,
                                               JoinStats* stats,
                                               const MorselOptions& options) {
  const CompiledPredicate compiled(predicate);
  uint64_t examined = 0;
  DL_ASSIGN_OR_RETURN(
      std::vector<PatchTuple> out,
      MorselProbeJoin(lhs.size(), compiled, options, &examined,
                      [&](size_t i, std::vector<RowId>*, PairBatcher* batcher,
                          uint64_t* local) -> Status {
                        for (const Patch& b : rhs) {
                          ++*local;
                          DL_RETURN_NOT_OK(batcher->Add(Concat(lhs[i], b)));
                        }
                        return Status::OK();
                      }));
  if (stats != nullptr) {
    stats->pairs_examined = examined;
    stats->tuples_emitted = out.size();
  }
  return out;
}

Result<std::vector<PatchTuple>> NestedLoopJoin(PatchIterator* left,
                                               PatchIterator* right,
                                               const ExprPtr& predicate,
                                               JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectPatches(right));
  return NestedLoopJoin(std::move(lhs), std::move(rhs), predicate, stats);
}

Result<std::vector<PatchTuple>> NestedLoopJoin(BatchIterator* left,
                                               BatchIterator* right,
                                               const ExprPtr& predicate,
                                               JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectBatchPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectBatchPatches(right));
  return NestedLoopJoin(std::move(lhs), std::move(rhs), predicate, stats);
}

// --- Hash equality ----------------------------------------------------------

Result<std::vector<PatchTuple>> HashEqualityJoin(const PatchCollection& lhs,
                                                 const PatchCollection& rhs,
                                                 const std::string& key,
                                                 const ExprPtr& residual,
                                                 JoinStats* stats,
                                                 const MorselOptions& options) {
  const CompiledPredicate compiled(residual);

  // The radix core wins when the probe work is large enough to amortize
  // its partition pass; the shared-build core below stays the serial /
  // small-join path. An explicit DEEPLENS_JOIN_PARTITIONS override forces
  // radix on any parallel plan (the differential tests rely on this to
  // exercise it at small sizes).
  const size_t workers = ResolveMorselWorkers(options);
  const uint64_t part_override = JoinPartitionOverride();
  const bool parallel_plan = workers > 1 && !ThreadPool::InWorker();
  if (parallel_plan &&
      (part_override > 0 || lhs.size() + rhs.size() >= kRadixMinRows)) {
    const size_t parts =
        part_override > 0
            ? static_cast<size_t>(part_override)
            : ChooseJoinPartitions(std::min(lhs.size(), rhs.size()), workers);
    return RadixHashJoin(lhs, rhs, key, compiled, parts, stats, options);
  }

  // Single-pass shared build over the smaller input; the larger side is
  // probed morsel-parallel so the parallelism scales with the probe work.
  const bool build_right = rhs.size() <= lhs.size();
  const PatchCollection& build = build_right ? rhs : lhs;

  Stopwatch build_timer;
  HashIndex index;
  for (size_t i = 0; i < build.size(); ++i) {
    const MetaValue& k = build[i].meta().Get(key);
    // SQL equality: NULL keys never match, so they never enter the table
    // — mirroring how Eq(attr, attr) evaluates through the expression
    // engine (null-propagating, EvalBool → false).
    if (k.is_null()) continue;
    index.Insert(Slice(k.ToIndexKey()), static_cast<RowId>(i));
  }
  const double build_ms = build_timer.ElapsedMillis();

  std::vector<PatchTuple> out;
  uint64_t examined = 0;
  if (build_right) {
    // Probing with the left yields canonical order directly: left rows in
    // input order, matches per row in lookup order.
    DL_ASSIGN_OR_RETURN(
        out, MorselProbeJoin(
                 lhs.size(), compiled, options, &examined,
                 [&](size_t i, std::vector<RowId>* matches,
                     PairBatcher* batcher, uint64_t* local) -> Status {
                   const MetaValue& k = lhs[i].meta().Get(key);
                   if (k.is_null()) return Status::OK();
                   matches->clear();
                   index.Lookup(Slice(k.ToIndexKey()), matches);
                   for (RowId r : *matches) {
                     ++*local;
                     DL_RETURN_NOT_OK(batcher->Add(
                         Concat(lhs[i], rhs[static_cast<size_t>(r)])));
                   }
                   return Status::OK();
                 }));
  } else {
    // Built over the left: probe with the right, collect (left, right)
    // row-id pairs per morsel, then restore the canonical left-major
    // order (left ascending, right ascending — lookups return insertion
    // order) before materializing in parallel.
    const MorselPlan plan = PlanMorsels(rhs.size(), options);
    std::vector<std::vector<std::pair<size_t, size_t>>> pair_partials(
        plan.num_morsels);
    DL_RETURN_NOT_OK(DispatchMorsels(
        rhs.size(), plan, [&](size_t m, size_t lo, size_t hi) -> Status {
          std::vector<RowId> matches;
          for (size_t j = lo; j < hi; ++j) {
            const MetaValue& k = rhs[j].meta().Get(key);
            if (k.is_null()) continue;
            matches.clear();
            index.Lookup(Slice(k.ToIndexKey()), &matches);
            for (RowId l : matches) {
              pair_partials[m].emplace_back(static_cast<size_t>(l), j);
            }
          }
          return Status::OK();
        }));
    std::vector<std::pair<size_t, size_t>> pairs;
    for (auto& partial : pair_partials) {
      pairs.insert(pairs.end(), partial.begin(), partial.end());
    }
    std::sort(pairs.begin(), pairs.end());
    examined = pairs.size();
    DL_ASSIGN_OR_RETURN(out,
                        EmitPairsParallel(lhs, rhs, pairs, compiled, options));
  }
  if (stats != nullptr) {
    stats->pairs_examined = examined;
    stats->tuples_emitted = out.size();
    stats->index_build_millis = build_ms;
  }
  return out;
}

Result<std::vector<PatchTuple>> HashEqualityJoin(
    PatchIterator* left, PatchIterator* right, const std::string& key,
    const ExprPtr& residual, JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectPatches(right));
  return HashEqualityJoin(std::move(lhs), std::move(rhs), key, residual,
                          stats);
}

Result<std::vector<PatchTuple>> HashEqualityJoin(
    BatchIterator* left, BatchIterator* right, const std::string& key,
    const ExprPtr& residual, JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectBatchPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectBatchPatches(right));
  return HashEqualityJoin(std::move(lhs), std::move(rhs), key, residual,
                          stats);
}

// --- Ball-tree similarity ---------------------------------------------------

Result<std::vector<PatchTuple>> BallTreeSimilarityJoin(
    const PatchCollection& lhs, const PatchCollection& rhs,
    const SimilarityJoinOptions& options, const ExprPtr& residual,
    JoinStats* stats, const MorselOptions& morsels) {
  // Index the smaller relation (paper §5), probe with the other; emitted
  // tuples always keep (left, right) order.
  const bool index_right =
      options.force_index_right || rhs.size() <= lhs.size();
  const PatchCollection& indexed = index_right ? rhs : lhs;
  const PatchCollection& probes = index_right ? lhs : rhs;

  DL_ASSIGN_OR_RETURN(size_t dim, FeatureDim(indexed));
  DL_ASSIGN_OR_RETURN(size_t probe_dim, FeatureDim(probes));
  if (dim == 0 || probe_dim != dim) {
    return Status::InvalidArgument(
        "similarity join: feature dimensions disagree across relations");
  }

  Stopwatch build_timer;
  std::vector<float> points(indexed.size() * dim);
  for (size_t i = 0; i < indexed.size(); ++i) {
    const float* f = indexed[i].features().data();
    std::copy(f, f + dim, points.begin() + static_cast<ptrdiff_t>(i * dim));
  }
  BallTree tree;
  DL_RETURN_NOT_OK(tree.Build(std::move(points), dim, {}));
  const double build_ms = build_timer.ElapsedMillis();

  const CompiledPredicate compiled(residual);
  DL_ASSIGN_OR_RETURN(
      std::vector<PatchTuple> out,
      MorselProbeJoin(probes.size(), compiled, morsels, nullptr,
                      [&](size_t i, std::vector<RowId>* matches,
                          PairBatcher* batcher, uint64_t*) -> Status {
                        const Patch& probe = probes[i];
                        matches->clear();
                        tree.RangeSearch(probe.features().data(),
                                         options.max_distance, matches);
                        for (RowId r : *matches) {
                          const Patch& hit = indexed[static_cast<size_t>(r)];
                          if (options.skip_identical_ids &&
                              probe.id() == hit.id()) {
                            continue;
                          }
                          DL_RETURN_NOT_OK(
                              batcher->Add(index_right ? Concat(probe, hit)
                                                       : Concat(hit, probe)));
                        }
                        return Status::OK();
                      }));
  if (stats != nullptr) {
    stats->pairs_examined = tree.distance_evals();
    stats->tuples_emitted = out.size();
    stats->index_build_millis = build_ms;
  }
  return out;
}

Result<std::vector<PatchTuple>> BallTreeSimilarityJoin(
    PatchIterator* left, PatchIterator* right,
    const SimilarityJoinOptions& options, const ExprPtr& residual,
    JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectPatches(right));
  return BallTreeSimilarityJoin(std::move(lhs), std::move(rhs), options,
                                residual, stats);
}

Result<std::vector<PatchTuple>> BallTreeSimilarityJoin(
    BatchIterator* left, BatchIterator* right,
    const SimilarityJoinOptions& options, const ExprPtr& residual,
    JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectBatchPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectBatchPatches(right));
  return BallTreeSimilarityJoin(std::move(lhs), std::move(rhs), options,
                                residual, stats);
}

// --- All-pairs (device kernel) ----------------------------------------------

Result<std::vector<PatchTuple>> AllPairsSimilarityJoin(
    const PatchCollection& lhs, const PatchCollection& rhs, float max_distance,
    nn::Device* device, const ExprPtr& residual, JoinStats* stats) {
  if (lhs.empty() || rhs.empty()) return std::vector<PatchTuple>{};

  DL_ASSIGN_OR_RETURN(size_t dim, FeatureDim(lhs));
  DL_ASSIGN_OR_RETURN(size_t rdim, FeatureDim(rhs));
  if (dim != rdim) {
    return Status::InvalidArgument(
        "similarity join: feature dimensions disagree across relations");
  }

  std::vector<float> a(lhs.size() * dim);
  std::vector<float> b(rhs.size() * dim);
  for (size_t i = 0; i < lhs.size(); ++i) {
    const float* f = lhs[i].features().data();
    std::copy(f, f + dim, a.begin() + static_cast<ptrdiff_t>(i * dim));
  }
  for (size_t j = 0; j < rhs.size(); ++j) {
    const float* f = rhs[j].features().data();
    std::copy(f, f + dim, b.begin() + static_cast<ptrdiff_t>(j * dim));
  }
  std::vector<float> d2(lhs.size() * rhs.size());
  device->PairwiseL2Squared(a.data(), lhs.size(), b.data(), rhs.size(), dim,
                            d2.data());

  const float threshold2 = max_distance * max_distance;
  const CompiledPredicate compiled(residual);
  std::vector<PatchTuple> out;
  PairBatcher batcher(&compiled, &out);
  for (size_t i = 0; i < lhs.size(); ++i) {
    for (size_t j = 0; j < rhs.size(); ++j) {
      if (d2[i * rhs.size() + j] > threshold2) continue;
      if (lhs[i].id() == rhs[j].id()) continue;
      DL_RETURN_NOT_OK(batcher.Add(Concat(lhs[i], rhs[j])));
    }
  }
  DL_RETURN_NOT_OK(batcher.Flush());
  if (stats != nullptr) {
    stats->pairs_examined = lhs.size() * rhs.size();
    stats->tuples_emitted = out.size();
  }
  return out;
}

Result<std::vector<PatchTuple>> AllPairsSimilarityJoin(
    PatchIterator* left, PatchIterator* right, float max_distance,
    nn::Device* device, const ExprPtr& residual, JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectPatches(right));
  return AllPairsSimilarityJoin(std::move(lhs), std::move(rhs), max_distance,
                                device, residual, stats);
}

Result<std::vector<PatchTuple>> AllPairsSimilarityJoin(
    BatchIterator* left, BatchIterator* right, float max_distance,
    nn::Device* device, const ExprPtr& residual, JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectBatchPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectBatchPatches(right));
  return AllPairsSimilarityJoin(std::move(lhs), std::move(rhs), max_distance,
                                device, residual, stats);
}

// --- R-tree spatial ---------------------------------------------------------

Result<std::vector<PatchTuple>> RTreeSpatialJoin(const PatchCollection& lhs,
                                                 const PatchCollection& rhs,
                                                 const ExprPtr& residual,
                                                 JoinStats* stats,
                                                 const MorselOptions& options) {
  Stopwatch build_timer;
  RTree tree;
  for (size_t i = 0; i < rhs.size(); ++i) {
    const nn::BBox& b = rhs[i].bbox();
    tree.Insert(Rect{static_cast<float>(b.x0), static_cast<float>(b.y0),
                     static_cast<float>(b.x1), static_cast<float>(b.y1)},
                static_cast<RowId>(i));
  }
  const double build_ms = build_timer.ElapsedMillis();

  const CompiledPredicate compiled(residual);
  uint64_t examined = 0;
  DL_ASSIGN_OR_RETURN(
      std::vector<PatchTuple> out,
      MorselProbeJoin(lhs.size(), compiled, options, &examined,
                      [&](size_t i, std::vector<RowId>* matches,
                          PairBatcher* batcher, uint64_t* local) -> Status {
                        matches->clear();
                        const nn::BBox& box = lhs[i].bbox();
                        tree.SearchIntersects(
                            Rect{static_cast<float>(box.x0),
                                 static_cast<float>(box.y0),
                                 static_cast<float>(box.x1),
                                 static_cast<float>(box.y1)},
                            matches);
                        for (RowId r : *matches) {
                          ++*local;
                          DL_RETURN_NOT_OK(batcher->Add(
                              Concat(lhs[i], rhs[static_cast<size_t>(r)])));
                        }
                        return Status::OK();
                      }));
  if (stats != nullptr) {
    stats->pairs_examined = examined;
    stats->tuples_emitted = out.size();
    stats->index_build_millis = build_ms;
  }
  return out;
}

Result<std::vector<PatchTuple>> RTreeSpatialJoin(PatchIterator* left,
                                                 PatchIterator* right,
                                                 const ExprPtr& residual,
                                                 JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectPatches(right));
  return RTreeSpatialJoin(std::move(lhs), std::move(rhs), residual, stats);
}

Result<std::vector<PatchTuple>> RTreeSpatialJoin(BatchIterator* left,
                                                 BatchIterator* right,
                                                 const ExprPtr& residual,
                                                 JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectBatchPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectBatchPatches(right));
  return RTreeSpatialJoin(std::move(lhs), std::move(rhs), residual, stats);
}

}  // namespace deeplens
