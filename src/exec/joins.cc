#include "exec/joins.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/clock.h"

namespace deeplens {

namespace {

PatchTuple Concat(const Patch& a, const Patch& b) {
  PatchTuple t;
  t.reserve(2);
  t.push_back(a);
  t.push_back(b);
  return t;
}

// Gathers the feature matrix of a collection; fails if any patch lacks
// features or dimensions disagree.
Result<size_t> FeatureDim(const PatchCollection& patches) {
  size_t dim = 0;
  for (const Patch& p : patches) {
    if (!p.has_features()) {
      return Status::InvalidArgument(
          "similarity join requires featurized patches (run a Transformer "
          "first)");
    }
    const size_t d = static_cast<size_t>(p.features().size());
    if (dim == 0) {
      dim = d;
    } else if (dim != d) {
      return Status::InvalidArgument(
          "similarity join: inconsistent feature dimensionality");
    }
  }
  return dim;
}

// Accumulates candidate pair tuples and flushes them through a compiled
// predicate batch-at-a-time, keeping only passing tuples in `out`.
class PairBatcher {
 public:
  PairBatcher(const CompiledPredicate* predicate,
              std::vector<PatchTuple>* out)
      : predicate_(predicate), out_(out) {}

  Status Add(PatchTuple tuple) {
    pending_.push_back(std::move(tuple));
    if (pending_.size() >= kDefaultBatchSize) return Flush();
    return Status::OK();
  }

  Status Flush() {
    if (pending_.empty()) return Status::OK();
    const size_t n = pending_.size();
    selection_.resize(n);
    DL_RETURN_NOT_OK(
        predicate_->EvalTupleRows(pending_.data(), n, selection_.data()));
    for (size_t i = 0; i < n; ++i) {
      if (selection_[i]) out_->push_back(std::move(pending_[i]));
    }
    pending_.clear();
    return Status::OK();
  }

 private:
  const CompiledPredicate* predicate_;
  std::vector<PatchTuple>* out_;
  std::vector<PatchTuple> pending_;
  std::vector<uint8_t> selection_;
};

}  // namespace

// --- Nested-loop ------------------------------------------------------------

Result<std::vector<PatchTuple>> NestedLoopJoin(PatchCollection lhs,
                                               PatchCollection rhs,
                                               const ExprPtr& predicate,
                                               JoinStats* stats) {
  const CompiledPredicate compiled(predicate);
  std::vector<PatchTuple> out;
  PairBatcher batcher(&compiled, &out);
  uint64_t examined = 0;
  for (const Patch& a : lhs) {
    for (const Patch& b : rhs) {
      ++examined;
      DL_RETURN_NOT_OK(batcher.Add(Concat(a, b)));
    }
  }
  DL_RETURN_NOT_OK(batcher.Flush());
  if (stats != nullptr) {
    stats->pairs_examined = examined;
    stats->tuples_emitted = out.size();
  }
  return out;
}

Result<std::vector<PatchTuple>> NestedLoopJoin(PatchIterator* left,
                                               PatchIterator* right,
                                               const ExprPtr& predicate,
                                               JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectPatches(right));
  return NestedLoopJoin(std::move(lhs), std::move(rhs), predicate, stats);
}

Result<std::vector<PatchTuple>> NestedLoopJoin(BatchIterator* left,
                                               BatchIterator* right,
                                               const ExprPtr& predicate,
                                               JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectBatchPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectBatchPatches(right));
  return NestedLoopJoin(std::move(lhs), std::move(rhs), predicate, stats);
}

// --- Hash equality ----------------------------------------------------------

Result<std::vector<PatchTuple>> HashEqualityJoin(PatchCollection lhs,
                                                 PatchCollection rhs,
                                                 const std::string& key,
                                                 const ExprPtr& residual,
                                                 JoinStats* stats) {
  Stopwatch build_timer;
  HashIndex index;
  for (size_t i = 0; i < rhs.size(); ++i) {
    index.Insert(Slice(rhs[i].meta().Get(key).ToIndexKey()),
                 static_cast<RowId>(i));
  }
  const double build_ms = build_timer.ElapsedMillis();

  const CompiledPredicate compiled(residual);
  std::vector<PatchTuple> out;
  PairBatcher batcher(&compiled, &out);
  uint64_t examined = 0;
  std::vector<RowId> matches;
  for (const Patch& a : lhs) {
    matches.clear();
    index.Lookup(Slice(a.meta().Get(key).ToIndexKey()), &matches);
    for (RowId r : matches) {
      ++examined;
      DL_RETURN_NOT_OK(batcher.Add(Concat(a, rhs[static_cast<size_t>(r)])));
    }
  }
  DL_RETURN_NOT_OK(batcher.Flush());
  if (stats != nullptr) {
    stats->pairs_examined = examined;
    stats->tuples_emitted = out.size();
    stats->index_build_millis = build_ms;
  }
  return out;
}

Result<std::vector<PatchTuple>> HashEqualityJoin(
    PatchIterator* left, PatchIterator* right, const std::string& key,
    const ExprPtr& residual, JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectPatches(right));
  return HashEqualityJoin(std::move(lhs), std::move(rhs), key, residual,
                          stats);
}

Result<std::vector<PatchTuple>> HashEqualityJoin(
    BatchIterator* left, BatchIterator* right, const std::string& key,
    const ExprPtr& residual, JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectBatchPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectBatchPatches(right));
  return HashEqualityJoin(std::move(lhs), std::move(rhs), key, residual,
                          stats);
}

// --- Ball-tree similarity ---------------------------------------------------

Result<std::vector<PatchTuple>> BallTreeSimilarityJoin(
    PatchCollection lhs, PatchCollection rhs,
    const SimilarityJoinOptions& options, const ExprPtr& residual,
    JoinStats* stats) {
  // Index the smaller relation (paper §5), probe with the other; emitted
  // tuples always keep (left, right) order.
  const bool index_right =
      options.force_index_right || rhs.size() <= lhs.size();
  const PatchCollection& indexed = index_right ? rhs : lhs;
  const PatchCollection& probes = index_right ? lhs : rhs;

  DL_ASSIGN_OR_RETURN(size_t dim, FeatureDim(indexed));
  DL_ASSIGN_OR_RETURN(size_t probe_dim, FeatureDim(probes));
  if (dim == 0 || probe_dim != dim) {
    return Status::InvalidArgument(
        "similarity join: feature dimensions disagree across relations");
  }

  Stopwatch build_timer;
  std::vector<float> points(indexed.size() * dim);
  for (size_t i = 0; i < indexed.size(); ++i) {
    const float* f = indexed[i].features().data();
    std::copy(f, f + dim, points.begin() + static_cast<ptrdiff_t>(i * dim));
  }
  BallTree tree;
  DL_RETURN_NOT_OK(tree.Build(std::move(points), dim, {}));
  const double build_ms = build_timer.ElapsedMillis();

  const CompiledPredicate compiled(residual);
  std::vector<PatchTuple> out;
  PairBatcher batcher(&compiled, &out);
  std::vector<RowId> matches;
  for (const Patch& probe : probes) {
    matches.clear();
    tree.RangeSearch(probe.features().data(), options.max_distance,
                     &matches);
    for (RowId r : matches) {
      const Patch& hit = indexed[static_cast<size_t>(r)];
      if (options.skip_identical_ids && probe.id() == hit.id()) continue;
      DL_RETURN_NOT_OK(batcher.Add(index_right ? Concat(probe, hit)
                                               : Concat(hit, probe)));
    }
  }
  DL_RETURN_NOT_OK(batcher.Flush());
  if (stats != nullptr) {
    stats->pairs_examined = tree.distance_evals();
    stats->tuples_emitted = out.size();
    stats->index_build_millis = build_ms;
  }
  return out;
}

Result<std::vector<PatchTuple>> BallTreeSimilarityJoin(
    PatchIterator* left, PatchIterator* right,
    const SimilarityJoinOptions& options, const ExprPtr& residual,
    JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectPatches(right));
  return BallTreeSimilarityJoin(std::move(lhs), std::move(rhs), options,
                                residual, stats);
}

Result<std::vector<PatchTuple>> BallTreeSimilarityJoin(
    BatchIterator* left, BatchIterator* right,
    const SimilarityJoinOptions& options, const ExprPtr& residual,
    JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectBatchPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectBatchPatches(right));
  return BallTreeSimilarityJoin(std::move(lhs), std::move(rhs), options,
                                residual, stats);
}

// --- All-pairs (device kernel) ----------------------------------------------

Result<std::vector<PatchTuple>> AllPairsSimilarityJoin(
    PatchCollection lhs, PatchCollection rhs, float max_distance,
    nn::Device* device, const ExprPtr& residual, JoinStats* stats) {
  if (lhs.empty() || rhs.empty()) return std::vector<PatchTuple>{};

  DL_ASSIGN_OR_RETURN(size_t dim, FeatureDim(lhs));
  DL_ASSIGN_OR_RETURN(size_t rdim, FeatureDim(rhs));
  if (dim != rdim) {
    return Status::InvalidArgument(
        "similarity join: feature dimensions disagree across relations");
  }

  std::vector<float> a(lhs.size() * dim);
  std::vector<float> b(rhs.size() * dim);
  for (size_t i = 0; i < lhs.size(); ++i) {
    const float* f = lhs[i].features().data();
    std::copy(f, f + dim, a.begin() + static_cast<ptrdiff_t>(i * dim));
  }
  for (size_t j = 0; j < rhs.size(); ++j) {
    const float* f = rhs[j].features().data();
    std::copy(f, f + dim, b.begin() + static_cast<ptrdiff_t>(j * dim));
  }
  std::vector<float> d2(lhs.size() * rhs.size());
  device->PairwiseL2Squared(a.data(), lhs.size(), b.data(), rhs.size(), dim,
                            d2.data());

  const float threshold2 = max_distance * max_distance;
  const CompiledPredicate compiled(residual);
  std::vector<PatchTuple> out;
  PairBatcher batcher(&compiled, &out);
  for (size_t i = 0; i < lhs.size(); ++i) {
    for (size_t j = 0; j < rhs.size(); ++j) {
      if (d2[i * rhs.size() + j] > threshold2) continue;
      if (lhs[i].id() == rhs[j].id()) continue;
      DL_RETURN_NOT_OK(batcher.Add(Concat(lhs[i], rhs[j])));
    }
  }
  DL_RETURN_NOT_OK(batcher.Flush());
  if (stats != nullptr) {
    stats->pairs_examined = lhs.size() * rhs.size();
    stats->tuples_emitted = out.size();
  }
  return out;
}

Result<std::vector<PatchTuple>> AllPairsSimilarityJoin(
    PatchIterator* left, PatchIterator* right, float max_distance,
    nn::Device* device, const ExprPtr& residual, JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectPatches(right));
  return AllPairsSimilarityJoin(std::move(lhs), std::move(rhs), max_distance,
                                device, residual, stats);
}

Result<std::vector<PatchTuple>> AllPairsSimilarityJoin(
    BatchIterator* left, BatchIterator* right, float max_distance,
    nn::Device* device, const ExprPtr& residual, JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectBatchPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectBatchPatches(right));
  return AllPairsSimilarityJoin(std::move(lhs), std::move(rhs), max_distance,
                                device, residual, stats);
}

// --- R-tree spatial ---------------------------------------------------------

Result<std::vector<PatchTuple>> RTreeSpatialJoin(PatchCollection lhs,
                                                 PatchCollection rhs,
                                                 const ExprPtr& residual,
                                                 JoinStats* stats) {
  Stopwatch build_timer;
  RTree tree;
  for (size_t i = 0; i < rhs.size(); ++i) {
    const nn::BBox& b = rhs[i].bbox();
    tree.Insert(Rect{static_cast<float>(b.x0), static_cast<float>(b.y0),
                     static_cast<float>(b.x1), static_cast<float>(b.y1)},
                static_cast<RowId>(i));
  }
  const double build_ms = build_timer.ElapsedMillis();

  const CompiledPredicate compiled(residual);
  std::vector<PatchTuple> out;
  PairBatcher batcher(&compiled, &out);
  uint64_t examined = 0;
  std::vector<RowId> matches;
  for (const Patch& a : lhs) {
    matches.clear();
    const nn::BBox& box = a.bbox();
    tree.SearchIntersects(
        Rect{static_cast<float>(box.x0), static_cast<float>(box.y0),
             static_cast<float>(box.x1), static_cast<float>(box.y1)},
        &matches);
    for (RowId r : matches) {
      ++examined;
      DL_RETURN_NOT_OK(batcher.Add(Concat(a, rhs[static_cast<size_t>(r)])));
    }
  }
  DL_RETURN_NOT_OK(batcher.Flush());
  if (stats != nullptr) {
    stats->pairs_examined = examined;
    stats->tuples_emitted = out.size();
    stats->index_build_millis = build_ms;
  }
  return out;
}

Result<std::vector<PatchTuple>> RTreeSpatialJoin(PatchIterator* left,
                                                 PatchIterator* right,
                                                 const ExprPtr& residual,
                                                 JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectPatches(right));
  return RTreeSpatialJoin(std::move(lhs), std::move(rhs), residual, stats);
}

Result<std::vector<PatchTuple>> RTreeSpatialJoin(BatchIterator* left,
                                                 BatchIterator* right,
                                                 const ExprPtr& residual,
                                                 JoinStats* stats) {
  DL_ASSIGN_OR_RETURN(PatchCollection lhs, CollectBatchPatches(left));
  DL_ASSIGN_OR_RETURN(PatchCollection rhs, CollectBatchPatches(right));
  return RTreeSpatialJoin(std::move(lhs), std::move(rhs), residual, stats);
}

}  // namespace deeplens
