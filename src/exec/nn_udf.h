// NN UDF expression nodes: run a model over a tuple slot's pixels at
// predicate-evaluation time (the paper's §2.2 UDF operators surfaced in
// the expression language). These are the expensive expressions the
// inference cache exists for — a repeated query re-evaluates the same
// UDF over the same patches, and with a cache attached every morsel
// worker shares the memoized results instead of re-running the network.
//
// Both UDFs evaluate to null on patches without pixel data (so predicates
// treat them as non-matching, mirroring absent metadata keys), and are
// safe to evaluate concurrently from morsel workers. Every evaluation
// reports its wall time and cache hit/miss to CostModel::Global(), which
// is what lets the planner rank conjuncts by observed cost.
#pragma once

#include <atomic>
#include <memory>

#include "cache/inference_cache.h"
#include "exec/expression.h"
#include "nn/device.h"
#include "nn/models.h"

namespace deeplens {

/// OCR over the pixels of tuple slot `slot`; evaluates to the recognized
/// string ("" when nothing legible). With `cache`, results are memoized
/// under (tiny-ocr, Patch::Fingerprint).
ExprPtr OcrTextUdf(size_t slot, const nn::TinyOcr* ocr,
                   InferenceCache* cache = nullptr,
                   nn::Device* device = nullptr);

/// Monocular depth (meters) of the patch in tuple slot `slot`, using its
/// bbox and the source-frame height `frame_height` for the geometry cue;
/// evaluates to a double. With `cache`, results are memoized under
/// (tiny-depth, Patch::Fingerprint, frame_height).
ExprPtr DepthUdf(size_t slot, const nn::TinyDepth* model, int frame_height,
                 InferenceCache* cache = nullptr,
                 nn::Device* device = nullptr);

// --- Proxy cascades ------------------------------------------------------

/// Execution counters for one cascade-wrapped conjunct, shared between the
/// executing expression and the plan explanation. All counters are
/// per-row and relaxed-atomic (morsel workers bump them concurrently).
struct CascadeTelemetry {
  /// Rows where the proxy rendered a verdict (any confidence).
  std::atomic<uint64_t> proxy_evals{0};
  /// Rows the proxy rejected confidently enough to skip the full model.
  std::atomic<uint64_t> proxy_skips{0};
  /// Rows that ran the full conjunct (proxy passed, low confidence, or
  /// audit).
  std::atomic<uint64_t> full_evals{0};
  /// Would-be skips that ran the full model anyway as an accuracy audit.
  std::atomic<uint64_t> audits{0};
  /// Audited rows where the full model disagreed with the proxy's reject
  /// (i.e. the skip would have dropped a true match).
  std::atomic<uint64_t> audit_overturns{0};
  /// Rows the cascade passed through to the result.
  std::atomic<uint64_t> passes{0};
};

/// Wraps a proxy-capable conjunct in a reject-only cascade: when the
/// conjunct's proxy rejects a row with confidence >= `threshold`, the full
/// model is skipped and the row dropped; otherwise the full conjunct runs
/// and decides. A deterministic 1-in-16 audit slice (by row fingerprint)
/// runs the full model on would-be skips anyway — its result is used, so
/// audited rows are always exact — and counts disagreements, giving
/// Explain() a measured recall estimate. Precision is 1.0 by
/// construction: every emitted row was confirmed by the full conjunct.
/// `telemetry` may be null (counters dropped).
ExprPtr MakeCascade(ExprPtr conjunct, double threshold,
                    std::shared_ptr<CascadeTelemetry> telemetry);

}  // namespace deeplens
