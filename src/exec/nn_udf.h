// NN UDF expression nodes: run a model over a tuple slot's pixels at
// predicate-evaluation time (the paper's §2.2 UDF operators surfaced in
// the expression language). These are the expensive expressions the
// inference cache exists for — a repeated query re-evaluates the same
// UDF over the same patches, and with a cache attached every morsel
// worker shares the memoized results instead of re-running the network.
//
// Both UDFs evaluate to null on patches without pixel data (so predicates
// treat them as non-matching, mirroring absent metadata keys), and are
// safe to evaluate concurrently from morsel workers.
#pragma once

#include "cache/inference_cache.h"
#include "exec/expression.h"
#include "nn/device.h"
#include "nn/models.h"

namespace deeplens {

/// OCR over the pixels of tuple slot `slot`; evaluates to the recognized
/// string ("" when nothing legible). With `cache`, results are memoized
/// under (tiny-ocr, Patch::Fingerprint).
ExprPtr OcrTextUdf(size_t slot, const nn::TinyOcr* ocr,
                   InferenceCache* cache = nullptr,
                   nn::Device* device = nullptr);

/// Monocular depth (meters) of the patch in tuple slot `slot`, using its
/// bbox and the source-frame height `frame_height` for the geometry cue;
/// evaluates to a double. With `cache`, results are memoized under
/// (tiny-depth, Patch::Fingerprint, frame_height).
ExprPtr DepthUdf(size_t slot, const nn::TinyDepth* model, int frame_height,
                 InferenceCache* cache = nullptr,
                 nn::Device* device = nullptr);

}  // namespace deeplens
