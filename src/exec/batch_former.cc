#include "exec/batch_former.h"

#include <algorithm>
#include <utility>

namespace deeplens {

BatchFormerConfig BatchFormer::config() const {
  std::lock_guard<std::mutex> lk(mu_);
  return config_;
}

void BatchFormer::Configure(const BatchFormerConfig& config) {
  Drain();
  std::lock_guard<std::mutex> lk(mu_);
  config_ = config;
  batch_size_.store(config.batch_size, std::memory_order_relaxed);
}

BatchFormerStats BatchFormer::Stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  BatchFormerStats stats;
  stats.staged = staged_total_;
  stats.joined = joined_;
  stats.invocations = invocations_;
  stats.batched_items = batched_items_;
  stats.size_flushes = size_flushes_;
  stats.deadline_flushes = deadline_flushes_;
  stats.drain_flushes = drain_flushes_;
  stats.max_batch = max_batch_;
  for (const auto& entry : queues_) {
    stats.pending += entry.second->pending.size();
  }
  return stats;
}

BatchFormer::Outcome BatchFormer::Run(const std::string& queue_key,
                                      const std::string& item_key,
                                      const Item& item, InferenceCache* cache,
                                      const BatchFn& batch_fn, bool* led) {
  std::unique_lock<std::mutex> lk(mu_);
  std::unique_ptr<Queue>& slot = queues_[queue_key];
  if (slot == nullptr) slot = std::make_unique<Queue>();
  Queue* q = slot.get();
  if (!q->batch_fn) q->batch_fn = batch_fn;

  auto existing = q->staged.find(item_key);
  if (existing != q->staged.end()) {
    // A duplicate key is already staged (only possible when no inflight
    // table fronts the former): attach to its flight.
    ++joined_;
    if (led != nullptr) *led = false;
    std::shared_future<Outcome> future = existing->second->future;
    lk.unlock();
    return future.get();
  }

  if (led != nullptr) *led = true;
  ++staged_total_;
  auto entry = std::make_shared<Staged>();
  entry->key = item_key;
  entry->item = item;
  entry->cache = cache;
  entry->deadline = Clock::now() + std::chrono::microseconds(config_.wait_us);
  entry->future = entry->promise.get_future().share();
  q->pending.push_back(entry);
  q->staged.emplace(item_key, entry);
  const uint64_t batch = std::max<uint64_t>(1, config_.batch_size);

  while (!entry->claimed) {
    const bool due = !q->pending.empty() &&
                     q->pending.front()->deadline <= Clock::now();
    if (!q->flush_active && (q->pending.size() >= batch || due)) {
      FlushLoop(q, lk, /*drain=*/false);
      continue;
    }
    if (q->flush_active) {
      // Another submitter is flushing; it will either claim our entry or
      // finish and let us re-evaluate.
      q->cv.wait(lk, [&] { return entry->claimed || !q->flush_active; });
      continue;
    }
    // Quiet queue with spare capacity: sleep until our own deadline,
    // then self-flush. This is the no-stall guarantee — a staged patch
    // never outwaits its submitter's DEEPLENS_BATCH_WAIT_US.
    lk.unlock();
    if (entry->future.wait_until(entry->deadline) ==
        std::future_status::ready) {
      return entry->future.get();
    }
    lk.lock();
  }
  // Claimed by a flusher: fulfillment is guaranteed, wait unbounded.
  lk.unlock();
  return entry->future.get();
}

void BatchFormer::FlushLoop(Queue* q, std::unique_lock<std::mutex>& lk,
                            bool drain) {
  q->flush_active = true;
  const uint64_t batch = std::max<uint64_t>(1, config_.batch_size);
  while (!q->pending.empty()) {
    const bool size_due = q->pending.size() >= batch;
    const bool deadline_due = q->pending.front()->deadline <= Clock::now();
    if (!drain && !size_due && !deadline_due) break;
    // Oversized backlogs (e.g. staged while a previous flush held the
    // queue) split into threshold-sized chunks, one invocation each.
    const size_t n =
        std::min<size_t>(static_cast<size_t>(batch), q->pending.size());
    std::vector<std::shared_ptr<Staged>> chunk;
    chunk.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      chunk.push_back(q->pending.front());
      chunk.back()->claimed = true;
      q->pending.pop_front();
    }
    if (drain) {
      ++drain_flushes_;
    } else if (size_due) {
      ++size_flushes_;
    } else {
      ++deadline_flushes_;
    }
    lk.unlock();

    std::vector<const Item*> items;
    items.reserve(chunk.size());
    for (const auto& e : chunk) items.push_back(&e->item);
    std::vector<ItemOutcome> outcomes = q->batch_fn(items);

    std::vector<Outcome> results;
    results.reserve(chunk.size());
    if (outcomes.size() != chunk.size()) {
      const Status bad = Status::Internal(
          "batch function returned " + std::to_string(outcomes.size()) +
          " outcomes for " + std::to_string(chunk.size()) + " items");
      for (size_t i = 0; i < chunk.size(); ++i) results.emplace_back(bad);
    } else {
      for (size_t i = 0; i < chunk.size(); ++i) {
        if (!outcomes[i].ok()) {
          results.emplace_back(outcomes[i].status());
          continue;
        }
        auto shared = std::make_shared<const InferenceValue>(
            std::move(outcomes[i]).value());
        // Publish before the flight resolves so late arrivals hit the
        // cache (the singleflight invariant).
        if (chunk[i]->cache != nullptr) {
          chunk[i]->cache->Put(chunk[i]->key, *shared);
        }
        results.emplace_back(std::move(shared));
      }
    }

    lk.lock();
    for (const auto& e : chunk) q->staged.erase(e->key);
    ++invocations_;
    batched_items_ += chunk.size();
    max_batch_ = std::max<uint64_t>(max_batch_, chunk.size());
    q->cv.notify_all();
    lk.unlock();
    for (size_t i = 0; i < chunk.size(); ++i) {
      chunk[i]->promise.set_value(std::move(results[i]));
    }
    lk.lock();
  }
  q->flush_active = false;
  q->cv.notify_all();
}

void BatchFormer::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  // Snapshot queue pointers: queues_ may gain entries (and rehash) while
  // FlushLoop drops the lock, but the pointed-to Queues are stable and
  // never erased. A queue created after this snapshot has a live
  // submitter inside Run() driving its own flush.
  std::vector<Queue*> queues;
  queues.reserve(queues_.size());
  for (const auto& entry : queues_) queues.push_back(entry.second.get());
  for (Queue* q : queues) {
    for (;;) {
      if (q->flush_active) {
        q->cv.wait(lk, [&] { return !q->flush_active; });
        continue;  // re-check: new patches may have staged meanwhile
      }
      if (q->pending.empty()) break;
      FlushLoop(q, lk, /*drain=*/true);
    }
  }
}

}  // namespace deeplens
