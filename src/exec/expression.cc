#include "exec/expression.h"

#include <cmath>

#include "tensor/ops.h"

namespace deeplens {

Result<bool> Expr::EvalBool(const PatchTuple& tuple) const {
  DL_ASSIGN_OR_RETURN(MetaValue v, Eval(tuple));
  if (v.is_null()) return false;
  if (v.type() == ValueType::kBool) return v.AsBool();
  return Status::TypeError("predicate did not evaluate to bool: " +
                           ToString());
}

namespace {

Status CheckSlot(size_t slot, const PatchTuple& tuple) {
  if (slot >= tuple.size()) {
    return Status::OutOfRange("expression references tuple slot " +
                              std::to_string(slot) + " of " +
                              std::to_string(tuple.size()));
  }
  return Status::OK();
}

class AttrExpr : public Expr {
 public:
  AttrExpr(size_t slot, std::string key)
      : slot_(slot), key_(std::move(key)) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_RETURN_NOT_OK(CheckSlot(slot_, tuple));
    return tuple[slot_].meta().Get(key_);
  }
  std::string ToString() const override {
    return "$" + std::to_string(slot_) + "." + key_;
  }
  Status Validate(const std::vector<PatchSchema>& schemas) const override {
    if (slot_ < schemas.size() && !schemas[slot_].HasAttribute(key_)) {
      return Status::TypeError("attribute '" + key_ +
                               "' is not in the slot " +
                               std::to_string(slot_) + " schema");
    }
    return Status::OK();
  }
  const std::string& key() const { return key_; }
  size_t slot() const { return slot_; }

 private:
  size_t slot_;
  std::string key_;
};

class LitExpr : public Expr {
 public:
  explicit LitExpr(MetaValue v) : v_(std::move(v)) {}
  Result<MetaValue> Eval(const PatchTuple&) const override { return v_; }
  std::string ToString() const override { return v_.ToDisplayString(); }

 private:
  MetaValue v_;
};

class GeomExpr : public Expr {
 public:
  GeomExpr(size_t slot, std::string what)
      : slot_(slot), what_(std::move(what)) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_RETURN_NOT_OK(CheckSlot(slot_, tuple));
    const nn::BBox& b = tuple[slot_].bbox();
    if (what_ == "width") return MetaValue(int64_t{b.Width()});
    if (what_ == "height") return MetaValue(int64_t{b.Height()});
    if (what_ == "area") return MetaValue(int64_t{b.Area()});
    if (what_ == "cx") return MetaValue(int64_t{b.CenterX()});
    if (what_ == "cy") return MetaValue(int64_t{b.CenterY()});
    if (what_ == "x0") return MetaValue(int64_t{b.x0});
    if (what_ == "y0") return MetaValue(int64_t{b.y0});
    if (what_ == "x1") return MetaValue(int64_t{b.x1});
    if (what_ == "y1") return MetaValue(int64_t{b.y1});
    return Status::InvalidArgument("unknown geometry accessor: " + what_);
  }
  std::string ToString() const override {
    return "$" + std::to_string(slot_) + ".@" + what_;
  }

 private:
  size_t slot_;
  std::string what_;
};

enum class CmpKind { kEq, kNe, kLt, kLe, kGt, kGe };

class CmpExpr : public Expr {
 public:
  CmpExpr(CmpKind kind, ExprPtr a, ExprPtr b)
      : kind_(kind), a_(std::move(a)), b_(std::move(b)) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_ASSIGN_OR_RETURN(MetaValue va, a_->Eval(tuple));
    DL_ASSIGN_OR_RETURN(MetaValue vb, b_->Eval(tuple));
    if (va.is_null() || vb.is_null()) return MetaValue();  // SQL-ish null
    const int c = va.Compare(vb);
    switch (kind_) {
      case CmpKind::kEq:
        return MetaValue(c == 0);
      case CmpKind::kNe:
        return MetaValue(c != 0);
      case CmpKind::kLt:
        return MetaValue(c < 0);
      case CmpKind::kLe:
        return MetaValue(c <= 0);
      case CmpKind::kGt:
        return MetaValue(c > 0);
      case CmpKind::kGe:
        return MetaValue(c >= 0);
    }
    return Status::Internal("bad comparison kind");
  }
  std::string ToString() const override {
    const char* op = "?";
    switch (kind_) {
      case CmpKind::kEq: op = "=="; break;
      case CmpKind::kNe: op = "!="; break;
      case CmpKind::kLt: op = "<"; break;
      case CmpKind::kLe: op = "<="; break;
      case CmpKind::kGt: op = ">"; break;
      case CmpKind::kGe: op = ">="; break;
    }
    return "(" + a_->ToString() + " " + op + " " + b_->ToString() + ")";
  }
  Status Validate(const std::vector<PatchSchema>& schemas) const override {
    DL_RETURN_NOT_OK(a_->Validate(schemas));
    DL_RETURN_NOT_OK(b_->Validate(schemas));
    // Domain check: attr == string-literal against a closed domain.
    auto* attr = dynamic_cast<const AttrExpr*>(a_.get());
    auto* lit = dynamic_cast<const LitExpr*>(b_.get());
    if (attr != nullptr && lit != nullptr &&
        attr->slot() < schemas.size()) {
      DL_ASSIGN_OR_RETURN(MetaValue v, lit->Eval({}));
      return schemas[attr->slot()].ValidatePredicate(attr->key(), v);
    }
    return Status::OK();
  }

  bool AsAttrCmpLit(int* op, size_t* slot, std::string* key,
                    MetaValue* value) const override {
    const auto* attr = dynamic_cast<const AttrExpr*>(a_.get());
    const auto* lit = dynamic_cast<const LitExpr*>(b_.get());
    bool swapped = false;
    if (attr == nullptr || lit == nullptr) {
      attr = dynamic_cast<const AttrExpr*>(b_.get());
      lit = dynamic_cast<const LitExpr*>(a_.get());
      swapped = true;
    }
    if (attr == nullptr || lit == nullptr) return false;
    int raw;
    switch (kind_) {
      case CmpKind::kEq: raw = 0; break;
      case CmpKind::kLt: raw = -2; break;
      case CmpKind::kLe: raw = -1; break;
      case CmpKind::kGt: raw = 2; break;
      case CmpKind::kGe: raw = 1; break;
      default: return false;  // != is not index-accelerable
    }
    *op = swapped ? -raw : raw;
    *slot = attr->slot();
    *key = attr->key();
    *value = lit->Eval({}).value();
    return true;
  }

 private:
  CmpKind kind_;
  ExprPtr a_, b_;
};

enum class BoolKind { kAnd, kOr, kNot };

class BoolExpr : public Expr {
 public:
  BoolExpr(BoolKind kind, ExprPtr a, ExprPtr b)
      : kind_(kind), a_(std::move(a)), b_(std::move(b)) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_ASSIGN_OR_RETURN(bool va, a_->EvalBool(tuple));
    if (kind_ == BoolKind::kNot) return MetaValue(!va);
    if (kind_ == BoolKind::kAnd && !va) return MetaValue(false);
    if (kind_ == BoolKind::kOr && va) return MetaValue(true);
    DL_ASSIGN_OR_RETURN(bool vb, b_->EvalBool(tuple));
    return MetaValue(kind_ == BoolKind::kAnd ? (va && vb) : (va || vb));
  }
  std::string ToString() const override {
    switch (kind_) {
      case BoolKind::kNot:
        return "!" + a_->ToString();
      case BoolKind::kAnd:
        return "(" + a_->ToString() + " && " + b_->ToString() + ")";
      case BoolKind::kOr:
        return "(" + a_->ToString() + " || " + b_->ToString() + ")";
    }
    return "?";
  }
  Status Validate(const std::vector<PatchSchema>& schemas) const override {
    DL_RETURN_NOT_OK(a_->Validate(schemas));
    if (b_) DL_RETURN_NOT_OK(b_->Validate(schemas));
    return Status::OK();
  }

  bool AsConjunction(ExprPtr* left, ExprPtr* right) const override {
    if (kind_ != BoolKind::kAnd) return false;
    *left = a_;
    *right = b_;
    return true;
  }

 private:
  BoolKind kind_;
  ExprPtr a_, b_;
};

enum class ArithKind { kAdd, kSub, kMul };

class ArithExpr : public Expr {
 public:
  ArithExpr(ArithKind kind, ExprPtr a, ExprPtr b)
      : kind_(kind), a_(std::move(a)), b_(std::move(b)) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_ASSIGN_OR_RETURN(MetaValue va, a_->Eval(tuple));
    DL_ASSIGN_OR_RETURN(MetaValue vb, b_->Eval(tuple));
    if (va.is_null() || vb.is_null()) return MetaValue();
    // Integer arithmetic stays integral; anything else widens to double.
    if (va.type() == ValueType::kInt && vb.type() == ValueType::kInt) {
      const int64_t x = va.AsInt().value();
      const int64_t y = vb.AsInt().value();
      switch (kind_) {
        case ArithKind::kAdd: return MetaValue(x + y);
        case ArithKind::kSub: return MetaValue(x - y);
        case ArithKind::kMul: return MetaValue(x * y);
      }
    }
    DL_ASSIGN_OR_RETURN(double x, va.AsNumeric());
    DL_ASSIGN_OR_RETURN(double y, vb.AsNumeric());
    switch (kind_) {
      case ArithKind::kAdd: return MetaValue(x + y);
      case ArithKind::kSub: return MetaValue(x - y);
      case ArithKind::kMul: return MetaValue(x * y);
    }
    return Status::Internal("bad arithmetic kind");
  }
  std::string ToString() const override {
    const char* op = kind_ == ArithKind::kAdd
                         ? "+"
                         : (kind_ == ArithKind::kSub ? "-" : "*");
    return "(" + a_->ToString() + " " + op + " " + b_->ToString() + ")";
  }
  Status Validate(const std::vector<PatchSchema>& schemas) const override {
    DL_RETURN_NOT_OK(a_->Validate(schemas));
    return b_->Validate(schemas);
  }

 private:
  ArithKind kind_;
  ExprPtr a_, b_;
};

class FeatureDistanceExpr : public Expr {
 public:
  FeatureDistanceExpr(size_t a, size_t b) : a_(a), b_(b) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_RETURN_NOT_OK(CheckSlot(a_, tuple));
    DL_RETURN_NOT_OK(CheckSlot(b_, tuple));
    const Tensor& fa = tuple[a_].features();
    const Tensor& fb = tuple[b_].features();
    if (fa.empty() || fb.empty()) {
      return Status::InvalidArgument(
          "FeatureDistance on a patch without features (run a Transformer "
          "first)");
    }
    return MetaValue(static_cast<double>(ops::L2Distance(fa, fb)));
  }
  std::string ToString() const override {
    return "dist($" + std::to_string(a_) + ", $" + std::to_string(b_) + ")";
  }

 private:
  size_t a_, b_;
};

class BoxIouExpr : public Expr {
 public:
  BoxIouExpr(size_t a, size_t b) : a_(a), b_(b) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_RETURN_NOT_OK(CheckSlot(a_, tuple));
    DL_RETURN_NOT_OK(CheckSlot(b_, tuple));
    return MetaValue(
        static_cast<double>(tuple[a_].bbox().Iou(tuple[b_].bbox())));
  }
  std::string ToString() const override {
    return "iou($" + std::to_string(a_) + ", $" + std::to_string(b_) + ")";
  }

 private:
  size_t a_, b_;
};

}  // namespace

ExprPtr Attr(size_t slot, std::string key) {
  return std::make_shared<AttrExpr>(slot, std::move(key));
}
ExprPtr Attr(std::string key) { return Attr(0, std::move(key)); }
ExprPtr Lit(MetaValue value) {
  return std::make_shared<LitExpr>(std::move(value));
}
ExprPtr Geom(size_t slot, std::string what) {
  return std::make_shared<GeomExpr>(slot, std::move(what));
}

ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return std::make_shared<CmpExpr>(CmpKind::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return std::make_shared<CmpExpr>(CmpKind::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return std::make_shared<CmpExpr>(CmpKind::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return std::make_shared<CmpExpr>(CmpKind::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return std::make_shared<CmpExpr>(CmpKind::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return std::make_shared<CmpExpr>(CmpKind::kGe, std::move(a), std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return std::make_shared<BoolExpr>(BoolKind::kAnd, std::move(a),
                                    std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return std::make_shared<BoolExpr>(BoolKind::kOr, std::move(a),
                                    std::move(b));
}
ExprPtr Not(ExprPtr a) {
  return std::make_shared<BoolExpr>(BoolKind::kNot, std::move(a), nullptr);
}

ExprPtr Add(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithKind::kAdd, std::move(a),
                                     std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithKind::kSub, std::move(a),
                                     std::move(b));
}
ExprPtr MulE(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithKind::kMul, std::move(a),
                                     std::move(b));
}

ExprPtr FeatureDistance(size_t slot_a, size_t slot_b) {
  return std::make_shared<FeatureDistanceExpr>(slot_a, slot_b);
}
ExprPtr BoxIou(size_t slot_a, size_t slot_b) {
  return std::make_shared<BoxIouExpr>(slot_a, slot_b);
}

}  // namespace deeplens
