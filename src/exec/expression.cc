#include "exec/expression.h"

#include <algorithm>
#include <cmath>

#include "core/cost_model.h"
#include "tensor/ops.h"

namespace deeplens {

Result<bool> Expr::EvalBool(const PatchTuple& tuple) const {
  DL_ASSIGN_OR_RETURN(MetaValue v, Eval(tuple));
  if (v.is_null()) return false;
  if (v.type() == ValueType::kBool) return v.AsBool();
  return Status::TypeError("predicate did not evaluate to bool: " +
                           ToString());
}

Status Expr::EvalBatch(const PatchTuple* rows, size_t n,
                       MetaValue* out) const {
  for (size_t i = 0; i < n; ++i) {
    DL_ASSIGN_OR_RETURN(out[i], Eval(rows[i]));
  }
  return Status::OK();
}

Status Expr::EvalBoolBatch(const PatchTuple* rows, size_t n,
                           uint8_t* out) const {
  std::vector<MetaValue> scratch(n);
  const Status st = EvalBatch(rows, n, scratch.data());
  if (!st.ok()) {
    // EvalBatch stopped at the first row whose Eval failed — but a row
    // before it may have produced a non-bool value, and the scalar
    // EvalBool loop would surface *that* TypeError first. Re-run
    // row-at-a-time so the earliest failing row wins either way.
    for (size_t i = 0; i < n; ++i) {
      DL_ASSIGN_OR_RETURN(bool pass, EvalBool(rows[i]));
      out[i] = pass ? 1 : 0;
    }
    return st;  // every row passed scalar eval: report the batch error
  }
  for (size_t i = 0; i < n; ++i) {
    const MetaValue& v = scratch[i];
    if (v.is_null()) {
      out[i] = 0;
    } else if (v.type() == ValueType::kBool) {
      out[i] = v.AsBool().value() ? 1 : 0;
    } else {
      return Status::TypeError("predicate did not evaluate to bool: " +
                               ToString());
    }
  }
  return Status::OK();
}

namespace {

Status CheckSlot(size_t slot, const PatchTuple& tuple) {
  if (slot >= tuple.size()) {
    return Status::OutOfRange("expression references tuple slot " +
                              std::to_string(slot) + " of " +
                              std::to_string(tuple.size()));
  }
  return Status::OK();
}

class AttrExpr : public Expr {
 public:
  AttrExpr(size_t slot, std::string key)
      : slot_(slot), key_(std::move(key)) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_RETURN_NOT_OK(CheckSlot(slot_, tuple));
    return tuple[slot_].meta().Get(key_);
  }
  std::string ToString() const override {
    return "$" + std::to_string(slot_) + "." + key_;
  }
  Status Validate(const std::vector<PatchSchema>& schemas) const override {
    if (slot_ < schemas.size() && !schemas[slot_].HasAttribute(key_)) {
      return Status::TypeError("attribute '" + key_ +
                               "' is not in the slot " +
                               std::to_string(slot_) + " schema");
    }
    return Status::OK();
  }
  const std::string& key() const { return key_; }
  size_t slot() const { return slot_; }

 private:
  size_t slot_;
  std::string key_;
};

class LitExpr : public Expr {
 public:
  explicit LitExpr(MetaValue v) : v_(std::move(v)) {}
  Result<MetaValue> Eval(const PatchTuple&) const override { return v_; }
  std::string ToString() const override { return v_.ToDisplayString(); }
  const MetaValue& value() const { return v_; }

 private:
  MetaValue v_;
};

class GeomExpr : public Expr {
 public:
  GeomExpr(size_t slot, std::string what)
      : slot_(slot), what_(std::move(what)) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_RETURN_NOT_OK(CheckSlot(slot_, tuple));
    const nn::BBox& b = tuple[slot_].bbox();
    if (what_ == "width") return MetaValue(int64_t{b.Width()});
    if (what_ == "height") return MetaValue(int64_t{b.Height()});
    if (what_ == "area") return MetaValue(int64_t{b.Area()});
    if (what_ == "cx") return MetaValue(int64_t{b.CenterX()});
    if (what_ == "cy") return MetaValue(int64_t{b.CenterY()});
    if (what_ == "x0") return MetaValue(int64_t{b.x0});
    if (what_ == "y0") return MetaValue(int64_t{b.y0});
    if (what_ == "x1") return MetaValue(int64_t{b.x1});
    if (what_ == "y1") return MetaValue(int64_t{b.y1});
    return Status::InvalidArgument("unknown geometry accessor: " + what_);
  }
  std::string ToString() const override {
    return "$" + std::to_string(slot_) + ".@" + what_;
  }

 private:
  size_t slot_;
  std::string what_;
};

enum class CmpKind { kEq, kNe, kLt, kLe, kGt, kGe };

class CmpExpr : public Expr {
 public:
  CmpExpr(CmpKind kind, ExprPtr a, ExprPtr b)
      : kind_(kind), a_(std::move(a)), b_(std::move(b)) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_ASSIGN_OR_RETURN(MetaValue va, a_->Eval(tuple));
    DL_ASSIGN_OR_RETURN(MetaValue vb, b_->Eval(tuple));
    if (va.is_null() || vb.is_null()) return MetaValue();  // SQL-ish null
    const int c = va.Compare(vb);
    switch (kind_) {
      case CmpKind::kEq:
        return MetaValue(c == 0);
      case CmpKind::kNe:
        return MetaValue(c != 0);
      case CmpKind::kLt:
        return MetaValue(c < 0);
      case CmpKind::kLe:
        return MetaValue(c <= 0);
      case CmpKind::kGt:
        return MetaValue(c > 0);
      case CmpKind::kGe:
        return MetaValue(c >= 0);
    }
    return Status::Internal("bad comparison kind");
  }
  std::string ToString() const override {
    const char* op = "?";
    switch (kind_) {
      case CmpKind::kEq: op = "=="; break;
      case CmpKind::kNe: op = "!="; break;
      case CmpKind::kLt: op = "<"; break;
      case CmpKind::kLe: op = "<="; break;
      case CmpKind::kGt: op = ">"; break;
      case CmpKind::kGe: op = ">="; break;
    }
    return "(" + a_->ToString() + " " + op + " " + b_->ToString() + ")";
  }
  Status Validate(const std::vector<PatchSchema>& schemas) const override {
    DL_RETURN_NOT_OK(a_->Validate(schemas));
    DL_RETURN_NOT_OK(b_->Validate(schemas));
    // Domain check: attr == string-literal against a closed domain.
    auto* attr = dynamic_cast<const AttrExpr*>(a_.get());
    auto* lit = dynamic_cast<const LitExpr*>(b_.get());
    if (attr != nullptr && lit != nullptr &&
        attr->slot() < schemas.size()) {
      DL_ASSIGN_OR_RETURN(MetaValue v, lit->Eval({}));
      return schemas[attr->slot()].ValidatePredicate(attr->key(), v);
    }
    return Status::OK();
  }

  Status EvalBatch(const PatchTuple* rows, size_t n,
                   MetaValue* out) const override {
    // Fused loop for the attr-vs-literal shape: one metadata lookup and one
    // comparison per row, no virtual dispatch, no MetaValue temporaries.
    const auto* attr = dynamic_cast<const AttrExpr*>(a_.get());
    const auto* lit = dynamic_cast<const LitExpr*>(b_.get());
    bool swapped = false;
    if (attr == nullptr || lit == nullptr) {
      attr = dynamic_cast<const AttrExpr*>(b_.get());
      lit = dynamic_cast<const LitExpr*>(a_.get());
      swapped = true;
    }
    if (attr == nullptr || lit == nullptr) {
      return Expr::EvalBatch(rows, n, out);
    }
    const MetaValue& litv = lit->value();
    const size_t slot = attr->slot();
    const std::string& key = attr->key();
    for (size_t i = 0; i < n; ++i) {
      DL_RETURN_NOT_OK(CheckSlot(slot, rows[i]));
      const MetaValue& v = rows[i][slot].meta().Get(key);
      if (v.is_null() || litv.is_null()) {
        out[i] = MetaValue();
        continue;
      }
      int c = v.Compare(litv);
      if (swapped) c = -c;
      switch (kind_) {
        case CmpKind::kEq: out[i] = MetaValue(c == 0); break;
        case CmpKind::kNe: out[i] = MetaValue(c != 0); break;
        case CmpKind::kLt: out[i] = MetaValue(c < 0); break;
        case CmpKind::kLe: out[i] = MetaValue(c <= 0); break;
        case CmpKind::kGt: out[i] = MetaValue(c > 0); break;
        case CmpKind::kGe: out[i] = MetaValue(c >= 0); break;
      }
    }
    return Status::OK();
  }

  bool AsAttrCmpLit(int* op, size_t* slot, std::string* key,
                    MetaValue* value) const override {
    const auto* attr = dynamic_cast<const AttrExpr*>(a_.get());
    const auto* lit = dynamic_cast<const LitExpr*>(b_.get());
    bool swapped = false;
    if (attr == nullptr || lit == nullptr) {
      attr = dynamic_cast<const AttrExpr*>(b_.get());
      lit = dynamic_cast<const LitExpr*>(a_.get());
      swapped = true;
    }
    if (attr == nullptr || lit == nullptr) return false;
    int raw;
    switch (kind_) {
      case CmpKind::kEq: raw = 0; break;
      case CmpKind::kLt: raw = -2; break;
      case CmpKind::kLe: raw = -1; break;
      case CmpKind::kGt: raw = 2; break;
      case CmpKind::kGe: raw = 1; break;
      default: return false;  // != is not index-accelerable
    }
    *op = swapped ? -raw : raw;
    *slot = attr->slot();
    *key = attr->key();
    *value = lit->Eval({}).value();
    return true;
  }

  void CollectUdfUse(std::vector<UdfUse>* out) const override {
    a_->CollectUdfUse(out);
    b_->CollectUdfUse(out);
  }

  bool has_proxy() const override {
    const Expr* value_side = nullptr;
    const LitExpr* lit = nullptr;
    bool swapped = false;
    return MatchProxySides(&value_side, &lit, &swapped);
  }

  Result<ProxyVerdict> EvalProxy(const PatchTuple& tuple) const override {
    const Expr* value_side = nullptr;
    const LitExpr* lit = nullptr;
    bool swapped = false;
    if (!MatchProxySides(&value_side, &lit, &swapped)) {
      return ProxyVerdict{};
    }
    ProxyValue pv;
    if (!value_side->EvalProxyValue(tuple, &pv)) return ProxyVerdict{};
    const MetaValue& litv = lit->value();
    if (pv.estimate.is_null() || litv.is_null()) {
      // The full comparison over a null side evaluates to null, which a
      // predicate treats as non-matching — the proxy can assert that
      // with its own confidence.
      return ProxyVerdict{false, pv.confidence};
    }
    const auto est_num = pv.estimate.AsNumeric();
    const auto lit_num = litv.AsNumeric();
    int c = pv.estimate.Compare(litv);
    if (swapped) c = -c;
    bool pass = false;
    switch (kind_) {
      case CmpKind::kEq: pass = c == 0; break;
      case CmpKind::kNe: pass = c != 0; break;
      case CmpKind::kLt: pass = c < 0; break;
      case CmpKind::kLe: pass = c <= 0; break;
      case CmpKind::kGt: pass = c > 0; break;
      case CmpKind::kGe: pass = c >= 0; break;
    }
    if (!est_num.ok() || !lit_num.ok()) {
      // Non-numeric (e.g. OCR text): only exact-match comparisons carry
      // proxy meaning; ordering a guessed string is noise.
      if (kind_ == CmpKind::kEq || kind_ == CmpKind::kNe) {
        return ProxyVerdict{pass, pv.confidence};
      }
      return ProxyVerdict{};
    }
    // Numeric: confidence grows with the estimate-vs-literal margin
    // relative to the proxy's error bound. An estimate within the band
    // of an equality literal is "maybe equal" — no confidence either way.
    const double est = est_num.value();
    const double lv = lit_num.value();
    const double denom = std::max(std::max(std::fabs(est), std::fabs(lv)),
                                  1e-9);
    const double margin = std::fabs(est - lv) / denom;
    const double rel = std::max(pv.rel_error, 1e-6);
    double confidence;
    if (kind_ == CmpKind::kEq || kind_ == CmpKind::kNe) {
      confidence = margin <= rel
                       ? 0.0
                       : pv.confidence *
                             std::min(1.0, (margin - rel) / (3.0 * rel));
    } else {
      confidence = pv.confidence * std::min(1.0, margin / (4.0 * rel));
    }
    return ProxyVerdict{pass, confidence};
  }

 private:
  // Matches the (proxy-capable value) <op> (literal) shape, either side.
  bool MatchProxySides(const Expr** value_side, const LitExpr** lit,
                       bool* swapped) const {
    *value_side = a_.get();
    *lit = dynamic_cast<const LitExpr*>(b_.get());
    *swapped = false;
    if (*lit == nullptr || !(*value_side)->has_proxy_value()) {
      *value_side = b_.get();
      *lit = dynamic_cast<const LitExpr*>(a_.get());
      *swapped = true;
    }
    return *lit != nullptr && (*value_side)->has_proxy_value();
  }

  CmpKind kind_;
  ExprPtr a_, b_;
};

enum class BoolKind { kAnd, kOr, kNot };

class BoolExpr : public Expr {
 public:
  BoolExpr(BoolKind kind, ExprPtr a, ExprPtr b)
      : kind_(kind), a_(std::move(a)), b_(std::move(b)) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_ASSIGN_OR_RETURN(bool va, a_->EvalBool(tuple));
    if (kind_ == BoolKind::kNot) return MetaValue(!va);
    if (kind_ == BoolKind::kAnd && !va) return MetaValue(false);
    if (kind_ == BoolKind::kOr && va) return MetaValue(true);
    DL_ASSIGN_OR_RETURN(bool vb, b_->EvalBool(tuple));
    return MetaValue(kind_ == BoolKind::kAnd ? (va && vb) : (va || vb));
  }
  std::string ToString() const override {
    switch (kind_) {
      case BoolKind::kNot:
        return "!" + a_->ToString();
      case BoolKind::kAnd:
        return "(" + a_->ToString() + " && " + b_->ToString() + ")";
      case BoolKind::kOr:
        return "(" + a_->ToString() + " || " + b_->ToString() + ")";
    }
    return "?";
  }
  Status Validate(const std::vector<PatchSchema>& schemas) const override {
    DL_RETURN_NOT_OK(a_->Validate(schemas));
    if (b_) DL_RETURN_NOT_OK(b_->Validate(schemas));
    return Status::OK();
  }

  bool AsConjunction(ExprPtr* left, ExprPtr* right) const override {
    if (kind_ != BoolKind::kAnd) return false;
    *left = a_;
    *right = b_;
    return true;
  }

  void CollectUdfUse(std::vector<UdfUse>* out) const override {
    a_->CollectUdfUse(out);
    if (b_) b_->CollectUdfUse(out);
  }

 private:
  BoolKind kind_;
  ExprPtr a_, b_;
};

enum class ArithKind { kAdd, kSub, kMul };

class ArithExpr : public Expr {
 public:
  ArithExpr(ArithKind kind, ExprPtr a, ExprPtr b)
      : kind_(kind), a_(std::move(a)), b_(std::move(b)) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_ASSIGN_OR_RETURN(MetaValue va, a_->Eval(tuple));
    DL_ASSIGN_OR_RETURN(MetaValue vb, b_->Eval(tuple));
    if (va.is_null() || vb.is_null()) return MetaValue();
    // Integer arithmetic stays integral; anything else widens to double.
    if (va.type() == ValueType::kInt && vb.type() == ValueType::kInt) {
      const int64_t x = va.AsInt().value();
      const int64_t y = vb.AsInt().value();
      switch (kind_) {
        case ArithKind::kAdd: return MetaValue(x + y);
        case ArithKind::kSub: return MetaValue(x - y);
        case ArithKind::kMul: return MetaValue(x * y);
      }
    }
    DL_ASSIGN_OR_RETURN(double x, va.AsNumeric());
    DL_ASSIGN_OR_RETURN(double y, vb.AsNumeric());
    switch (kind_) {
      case ArithKind::kAdd: return MetaValue(x + y);
      case ArithKind::kSub: return MetaValue(x - y);
      case ArithKind::kMul: return MetaValue(x * y);
    }
    return Status::Internal("bad arithmetic kind");
  }
  std::string ToString() const override {
    const char* op = kind_ == ArithKind::kAdd
                         ? "+"
                         : (kind_ == ArithKind::kSub ? "-" : "*");
    return "(" + a_->ToString() + " " + op + " " + b_->ToString() + ")";
  }
  Status Validate(const std::vector<PatchSchema>& schemas) const override {
    DL_RETURN_NOT_OK(a_->Validate(schemas));
    return b_->Validate(schemas);
  }

  void CollectUdfUse(std::vector<UdfUse>* out) const override {
    a_->CollectUdfUse(out);
    b_->CollectUdfUse(out);
  }

 private:
  ArithKind kind_;
  ExprPtr a_, b_;
};

class FeatureDistanceExpr : public Expr {
 public:
  FeatureDistanceExpr(size_t a, size_t b) : a_(a), b_(b) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_RETURN_NOT_OK(CheckSlot(a_, tuple));
    DL_RETURN_NOT_OK(CheckSlot(b_, tuple));
    const Tensor& fa = tuple[a_].features();
    const Tensor& fb = tuple[b_].features();
    if (fa.empty() || fb.empty()) {
      return Status::InvalidArgument(
          "FeatureDistance on a patch without features (run a Transformer "
          "first)");
    }
    return MetaValue(static_cast<double>(ops::L2Distance(fa, fb)));
  }
  std::string ToString() const override {
    return "dist($" + std::to_string(a_) + ", $" + std::to_string(b_) + ")";
  }

 private:
  size_t a_, b_;
};

class BoxIouExpr : public Expr {
 public:
  BoxIouExpr(size_t a, size_t b) : a_(a), b_(b) {}

  Result<MetaValue> Eval(const PatchTuple& tuple) const override {
    DL_RETURN_NOT_OK(CheckSlot(a_, tuple));
    DL_RETURN_NOT_OK(CheckSlot(b_, tuple));
    return MetaValue(
        static_cast<double>(tuple[a_].bbox().Iou(tuple[b_].bbox())));
  }
  std::string ToString() const override {
    return "iou($" + std::to_string(a_) + ", $" + std::to_string(b_) + ")";
  }

 private:
  size_t a_, b_;
};

}  // namespace

ExprPtr Attr(size_t slot, std::string key) {
  return std::make_shared<AttrExpr>(slot, std::move(key));
}
ExprPtr Attr(std::string key) { return Attr(0, std::move(key)); }
ExprPtr Lit(MetaValue value) {
  return std::make_shared<LitExpr>(std::move(value));
}
ExprPtr Geom(size_t slot, std::string what) {
  return std::make_shared<GeomExpr>(slot, std::move(what));
}

ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return std::make_shared<CmpExpr>(CmpKind::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return std::make_shared<CmpExpr>(CmpKind::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return std::make_shared<CmpExpr>(CmpKind::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return std::make_shared<CmpExpr>(CmpKind::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return std::make_shared<CmpExpr>(CmpKind::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return std::make_shared<CmpExpr>(CmpKind::kGe, std::move(a), std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return std::make_shared<BoolExpr>(BoolKind::kAnd, std::move(a),
                                    std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return std::make_shared<BoolExpr>(BoolKind::kOr, std::move(a),
                                    std::move(b));
}
ExprPtr Not(ExprPtr a) {
  return std::make_shared<BoolExpr>(BoolKind::kNot, std::move(a), nullptr);
}

ExprPtr Add(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithKind::kAdd, std::move(a),
                                     std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithKind::kSub, std::move(a),
                                     std::move(b));
}
ExprPtr MulE(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithKind::kMul, std::move(a),
                                     std::move(b));
}

ExprPtr FeatureDistance(size_t slot_a, size_t slot_b) {
  return std::make_shared<FeatureDistanceExpr>(slot_a, slot_b);
}
ExprPtr BoxIou(size_t slot_a, size_t slot_b) {
  return std::make_shared<BoxIouExpr>(slot_a, slot_b);
}

// --- CompiledPredicate ----------------------------------------------------

namespace {

// Appends `expr`'s top-level conjuncts to `out` in left-to-right order.
void FlattenConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  ExprPtr left, right;
  if (expr->AsConjunction(&left, &right)) {
    FlattenConjuncts(left, out);
    FlattenConjuncts(right, out);
    return;
  }
  out->push_back(expr);
}

}  // namespace

// Selectivity is only observed for the first kMaxTrackedSteps conjuncts:
// the batch-local counters live on the eval loops' stack, so the bound
// keeps them fixed-size (predicates beyond it still execute correctly,
// their tail conjuncts just keep their plan-time estimates).
constexpr size_t kMaxTrackedSteps = 16;

CompiledPredicate::SelectivityCounters::SelectivityCounters(
    std::vector<uint64_t> fps)
    : shape_fps(std::move(fps)),
      evaluated(shape_fps.size()),
      passed(shape_fps.size()) {}

CompiledPredicate::SelectivityCounters::~SelectivityCounters() {
  CostModel* model = CostModel::Global();
  for (size_t i = 0; i < shape_fps.size(); ++i) {
    model->RecordSelectivity(shape_fps[i],
                             evaluated[i].load(std::memory_order_relaxed),
                             passed[i].load(std::memory_order_relaxed));
  }
}

CompiledPredicate::CompiledPredicate(ExprPtr pred) {
  if (!pred) return;
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(pred, &conjuncts);
  steps_.reserve(conjuncts.size());
  for (const ExprPtr& c : conjuncts) {
    Step step;
    step.shape_fp = ConjunctShapeFingerprint(c);
    if (!c->AsAttrCmpLit(&step.op, &step.slot, &step.key, &step.value)) {
      step.fallback = c;
    }
    steps_.push_back(std::move(step));
  }
  std::vector<uint64_t> fps;
  fps.reserve(std::min(steps_.size(), kMaxTrackedSteps));
  for (size_t i = 0; i < steps_.size() && i < kMaxTrackedSteps; ++i) {
    fps.push_back(steps_[i].shape_fp);
  }
  if (!fps.empty()) {
    counters_ = std::make_shared<SelectivityCounters>(std::move(fps));
  }
  std::vector<UdfUse> udfs;
  pred->CollectUdfUse(&udfs);
  for (const UdfUse& u : udfs) {
    // Priming only pays off when a cache will consume the fingerprint —
    // and not through a cascade, whose skip path exists precisely to
    // avoid touching the pixels of most rows.
    if (u.cached && !u.cascaded) has_nn_udf_ = true;
  }
}

bool CompiledPredicate::StepPasses(const Step& step, const MetaValue& attr) {
  if (attr.is_null() || step.value.is_null()) return false;
  const int c = attr.Compare(step.value);
  switch (step.op) {
    case -2: return c < 0;
    case -1: return c <= 0;
    case 0: return c == 0;
    case 1: return c >= 0;
    case 2: return c > 0;
  }
  return false;
}

Status CompiledPredicate::EvalTupleRows(const PatchTuple* rows, size_t n,
                                        uint8_t* out) const {
  // Batch-local selectivity tallies, flushed with one atomic add per
  // step after the loop, so morsel workers don't contend per row.
  uint32_t eval_local[kMaxTrackedSteps] = {0};
  uint32_t pass_local[kMaxTrackedSteps] = {0};
  const size_t tracked =
      counters_ ? std::min(steps_.size(), kMaxTrackedSteps) : 0;
  for (size_t i = 0; i < n; ++i) {
    const PatchTuple& row = rows[i];
    uint8_t pass = 1;
    for (size_t s = 0; s < steps_.size(); ++s) {
      const Step& step = steps_[s];
      bool ok;
      if (step.fallback) {
        DL_ASSIGN_OR_RETURN(ok, step.fallback->EvalBool(row));
      } else {
        DL_RETURN_NOT_OK(CheckSlot(step.slot, row));
        ok = StepPasses(step, row[step.slot].meta().Get(step.key));
      }
      if (s < tracked) {
        ++eval_local[s];
        if (ok) ++pass_local[s];
      }
      if (!ok) {
        pass = 0;
        break;
      }
    }
    out[i] = pass;
  }
  for (size_t s = 0; s < tracked; ++s) {
    counters_->evaluated[s].fetch_add(eval_local[s],
                                      std::memory_order_relaxed);
    counters_->passed[s].fetch_add(pass_local[s], std::memory_order_relaxed);
  }
  return Status::OK();
}

Status CompiledPredicate::EvalPatchRows(const Patch* rows, size_t n,
                                        uint8_t* out) const {
  PatchTuple scratch;  // materialized lazily, only for fallback conjuncts
  uint32_t eval_local[kMaxTrackedSteps] = {0};
  uint32_t pass_local[kMaxTrackedSteps] = {0};
  const size_t tracked =
      counters_ ? std::min(steps_.size(), kMaxTrackedSteps) : 0;
  for (size_t i = 0; i < n; ++i) {
    uint8_t pass = 1;
    bool materialized = false;
    for (size_t s = 0; s < steps_.size(); ++s) {
      const Step& step = steps_[s];
      bool ok;
      if (step.fallback) {
        if (!materialized) {
          // Prime the fingerprint on the source row first: the memo is
          // carried into the copy AND persists in the view, so repeated
          // NN-UDF queries never re-hash the pixels.
          if (has_nn_udf_) rows[i].Fingerprint();
          // Assign into the existing slot where possible: same-shape
          // image buffers are reused instead of reallocated per row.
          if (scratch.empty()) {
            scratch.push_back(rows[i]);
          } else {
            scratch[0] = rows[i];
          }
          materialized = true;
        }
        DL_ASSIGN_OR_RETURN(ok, step.fallback->EvalBool(scratch));
      } else {
        if (step.slot != 0) {
          return Status::OutOfRange("expression references tuple slot " +
                                    std::to_string(step.slot) + " of 1");
        }
        ok = StepPasses(step, rows[i].meta().Get(step.key));
      }
      if (s < tracked) {
        ++eval_local[s];
        if (ok) ++pass_local[s];
      }
      if (!ok) {
        pass = 0;
        break;
      }
    }
    out[i] = pass;
  }
  for (size_t s = 0; s < tracked; ++s) {
    counters_->evaluated[s].fetch_add(eval_local[s],
                                      std::memory_order_relaxed);
    counters_->passed[s].fetch_add(pass_local[s], std::memory_order_relaxed);
  }
  return Status::OK();
}

Result<bool> CompiledPredicate::EvalOne(const PatchTuple& row) const {
  uint8_t out = 0;
  DL_RETURN_NOT_OK(EvalTupleRows(&row, 1, &out));
  return out != 0;
}

Result<bool> CompiledPredicate::EvalOnePatch(const Patch& row) const {
  uint8_t out = 0;
  DL_RETURN_NOT_OK(EvalPatchRows(&row, 1, &out));
  return out != 0;
}

}  // namespace deeplens
