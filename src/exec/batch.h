// Batch-at-a-time (vectorized) execution layer. A PatchBatch carries up to
// a configurable number of tuples per Next() call, amortizing virtual
// dispatch and enabling batched predicate evaluation (EvalBatch /
// CompiledPredicate) and morsel-driven parallelism (exec/pipeline.h).
// BatchToTuple / TupleToBatch adapt between this engine and the legacy
// tuple-at-a-time Volcano iterators so either API can drive the other.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/patch.h"
#include "exec/operators.h"

namespace deeplens {

/// Default number of tuples per batch. Large enough to amortize per-batch
/// overheads, small enough that a batch of pixel-carrying patches stays
/// cache/memory friendly.
inline constexpr size_t kDefaultBatchSize = 1024;

/// \brief A vector of tuples flowing through the batch engine. Operators
/// own the batches they emit and are free to mutate tuples in place
/// (filters compact, maps transform, projects shrink).
struct PatchBatch {
  std::vector<PatchTuple> tuples;

  size_t size() const { return tuples.size(); }
  bool empty() const { return tuples.empty(); }
  PatchTuple& operator[](size_t i) { return tuples[i]; }
  const PatchTuple& operator[](size_t i) const { return tuples[i]; }
  void clear() { tuples.clear(); }
  void reserve(size_t n) { tuples.reserve(n); }
};

/// \brief Pull-based batch iterator. Next() yields non-empty batches until
/// nullopt. Implementations never emit empty batches.
class BatchIterator {
 public:
  virtual ~BatchIterator() = default;

  /// Yields the next batch, nullopt at end, or an error status.
  virtual Result<std::optional<PatchBatch>> Next() = 0;
};

using BatchIteratorPtr = std::unique_ptr<BatchIterator>;

// --- Sources ---------------------------------------------------------------

/// Emits a materialized collection as batches of 1-tuples. The source owns
/// the collection and moves patches into the emitted batches.
BatchIteratorPtr MakeBatchVectorSource(PatchCollection patches,
                                       size_t batch_size = kDefaultBatchSize);

/// Emits a materialized tuple vector batch-wise (joins produce these).
BatchIteratorPtr MakeBatchTupleSource(std::vector<PatchTuple> tuples,
                                      size_t batch_size = kDefaultBatchSize);

// --- Streaming operators ---------------------------------------------------

/// Batch Select: compacts each child batch down to the tuples passing
/// `predicate`, evaluated batch-at-a-time (no per-tuple virtual dispatch
/// for attr-vs-literal conjunctions).
BatchIteratorPtr MakeBatchFilter(BatchIteratorPtr child, ExprPtr predicate);

/// Batch Map: applies `fn` to every tuple of every batch.
BatchIteratorPtr MakeBatchMap(
    BatchIteratorPtr child, std::function<Result<PatchTuple>(PatchTuple)> fn);

/// Stops after `limit` tuples, truncating the final batch.
BatchIteratorPtr MakeBatchLimit(BatchIteratorPtr child, size_t limit);

/// Concatenates children in order.
BatchIteratorPtr MakeBatchUnion(std::vector<BatchIteratorPtr> children);

/// Batch projection (see ProjectSpec in exec/operators.h).
BatchIteratorPtr MakeBatchProject(BatchIteratorPtr child, ProjectSpec spec);

// --- Adapters --------------------------------------------------------------

/// Wraps a batch iterator as a tuple-at-a-time iterator (legacy API).
PatchIteratorPtr BatchToTuple(BatchIteratorPtr child);

/// Wraps a tuple iterator as a batch iterator, pulling up to `batch_size`
/// tuples per batch. If the child errors mid-batch, the tuples pulled so
/// far are delivered first and the error surfaces on the following Next(),
/// preserving tuple-at-a-time error ordering across the adapter.
BatchIteratorPtr TupleToBatch(PatchIteratorPtr child,
                              size_t batch_size = kDefaultBatchSize);

/// Non-owning variant for draining a caller-owned iterator batch-wise.
BatchIteratorPtr TupleToBatch(PatchIterator* child,
                              size_t batch_size = kDefaultBatchSize);

// --- Drain helpers ---------------------------------------------------------

/// Pulls everything into a flat vector of tuples.
Result<std::vector<PatchTuple>> CollectBatches(BatchIterator* it);

/// Pulls everything, asserting 1-tuples, into a flat collection.
Result<PatchCollection> CollectBatchPatches(BatchIterator* it);

/// Counts tuples without materializing them.
Result<uint64_t> DrainBatches(BatchIterator* it);

}  // namespace deeplens
