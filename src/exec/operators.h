// Tuple-at-a-time iterator API over Tuple<Patch> (paper §2.2, §5). Every
// operator is closed algebra: patch tuples in, patch tuples out. Sources
// wrap materialized collections or storage scans; Select/Map/Limit stream.
//
// Since the vectorized refactor the streaming operators returned by
// MakeFilter/MakeMap/MakeLimit/MakeUnion/MakeProject are thin adapters over
// the batch-at-a-time engine in exec/batch.h: tuples are gathered into
// PatchBatches, processed batch-wise, and handed back one at a time. The
// original single-tuple implementations remain available as MakeVolcano* —
// they are the reference the batch engine is tested against and the
// baseline the pipeline benchmark compares to.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/patch.h"
#include "exec/expression.h"

namespace deeplens {

/// \brief Pull-based iterator. Next() yields tuples until nullopt.
class PatchIterator {
 public:
  virtual ~PatchIterator() = default;

  /// Yields the next tuple, nullopt at end, or an error status.
  virtual Result<std::optional<PatchTuple>> Next() = 0;
};

using PatchIteratorPtr = std::unique_ptr<PatchIterator>;

// --- Sources -------------------------------------------------------------

/// Iterates a materialized collection as 1-tuples.
PatchIteratorPtr MakeVectorSource(PatchCollection patches);

/// Iterates tuples produced by a generator callback (nullopt ends).
PatchIteratorPtr MakeGeneratorSource(
    std::function<Result<std::optional<PatchTuple>>()> fn);

// --- Streaming operators ---------------------------------------------------

/// Select: keeps tuples where `predicate` evaluates true (paper §5).
PatchIteratorPtr MakeFilter(PatchIteratorPtr child, ExprPtr predicate);

/// Map: arbitrary tuple transform (featurize, annotate, reshape).
PatchIteratorPtr MakeMap(
    PatchIteratorPtr child,
    std::function<Result<PatchTuple>(PatchTuple)> fn);

/// Stops after `limit` tuples.
PatchIteratorPtr MakeLimit(PatchIteratorPtr child, size_t limit);

/// Concatenates children in order.
PatchIteratorPtr MakeUnion(std::vector<PatchIteratorPtr> children);

/// Projection in the storage sense: drops pixel payloads and/or all but
/// the named metadata keys, shrinking tuples before materialization.
struct ProjectSpec {
  bool keep_pixels = false;
  bool keep_features = true;
  /// Empty = keep every key.
  std::vector<std::string> keep_meta_keys;
};
PatchIteratorPtr MakeProject(PatchIteratorPtr child, ProjectSpec spec);

/// Applies a projection to one patch in place (shared by the tuple and
/// batch engines).
void ApplyProjectSpec(const ProjectSpec& spec, Patch* patch);

// --- Reference tuple-at-a-time implementations -----------------------------
// The pre-vectorization Volcano operators: one virtual Next() per tuple,
// no batching. Kept as the equivalence-test oracle and benchmark baseline.

PatchIteratorPtr MakeVolcanoFilter(PatchIteratorPtr child, ExprPtr predicate);
PatchIteratorPtr MakeVolcanoMap(
    PatchIteratorPtr child, std::function<Result<PatchTuple>(PatchTuple)> fn);
PatchIteratorPtr MakeVolcanoLimit(PatchIteratorPtr child, size_t limit);
PatchIteratorPtr MakeVolcanoUnion(std::vector<PatchIteratorPtr> children);
PatchIteratorPtr MakeVolcanoProject(PatchIteratorPtr child, ProjectSpec spec);

// --- Drain helpers ---------------------------------------------------------

/// Pulls everything into a vector of tuples.
Result<std::vector<PatchTuple>> Collect(PatchIterator* it);

/// Pulls everything, asserting 1-tuples, into a flat collection.
Result<PatchCollection> CollectPatches(PatchIterator* it);

/// Counts tuples without materializing them.
Result<uint64_t> Drain(PatchIterator* it);

}  // namespace deeplens
