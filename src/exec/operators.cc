#include "exec/operators.h"

#include <algorithm>

#include "exec/batch.h"

namespace deeplens {

namespace {

class VectorSource : public PatchIterator {
 public:
  explicit VectorSource(PatchCollection patches)
      : patches_(std::move(patches)) {}

  Result<std::optional<PatchTuple>> Next() override {
    if (pos_ >= patches_.size()) return std::optional<PatchTuple>();
    PatchTuple t{patches_[pos_++]};
    return std::optional<PatchTuple>(std::move(t));
  }

 private:
  PatchCollection patches_;
  size_t pos_ = 0;
};

class GeneratorSource : public PatchIterator {
 public:
  explicit GeneratorSource(
      std::function<Result<std::optional<PatchTuple>>()> fn)
      : fn_(std::move(fn)) {}

  Result<std::optional<PatchTuple>> Next() override { return fn_(); }

 private:
  std::function<Result<std::optional<PatchTuple>>()> fn_;
};

// --- Volcano reference operators (pre-vectorization implementations) -------

class VolcanoFilterOp : public PatchIterator {
 public:
  VolcanoFilterOp(PatchIteratorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Result<std::optional<PatchTuple>> Next() override {
    while (true) {
      DL_ASSIGN_OR_RETURN(auto tuple, child_->Next());
      if (!tuple.has_value()) return std::optional<PatchTuple>();
      DL_ASSIGN_OR_RETURN(bool pass, predicate_->EvalBool(*tuple));
      if (pass) return tuple;
    }
  }

 private:
  PatchIteratorPtr child_;
  ExprPtr predicate_;
};

class VolcanoMapOp : public PatchIterator {
 public:
  VolcanoMapOp(PatchIteratorPtr child,
               std::function<Result<PatchTuple>(PatchTuple)> fn)
      : child_(std::move(child)), fn_(std::move(fn)) {}

  Result<std::optional<PatchTuple>> Next() override {
    DL_ASSIGN_OR_RETURN(auto tuple, child_->Next());
    if (!tuple.has_value()) return std::optional<PatchTuple>();
    DL_ASSIGN_OR_RETURN(PatchTuple mapped, fn_(std::move(*tuple)));
    return std::optional<PatchTuple>(std::move(mapped));
  }

 private:
  PatchIteratorPtr child_;
  std::function<Result<PatchTuple>(PatchTuple)> fn_;
};

class VolcanoLimitOp : public PatchIterator {
 public:
  VolcanoLimitOp(PatchIteratorPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Result<std::optional<PatchTuple>> Next() override {
    if (emitted_ >= limit_) return std::optional<PatchTuple>();
    DL_ASSIGN_OR_RETURN(auto tuple, child_->Next());
    if (tuple.has_value()) ++emitted_;
    return tuple;
  }

 private:
  PatchIteratorPtr child_;
  size_t limit_;
  size_t emitted_ = 0;
};

class VolcanoUnionOp : public PatchIterator {
 public:
  explicit VolcanoUnionOp(std::vector<PatchIteratorPtr> children)
      : children_(std::move(children)) {}

  Result<std::optional<PatchTuple>> Next() override {
    while (current_ < children_.size()) {
      DL_ASSIGN_OR_RETURN(auto tuple, children_[current_]->Next());
      if (tuple.has_value()) return tuple;
      ++current_;
    }
    return std::optional<PatchTuple>();
  }

 private:
  std::vector<PatchIteratorPtr> children_;
  size_t current_ = 0;
};

class VolcanoProjectOp : public PatchIterator {
 public:
  VolcanoProjectOp(PatchIteratorPtr child, ProjectSpec spec)
      : child_(std::move(child)), spec_(std::move(spec)) {}

  Result<std::optional<PatchTuple>> Next() override {
    DL_ASSIGN_OR_RETURN(auto tuple, child_->Next());
    if (!tuple.has_value()) return std::optional<PatchTuple>();
    for (Patch& p : *tuple) ApplyProjectSpec(spec_, &p);
    return tuple;
  }

 private:
  PatchIteratorPtr child_;
  ProjectSpec spec_;
};

// --- Batch operators --------------------------------------------------------

// Filter and Map preserve tuple-at-a-time error ordering even though they
// evaluate a whole batch eagerly: tuples produced before the erroring row
// are delivered first, and the error surfaces on the following Next() — a
// downstream Limit satisfied by those tuples never sees the error, exactly
// as with the Volcano operators.

class BatchFilterOp : public BatchIterator {
 public:
  BatchFilterOp(BatchIteratorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Result<std::optional<PatchBatch>> Next() override {
    if (pending_error_.has_value()) {
      Status st = std::move(*pending_error_);
      pending_error_.reset();
      done_ = true;
      return st;
    }
    if (done_) return std::optional<PatchBatch>();
    while (true) {
      DL_ASSIGN_OR_RETURN(auto batch, child_->Next());
      if (!batch.has_value()) return std::optional<PatchBatch>();
      const size_t n = batch->size();
      selection_.resize(n);
      const Status st = predicate_.EvalTupleRows(batch->tuples.data(), n,
                                                 selection_.data());
      if (!st.ok()) {
        // Salvage the rows before the erroring one row-at-a-time.
        PatchBatch partial;
        for (PatchTuple& t : batch->tuples) {
          auto pass = predicate_.EvalOne(t);
          if (!pass.ok()) {
            pending_error_ = pass.status();
            break;
          }
          if (*pass) partial.tuples.push_back(std::move(t));
        }
        if (!pending_error_.has_value()) pending_error_ = st;
        if (!partial.empty()) {
          return std::optional<PatchBatch>(std::move(partial));
        }
        Status first = std::move(*pending_error_);
        pending_error_.reset();
        done_ = true;
        return first;
      }
      size_t w = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!selection_[i]) continue;
        if (w != i) batch->tuples[w] = std::move(batch->tuples[i]);
        ++w;
      }
      batch->tuples.resize(w);
      if (w > 0) return batch;
      // Fully filtered batch: pull the next one rather than emit empty.
    }
  }

 private:
  BatchIteratorPtr child_;
  CompiledPredicate predicate_;
  std::vector<uint8_t> selection_;
  bool done_ = false;
  std::optional<Status> pending_error_;
};

class BatchMapOp : public BatchIterator {
 public:
  BatchMapOp(BatchIteratorPtr child,
             std::function<Result<PatchTuple>(PatchTuple)> fn)
      : child_(std::move(child)), fn_(std::move(fn)) {}

  Result<std::optional<PatchBatch>> Next() override {
    if (pending_error_.has_value()) {
      Status st = std::move(*pending_error_);
      pending_error_.reset();
      done_ = true;
      return st;
    }
    if (done_) return std::optional<PatchBatch>();
    DL_ASSIGN_OR_RETURN(auto batch, child_->Next());
    if (!batch.has_value()) return std::optional<PatchBatch>();
    for (size_t i = 0; i < batch->size(); ++i) {
      auto mapped = fn_(std::move(batch->tuples[i]));
      if (!mapped.ok()) {
        if (i == 0) {
          done_ = true;
          return mapped.status();
        }
        pending_error_ = mapped.status();
        batch->tuples.resize(i);
        return batch;
      }
      batch->tuples[i] = std::move(mapped).value();
    }
    return batch;
  }

 private:
  BatchIteratorPtr child_;
  std::function<Result<PatchTuple>(PatchTuple)> fn_;
  bool done_ = false;
  std::optional<Status> pending_error_;
};

class BatchLimitOp : public BatchIterator {
 public:
  BatchLimitOp(BatchIteratorPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Result<std::optional<PatchBatch>> Next() override {
    if (emitted_ >= limit_) return std::optional<PatchBatch>();
    DL_ASSIGN_OR_RETURN(auto batch, child_->Next());
    if (!batch.has_value()) return std::optional<PatchBatch>();
    const size_t remaining = limit_ - emitted_;
    if (batch->size() > remaining) batch->tuples.resize(remaining);
    emitted_ += batch->size();
    return batch;
  }

 private:
  BatchIteratorPtr child_;
  size_t limit_;
  size_t emitted_ = 0;
};

class BatchUnionOp : public BatchIterator {
 public:
  explicit BatchUnionOp(std::vector<BatchIteratorPtr> children)
      : children_(std::move(children)) {}

  Result<std::optional<PatchBatch>> Next() override {
    while (current_ < children_.size()) {
      DL_ASSIGN_OR_RETURN(auto batch, children_[current_]->Next());
      if (batch.has_value()) return batch;
      ++current_;
    }
    return std::optional<PatchBatch>();
  }

 private:
  std::vector<BatchIteratorPtr> children_;
  size_t current_ = 0;
};

class BatchProjectOp : public BatchIterator {
 public:
  BatchProjectOp(BatchIteratorPtr child, ProjectSpec spec)
      : child_(std::move(child)), spec_(std::move(spec)) {}

  Result<std::optional<PatchBatch>> Next() override {
    DL_ASSIGN_OR_RETURN(auto batch, child_->Next());
    if (!batch.has_value()) return std::optional<PatchBatch>();
    for (PatchTuple& t : batch->tuples) {
      for (Patch& p : t) ApplyProjectSpec(spec_, &p);
    }
    return batch;
  }

 private:
  BatchIteratorPtr child_;
  ProjectSpec spec_;
};

}  // namespace

void ApplyProjectSpec(const ProjectSpec& spec, Patch* p) {
  if (!spec.keep_pixels) p->set_pixels(Image());
  if (!spec.keep_features) p->set_features(Tensor());
  if (!spec.keep_meta_keys.empty()) {
    MetaDict kept;
    for (const std::string& key : spec.keep_meta_keys) {
      if (p->meta().Contains(key)) kept.Set(key, p->meta().Get(key));
    }
    p->mutable_meta() = std::move(kept);
  }
}

PatchIteratorPtr MakeVectorSource(PatchCollection patches) {
  return std::make_unique<VectorSource>(std::move(patches));
}

PatchIteratorPtr MakeGeneratorSource(
    std::function<Result<std::optional<PatchTuple>>()> fn) {
  return std::make_unique<GeneratorSource>(std::move(fn));
}

// The public streaming operators run on the batch engine and adapt back to
// tuples at the boundary.

PatchIteratorPtr MakeFilter(PatchIteratorPtr child, ExprPtr predicate) {
  return BatchToTuple(
      MakeBatchFilter(TupleToBatch(std::move(child)), std::move(predicate)));
}

PatchIteratorPtr MakeMap(PatchIteratorPtr child,
                         std::function<Result<PatchTuple>(PatchTuple)> fn) {
  return BatchToTuple(
      MakeBatchMap(TupleToBatch(std::move(child)), std::move(fn)));
}

PatchIteratorPtr MakeLimit(PatchIteratorPtr child, size_t limit) {
  // Cap the batch size at the limit so the adapter never over-pulls the
  // child: limit-3 over a generator still pulls exactly 3 tuples.
  const size_t batch_size = std::max<size_t>(
      1, std::min<size_t>(kDefaultBatchSize, limit));
  return BatchToTuple(
      MakeBatchLimit(TupleToBatch(std::move(child), batch_size), limit));
}

PatchIteratorPtr MakeUnion(std::vector<PatchIteratorPtr> children) {
  std::vector<BatchIteratorPtr> batched;
  batched.reserve(children.size());
  for (PatchIteratorPtr& child : children) {
    batched.push_back(TupleToBatch(std::move(child)));
  }
  return BatchToTuple(MakeBatchUnion(std::move(batched)));
}

PatchIteratorPtr MakeProject(PatchIteratorPtr child, ProjectSpec spec) {
  return BatchToTuple(
      MakeBatchProject(TupleToBatch(std::move(child)), std::move(spec)));
}

// --- Volcano factories ------------------------------------------------------

PatchIteratorPtr MakeVolcanoFilter(PatchIteratorPtr child, ExprPtr predicate) {
  return std::make_unique<VolcanoFilterOp>(std::move(child),
                                           std::move(predicate));
}

PatchIteratorPtr MakeVolcanoMap(
    PatchIteratorPtr child, std::function<Result<PatchTuple>(PatchTuple)> fn) {
  return std::make_unique<VolcanoMapOp>(std::move(child), std::move(fn));
}

PatchIteratorPtr MakeVolcanoLimit(PatchIteratorPtr child, size_t limit) {
  return std::make_unique<VolcanoLimitOp>(std::move(child), limit);
}

PatchIteratorPtr MakeVolcanoUnion(std::vector<PatchIteratorPtr> children) {
  return std::make_unique<VolcanoUnionOp>(std::move(children));
}

PatchIteratorPtr MakeVolcanoProject(PatchIteratorPtr child, ProjectSpec spec) {
  return std::make_unique<VolcanoProjectOp>(std::move(child), std::move(spec));
}

// --- Batch operator factories -----------------------------------------------

BatchIteratorPtr MakeBatchFilter(BatchIteratorPtr child, ExprPtr predicate) {
  return std::make_unique<BatchFilterOp>(std::move(child),
                                         std::move(predicate));
}

BatchIteratorPtr MakeBatchMap(BatchIteratorPtr child,
                              std::function<Result<PatchTuple>(PatchTuple)> fn) {
  return std::make_unique<BatchMapOp>(std::move(child), std::move(fn));
}

BatchIteratorPtr MakeBatchLimit(BatchIteratorPtr child, size_t limit) {
  return std::make_unique<BatchLimitOp>(std::move(child), limit);
}

BatchIteratorPtr MakeBatchUnion(std::vector<BatchIteratorPtr> children) {
  return std::make_unique<BatchUnionOp>(std::move(children));
}

BatchIteratorPtr MakeBatchProject(BatchIteratorPtr child, ProjectSpec spec) {
  return std::make_unique<BatchProjectOp>(std::move(child), std::move(spec));
}

Result<std::vector<PatchTuple>> Collect(PatchIterator* it) {
  std::vector<PatchTuple> out;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto tuple, it->Next());
    if (!tuple.has_value()) break;
    out.push_back(std::move(*tuple));
  }
  return out;
}

Result<PatchCollection> CollectPatches(PatchIterator* it) {
  PatchCollection out;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto tuple, it->Next());
    if (!tuple.has_value()) break;
    if (tuple->size() != 1) {
      return Status::InvalidArgument(
          "CollectPatches on a multi-patch tuple stream");
    }
    out.push_back(std::move((*tuple)[0]));
  }
  return out;
}

Result<uint64_t> Drain(PatchIterator* it) {
  uint64_t n = 0;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto tuple, it->Next());
    if (!tuple.has_value()) break;
    ++n;
  }
  return n;
}

}  // namespace deeplens
