#include "exec/operators.h"

#include <algorithm>

namespace deeplens {

namespace {

class VectorSource : public PatchIterator {
 public:
  explicit VectorSource(PatchCollection patches)
      : patches_(std::move(patches)) {}

  Result<std::optional<PatchTuple>> Next() override {
    if (pos_ >= patches_.size()) return std::optional<PatchTuple>();
    PatchTuple t{patches_[pos_++]};
    return std::optional<PatchTuple>(std::move(t));
  }

 private:
  PatchCollection patches_;
  size_t pos_ = 0;
};

class GeneratorSource : public PatchIterator {
 public:
  explicit GeneratorSource(
      std::function<Result<std::optional<PatchTuple>>()> fn)
      : fn_(std::move(fn)) {}

  Result<std::optional<PatchTuple>> Next() override { return fn_(); }

 private:
  std::function<Result<std::optional<PatchTuple>>()> fn_;
};

class FilterOp : public PatchIterator {
 public:
  FilterOp(PatchIteratorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Result<std::optional<PatchTuple>> Next() override {
    while (true) {
      DL_ASSIGN_OR_RETURN(auto tuple, child_->Next());
      if (!tuple.has_value()) return std::optional<PatchTuple>();
      DL_ASSIGN_OR_RETURN(bool pass, predicate_->EvalBool(*tuple));
      if (pass) return tuple;
    }
  }

 private:
  PatchIteratorPtr child_;
  ExprPtr predicate_;
};

class MapOp : public PatchIterator {
 public:
  MapOp(PatchIteratorPtr child,
        std::function<Result<PatchTuple>(PatchTuple)> fn)
      : child_(std::move(child)), fn_(std::move(fn)) {}

  Result<std::optional<PatchTuple>> Next() override {
    DL_ASSIGN_OR_RETURN(auto tuple, child_->Next());
    if (!tuple.has_value()) return std::optional<PatchTuple>();
    DL_ASSIGN_OR_RETURN(PatchTuple mapped, fn_(std::move(*tuple)));
    return std::optional<PatchTuple>(std::move(mapped));
  }

 private:
  PatchIteratorPtr child_;
  std::function<Result<PatchTuple>(PatchTuple)> fn_;
};

class LimitOp : public PatchIterator {
 public:
  LimitOp(PatchIteratorPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Result<std::optional<PatchTuple>> Next() override {
    if (emitted_ >= limit_) return std::optional<PatchTuple>();
    DL_ASSIGN_OR_RETURN(auto tuple, child_->Next());
    if (tuple.has_value()) ++emitted_;
    return tuple;
  }

 private:
  PatchIteratorPtr child_;
  size_t limit_;
  size_t emitted_ = 0;
};

class UnionOp : public PatchIterator {
 public:
  explicit UnionOp(std::vector<PatchIteratorPtr> children)
      : children_(std::move(children)) {}

  Result<std::optional<PatchTuple>> Next() override {
    while (current_ < children_.size()) {
      DL_ASSIGN_OR_RETURN(auto tuple, children_[current_]->Next());
      if (tuple.has_value()) return tuple;
      ++current_;
    }
    return std::optional<PatchTuple>();
  }

 private:
  std::vector<PatchIteratorPtr> children_;
  size_t current_ = 0;
};

class ProjectOp : public PatchIterator {
 public:
  ProjectOp(PatchIteratorPtr child, ProjectSpec spec)
      : child_(std::move(child)), spec_(std::move(spec)) {}

  Result<std::optional<PatchTuple>> Next() override {
    DL_ASSIGN_OR_RETURN(auto tuple, child_->Next());
    if (!tuple.has_value()) return std::optional<PatchTuple>();
    for (Patch& p : *tuple) {
      if (!spec_.keep_pixels) p.set_pixels(Image());
      if (!spec_.keep_features) p.set_features(Tensor());
      if (!spec_.keep_meta_keys.empty()) {
        MetaDict kept;
        for (const std::string& key : spec_.keep_meta_keys) {
          if (p.meta().Contains(key)) kept.Set(key, p.meta().Get(key));
        }
        p.mutable_meta() = std::move(kept);
      }
    }
    return tuple;
  }

 private:
  PatchIteratorPtr child_;
  ProjectSpec spec_;
};

}  // namespace

PatchIteratorPtr MakeVectorSource(PatchCollection patches) {
  return std::make_unique<VectorSource>(std::move(patches));
}

PatchIteratorPtr MakeGeneratorSource(
    std::function<Result<std::optional<PatchTuple>>()> fn) {
  return std::make_unique<GeneratorSource>(std::move(fn));
}

PatchIteratorPtr MakeFilter(PatchIteratorPtr child, ExprPtr predicate) {
  return std::make_unique<FilterOp>(std::move(child), std::move(predicate));
}

PatchIteratorPtr MakeMap(PatchIteratorPtr child,
                         std::function<Result<PatchTuple>(PatchTuple)> fn) {
  return std::make_unique<MapOp>(std::move(child), std::move(fn));
}

PatchIteratorPtr MakeLimit(PatchIteratorPtr child, size_t limit) {
  return std::make_unique<LimitOp>(std::move(child), limit);
}

PatchIteratorPtr MakeUnion(std::vector<PatchIteratorPtr> children) {
  return std::make_unique<UnionOp>(std::move(children));
}

PatchIteratorPtr MakeProject(PatchIteratorPtr child, ProjectSpec spec) {
  return std::make_unique<ProjectOp>(std::move(child), std::move(spec));
}

Result<std::vector<PatchTuple>> Collect(PatchIterator* it) {
  std::vector<PatchTuple> out;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto tuple, it->Next());
    if (!tuple.has_value()) break;
    out.push_back(std::move(*tuple));
  }
  return out;
}

Result<PatchCollection> CollectPatches(PatchIterator* it) {
  PatchCollection out;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto tuple, it->Next());
    if (!tuple.has_value()) break;
    if (tuple->size() != 1) {
      return Status::InvalidArgument(
          "CollectPatches on a multi-patch tuple stream");
    }
    out.push_back(std::move((*tuple)[0]));
  }
  return out;
}

Result<uint64_t> Drain(PatchIterator* it) {
  uint64_t n = 0;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto tuple, it->Next());
    if (!tuple.has_value()) break;
    ++n;
  }
  return n;
}

}  // namespace deeplens
