#include "exec/batch.h"

#include <algorithm>

namespace deeplens {

namespace {

class BatchVectorSource : public BatchIterator {
 public:
  BatchVectorSource(PatchCollection patches, size_t batch_size)
      : patches_(std::move(patches)), batch_size_(std::max<size_t>(1, batch_size)) {}

  Result<std::optional<PatchBatch>> Next() override {
    if (pos_ >= patches_.size()) return std::optional<PatchBatch>();
    const size_t n = std::min(batch_size_, patches_.size() - pos_);
    PatchBatch batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      PatchTuple t;
      t.push_back(std::move(patches_[pos_ + i]));
      batch.tuples.push_back(std::move(t));
    }
    pos_ += n;
    return std::optional<PatchBatch>(std::move(batch));
  }

 private:
  PatchCollection patches_;
  size_t batch_size_;
  size_t pos_ = 0;
};

class BatchTupleSource : public BatchIterator {
 public:
  BatchTupleSource(std::vector<PatchTuple> tuples, size_t batch_size)
      : tuples_(std::move(tuples)), batch_size_(std::max<size_t>(1, batch_size)) {}

  Result<std::optional<PatchBatch>> Next() override {
    if (pos_ >= tuples_.size()) return std::optional<PatchBatch>();
    const size_t n = std::min(batch_size_, tuples_.size() - pos_);
    PatchBatch batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.tuples.push_back(std::move(tuples_[pos_ + i]));
    }
    pos_ += n;
    return std::optional<PatchBatch>(std::move(batch));
  }

 private:
  std::vector<PatchTuple> tuples_;
  size_t batch_size_;
  size_t pos_ = 0;
};

class BatchToTupleAdapter : public PatchIterator {
 public:
  explicit BatchToTupleAdapter(BatchIteratorPtr child)
      : child_(std::move(child)) {}

  Result<std::optional<PatchTuple>> Next() override {
    while (pos_ >= current_.size()) {
      DL_ASSIGN_OR_RETURN(auto batch, child_->Next());
      if (!batch.has_value()) return std::optional<PatchTuple>();
      current_ = std::move(*batch);
      pos_ = 0;
    }
    return std::optional<PatchTuple>(std::move(current_.tuples[pos_++]));
  }

 private:
  BatchIteratorPtr child_;
  PatchBatch current_;
  size_t pos_ = 0;
};

// Shared by the owning and non-owning TupleToBatch variants.
class TupleToBatchAdapter : public BatchIterator {
 public:
  TupleToBatchAdapter(PatchIteratorPtr owned, PatchIterator* child,
                      size_t batch_size)
      : owned_(std::move(owned)),
        child_(child),
        batch_size_(std::max<size_t>(1, batch_size)) {}

  Result<std::optional<PatchBatch>> Next() override {
    if (pending_error_.has_value()) {
      Status st = std::move(*pending_error_);
      pending_error_.reset();
      done_ = true;
      return st;
    }
    if (done_) return std::optional<PatchBatch>();
    PatchBatch batch;
    batch.reserve(batch_size_);
    while (batch.size() < batch_size_) {
      auto tuple = child_->Next();
      if (!tuple.ok()) {
        // Deliver what we already pulled; the error surfaces on the next
        // call, matching tuple-at-a-time ordering.
        if (batch.empty()) {
          done_ = true;
          return tuple.status();
        }
        pending_error_ = tuple.status();
        break;
      }
      if (!tuple->has_value()) {
        done_ = true;
        break;
      }
      batch.tuples.push_back(std::move(**tuple));
    }
    if (batch.empty()) return std::optional<PatchBatch>();
    return std::optional<PatchBatch>(std::move(batch));
  }

 private:
  PatchIteratorPtr owned_;  // may be null for the non-owning variant
  PatchIterator* child_;
  size_t batch_size_;
  bool done_ = false;
  std::optional<Status> pending_error_;
};

}  // namespace

BatchIteratorPtr MakeBatchVectorSource(PatchCollection patches,
                                       size_t batch_size) {
  return std::make_unique<BatchVectorSource>(std::move(patches), batch_size);
}

BatchIteratorPtr MakeBatchTupleSource(std::vector<PatchTuple> tuples,
                                      size_t batch_size) {
  return std::make_unique<BatchTupleSource>(std::move(tuples), batch_size);
}

PatchIteratorPtr BatchToTuple(BatchIteratorPtr child) {
  return std::make_unique<BatchToTupleAdapter>(std::move(child));
}

BatchIteratorPtr TupleToBatch(PatchIteratorPtr child, size_t batch_size) {
  PatchIterator* raw = child.get();
  return std::make_unique<TupleToBatchAdapter>(std::move(child), raw,
                                               batch_size);
}

BatchIteratorPtr TupleToBatch(PatchIterator* child, size_t batch_size) {
  return std::make_unique<TupleToBatchAdapter>(nullptr, child, batch_size);
}

Result<std::vector<PatchTuple>> CollectBatches(BatchIterator* it) {
  std::vector<PatchTuple> out;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto batch, it->Next());
    if (!batch.has_value()) break;
    for (PatchTuple& t : batch->tuples) out.push_back(std::move(t));
  }
  return out;
}

Result<PatchCollection> CollectBatchPatches(BatchIterator* it) {
  PatchCollection out;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto batch, it->Next());
    if (!batch.has_value()) break;
    for (PatchTuple& t : batch->tuples) {
      if (t.size() != 1) {
        return Status::InvalidArgument(
            "CollectPatches on a multi-patch tuple stream");
      }
      out.push_back(std::move(t[0]));
    }
  }
  return out;
}

Result<uint64_t> DrainBatches(BatchIterator* it) {
  uint64_t n = 0;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto batch, it->Next());
    if (!batch.has_value()) break;
    n += batch->size();
  }
  return n;
}

}  // namespace deeplens
