// Radix partitioning for the parallel equality-join and aggregation
// paths. The partition pass hashes every row's join key once and
// classifies it into one of 2^k partitions using the *high* bits of the
// hash (the low bits index buckets inside the per-partition tables, so
// using them for partition selection would leave every partition-local
// table with a degenerate bucket distribution). Rows whose key is NULL
// are dropped during partitioning — SQL equality semantics, identical to
// the shared-build join core.
//
// Each partition ends up holding its rows in ascending source-row order
// (per-morsel classification is concatenated partition-wise in morsel
// order), which is what lets the join stitch its output back into
// canonical left-major order without a global sort.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/patch.h"
#include "exec/pipeline.h"

namespace deeplens {

/// One row classified into a radix partition: the source row id, the full
/// 64-bit key hash (reused by the partition-local tables so keys are
/// hashed exactly once), and the order-preserving encoded key bytes.
struct RadixRow {
  uint32_t row = 0;
  uint64_t hash = 0;
  std::string key;
};

/// Output of a partition pass over one input relation.
struct RadixPartitions {
  std::vector<std::vector<RadixRow>> parts;
  /// Rows with a non-NULL key (what actually landed in `parts`).
  size_t rows_kept = 0;
  /// Largest single partition, for skew diagnostics.
  size_t max_partition = 0;
};

/// FNV-1a over the encoded key bytes (same family as HashIndex, but the
/// full 64-bit state is kept so partition id and bucket id draw from
/// independent bit ranges).
uint64_t RadixHashKey(const std::string& encoded);

/// Partition id for a hash given log2(partition count): the top
/// `log2_parts` bits.
inline size_t RadixPartitionOf(uint64_t hash, size_t log2_parts) {
  return log2_parts == 0 ? 0
                         : static_cast<size_t>(hash >> (64 - log2_parts));
}

/// The DEEPLENS_JOIN_PARTITIONS override (power of two, validated by
/// PowerOfTwoFromEnv); 0 means unset → use the heuristic. An explicit
/// override also forces the radix path below the row threshold, which is
/// how the differential tests exercise radix at oracle-affordable sizes.
uint64_t JoinPartitionOverride();

/// Partition-count heuristic: ~4 partitions per worker rounded up to a
/// power of two, shrunk while the average build partition would fall
/// under ~64 rows (tiny partitions pay more dispatch than they save),
/// capped at 1024.
size_t ChooseJoinPartitions(size_t build_rows, size_t workers);

/// Morsel-parallel partition pass: hashes `rows[*].meta().Get(key)` and
/// scatters non-NULL-key rows into 2^log2_parts partitions. Every
/// partition lists its rows in ascending source-row order regardless of
/// scheduling.
Status RadixPartitionByKey(const PatchCollection& rows,
                           const std::string& key, size_t log2_parts,
                           const MorselOptions& options,
                           RadixPartitions* out);

/// \brief Partition-local chained multimap over precomputed hashes.
///
/// Built over one partition's RadixRows; Lookup returns matching build
/// rows in ascending source-row order (the join needs each probe row's
/// matches right-ascending). Borrows the row vector — the partition must
/// outlive the table. No shared state: one table per partition, built and
/// probed by whichever worker owns that partition.
class LocalKeyTable {
 public:
  void Build(const std::vector<RadixRow>& rows);

  /// Appends the source-row ids of all build rows whose key equals
  /// (hash, key) to `out`, ascending.
  void Lookup(uint64_t hash, const std::string& key,
              std::vector<uint32_t>* out) const;

 private:
  const std::vector<RadixRow>* rows_ = nullptr;
  std::vector<int32_t> heads_;  // bucket → first row index, -1 empty
  std::vector<int32_t> next_;   // chain links, ascending row order
  uint64_t mask_ = 0;
};

}  // namespace deeplens
