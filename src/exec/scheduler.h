// Fair-share morsel scheduler: the serving layer between the morsel
// driver (exec/pipeline.h DispatchMorsels) and ThreadPool::Global().
//
// One query's DispatchMorsels used to hand its whole morsel list to the
// pool FIFO, so a long scan enqueued ahead of a short lookup starved it
// for the scan's full duration. Now every parallel dispatch enqueues a
// *task set* tagged with the calling session's tenant id and fair-share
// weight, and pool workers drain the globally fairest runnable task —
// weighted stride scheduling across all concurrently-active queries —
// so concurrent queries interleave morsel-by-morsel in proportion to
// their weights instead of queue order.
//
// Determinism is untouched: the scheduler only reorders *which* morsel
// runs when; each morsel still writes its own output slot and the
// driver's ordered merge reassembles results in morsel-index order, so
// concurrent execution stays byte-identical to serial.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace deeplens {

/// Identity + fair-share class a task set is scheduled under. Installed
/// on the calling thread by Session::Run (core/session.h) via
/// ScopedSchedulingContext; untagged callers (plain Query use, tests,
/// ETL) run as the anonymous tenant with weight 1.
struct SchedulingContext {
  std::string tenant;
  uint64_t weight = 1;
};

/// RAII thread tag: DispatchMorsels reads Current() at enqueue time, so
/// everything a query runs between construction and destruction is
/// scheduled under this context. Nests (restores the previous context).
class ScopedSchedulingContext {
 public:
  explicit ScopedSchedulingContext(SchedulingContext ctx);
  ~ScopedSchedulingContext();

  ScopedSchedulingContext(const ScopedSchedulingContext&) = delete;
  ScopedSchedulingContext& operator=(const ScopedSchedulingContext&) = delete;

  /// The calling thread's current context (anonymous default when none
  /// is installed).
  static const SchedulingContext& Current();

 private:
  SchedulingContext saved_;
};

/// Point-in-time scheduler counters (per-tenant tallies accumulate over
/// the process lifetime; `active_sets` is instantaneous).
struct SchedulerStats {
  uint64_t task_sets = 0;
  uint64_t tasks = 0;
  uint64_t active_sets = 0;
  /// Highest number of task sets ever runnable at once — >1 proves
  /// concurrent queries actually interleaved.
  uint64_t peak_active_sets = 0;
  std::map<std::string, uint64_t> tasks_by_tenant;
};

/// \brief Weighted-fair scheduler over ThreadPool::Global().
///
/// Run() enqueues `num_tasks` independent tasks as one set and blocks
/// until all complete. Execution: up to pool-width drain tickets are
/// submitted to the pool; each ticket repeatedly claims the task from
/// the *lowest-pass* active set (stride scheduling: a set's pass
/// advances by kStrideScale/weight per claimed task), runs it, and
/// exits when nothing is claimable. Tickets are interchangeable across
/// sets — a ticket submitted for one query happily drains another's
/// tasks — which is what makes the scheduler work-conserving.
///
/// Tasks must not block on other tasks (the morsel contract already
/// forbids it: nested dispatch degrades to serial via
/// ThreadPool::InWorker). Errors are the caller's concern: tasks are
/// void, and DispatchMorsels keeps its per-morsel Status slots.
class MorselScheduler {
 public:
  /// Process-wide instance, shared by every Database / session — the
  /// fair-share pool IS the process's execution capacity.
  static MorselScheduler& Global();

  /// Runs task(0..num_tasks-1) to completion under the given context.
  /// Blocks the calling thread (which does not drain: pool workers do
  /// the work, exactly like the pre-scheduler ParallelFor contract).
  void Run(size_t num_tasks, const std::function<void(size_t)>& task,
           const SchedulingContext& ctx);

  SchedulerStats Stats() const;

 private:
  MorselScheduler() = default;

  struct TaskSet;
  void DrainLoop();

  mutable std::mutex mu_;
  std::vector<TaskSet*> active_;
  uint64_t seq_ = 0;  // arrival order, for deterministic tie-breaks
  uint64_t total_sets_ = 0;
  uint64_t total_tasks_ = 0;
  uint64_t peak_active_ = 0;
  std::map<std::string, uint64_t> tasks_by_tenant_;
};

}  // namespace deeplens
