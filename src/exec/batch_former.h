// Cross-query device batch formation: continuous batching for NN UDFs.
//
// The cascade optimizer (PR 9) makes full-model invocations sparse and
// bursty, and the serving layer (PR 7) runs many sessions concurrently —
// exactly the shape where per-invocation device overhead dominates. The
// BatchFormer sits behind the `Cached*` UDF wrappers: cache-miss,
// non-singleflight-duplicate patches from all concurrent sessions stage
// into a per-(model, device) queue and are flushed as ONE batched model
// invocation when either the size threshold (DEEPLENS_DEVICE_BATCH_SIZE)
// or the deadline (DEEPLENS_BATCH_WAIT_US) fires.
//
// There is no background flusher thread: the *submitters themselves*
// drive flushes. A staged patch's submitter sleeps at most until its own
// deadline and then flushes whatever is pending, so no query can stall
// past DEEPLENS_BATCH_WAIT_US waiting on a batch that never fills, and a
// draining database (`Drain()`) hands off nothing — it just flushes.
//
// Composition with the singleflight table (cache/inflight.h): the
// inflight leader for a key routes its compute through `Run()`, so
// joiners of a staged patch attach to its flight as before. The former's
// own staged map additionally dedups identical keys when no inflight
// table is installed. Completed outcomes are Put into the inference
// cache *before* the flight resolves, preserving the invariant that late
// arrivals hit the cache.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/inference_cache.h"

namespace deeplens {

struct BatchFormerConfig {
  /// Target patches per device invocation; 0 disables the former (every
  /// miss evaluates inline, the pre-batching behavior).
  uint64_t batch_size = 0;
  /// Longest a staged patch may wait for batch-mates before its
  /// submitter flushes the queue itself, in microseconds.
  uint64_t wait_us = 2000;
};

struct BatchFormerStats {
  uint64_t staged = 0;            // patches that entered a queue
  uint64_t joined = 0;            // duplicate keys attached to a staged patch
  uint64_t invocations = 0;       // batched model invocations flushed
  uint64_t batched_items = 0;     // patches covered by those invocations
  uint64_t size_flushes = 0;      // flush chunks triggered by the threshold
  uint64_t deadline_flushes = 0;  // flush chunks triggered by a deadline
  uint64_t drain_flushes = 0;     // flush chunks triggered by Drain()
  uint64_t max_batch = 0;         // largest single invocation
  uint64_t pending = 0;           // snapshot of currently staged patches
};

class BatchFormer {
 public:
  /// One staged inference request. `pixels` must outlive the `Run()`
  /// call that submitted it — guaranteed because the submitting thread
  /// blocks inside `Run()` until its flight resolves.
  struct Item {
    const Image* pixels = nullptr;
    nn::BBox bbox;
    int frame_h = 0;
  };

  using ItemOutcome = Result<InferenceValue>;
  using Outcome = Result<std::shared_ptr<const InferenceValue>>;
  /// Evaluates a claimed chunk in one device invocation. Must return
  /// exactly one outcome per item, in item order; a per-item error fails
  /// only that item's callers (required for byte-identity of the other
  /// sessions' results).
  using BatchFn =
      std::function<std::vector<ItemOutcome>(const std::vector<const Item*>&)>;

  /// Cheap enough for the per-miss hot path.
  bool enabled() const {
    return batch_size_.load(std::memory_order_relaxed) > 0;
  }

  BatchFormerConfig config() const;

  /// Drains staged patches under the old policy, then applies `config`.
  void Configure(const BatchFormerConfig& config);

  /// Stages `item` on the `queue_key` queue (one queue per model+device)
  /// and blocks until a flush resolves it. If `item_key` is already
  /// staged, joins that entry instead of staging a duplicate. On
  /// success, the outcome has been Put into `cache` (when non-null)
  /// before this returns. `led` reports whether this call staged the
  /// entry (true) or joined an existing one (false).
  Outcome Run(const std::string& queue_key, const std::string& item_key,
              const Item& item, InferenceCache* cache, const BatchFn& batch_fn,
              bool* led = nullptr);

  /// Flushes every staged patch (used at reconfiguration and teardown so
  /// no submitter is left waiting on a batch that will never fill).
  void Drain();

  BatchFormerStats Stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Staged {
    std::string key;
    Item item;
    InferenceCache* cache = nullptr;
    Clock::time_point deadline;
    bool claimed = false;  // a flusher owns it; fulfillment is guaranteed
    std::promise<Outcome> promise;
    std::shared_future<Outcome> future;
  };

  // Queues live behind unique_ptr so their addresses survive map rehash
  // while the lock is dropped, and because condition_variable is not
  // movable.
  struct Queue {
    BatchFn batch_fn;  // taken from the first submitter
    std::deque<std::shared_ptr<Staged>> pending;
    std::unordered_map<std::string, std::shared_ptr<Staged>> staged;
    bool flush_active = false;  // at most one flusher per queue
    std::condition_variable cv;
  };

  // Claims and runs front chunks of `q` until neither the size threshold
  // nor a front-of-queue deadline (nor `drain`) holds. Entered with `lk`
  // held and `q->flush_active` false; releases the lock around model
  // invocations and restores it before returning.
  void FlushLoop(Queue* q, std::unique_lock<std::mutex>& lk, bool drain);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Queue>> queues_;
  BatchFormerConfig config_;
  std::atomic<uint64_t> batch_size_{0};
  uint64_t staged_total_ = 0;
  uint64_t joined_ = 0;
  uint64_t invocations_ = 0;
  uint64_t batched_items_ = 0;
  uint64_t size_flushes_ = 0;
  uint64_t deadline_flushes_ = 0;
  uint64_t drain_flushes_ = 0;
  uint64_t max_batch_ = 0;
};

}  // namespace deeplens
