// Typed expression trees over patch-tuple metadata: the predicate language
// of Select / θ-Join operators. Expressions evaluate against a PatchTuple
// (joins bind multiple patches; attribute references carry a tuple slot).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/patch.h"
#include "core/types.h"

namespace deeplens {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// One NN UDF occurrence inside an expression tree: which model the
/// predicate will run at evaluation time and whether an InferenceCache
/// will memoize it. Collected by the planner so Explain() reports the
/// expected cache interaction of a plan.
struct UdfUse {
  std::string model;
  bool cached = false;
  /// True when the memoizing cache also persists results to disk (they
  /// survive process restarts).
  bool persistent = false;
  /// Live hit rate of the memoizing cache at collection time (0 when
  /// uncached) — the cost model's mixing weight between the hit-path and
  /// full-model EWMAs.
  double cache_hit_rate = 0.0;
  /// True when the use sits behind a proxy cascade: most rows are
  /// expected to never reach the model, so eager per-row work keyed on
  /// "this predicate runs an NN UDF" (e.g. fingerprint priming) should
  /// not fire for it.
  bool cascaded = false;
  /// Nonzero when cache misses for this use stage into the cross-query
  /// device batch former (exec/batch_former.h); the value is the
  /// configured DEEPLENS_DEVICE_BATCH_SIZE.
  uint64_t device_batch_size = 0;
};

/// Cheap-proxy estimate of an expression's value (nn_udf proxy models).
/// `rel_error` bounds the estimate's relative error; `confidence` is the
/// producer's trust in that bound, in [0, 1].
struct ProxyValue {
  MetaValue estimate;
  double rel_error = 0.0;
  double confidence = 0.0;
};

/// Cheap-proxy verdict for a boolean predicate node. `confidence` = 0
/// means "no opinion — run the full predicate".
struct ProxyVerdict {
  bool pass = true;
  double confidence = 0.0;
};

/// \brief Expression node. Eval returns a MetaValue; predicates are
/// expressions evaluating to bool.
class Expr {
 public:
  virtual ~Expr() = default;

  virtual Result<MetaValue> Eval(const PatchTuple& tuple) const = 0;
  virtual std::string ToString() const = 0;

  /// Batch entry point: fills out[i] = Eval(rows[i]) for i < n, stopping at
  /// the first row that errors. The default loops over Eval; comparison
  /// nodes override it with fused loops that skip per-tuple virtual
  /// dispatch and MetaValue temporaries for attr-vs-literal forms.
  virtual Status EvalBatch(const PatchTuple* rows, size_t n,
                           MetaValue* out) const;

  /// Batch predicate evaluation, row-wise identical to EvalBool (null →
  /// false, non-bool → TypeError). out[i] is 1 for passing rows, else 0.
  Status EvalBoolBatch(const PatchTuple* rows, size_t n, uint8_t* out) const;

  /// Static type/domain validation against per-slot schemas (paper §4.2).
  virtual Status Validate(const std::vector<PatchSchema>& schemas) const {
    (void)schemas;
    return Status::OK();
  }

  /// Convenience: evaluate as a boolean predicate (null → false).
  Result<bool> EvalBool(const PatchTuple& tuple) const;

  // --- Planner introspection hooks (default: opaque) -------------------

  /// If this node is an AND, fills both children and returns true.
  virtual bool AsConjunction(ExprPtr* left, ExprPtr* right) const {
    (void)left;
    (void)right;
    return false;
  }

  /// Appends every NN UDF this node (or any descendant) would run at
  /// evaluation time. Compound nodes recurse; leaves default to none.
  virtual void CollectUdfUse(std::vector<UdfUse>* out) const { (void)out; }

  /// If this node compares attr(slot, key) against a literal, fills the
  /// normalized comparison (op: -2 '<', -1 '<=', 0 '==', 1 '>=', 2 '>',
  /// with the attribute on the left) and returns true.
  virtual bool AsAttrCmpLit(int* op, size_t* slot, std::string* key,
                            MetaValue* value) const {
    (void)op;
    (void)slot;
    (void)key;
    (void)value;
    return false;
  }

  // --- Proxy-cascade hooks (default: no proxy) -------------------------

  /// True when this *value* node can produce a cheap estimate of its
  /// result (a proxy model exists for the UDF).
  virtual bool has_proxy_value() const { return false; }

  /// Fills a cheap estimate of this node's value for `tuple`. Returning
  /// false means the proxy has no opinion for this row (the full model
  /// must run); it is not an error.
  virtual bool EvalProxyValue(const PatchTuple& tuple,
                              ProxyValue* out) const {
    (void)tuple;
    (void)out;
    return false;
  }

  /// True when this *predicate* node can render cheap verdicts (a
  /// comparison over a proxy-capable value against a literal).
  virtual bool has_proxy() const { return false; }

  /// Cheap verdict for `tuple`. The default has no opinion; comparison
  /// nodes over proxy-capable values derive confidence from the margin
  /// between the estimate and the literal relative to the proxy's error
  /// bound.
  virtual Result<ProxyVerdict> EvalProxy(const PatchTuple& tuple) const {
    (void)tuple;
    return ProxyVerdict{};
  }
};

// --- Leaf nodes ---------------------------------------------------------

/// Reference to a metadata attribute of tuple slot `slot`.
ExprPtr Attr(size_t slot, std::string key);
/// Reference to an attribute of slot 0 (the common single-relation case).
ExprPtr Attr(std::string key);
/// Constant.
ExprPtr Lit(MetaValue value);
/// Built-in geometric accessors on the patch itself (not the meta dict):
/// "width", "height", "area", "cx", "cy", "x0", "y0", "x1", "y1".
ExprPtr Geom(size_t slot, std::string what);

// --- Comparisons & logic -------------------------------------------------

ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);

// --- Arithmetic ----------------------------------------------------------

ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr MulE(ExprPtr a, ExprPtr b);

// --- Vision-specific -----------------------------------------------------

/// Euclidean distance between the feature vectors of two tuple slots.
ExprPtr FeatureDistance(size_t slot_a, size_t slot_b);
/// IoU between the bounding boxes of two tuple slots.
ExprPtr BoxIou(size_t slot_a, size_t slot_b);

// --- Batch predicate compilation ----------------------------------------

/// \brief A predicate lowered to a flat conjunct list for batch execution.
///
/// Attr-vs-literal comparisons (the planner-sargable AsAttrCmpLit shape)
/// are evaluated directly against the metadata dictionaries — no virtual
/// dispatch, no MetaValue temporaries per row. Conjuncts that don't match
/// that shape keep their expression tree and are evaluated per row.
/// Conjuncts preserve their original left-to-right order, so short-circuit
/// behaviour — including which error surfaces first — matches
/// Expr::EvalBool exactly.
///
/// Compiled predicates are immutable after construction and safe to share
/// across threads (the morsel driver evaluates one per worker).
class CompiledPredicate {
 public:
  /// Always-true predicate (no-op filter).
  CompiledPredicate() = default;
  /// Compiles `pred`; a null pred means always-true.
  explicit CompiledPredicate(ExprPtr pred);

  bool always_true() const { return steps_.empty(); }

  /// Row-wise evaluation over tuples: out[i] = 1 iff rows[i] passes.
  Status EvalTupleRows(const PatchTuple* rows, size_t n, uint8_t* out) const;

  /// Row-wise evaluation over bare patches treated as 1-tuples, without
  /// materializing the tuples (late materialization for scans). Rows
  /// rejected by a fast conjunct are never copied.
  Status EvalPatchRows(const Patch* rows, size_t n, uint8_t* out) const;

  /// Single-row conveniences.
  Result<bool> EvalOne(const PatchTuple& row) const;
  Result<bool> EvalOnePatch(const Patch& row) const;

 private:
  struct Step {
    // Fast conjunct: attr(slot, key) <op> value with op one of
    // -2 '<', -1 '<=', 0 '==', 1 '>=', 2 '>'.
    int op = 0;
    size_t slot = 0;
    std::string key;
    MetaValue value;
    // Non-null → this conjunct is tree-evaluated instead.
    ExprPtr fallback;
    // Shape fingerprint for selectivity observation (core/cost_model.h).
    uint64_t shape_fp = 0;
  };

  // Per-step evaluated/passed counters shared by every copy of this
  // predicate (morsel workers copy the predicate per stage). Eval loops
  // accumulate batch-locally and flush once per call; the last owner's
  // destructor publishes the totals to the global cost model, so the
  // next query over the same conjunct shapes ranks them by observed
  // selectivity.
  struct SelectivityCounters {
    explicit SelectivityCounters(std::vector<uint64_t> fps);
    ~SelectivityCounters();  // publishes to CostModel::Global()

    std::vector<uint64_t> shape_fps;
    std::vector<std::atomic<uint64_t>> evaluated;
    std::vector<std::atomic<uint64_t>> passed;
  };

  static bool StepPasses(const Step& step, const MetaValue& attr);

  std::vector<Step> steps_;  // empty = always true
  std::shared_ptr<SelectivityCounters> counters_;
  // True when a conjunct runs a *cache-backed* NN UDF. EvalPatchRows
  // then primes the source row's fingerprint memo before materializing
  // the scratch tuple, so the memo persists in the view across repeated
  // queries instead of dying with the per-row copy. (Uncached UDFs never
  // hash, so priming for them would be pure waste.)
  bool has_nn_udf_ = false;
};

}  // namespace deeplens
