// Typed expression trees over patch-tuple metadata: the predicate language
// of Select / θ-Join operators. Expressions evaluate against a PatchTuple
// (joins bind multiple patches; attribute references carry a tuple slot).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/patch.h"
#include "core/types.h"

namespace deeplens {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// \brief Expression node. Eval returns a MetaValue; predicates are
/// expressions evaluating to bool.
class Expr {
 public:
  virtual ~Expr() = default;

  virtual Result<MetaValue> Eval(const PatchTuple& tuple) const = 0;
  virtual std::string ToString() const = 0;

  /// Static type/domain validation against per-slot schemas (paper §4.2).
  virtual Status Validate(const std::vector<PatchSchema>& schemas) const {
    (void)schemas;
    return Status::OK();
  }

  /// Convenience: evaluate as a boolean predicate (null → false).
  Result<bool> EvalBool(const PatchTuple& tuple) const;

  // --- Planner introspection hooks (default: opaque) -------------------

  /// If this node is an AND, fills both children and returns true.
  virtual bool AsConjunction(ExprPtr* left, ExprPtr* right) const {
    (void)left;
    (void)right;
    return false;
  }

  /// If this node compares attr(slot, key) against a literal, fills the
  /// normalized comparison (op: -2 '<', -1 '<=', 0 '==', 1 '>=', 2 '>',
  /// with the attribute on the left) and returns true.
  virtual bool AsAttrCmpLit(int* op, size_t* slot, std::string* key,
                            MetaValue* value) const {
    (void)op;
    (void)slot;
    (void)key;
    (void)value;
    return false;
  }
};

// --- Leaf nodes ---------------------------------------------------------

/// Reference to a metadata attribute of tuple slot `slot`.
ExprPtr Attr(size_t slot, std::string key);
/// Reference to an attribute of slot 0 (the common single-relation case).
ExprPtr Attr(std::string key);
/// Constant.
ExprPtr Lit(MetaValue value);
/// Built-in geometric accessors on the patch itself (not the meta dict):
/// "width", "height", "area", "cx", "cy", "x0", "y0", "x1", "y1".
ExprPtr Geom(size_t slot, std::string what);

// --- Comparisons & logic -------------------------------------------------

ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);

// --- Arithmetic ----------------------------------------------------------

ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr MulE(ExprPtr a, ExprPtr b);

// --- Vision-specific -----------------------------------------------------

/// Euclidean distance between the feature vectors of two tuple slots.
ExprPtr FeatureDistance(size_t slot_a, size_t slot_b);
/// IoU between the bounding boxes of two tuple slots.
ExprPtr BoxIou(size_t slot_a, size_t slot_b);

}  // namespace deeplens
