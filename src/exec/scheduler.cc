#include "exec/scheduler.h"

#include <algorithm>
#include <condition_variable>

#include "common/thread_pool.h"

namespace deeplens {

namespace {
thread_local SchedulingContext t_context;  // anonymous, weight 1
}  // namespace

ScopedSchedulingContext::ScopedSchedulingContext(SchedulingContext ctx) {
  if (ctx.weight == 0) ctx.weight = 1;
  saved_ = t_context;
  t_context = std::move(ctx);
}

ScopedSchedulingContext::~ScopedSchedulingContext() { t_context = saved_; }

const SchedulingContext& ScopedSchedulingContext::Current() {
  return t_context;
}

// One concurrently-executing query's morsel list. Lives on Run()'s
// stack; reachable from drain tickets only through `active_` under the
// scheduler mutex, and removed before Run returns, so tickets can never
// see a dangling set.
struct MorselScheduler::TaskSet {
  const std::function<void(size_t)>* task = nullptr;
  size_t count = 0;
  size_t next = 0;  // next unclaimed task index
  size_t done = 0;  // completed tasks
  uint64_t stride = 0;
  uint64_t pass = 0;  // virtual time; lowest pass runs next
  uint64_t seq = 0;   // arrival order (tie-break)
  std::string tenant;
  std::condition_variable done_cv;
};

MorselScheduler& MorselScheduler::Global() {
  static MorselScheduler scheduler;
  return scheduler;
}

namespace {
// Pass advances by kStrideScale/weight per claimed task, so a weight-4
// tenant's pass grows 4x slower and it claims ~4x the task slots while
// competing. The scale keeps integer division meaningful for weights up
// to the env knob's cap (1000).
constexpr uint64_t kStrideScale = 1 << 20;
}  // namespace

void MorselScheduler::Run(size_t num_tasks,
                          const std::function<void(size_t)>& task,
                          const SchedulingContext& ctx) {
  if (num_tasks == 0) return;
  TaskSet set;
  set.task = &task;
  set.count = num_tasks;
  set.stride = kStrideScale / std::max<uint64_t>(1, ctx.weight);
  set.tenant = ctx.tenant;
  size_t tickets = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A newcomer starts at the minimum active pass: it competes from
    // "now" instead of replaying virtual time it never consumed (which
    // would let it monopolize workers) or starting infinitely behind.
    uint64_t min_pass = 0;
    bool any = false;
    for (const TaskSet* s : active_) {
      if (!any || s->pass < min_pass) min_pass = s->pass;
      any = true;
    }
    set.pass = min_pass;
    set.seq = seq_++;
    active_.push_back(&set);
    ++total_sets_;
    total_tasks_ += num_tasks;
    tasks_by_tenant_[set.tenant] += num_tasks;
    peak_active_ = std::max<uint64_t>(peak_active_, active_.size());
    tickets = std::min(num_tasks, ThreadPool::Global().num_threads());
  }
  // Drain tickets are interchangeable: each claims the globally fairest
  // runnable task, whichever set it belongs to. Tickets already running
  // for an earlier query will drain this set too, so extra tickets just
  // exit early; the submission only guarantees enough exist.
  for (size_t i = 0; i < tickets; ++i) {
    ThreadPool::Global().Submit([this] { DrainLoop(); });
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    set.done_cv.wait(lock, [&] { return set.done == set.count; });
    active_.erase(std::find(active_.begin(), active_.end(), &set));
  }
}

void MorselScheduler::DrainLoop() {
  for (;;) {
    TaskSet* best = nullptr;
    size_t index = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (TaskSet* s : active_) {
        if (s->next >= s->count) continue;  // fully claimed (may be running)
        if (best == nullptr || s->pass < best->pass ||
            (s->pass == best->pass && s->seq < best->seq)) {
          best = s;
        }
      }
      if (best == nullptr) return;  // nothing claimable: ticket retires
      index = best->next++;
      best->pass += best->stride;
    }
    (*best->task)(index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++best->done == best->count) best->done_cv.notify_all();
      // `best` may be destroyed as soon as this lock is released (Run
      // wakes, erases the set, returns) — not touched again below.
    }
  }
}

SchedulerStats MorselScheduler::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats stats;
  stats.task_sets = total_sets_;
  stats.tasks = total_tasks_;
  stats.active_sets = active_.size();
  stats.peak_active_sets = peak_active_;
  stats.tasks_by_tenant = tasks_by_tenant_;
  return stats;
}

}  // namespace deeplens
