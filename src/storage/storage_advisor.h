// Storage advisor (paper §3, "Future Work: Storage Advisor"): given a
// workload profile and an optional storage budget / latency SLO, pick the
// physical layout analytically. The cost model mirrors the behaviour of
// the three layouts: frame files pay storage for random access; encoded
// files pay sequential decode for any access; segmented files interpolate
// with clip-granularity waste.
#pragma once

#include <string>

#include "storage/video_store.h"

namespace deeplens {

/// Describes the expected access pattern for a stored video.
struct WorkloadProfile {
  int num_frames = 0;
  /// Bytes of one raw (decoded) frame.
  uint64_t raw_frame_bytes = 0;
  /// Fraction of frames a typical query touches, in (0, 1].
  double temporal_selectivity = 1.0;
  /// Expected number of (range) queries over the video's lifetime.
  double expected_queries = 1.0;
  /// True if queries are mostly contiguous time windows (as opposed to
  /// random point lookups).
  bool range_queries = true;
};

/// Calibration constants; defaults measured on the reference machine but
/// overridable from micro-benchmarks.
struct CostConstants {
  /// Decode cost per frame for intra-coded records, seconds.
  double intra_decode_sec = 2.0e-4;
  /// Decode cost per frame inside a DLV1 stream, seconds.
  double inter_decode_sec = 1.6e-4;
  /// Read+deserialize cost per raw frame, seconds.
  double raw_read_sec = 3.0e-5;
  /// Compression ratio of intra coding vs raw.
  double intra_ratio = 8.0;
  /// Compression ratio of DLV1 (inter) coding vs raw.
  double inter_ratio = 30.0;
};

/// Advisor output: the layout plus its predicted costs.
struct StorageAdvice {
  VideoStoreOptions options;
  uint64_t predicted_storage_bytes = 0;
  double predicted_query_seconds = 0.0;
  std::string rationale;
};

/// \brief Analytical advisor.
class StorageAdvisor {
 public:
  explicit StorageAdvisor(CostConstants constants = CostConstants())
      : constants_(constants) {}

  /// Predicted on-disk footprint for a layout.
  uint64_t PredictStorage(const WorkloadProfile& profile,
                          VideoFormat format) const;

  /// Predicted cost (seconds) of one query with the profile's selectivity.
  double PredictQuerySeconds(const WorkloadProfile& profile,
                             const VideoStoreOptions& options) const;

  /// Picks the layout minimizing total query time subject to the storage
  /// budget (0 = unconstrained). Clip length for segmented layouts is
  /// swept over powers of two.
  StorageAdvice Recommend(const WorkloadProfile& profile,
                          uint64_t storage_budget_bytes = 0) const;

 private:
  CostConstants constants_;
};

}  // namespace deeplens
