#include "storage/segmented_file.h"

#include "common/bytes.h"
#include "common/checksum.h"

namespace deeplens {

Result<std::unique_ptr<SegmentedFileWriter>> SegmentedFileWriter::Create(
    const std::string& path, const VideoStoreOptions& options) {
  if (options.format != VideoFormat::kSegmented) {
    return Status::InvalidArgument("SegmentedFileWriter: wrong format");
  }
  if (options.clip_frames < 1) {
    return Status::InvalidArgument("clip_frames must be >= 1");
  }
  DL_RETURN_NOT_OK(RemoveFileIfExists(path));
  auto writer = std::unique_ptr<SegmentedFileWriter>(
      new SegmentedFileWriter(path, options));
  DL_ASSIGN_OR_RETURN(writer->store_, RecordStore::Open(path));
  writer->meta_.options = options;
  return writer;
}

Status SegmentedFileWriter::AddFrame(const Image& frame) {
  if (frame.empty()) return Status::InvalidArgument("empty frame");
  if (next_frame_ == 0) {
    meta_.width = frame.width();
    meta_.height = frame.height();
    meta_.channels = frame.channels();
  }
  pending_clip_.push_back(frame);
  ++next_frame_;
  if (static_cast<int>(pending_clip_.size()) >= options_.clip_frames) {
    return FlushClip();
  }
  return Status::OK();
}

Status SegmentedFileWriter::FlushClip() {
  if (pending_clip_.empty()) return Status::OK();
  const int clip_start =
      next_frame_ - static_cast<int>(pending_clip_.size());
  // Each clip is an independent stream: GOP == clip length so every clip
  // starts with its own keyframe.
  codec::VideoCodecOptions codec_options;
  codec_options.quality = options_.quality;
  codec_options.gop_size = options_.clip_frames;
  DL_ASSIGN_OR_RETURN(std::vector<uint8_t> stream,
                      codec::EncodeVideo(pending_clip_, codec_options));
  const std::string key =
      EncodeKeyU64(static_cast<uint64_t>(clip_start));
  DL_RETURN_NOT_OK(store_->Put(Slice(key), Slice(stream)));
  pending_clip_.clear();
  return Status::OK();
}

Status SegmentedFileWriter::Finish() {
  DL_RETURN_NOT_OK(FlushClip());
  meta_.num_frames = next_frame_;
  DL_RETURN_NOT_OK(store_->Flush());
  return internal::WriteVideoMeta(path_, meta_);
}

Result<std::unique_ptr<SegmentedFileReader>> SegmentedFileReader::Open(
    const std::string& path, const internal::VideoMeta& meta,
    SegmentCache* segment_cache) {
  auto reader = std::unique_ptr<SegmentedFileReader>(
      new SegmentedFileReader(path, meta));
  DL_ASSIGN_OR_RETURN(reader->store_, RecordStore::Open(path));
  if (segment_cache != nullptr && segment_cache->enabled()) {
    reader->segment_cache_ = segment_cache;
  }
  return reader;
}

Result<std::shared_ptr<const SegmentCache::Segment>>
SegmentedFileReader::CachedClip(int clip_start) {
  // Identity is derived from the clip's encoded bytes (size + CRC), so a
  // cache shared across re-opens can never serve a rewritten store's
  // stale frames. It is computed once per clip per reader — warm hits
  // skip both the record fetch and the hash.
  auto id_it = clip_stream_ids_.find(clip_start);
  if (id_it != clip_stream_ids_.end()) {
    if (auto hit = segment_cache_->Get(id_it->second, clip_start)) {
      return hit;
    }
  }
  const std::string key = EncodeKeyU64(static_cast<uint64_t>(clip_start));
  DL_ASSIGN_OR_RETURN(auto stream, store_->Get(Slice(key)));
  const std::string stream_id = SegmentCache::StreamId(
      path_, stream.size(), Crc32c(stream.data(), stream.size()));
  clip_stream_ids_[clip_start] = stream_id;
  if (auto hit = segment_cache_->Get(stream_id, clip_start)) return hit;
  codec::VideoDecoder decoder{Slice(stream)};
  DL_RETURN_NOT_OK(decoder.Init());
  SegmentCache::Segment frames;
  frames.reserve(static_cast<size_t>(decoder.num_frames()));
  // Decode the whole clip (clips are short — options.clip_frames), so
  // the cached segment can serve any frame of it.
  for (int i = 0; i < decoder.num_frames(); ++i) {
    DL_ASSIGN_OR_RETURN(Image img, decoder.NextFrame());
    ++frames_decoded_;
    frames.push_back(std::move(img));
  }
  auto segment =
      std::make_shared<const SegmentCache::Segment>(std::move(frames));
  segment_cache_->Put(stream_id, clip_start, segment);
  return segment;
}

uint64_t SegmentedFileReader::storage_bytes() const {
  return store_->Stats().log_bytes;
}

Result<Image> SegmentedFileReader::ReadFrame(int frameno) {
  if (frameno < 0 || frameno >= meta_.num_frames) {
    return Status::OutOfRange("frame number out of range");
  }
  const int clip =
      (frameno / meta_.options.clip_frames) * meta_.options.clip_frames;
  if (segment_cache_ != nullptr) {
    DL_ASSIGN_OR_RETURN(auto segment, CachedClip(clip));
    return (*segment)[static_cast<size_t>(frameno - clip)];
  }
  const std::string key = EncodeKeyU64(static_cast<uint64_t>(clip));
  DL_ASSIGN_OR_RETURN(auto stream, store_->Get(Slice(key)));
  codec::VideoDecoder decoder{Slice(stream)};
  DL_RETURN_NOT_OK(decoder.Init());
  DL_ASSIGN_OR_RETURN(Image img, decoder.SeekDecode(frameno - clip));
  frames_decoded_ += static_cast<uint64_t>(decoder.frames_decoded());
  return img;
}

Status SegmentedFileReader::ReadRange(
    int lo, int hi,
    const std::function<bool(int, const Image&)>& visitor) {
  lo = std::max(lo, 0);
  hi = std::min(hi, meta_.num_frames - 1);
  if (lo > hi) return Status::OK();
  const int clip_frames = meta_.options.clip_frames;
  bool stop = false;
  for (int clip = (lo / clip_frames) * clip_frames; clip <= hi && !stop;
       clip += clip_frames) {
    if (segment_cache_ != nullptr) {
      DL_ASSIGN_OR_RETURN(auto segment, CachedClip(clip));
      for (size_t i = 0; i < segment->size(); ++i) {
        const int frameno = clip + static_cast<int>(i);
        if (frameno > hi) break;
        if (frameno >= lo && !visitor(frameno, (*segment)[i])) {
          stop = true;
          break;
        }
      }
      continue;
    }
    const std::string key = EncodeKeyU64(static_cast<uint64_t>(clip));
    DL_ASSIGN_OR_RETURN(auto stream, store_->Get(Slice(key)));
    codec::VideoDecoder decoder{Slice(stream)};
    DL_RETURN_NOT_OK(decoder.Init());
    // Decode the clip from its head; only the in-range frames are
    // emitted (the waste is bounded by one clip — the "coarse" part of
    // coarse-grained push-down).
    for (int i = 0; i < decoder.num_frames(); ++i) {
      const int frameno = clip + i;
      if (frameno > hi) break;
      DL_ASSIGN_OR_RETURN(Image img, decoder.NextFrame());
      ++frames_decoded_;
      if (frameno >= lo) {
        if (!visitor(frameno, img)) {
          stop = true;
          break;
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace deeplens
