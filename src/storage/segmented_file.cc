#include "storage/segmented_file.h"

#include "common/bytes.h"

namespace deeplens {

Result<std::unique_ptr<SegmentedFileWriter>> SegmentedFileWriter::Create(
    const std::string& path, const VideoStoreOptions& options) {
  if (options.format != VideoFormat::kSegmented) {
    return Status::InvalidArgument("SegmentedFileWriter: wrong format");
  }
  if (options.clip_frames < 1) {
    return Status::InvalidArgument("clip_frames must be >= 1");
  }
  DL_RETURN_NOT_OK(RemoveFileIfExists(path));
  auto writer = std::unique_ptr<SegmentedFileWriter>(
      new SegmentedFileWriter(path, options));
  DL_ASSIGN_OR_RETURN(writer->store_, RecordStore::Open(path));
  writer->meta_.options = options;
  return writer;
}

Status SegmentedFileWriter::AddFrame(const Image& frame) {
  if (frame.empty()) return Status::InvalidArgument("empty frame");
  if (next_frame_ == 0) {
    meta_.width = frame.width();
    meta_.height = frame.height();
    meta_.channels = frame.channels();
  }
  pending_clip_.push_back(frame);
  ++next_frame_;
  if (static_cast<int>(pending_clip_.size()) >= options_.clip_frames) {
    return FlushClip();
  }
  return Status::OK();
}

Status SegmentedFileWriter::FlushClip() {
  if (pending_clip_.empty()) return Status::OK();
  const int clip_start =
      next_frame_ - static_cast<int>(pending_clip_.size());
  // Each clip is an independent stream: GOP == clip length so every clip
  // starts with its own keyframe.
  codec::VideoCodecOptions codec_options;
  codec_options.quality = options_.quality;
  codec_options.gop_size = options_.clip_frames;
  DL_ASSIGN_OR_RETURN(std::vector<uint8_t> stream,
                      codec::EncodeVideo(pending_clip_, codec_options));
  const std::string key =
      EncodeKeyU64(static_cast<uint64_t>(clip_start));
  DL_RETURN_NOT_OK(store_->Put(Slice(key), Slice(stream)));
  pending_clip_.clear();
  return Status::OK();
}

Status SegmentedFileWriter::Finish() {
  DL_RETURN_NOT_OK(FlushClip());
  meta_.num_frames = next_frame_;
  DL_RETURN_NOT_OK(store_->Flush());
  return internal::WriteVideoMeta(path_, meta_);
}

Result<std::unique_ptr<SegmentedFileReader>> SegmentedFileReader::Open(
    const std::string& path, const internal::VideoMeta& meta) {
  auto reader = std::unique_ptr<SegmentedFileReader>(
      new SegmentedFileReader(path, meta));
  DL_ASSIGN_OR_RETURN(reader->store_, RecordStore::Open(path));
  return reader;
}

uint64_t SegmentedFileReader::storage_bytes() const {
  return store_->Stats().log_bytes;
}

Result<Image> SegmentedFileReader::ReadFrame(int frameno) {
  if (frameno < 0 || frameno >= meta_.num_frames) {
    return Status::OutOfRange("frame number out of range");
  }
  const int clip =
      (frameno / meta_.options.clip_frames) * meta_.options.clip_frames;
  const std::string key = EncodeKeyU64(static_cast<uint64_t>(clip));
  DL_ASSIGN_OR_RETURN(auto stream, store_->Get(Slice(key)));
  codec::VideoDecoder decoder{Slice(stream)};
  DL_RETURN_NOT_OK(decoder.Init());
  DL_ASSIGN_OR_RETURN(Image img, decoder.SeekDecode(frameno - clip));
  frames_decoded_ += static_cast<uint64_t>(decoder.frames_decoded());
  return img;
}

Status SegmentedFileReader::ReadRange(
    int lo, int hi,
    const std::function<bool(int, const Image&)>& visitor) {
  lo = std::max(lo, 0);
  hi = std::min(hi, meta_.num_frames - 1);
  if (lo > hi) return Status::OK();
  const int clip_frames = meta_.options.clip_frames;
  bool stop = false;
  for (int clip = (lo / clip_frames) * clip_frames; clip <= hi && !stop;
       clip += clip_frames) {
    const std::string key = EncodeKeyU64(static_cast<uint64_t>(clip));
    DL_ASSIGN_OR_RETURN(auto stream, store_->Get(Slice(key)));
    codec::VideoDecoder decoder{Slice(stream)};
    DL_RETURN_NOT_OK(decoder.Init());
    // Decode the clip from its head; only the in-range frames are
    // emitted (the waste is bounded by one clip — the "coarse" part of
    // coarse-grained push-down).
    for (int i = 0; i < decoder.num_frames(); ++i) {
      const int frameno = clip + i;
      if (frameno > hi) break;
      DL_ASSIGN_OR_RETURN(Image img, decoder.NextFrame());
      ++frames_decoded_;
      if (frameno >= lo) {
        if (!visitor(frameno, img)) {
          stop = true;
          break;
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace deeplens
