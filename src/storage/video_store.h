// Video storage facade over the three physical layouts of paper §3.1:
//   * FrameFile    — one record per frame (raw pixels or intra-coded),
//                    sorted by frame number → exact temporal push-down.
//   * EncodedFile  — one sequential DLV1 stream → maximal compression, no
//                    random access (reads scan from the start).
//   * SegmentedFile— fixed-length clips, each DLV1-encoded, keyed by start
//                    frame → coarse-grained temporal push-down.
// Writers persist a sidecar meta file so OpenVideo() can dispatch on the
// stored format without the caller knowing it (the "loader abstracts the
// encoding scheme", §3.1).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "codec/video_codec.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace deeplens {

class SegmentCache;

/// Physical layout of a stored video.
enum class VideoFormat : int {
  kFrameRaw = 0,   // FrameFile, raw pixels ("RAW" in Figure 2/3)
  kFrameLjpg = 1,  // FrameFile, intra-coded frames ("JPEG" in Figure 3)
  kEncoded = 2,    // EncodedFile ("H.264" analog)
  kSegmented = 3,  // SegmentedFile (hybrid)
};

const char* VideoFormatName(VideoFormat format);

/// Layout + codec parameters chosen at write time.
struct VideoStoreOptions {
  VideoFormat format = VideoFormat::kFrameRaw;
  codec::Quality quality = codec::Quality::kHigh;
  /// Keyframe interval inside DLV1 streams.
  int gop_size = 32;
  /// Frames per clip for kSegmented.
  int clip_frames = 32;
};

/// \brief Write-side interface: feed frames in order, then Finish().
class VideoWriter {
 public:
  virtual ~VideoWriter() = default;
  virtual Status AddFrame(const Image& frame) = 0;
  virtual Status Finish() = 0;
  virtual int frames_written() const = 0;
};

/// \brief Read-side interface.
class VideoReader {
 public:
  virtual ~VideoReader() = default;

  virtual int num_frames() const = 0;
  virtual VideoFormat format() const = 0;

  /// Total bytes on disk (data + metadata).
  virtual uint64_t storage_bytes() const = 0;

  /// Random access to one frame. For kEncoded this costs a sequential
  /// decode from the stream start.
  virtual Result<Image> ReadFrame(int frameno) = 0;

  /// Visits frames lo..hi (inclusive, clamped) in order. The amount of
  /// decode work *outside* [lo, hi] depends on the layout — that is
  /// exactly the Figure 3 experiment. Return false to stop.
  virtual Status ReadRange(
      int lo, int hi,
      const std::function<bool(int frameno, const Image&)>& visitor) = 0;

  /// Decoded frames (including skipped prefix frames) since open; lets
  /// benchmarks report wasted decode work.
  virtual uint64_t frames_decoded() const = 0;
};

/// Creates a writer for `path` with the requested layout.
Result<std::unique_ptr<VideoWriter>> CreateVideoWriter(
    const std::string& path, const VideoStoreOptions& options);

/// Opens a stored video, dispatching on the persisted meta file. When a
/// SegmentCache is supplied, the inter-frame layouts (kEncoded,
/// kSegmented) memoize decoded GOPs/clips through it; the per-frame
/// layouts ignore it (their records decode independently, so there is no
/// redundant decode work to save).
Result<std::unique_ptr<VideoReader>> OpenVideo(
    const std::string& path, SegmentCache* segment_cache = nullptr);

namespace internal {
/// Sidecar metadata persisted by writers (path + ".meta").
struct VideoMeta {
  VideoStoreOptions options;
  int num_frames = 0;
  int width = 0;
  int height = 0;
  int channels = 3;
};
Status WriteVideoMeta(const std::string& path, const VideoMeta& meta);
Result<VideoMeta> ReadVideoMeta(const std::string& path);
}  // namespace internal

}  // namespace deeplens
