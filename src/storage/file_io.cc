#include "storage/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace deeplens {

namespace {
constexpr size_t kWriteBufferSize = 256 * 1024;

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}
}  // namespace

Result<std::unique_ptr<AppendOnlyFile>> AppendOnlyFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open for append", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("fstat", path);
  }
  auto file = std::unique_ptr<AppendOnlyFile>(
      new AppendOnlyFile(fd, static_cast<uint64_t>(st.st_size)));
  file->buffer_.reserve(kWriteBufferSize);
  return file;
}

AppendOnlyFile::~AppendOnlyFile() {
  (void)Flush();
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> AppendOnlyFile::Append(const Slice& data) {
  const uint64_t offset = size_;
  if (buffer_.size() + data.size() > kWriteBufferSize) {
    DL_RETURN_NOT_OK(Flush());
  }
  if (data.size() >= kWriteBufferSize) {
    DL_RETURN_NOT_OK(WriteRaw(data.data(), data.size()));
  } else {
    buffer_.insert(buffer_.end(), data.data(), data.data() + data.size());
  }
  size_ += data.size();
  return offset;
}

Status AppendOnlyFile::Flush() {
  if (buffer_.empty()) return Status::OK();
  DL_RETURN_NOT_OK(WriteRaw(buffer_.data(), buffer_.size()));
  buffer_.clear();
  return Status::OK();
}

Status AppendOnlyFile::Sync() {
  DL_RETURN_NOT_OK(Flush());
  if (::fsync(fd_) != 0) {
    return Status::IOError(std::string("fsync: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status AppendOnlyFile::WriteRaw(const uint8_t* data, size_t n) {
  size_t written = 0;
  while (written < n) {
    const ssize_t r = ::write(fd_, data + written, n - written);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write: ") + std::strerror(errno));
    }
    written += static_cast<size_t>(r);
  }
  return Status::OK();
}

Result<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open for read", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("fstat", path);
  }
  return std::unique_ptr<RandomAccessFile>(
      new RandomAccessFile(fd, static_cast<uint64_t>(st.st_size)));
}

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::ReadAt(uint64_t offset, size_t n,
                                std::vector<uint8_t>* out) const {
  out->resize(n);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd_, out->data() + done, n - done,
                              static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("pread: ") + std::strerror(errno));
    }
    if (r == 0) {
      return Status::IOError("pread: unexpected end of file");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
  return static_cast<uint64_t>(st.st_size);
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::OK();
}

Status CreateDirs(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::IOError("create_directories '" + path +
                           "': " + ec.message());
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadWholeFile(const std::string& path) {
  DL_ASSIGN_OR_RETURN(auto file, RandomAccessFile::Open(path));
  std::vector<uint8_t> data;
  DL_RETURN_NOT_OK(file->ReadAt(0, file->size(), &data));
  return data;
}

Status WriteWholeFile(const std::string& path, const Slice& data) {
  const std::string tmp = path + ".tmp";
  DL_RETURN_NOT_OK(RemoveFileIfExists(tmp));
  {
    DL_ASSIGN_OR_RETURN(auto file, AppendOnlyFile::Open(tmp));
    DL_RETURN_NOT_OK(file->Append(data).status());
    DL_RETURN_NOT_OK(file->Flush());
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename", path);
  }
  return Status::OK();
}

}  // namespace deeplens
