#include "storage/storage_advisor.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace deeplens {

uint64_t StorageAdvisor::PredictStorage(const WorkloadProfile& profile,
                                        VideoFormat format) const {
  const double raw_total = static_cast<double>(profile.raw_frame_bytes) *
                           profile.num_frames;
  switch (format) {
    case VideoFormat::kFrameRaw:
      return static_cast<uint64_t>(raw_total);
    case VideoFormat::kFrameLjpg:
      return static_cast<uint64_t>(raw_total / constants_.intra_ratio);
    case VideoFormat::kEncoded:
      return static_cast<uint64_t>(raw_total / constants_.inter_ratio);
    case VideoFormat::kSegmented:
      // Each clip restarts with a keyframe; with clips of c frames the
      // ratio degrades towards intra as c shrinks. Modeled at the default
      // clip length here; Recommend() refines per clip length.
      return static_cast<uint64_t>(raw_total / constants_.inter_ratio *
                                   1.15);
  }
  return static_cast<uint64_t>(raw_total);
}

double StorageAdvisor::PredictQuerySeconds(
    const WorkloadProfile& profile, const VideoStoreOptions& options) const {
  const double touched =
      profile.temporal_selectivity * profile.num_frames;
  switch (options.format) {
    case VideoFormat::kFrameRaw:
      // Exact push-down: only touched frames are read.
      return touched * constants_.raw_read_sec;
    case VideoFormat::kFrameLjpg:
      return touched * constants_.intra_decode_sec;
    case VideoFormat::kEncoded: {
      // Sequential codec: a range query decodes everything up to the end
      // of the range — on average half the video plus the range.
      const double prefix =
          profile.range_queries
              ? 0.5 * profile.num_frames + touched * 0.5
              : static_cast<double>(profile.num_frames);
      return prefix * constants_.inter_decode_sec;
    }
    case VideoFormat::kSegmented: {
      // Coarse push-down: waste is at most one clip per range end.
      const double waste = options.clip_frames;
      return (touched + waste) * constants_.inter_decode_sec;
    }
  }
  return 0.0;
}

StorageAdvice StorageAdvisor::Recommend(
    const WorkloadProfile& profile, uint64_t storage_budget_bytes) const {
  StorageAdvice best;
  double best_cost = std::numeric_limits<double>::max();
  bool found = false;

  auto consider = [&](const VideoStoreOptions& options,
                      uint64_t storage, const std::string& why) {
    if (storage_budget_bytes > 0 && storage > storage_budget_bytes) return;
    const double per_query = PredictQuerySeconds(profile, options);
    const double total = per_query * std::max(1.0, profile.expected_queries);
    if (total < best_cost) {
      best_cost = total;
      best.options = options;
      best.predicted_storage_bytes = storage;
      best.predicted_query_seconds = per_query;
      best.rationale = why;
      found = true;
    }
  };

  {
    VideoStoreOptions o;
    o.format = VideoFormat::kFrameRaw;
    consider(o, PredictStorage(profile, o.format),
             "frame file (raw): cheapest reads, exact temporal push-down");
  }
  {
    VideoStoreOptions o;
    o.format = VideoFormat::kFrameLjpg;
    consider(o, PredictStorage(profile, o.format),
             "frame file (intra-coded): push-down with moderate storage");
  }
  {
    VideoStoreOptions o;
    o.format = VideoFormat::kEncoded;
    consider(o, PredictStorage(profile, o.format),
             "encoded file: best compression, pays sequential decode");
  }
  for (int clip = 8; clip <= 256; clip *= 2) {
    VideoStoreOptions o;
    o.format = VideoFormat::kSegmented;
    o.clip_frames = clip;
    o.gop_size = clip;
    // Keyframe overhead grows as clips shrink: every clip carries one
    // intra frame whose compressed size ~ intra_ratio vs inter_ratio.
    const double raw_total =
        static_cast<double>(profile.raw_frame_bytes) * profile.num_frames;
    const double intra_share = 1.0 / clip;
    const double ratio =
        1.0 / (intra_share / constants_.intra_ratio +
               (1.0 - intra_share) / constants_.inter_ratio);
    consider(o, static_cast<uint64_t>(raw_total / ratio),
             StringFormat("segmented file (clip=%d): coarse push-down with "
                          "near-encoded compression",
                          clip));
  }

  if (!found) {
    // Budget unsatisfiable: fall back to the smallest layout.
    best.options.format = VideoFormat::kEncoded;
    best.predicted_storage_bytes =
        PredictStorage(profile, VideoFormat::kEncoded);
    best.predicted_query_seconds =
        PredictQuerySeconds(profile, best.options);
    best.rationale =
        "storage budget below any layout; choosing the most compact";
  }
  return best;
}

}  // namespace deeplens
