// EncodedFile layout: the whole video is a single sequential DLV1 stream
// (the paper's H.264/OGG/MPEG4 analog). Maximal compression; any read
// pays a sequential decode of everything before the target (paper §3.1
// "Encoded File" — no temporal push-down).
//
// With a SegmentCache attached, decoded GOPs are memoized: a miss still
// pays the sequential decode of the prefix (the codec has no byte-level
// GOP index), but every completed GOP along the way is cached, so
// repeated random reads become lookup-bound instead of decode-bound.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/segment_cache.h"
#include "storage/video_store.h"

namespace deeplens {

class EncodedFileWriter : public VideoWriter {
 public:
  static Result<std::unique_ptr<EncodedFileWriter>> Create(
      const std::string& path, const VideoStoreOptions& options);

  Status AddFrame(const Image& frame) override;
  Status Finish() override;
  int frames_written() const override { return encoder_.num_frames(); }

 private:
  EncodedFileWriter(std::string path, VideoStoreOptions options)
      : path_(std::move(path)),
        options_(options),
        encoder_(codec::VideoCodecOptions{options.quality,
                                          options.gop_size}) {}

  std::string path_;
  VideoStoreOptions options_;
  codec::VideoEncoder encoder_;
  internal::VideoMeta meta_;
};

class EncodedFileReader : public VideoReader {
 public:
  /// `segment_cache` (optional) memoizes decoded GOPs across reads and
  /// readers; null preserves the uncached decode-per-read behavior.
  static Result<std::unique_ptr<EncodedFileReader>> Open(
      const std::string& path, const internal::VideoMeta& meta,
      SegmentCache* segment_cache = nullptr);

  int num_frames() const override { return meta_.num_frames; }
  VideoFormat format() const override { return VideoFormat::kEncoded; }
  uint64_t storage_bytes() const override {
    return static_cast<uint64_t>(stream_.size());
  }
  Result<Image> ReadFrame(int frameno) override;
  Status ReadRange(int lo, int hi,
                   const std::function<bool(int, const Image&)>& visitor)
      override;
  uint64_t frames_decoded() const override { return frames_decoded_; }

 private:
  EncodedFileReader(std::string path, internal::VideoMeta meta)
      : path_(std::move(path)), meta_(meta) {}

  int GopSize() const;
  /// Returns decoded segments covering the GOPs whose start frames span
  /// [lo_gop_start, hi_gop_start]. Serves from the cache when every GOP
  /// is resident; otherwise decodes the stream prefix once, memoizing
  /// every completed GOP along the way.
  Result<std::vector<std::shared_ptr<const SegmentCache::Segment>>>
  CachedSegments(int lo_gop_start, int hi_gop_start);

  std::string path_;
  internal::VideoMeta meta_;
  std::vector<uint8_t> stream_;
  uint64_t frames_decoded_ = 0;
  SegmentCache* segment_cache_ = nullptr;
  std::string stream_id_;
  // Private copy of the last GOP this reader touched, held only while
  // the shared cache does not hold that GOP (too large for a shard
  // budget slice, Put rejected): it serves repeated reads of the GOP —
  // without it, every warm read of an oversized GOP would re-decode
  // from frame 0, which is slower than running with no cache at all.
  // Cleared as soon as the cache holds the GOP, so readers never pin
  // duplicate budget-tracked memory.
  std::shared_ptr<const SegmentCache::Segment> fallback_segment_;
  int fallback_start_ = -1;
};

}  // namespace deeplens
