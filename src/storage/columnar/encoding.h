// Stream-vbyte-style group varint codec for the columnar chunk format.
//
// 32-bit values are split into a control stream (2 bits per value encoding
// the byte length 1..4) and a dense data stream, so decode is a
// table-driven shuffle instead of a per-byte branch chain. The hot decode
// loop has a SIMD path (SSSE3 pshufb, runtime-dispatched) and a scalar
// fallback that produces bit-identical output on any hardware. 64-bit
// values ride the same codec as interleaved lo/hi u32 lanes — the high
// lane of ids/deltas/row numbers is almost always zero and costs one byte.
//
// Block framing is self-describing and fully validated on decode:
// [varint n][varint data_len][control: ceil(n/4) bytes][data: data_len
// bytes], where data_len must equal the byte count the control stream
// implies — any mismatch is a typed Corruption, never UB or an unbounded
// allocation (callers pass the row-derived max_values bound).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace deeplens {
namespace columnar {

/// True when the SSSE3 shuffle kernel will run on this machine (the
/// scalar fallback is used otherwise). Exposed so tests and benches can
/// report which decode path they exercised.
bool SvbSimdAvailable();

/// Appends `n` values as a framed stream-vbyte block.
void SvbEncodeU32Block(const uint32_t* values, size_t n, ByteBuffer* out);

/// Decodes a block written by SvbEncodeU32Block into `out` (resized).
/// Corruption when the frame is truncated, the value count exceeds
/// `max_values`, or the control/data streams disagree.
Status SvbDecodeU32Block(ByteReader* reader, size_t max_values,
                         std::vector<uint32_t>* out);

/// 64-bit variants: each value contributes a lo and a hi u32 lane.
void SvbEncodeU64Block(const uint64_t* values, size_t n, ByteBuffer* out);
Status SvbDecodeU64Block(ByteReader* reader, size_t max_values,
                         std::vector<uint64_t>* out);

/// Zigzag maps signed values to unsigned so small negatives stay small.
inline uint64_t ZigZag64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t UnZigZag64(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace columnar
}  // namespace deeplens
