// ColumnarWriter / ColumnarReader: the chunked columnar view file
// (format.h documents the layout). The writer streams strictly-id-ordered
// patches into per-column-encoded chunks and commits a footer catalog;
// the reader prunes chunks against pushed-down conjuncts using footer
// zone maps alone, then decodes only the columns a projection asks for —
// pruned chunks are never read and unprojected pixel/feature blobs are
// never materialized.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/patch.h"
#include "storage/columnar/format.h"
#include "storage/file_io.h"

namespace deeplens {
namespace columnar {

struct ColumnarWriterOptions {
  /// Rows per chunk; 0 means DEEPLENS_COLUMNAR_CHUNK_ROWS (default 8192).
  size_t chunk_rows = 0;
};

/// \brief Append-side of the format. Not thread-safe. Rows must arrive in
/// strictly increasing id order (the file-wide invariant zone-map id
/// pruning and the reader's merge logic rely on); MaterializedView owns
/// the reorder/overwrite buffering above this layer. Nothing is visible
/// to readers until Commit() writes the footer tail.
class ColumnarWriter {
 public:
  /// Opens `path` for append, creating it (with the header magic) when
  /// absent or empty. An existing file must carry a valid footer — a torn
  /// or corrupt file surfaces as typed Corruption, never silent loss.
  static Result<std::unique_ptr<ColumnarWriter>> Open(
      const std::string& path, const ColumnarWriterOptions& options = {});

  /// Buffers one patch; seals a chunk to disk every chunk_rows rows.
  /// InvalidArgument when `patch.id()` does not exceed the last id.
  Status Append(const Patch& patch);

  /// Seals the open chunk (if any) and writes the footer tail; the commit
  /// point after which a reader sees every appended row. Idempotent.
  Status Commit();

  uint64_t rows() const { return footer_.total_rows + open_rows_.size(); }
  bool has_rows() const { return has_last_; }
  PatchId last_id() const { return last_id_; }
  uint64_t file_bytes() const { return file_->size(); }
  const std::string& path() const { return path_; }

 private:
  ColumnarWriter(std::string path, std::unique_ptr<AppendOnlyFile> file,
                 size_t chunk_rows)
      : path_(std::move(path)), file_(std::move(file)),
        chunk_rows_(chunk_rows) {}

  Status SealChunk();

  std::string path_;
  std::unique_ptr<AppendOnlyFile> file_;
  size_t chunk_rows_;
  ColumnarFooter footer_;       // chunks sealed so far (this + prior opens)
  std::vector<Patch> open_rows_;
  bool has_last_ = false;
  PatchId last_id_ = 0;
  bool dirty_ = false;          // sealed chunks not yet covered by a tail
};

/// Column subset + row filter for one chunk read.
struct ChunkReadOptions {
  ColumnarProjection projection;
  /// Conjuncts applied row-wise during decode (StepPasses semantics).
  /// Only sound as the *sole* filter when the pushdown was fully
  /// sargable; residual predicates re-run above the reader.
  std::vector<ColumnPredicate> row_filter;
};

/// \brief Read-side of the format. Immutable snapshot of the footer taken
/// at Open(); safe for concurrent ReadChunk calls from many threads (all
/// I/O is positional pread). Holding the reader keeps the snapshot alive
/// across later appends and even a merge-rewrite rename of the path.
class ColumnarReader {
 public:
  static Result<std::shared_ptr<ColumnarReader>> Open(
      const std::string& path);

  uint64_t total_rows() const { return footer_.total_rows; }
  size_t num_chunks() const { return footer_.chunks.size(); }
  const ChunkMeta& chunk(size_t index) const {
    return footer_.chunks[index];
  }
  const ColumnarFooter& footer() const { return footer_; }
  uint64_t file_bytes() const { return file_->size(); }
  const std::string& path() const { return path_; }

  /// Chunk indexes (in order) whose zone maps admit `preds`; the
  /// complement is pruned without any chunk I/O.
  std::vector<size_t> SelectChunks(
      const std::vector<ColumnPredicate>& preds) const;

  /// Reads + decodes one chunk: CRC-verified, filter applied during
  /// decode, only projected columns materialized. Corruption on any
  /// mismatch with the footer catalog.
  Result<PatchCollection> ReadChunk(size_t index,
                                    const ChunkReadOptions& options) const;

  /// Every row of every chunk, full projection (the LoadAll path).
  Result<PatchCollection> ReadAll() const;

 private:
  ColumnarReader(std::string path, std::unique_ptr<RandomAccessFile> file,
                 ColumnarFooter footer)
      : path_(std::move(path)), file_(std::move(file)),
        footer_(std::move(footer)) {}

  std::string path_;
  std::unique_ptr<RandomAccessFile> file_;
  ColumnarFooter footer_;
};

}  // namespace columnar
}  // namespace deeplens
