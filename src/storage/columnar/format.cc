#include "storage/columnar/format.h"

#include <algorithm>

#include "common/env.h"
#include "exec/expression_patterns.h"

namespace deeplens {
namespace columnar {

size_t ColumnarChunkRowsFromEnv() {
  return static_cast<size_t>(PositiveIntFromEnv(
      "DEEPLENS_COLUMNAR_CHUNK_ROWS", kDefaultChunkRows, kMaxChunkRows));
}

size_t PrefetchDepthFromEnv() {
  return static_cast<size_t>(
      PositiveIntFromEnv("DEEPLENS_PREFETCH_DEPTH", kDefaultPrefetchDepth,
                         kMaxPrefetchDepth, /*allow_zero=*/true));
}

std::string ViewFormatFromEnv() {
  return ChoiceFromEnv("DEEPLENS_VIEW_FORMAT", {"columnar", "legacy"},
                       "columnar");
}

bool ColumnarProjection::WantsMeta(const std::string& key) const {
  if (all_meta) return true;
  return std::find(meta_keys.begin(), meta_keys.end(), key) !=
         meta_keys.end();
}

const ChunkColumnMeta* ChunkMeta::FindColumn(const std::string& name) const {
  for (const ChunkColumnMeta& col : columns) {
    if (col.name == name) return &col;
  }
  return nullptr;
}

void ColumnarFooter::SerializeInto(ByteBuffer* out) const {
  out->PutU8(version);
  out->PutVarint(total_rows);
  out->PutVarint(chunks.size());
  for (const ChunkMeta& chunk : chunks) {
    out->PutVarint(chunk.offset);
    out->PutVarint(chunk.length);
    out->PutU32(chunk.crc);
    out->PutVarint(chunk.rows);
    out->PutVarint(chunk.id_min);
    out->PutVarint(chunk.id_max);
    out->PutVarint(chunk.columns.size());
    for (const ChunkColumnMeta& col : chunk.columns) {
      out->PutLengthPrefixed(Slice(col.name));
      out->PutU8(col.tag);
      out->PutVarint(col.zone.null_count);
      out->PutU8(col.zone.has_minmax ? 1 : 0);
      if (col.zone.has_minmax) {
        col.zone.min.SerializeInto(out);
        col.zone.max.SerializeInto(out);
      }
    }
  }
}

Result<ColumnarFooter> ColumnarFooter::Deserialize(ByteReader* reader) {
  ColumnarFooter footer;
  DL_ASSIGN_OR_RETURN(footer.version, reader->GetU8());
  if (footer.version == 0 || footer.version > kFormatVersion) {
    return Status::Corruption("columnar footer: unsupported version " +
                              std::to_string(footer.version));
  }
  DL_ASSIGN_OR_RETURN(footer.total_rows, reader->GetVarint());
  uint64_t num_chunks = 0;
  DL_ASSIGN_OR_RETURN(num_chunks, reader->GetVarint());
  // Each chunk entry costs >= 7 bytes; an absurd count cannot outrun the
  // footer bytes that are actually present.
  if (num_chunks > reader->remaining()) {
    return Status::Corruption("columnar footer: chunk count overflows");
  }
  uint64_t rows_seen = 0;
  footer.chunks.reserve(static_cast<size_t>(num_chunks));
  for (uint64_t i = 0; i < num_chunks; ++i) {
    ChunkMeta chunk;
    DL_ASSIGN_OR_RETURN(chunk.offset, reader->GetVarint());
    DL_ASSIGN_OR_RETURN(chunk.length, reader->GetVarint());
    DL_ASSIGN_OR_RETURN(chunk.crc, reader->GetU32());
    DL_ASSIGN_OR_RETURN(chunk.rows, reader->GetVarint());
    DL_ASSIGN_OR_RETURN(chunk.id_min, reader->GetVarint());
    DL_ASSIGN_OR_RETURN(chunk.id_max, reader->GetVarint());
    if (chunk.rows == 0 || chunk.rows > kMaxChunkRows) {
      return Status::Corruption("columnar footer: chunk row count " +
                                std::to_string(chunk.rows) + " out of range");
    }
    if (chunk.id_min > chunk.id_max) {
      return Status::Corruption("columnar footer: inverted chunk id range");
    }
    if (!footer.chunks.empty() &&
        chunk.id_min <= footer.chunks.back().id_max) {
      return Status::Corruption(
          "columnar footer: chunk id ranges not ascending");
    }
    uint64_t num_cols = 0;
    DL_ASSIGN_OR_RETURN(num_cols, reader->GetVarint());
    if (num_cols > reader->remaining()) {
      return Status::Corruption("columnar footer: column count overflows");
    }
    chunk.columns.reserve(static_cast<size_t>(num_cols));
    for (uint64_t c = 0; c < num_cols; ++c) {
      ChunkColumnMeta col;
      Slice name;
      DL_ASSIGN_OR_RETURN(name, reader->GetLengthPrefixed());
      col.name = name.ToString();
      DL_ASSIGN_OR_RETURN(col.tag, reader->GetU8());
      DL_ASSIGN_OR_RETURN(col.zone.null_count, reader->GetVarint());
      if (col.zone.null_count > chunk.rows) {
        return Status::Corruption("columnar footer: null count exceeds rows");
      }
      uint8_t has_minmax = 0;
      DL_ASSIGN_OR_RETURN(has_minmax, reader->GetU8());
      col.zone.has_minmax = has_minmax != 0;
      if (col.zone.has_minmax) {
        DL_ASSIGN_OR_RETURN(col.zone.min, MetaValue::Deserialize(reader));
        DL_ASSIGN_OR_RETURN(col.zone.max, MetaValue::Deserialize(reader));
        if (col.zone.max.Compare(col.zone.min) < 0) {
          return Status::Corruption("columnar footer: inverted zone map");
        }
      }
      if (!chunk.columns.empty() && !(chunk.columns.back().name < col.name)) {
        return Status::Corruption(
            "columnar footer: column names not strictly sorted");
      }
      chunk.columns.push_back(std::move(col));
    }
    rows_seen += chunk.rows;
    footer.chunks.push_back(std::move(chunk));
  }
  if (rows_seen != footer.total_rows) {
    return Status::Corruption("columnar footer: chunk rows sum " +
                              std::to_string(rows_seen) +
                              " != total_rows " +
                              std::to_string(footer.total_rows));
  }
  if (!reader->AtEnd()) {
    return Status::Corruption("columnar footer: trailing bytes");
  }
  return footer;
}

PredicatePushdown ExtractPushdown(const ExprPtr& predicate) {
  PredicatePushdown down;
  if (!predicate) return down;  // always-true: no conjuncts, fully sargable
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(predicate, &conjuncts);
  for (const ExprPtr& conjunct : conjuncts) {
    int op = 0;
    size_t slot = 0;
    std::string key;
    MetaValue value;
    if (conjunct && conjunct->AsAttrCmpLit(&op, &slot, &key, &value) &&
        slot == 0) {
      down.preds.push_back(ColumnPredicate{op, std::move(key),
                                           std::move(value)});
    } else {
      down.fully_sargable = false;
    }
  }
  return down;
}

bool ValuePassesPredicate(const MetaValue& attr, const ColumnPredicate& pred) {
  if (attr.is_null() || pred.value.is_null()) return false;
  const int c = attr.Compare(pred.value);
  switch (pred.op) {
    case -2: return c < 0;
    case -1: return c <= 0;
    case 0: return c == 0;
    case 1: return c >= 0;
    case 2: return c > 0;
  }
  return false;
}

bool ChunkMayMatch(const ChunkMeta& chunk,
                   const std::vector<ColumnPredicate>& preds) {
  for (const ColumnPredicate& pred : preds) {
    // A null literal fails every row regardless of the column's content.
    if (pred.value.is_null()) return false;
    const ChunkColumnMeta* col = chunk.FindColumn(pred.key);
    // Column absent, or present but null on every row: Get() yields null
    // for each row, and null never passes a comparison.
    if (col == nullptr || col->zone.null_count >= chunk.rows) return false;
    if (!col->zone.has_minmax) continue;  // can't prune, can't rule out
    const int min_cmp = col->zone.min.Compare(pred.value);
    const int max_cmp = col->zone.max.Compare(pred.value);
    bool possible = true;
    switch (pred.op) {
      case -2: possible = min_cmp < 0; break;   // some value < lit
      case -1: possible = min_cmp <= 0; break;  // some value <= lit
      case 0: possible = min_cmp <= 0 && max_cmp >= 0; break;
      case 1: possible = max_cmp >= 0; break;   // some value >= lit
      case 2: possible = max_cmp > 0; break;    // some value > lit
      default: possible = true; break;          // unknown op: never prune
    }
    if (!possible) return false;
  }
  return true;
}

size_t ApproxPatchBytes(const Patch& patch) {
  size_t bytes = sizeof(Patch);
  bytes += patch.ref().dataset.capacity();
  bytes += patch.pixels().size_bytes();
  bytes += static_cast<size_t>(patch.features().size()) * sizeof(float);
  for (const auto& [key, value] : patch.meta()) {
    bytes += 64;  // map-node + key/value inline overhead
    bytes += key.capacity();
    if (value.type() == ValueType::kString) {
      auto s = value.AsString();
      if (s.ok()) bytes += (*s.value()).capacity();
    }
  }
  return bytes;
}

}  // namespace columnar
}  // namespace deeplens
