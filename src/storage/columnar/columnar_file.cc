#include "storage/columnar/columnar_file.h"

#include <cstring>
#include <map>

#include "codec/image_codec.h"
#include "common/checksum.h"
#include "storage/columnar/encoding.h"

namespace deeplens {
namespace columnar {
namespace {

inline uint32_t ZigZag32(int32_t v) {
  return (static_cast<uint32_t>(v) << 1) ^ static_cast<uint32_t>(v >> 31);
}
inline int32_t UnZigZag32(uint32_t v) {
  return static_cast<int32_t>(v >> 1) ^ -static_cast<int32_t>(v & 1);
}

inline uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}
inline double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void PutPackedBits(const std::vector<uint8_t>& bits, ByteBuffer* out) {
  std::vector<uint8_t> packed((bits.size() + 7) / 8, 0);
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) packed[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
  out->PutLengthPrefixed(Slice(packed.data(), packed.size()));
}

Status GetPackedBits(ByteReader* reader, size_t nbits,
                     std::vector<uint8_t>* bits) {
  Slice packed;
  DL_ASSIGN_OR_RETURN(packed, reader->GetLengthPrefixed());
  if (packed.size() != (nbits + 7) / 8) {
    return Status::Corruption("columnar chunk: bitmap size mismatch");
  }
  bits->assign(nbits, 0);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(packed.data());
  for (size_t i = 0; i < nbits; ++i) {
    (*bits)[i] = (p[i / 8] >> (i % 8)) & 1;
  }
  return Status::OK();
}

void EncodeStringDict(const std::vector<const std::string*>& values,
                      ByteBuffer* out) {
  std::map<std::string, uint32_t> dict;
  for (const std::string* s : values) dict.emplace(*s, 0);
  uint32_t next = 0;
  for (auto& [str, code] : dict) code = next++;
  out->PutVarint(dict.size());
  for (const auto& [str, code] : dict) out->PutLengthPrefixed(Slice(str));
  std::vector<uint32_t> codes;
  codes.reserve(values.size());
  for (const std::string* s : values) codes.push_back(dict.find(*s)->second);
  SvbEncodeU32Block(codes.data(), codes.size(), out);
}

Status DecodeStringDict(ByteReader* reader, size_t expected,
                        std::vector<std::string>* out) {
  uint64_t dict_n = 0;
  DL_ASSIGN_OR_RETURN(dict_n, reader->GetVarint());
  if (dict_n > reader->remaining()) {
    return Status::Corruption("columnar chunk: dictionary count overflows");
  }
  std::vector<std::string> dict;
  dict.reserve(static_cast<size_t>(dict_n));
  for (uint64_t i = 0; i < dict_n; ++i) {
    Slice s;
    DL_ASSIGN_OR_RETURN(s, reader->GetLengthPrefixed());
    dict.push_back(s.ToString());
  }
  std::vector<uint32_t> codes;
  DL_RETURN_NOT_OK(SvbDecodeU32Block(reader, expected, &codes));
  if (codes.size() != expected) {
    return Status::Corruption("columnar chunk: dictionary code count");
  }
  out->clear();
  out->reserve(expected);
  for (uint32_t code : codes) {
    if (code >= dict.size()) {
      return Status::Corruption("columnar chunk: dictionary code range");
    }
    out->push_back(dict[code]);
  }
  return Status::OK();
}

// Decides the physical encoding of a metadata column: a single non-null
// value type gets the typed layout, anything else (mixed types, explicit
// nulls) stores row-serialized MetaValues.
uint8_t ColumnTag(const std::vector<const MetaValue*>& values) {
  uint8_t tag = 0;
  for (const MetaValue* v : values) {
    if (v->is_null()) return kTagMixed;
    const uint8_t t = static_cast<uint8_t>(v->type());
    if (tag == 0) {
      tag = t;
    } else if (tag != t) {
      return kTagMixed;
    }
  }
  return tag == 0 ? kTagMixed : tag;
}

void EncodeColumnPayload(uint8_t tag,
                         const std::vector<const MetaValue*>& values,
                         ByteBuffer* payload) {
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kInt: {
      std::vector<uint64_t> zz;
      zz.reserve(values.size());
      for (const MetaValue* v : values) {
        zz.push_back(ZigZag64(v->AsInt().value()));
      }
      SvbEncodeU64Block(zz.data(), zz.size(), payload);
      return;
    }
    case ValueType::kFloat: {
      for (const MetaValue* v : values) {
        payload->PutU64(DoubleBits(v->AsFloat().value()));
      }
      return;
    }
    case ValueType::kString: {
      std::vector<const std::string*> strings;
      strings.reserve(values.size());
      for (const MetaValue* v : values) {
        strings.push_back(v->AsString().value());
      }
      EncodeStringDict(strings, payload);
      return;
    }
    case ValueType::kBool: {
      std::vector<uint8_t> bits;
      bits.reserve(values.size());
      for (const MetaValue* v : values) {
        bits.push_back(v->AsBool().value() ? 1 : 0);
      }
      PutPackedBits(bits, payload);
      return;
    }
    default: {  // kTagMixed
      for (const MetaValue* v : values) v->SerializeInto(payload);
      return;
    }
  }
}

Status DecodeColumnPayload(uint8_t tag, size_t present_count, Slice payload,
                           std::vector<MetaValue>* out) {
  ByteReader reader(payload);
  out->clear();
  out->reserve(present_count);
  switch (tag) {
    case static_cast<uint8_t>(ValueType::kInt): {
      std::vector<uint64_t> zz;
      DL_RETURN_NOT_OK(SvbDecodeU64Block(&reader, present_count, &zz));
      if (zz.size() != present_count) {
        return Status::Corruption("columnar chunk: int column count");
      }
      for (uint64_t v : zz) out->emplace_back(UnZigZag64(v));
      break;
    }
    case static_cast<uint8_t>(ValueType::kFloat): {
      for (size_t i = 0; i < present_count; ++i) {
        uint64_t bits = 0;
        DL_ASSIGN_OR_RETURN(bits, reader.GetU64());
        out->emplace_back(BitsDouble(bits));
      }
      break;
    }
    case static_cast<uint8_t>(ValueType::kString): {
      std::vector<std::string> strings;
      DL_RETURN_NOT_OK(DecodeStringDict(&reader, present_count, &strings));
      for (std::string& s : strings) out->emplace_back(std::move(s));
      break;
    }
    case static_cast<uint8_t>(ValueType::kBool): {
      std::vector<uint8_t> bits;
      DL_RETURN_NOT_OK(GetPackedBits(&reader, present_count, &bits));
      for (uint8_t b : bits) out->emplace_back(b != 0);
      break;
    }
    case kTagMixed: {
      for (size_t i = 0; i < present_count; ++i) {
        MetaValue v;
        DL_ASSIGN_OR_RETURN(v, MetaValue::Deserialize(&reader));
        out->push_back(std::move(v));
      }
      break;
    }
    default:
      return Status::Corruption("columnar chunk: unknown column tag " +
                                std::to_string(tag));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("columnar chunk: column payload trailing bytes");
  }
  return Status::OK();
}

// Serializes `rows` (ids strictly ascending) into `out` and fills the
// footer entry. Layout: varint rows, then length-prefixed blocks in fixed
// order — ids, dataset, frameno, parent, bbox, meta, pixels, features —
// so the decoder can skip any block without parsing its interior.
Status EncodeChunk(const std::vector<Patch>& rows, ByteBuffer* out,
                   ChunkMeta* meta) {
  const size_t n = rows.size();
  out->PutVarint(n);
  ByteBuffer block;
  auto emit = [&] {
    out->PutLengthPrefixed(block.AsSlice());
    block.Clear();
  };

  {  // ids, delta-encoded against the ascending invariant
    std::vector<uint64_t> deltas(n);
    uint64_t prev = 0;
    for (size_t i = 0; i < n; ++i) {
      deltas[i] = rows[i].id() - prev;
      prev = rows[i].id();
    }
    SvbEncodeU64Block(deltas.data(), n, &block);
    emit();
  }
  {  // ref.dataset, dictionary-coded
    std::vector<const std::string*> datasets;
    datasets.reserve(n);
    for (const Patch& p : rows) datasets.push_back(&p.ref().dataset);
    EncodeStringDict(datasets, &block);
    emit();
  }
  {  // ref.frameno
    std::vector<uint64_t> zz(n);
    for (size_t i = 0; i < n; ++i) zz[i] = ZigZag64(rows[i].ref().frameno);
    SvbEncodeU64Block(zz.data(), n, &block);
    emit();
  }
  {  // ref.parent
    std::vector<uint64_t> parents(n);
    for (size_t i = 0; i < n; ++i) parents[i] = rows[i].ref().parent;
    SvbEncodeU64Block(parents.data(), n, &block);
    emit();
  }
  {  // bbox: x0 y0 x1 y1 as four consecutive planes in one block
    std::vector<uint32_t> plane(n);
    auto encode_plane = [&](auto getter) {
      for (size_t i = 0; i < n; ++i) {
        plane[i] = ZigZag32(getter(rows[i].bbox()));
      }
      SvbEncodeU32Block(plane.data(), n, &block);
    };
    encode_plane([](const nn::BBox& b) { return b.x0; });
    encode_plane([](const nn::BBox& b) { return b.y0; });
    encode_plane([](const nn::BBox& b) { return b.x1; });
    encode_plane([](const nn::BBox& b) { return b.y1; });
    emit();
  }
  {  // metadata columns (MetaDict order → sorted, unique names)
    struct ColBuild {
      std::vector<uint8_t> present;
      std::vector<const MetaValue*> values;  // present rows, row order
    };
    std::map<std::string, ColBuild> cols;
    for (size_t i = 0; i < n; ++i) {
      for (const auto& [key, value] : rows[i].meta()) {
        ColBuild& col = cols[key];
        if (col.present.empty()) col.present.assign(n, 0);
        col.present[i] = 1;
        col.values.push_back(&value);
      }
    }
    block.PutVarint(cols.size());
    for (const auto& [name, col] : cols) {
      const uint8_t tag = ColumnTag(col.values);
      block.PutLengthPrefixed(Slice(name));
      block.PutU8(tag);
      PutPackedBits(col.present, &block);
      ByteBuffer payload;
      EncodeColumnPayload(tag, col.values, &payload);
      block.PutLengthPrefixed(payload.AsSlice());

      ChunkColumnMeta cm;
      cm.name = name;
      cm.tag = tag;
      uint64_t nonnull = 0;
      const MetaValue* min = nullptr;
      const MetaValue* max = nullptr;
      for (const MetaValue* v : col.values) {
        if (v->is_null()) continue;
        ++nonnull;
        if (min == nullptr || v->Compare(*min) < 0) min = v;
        if (max == nullptr || v->Compare(*max) > 0) max = v;
      }
      cm.zone.null_count = n - nonnull;
      if (nonnull > 0) {
        ByteBuffer probe;
        min->SerializeInto(&probe);
        max->SerializeInto(&probe);
        if (probe.size() <= 2 * kMaxZoneMapValueBytes) {
          cm.zone.has_minmax = true;
          cm.zone.min = *min;
          cm.zone.max = *max;
        }
      }
      meta->columns.push_back(std::move(cm));
    }
    emit();
  }
  {  // pixels: presence, blob lengths, concatenated raw-image blobs
    std::vector<uint8_t> present(n, 0);
    std::vector<uint32_t> lengths;
    std::vector<uint8_t> blobs;
    for (size_t i = 0; i < n; ++i) {
      if (!rows[i].has_pixels()) continue;
      present[i] = 1;
      const std::vector<uint8_t> raw = codec::SerializeRawImage(
          rows[i].pixels());
      if (raw.size() > UINT32_MAX) {
        return Status::InvalidArgument("columnar chunk: pixel blob too big");
      }
      lengths.push_back(static_cast<uint32_t>(raw.size()));
      blobs.insert(blobs.end(), raw.begin(), raw.end());
    }
    PutPackedBits(present, &block);
    SvbEncodeU32Block(lengths.data(), lengths.size(), &block);
    block.PutBytes(blobs.data(), blobs.size());
    emit();
  }
  {  // features: presence, float counts, raw f32 bytes
    std::vector<uint8_t> present(n, 0);
    std::vector<uint32_t> counts;
    std::vector<uint8_t> floats;
    for (size_t i = 0; i < n; ++i) {
      if (!rows[i].has_features()) continue;
      present[i] = 1;
      const Tensor& t = rows[i].features();
      counts.push_back(static_cast<uint32_t>(t.size()));
      const uint8_t* data = reinterpret_cast<const uint8_t*>(t.data());
      floats.insert(floats.end(), data,
                    data + static_cast<size_t>(t.size()) * sizeof(float));
    }
    PutPackedBits(present, &block);
    SvbEncodeU32Block(counts.data(), counts.size(), &block);
    block.PutBytes(floats.data(), floats.size());
    emit();
  }

  meta->rows = n;
  meta->id_min = rows.front().id();
  meta->id_max = rows.back().id();
  return Status::OK();
}

// Parses the trailing footer of an already-open file. The validation
// ladder distinguishes "valid but empty" (header-only file) from every
// torn-tail shape, which all surface as typed Corruption.
Result<ColumnarFooter> ReadFooter(const RandomAccessFile& file) {
  const uint64_t size = file.size();
  if (size < kHeaderSize) {
    return Status::Corruption("columnar file: shorter than header");
  }
  std::vector<uint8_t> head;
  DL_RETURN_NOT_OK(file.ReadAt(0, kHeaderSize, &head));
  uint64_t magic = 0;
  std::memcpy(&magic, head.data(), sizeof(magic));
  if (magic != kColumnarMagic) {
    return Status::Corruption("columnar file: bad header magic");
  }
  if (size == kHeaderSize) return ColumnarFooter{};  // created, no commits
  if (size < kHeaderSize + kTailSize) {
    return Status::Corruption("columnar file: torn tail");
  }
  std::vector<uint8_t> tail;
  DL_RETURN_NOT_OK(file.ReadAt(size - kTailSize, kTailSize, &tail));
  ByteReader tr(Slice(tail.data(), tail.size()));
  uint32_t footer_len = 0;
  uint32_t footer_crc = 0;
  uint64_t tail_magic = 0;
  DL_ASSIGN_OR_RETURN(footer_len, tr.GetU32());
  DL_ASSIGN_OR_RETURN(footer_crc, tr.GetU32());
  DL_ASSIGN_OR_RETURN(tail_magic, tr.GetU64());
  if (tail_magic != kColumnarMagic) {
    return Status::Corruption("columnar file: torn tail (bad magic)");
  }
  if (footer_len > size - kHeaderSize - kTailSize) {
    return Status::Corruption("columnar file: footer length out of range");
  }
  const uint64_t footer_start = size - kTailSize - footer_len;
  std::vector<uint8_t> footer_bytes;
  DL_RETURN_NOT_OK(file.ReadAt(footer_start, footer_len, &footer_bytes));
  if (Crc32c(footer_bytes.data(), footer_bytes.size()) != footer_crc) {
    return Status::Corruption("columnar file: footer checksum mismatch");
  }
  ByteReader fr(Slice(footer_bytes.data(), footer_bytes.size()));
  ColumnarFooter footer;
  DL_ASSIGN_OR_RETURN(footer, ColumnarFooter::Deserialize(&fr));
  for (const ChunkMeta& chunk : footer.chunks) {
    if (chunk.offset < kHeaderSize || chunk.length == 0 ||
        chunk.offset + chunk.length < chunk.offset ||
        chunk.offset + chunk.length > footer_start) {
      return Status::Corruption("columnar file: chunk extent out of range");
    }
  }
  return footer;
}

}  // namespace

// --- ColumnarWriter -----------------------------------------------------

Result<std::unique_ptr<ColumnarWriter>> ColumnarWriter::Open(
    const std::string& path, const ColumnarWriterOptions& options) {
  size_t chunk_rows = options.chunk_rows;
  if (chunk_rows == 0) chunk_rows = ColumnarChunkRowsFromEnv();
  if (chunk_rows > kMaxChunkRows) chunk_rows = kMaxChunkRows;

  ColumnarFooter footer;
  const bool existing = FileExists(path) && FileSize(path).ValueOr(0) > 0;
  if (existing) {
    DL_ASSIGN_OR_RETURN(auto probe, RandomAccessFile::Open(path));
    DL_ASSIGN_OR_RETURN(footer, ReadFooter(*probe));
  }
  DL_ASSIGN_OR_RETURN(auto file, AppendOnlyFile::Open(path));
  auto writer = std::unique_ptr<ColumnarWriter>(
      new ColumnarWriter(path, std::move(file), chunk_rows));
  if (existing) {
    writer->footer_ = std::move(footer);
    if (!writer->footer_.chunks.empty()) {
      writer->has_last_ = true;
      writer->last_id_ = writer->footer_.chunks.back().id_max;
    }
  } else {
    ByteBuffer header;
    header.PutU64(kColumnarMagic);
    DL_RETURN_NOT_OK(writer->file_->Append(header.AsSlice()).status());
    // Flush now: a header-only file is the valid empty state, and readers
    // opened before the first Commit() must see it (not a 0-byte file).
    DL_RETURN_NOT_OK(writer->file_->Flush());
  }
  return writer;
}

Status ColumnarWriter::Append(const Patch& patch) {
  if (has_last_ && patch.id() <= last_id_) {
    return Status::InvalidArgument(
        "columnar writer: ids must be strictly increasing (got " +
        std::to_string(patch.id()) + " after " + std::to_string(last_id_) +
        ")");
  }
  open_rows_.push_back(patch);
  has_last_ = true;
  last_id_ = patch.id();
  if (open_rows_.size() >= chunk_rows_) return SealChunk();
  return Status::OK();
}

Status ColumnarWriter::SealChunk() {
  if (open_rows_.empty()) return Status::OK();
  ByteBuffer chunk;
  ChunkMeta meta;
  DL_RETURN_NOT_OK(EncodeChunk(open_rows_, &chunk, &meta));
  meta.length = chunk.size();
  meta.crc = Crc32c(chunk.AsSlice());
  DL_ASSIGN_OR_RETURN(meta.offset, file_->Append(chunk.AsSlice()));
  footer_.total_rows += meta.rows;
  footer_.chunks.push_back(std::move(meta));
  open_rows_.clear();
  dirty_ = true;
  return Status::OK();
}

Status ColumnarWriter::Commit() {
  DL_RETURN_NOT_OK(SealChunk());
  if (!dirty_) return Status::OK();
  ByteBuffer footer_bytes;
  footer_.SerializeInto(&footer_bytes);
  ByteBuffer tail;
  tail.PutBytes(footer_bytes.data().data(), footer_bytes.size());
  tail.PutU32(static_cast<uint32_t>(footer_bytes.size()));
  tail.PutU32(Crc32c(footer_bytes.AsSlice()));
  tail.PutU64(kColumnarMagic);
  DL_RETURN_NOT_OK(file_->Append(tail.AsSlice()).status());
  DL_RETURN_NOT_OK(file_->Flush());
  dirty_ = false;
  return Status::OK();
}

// --- ColumnarReader -----------------------------------------------------

Result<std::shared_ptr<ColumnarReader>> ColumnarReader::Open(
    const std::string& path) {
  DL_ASSIGN_OR_RETURN(auto file, RandomAccessFile::Open(path));
  DL_ASSIGN_OR_RETURN(ColumnarFooter footer, ReadFooter(*file));
  return std::shared_ptr<ColumnarReader>(
      new ColumnarReader(path, std::move(file), std::move(footer)));
}

std::vector<size_t> ColumnarReader::SelectChunks(
    const std::vector<ColumnPredicate>& preds) const {
  std::vector<size_t> selected;
  selected.reserve(footer_.chunks.size());
  for (size_t i = 0; i < footer_.chunks.size(); ++i) {
    if (ChunkMayMatch(footer_.chunks[i], preds)) selected.push_back(i);
  }
  return selected;
}

Result<PatchCollection> ColumnarReader::ReadChunk(
    size_t index, const ChunkReadOptions& options) const {
  if (index >= footer_.chunks.size()) {
    return Status::InvalidArgument("columnar reader: chunk index " +
                                   std::to_string(index) + " out of range");
  }
  const ChunkMeta& cm = footer_.chunks[index];
  std::vector<uint8_t> buf;
  DL_RETURN_NOT_OK(
      file_->ReadAt(cm.offset, static_cast<size_t>(cm.length), &buf));
  if (Crc32c(buf.data(), buf.size()) != cm.crc) {
    return Status::Corruption("columnar chunk: checksum mismatch at offset " +
                              std::to_string(cm.offset));
  }
  ByteReader reader(Slice(buf.data(), buf.size()));
  uint64_t rows = 0;
  DL_ASSIGN_OR_RETURN(rows, reader.GetVarint());
  if (rows != cm.rows) {
    return Status::Corruption(
        "columnar chunk: row count disagrees with footer");
  }
  const size_t n = static_cast<size_t>(rows);
  Slice ids_block, dataset_block, frameno_block, parent_block, bbox_block,
      meta_block, pixels_block, features_block;
  DL_ASSIGN_OR_RETURN(ids_block, reader.GetLengthPrefixed());
  DL_ASSIGN_OR_RETURN(dataset_block, reader.GetLengthPrefixed());
  DL_ASSIGN_OR_RETURN(frameno_block, reader.GetLengthPrefixed());
  DL_ASSIGN_OR_RETURN(parent_block, reader.GetLengthPrefixed());
  DL_ASSIGN_OR_RETURN(bbox_block, reader.GetLengthPrefixed());
  DL_ASSIGN_OR_RETURN(meta_block, reader.GetLengthPrefixed());
  DL_ASSIGN_OR_RETURN(pixels_block, reader.GetLengthPrefixed());
  DL_ASSIGN_OR_RETURN(features_block, reader.GetLengthPrefixed());
  if (!reader.AtEnd()) {
    return Status::Corruption("columnar chunk: trailing bytes");
  }

  // ids: always decoded (row identity).
  std::vector<uint64_t> ids;
  {
    ByteReader ir(ids_block);
    DL_RETURN_NOT_OK(SvbDecodeU64Block(&ir, n, &ids));
    if (ids.size() != n || !ir.AtEnd()) {
      return Status::Corruption("columnar chunk: id column count");
    }
    for (size_t i = 1; i < n; ++i) {
      const uint64_t prev = ids[i - 1];
      ids[i] += prev;
      if (ids[i] <= prev) {
        return Status::Corruption("columnar chunk: ids not ascending");
      }
    }
    if (ids.front() != cm.id_min || ids.back() != cm.id_max) {
      return Status::Corruption(
          "columnar chunk: id range disagrees with footer");
    }
  }

  // Walk the metadata column directory once; decode lazily below.
  struct ColSlices {
    std::string name;
    uint8_t tag = 0;
    Slice present;
    Slice payload;
  };
  std::vector<ColSlices> cols;
  {
    ByteReader mr(meta_block);
    uint64_t ncols = 0;
    DL_ASSIGN_OR_RETURN(ncols, mr.GetVarint());
    if (ncols != cm.columns.size()) {
      return Status::Corruption(
          "columnar chunk: column count disagrees with footer");
    }
    cols.reserve(static_cast<size_t>(ncols));
    for (uint64_t c = 0; c < ncols; ++c) {
      ColSlices col;
      Slice name;
      DL_ASSIGN_OR_RETURN(name, mr.GetLengthPrefixed());
      col.name = name.ToString();
      if (col.name != cm.columns[c].name) {
        return Status::Corruption(
            "columnar chunk: column name disagrees with footer");
      }
      DL_ASSIGN_OR_RETURN(col.tag, mr.GetU8());
      DL_ASSIGN_OR_RETURN(col.present, mr.GetLengthPrefixed());
      if (col.present.size() != (n + 7) / 8) {
        return Status::Corruption("columnar chunk: presence bitmap size");
      }
      DL_ASSIGN_OR_RETURN(col.payload, mr.GetLengthPrefixed());
      cols.push_back(std::move(col));
    }
    if (!mr.AtEnd()) {
      return Status::Corruption("columnar chunk: meta block trailing bytes");
    }
  }

  // Lazily decoded columns: a rows-length presence vector plus one
  // MetaValue per *present* row (indexed by presence rank).
  struct DecodedCol {
    std::vector<uint8_t> present;
    std::vector<uint32_t> rank;  // row -> index into values (when present)
    std::vector<MetaValue> values;
  };
  std::map<std::string, DecodedCol> decoded;
  auto decode_col = [&](const ColSlices& col) -> Status {
    if (decoded.count(col.name)) return Status::OK();
    DecodedCol d;
    d.present.assign(n, 0);
    const uint8_t* bits = reinterpret_cast<const uint8_t*>(
        col.present.data());
    d.rank.assign(n, 0);
    uint32_t present_count = 0;
    for (size_t i = 0; i < n; ++i) {
      if ((bits[i / 8] >> (i % 8)) & 1) {
        d.present[i] = 1;
        d.rank[i] = present_count++;
      }
    }
    DL_RETURN_NOT_OK(
        DecodeColumnPayload(col.tag, present_count, col.payload, &d.values));
    decoded.emplace(col.name, std::move(d));
    return Status::OK();
  };
  auto find_col = [&](const std::string& name) -> const ColSlices* {
    for (const ColSlices& col : cols) {
      if (col.name == name) return &col;
    }
    return nullptr;
  };

  // Row filter: decode only the filtered columns, mark survivors.
  std::vector<uint8_t> keep(n, 1);
  for (const ColumnPredicate& pred : options.row_filter) {
    if (pred.value.is_null()) {
      keep.assign(n, 0);
      break;
    }
    const ColSlices* col = find_col(pred.key);
    if (col == nullptr) {  // every row reads null -> never passes
      keep.assign(n, 0);
      break;
    }
    DL_RETURN_NOT_OK(decode_col(*col));
    const DecodedCol& d = decoded[pred.key];
    static const MetaValue kNull;
    for (size_t i = 0; i < n; ++i) {
      if (!keep[i]) continue;
      const MetaValue& v = d.present[i] ? d.values[d.rank[i]] : kNull;
      if (!ValuePassesPredicate(v, pred)) keep[i] = 0;
    }
  }
  std::vector<uint32_t> sel;
  sel.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (keep[i]) sel.push_back(static_cast<uint32_t>(i));
  }
  PatchCollection out;
  if (sel.empty()) return out;
  out.reserve(sel.size());

  // Fixed columns (cheap; always materialized for surviving rows).
  std::vector<std::string> datasets;
  {
    ByteReader dr(dataset_block);
    DL_RETURN_NOT_OK(DecodeStringDict(&dr, n, &datasets));
    if (!dr.AtEnd()) {
      return Status::Corruption("columnar chunk: dataset trailing bytes");
    }
  }
  std::vector<uint64_t> framenos, parents;
  {
    ByteReader fr(frameno_block);
    DL_RETURN_NOT_OK(SvbDecodeU64Block(&fr, n, &framenos));
    if (framenos.size() != n || !fr.AtEnd()) {
      return Status::Corruption("columnar chunk: frameno column count");
    }
    ByteReader pr(parent_block);
    DL_RETURN_NOT_OK(SvbDecodeU64Block(&pr, n, &parents));
    if (parents.size() != n || !pr.AtEnd()) {
      return Status::Corruption("columnar chunk: parent column count");
    }
  }
  std::vector<uint32_t> bbox_planes[4];
  {
    ByteReader br(bbox_block);
    for (int plane = 0; plane < 4; ++plane) {
      DL_RETURN_NOT_OK(SvbDecodeU32Block(&br, n, &bbox_planes[plane]));
      if (bbox_planes[plane].size() != n) {
        return Status::Corruption("columnar chunk: bbox plane count");
      }
    }
    if (!br.AtEnd()) {
      return Status::Corruption("columnar chunk: bbox trailing bytes");
    }
  }

  for (uint32_t row : sel) {
    Patch p;
    p.set_id(ids[row]);
    ImgRef ref;
    ref.dataset = datasets[row];
    ref.frameno = UnZigZag64(framenos[row]);
    ref.parent = parents[row];
    p.set_ref(std::move(ref));
    p.set_bbox(nn::BBox{UnZigZag32(bbox_planes[0][row]),
                        UnZigZag32(bbox_planes[1][row]),
                        UnZigZag32(bbox_planes[2][row]),
                        UnZigZag32(bbox_planes[3][row])});
    out.push_back(std::move(p));
  }

  // Projected metadata columns.
  for (const ColSlices& col : cols) {
    if (!options.projection.WantsMeta(col.name)) continue;
    DL_RETURN_NOT_OK(decode_col(col));
    const DecodedCol& d = decoded[col.name];
    for (size_t k = 0; k < sel.size(); ++k) {
      const uint32_t row = sel[k];
      if (d.present[row]) {
        out[k].mutable_meta().Set(col.name, d.values[d.rank[row]]);
      }
    }
  }

  // Pixels (skipped entirely — bytes unparsed — unless projected).
  if (options.projection.pixels) {
    ByteReader pr(pixels_block);
    std::vector<uint8_t> present;
    DL_RETURN_NOT_OK(GetPackedBits(&pr, n, &present));
    size_t present_count = 0;
    for (uint8_t b : present) present_count += b;
    std::vector<uint32_t> lengths;
    DL_RETURN_NOT_OK(SvbDecodeU32Block(&pr, present_count, &lengths));
    if (lengths.size() != present_count) {
      return Status::Corruption("columnar chunk: pixel length count");
    }
    uint64_t total = 0;
    for (uint32_t len : lengths) total += len;
    if (total != pr.remaining()) {
      return Status::Corruption("columnar chunk: pixel blob size mismatch");
    }
    Slice blobs;
    DL_ASSIGN_OR_RETURN(blobs, pr.GetBytes(pr.remaining()));
    // Per-row blob offsets via presence rank.
    std::vector<uint64_t> offsets(present_count + 1, 0);
    for (size_t k = 0; k < present_count; ++k) {
      offsets[k + 1] = offsets[k] + lengths[k];
    }
    std::vector<uint32_t> rank(n, 0);
    uint32_t seen = 0;
    for (size_t i = 0; i < n; ++i) {
      if (present[i]) rank[i] = seen++;
    }
    for (size_t k = 0; k < sel.size(); ++k) {
      const uint32_t row = sel[k];
      if (!present[row]) continue;
      const uint32_t pr_rank = rank[row];
      Slice blob(reinterpret_cast<const uint8_t*>(blobs.data()) +
                     offsets[pr_rank],
                 static_cast<size_t>(lengths[pr_rank]));
      DL_ASSIGN_OR_RETURN(Image img, codec::DeserializeRawImage(blob));
      out[k].set_pixels(std::move(img));
    }
  }

  // Features (same skip rule).
  if (options.projection.features) {
    ByteReader fr(features_block);
    std::vector<uint8_t> present;
    DL_RETURN_NOT_OK(GetPackedBits(&fr, n, &present));
    size_t present_count = 0;
    for (uint8_t b : present) present_count += b;
    std::vector<uint32_t> counts;
    DL_RETURN_NOT_OK(SvbDecodeU32Block(&fr, present_count, &counts));
    if (counts.size() != present_count) {
      return Status::Corruption("columnar chunk: feature count column");
    }
    uint64_t total_floats = 0;
    for (uint32_t c : counts) total_floats += c;
    if (total_floats * sizeof(float) != fr.remaining()) {
      return Status::Corruption("columnar chunk: feature bytes mismatch");
    }
    Slice raw;
    DL_ASSIGN_OR_RETURN(raw, fr.GetBytes(fr.remaining()));
    std::vector<uint64_t> offsets(present_count + 1, 0);
    for (size_t k = 0; k < present_count; ++k) {
      offsets[k + 1] = offsets[k] + counts[k];
    }
    std::vector<uint32_t> rank(n, 0);
    uint32_t seen = 0;
    for (size_t i = 0; i < n; ++i) {
      if (present[i]) rank[i] = seen++;
    }
    for (size_t k = 0; k < sel.size(); ++k) {
      const uint32_t row = sel[k];
      if (!present[row]) continue;
      const uint32_t fr_rank = rank[row];
      const size_t count = counts[fr_rank];
      std::vector<float> values(count);
      std::memcpy(values.data(),
                  reinterpret_cast<const uint8_t*>(raw.data()) +
                      offsets[fr_rank] * sizeof(float),
                  count * sizeof(float));
      out[k].set_features(
          Tensor({static_cast<int64_t>(count)}, std::move(values)));
    }
  }

  return out;
}

Result<PatchCollection> ColumnarReader::ReadAll() const {
  PatchCollection out;
  out.reserve(static_cast<size_t>(footer_.total_rows));
  ChunkReadOptions options;  // full projection, no filter
  for (size_t i = 0; i < footer_.chunks.size(); ++i) {
    DL_ASSIGN_OR_RETURN(PatchCollection rows, ReadChunk(i, options));
    for (Patch& p : rows) out.push_back(std::move(p));
  }
  return out;
}

}  // namespace columnar
}  // namespace deeplens
