// AsyncChunkLoader: decode-ahead pipeline between a ColumnarReader and
// the consuming BatchIterator. A dedicated I/O worker preads + decodes
// chunks in order and parks them in a bounded queue, so the consumer's
// compute overlaps the next chunk's I/O and decompression. The queue is
// bounded two ways — chunk count (DEEPLENS_PREFETCH_DEPTH) *and* a
// decoded-byte budget charged via ApproxPatchBytes — so prefetch cannot
// balloon memory on wide pixel/feature columns no matter how small the
// depth knob looks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/patch.h"
#include "storage/columnar/columnar_file.h"

namespace deeplens {
namespace columnar {

struct PrefetchOptions {
  /// Max decoded chunks queued ahead of the consumer; kUseEnv reads
  /// DEEPLENS_PREFETCH_DEPTH. 0 = no worker thread, Next() decodes
  /// synchronously.
  static constexpr size_t kUseEnv = static_cast<size_t>(-1);
  size_t depth = kUseEnv;
  /// Decoded-byte budget for the queue. The worker stalls before pushing
  /// a chunk that would overshoot — unless the queue is empty, so one
  /// oversized chunk still makes progress instead of deadlocking.
  size_t byte_budget = 64ull << 20;
};

struct PrefetchStats {
  uint64_t chunks_loaded = 0;
  uint64_t rows_loaded = 0;
  uint64_t bytes_decoded = 0;     // ApproxPatchBytes over all rows
  uint64_t peak_queued_bytes = 0;
  uint64_t consumer_waits = 0;    // Next() blocked on an empty queue
  uint64_t budget_waits = 0;      // worker blocked on depth/byte budget
  size_t depth = 0;               // resolved knob value
};

/// \brief Streams the decoded chunks of `chunk_indexes` in order.
/// Single-consumer; the reader itself is shared and thread-safe. The
/// destructor cancels and joins the worker.
class AsyncChunkLoader {
 public:
  AsyncChunkLoader(std::shared_ptr<const ColumnarReader> reader,
                   std::vector<size_t> chunk_indexes,
                   ChunkReadOptions read_options,
                   PrefetchOptions prefetch_options = {});
  ~AsyncChunkLoader();

  AsyncChunkLoader(const AsyncChunkLoader&) = delete;
  AsyncChunkLoader& operator=(const AsyncChunkLoader&) = delete;

  /// Next decoded chunk's surviving rows (possibly empty when the row
  /// filter eliminated a zone-selected chunk), nullopt after the last
  /// chunk, or the first error the worker hit.
  Result<std::optional<PatchCollection>> Next();

  /// Snapshot of the running counters (safe to call concurrently).
  PrefetchStats stats() const;

 private:
  struct QueuedChunk {
    PatchCollection rows;
    size_t bytes = 0;
  };

  void WorkerLoop();
  Result<PatchCollection> LoadChunk(size_t position);

  const std::shared_ptr<const ColumnarReader> reader_;
  const std::vector<size_t> chunk_indexes_;
  const ChunkReadOptions read_options_;
  size_t depth_ = 0;
  size_t byte_budget_ = 0;

  // Synchronous mode state (depth_ == 0).
  size_t sync_pos_ = 0;

  mutable std::mutex mu_;
  std::condition_variable produced_;
  std::condition_variable consumed_;
  std::deque<QueuedChunk> queue_;
  size_t queued_bytes_ = 0;
  bool done_ = false;       // worker exhausted the chunk list or errored
  bool cancelled_ = false;  // destructor asked the worker to stop
  Status worker_status_;
  PrefetchStats stats_;
  std::thread worker_;
};

}  // namespace columnar
}  // namespace deeplens
