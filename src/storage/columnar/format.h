// On-disk layout contract of the chunked columnar view format, shared by
// ColumnarWriter/ColumnarReader, the planner's pushdown path, and the
// fuzz/corruption tests.
//
//   [u64 header magic]
//   [chunk 0 bytes][chunk 1 bytes]...
//   [footer][u32 footer_len][u32 crc32c(footer)][u64 tail magic]
//
// Re-opening a file for append writes new chunks after the previous tail
// and commits a fresh footer at the new end; stale tails become dead
// bytes addressed by nothing. The reader trusts only the trailing
// footer, whose catalog carries per-chunk offset/length/CRC, the row
// count, the id range, and a zone map (min/max under MetaValue::Compare,
// null count) per metadata column — enough to prune chunks against
// sargable conjuncts without reading a single chunk byte. A torn tail or
// a CRC mismatch is a typed Corruption, never a wrong answer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/patch.h"
#include "core/value.h"
#include "exec/expression.h"

namespace deeplens {
namespace columnar {

// "DLCOLV1\n" little-endian; doubles as the format-version switch — a
// view file starting with anything else is read as a legacy RecordStore.
inline constexpr uint64_t kColumnarMagic = 0x0a31564c4f434c44ull;
inline constexpr size_t kHeaderSize = 8;
inline constexpr size_t kTailSize = 16;  // after footer: len + crc + magic
inline constexpr uint8_t kFormatVersion = 1;

// Column tag inside a chunk / footer. Values 1..4 mirror ValueType; a
// column whose present entries mix types (or hold explicit nulls) falls
// back to row-serialized MetaValues.
inline constexpr uint8_t kTagMixed = 0xff;

// Zone-map min/max entries larger than this (long strings) are dropped
// from the footer rather than bloating it; the chunk just stops being
// prunable on that column.
inline constexpr size_t kMaxZoneMapValueBytes = 128;

/// DEEPLENS_COLUMNAR_CHUNK_ROWS: rows per chunk, [1, 65536], default 8192.
size_t ColumnarChunkRowsFromEnv();
inline constexpr size_t kDefaultChunkRows = 8192;
inline constexpr size_t kMaxChunkRows = 65536;

/// DEEPLENS_PREFETCH_DEPTH: decoded chunks the AsyncChunkLoader may queue
/// ahead of the consumer, [0, 64]; 0 disables the I/O thread (synchronous
/// loads). Default 4.
size_t PrefetchDepthFromEnv();
inline constexpr size_t kDefaultPrefetchDepth = 4;
inline constexpr size_t kMaxPrefetchDepth = 64;

/// DEEPLENS_VIEW_FORMAT: format for newly created view files,
/// "columnar" (default) or "legacy". Existing files keep their format.
std::string ViewFormatFromEnv();

/// Per-column zone map: enough footer-resident state to decide
/// ChunkMayMatch without touching the chunk.
struct ZoneMap {
  uint64_t null_count = 0;  // rows where meta.Get(name).is_null()
  bool has_minmax = false;  // false: all-null column or oversized values
  MetaValue min;            // min/max under MetaValue::Compare over the
  MetaValue max;            // non-null values (cross-type by type tag)
};

struct ChunkColumnMeta {
  std::string name;
  uint8_t tag = kTagMixed;
  ZoneMap zone;
};

struct ChunkMeta {
  uint64_t offset = 0;  // absolute file offset of the chunk bytes
  uint64_t length = 0;
  uint32_t crc = 0;     // crc32c over the chunk bytes
  uint64_t rows = 0;
  PatchId id_min = 0;
  PatchId id_max = 0;
  std::vector<ChunkColumnMeta> columns;  // sorted by name (MetaDict order)

  const ChunkColumnMeta* FindColumn(const std::string& name) const;
};

struct ColumnarFooter {
  uint8_t version = kFormatVersion;
  uint64_t total_rows = 0;
  std::vector<ChunkMeta> chunks;

  void SerializeInto(ByteBuffer* out) const;
  static Result<ColumnarFooter> Deserialize(ByteReader* reader);
};

/// Column subset to materialize from a chunk. Blocks outside the
/// projection are skipped at decode time (their bytes are never parsed,
/// their values never allocated).
struct ColumnarProjection {
  bool pixels = true;
  bool features = true;
  bool all_meta = true;
  std::vector<std::string> meta_keys;  // consulted when !all_meta

  bool WantsMeta(const std::string& key) const;
};

/// One sargable conjunct pushed into the reader. `op` uses the
/// CompiledPredicate convention: -2 '<', -1 '<=', 0 '==', 1 '>=', 2 '>',
/// attribute on the left.
struct ColumnPredicate {
  int op = 0;
  std::string key;
  MetaValue value;
};

/// The pushdown the planner extracted from a predicate tree: every
/// top-level conjunct of the slot-0 attr-vs-literal shape. When
/// `fully_sargable` is true the conjuncts are the whole predicate and
/// the reader's row filter alone decides membership; otherwise the
/// residual predicate must still run over the materialized rows.
struct PredicatePushdown {
  std::vector<ColumnPredicate> preds;
  bool fully_sargable = true;
};

PredicatePushdown ExtractPushdown(const ExprPtr& predicate);

/// Row-level semantics of a pushed conjunct — exactly
/// CompiledPredicate::StepPasses: a null attribute or null literal never
/// passes; otherwise MetaValue::Compare decides.
bool ValuePassesPredicate(const MetaValue& attr, const ColumnPredicate& pred);

/// Zone-map test: false only when *no* row in the chunk can pass every
/// conjunct. Conservative in both directions the format needs: a column
/// absent from the chunk (or all-null) fails any conjunct on it, and a
/// column without min/max stats never prunes.
bool ChunkMayMatch(const ChunkMeta& chunk,
                   const std::vector<ColumnPredicate>& preds);

/// Decoded heap footprint of a patch (pixel bytes, feature floats,
/// strings, dict nodes) — the unit the AsyncChunkLoader's byte budget is
/// charged in. Deliberately counts capacity-style costs, not just
/// payload, so prefetch cannot balloon memory on wide columns.
size_t ApproxPatchBytes(const Patch& patch);

}  // namespace columnar
}  // namespace deeplens
