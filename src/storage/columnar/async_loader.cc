#include "storage/columnar/async_loader.h"

#include "storage/columnar/format.h"

namespace deeplens {
namespace columnar {

AsyncChunkLoader::AsyncChunkLoader(
    std::shared_ptr<const ColumnarReader> reader,
    std::vector<size_t> chunk_indexes, ChunkReadOptions read_options,
    PrefetchOptions prefetch_options)
    : reader_(std::move(reader)),
      chunk_indexes_(std::move(chunk_indexes)),
      read_options_(std::move(read_options)) {
  depth_ = prefetch_options.depth == PrefetchOptions::kUseEnv
               ? PrefetchDepthFromEnv()
               : prefetch_options.depth;
  if (depth_ > kMaxPrefetchDepth) depth_ = kMaxPrefetchDepth;
  byte_budget_ = prefetch_options.byte_budget;
  stats_.depth = depth_;
  if (depth_ > 0 && !chunk_indexes_.empty()) {
    worker_ = std::thread(&AsyncChunkLoader::WorkerLoop, this);
  }
}

AsyncChunkLoader::~AsyncChunkLoader() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
  }
  consumed_.notify_all();
  if (worker_.joinable()) worker_.join();
}

Result<PatchCollection> AsyncChunkLoader::LoadChunk(size_t position) {
  return reader_->ReadChunk(chunk_indexes_[position], read_options_);
}

void AsyncChunkLoader::WorkerLoop() {
  for (size_t pos = 0; pos < chunk_indexes_.size(); ++pos) {
    // Read + decode outside the lock: this is the overlap that makes
    // prefetch worth having.
    Result<PatchCollection> loaded = LoadChunk(pos);
    std::unique_lock<std::mutex> lock(mu_);
    if (!loaded.ok()) {
      worker_status_ = loaded.status();
      done_ = true;
      produced_.notify_all();
      return;
    }
    QueuedChunk chunk;
    chunk.rows = std::move(loaded).value();
    for (const Patch& p : chunk.rows) chunk.bytes += ApproxPatchBytes(p);

    const bool must_wait = [&] {
      return !cancelled_ && !queue_.empty() &&
             (queue_.size() >= depth_ ||
              queued_bytes_ + chunk.bytes > byte_budget_);
    }();
    if (must_wait) ++stats_.budget_waits;
    consumed_.wait(lock, [&] {
      return cancelled_ ||
             (queue_.size() < depth_ &&
              (queue_.empty() ||
               queued_bytes_ + chunk.bytes <= byte_budget_));
    });
    if (cancelled_) return;
    queued_bytes_ += chunk.bytes;
    if (queued_bytes_ > stats_.peak_queued_bytes) {
      stats_.peak_queued_bytes = queued_bytes_;
    }
    stats_.chunks_loaded += 1;
    stats_.rows_loaded += chunk.rows.size();
    stats_.bytes_decoded += chunk.bytes;
    queue_.push_back(std::move(chunk));
    produced_.notify_all();
  }
  std::lock_guard<std::mutex> lock(mu_);
  done_ = true;
  produced_.notify_all();
}

Result<std::optional<PatchCollection>> AsyncChunkLoader::Next() {
  if (depth_ == 0) {  // synchronous mode: no worker, no queue
    if (sync_pos_ >= chunk_indexes_.size()) return std::optional<PatchCollection>{};
    DL_ASSIGN_OR_RETURN(PatchCollection rows, LoadChunk(sync_pos_));
    ++sync_pos_;
    std::lock_guard<std::mutex> lock(mu_);
    stats_.chunks_loaded += 1;
    stats_.rows_loaded += rows.size();
    for (const Patch& p : rows) stats_.bytes_decoded += ApproxPatchBytes(p);
    return std::optional<PatchCollection>(std::move(rows));
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (chunk_indexes_.empty()) return std::optional<PatchCollection>{};
  if (queue_.empty() && !done_) ++stats_.consumer_waits;
  produced_.wait(lock, [&] { return !queue_.empty() || done_; });
  if (queue_.empty()) {
    if (!worker_status_.ok()) {
      Status st = worker_status_;
      // A terminal error is sticky: later Next() calls keep reporting it.
      return st;
    }
    return std::optional<PatchCollection>{};
  }
  QueuedChunk chunk = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= chunk.bytes;
  lock.unlock();
  consumed_.notify_all();
  return std::optional<PatchCollection>(std::move(chunk.rows));
}

PrefetchStats AsyncChunkLoader::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace columnar
}  // namespace deeplens
