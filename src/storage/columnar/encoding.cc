#include "storage/columnar/encoding.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define DEEPLENS_SVB_X86 1
#include <tmmintrin.h>
#else
#define DEEPLENS_SVB_X86 0
#endif

namespace deeplens {
namespace columnar {
namespace {

// Per-control-byte decode tables. shuffle[c] is the pshufb mask that
// expands one 16-byte group load into four little-endian u32 lanes
// (0x80 lanes zero-fill); length[c] is the total data bytes the group
// consumes. The scalar path shares length[] so both paths agree on
// framing byte-for-byte.
struct SvbTables {
  alignas(16) uint8_t shuffle[256][16];
  uint8_t length[256];
};

const SvbTables& Tables() {
  static const SvbTables tables = [] {
    SvbTables t{};
    for (int c = 0; c < 256; ++c) {
      int pos = 0;
      for (int lane = 0; lane < 4; ++lane) {
        const int len = ((c >> (lane * 2)) & 3) + 1;
        for (int b = 0; b < 4; ++b) {
          t.shuffle[c][lane * 4 + b] =
              b < len ? static_cast<uint8_t>(pos + b) : 0x80;
        }
        pos += len;
      }
      t.length[c] = static_cast<uint8_t>(pos);
    }
    return t;
  }();
  return tables;
}

inline uint32_t ScalarLoadLane(const uint8_t* p, int len) {
  uint32_t v = 0;
  for (int b = 0; b < len; ++b) v |= static_cast<uint32_t>(p[b]) << (8 * b);
  return v;
}

// Decodes `n` values; the caller has already proven that the control and
// data slices are exactly large enough, so no bounds checks remain here.
void DecodeScalar(const uint8_t* control, const uint8_t* data, size_t n,
                  uint32_t* out) {
  const SvbTables& t = Tables();
  size_t i = 0;
  while (i + 4 <= n) {
    const uint8_t c = control[i / 4];
    const uint8_t* p = data;
    for (int lane = 0; lane < 4; ++lane) {
      const int len = ((c >> (lane * 2)) & 3) + 1;
      out[i + lane] = ScalarLoadLane(p, len);
      p += len;
    }
    data += t.length[c];
    i += 4;
  }
  for (; i < n; ++i) {
    const int len = ((control[i / 4] >> ((i % 4) * 2)) & 3) + 1;
    out[i] = ScalarLoadLane(data, len);
    data += len;
  }
}

#if DEEPLENS_SVB_X86
// SSSE3 kernel: one 16-byte load + pshufb per group of four values.
// Compiled with a per-function target attribute so the rest of the
// binary keeps the baseline ISA; only entered after a cpuid check.
// Groups whose 16-byte load would read past the data slice fall through
// to the scalar tail (each group consumes at most 16 bytes, so
// `data_left >= 16` guarantees the load is in bounds).
__attribute__((target("ssse3"))) void DecodeSsse3(const uint8_t* control,
                                                  const uint8_t* data,
                                                  size_t data_len, size_t n,
                                                  uint32_t* out) {
  const SvbTables& t = Tables();
  size_t i = 0;
  size_t data_pos = 0;
  while (i + 4 <= n && data_pos + 16 <= data_len) {
    const uint8_t c = control[i / 4];
    const __m128i in =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + data_pos));
    const __m128i mask =
        _mm_load_si128(reinterpret_cast<const __m128i*>(t.shuffle[c]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_shuffle_epi8(in, mask));
    data_pos += t.length[c];
    i += 4;
  }
  if (i < n) DecodeScalar(control + i / 4, data + data_pos, n - i, out + i);
}

bool DetectSsse3() { return __builtin_cpu_supports("ssse3") != 0; }
#endif  // DEEPLENS_SVB_X86

// Total data bytes the control stream implies for exactly `n` values.
uint64_t ControlledLength(const uint8_t* control, size_t n) {
  const SvbTables& t = Tables();
  uint64_t total = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) total += t.length[control[i / 4]];
  for (; i < n; ++i) total += ((control[i / 4] >> ((i % 4) * 2)) & 3) + 1;
  return total;
}

}  // namespace

bool SvbSimdAvailable() {
#if DEEPLENS_SVB_X86
  static const bool available = DetectSsse3();
  return available;
#else
  return false;
#endif
}

void SvbEncodeU32Block(const uint32_t* values, size_t n, ByteBuffer* out) {
  std::vector<uint8_t> control((n + 3) / 4, 0);
  std::vector<uint8_t> data;
  data.reserve(n * 2);
  for (size_t i = 0; i < n; ++i) {
    uint32_t v = values[i];
    const uint8_t len = v < (1u << 8) ? 1 : v < (1u << 16) ? 2
                        : v < (1u << 24)                   ? 3
                                                           : 4;
    control[i / 4] |= static_cast<uint8_t>((len - 1) << ((i % 4) * 2));
    for (uint8_t b = 0; b < len; ++b) {
      data.push_back(static_cast<uint8_t>(v & 0xff));
      v >>= 8;
    }
  }
  out->PutVarint(n);
  out->PutVarint(data.size());
  out->PutBytes(control.data(), control.size());
  out->PutBytes(data.data(), data.size());
}

Status SvbDecodeU32Block(ByteReader* reader, size_t max_values,
                         std::vector<uint32_t>* out) {
  uint64_t n = 0;
  uint64_t data_len = 0;
  DL_ASSIGN_OR_RETURN(n, reader->GetVarint());
  DL_ASSIGN_OR_RETURN(data_len, reader->GetVarint());
  if (n > max_values) {
    return Status::Corruption("svb block: value count " + std::to_string(n) +
                              " exceeds bound " + std::to_string(max_values));
  }
  const size_t control_len = (static_cast<size_t>(n) + 3) / 4;
  Slice control;
  Slice data;
  DL_ASSIGN_OR_RETURN(control, reader->GetBytes(control_len));
  DL_ASSIGN_OR_RETURN(data, reader->GetBytes(data_len));
  const uint8_t* cptr = reinterpret_cast<const uint8_t*>(control.data());
  if (ControlledLength(cptr, n) != data_len) {
    return Status::Corruption("svb block: control/data length mismatch");
  }
  out->resize(n);
  if (n == 0) return Status::OK();
  const uint8_t* dptr = reinterpret_cast<const uint8_t*>(data.data());
#if DEEPLENS_SVB_X86
  if (SvbSimdAvailable()) {
    DecodeSsse3(cptr, dptr, data_len, n, out->data());
    return Status::OK();
  }
#endif
  DecodeScalar(cptr, dptr, n, out->data());
  return Status::OK();
}

void SvbEncodeU64Block(const uint64_t* values, size_t n, ByteBuffer* out) {
  std::vector<uint32_t> lanes(n * 2);
  for (size_t i = 0; i < n; ++i) {
    lanes[2 * i] = static_cast<uint32_t>(values[i]);
    lanes[2 * i + 1] = static_cast<uint32_t>(values[i] >> 32);
  }
  SvbEncodeU32Block(lanes.data(), lanes.size(), out);
}

Status SvbDecodeU64Block(ByteReader* reader, size_t max_values,
                         std::vector<uint64_t>* out) {
  if (max_values > SIZE_MAX / 2) max_values = SIZE_MAX / 2;
  std::vector<uint32_t> lanes;
  DL_RETURN_NOT_OK(SvbDecodeU32Block(reader, max_values * 2, &lanes));
  if (lanes.size() % 2 != 0) {
    return Status::Corruption("svb u64 block: odd lane count");
  }
  out->resize(lanes.size() / 2);
  for (size_t i = 0; i < out->size(); ++i) {
    (*out)[i] = static_cast<uint64_t>(lanes[2 * i]) |
                (static_cast<uint64_t>(lanes[2 * i + 1]) << 32);
  }
  return Status::OK();
}

}  // namespace columnar
}  // namespace deeplens
