#include "storage/sorted_file.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/checksum.h"

namespace deeplens {

// File layout:
//   records: [varint key_len, key, varint val_len, val]*
//   footer:  varint anchor_count, [varint key_len, key, u64 offset]*,
//            u64 num_records, u64 data_end, u32 footer_crc, u64 footer_len
// The footer is read by seeking to the end.
namespace {
constexpr uint64_t kIndexInterval = 64;
}

Result<std::unique_ptr<SortedFileWriter>> SortedFileWriter::Create(
    const std::string& path) {
  DL_RETURN_NOT_OK(RemoveFileIfExists(path));
  auto writer = std::unique_ptr<SortedFileWriter>(new SortedFileWriter());
  DL_ASSIGN_OR_RETURN(writer->file_, AppendOnlyFile::Open(path));
  return writer;
}

Status SortedFileWriter::Add(const Slice& key, const Slice& value) {
  if (finished_) return Status::InvalidArgument("writer already finished");
  if (num_records_ > 0 && key.Compare(Slice(last_key_)) < 0) {
    return Status::InvalidArgument(
        "SortedFileWriter keys must be non-decreasing");
  }
  if (num_records_ % kIndexInterval == 0) {
    anchors_.emplace_back(key.ToString(), file_->size());
  }
  ByteBuffer rec;
  rec.PutLengthPrefixed(key);
  rec.PutLengthPrefixed(value);
  DL_RETURN_NOT_OK(file_->Append(rec.AsSlice()).status());
  last_key_ = key.ToString();
  ++num_records_;
  return Status::OK();
}

Status SortedFileWriter::Finish() {
  if (finished_) return Status::OK();
  const uint64_t data_end = file_->size();
  ByteBuffer footer;
  footer.PutVarint(anchors_.size());
  for (const auto& [key, offset] : anchors_) {
    footer.PutLengthPrefixed(Slice(key));
    footer.PutU64(offset);
  }
  footer.PutU64(num_records_);
  footer.PutU64(data_end);
  const uint32_t crc = Crc32c(footer.AsSlice());
  ByteBuffer tail;
  tail.PutBytes(footer.data().data(), footer.size());
  tail.PutU32(crc);
  tail.PutU64(footer.size());
  DL_RETURN_NOT_OK(file_->Append(tail.AsSlice()).status());
  DL_RETURN_NOT_OK(file_->Flush());
  finished_ = true;
  return Status::OK();
}

Result<std::unique_ptr<SortedFileReader>> SortedFileReader::Open(
    const std::string& path) {
  auto reader = std::unique_ptr<SortedFileReader>(new SortedFileReader());
  DL_ASSIGN_OR_RETURN(reader->file_, RandomAccessFile::Open(path));
  reader->file_bytes_ = reader->file_->size();
  if (reader->file_bytes_ < 12) {
    return Status::Corruption("sorted file too small for a footer");
  }
  // Tail: u32 crc + u64 footer_len.
  std::vector<uint8_t> tail;
  DL_RETURN_NOT_OK(
      reader->file_->ReadAt(reader->file_bytes_ - 12, 12, &tail));
  ByteReader tail_reader((Slice(tail)));
  DL_ASSIGN_OR_RETURN(uint32_t crc, tail_reader.GetU32());
  DL_ASSIGN_OR_RETURN(uint64_t footer_len, tail_reader.GetU64());
  if (footer_len + 12 > reader->file_bytes_) {
    return Status::Corruption("sorted file footer length out of range");
  }
  std::vector<uint8_t> footer;
  DL_RETURN_NOT_OK(reader->file_->ReadAt(
      reader->file_bytes_ - 12 - footer_len,
      static_cast<size_t>(footer_len), &footer));
  if (Crc32c(Slice(footer)) != crc) {
    return Status::Corruption("sorted file footer CRC mismatch");
  }
  ByteReader fr((Slice(footer)));
  DL_ASSIGN_OR_RETURN(uint64_t anchor_count, fr.GetVarint());
  reader->anchors_.reserve(static_cast<size_t>(anchor_count));
  for (uint64_t i = 0; i < anchor_count; ++i) {
    DL_ASSIGN_OR_RETURN(Slice key, fr.GetLengthPrefixed());
    DL_ASSIGN_OR_RETURN(uint64_t offset, fr.GetU64());
    reader->anchors_.emplace_back(key.ToString(), offset);
  }
  DL_ASSIGN_OR_RETURN(reader->num_records_, fr.GetU64());
  DL_ASSIGN_OR_RETURN(reader->data_end_, fr.GetU64());
  return reader;
}

Status SortedFileReader::Scan(
    const Slice& lo, const Slice& hi,
    const std::function<bool(const Slice&, const Slice&)>& visitor) const {
  // Find the last anchor with key <= lo; start scanning there.
  uint64_t start = 0;
  {
    size_t a = 0, b = anchors_.size();
    while (a < b) {
      const size_t mid = (a + b) / 2;
      if (Slice(anchors_[mid].first).Compare(lo) <= 0) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    if (a > 0) start = anchors_[a - 1].second;
  }
  if (anchors_.empty()) return Status::OK();

  // Stream from `start` to data_end_, decoding records.
  std::vector<uint8_t> data;
  DL_RETURN_NOT_OK(file_->ReadAt(start,
                                 static_cast<size_t>(data_end_ - start),
                                 &data));
  ByteReader reader((Slice(data)));
  while (!reader.AtEnd()) {
    DL_ASSIGN_OR_RETURN(Slice key, reader.GetLengthPrefixed());
    DL_ASSIGN_OR_RETURN(Slice value, reader.GetLengthPrefixed());
    if (key.Compare(hi) > 0) break;
    if (key.Compare(lo) >= 0) {
      if (!visitor(key, value)) break;
    }
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> SortedFileReader::Get(const Slice& key) const {
  std::vector<uint8_t> out;
  bool found = false;
  DL_RETURN_NOT_OK(Scan(key, key, [&](const Slice& /*k*/, const Slice& v) {
    out = v.ToBytes();
    found = true;
    return false;
  }));
  if (!found) return Status::NotFound("key not in sorted file");
  return out;
}

}  // namespace deeplens
