// Immutable sorted-run file: records bulk-written in key order with a
// sparse in-memory index (one anchor every N records). This is the "Sorted
// File" physical design from paper §3.1/§3.2 — the cheapest structure for
// temporal predicates when data arrives ordered (frame numbers).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/file_io.h"

namespace deeplens {

/// \brief Writes a sorted run. Keys MUST be appended in non-decreasing
/// order; Finish() seals the file.
class SortedFileWriter {
 public:
  static Result<std::unique_ptr<SortedFileWriter>> Create(
      const std::string& path);

  /// Appends a record; returns InvalidArgument if out of order.
  Status Add(const Slice& key, const Slice& value);

  /// Seals the run (writes the footer with the sparse index).
  Status Finish();

 private:
  SortedFileWriter() = default;

  std::unique_ptr<AppendOnlyFile> file_;
  std::string last_key_;
  uint64_t num_records_ = 0;
  // Sparse index: (key, offset) anchors every kIndexInterval records.
  std::vector<std::pair<std::string, uint64_t>> anchors_;
  bool finished_ = false;
};

/// \brief Reads a sealed sorted run.
class SortedFileReader {
 public:
  static Result<std::unique_ptr<SortedFileReader>> Open(
      const std::string& path);

  /// Visits records with lo <= key <= hi in order; binary-searches the
  /// sparse index to find the starting block, then scans forward.
  Status Scan(const Slice& lo, const Slice& hi,
              const std::function<bool(const Slice&, const Slice&)>&
                  visitor) const;

  /// Convenience point lookup (first record with exactly `key`).
  Result<std::vector<uint8_t>> Get(const Slice& key) const;

  uint64_t num_records() const { return num_records_; }
  uint64_t file_bytes() const { return file_bytes_; }

 private:
  SortedFileReader() = default;

  std::unique_ptr<RandomAccessFile> file_;
  std::vector<std::pair<std::string, uint64_t>> anchors_;
  uint64_t num_records_ = 0;
  uint64_t data_end_ = 0;  // offset where records stop and the footer starts
  uint64_t file_bytes_ = 0;
};

}  // namespace deeplens
