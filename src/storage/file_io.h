// Thin POSIX file wrappers used by the storage layer: buffered append
// writer, positional random reader, and filesystem helpers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace deeplens {

/// \brief Buffered append-only writer.
class AppendOnlyFile {
 public:
  /// Opens (creating or appending to) `path`.
  static Result<std::unique_ptr<AppendOnlyFile>> Open(
      const std::string& path);
  ~AppendOnlyFile();

  AppendOnlyFile(const AppendOnlyFile&) = delete;
  AppendOnlyFile& operator=(const AppendOnlyFile&) = delete;

  /// Appends bytes; returns the file offset the write began at.
  Result<uint64_t> Append(const Slice& data);

  /// Flushes the user-space buffer to the OS.
  Status Flush();

  /// Flush(), then fsync(2): the bytes survive power loss, not just a
  /// process crash. Used before an atomic-rename commit point.
  Status Sync();

  /// Current logical file size (including buffered bytes).
  uint64_t size() const { return size_; }

 private:
  AppendOnlyFile(int fd, uint64_t size) : fd_(fd), size_(size) {}

  Status WriteRaw(const uint8_t* data, size_t n);

  int fd_;
  uint64_t size_;
  std::vector<uint8_t> buffer_;
};

/// \brief Positional (pread) reader.
class RandomAccessFile {
 public:
  static Result<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path);
  ~RandomAccessFile();

  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Reads exactly `n` bytes at `offset` into `out` (resized).
  Status ReadAt(uint64_t offset, size_t n, std::vector<uint8_t>* out) const;

  uint64_t size() const { return size_; }

 private:
  RandomAccessFile(int fd, uint64_t size) : fd_(fd), size_(size) {}

  int fd_;
  uint64_t size_;
};

/// Filesystem helpers.
bool FileExists(const std::string& path);
Result<uint64_t> FileSize(const std::string& path);
Status RemoveFileIfExists(const std::string& path);
Status CreateDirs(const std::string& path);
/// Reads an entire (small) file.
Result<std::vector<uint8_t>> ReadWholeFile(const std::string& path);
/// Atomically replaces `path` with `data` (write temp + rename).
Status WriteWholeFile(const std::string& path, const Slice& data);

}  // namespace deeplens
