#include "storage/record_store.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/checksum.h"
#include "common/logging.h"

namespace deeplens {

// Log record framing:
//   u32 crc (over everything after it)
//   u8  kind (0 = put, 1 = tombstone)
//   varint key_len, key bytes
//   varint val_len, val bytes   (puts only)
namespace {
constexpr uint8_t kPut = 0;
constexpr uint8_t kTombstone = 1;
}  // namespace

RecordStore::RecordStore(std::string path) : path_(std::move(path)) {}

RecordStore::~RecordStore() {
  if (writer_) (void)writer_->Flush();
}

Result<std::unique_ptr<RecordStore>> RecordStore::Open(
    const std::string& path) {
  auto store = std::unique_ptr<RecordStore>(new RecordStore(path));
  DL_ASSIGN_OR_RETURN(store->writer_, AppendOnlyFile::Open(path));
  DL_RETURN_NOT_OK(store->Replay());
  return store;
}

Status RecordStore::Replay() {
  DL_ASSIGN_OR_RETURN(uint64_t file_size, FileSize(path_));
  if (file_size == 0) return Status::OK();
  DL_ASSIGN_OR_RETURN(auto data, ReadWholeFile(path_));
  ByteReader reader{Slice(data)};
  uint64_t offset = 0;
  while (!reader.AtEnd()) {
    const uint64_t record_offset = offset;
    auto crc_r = reader.GetU32();
    if (!crc_r.ok()) break;  // torn tail
    auto body_r = reader.GetLengthPrefixed();
    if (!body_r.ok()) break;
    const Slice body = body_r.value();
    if (Crc32c(body) != crc_r.value()) {
      DL_LOG(kWarn) << "record store " << path_
                    << ": CRC mismatch at offset " << record_offset
                    << "; truncating replay";
      break;
    }
    ByteReader body_reader(body);
    DL_ASSIGN_OR_RETURN(uint8_t kind, body_reader.GetU8());
    DL_ASSIGN_OR_RETURN(Slice key, body_reader.GetLengthPrefixed());
    if (kind == kPut) {
      index_[key.ToString()] = record_offset;
    } else if (kind == kTombstone) {
      index_.erase(key.ToString());
    } else {
      return Status::Corruption("unknown log record kind");
    }
    ++num_log_records_;
    offset = static_cast<uint64_t>(data.size()) -
             static_cast<uint64_t>(reader.remaining());
  }
  return Status::OK();
}

Status RecordStore::Put(const Slice& key, const Slice& value) {
  ByteBuffer body;
  body.PutU8(kPut);
  body.PutLengthPrefixed(key);
  body.PutLengthPrefixed(value);
  ByteBuffer framed;
  framed.PutU32(Crc32c(body.AsSlice()));
  framed.PutLengthPrefixed(body.AsSlice());
  DL_ASSIGN_OR_RETURN(uint64_t offset, writer_->Append(framed.AsSlice()));
  index_[key.ToString()] = offset;
  ++num_log_records_;
  return Status::OK();
}

Status RecordStore::Delete(const Slice& key) {
  ByteBuffer body;
  body.PutU8(kTombstone);
  body.PutLengthPrefixed(key);
  ByteBuffer framed;
  framed.PutU32(Crc32c(body.AsSlice()));
  framed.PutLengthPrefixed(body.AsSlice());
  DL_RETURN_NOT_OK(writer_->Append(framed.AsSlice()).status());
  index_.erase(key.ToString());
  ++num_log_records_;
  return Status::OK();
}

Result<std::vector<uint8_t>> RecordStore::ReadValueAt(
    uint64_t offset) const {
  // Reads go through a pread handle; reopen it if the log grew past what
  // the current handle has seen (appends after open).
  if (!reader_ || offset >= reader_valid_up_to_) {
    DL_RETURN_NOT_OK(writer_ ? writer_->Flush() : Status::OK());
    DL_ASSIGN_OR_RETURN(reader_, RandomAccessFile::Open(path_));
    reader_valid_up_to_ = reader_->size();
  }
  // Record header: u32 crc + varint body_len. Read a generous prefix to
  // decode the varint, then the body.
  std::vector<uint8_t> header;
  const size_t header_probe =
      static_cast<size_t>(std::min<uint64_t>(16, reader_->size() - offset));
  DL_RETURN_NOT_OK(reader_->ReadAt(offset, header_probe, &header));
  ByteReader hr{Slice(header)};
  DL_ASSIGN_OR_RETURN(uint32_t crc, hr.GetU32());
  DL_ASSIGN_OR_RETURN(uint64_t body_len, hr.GetVarint());
  const uint64_t body_offset =
      offset + (header_probe - hr.remaining());
  std::vector<uint8_t> body;
  DL_RETURN_NOT_OK(
      reader_->ReadAt(body_offset, static_cast<size_t>(body_len), &body));
  if (Crc32c(Slice(body)) != crc) {
    return Status::Corruption("record CRC mismatch on read");
  }
  ByteReader body_reader((Slice(body)));
  DL_ASSIGN_OR_RETURN(uint8_t kind, body_reader.GetU8());
  if (kind != kPut) return Status::Corruption("expected a put record");
  DL_ASSIGN_OR_RETURN(Slice key, body_reader.GetLengthPrefixed());
  (void)key;
  DL_ASSIGN_OR_RETURN(Slice value, body_reader.GetLengthPrefixed());
  return value.ToBytes();
}

Result<std::vector<uint8_t>> RecordStore::Get(const Slice& key) const {
  auto it = index_.find(key.ToString());
  if (it == index_.end()) {
    return Status::NotFound("key not in record store");
  }
  return ReadValueAt(it->second);
}

bool RecordStore::Contains(const Slice& key) const {
  return index_.find(key.ToString()) != index_.end();
}

Status RecordStore::Scan(
    const Slice& lo, const Slice& hi,
    const std::function<bool(const Slice&, const Slice&)>& visitor) const {
  auto it = index_.lower_bound(lo.ToString());
  const std::string hi_str = hi.ToString();
  for (; it != index_.end(); ++it) {
    if (Slice(it->first).Compare(Slice(hi_str)) > 0) break;
    DL_ASSIGN_OR_RETURN(auto value, ReadValueAt(it->second));
    if (!visitor(Slice(it->first), Slice(value))) break;
  }
  return Status::OK();
}

Status RecordStore::ScanAll(
    const std::function<bool(const Slice&, const Slice&)>& visitor) const {
  for (auto it = index_.begin(); it != index_.end(); ++it) {
    DL_ASSIGN_OR_RETURN(auto value, ReadValueAt(it->second));
    if (!visitor(Slice(it->first), Slice(value))) break;
  }
  return Status::OK();
}

Status RecordStore::Flush() { return writer_->Flush(); }

RecordStoreStats RecordStore::Stats() const {
  RecordStoreStats s;
  s.num_records = index_.size();
  s.log_bytes = writer_ ? writer_->size() : 0;
  s.num_log_records = num_log_records_;
  return s;
}

}  // namespace deeplens
