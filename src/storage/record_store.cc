#include "storage/record_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/bytes.h"
#include "common/checksum.h"
#include "common/logging.h"

namespace deeplens {

// Log record framing:
//   u32 crc (over everything after it)
//   u8  kind (0 = put, 1 = tombstone)
//   varint key_len, key bytes
//   varint val_len, val bytes   (puts only)
namespace {
constexpr uint8_t kPut = 0;
constexpr uint8_t kTombstone = 1;
}  // namespace

RecordStore::RecordStore(std::string path) : path_(std::move(path)) {}

RecordStore::~RecordStore() {
  if (writer_) (void)writer_->Flush();
}

Result<std::unique_ptr<RecordStore>> RecordStore::Open(
    const std::string& path) {
  // A temp log left behind by a compaction that crashed before its
  // rename is garbage: the original log it was replacing is still
  // complete, so just discard the partial copy.
  DL_RETURN_NOT_OK(RemoveFileIfExists(path + kCompactSuffix));
  auto store = std::unique_ptr<RecordStore>(new RecordStore(path));
  DL_ASSIGN_OR_RETURN(store->writer_, AppendOnlyFile::Open(path));
  DL_RETURN_NOT_OK(store->Replay());
  return store;
}

Status RecordStore::Replay() {
  DL_ASSIGN_OR_RETURN(uint64_t file_size, FileSize(path_));
  if (file_size == 0) return Status::OK();
  DL_ASSIGN_OR_RETURN(auto data, ReadWholeFile(path_));
  ByteReader reader{Slice(data)};
  uint64_t offset = 0;
  while (!reader.AtEnd()) {
    const uint64_t record_offset = offset;
    auto crc_r = reader.GetU32();
    if (!crc_r.ok()) break;  // torn tail
    auto body_r = reader.GetLengthPrefixed();
    if (!body_r.ok()) break;
    const Slice body = body_r.value();
    if (Crc32c(body) != crc_r.value()) {
      DL_LOG(kWarn) << "record store " << path_
                    << ": CRC mismatch at offset " << record_offset
                    << "; truncating replay";
      break;
    }
    ByteReader body_reader(body);
    DL_ASSIGN_OR_RETURN(uint8_t kind, body_reader.GetU8());
    DL_ASSIGN_OR_RETURN(Slice key, body_reader.GetLengthPrefixed());
    offset = static_cast<uint64_t>(data.size()) -
             static_cast<uint64_t>(reader.remaining());
    if (kind == kPut) {
      Erase(key.ToString());
      index_[key.ToString()] =
          IndexEntry{record_offset, offset - record_offset};
      live_bytes_ += offset - record_offset;
    } else if (kind == kTombstone) {
      Erase(key.ToString());
    } else {
      return Status::Corruption("unknown log record kind");
    }
    ++num_log_records_;
  }
  return Status::OK();
}

void RecordStore::Erase(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  live_bytes_ -= it->second.bytes;
  index_.erase(it);
}

namespace {

// Builds the CRC-framed log bytes for one put record.
void FramePut(const Slice& key, const Slice& value, ByteBuffer* framed) {
  ByteBuffer body;
  body.PutU8(kPut);
  body.PutLengthPrefixed(key);
  body.PutLengthPrefixed(value);
  framed->PutU32(Crc32c(body.AsSlice()));
  framed->PutLengthPrefixed(body.AsSlice());
}

}  // namespace

Status RecordStore::Put(const Slice& key, const Slice& value) {
  if (writer_ == nullptr) {
    return Status::IOError("record store '" + path_ +
                           "': writer unavailable after a failed reopen");
  }
  ByteBuffer framed;
  FramePut(key, value, &framed);
  DL_ASSIGN_OR_RETURN(uint64_t offset, writer_->Append(framed.AsSlice()));
  Erase(key.ToString());
  index_[key.ToString()] =
      IndexEntry{offset, static_cast<uint64_t>(framed.data().size())};
  live_bytes_ += framed.data().size();
  ++num_log_records_;
  return Status::OK();
}

Status RecordStore::Delete(const Slice& key) {
  if (writer_ == nullptr) {
    return Status::IOError("record store '" + path_ +
                           "': writer unavailable after a failed reopen");
  }
  ByteBuffer body;
  body.PutU8(kTombstone);
  body.PutLengthPrefixed(key);
  ByteBuffer framed;
  framed.PutU32(Crc32c(body.AsSlice()));
  framed.PutLengthPrefixed(body.AsSlice());
  DL_RETURN_NOT_OK(writer_->Append(framed.AsSlice()).status());
  Erase(key.ToString());
  ++num_log_records_;
  return Status::OK();
}

Result<std::vector<uint8_t>> RecordStore::ReadValueAt(
    uint64_t offset) const {
  // Reads go through a pread handle; reopen it if the log grew past what
  // the current handle has seen (appends after open).
  if (!reader_ || offset >= reader_valid_up_to_) {
    DL_RETURN_NOT_OK(writer_ ? writer_->Flush() : Status::OK());
    DL_ASSIGN_OR_RETURN(reader_, RandomAccessFile::Open(path_));
    reader_valid_up_to_ = reader_->size();
  }
  // Record header: u32 crc + varint body_len. Read a generous prefix to
  // decode the varint, then the body.
  std::vector<uint8_t> header;
  const size_t header_probe =
      static_cast<size_t>(std::min<uint64_t>(16, reader_->size() - offset));
  DL_RETURN_NOT_OK(reader_->ReadAt(offset, header_probe, &header));
  ByteReader hr{Slice(header)};
  DL_ASSIGN_OR_RETURN(uint32_t crc, hr.GetU32());
  DL_ASSIGN_OR_RETURN(uint64_t body_len, hr.GetVarint());
  const uint64_t body_offset =
      offset + (header_probe - hr.remaining());
  std::vector<uint8_t> body;
  DL_RETURN_NOT_OK(
      reader_->ReadAt(body_offset, static_cast<size_t>(body_len), &body));
  if (Crc32c(Slice(body)) != crc) {
    return Status::Corruption("record CRC mismatch on read");
  }
  ByteReader body_reader((Slice(body)));
  DL_ASSIGN_OR_RETURN(uint8_t kind, body_reader.GetU8());
  if (kind != kPut) return Status::Corruption("expected a put record");
  DL_ASSIGN_OR_RETURN(Slice key, body_reader.GetLengthPrefixed());
  (void)key;
  DL_ASSIGN_OR_RETURN(Slice value, body_reader.GetLengthPrefixed());
  return value.ToBytes();
}

Result<std::vector<uint8_t>> RecordStore::Get(const Slice& key) const {
  auto it = index_.find(key.ToString());
  if (it == index_.end()) {
    return Status::NotFound("key not in record store");
  }
  return ReadValueAt(it->second.offset);
}

bool RecordStore::Contains(const Slice& key) const {
  return index_.find(key.ToString()) != index_.end();
}

Status RecordStore::Scan(
    const Slice& lo, const Slice& hi,
    const std::function<bool(const Slice&, const Slice&)>& visitor) const {
  auto it = index_.lower_bound(lo.ToString());
  const std::string hi_str = hi.ToString();
  for (; it != index_.end(); ++it) {
    if (Slice(it->first).Compare(Slice(hi_str)) > 0) break;
    DL_ASSIGN_OR_RETURN(auto value, ReadValueAt(it->second.offset));
    if (!visitor(Slice(it->first), Slice(value))) break;
  }
  return Status::OK();
}

Status RecordStore::ScanAll(
    const std::function<bool(const Slice&, const Slice&)>& visitor) const {
  for (auto it = index_.begin(); it != index_.end(); ++it) {
    DL_ASSIGN_OR_RETURN(auto value, ReadValueAt(it->second.offset));
    if (!visitor(Slice(it->first), Slice(value))) break;
  }
  return Status::OK();
}

void RecordStore::ForEachKey(
    const std::function<void(const Slice&)>& visitor) const {
  for (const auto& [key, entry] : index_) {
    (void)entry;
    visitor(Slice(key));
  }
}

namespace {

// fsyncs the directory holding `path`, making a just-renamed entry
// durable (rename(2) alone only orders the change in the page cache).
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("open dir '" + dir + "': " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync dir '" + dir + "': " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Status RecordStore::Compact() {
  const std::string tmp_path = path_ + kCompactSuffix;
  DL_RETURN_NOT_OK(RemoveFileIfExists(tmp_path));
  std::map<std::string, IndexEntry> new_index;
  uint64_t new_live_bytes = 0;
  {
    DL_ASSIGN_OR_RETURN(auto tmp, AppendOnlyFile::Open(tmp_path));
    // Stream live records oldest-offset-agnostic, in key order: the old
    // log stays untouched (and readable through reader_) until the whole
    // replacement exists on disk.
    for (const auto& [key, entry] : index_) {
      DL_ASSIGN_OR_RETURN(auto value, ReadValueAt(entry.offset));
      ByteBuffer framed;
      FramePut(Slice(key), Slice(value), &framed);
      DL_ASSIGN_OR_RETURN(uint64_t offset, tmp->Append(framed.AsSlice()));
      new_index[key] =
          IndexEntry{offset, static_cast<uint64_t>(framed.data().size())};
      new_live_bytes += framed.data().size();
    }
    // The rename destroys the only complete copy of the data, so the
    // replacement must be durable — not merely in the page cache —
    // before the commit point, or power loss after the rename could
    // lose both versions.
    DL_RETURN_NOT_OK(tmp->Sync());
  }
  // Point of no return: close our handles on the old log, then swap the
  // files. rename(2) is atomic, so a crash before it leaves the complete
  // old log (plus a temp file Open() discards) and a crash after it
  // leaves the complete new log.
  writer_.reset();
  reader_.reset();
  reader_valid_up_to_ = 0;
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    const Status rename_status = Status::IOError(
        "rename '" + tmp_path + "' -> '" + path_ + "': " +
        std::strerror(errno));
    // Stay usable on the old log rather than wedging the store. If even
    // the reopen fails, writer_ stays null and writes report IOError
    // until a later reopen succeeds; reads (old index, old file) are
    // unaffected.
    auto reopened = AppendOnlyFile::Open(path_);
    if (reopened.ok()) writer_ = std::move(*reopened);
    return rename_status;
  }
  // The file on disk is now the compacted log: swap the index first so
  // reads stay correct even if reopening the writer below fails.
  index_ = std::move(new_index);
  live_bytes_ = new_live_bytes;
  num_log_records_ = index_.size();
  DL_RETURN_NOT_OK(SyncParentDir(path_));
  DL_ASSIGN_OR_RETURN(writer_, AppendOnlyFile::Open(path_));
  return Status::OK();
}

Status RecordStore::Flush() {
  if (writer_ == nullptr) {
    return Status::IOError("record store '" + path_ +
                           "': writer unavailable after a failed reopen");
  }
  return writer_->Flush();
}

RecordStoreStats RecordStore::Stats() const {
  RecordStoreStats s;
  s.num_records = index_.size();
  s.log_bytes = writer_ ? writer_->size() : 0;
  s.live_bytes = live_bytes_;
  s.num_log_records = num_log_records_;
  return s;
}

}  // namespace deeplens
