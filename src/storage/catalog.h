// Persistent catalog of datasets managed by a DeepLens instance: maps a
// dataset name to its on-disk path, layout, and cardinality. The catalog
// is what lets Load("name") abstract the physical format (paper §3.1).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/video_store.h"

namespace deeplens {

/// One catalog entry.
struct DatasetInfo {
  std::string name;
  std::string path;
  VideoFormat format = VideoFormat::kFrameRaw;
  int num_items = 0;
  /// Free-form notes ("traffic camera, 1080p", ...).
  std::string description;
};

/// \brief Name → dataset registry persisted to a single file under the
/// database root directory.
class Catalog {
 public:
  /// Loads (or creates) the catalog file at `<root>/CATALOG`.
  static Result<std::unique_ptr<Catalog>> Open(const std::string& root);

  /// Registers or replaces a dataset entry and persists.
  Status Register(const DatasetInfo& info);

  /// Removes an entry (the underlying files are not touched).
  Status Unregister(const std::string& name);

  Result<DatasetInfo> Lookup(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<DatasetInfo> List() const;

  const std::string& root() const { return root_; }

 private:
  explicit Catalog(std::string root) : root_(std::move(root)) {}

  Status Persist() const;
  Status LoadFromDisk();
  std::string FilePath() const;

  std::string root_;
  std::map<std::string, DatasetInfo> entries_;
};

}  // namespace deeplens
