// FrameFile layout: each frame is one record in a RecordStore, keyed by
// big-endian frame number so the store's ordered scan is frame order.
// Frames are stored raw or intra-coded (LJPG). Supports exact temporal
// filter push-down (paper §3.1 "Frame File").
#pragma once

#include <memory>
#include <string>

#include "storage/record_store.h"
#include "storage/video_store.h"

namespace deeplens {

class FrameFileWriter : public VideoWriter {
 public:
  static Result<std::unique_ptr<FrameFileWriter>> Create(
      const std::string& path, const VideoStoreOptions& options);

  Status AddFrame(const Image& frame) override;
  Status Finish() override;
  int frames_written() const override { return next_frame_; }

 private:
  FrameFileWriter(std::string path, VideoStoreOptions options)
      : path_(std::move(path)), options_(options) {}

  std::string path_;
  VideoStoreOptions options_;
  std::unique_ptr<RecordStore> store_;
  internal::VideoMeta meta_;
  int next_frame_ = 0;
};

class FrameFileReader : public VideoReader {
 public:
  static Result<std::unique_ptr<FrameFileReader>> Open(
      const std::string& path, const internal::VideoMeta& meta);

  int num_frames() const override { return meta_.num_frames; }
  VideoFormat format() const override { return meta_.options.format; }
  uint64_t storage_bytes() const override;
  Result<Image> ReadFrame(int frameno) override;
  Status ReadRange(int lo, int hi,
                   const std::function<bool(int, const Image&)>& visitor)
      override;
  uint64_t frames_decoded() const override { return frames_decoded_; }

 private:
  FrameFileReader(std::string path, internal::VideoMeta meta)
      : path_(std::move(path)), meta_(meta) {}

  Result<Image> DecodeRecord(const Slice& value) const;

  std::string path_;
  internal::VideoMeta meta_;
  std::unique_ptr<RecordStore> store_;
  uint64_t frames_decoded_ = 0;
};

}  // namespace deeplens
