#include "storage/encoded_file.h"

#include <algorithm>

#include "common/checksum.h"
#include "storage/file_io.h"

namespace deeplens {

Result<std::unique_ptr<EncodedFileWriter>> EncodedFileWriter::Create(
    const std::string& path, const VideoStoreOptions& options) {
  if (options.format != VideoFormat::kEncoded) {
    return Status::InvalidArgument("EncodedFileWriter: wrong format");
  }
  DL_RETURN_NOT_OK(RemoveFileIfExists(path));
  auto writer = std::unique_ptr<EncodedFileWriter>(
      new EncodedFileWriter(path, options));
  writer->meta_.options = options;
  return writer;
}

Status EncodedFileWriter::AddFrame(const Image& frame) {
  if (encoder_.num_frames() == 0) {
    meta_.width = frame.width();
    meta_.height = frame.height();
    meta_.channels = frame.channels();
  }
  return encoder_.AddFrame(frame);
}

Status EncodedFileWriter::Finish() {
  meta_.num_frames = encoder_.num_frames();
  const std::vector<uint8_t> stream = encoder_.Finish();
  DL_RETURN_NOT_OK(WriteWholeFile(path_, Slice(stream)));
  return internal::WriteVideoMeta(path_, meta_);
}

Result<std::unique_ptr<EncodedFileReader>> EncodedFileReader::Open(
    const std::string& path, const internal::VideoMeta& meta,
    SegmentCache* segment_cache) {
  auto reader = std::unique_ptr<EncodedFileReader>(
      new EncodedFileReader(path, meta));
  DL_ASSIGN_OR_RETURN(reader->stream_, ReadWholeFile(path));
  if (segment_cache != nullptr && segment_cache->enabled()) {
    reader->segment_cache_ = segment_cache;
    // Identity includes size + CRC of the encoded bytes so a rewritten
    // file at the same path can never serve stale cached frames.
    reader->stream_id_ = SegmentCache::StreamId(
        path, reader->stream_.size(),
        Crc32c(reader->stream_.data(), reader->stream_.size()));
  }
  return reader;
}

int EncodedFileReader::GopSize() const {
  return std::max(1, meta_.options.gop_size);
}

Result<std::vector<std::shared_ptr<const SegmentCache::Segment>>>
EncodedFileReader::CachedSegments(int lo_gop_start, int hi_gop_start) {
  const int gop = GopSize();
  std::vector<std::shared_ptr<const SegmentCache::Segment>> segments;
  segments.reserve(static_cast<size_t>((hi_gop_start - lo_gop_start) / gop) +
                   1);
  bool all_resident = true;
  for (int start = lo_gop_start; start <= hi_gop_start; start += gop) {
    segments.push_back(segment_cache_->Get(stream_id_, start));
    if (segments.back() == nullptr) all_resident = false;
  }
  if (all_resident) return segments;
  // At least one GOP is cold. The codec is strictly sequential with no
  // byte-level GOP index, so decode the prefix once and memoize every
  // completed GOP on the way — after this, reads anywhere in [0, hi]
  // are lookup-bound.
  codec::VideoDecoder decoder{Slice(stream_)};
  DL_RETURN_NOT_OK(decoder.Init());
  SegmentCache::Segment current;
  current.reserve(static_cast<size_t>(gop));
  const int hi_frame = std::min(meta_.num_frames - 1, hi_gop_start + gop - 1);
  for (int f = 0; f <= hi_frame; ++f) {
    DL_ASSIGN_OR_RETURN(Image img, decoder.NextFrame());
    ++frames_decoded_;
    current.push_back(std::move(img));
    if ((f + 1) % gop == 0 || f == meta_.num_frames - 1) {
      const int start = f + 1 - static_cast<int>(current.size());
      auto segment = std::make_shared<const SegmentCache::Segment>(
          std::move(current));
      segment_cache_->Put(stream_id_, start, segment);
      if (start >= lo_gop_start && start <= hi_gop_start) {
        segments[static_cast<size_t>((start - lo_gop_start) / gop)] =
            std::move(segment);
      }
      current.clear();
    }
  }
  return segments;
}

Result<Image> EncodedFileReader::ReadFrame(int frameno) {
  if (frameno < 0 || frameno >= meta_.num_frames) {
    return Status::OutOfRange("frame number out of range");
  }
  if (segment_cache_ != nullptr) {
    const int gop_start = (frameno / GopSize()) * GopSize();
    DL_ASSIGN_OR_RETURN(auto segments,
                        CachedSegments(gop_start, gop_start));
    return (*segments[0])[static_cast<size_t>(frameno - gop_start)];
  }
  // Sequential codec: every random read decodes from the stream start.
  codec::VideoDecoder decoder{Slice(stream_)};
  DL_RETURN_NOT_OK(decoder.Init());
  DL_ASSIGN_OR_RETURN(Image img, decoder.SeekDecode(frameno));
  frames_decoded_ += static_cast<uint64_t>(decoder.frames_decoded());
  return img;
}

Status EncodedFileReader::ReadRange(
    int lo, int hi,
    const std::function<bool(int, const Image&)>& visitor) {
  lo = std::max(lo, 0);
  hi = std::min(hi, meta_.num_frames - 1);
  if (lo > hi) return Status::OK();
  if (segment_cache_ != nullptr) {
    const int gop = GopSize();
    const int lo_start = (lo / gop) * gop;
    const int hi_start = (hi / gop) * gop;
    DL_ASSIGN_OR_RETURN(auto segments, CachedSegments(lo_start, hi_start));
    for (int f = lo; f <= hi; ++f) {
      const auto& segment = segments[static_cast<size_t>((f - lo_start) / gop)];
      if (!visitor(f, (*segment)[static_cast<size_t>(f % gop)])) break;
    }
    return Status::OK();
  }
  codec::VideoDecoder decoder{Slice(stream_)};
  DL_RETURN_NOT_OK(decoder.Init());
  // The prefix [0, lo) must be decoded and discarded — this is the cost
  // Figure 3 charges the encoded layout for temporal predicates.
  for (int f = 0; f <= hi; ++f) {
    DL_ASSIGN_OR_RETURN(Image img, decoder.NextFrame());
    ++frames_decoded_;
    if (f >= lo) {
      if (!visitor(f, img)) break;
    }
  }
  return Status::OK();
}

}  // namespace deeplens
