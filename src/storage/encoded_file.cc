#include "storage/encoded_file.h"

#include "storage/file_io.h"

namespace deeplens {

Result<std::unique_ptr<EncodedFileWriter>> EncodedFileWriter::Create(
    const std::string& path, const VideoStoreOptions& options) {
  if (options.format != VideoFormat::kEncoded) {
    return Status::InvalidArgument("EncodedFileWriter: wrong format");
  }
  DL_RETURN_NOT_OK(RemoveFileIfExists(path));
  auto writer = std::unique_ptr<EncodedFileWriter>(
      new EncodedFileWriter(path, options));
  writer->meta_.options = options;
  return writer;
}

Status EncodedFileWriter::AddFrame(const Image& frame) {
  if (encoder_.num_frames() == 0) {
    meta_.width = frame.width();
    meta_.height = frame.height();
    meta_.channels = frame.channels();
  }
  return encoder_.AddFrame(frame);
}

Status EncodedFileWriter::Finish() {
  meta_.num_frames = encoder_.num_frames();
  const std::vector<uint8_t> stream = encoder_.Finish();
  DL_RETURN_NOT_OK(WriteWholeFile(path_, Slice(stream)));
  return internal::WriteVideoMeta(path_, meta_);
}

Result<std::unique_ptr<EncodedFileReader>> EncodedFileReader::Open(
    const std::string& path, const internal::VideoMeta& meta) {
  auto reader = std::unique_ptr<EncodedFileReader>(
      new EncodedFileReader(path, meta));
  DL_ASSIGN_OR_RETURN(reader->stream_, ReadWholeFile(path));
  return reader;
}

Result<Image> EncodedFileReader::ReadFrame(int frameno) {
  if (frameno < 0 || frameno >= meta_.num_frames) {
    return Status::OutOfRange("frame number out of range");
  }
  // Sequential codec: every random read decodes from the stream start.
  codec::VideoDecoder decoder{Slice(stream_)};
  DL_RETURN_NOT_OK(decoder.Init());
  DL_ASSIGN_OR_RETURN(Image img, decoder.SeekDecode(frameno));
  frames_decoded_ += static_cast<uint64_t>(decoder.frames_decoded());
  return img;
}

Status EncodedFileReader::ReadRange(
    int lo, int hi,
    const std::function<bool(int, const Image&)>& visitor) {
  lo = std::max(lo, 0);
  hi = std::min(hi, meta_.num_frames - 1);
  if (lo > hi) return Status::OK();
  codec::VideoDecoder decoder{Slice(stream_)};
  DL_RETURN_NOT_OK(decoder.Init());
  // The prefix [0, lo) must be decoded and discarded — this is the cost
  // Figure 3 charges the encoded layout for temporal predicates.
  for (int f = 0; f <= hi; ++f) {
    DL_ASSIGN_OR_RETURN(Image img, decoder.NextFrame());
    ++frames_decoded_;
    if (f >= lo) {
      if (!visitor(f, img)) break;
    }
  }
  return Status::OK();
}

}  // namespace deeplens
