#include "storage/encoded_file.h"

#include <algorithm>

#include "common/checksum.h"
#include "storage/file_io.h"

namespace deeplens {

Result<std::unique_ptr<EncodedFileWriter>> EncodedFileWriter::Create(
    const std::string& path, const VideoStoreOptions& options) {
  if (options.format != VideoFormat::kEncoded) {
    return Status::InvalidArgument("EncodedFileWriter: wrong format");
  }
  DL_RETURN_NOT_OK(RemoveFileIfExists(path));
  auto writer = std::unique_ptr<EncodedFileWriter>(
      new EncodedFileWriter(path, options));
  writer->meta_.options = options;
  return writer;
}

Status EncodedFileWriter::AddFrame(const Image& frame) {
  if (encoder_.num_frames() == 0) {
    meta_.width = frame.width();
    meta_.height = frame.height();
    meta_.channels = frame.channels();
  }
  return encoder_.AddFrame(frame);
}

Status EncodedFileWriter::Finish() {
  meta_.num_frames = encoder_.num_frames();
  const std::vector<uint8_t> stream = encoder_.Finish();
  DL_RETURN_NOT_OK(WriteWholeFile(path_, Slice(stream)));
  return internal::WriteVideoMeta(path_, meta_);
}

Result<std::unique_ptr<EncodedFileReader>> EncodedFileReader::Open(
    const std::string& path, const internal::VideoMeta& meta,
    SegmentCache* segment_cache) {
  auto reader = std::unique_ptr<EncodedFileReader>(
      new EncodedFileReader(path, meta));
  DL_ASSIGN_OR_RETURN(reader->stream_, ReadWholeFile(path));
  if (segment_cache != nullptr && segment_cache->enabled()) {
    reader->segment_cache_ = segment_cache;
    // Identity includes size + CRC of the encoded bytes so a rewritten
    // file at the same path can never serve stale cached frames.
    reader->stream_id_ = SegmentCache::StreamId(
        path, reader->stream_.size(),
        Crc32c(reader->stream_.data(), reader->stream_.size()));
  }
  return reader;
}

int EncodedFileReader::GopSize() const {
  return std::max(1, meta_.options.gop_size);
}

Result<std::vector<std::shared_ptr<const SegmentCache::Segment>>>
EncodedFileReader::CachedSegments(int lo_gop_start, int hi_gop_start) {
  const int gop = GopSize();
  std::vector<std::shared_ptr<const SegmentCache::Segment>> segments;
  segments.reserve(static_cast<size_t>((hi_gop_start - lo_gop_start) / gop) +
                   1);
  bool all_resident = true;
  // Which requested GOPs the *shared cache* holds (as opposed to being
  // fallback-served or decoded below) — drives the pin decision without
  // re-probing the cache on the warm path.
  std::vector<char> in_cache;
  in_cache.reserve(segments.capacity());
  for (int start = lo_gop_start; start <= hi_gop_start; start += gop) {
    auto segment = segment_cache_->Get(stream_id_, start);
    in_cache.push_back(segment != nullptr ? 1 : 0);
    if (segment == nullptr && start == fallback_start_) {
      // The shared cache refused this GOP (oversized for a shard slice)
      // but this reader decoded it last time — serve the private copy
      // instead of re-decoding the whole prefix.
      segment = fallback_segment_;
    }
    segments.push_back(std::move(segment));
    if (segments.back() == nullptr) all_resident = false;
  }
  if (!all_resident) {
    // At least one GOP is cold. The codec is strictly sequential with no
    // byte-level GOP index, so decode the prefix once and memoize every
    // completed GOP on the way — after this, reads anywhere in [0, hi]
    // are lookup-bound.
    codec::VideoDecoder decoder{Slice(stream_)};
    DL_RETURN_NOT_OK(decoder.Init());
    SegmentCache::Segment current;
    current.reserve(static_cast<size_t>(gop));
    const int hi_frame =
        std::min(meta_.num_frames - 1, hi_gop_start + gop - 1);
    for (int f = 0; f <= hi_frame; ++f) {
      DL_ASSIGN_OR_RETURN(Image img, decoder.NextFrame());
      ++frames_decoded_;
      current.push_back(std::move(img));
      if ((f + 1) % gop == 0 || f == meta_.num_frames - 1) {
        const int start = f + 1 - static_cast<int>(current.size());
        const size_t idx = static_cast<size_t>((start - lo_gop_start) / gop);
        const bool in_range = start >= lo_gop_start && start <= hi_gop_start;
        // Re-inserting a resident GOP buys nothing and churns the LRU
        // (erase + push per decode); only the cold ones are admitted.
        const bool resident = in_range
                                  ? segments[idx] != nullptr
                                  : segment_cache_->Contains(stream_id_, start);
        auto segment = std::make_shared<const SegmentCache::Segment>(
            std::move(current));
        if (!resident) {
          const bool admitted =
              segment_cache_->Put(stream_id_, start, segment);
          if (in_range) in_cache[idx] = admitted ? 1 : 0;
        }
        if (in_range && segments[idx] == nullptr) {
          segments[idx] = std::move(segment);
        }
        current.clear();
      }
    }
  }
  // Pin a private copy of the hi-most requested GOP the shared cache
  // does not hold (oversized for a shard slice, or fallback-served this
  // call): that is the case where the next read of that GOP would
  // otherwise re-decode the whole prefix — and with one oversized GOP
  // in a repeated range read, pinning it makes the next identical call
  // fully resident. When the cache holds every requested GOP, an
  // existing pin of a *different* GOP is left alone — a read of a
  // normal GOP must not evict the private copy of an oversized one
  // (alternating reads would then re-decode the full prefix every
  // time) — and the pin is dropped only once the cache actually holds
  // the pinned GOP, since keeping it would just duplicate
  // budget-tracked memory in every open reader.
  int pin_start = -1;
  size_t pin_idx = 0;
  for (size_t i = in_cache.size(); i-- > 0;) {
    if (!in_cache[i]) {
      pin_idx = i;
      pin_start = lo_gop_start + static_cast<int>(i) * gop;
      break;
    }
  }
  if (pin_start >= 0) {
    fallback_segment_ = segments[pin_idx];
    fallback_start_ = pin_start;
  } else if (fallback_start_ >= 0 &&
             segment_cache_->Contains(stream_id_, fallback_start_)) {
    // The pinned GOP (outside this request) finally made it into the
    // shared cache; drop the duplicate private copy.
    fallback_segment_.reset();
    fallback_start_ = -1;
  }
  return segments;
}

Result<Image> EncodedFileReader::ReadFrame(int frameno) {
  if (frameno < 0 || frameno >= meta_.num_frames) {
    return Status::OutOfRange("frame number out of range");
  }
  if (segment_cache_ != nullptr) {
    const int gop_start = (frameno / GopSize()) * GopSize();
    DL_ASSIGN_OR_RETURN(auto segments,
                        CachedSegments(gop_start, gop_start));
    return (*segments[0])[static_cast<size_t>(frameno - gop_start)];
  }
  // Sequential codec: every random read decodes from the stream start.
  codec::VideoDecoder decoder{Slice(stream_)};
  DL_RETURN_NOT_OK(decoder.Init());
  DL_ASSIGN_OR_RETURN(Image img, decoder.SeekDecode(frameno));
  frames_decoded_ += static_cast<uint64_t>(decoder.frames_decoded());
  return img;
}

Status EncodedFileReader::ReadRange(
    int lo, int hi,
    const std::function<bool(int, const Image&)>& visitor) {
  lo = std::max(lo, 0);
  hi = std::min(hi, meta_.num_frames - 1);
  if (lo > hi) return Status::OK();
  if (segment_cache_ != nullptr) {
    const int gop = GopSize();
    const int lo_start = (lo / gop) * gop;
    const int hi_start = (hi / gop) * gop;
    DL_ASSIGN_OR_RETURN(auto segments, CachedSegments(lo_start, hi_start));
    for (int f = lo; f <= hi; ++f) {
      const auto& segment = segments[static_cast<size_t>((f - lo_start) / gop)];
      if (!visitor(f, (*segment)[static_cast<size_t>(f % gop)])) break;
    }
    return Status::OK();
  }
  codec::VideoDecoder decoder{Slice(stream_)};
  DL_RETURN_NOT_OK(decoder.Init());
  // The prefix [0, lo) must be decoded and discarded — this is the cost
  // Figure 3 charges the encoded layout for temporal predicates.
  for (int f = 0; f <= hi; ++f) {
    DL_ASSIGN_OR_RETURN(Image img, decoder.NextFrame());
    ++frames_decoded_;
    if (f >= lo) {
      if (!visitor(f, img)) break;
    }
  }
  return Status::OK();
}

}  // namespace deeplens
