#include "storage/video_store.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/checksum.h"
#include "storage/encoded_file.h"
#include "storage/frame_file.h"
#include "storage/segmented_file.h"

namespace deeplens {

const char* VideoFormatName(VideoFormat format) {
  switch (format) {
    case VideoFormat::kFrameRaw:
      return "frame-raw";
    case VideoFormat::kFrameLjpg:
      return "frame-ljpg";
    case VideoFormat::kEncoded:
      return "encoded";
    case VideoFormat::kSegmented:
      return "segmented";
  }
  return "?";
}

namespace internal {

namespace {
constexpr uint32_t kMetaMagic = 0xD1AE7A01;
std::string MetaPath(const std::string& path) { return path + ".meta"; }
}  // namespace

Status WriteVideoMeta(const std::string& path, const VideoMeta& meta) {
  ByteBuffer buf;
  buf.PutU32(kMetaMagic);
  buf.PutU8(static_cast<uint8_t>(meta.options.format));
  buf.PutU8(static_cast<uint8_t>(meta.options.quality));
  buf.PutU32(static_cast<uint32_t>(meta.options.gop_size));
  buf.PutU32(static_cast<uint32_t>(meta.options.clip_frames));
  buf.PutU32(static_cast<uint32_t>(meta.num_frames));
  buf.PutU32(static_cast<uint32_t>(meta.width));
  buf.PutU32(static_cast<uint32_t>(meta.height));
  buf.PutU32(static_cast<uint32_t>(meta.channels));
  buf.PutU32(Crc32c(Slice(buf.data().data(), buf.size())));
  return WriteWholeFile(MetaPath(path), buf.AsSlice());
}

Result<VideoMeta> ReadVideoMeta(const std::string& path) {
  DL_ASSIGN_OR_RETURN(auto data, ReadWholeFile(MetaPath(path)));
  if (data.size() < 4) return Status::Corruption("video meta too small");
  const uint32_t stored_crc =
      static_cast<uint32_t>(data[data.size() - 4]) |
      (static_cast<uint32_t>(data[data.size() - 3]) << 8) |
      (static_cast<uint32_t>(data[data.size() - 2]) << 16) |
      (static_cast<uint32_t>(data[data.size() - 1]) << 24);
  if (Crc32c(data.data(), data.size() - 4) != stored_crc) {
    return Status::Corruption("video meta CRC mismatch");
  }
  ByteReader reader(Slice(data.data(), data.size() - 4));
  DL_ASSIGN_OR_RETURN(uint32_t magic, reader.GetU32());
  if (magic != kMetaMagic) return Status::Corruption("bad video meta magic");
  VideoMeta meta;
  DL_ASSIGN_OR_RETURN(uint8_t format, reader.GetU8());
  DL_ASSIGN_OR_RETURN(uint8_t quality, reader.GetU8());
  if (format > 3 || quality > 2) {
    return Status::Corruption("bad video meta enum value");
  }
  meta.options.format = static_cast<VideoFormat>(format);
  meta.options.quality = static_cast<codec::Quality>(quality);
  DL_ASSIGN_OR_RETURN(uint32_t gop, reader.GetU32());
  DL_ASSIGN_OR_RETURN(uint32_t clip, reader.GetU32());
  DL_ASSIGN_OR_RETURN(uint32_t nframes, reader.GetU32());
  DL_ASSIGN_OR_RETURN(uint32_t w, reader.GetU32());
  DL_ASSIGN_OR_RETURN(uint32_t h, reader.GetU32());
  DL_ASSIGN_OR_RETURN(uint32_t c, reader.GetU32());
  meta.options.gop_size = static_cast<int>(gop);
  meta.options.clip_frames = static_cast<int>(clip);
  meta.num_frames = static_cast<int>(nframes);
  meta.width = static_cast<int>(w);
  meta.height = static_cast<int>(h);
  meta.channels = static_cast<int>(c);
  return meta;
}

}  // namespace internal

Result<std::unique_ptr<VideoWriter>> CreateVideoWriter(
    const std::string& path, const VideoStoreOptions& options) {
  switch (options.format) {
    case VideoFormat::kFrameRaw:
    case VideoFormat::kFrameLjpg: {
      DL_ASSIGN_OR_RETURN(auto writer,
                          FrameFileWriter::Create(path, options));
      return std::unique_ptr<VideoWriter>(std::move(writer));
    }
    case VideoFormat::kEncoded: {
      DL_ASSIGN_OR_RETURN(auto writer,
                          EncodedFileWriter::Create(path, options));
      return std::unique_ptr<VideoWriter>(std::move(writer));
    }
    case VideoFormat::kSegmented: {
      DL_ASSIGN_OR_RETURN(auto writer,
                          SegmentedFileWriter::Create(path, options));
      return std::unique_ptr<VideoWriter>(std::move(writer));
    }
  }
  return Status::InvalidArgument("unknown video format");
}

Result<std::unique_ptr<VideoReader>> OpenVideo(const std::string& path,
                                               SegmentCache* segment_cache) {
  DL_ASSIGN_OR_RETURN(internal::VideoMeta meta,
                      internal::ReadVideoMeta(path));
  switch (meta.options.format) {
    case VideoFormat::kFrameRaw:
    case VideoFormat::kFrameLjpg: {
      DL_ASSIGN_OR_RETURN(auto reader, FrameFileReader::Open(path, meta));
      return std::unique_ptr<VideoReader>(std::move(reader));
    }
    case VideoFormat::kEncoded: {
      DL_ASSIGN_OR_RETURN(
          auto reader, EncodedFileReader::Open(path, meta, segment_cache));
      return std::unique_ptr<VideoReader>(std::move(reader));
    }
    case VideoFormat::kSegmented: {
      DL_ASSIGN_OR_RETURN(
          auto reader, SegmentedFileReader::Open(path, meta, segment_cache));
      return std::unique_ptr<VideoReader>(std::move(reader));
    }
  }
  return Status::Corruption("unknown stored video format");
}

}  // namespace deeplens
