// SegmentedFile layout: the video is cut into fixed-length clips; each
// clip is an independent DLV1 stream stored as a record keyed by its start
// frame. Temporal predicates seek to the covering clip and decode only
// that clip from its head — the hybrid of paper §3.1 ("Segmented File").
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/segment_cache.h"
#include "storage/record_store.h"
#include "storage/video_store.h"

namespace deeplens {

class SegmentedFileWriter : public VideoWriter {
 public:
  static Result<std::unique_ptr<SegmentedFileWriter>> Create(
      const std::string& path, const VideoStoreOptions& options);

  Status AddFrame(const Image& frame) override;
  Status Finish() override;
  int frames_written() const override { return next_frame_; }

 private:
  SegmentedFileWriter(std::string path, VideoStoreOptions options)
      : path_(std::move(path)), options_(options) {}

  Status FlushClip();

  std::string path_;
  VideoStoreOptions options_;
  std::unique_ptr<RecordStore> store_;
  internal::VideoMeta meta_;
  std::vector<Image> pending_clip_;
  int next_frame_ = 0;
};

class SegmentedFileReader : public VideoReader {
 public:
  /// `segment_cache` (optional) memoizes whole decoded clips, keyed by
  /// the clip record's bytes (size + CRC), so repeated reads of a clip
  /// decode it once.
  static Result<std::unique_ptr<SegmentedFileReader>> Open(
      const std::string& path, const internal::VideoMeta& meta,
      SegmentCache* segment_cache = nullptr);

  int num_frames() const override { return meta_.num_frames; }
  VideoFormat format() const override { return VideoFormat::kSegmented; }
  uint64_t storage_bytes() const override;
  Result<Image> ReadFrame(int frameno) override;
  Status ReadRange(int lo, int hi,
                   const std::function<bool(int, const Image&)>& visitor)
      override;
  uint64_t frames_decoded() const override { return frames_decoded_; }

 private:
  SegmentedFileReader(std::string path, internal::VideoMeta meta)
      : path_(std::move(path)), meta_(meta) {}

  /// Fetches the clip starting at `clip_start` decoded in full, via the
  /// cache when attached (decoding and memoizing on a miss).
  Result<std::shared_ptr<const SegmentCache::Segment>> CachedClip(
      int clip_start);

  std::string path_;
  internal::VideoMeta meta_;
  std::unique_ptr<RecordStore> store_;
  uint64_t frames_decoded_ = 0;
  SegmentCache* segment_cache_ = nullptr;
  // Clip identity (record size + CRC) computed once per clip per reader,
  // so warm hits don't re-fetch and re-hash the compressed record.
  // Readers are single-threaded (like frames_decoded_), so a plain map
  // suffices.
  std::map<int, std::string> clip_stream_ids_;
};

}  // namespace deeplens
