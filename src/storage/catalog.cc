#include "storage/catalog.h"

#include "common/bytes.h"
#include "common/checksum.h"
#include "storage/file_io.h"

namespace deeplens {

std::string Catalog::FilePath() const { return root_ + "/CATALOG"; }

Result<std::unique_ptr<Catalog>> Catalog::Open(const std::string& root) {
  DL_RETURN_NOT_OK(CreateDirs(root));
  auto catalog = std::unique_ptr<Catalog>(new Catalog(root));
  if (FileExists(catalog->FilePath())) {
    DL_RETURN_NOT_OK(catalog->LoadFromDisk());
  }
  return catalog;
}

Status Catalog::Register(const DatasetInfo& info) {
  if (info.name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  entries_[info.name] = info;
  return Persist();
}

Status Catalog::Unregister(const std::string& name) {
  entries_.erase(name);
  return Persist();
}

Result<DatasetInfo> Catalog::Lookup(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("dataset '" + name + "' not in catalog");
  }
  return it->second;
}

bool Catalog::Contains(const std::string& name) const {
  return entries_.find(name) != entries_.end();
}

std::vector<DatasetInfo> Catalog::List() const {
  std::vector<DatasetInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, info] : entries_) out.push_back(info);
  return out;
}

Status Catalog::Persist() const {
  ByteBuffer buf;
  buf.PutVarint(entries_.size());
  for (const auto& [name, info] : entries_) {
    buf.PutLengthPrefixed(Slice(name));
    buf.PutLengthPrefixed(Slice(info.path));
    buf.PutU8(static_cast<uint8_t>(info.format));
    buf.PutU32(static_cast<uint32_t>(info.num_items));
    buf.PutLengthPrefixed(Slice(info.description));
  }
  buf.PutU32(Crc32c(Slice(buf.data().data(), buf.size())));
  return WriteWholeFile(FilePath(), buf.AsSlice());
}

Status Catalog::LoadFromDisk() {
  DL_ASSIGN_OR_RETURN(auto data, ReadWholeFile(FilePath()));
  if (data.size() < 4) return Status::Corruption("catalog file too small");
  const size_t body = data.size() - 4;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(data[body + i]) << (8 * i);
  }
  if (Crc32c(data.data(), body) != stored_crc) {
    return Status::Corruption("catalog CRC mismatch");
  }
  ByteReader reader(Slice(data.data(), body));
  DL_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  entries_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    DatasetInfo info;
    DL_ASSIGN_OR_RETURN(Slice name, reader.GetLengthPrefixed());
    DL_ASSIGN_OR_RETURN(Slice path, reader.GetLengthPrefixed());
    DL_ASSIGN_OR_RETURN(uint8_t format, reader.GetU8());
    DL_ASSIGN_OR_RETURN(uint32_t num_items, reader.GetU32());
    DL_ASSIGN_OR_RETURN(Slice description, reader.GetLengthPrefixed());
    if (format > 3) return Status::Corruption("catalog: bad format byte");
    info.name = name.ToString();
    info.path = path.ToString();
    info.format = static_cast<VideoFormat>(format);
    info.num_items = static_cast<int>(num_items);
    info.description = description.ToString();
    entries_[info.name] = info;
  }
  return Status::OK();
}

}  // namespace deeplens
