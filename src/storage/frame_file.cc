#include "storage/frame_file.h"

#include "codec/image_codec.h"
#include "common/bytes.h"

namespace deeplens {

Result<std::unique_ptr<FrameFileWriter>> FrameFileWriter::Create(
    const std::string& path, const VideoStoreOptions& options) {
  if (options.format != VideoFormat::kFrameRaw &&
      options.format != VideoFormat::kFrameLjpg) {
    return Status::InvalidArgument("FrameFileWriter: wrong format");
  }
  DL_RETURN_NOT_OK(RemoveFileIfExists(path));
  auto writer = std::unique_ptr<FrameFileWriter>(
      new FrameFileWriter(path, options));
  DL_ASSIGN_OR_RETURN(writer->store_, RecordStore::Open(path));
  writer->meta_.options = options;
  return writer;
}

Status FrameFileWriter::AddFrame(const Image& frame) {
  if (frame.empty()) return Status::InvalidArgument("empty frame");
  if (next_frame_ == 0) {
    meta_.width = frame.width();
    meta_.height = frame.height();
    meta_.channels = frame.channels();
  }
  const std::string key = EncodeKeyU64(static_cast<uint64_t>(next_frame_));
  std::vector<uint8_t> value =
      options_.format == VideoFormat::kFrameRaw
          ? codec::SerializeRawImage(frame)
          : codec::EncodeImage(frame, options_.quality);
  DL_RETURN_NOT_OK(store_->Put(Slice(key), Slice(value)));
  ++next_frame_;
  return Status::OK();
}

Status FrameFileWriter::Finish() {
  meta_.num_frames = next_frame_;
  DL_RETURN_NOT_OK(store_->Flush());
  return internal::WriteVideoMeta(path_, meta_);
}

Result<std::unique_ptr<FrameFileReader>> FrameFileReader::Open(
    const std::string& path, const internal::VideoMeta& meta) {
  auto reader = std::unique_ptr<FrameFileReader>(
      new FrameFileReader(path, meta));
  DL_ASSIGN_OR_RETURN(reader->store_, RecordStore::Open(path));
  return reader;
}

uint64_t FrameFileReader::storage_bytes() const {
  return store_->Stats().log_bytes;
}

Result<Image> FrameFileReader::DecodeRecord(const Slice& value) const {
  if (meta_.options.format == VideoFormat::kFrameRaw) {
    return codec::DeserializeRawImage(value);
  }
  return codec::DecodeImage(value);
}

Result<Image> FrameFileReader::ReadFrame(int frameno) {
  if (frameno < 0 || frameno >= meta_.num_frames) {
    return Status::OutOfRange("frame number out of range");
  }
  const std::string key = EncodeKeyU64(static_cast<uint64_t>(frameno));
  DL_ASSIGN_OR_RETURN(auto value, store_->Get(Slice(key)));
  ++frames_decoded_;
  return DecodeRecord(Slice(value));
}

Status FrameFileReader::ReadRange(
    int lo, int hi,
    const std::function<bool(int, const Image&)>& visitor) {
  lo = std::max(lo, 0);
  hi = std::min(hi, meta_.num_frames - 1);
  if (lo > hi) return Status::OK();
  const std::string lo_key = EncodeKeyU64(static_cast<uint64_t>(lo));
  const std::string hi_key = EncodeKeyU64(static_cast<uint64_t>(hi));
  Status decode_status;
  DL_RETURN_NOT_OK(store_->Scan(
      Slice(lo_key), Slice(hi_key),
      [&](const Slice& key, const Slice& value) {
        auto frameno = DecodeKeyU64(key);
        if (!frameno.ok()) {
          decode_status = frameno.status();
          return false;
        }
        auto img = DecodeRecord(value);
        if (!img.ok()) {
          decode_status = img.status();
          return false;
        }
        ++frames_decoded_;
        return visitor(static_cast<int>(frameno.value()), img.value());
      }));
  return decode_status;
}

}  // namespace deeplens
