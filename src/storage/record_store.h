// Log-structured persistent key-value record store — DeepLens' stand-in
// for the paper's BerkeleyDB. Records are appended to a data log with CRC
// framing; an in-memory ordered index maps keys to log offsets and is
// rebuilt by scanning the log on open (crash-safe: torn tails are ignored).
// Keys are ordered byte strings, so range scans (temporal predicates)
// stream in key order.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/file_io.h"

namespace deeplens {

/// Store statistics used by benchmarks and the storage advisor.
struct RecordStoreStats {
  uint64_t num_records = 0;      // live keys
  uint64_t log_bytes = 0;        // on-disk size including dead versions
  uint64_t live_bytes = 0;       // bytes of the newest version of live keys
  uint64_t num_log_records = 0;  // total log entries scanned/written

  /// Bytes held by overwritten versions, tombstones, and torn tails —
  /// everything Compact() would reclaim.
  uint64_t dead_bytes() const {
    return log_bytes > live_bytes ? log_bytes - live_bytes : 0;
  }
};

/// \brief Ordered persistent KV store. Last write per key wins; deletes
/// are tombstones. Single-writer, not thread-safe (DeepLens queries are
/// single-threaded at the storage layer).
class RecordStore {
 public:
  /// Opens (or creates) the store backing file at `path`, replaying the
  /// log to rebuild the key index.
  static Result<std::unique_ptr<RecordStore>> Open(const std::string& path);

  ~RecordStore();

  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;

  /// Inserts or overwrites `key`.
  Status Put(const Slice& key, const Slice& value);

  /// Reads the latest value for `key`; NotFound if absent or deleted.
  Result<std::vector<uint8_t>> Get(const Slice& key) const;

  bool Contains(const Slice& key) const;

  /// Writes a tombstone. OK even if the key does not exist.
  Status Delete(const Slice& key);

  /// Visits live records with lo <= key <= hi in key order. Return false
  /// from the visitor to stop early.
  Status Scan(const Slice& lo, const Slice& hi,
              const std::function<bool(const Slice& key,
                                       const Slice& value)>& visitor) const;

  /// Visits every live record in key order.
  Status ScanAll(const std::function<bool(const Slice& key,
                                          const Slice& value)>& visitor) const;

  /// Visits every live key in key order without touching the data log —
  /// a pure index walk (used to build resident-key filters cheaply).
  void ForEachKey(const std::function<void(const Slice& key)>& visitor) const;

  /// Rewrites the log so it holds exactly one record — the newest
  /// version — per live key, reclaiming overwritten versions, tombstones,
  /// and torn tails. The new log is written to `path() + ".compact"` and
  /// atomically renamed over the old one, so a crash at any point leaves
  /// either the complete old log or the complete new one, never a mix
  /// (Open() discards a stale temp file from an interrupted run). The
  /// store stays open and usable afterwards.
  Status Compact();

  /// Suffix of the temporary file Compact() writes before the rename.
  static constexpr const char* kCompactSuffix = ".compact";

  /// Flushes buffered writes to the OS.
  Status Flush();

  RecordStoreStats Stats() const;
  const std::string& path() const { return path_; }

 private:
  explicit RecordStore(std::string path);

  Status Replay();
  Result<std::vector<uint8_t>> ReadValueAt(uint64_t offset) const;
  /// Drops `key` from the index, keeping live_bytes_ in step.
  void Erase(const std::string& key);

  /// Latest log record for a live key: where it starts and how many log
  /// bytes it occupies (frame included, for dead-byte accounting).
  struct IndexEntry {
    uint64_t offset = 0;
    uint64_t bytes = 0;
  };

  // In-memory key index: key → latest log record. Deleted keys are
  // removed from the map entirely.
  // (std::map keeps this simple and ordered; the B+Tree in index/ serves
  // query-level indexing where bulk scans matter.)
  std::map<std::string, IndexEntry> index_;

  std::string path_;
  std::unique_ptr<AppendOnlyFile> writer_;
  mutable std::unique_ptr<RandomAccessFile> reader_;
  mutable uint64_t reader_valid_up_to_ = 0;
  uint64_t num_log_records_ = 0;
  uint64_t live_bytes_ = 0;
};

}  // namespace deeplens
