#include "core/planner.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iomanip>
#include <list>
#include <mutex>
#include <numeric>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/env.h"
#include "core/cost_model.h"
#include "exec/aggregates.h"
#include "exec/pipeline.h"
#include "sim/accuracy.h"
#include "storage/columnar/async_loader.h"
#include "storage/columnar/format.h"

namespace deeplens {

const char* AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kFullScan:
      return "full-scan";
    case AccessPath::kHashLookup:
      return "hash-lookup";
    case AccessPath::kBTreeLookup:
      return "b+tree-lookup";
    case AccessPath::kBTreeRange:
      return "b+tree-range";
    case AccessPath::kColumnarScan:
      return "columnar-scan";
  }
  return "?";
}

const char* SimJoinStrategyName(SimJoinStrategy strategy) {
  switch (strategy) {
    case SimJoinStrategy::kNestedLoop:
      return "nested-loop";
    case SimJoinStrategy::kBallTree:
      return "ball-tree";
    case SimJoinStrategy::kAllPairs:
      return "all-pairs";
  }
  return "?";
}

double CascadeThresholdFromEnv() {
  return BoundedDoubleFromEnv("DEEPLENS_CASCADE_THRESHOLD", /*fallback=*/1.0,
                              /*min_value=*/0.0, /*max_value=*/1.0);
}

uint64_t PlanCacheEntriesFromEnv() {
  return PositiveIntFromEnv("DEEPLENS_PLAN_CACHE_ENTRIES", /*fallback=*/128,
                            /*max_value=*/1u << 20, /*allow_zero=*/true);
}

namespace {

// Reports the NN UDFs a predicate will run per evaluated row — and
// whether the inference cache memoizes them — so Explain() stays honest
// about the plan's compute/cache interaction. Called with the *executed*
// predicate, so the UDF list reflects the order they actually run in
// after any conjunct reordering.
PlanExplanation AnnotateUdfUse(PlanExplanation plan,
                               const ExprPtr& predicate) {
  if (!predicate) return plan;
  predicate->CollectUdfUse(&plan.udfs);
  if (plan.udfs.empty()) return plan;
  bool all_cached = true;
  bool all_persistent = true;
  for (const UdfUse& u : plan.udfs) {
    if (u.cached) {
      plan.uses_inference_cache = true;
    } else {
      all_cached = false;
    }
    if (!u.persistent) all_persistent = false;
  }
  const bool mixed = plan.uses_inference_cache && !all_cached;
  std::string list;
  for (const UdfUse& u : plan.udfs) {
    if (!list.empty()) list += ",";
    list += u.model;
    // Per-model markers only when the models disagree; the trailing
    // clause covers the uniform cases.
    if (mixed) list += u.cached ? "(cached)" : "(uncached)";
  }
  // "persistent" is reported only when every UDF's results survive a
  // restart — memory-vs-disk hit provenance for the run itself lives in
  // CacheStats.
  plan.description +=
      "; nn-udfs per row: " + list +
      (!plan.uses_inference_cache
           ? " (uncached)"
           : !all_cached
                 ? " (partially memoized by inference cache)"
                 : all_persistent
                       ? " (memoized by persistent inference cache)"
                       : " (memoized by inference cache)");

  // Cross-query device batching: report the configured batch shape and,
  // once the cost model has profiled real flushes, the expected
  // amortization (overhead + marginal decomposition).
  uint64_t batch_size = 0;
  for (const UdfUse& u : plan.udfs) {
    batch_size = std::max(batch_size, u.device_batch_size);
  }
  if (batch_size > 0) {
    plan.device_batching.enabled = true;
    plan.device_batching.batch_size = batch_size;
    std::string note = "; device batching: <=" + std::to_string(batch_size) +
                       " patches/invocation";
    for (const UdfUse& u : plan.udfs) {
      if (u.device_batch_size == 0) continue;
      auto est = CostModel::Global()->EstimateBatchCost(u.model);
      if (!est) continue;
      plan.device_batching.overhead_ms = est->overhead_ms;
      plan.device_batching.marginal_ms = est->marginal_ms;
      plan.device_batching.mean_items = est->mean_items;
      plan.device_batching.amortized_speedup = est->amortized_speedup;
      std::ostringstream os;
      os << std::fixed << std::setprecision(3) << " (" << u.model << ": ~"
         << est->overhead_ms << " ms/invocation + " << est->marginal_ms
         << " ms/patch" << std::setprecision(1) << ", ~"
         << est->amortized_speedup << "x amortized at " << est->mean_items
         << " patches/batch)";
      note += os.str();
      break;  // one model's figures suffice; the former is shared
    }
    plan.description += note;
  }
  return plan;
}

// --- Conjunct cost estimation -------------------------------------------

// Base per-row costs (ms) for predicate shapes with no UDFs: a direct
// metadata comparison vs a tree-walked opaque conjunct. Only the relative
// magnitudes matter — any NN UDF dwarfs both.
constexpr double kSargableCostMs = 0.0001;
constexpr double kOpaqueCostMs = 0.0005;
// A cascade's proxy evaluation is not free; below this estimated cost the
// full conjunct is cheap enough that skipping it cannot pay.
constexpr double kCascadeMinCostMs = 0.05;

struct RankedConjunct {
  ExprPtr expr;
  size_t source_index = 0;
  uint64_t shape_fp = 0;
  double cost_ms = 0.0;
  double selectivity = 1.0;
  bool sargable = false;
  std::vector<UdfUse> udfs;
};

RankedConjunct EstimateConjunct(const ExprPtr& c, size_t source_index) {
  RankedConjunct rc;
  rc.expr = c;
  rc.source_index = source_index;
  rc.shape_fp = ConjunctShapeFingerprint(c);
  c->CollectUdfUse(&rc.udfs);
  int op = 0;
  size_t slot = 0;
  std::string key;
  MetaValue value;
  rc.sargable = c->AsAttrCmpLit(&op, &slot, &key, &value);
  // Textbook selectivity priors until observation takes over: equality
  // is the most selective, ranges moderate, opaque trees unknown.
  const double fallback_sel =
      rc.sargable ? (op == 0 ? 0.1 : 0.33) : 0.5;
  rc.cost_ms = rc.sargable ? kSargableCostMs : kOpaqueCostMs;
  CostModel* cm = CostModel::Global();
  for (const UdfUse& u : rc.udfs) {
    rc.cost_ms += cm->ExpectedUdfMs(u.model, u.cache_hit_rate);
  }
  rc.selectivity = cm->Selectivity(rc.shape_fp, fallback_sel);
  return rc;
}

// The classic optimal ordering for independent conjuncts: ascending
// cost / (1 - selectivity), i.e. cost per *eliminated* row. A conjunct
// that passes everything (selectivity → 1) eliminates nothing and sorts
// last however cheap it is. Ties (identical shapes, no observations)
// keep source order via stable_sort, so an unprofiled predicate executes
// exactly as written.
double RankKey(const RankedConjunct& rc) {
  return rc.cost_ms / std::max(1e-6, 1.0 - rc.selectivity);
}

// Shape key of the whole predicate: conjunct shape fingerprints in
// written order plus the cascade threshold (the threshold changes what
// the planner would decide, so plans for different thresholds must not
// alias). FNV-1a over the parts.
uint64_t PredicateShapeKey(const std::vector<RankedConjunct>& conjuncts,
                           double threshold) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const RankedConjunct& c : conjuncts) mix(c.shape_fp);
  uint64_t threshold_bits = 0;
  static_assert(sizeof(threshold_bits) == sizeof(threshold));
  std::memcpy(&threshold_bits, &threshold, sizeof(threshold_bits));
  mix(threshold_bits);
  return h;
}

// --- Plan memoization ----------------------------------------------------

// Expected per-row cost of one model at memoization time; a later lookup
// re-derives the live value and discards the plan when it has drifted
// beyond 2x (the break-even points that picked this order no longer
// hold).
struct UdfCostSnapshot {
  std::string model;
  double expected_ms = 0.0;
};

// One memoized planning decision. Everything needed to rebuild the
// executed predicate from a fresh conjunct decomposition — never the
// expression pointers themselves, which belong to the query that planned.
struct PlanCacheEntry {
  std::vector<size_t> order;    // executed order as source indices
  std::vector<char> cascade;    // per executed position: wrap in cascade?
  AccessPath path = AccessPath::kFullScan;
  std::string index_key;
  std::string base_description;
  bool reordered = false;
  std::vector<UdfCostSnapshot> udf_costs;
};

// Process-global LRU of memoized plans keyed by (view version, predicate
// shape). View versions are never reused (core/database.cc), so stale
// entries can never match; they age out of the LRU instead.
class PlanCache {
 public:
  static PlanCache* Global() {
    // Leaky singleton: queries may plan during static destruction of
    // test fixtures; a destructed cache would be UB, a leaked one is not.
    static PlanCache* cache = new PlanCache();
    return cache;
  }

  bool Lookup(uint64_t version, uint64_t shape, PlanCacheEntry* out) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(Key{version, shape});
    if (it == entries_.end()) return false;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    *out = it->second.entry;
    return true;
  }

  void RecordHit() {
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_;
  }

  void RecordMiss() {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
  }

  // Drift eviction: the entry is gone and the probe counts as a miss.
  void Invalidate(uint64_t version, uint64_t shape) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(Key{version, shape});
    if (it != entries_.end()) {
      lru_.erase(it->second.lru_pos);
      entries_.erase(it);
    }
    ++invalidations_;
    ++misses_;
  }

  void Insert(uint64_t version, uint64_t shape, PlanCacheEntry entry,
              uint64_t max_entries) {
    std::lock_guard<std::mutex> lock(mu_);
    const Key key{version, shape};
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      it->second.entry = std::move(entry);
      return;
    }
    lru_.push_front(key);
    entries_.emplace(key, Slot{std::move(entry), lru_.begin()});
    while (entries_.size() > max_entries && !lru_.empty()) {
      entries_.erase(lru_.back());
      lru_.pop_back();
    }
  }

  Planner::PlanCacheStats Stats() {
    std::lock_guard<std::mutex> lock(mu_);
    Planner::PlanCacheStats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.invalidations = invalidations_;
    stats.entries = entries_.size();
    return stats;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    lru_.clear();
    hits_ = misses_ = invalidations_ = 0;
  }

 private:
  struct Key {
    uint64_t version = 0;
    uint64_t shape = 0;
    bool operator==(const Key& o) const {
      return version == o.version && shape == o.shape;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.shape ^ (k.version * 0x9e3779b97f4a7c15ull));
    }
  };
  struct Slot {
    PlanCacheEntry entry;
    std::list<Key>::iterator lru_pos;
  };

  std::mutex mu_;
  std::unordered_map<Key, Slot, KeyHash> entries_;
  std::list<Key> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidations_ = 0;
};

// Fresh expected cost of `model` given the hit rates observed in the
// fresh conjunct decomposition (first use of the model wins; a predicate
// runs each model under one cache).
double FreshExpectedMs(const std::string& model,
                       const std::vector<RankedConjunct>& conjuncts) {
  for (const RankedConjunct& rc : conjuncts) {
    for (const UdfUse& u : rc.udfs) {
      if (u.model == model) {
        return CostModel::Global()->ExpectedUdfMs(model, u.cache_hit_rate);
      }
    }
  }
  return CostModel::Global()->ExpectedUdfMs(model, 0.0);
}

// A memoized plan is replayable when it still describes the fresh
// decomposition (permutation of the same conjunct count — the shape key
// all but guarantees this; the check makes cache corruption impossible
// to act on) and no UDF's live expected cost has drifted beyond 2x from
// the memoized snapshot. The absolute floor keeps sub-0.05ms jitter
// (cache warm-up on an already-cheap model) from churning plans that
// would not change anyway.
bool EntryStillValid(const PlanCacheEntry& entry,
                     const std::vector<RankedConjunct>& conjuncts) {
  if (entry.order.size() != conjuncts.size() ||
      entry.cascade.size() != conjuncts.size()) {
    return false;
  }
  std::vector<char> seen(conjuncts.size(), 0);
  for (size_t pos : entry.order) {
    if (pos >= conjuncts.size() || seen[pos]) return false;
    seen[pos] = 1;
  }
  for (const UdfCostSnapshot& snap : entry.udf_costs) {
    const double fresh = FreshExpectedMs(snap.model, conjuncts);
    const double drift = std::fabs(fresh - snap.expected_ms);
    if (drift > 0.05 && (fresh > 2.0 * snap.expected_ms ||
                         fresh < 0.5 * snap.expected_ms)) {
      return false;
    }
  }
  return true;
}

// Access-path selection over the source conjuncts: equality-on-hash,
// then equality-on-btree, then btree range; only slot-0 patterns are
// sargable on a single-view scan. Fills path/index_key/description.
void ChooseAccessPath(const ViewCache& view,
                      const std::vector<ExprPtr>& conjuncts,
                      PlanCacheEntry* entry) {
  entry->path = AccessPath::kFullScan;
  entry->base_description = "full scan (no usable index)";
  for (const ExprPtr& c : conjuncts) {
    auto eq = MatchAttrEqLit(c);
    if (eq.has_value() && eq->slot == 0) {
      if (view.hash_indexes.count(eq->key)) {
        entry->path = AccessPath::kHashLookup;
        entry->index_key = eq->key;
        entry->base_description =
            "hash index lookup on '" + eq->key + "', residual filter";
        return;
      }
      if (view.btree_indexes.count(eq->key)) {
        entry->path = AccessPath::kBTreeLookup;
        entry->index_key = eq->key;
        entry->base_description =
            "b+tree lookup on '" + eq->key + "', residual filter";
        return;
      }
    }
  }
  for (const ExprPtr& c : conjuncts) {
    auto range = MatchAttrRange(c);
    if (range.has_value() && range->slot == 0 &&
        view.btree_indexes.count(range->key)) {
      entry->path = AccessPath::kBTreeRange;
      entry->index_key = range->key;
      entry->base_description =
          "b+tree range scan on '" + range->key + "', residual filter";
      return;
    }
  }
}

// Fresh planning decision: access path + cost-ranked order + cascade
// eligibility per executed position.
PlanCacheEntry DecidePlan(const ViewCache& view,
                          const std::vector<RankedConjunct>& conjuncts,
                          double threshold) {
  PlanCacheEntry entry;
  std::vector<ExprPtr> source;
  source.reserve(conjuncts.size());
  for (const RankedConjunct& rc : conjuncts) source.push_back(rc.expr);
  ChooseAccessPath(view, source, &entry);

  entry.order.resize(conjuncts.size());
  std::iota(entry.order.begin(), entry.order.end(), size_t{0});
  std::stable_sort(entry.order.begin(), entry.order.end(),
                   [&](size_t a, size_t b) {
                     return RankKey(conjuncts[a]) < RankKey(conjuncts[b]);
                   });
  for (size_t i = 0; i < entry.order.size(); ++i) {
    entry.reordered = entry.reordered || entry.order[i] != i;
  }

  entry.cascade.assign(conjuncts.size(), 0);
  if (threshold < 1.0) {
    for (size_t i = 0; i < entry.order.size(); ++i) {
      const RankedConjunct& rc = conjuncts[entry.order[i]];
      if (rc.expr->has_proxy() && rc.cost_ms >= kCascadeMinCostMs) {
        entry.cascade[i] = 1;
      }
    }
  }

  std::unordered_set<std::string> snapped;
  for (const RankedConjunct& rc : conjuncts) {
    for (const UdfUse& u : rc.udfs) {
      if (!snapped.insert(u.model).second) continue;
      entry.udf_costs.push_back(UdfCostSnapshot{
          u.model,
          CostModel::Global()->ExpectedUdfMs(u.model, u.cache_hit_rate)});
    }
  }
  return entry;
}

// Realizes a planning decision (fresh or replayed) against the fresh
// conjunct decomposition: builds the executed predicate and the full
// explanation.
ScanPlan BuildScanPlan(const ViewCache& view, const ExprPtr& predicate,
                       const std::vector<RankedConjunct>& conjuncts,
                       const PlanCacheEntry& entry, double threshold,
                       bool from_cache) {
  ScanPlan plan;
  PlanExplanation& ex = plan.explanation;
  ex.path = entry.path;
  ex.index_key = entry.index_key;
  ex.description = entry.base_description;
  ex.reordered = entry.reordered;
  ex.plan_cache_hit = from_cache;
  ex.cascade.threshold = threshold;

  bool any_cascade = false;
  for (char c : entry.cascade) any_cascade = any_cascade || c != 0;
  if (any_cascade) plan.telemetry = std::make_shared<CascadeTelemetry>();

  std::ostringstream costs;
  costs << std::scientific << std::setprecision(2);
  ExprPtr exec;
  std::string cascaded_texts;
  for (size_t i = 0; i < entry.order.size(); ++i) {
    const RankedConjunct& rc = conjuncts[entry.order[i]];
    ConjunctCost cc;
    cc.text = rc.expr->ToString();
    cc.source_index = rc.source_index;
    cc.cost_ms = rc.cost_ms;
    cc.selectivity = rc.selectivity;
    cc.sargable = rc.sargable;
    cc.cascade = entry.cascade[i] != 0;
    for (const UdfUse& u : rc.udfs) cc.udfs.push_back(u.model);
    ex.conjunct_costs.push_back(cc);

    if (i > 0) costs << ", ";
    costs << cc.text << " cost=" << cc.cost_ms << "ms sel=" << std::fixed
          << std::setprecision(2) << cc.selectivity << std::scientific
          << std::setprecision(2);

    ExprPtr c = rc.expr;
    if (entry.cascade[i] != 0) {
      if (!cascaded_texts.empty()) cascaded_texts += ", ";
      cascaded_texts += cc.text;
      c = MakeCascade(c, threshold, plan.telemetry);
    }
    exec = exec ? And(std::move(exec), std::move(c)) : std::move(c);
  }
  // Nothing changed → execute the predicate exactly as written (same
  // tree, same short-circuit error order).
  plan.exec_predicate =
      (!entry.reordered && !any_cascade) ? predicate : exec;

  if (!ex.conjunct_costs.empty()) {
    ex.description += "; conjunct costs [" + costs.str() + "]";
  }
  if (entry.reordered) {
    ex.description += "; conjuncts reordered by cost-per-eliminated-row";
  }
  if (any_cascade) {
    ex.cascade.used = true;
    ex.cascade.conjuncts = cascaded_texts;
    std::ostringstream t;
    t << std::fixed << std::setprecision(2) << threshold;
    ex.description += "; proxy cascade on [" + cascaded_texts +
                      "] at confidence >= " + t.str();
  }
  if (from_cache) {
    ex.description +=
        "; plan cache hit (view v" + std::to_string(view.version) + ")";
  }
  ex = AnnotateUdfUse(std::move(ex), plan.exec_predicate);
  return plan;
}

PlanExplanation PlanColumnarScan(const ViewCache& view,
                                 const ExprPtr& predicate) {
  // Disk-backed view: no resident rows, no in-memory indexes. The scan
  // streams chunks, pruned by footer zone maps against the sargable
  // conjuncts — prune counts are known at plan time, before any I/O.
  // Conjunct reordering and cascades do not apply: the pushdown already
  // evaluates sargable conjuncts during decode, below the expression
  // layer. (Cost-ranking the residual is an open follow-up.)
  PlanExplanation plan;
  plan.path = AccessPath::kColumnarScan;
  const columnar::PredicatePushdown down =
      columnar::ExtractPushdown(predicate);
  const size_t total = view.columnar->num_chunks();
  const size_t kept = view.columnar->SelectChunks(down.preds).size();
  plan.columnar.used = true;
  plan.columnar.chunks_total = total;
  plan.columnar.chunks_pruned = total - kept;
  plan.columnar.sargable_conjuncts = down.preds.size();
  plan.columnar.fully_sargable = down.fully_sargable;
  plan.columnar.prefetch_depth = columnar::PrefetchDepthFromEnv();
  plan.candidates = view.columnar->total_rows();
  std::ostringstream desc;
  desc << "columnar chunk scan: zone maps pruned " << (total - kept) << "/"
       << total << " chunks, " << down.preds.size()
       << " pushed conjunct(s)";
  if (predicate != nullptr) {
    desc << (down.fully_sargable ? " (fully sargable)"
                                 : " + residual filter");
  }
  desc << ", prefetch depth " << plan.columnar.prefetch_depth;
  plan.description = desc.str();
  return AnnotateUdfUse(std::move(plan), predicate);
}

}  // namespace

ScanPlan Planner::PlanScanFull(const ViewCache& view,
                               const ExprPtr& predicate) {
  if (view.disk_backed()) {
    ScanPlan plan;
    plan.explanation = PlanColumnarScan(view, predicate);
    plan.exec_predicate = predicate;
    return plan;
  }
  if (!predicate) {
    ScanPlan plan;
    plan.explanation.description = "full scan (no predicate)";
    return plan;
  }

  std::vector<ExprPtr> source;
  CollectConjuncts(predicate, &source);
  std::vector<RankedConjunct> conjuncts;
  conjuncts.reserve(source.size());
  for (size_t i = 0; i < source.size(); ++i) {
    conjuncts.push_back(EstimateConjunct(source[i], i));
  }

  const double threshold = CascadeThresholdFromEnv();
  const uint64_t max_entries = PlanCacheEntriesFromEnv();
  // Hand-built ViewCaches (version 0) have no invalidation signal, so
  // their plans are never memoized.
  const bool memoizable = view.version != 0 && max_entries > 0;
  const uint64_t shape = PredicateShapeKey(conjuncts, threshold);

  PlanCache* cache = PlanCache::Global();
  if (memoizable) {
    PlanCacheEntry cached;
    if (cache->Lookup(view.version, shape, &cached)) {
      if (EntryStillValid(cached, conjuncts)) {
        cache->RecordHit();
        return BuildScanPlan(view, predicate, conjuncts, cached, threshold,
                             /*from_cache=*/true);
      }
      cache->Invalidate(view.version, shape);
    } else {
      cache->RecordMiss();
    }
  }

  PlanCacheEntry entry = DecidePlan(view, conjuncts, threshold);
  if (memoizable) {
    cache->Insert(view.version, shape, entry, max_entries);
  }
  return BuildScanPlan(view, predicate, conjuncts, entry, threshold,
                       /*from_cache=*/false);
}

PlanExplanation Planner::PlanScan(const ViewCache& view,
                                  const ExprPtr& predicate) {
  return PlanScanFull(view, predicate).explanation;
}

void Planner::FinalizeScanPlan(ScanPlan* plan) {
  if (plan->telemetry == nullptr) return;
  const CascadeTelemetry& tel = *plan->telemetry;
  CascadeReport& report = plan->explanation.cascade;
  report.proxy_evals = tel.proxy_evals.load(std::memory_order_relaxed);
  report.proxy_skips = tel.proxy_skips.load(std::memory_order_relaxed);
  report.full_evals = tel.full_evals.load(std::memory_order_relaxed);
  report.audits = tel.audits.load(std::memory_order_relaxed);
  report.audit_overturns =
      tel.audit_overturns.load(std::memory_order_relaxed);
  const sim::PrecisionRecall pr = sim::EstimateCascadeAccuracy(
      tel.passes.load(std::memory_order_relaxed), report.proxy_skips,
      report.audits, report.audit_overturns);
  report.est_precision = pr.precision();
  report.est_recall = pr.recall();
}

Planner::PlanCacheStats Planner::GetPlanCacheStats() {
  return PlanCache::Global()->Stats();
}

void Planner::ResetPlanCacheForTest() { PlanCache::Global()->Reset(); }

namespace {

// Fetches the candidate row ids for an index-backed plan; returns false
// when the plan is a full scan (no index consulted). Matches against the
// *source* predicate — the index conjunct's position in the executed
// order is irrelevant to which rows the index returns.
bool CollectIndexCandidates(const ViewCache& view, const ExprPtr& predicate,
                            const PlanExplanation& plan,
                            std::vector<RowId>* candidates) {
  if (plan.path != AccessPath::kHashLookup &&
      plan.path != AccessPath::kBTreeLookup &&
      plan.path != AccessPath::kBTreeRange) {
    return false;
  }
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(predicate, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    if (plan.path == AccessPath::kHashLookup ||
        plan.path == AccessPath::kBTreeLookup) {
      auto eq = MatchAttrEqLit(c);
      if (!eq.has_value() || eq->key != plan.index_key) continue;
      const std::string key = eq->value.ToIndexKey();
      if (plan.path == AccessPath::kHashLookup) {
        view.hash_indexes.at(plan.index_key).Lookup(Slice(key), candidates);
      } else {
        view.btree_indexes.at(plan.index_key).Lookup(Slice(key), candidates);
      }
      return true;
    }
    auto range = MatchAttrRange(c);
    if (range.has_value() && range->key == plan.index_key) {
      const BPlusTree& tree = view.btree_indexes.at(plan.index_key);
      const std::string lo =
          range->lo.has_value() ? range->lo->ToIndexKey() : std::string();
      if (range->hi.has_value()) {
        tree.RangeScan(Slice(lo), Slice(range->hi->ToIndexKey()), candidates);
      } else {
        tree.ScanFrom(Slice(lo), candidates);
      }
      return true;
    }
  }
  return false;
}

// Streams the zone-map-surviving chunks of a disk-backed view through the
// decode-ahead loader and hands every passing row to `row_fn`
// (Patch&& argument). Sargable conjuncts are applied inside the reader
// during decode (the same early-elimination the index paths perform);
// when the pushdown does not cover the whole predicate the residual
// compiled predicate re-runs over the materialized rows. A consumer that
// never reads row content (`need_row_content == false`, e.g. COUNT) gets
// a meta-only projection of the conjunct keys plus `extra_keys` — pixels
// and features are then never decoded at all. Fills the runtime half of
// `plan->columnar` from the loader's counters.
template <typename RowFn>
Status DriveColumnarScan(const ViewCache& view, const ExprPtr& predicate,
                         const std::vector<std::string>& extra_keys,
                         bool need_row_content, PlanExplanation* plan,
                         const RowFn& row_fn) {
  const std::shared_ptr<columnar::ColumnarReader> reader = view.columnar;
  const columnar::PredicatePushdown down =
      columnar::ExtractPushdown(predicate);
  std::vector<size_t> chunks = reader->SelectChunks(down.preds);

  columnar::ChunkReadOptions options;
  options.row_filter = down.preds;
  if (!need_row_content && down.fully_sargable) {
    options.projection.pixels = false;
    options.projection.features = false;
    options.projection.all_meta = false;
    options.projection.meta_keys = extra_keys;
    for (const columnar::ColumnPredicate& p : down.preds) {
      options.projection.meta_keys.push_back(p.key);
    }
  }
  // Null pred compiles to always-true, so the fully-sargable case pays no
  // per-row re-check above the reader.
  const CompiledPredicate residual(down.fully_sargable ? ExprPtr{}
                                                       : predicate);

  columnar::AsyncChunkLoader loader(reader, std::move(chunks),
                                    std::move(options));
  while (true) {
    DL_ASSIGN_OR_RETURN(auto rows, loader.Next());
    if (!rows.has_value()) break;
    for (Patch& p : *rows) {
      if (!residual.always_true()) {
        DL_ASSIGN_OR_RETURN(bool pass, residual.EvalOnePatch(p));
        if (!pass) continue;
      }
      row_fn(std::move(p));
    }
  }

  const columnar::PrefetchStats pf = loader.stats();
  plan->columnar.chunks_read = pf.chunks_loaded;
  plan->columnar.rows_decoded = pf.rows_loaded;
  plan->columnar.bytes_decoded = pf.bytes_decoded;
  plan->columnar.prefetch_depth = pf.depth;
  plan->columnar.prefetch_peak_bytes = pf.peak_queued_bytes;
  plan->columnar.consumer_waits = pf.consumer_waits;
  plan->columnar.budget_waits = pf.budget_waits;
  plan->candidates = pf.rows_loaded;  // fetched before residual filtering
  return Status::OK();
}

}  // namespace

Result<PatchCollection> Planner::ExecuteScan(const ViewCache& view,
                                             const ExprPtr& predicate,
                                             PlanExplanation* explanation) {
  ScanPlan plan = PlanScanFull(view, predicate);
  PlanExplanation& local = plan.explanation;

  if (local.path == AccessPath::kColumnarScan) {
    PatchCollection out;
    DL_RETURN_NOT_OK(DriveColumnarScan(
        view, predicate, /*extra_keys=*/{}, /*need_row_content=*/true,
        &local, [&](Patch&& p) { out.push_back(std::move(p)); }));
    if (explanation != nullptr) *explanation = local;
    return out;
  }

  std::vector<RowId> candidates;
  const bool have_candidates =
      CollectIndexCandidates(view, predicate, local, &candidates);

  PatchCollection out;
  if (have_candidates) {
    // Index-driven path: few candidates, so a single compiled-predicate
    // pass beats spinning up morsels. The *executed* predicate still
    // runs in ranked order over each candidate.
    local.candidates = candidates.size();
    const CompiledPredicate compiled(plan.exec_predicate);
    for (RowId r : candidates) {
      const Patch& p = view.patches[static_cast<size_t>(r)];
      DL_ASSIGN_OR_RETURN(bool pass, compiled.EvalOnePatch(p));
      if (pass) out.push_back(p);
    }
  } else {
    // Full scan: morsel-parallel batch evaluation with ordered merge.
    local.candidates = view.patches.size();
    DL_ASSIGN_OR_RETURN(out,
                        ParallelSelect(view.patches, plan.exec_predicate));
  }
  FinalizeScanPlan(&plan);
  if (explanation != nullptr) *explanation = local;
  return out;
}

namespace {

// Shared skeleton of the aggregate scans: index-backed plans fold the
// surviving candidates into `state` and finalize; disk-backed views fold
// the streamed chunk rows (meta-only projection of `projected_keys` when
// `need_row_content` is false and the pushdown covers the predicate);
// full scans delegate to a pre-merge parallel aggregate run over the
// *executed* (reordered/cascaded) predicate, which full_scan receives as
// its argument. `accumulate` is (State*, const Patch&), `finalize` is
// State -> Result<Out>, `full_scan` is (const ExprPtr&) -> Result<Out>.
template <typename State, typename AccumulateFn, typename FinalizeFn,
          typename FullScanFn>
auto ExecuteAggregateScan(const ViewCache& view, const ExprPtr& predicate,
                          PlanExplanation* explanation,
                          const std::vector<std::string>& projected_keys,
                          bool need_row_content, State state,
                          const AccumulateFn& accumulate,
                          const FinalizeFn& finalize,
                          const FullScanFn& full_scan)
    -> decltype(full_scan(predicate)) {
  ScanPlan plan = Planner::PlanScanFull(view, predicate);
  PlanExplanation& local = plan.explanation;
  if (local.path == AccessPath::kColumnarScan) {
    DL_RETURN_NOT_OK(DriveColumnarScan(
        view, predicate, projected_keys, need_row_content, &local,
        [&](Patch&& p) { accumulate(&state, p); }));
    if (explanation != nullptr) *explanation = local;
    return finalize(std::move(state));
  }
  std::vector<RowId> candidates;
  if (CollectIndexCandidates(view, predicate, local, &candidates)) {
    local.candidates = candidates.size();
    const CompiledPredicate compiled(plan.exec_predicate);
    for (RowId r : candidates) {
      const Patch& p = view.patches[static_cast<size_t>(r)];
      DL_ASSIGN_OR_RETURN(bool pass, compiled.EvalOnePatch(p));
      if (pass) accumulate(&state, p);
    }
    Planner::FinalizeScanPlan(&plan);
    if (explanation != nullptr) *explanation = local;
    return finalize(std::move(state));
  }
  local.candidates = view.patches.size();
  auto result = full_scan(plan.exec_predicate);
  Planner::FinalizeScanPlan(&plan);
  if (explanation != nullptr) *explanation = local;
  return result;
}

}  // namespace

Result<uint64_t> Planner::ExecuteScanCount(const ViewCache& view,
                                           const ExprPtr& predicate,
                                           PlanExplanation* explanation) {
  return ExecuteAggregateScan(
      view, predicate, explanation, /*projected_keys=*/{},
      /*need_row_content=*/false, uint64_t{0},
      [](uint64_t* count, const Patch&) { ++*count; },
      [](uint64_t count) -> Result<uint64_t> { return count; },
      [&](const ExprPtr& pred) { return ParallelCount(view.patches, pred); });
}

Result<uint64_t> Planner::ExecuteScanCountDistinct(
    const ViewCache& view, const std::string& key, const ExprPtr& predicate,
    PlanExplanation* explanation) {
  return ExecuteAggregateScan(
      view, predicate, explanation, /*projected_keys=*/{key},
      /*need_row_content=*/false, std::unordered_set<std::string>{},
      [&](std::unordered_set<std::string>* seen, const Patch& p) {
        seen->insert(p.meta().Get(key).ToIndexKey());
      },
      [](std::unordered_set<std::string> seen) -> Result<uint64_t> {
        return static_cast<uint64_t>(seen.size());
      },
      [&](const ExprPtr& pred) {
        return ParallelCountDistinctKey(view.patches, key, pred);
      });
}

Result<std::map<std::string, uint64_t>> Planner::ExecuteScanGroupCount(
    const ViewCache& view, const std::string& key, const ExprPtr& predicate,
    PlanExplanation* explanation) {
  using Groups = std::map<std::string, uint64_t>;
  return ExecuteAggregateScan(
      view, predicate, explanation, /*projected_keys=*/{key},
      /*need_row_content=*/false, Groups{},
      [&](Groups* groups, const Patch& p) {
        ++(*groups)[p.meta().Get(key).ToDisplayString()];
      },
      [](Groups groups) -> Result<Groups> { return groups; },
      [&](const ExprPtr& pred) {
        return ParallelGroupByCount(view.patches, key, pred);
      });
}

Result<std::optional<Patch>> Planner::ExecuteScanMinBy(
    const ViewCache& view, const std::string& order_key,
    const ExprPtr& predicate, PlanExplanation* explanation) {
  using Best = std::optional<Patch>;
  // MinBy returns the whole winning patch, so it needs full row content.
  return ExecuteAggregateScan(
      view, predicate, explanation, /*projected_keys=*/{order_key},
      /*need_row_content=*/true, Best{},
      [&](Best* best, const Patch& p) {
        if (!best->has_value() ||
            p.meta().Get(order_key).Compare(
                (*best)->meta().Get(order_key)) < 0) {
          *best = p;
        }
      },
      [](Best best) -> Result<Best> { return best; },
      [&](const ExprPtr& pred) {
        return ParallelMinBy(view.patches, order_key, pred);
      });
}

PlanExplanation Planner::ExplainJoin(const std::string& key,
                                     const ExprPtr& residual,
                                     const JoinStats& stats) {
  PlanExplanation plan;
  plan.index_key = key;
  plan.candidates = stats.pairs_examined;
  std::ostringstream desc;
  desc << std::fixed << std::setprecision(2);
  if (stats.partitions_used > 0) {
    desc << "radix hash join on '" << key << "': " << stats.partitions_used
         << " partitions, max skew " << stats.max_partition_skew
         << "x; phase ms partition=" << stats.partition_millis
         << " build=" << stats.index_build_millis
         << " probe=" << stats.probe_millis
         << " merge=" << stats.merge_millis;
  } else {
    desc << "shared-build hash join on '" << key
         << "' (serial core); build ms=" << stats.index_build_millis;
  }
  plan.description = desc.str();
  return AnnotateUdfUse(std::move(plan), residual);
}

double Planner::EstimateSimJoinCost(SimJoinStrategy strategy,
                                    size_t left_size, size_t right_size,
                                    size_t dim, size_t workers) {
  const double n = static_cast<double>(left_size);
  const double m = static_cast<double>(right_size);
  const double d = static_cast<double>(dim);
  const double w = static_cast<double>(std::max<size_t>(1, workers));
  switch (strategy) {
    case SimJoinStrategy::kNestedLoop:
      // Every pair pays a full distance plus iterator overhead; the outer
      // loop is morsel-parallel.
      return n * m * (d + 8.0) / w;
    case SimJoinStrategy::kBallTree: {
      // Build: a fixed setup constant plus m log m centroid work; probe:
      // n log m with an effectiveness factor that degrades with
      // dimensionality (the curse of dimensionality behind Figure 7's
      // non-linearity). Build and probe both run on pool workers (the
      // build parallelizes over subtrees), so they scale with w; only the
      // setup constant doesn't.
      const double logm = std::log2(std::max(2.0, m));
      const double prune = std::min(1.0, 0.15 + d / 96.0);
      return 2e3 + (m * logm * d + n * (logm + prune * m) * d * 0.5) / w;
    }
    case SimJoinStrategy::kAllPairs:
      // Dense kernel: great constants, quadratic growth. Device-bound,
      // not pool-bound — extra pool workers don't help it.
      return n * m * d * 0.25 + 5e4;  // fixed launch/setup overhead
  }
  return 0.0;
}

SimJoinStrategy Planner::ChooseSimilarityJoin(size_t left_size,
                                              size_t right_size, size_t dim,
                                              bool gpu_available,
                                              size_t workers) {
  SimJoinStrategy best = SimJoinStrategy::kNestedLoop;
  double best_cost =
      EstimateSimJoinCost(best, left_size, right_size, dim, workers);
  for (SimJoinStrategy s :
       {SimJoinStrategy::kBallTree, SimJoinStrategy::kAllPairs}) {
    double cost = EstimateSimJoinCost(s, left_size, right_size, dim, workers);
    // A GPU discounts the dense kernel but not tree traversal.
    if (s == SimJoinStrategy::kAllPairs && gpu_available) cost *= 0.3;
    if (cost < best_cost) {
      best_cost = cost;
      best = s;
    }
  }
  return best;
}

}  // namespace deeplens
