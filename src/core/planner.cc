#include "core/planner.h"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <unordered_set>

#include "exec/aggregates.h"
#include "exec/pipeline.h"
#include "storage/columnar/async_loader.h"
#include "storage/columnar/format.h"

namespace deeplens {

const char* AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kFullScan:
      return "full-scan";
    case AccessPath::kHashLookup:
      return "hash-lookup";
    case AccessPath::kBTreeLookup:
      return "b+tree-lookup";
    case AccessPath::kBTreeRange:
      return "b+tree-range";
    case AccessPath::kColumnarScan:
      return "columnar-scan";
  }
  return "?";
}

const char* SimJoinStrategyName(SimJoinStrategy strategy) {
  switch (strategy) {
    case SimJoinStrategy::kNestedLoop:
      return "nested-loop";
    case SimJoinStrategy::kBallTree:
      return "ball-tree";
    case SimJoinStrategy::kAllPairs:
      return "all-pairs";
  }
  return "?";
}

namespace {

// Reports the NN UDFs a predicate will run per evaluated row — and
// whether the inference cache memoizes them — so Explain() stays honest
// about the plan's compute/cache interaction.
PlanExplanation AnnotateUdfUse(PlanExplanation plan,
                               const ExprPtr& predicate) {
  if (!predicate) return plan;
  predicate->CollectUdfUse(&plan.udfs);
  if (plan.udfs.empty()) return plan;
  bool all_cached = true;
  bool all_persistent = true;
  for (const UdfUse& u : plan.udfs) {
    if (u.cached) {
      plan.uses_inference_cache = true;
    } else {
      all_cached = false;
    }
    if (!u.persistent) all_persistent = false;
  }
  const bool mixed = plan.uses_inference_cache && !all_cached;
  std::string list;
  for (const UdfUse& u : plan.udfs) {
    if (!list.empty()) list += ",";
    list += u.model;
    // Per-model markers only when the models disagree; the trailing
    // clause covers the uniform cases.
    if (mixed) list += u.cached ? "(cached)" : "(uncached)";
  }
  // "persistent" is reported only when every UDF's results survive a
  // restart — memory-vs-disk hit provenance for the run itself lives in
  // CacheStats.
  plan.description +=
      "; nn-udfs per row: " + list +
      (!plan.uses_inference_cache
           ? " (uncached)"
           : !all_cached
                 ? " (partially memoized by inference cache)"
                 : all_persistent
                       ? " (memoized by persistent inference cache)"
                       : " (memoized by inference cache)");
  return plan;
}

}  // namespace

PlanExplanation Planner::PlanScan(const ViewCache& view,
                                  const ExprPtr& predicate) {
  PlanExplanation plan;
  if (view.disk_backed()) {
    // Disk-backed view: no resident rows, no in-memory indexes. The scan
    // streams chunks, pruned by footer zone maps against the sargable
    // conjuncts — prune counts are known at plan time, before any I/O.
    plan.path = AccessPath::kColumnarScan;
    const columnar::PredicatePushdown down =
        columnar::ExtractPushdown(predicate);
    const size_t total = view.columnar->num_chunks();
    const size_t kept = view.columnar->SelectChunks(down.preds).size();
    plan.columnar.used = true;
    plan.columnar.chunks_total = total;
    plan.columnar.chunks_pruned = total - kept;
    plan.columnar.sargable_conjuncts = down.preds.size();
    plan.columnar.fully_sargable = down.fully_sargable;
    plan.columnar.prefetch_depth = columnar::PrefetchDepthFromEnv();
    plan.candidates = view.columnar->total_rows();
    std::ostringstream desc;
    desc << "columnar chunk scan: zone maps pruned " << (total - kept) << "/"
         << total << " chunks, " << down.preds.size()
         << " pushed conjunct(s)";
    if (predicate != nullptr) {
      desc << (down.fully_sargable ? " (fully sargable)"
                                   : " + residual filter");
    }
    desc << ", prefetch depth " << plan.columnar.prefetch_depth;
    plan.description = desc.str();
    return AnnotateUdfUse(std::move(plan), predicate);
  }
  plan.description = "full scan (no usable index)";
  if (!predicate) {
    plan.description = "full scan (no predicate)";
    return plan;
  }
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(predicate, &conjuncts);

  // Prefer equality-on-hash, then equality-on-btree, then btree range;
  // only slot-0 patterns are sargable on a single-view scan.
  for (const ExprPtr& c : conjuncts) {
    auto eq = MatchAttrEqLit(c);
    if (eq.has_value() && eq->slot == 0) {
      if (view.hash_indexes.count(eq->key)) {
        plan.path = AccessPath::kHashLookup;
        plan.index_key = eq->key;
        plan.description =
            "hash index lookup on '" + eq->key + "', residual filter";
        return AnnotateUdfUse(std::move(plan), predicate);
      }
      if (view.btree_indexes.count(eq->key)) {
        plan.path = AccessPath::kBTreeLookup;
        plan.index_key = eq->key;
        plan.description =
            "b+tree lookup on '" + eq->key + "', residual filter";
        return AnnotateUdfUse(std::move(plan), predicate);
      }
    }
  }
  for (const ExprPtr& c : conjuncts) {
    auto range = MatchAttrRange(c);
    if (range.has_value() && range->slot == 0 &&
        view.btree_indexes.count(range->key)) {
      plan.path = AccessPath::kBTreeRange;
      plan.index_key = range->key;
      plan.description =
          "b+tree range scan on '" + range->key + "', residual filter";
      return AnnotateUdfUse(std::move(plan), predicate);
    }
  }
  return AnnotateUdfUse(std::move(plan), predicate);
}

namespace {

// Fetches the candidate row ids for an index-backed plan; returns false
// when the plan is a full scan (no index consulted).
bool CollectIndexCandidates(const ViewCache& view, const ExprPtr& predicate,
                            const PlanExplanation& plan,
                            std::vector<RowId>* candidates) {
  if (plan.path != AccessPath::kHashLookup &&
      plan.path != AccessPath::kBTreeLookup &&
      plan.path != AccessPath::kBTreeRange) {
    return false;
  }
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(predicate, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    if (plan.path == AccessPath::kHashLookup ||
        plan.path == AccessPath::kBTreeLookup) {
      auto eq = MatchAttrEqLit(c);
      if (!eq.has_value() || eq->key != plan.index_key) continue;
      const std::string key = eq->value.ToIndexKey();
      if (plan.path == AccessPath::kHashLookup) {
        view.hash_indexes.at(plan.index_key).Lookup(Slice(key), candidates);
      } else {
        view.btree_indexes.at(plan.index_key).Lookup(Slice(key), candidates);
      }
      return true;
    }
    auto range = MatchAttrRange(c);
    if (range.has_value() && range->key == plan.index_key) {
      const BPlusTree& tree = view.btree_indexes.at(plan.index_key);
      const std::string lo =
          range->lo.has_value() ? range->lo->ToIndexKey() : std::string();
      if (range->hi.has_value()) {
        tree.RangeScan(Slice(lo), Slice(range->hi->ToIndexKey()), candidates);
      } else {
        tree.ScanFrom(Slice(lo), candidates);
      }
      return true;
    }
  }
  return false;
}

// Streams the zone-map-surviving chunks of a disk-backed view through the
// decode-ahead loader and hands every passing row to `row_fn`
// (Patch&& argument). Sargable conjuncts are applied inside the reader
// during decode (the same early-elimination the index paths perform);
// when the pushdown does not cover the whole predicate the residual
// compiled predicate re-runs over the materialized rows. A consumer that
// never reads row content (`need_row_content == false`, e.g. COUNT) gets
// a meta-only projection of the conjunct keys plus `extra_keys` — pixels
// and features are then never decoded at all. Fills the runtime half of
// `plan->columnar` from the loader's counters.
template <typename RowFn>
Status DriveColumnarScan(const ViewCache& view, const ExprPtr& predicate,
                         const std::vector<std::string>& extra_keys,
                         bool need_row_content, PlanExplanation* plan,
                         const RowFn& row_fn) {
  const std::shared_ptr<columnar::ColumnarReader> reader = view.columnar;
  const columnar::PredicatePushdown down =
      columnar::ExtractPushdown(predicate);
  std::vector<size_t> chunks = reader->SelectChunks(down.preds);

  columnar::ChunkReadOptions options;
  options.row_filter = down.preds;
  if (!need_row_content && down.fully_sargable) {
    options.projection.pixels = false;
    options.projection.features = false;
    options.projection.all_meta = false;
    options.projection.meta_keys = extra_keys;
    for (const columnar::ColumnPredicate& p : down.preds) {
      options.projection.meta_keys.push_back(p.key);
    }
  }
  // Null pred compiles to always-true, so the fully-sargable case pays no
  // per-row re-check above the reader.
  const CompiledPredicate residual(down.fully_sargable ? ExprPtr{}
                                                       : predicate);

  columnar::AsyncChunkLoader loader(reader, std::move(chunks),
                                    std::move(options));
  while (true) {
    DL_ASSIGN_OR_RETURN(auto rows, loader.Next());
    if (!rows.has_value()) break;
    for (Patch& p : *rows) {
      if (!residual.always_true()) {
        DL_ASSIGN_OR_RETURN(bool pass, residual.EvalOnePatch(p));
        if (!pass) continue;
      }
      row_fn(std::move(p));
    }
  }

  const columnar::PrefetchStats pf = loader.stats();
  plan->columnar.chunks_read = pf.chunks_loaded;
  plan->columnar.rows_decoded = pf.rows_loaded;
  plan->columnar.bytes_decoded = pf.bytes_decoded;
  plan->columnar.prefetch_depth = pf.depth;
  plan->columnar.prefetch_peak_bytes = pf.peak_queued_bytes;
  plan->columnar.consumer_waits = pf.consumer_waits;
  plan->columnar.budget_waits = pf.budget_waits;
  plan->candidates = pf.rows_loaded;  // fetched before residual filtering
  return Status::OK();
}

}  // namespace

Result<PatchCollection> Planner::ExecuteScan(const ViewCache& view,
                                             const ExprPtr& predicate,
                                             PlanExplanation* explanation) {
  PlanExplanation local = PlanScan(view, predicate);

  if (local.path == AccessPath::kColumnarScan) {
    PatchCollection out;
    DL_RETURN_NOT_OK(DriveColumnarScan(
        view, predicate, /*extra_keys=*/{}, /*need_row_content=*/true,
        &local, [&](Patch&& p) { out.push_back(std::move(p)); }));
    if (explanation != nullptr) *explanation = local;
    return out;
  }

  std::vector<RowId> candidates;
  const bool have_candidates =
      CollectIndexCandidates(view, predicate, local, &candidates);

  PatchCollection out;
  if (have_candidates) {
    // Index-driven path: few candidates, so a single compiled-predicate
    // pass beats spinning up morsels.
    local.candidates = candidates.size();
    const CompiledPredicate compiled(predicate);
    for (RowId r : candidates) {
      const Patch& p = view.patches[static_cast<size_t>(r)];
      DL_ASSIGN_OR_RETURN(bool pass, compiled.EvalOnePatch(p));
      if (pass) out.push_back(p);
    }
  } else {
    // Full scan: morsel-parallel batch evaluation with ordered merge.
    local.candidates = view.patches.size();
    DL_ASSIGN_OR_RETURN(out, ParallelSelect(view.patches, predicate));
  }
  if (explanation != nullptr) *explanation = local;
  return out;
}

namespace {

// Shared skeleton of the aggregate scans: index-backed plans fold the
// surviving candidates into `state` and finalize; disk-backed views fold
// the streamed chunk rows (meta-only projection of `projected_keys` when
// `need_row_content` is false and the pushdown covers the predicate);
// full scans delegate to a pre-merge parallel aggregate. `accumulate` is
// (State*, const Patch&), `finalize` is State -> Result<Out>, `full_scan`
// is () -> Result<Out>.
template <typename State, typename AccumulateFn, typename FinalizeFn,
          typename FullScanFn>
auto ExecuteAggregateScan(const ViewCache& view, const ExprPtr& predicate,
                          PlanExplanation* explanation,
                          const std::vector<std::string>& projected_keys,
                          bool need_row_content, State state,
                          const AccumulateFn& accumulate,
                          const FinalizeFn& finalize,
                          const FullScanFn& full_scan)
    -> decltype(full_scan()) {
  PlanExplanation local = Planner::PlanScan(view, predicate);
  if (local.path == AccessPath::kColumnarScan) {
    DL_RETURN_NOT_OK(DriveColumnarScan(
        view, predicate, projected_keys, need_row_content, &local,
        [&](Patch&& p) { accumulate(&state, p); }));
    if (explanation != nullptr) *explanation = local;
    return finalize(std::move(state));
  }
  std::vector<RowId> candidates;
  if (CollectIndexCandidates(view, predicate, local, &candidates)) {
    local.candidates = candidates.size();
    const CompiledPredicate compiled(predicate);
    for (RowId r : candidates) {
      const Patch& p = view.patches[static_cast<size_t>(r)];
      DL_ASSIGN_OR_RETURN(bool pass, compiled.EvalOnePatch(p));
      if (pass) accumulate(&state, p);
    }
    if (explanation != nullptr) *explanation = local;
    return finalize(std::move(state));
  }
  local.candidates = view.patches.size();
  if (explanation != nullptr) *explanation = local;
  return full_scan();
}

}  // namespace

Result<uint64_t> Planner::ExecuteScanCount(const ViewCache& view,
                                           const ExprPtr& predicate,
                                           PlanExplanation* explanation) {
  return ExecuteAggregateScan(
      view, predicate, explanation, /*projected_keys=*/{},
      /*need_row_content=*/false, uint64_t{0},
      [](uint64_t* count, const Patch&) { ++*count; },
      [](uint64_t count) -> Result<uint64_t> { return count; },
      [&] { return ParallelCount(view.patches, predicate); });
}

Result<uint64_t> Planner::ExecuteScanCountDistinct(
    const ViewCache& view, const std::string& key, const ExprPtr& predicate,
    PlanExplanation* explanation) {
  return ExecuteAggregateScan(
      view, predicate, explanation, /*projected_keys=*/{key},
      /*need_row_content=*/false, std::unordered_set<std::string>{},
      [&](std::unordered_set<std::string>* seen, const Patch& p) {
        seen->insert(p.meta().Get(key).ToIndexKey());
      },
      [](std::unordered_set<std::string> seen) -> Result<uint64_t> {
        return static_cast<uint64_t>(seen.size());
      },
      [&] { return ParallelCountDistinctKey(view.patches, key, predicate); });
}

Result<std::map<std::string, uint64_t>> Planner::ExecuteScanGroupCount(
    const ViewCache& view, const std::string& key, const ExprPtr& predicate,
    PlanExplanation* explanation) {
  using Groups = std::map<std::string, uint64_t>;
  return ExecuteAggregateScan(
      view, predicate, explanation, /*projected_keys=*/{key},
      /*need_row_content=*/false, Groups{},
      [&](Groups* groups, const Patch& p) {
        ++(*groups)[p.meta().Get(key).ToDisplayString()];
      },
      [](Groups groups) -> Result<Groups> { return groups; },
      [&] { return ParallelGroupByCount(view.patches, key, predicate); });
}

Result<std::optional<Patch>> Planner::ExecuteScanMinBy(
    const ViewCache& view, const std::string& order_key,
    const ExprPtr& predicate, PlanExplanation* explanation) {
  using Best = std::optional<Patch>;
  // MinBy returns the whole winning patch, so it needs full row content.
  return ExecuteAggregateScan(
      view, predicate, explanation, /*projected_keys=*/{order_key},
      /*need_row_content=*/true, Best{},
      [&](Best* best, const Patch& p) {
        if (!best->has_value() ||
            p.meta().Get(order_key).Compare(
                (*best)->meta().Get(order_key)) < 0) {
          *best = p;
        }
      },
      [](Best best) -> Result<Best> { return best; },
      [&] { return ParallelMinBy(view.patches, order_key, predicate); });
}

PlanExplanation Planner::ExplainJoin(const std::string& key,
                                     const ExprPtr& residual,
                                     const JoinStats& stats) {
  PlanExplanation plan;
  plan.index_key = key;
  plan.candidates = stats.pairs_examined;
  std::ostringstream desc;
  desc << std::fixed << std::setprecision(2);
  if (stats.partitions_used > 0) {
    desc << "radix hash join on '" << key << "': " << stats.partitions_used
         << " partitions, max skew " << stats.max_partition_skew
         << "x; phase ms partition=" << stats.partition_millis
         << " build=" << stats.index_build_millis
         << " probe=" << stats.probe_millis
         << " merge=" << stats.merge_millis;
  } else {
    desc << "shared-build hash join on '" << key
         << "' (serial core); build ms=" << stats.index_build_millis;
  }
  plan.description = desc.str();
  return AnnotateUdfUse(std::move(plan), residual);
}

double Planner::EstimateSimJoinCost(SimJoinStrategy strategy,
                                    size_t left_size, size_t right_size,
                                    size_t dim, size_t workers) {
  const double n = static_cast<double>(left_size);
  const double m = static_cast<double>(right_size);
  const double d = static_cast<double>(dim);
  const double w = static_cast<double>(std::max<size_t>(1, workers));
  switch (strategy) {
    case SimJoinStrategy::kNestedLoop:
      // Every pair pays a full distance plus iterator overhead; the outer
      // loop is morsel-parallel.
      return n * m * (d + 8.0) / w;
    case SimJoinStrategy::kBallTree: {
      // Build: a fixed setup constant plus m log m centroid work; probe:
      // n log m with an effectiveness factor that degrades with
      // dimensionality (the curse of dimensionality behind Figure 7's
      // non-linearity). Build and probe both run on pool workers (the
      // build parallelizes over subtrees), so they scale with w; only the
      // setup constant doesn't.
      const double logm = std::log2(std::max(2.0, m));
      const double prune = std::min(1.0, 0.15 + d / 96.0);
      return 2e3 + (m * logm * d + n * (logm + prune * m) * d * 0.5) / w;
    }
    case SimJoinStrategy::kAllPairs:
      // Dense kernel: great constants, quadratic growth. Device-bound,
      // not pool-bound — extra pool workers don't help it.
      return n * m * d * 0.25 + 5e4;  // fixed launch/setup overhead
  }
  return 0.0;
}

SimJoinStrategy Planner::ChooseSimilarityJoin(size_t left_size,
                                              size_t right_size, size_t dim,
                                              bool gpu_available,
                                              size_t workers) {
  SimJoinStrategy best = SimJoinStrategy::kNestedLoop;
  double best_cost =
      EstimateSimJoinCost(best, left_size, right_size, dim, workers);
  for (SimJoinStrategy s :
       {SimJoinStrategy::kBallTree, SimJoinStrategy::kAllPairs}) {
    double cost = EstimateSimJoinCost(s, left_size, right_size, dim, workers);
    // A GPU discounts the dense kernel but not tree traversal.
    if (s == SimJoinStrategy::kAllPairs && gpu_available) cost *= 0.3;
    if (cost < best_cost) {
      best_cost = cost;
      best = s;
    }
  }
  return best;
}

}  // namespace deeplens
