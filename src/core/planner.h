// Rule/cost-based physical planning (paper §5 "Future Work: Visual Query
// Optimizer" — prototyped here): selects access paths from available
// indexes, picks similarity-join strategies from relation sizes and
// dimensionality, and exposes its reasoning via PlanExplanation so
// benchmarks can report which plan ran.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/database.h"
#include "exec/expression_patterns.h"
#include "exec/joins.h"

namespace deeplens {

/// Physical access path for a filtered view scan.
enum class AccessPath {
  kFullScan = 0,
  kHashLookup = 1,
  kBTreeLookup = 2,
  kBTreeRange = 3,
  kColumnarScan = 4,  // disk-backed view: zone-map pruned chunk stream
};

const char* AccessPathName(AccessPath path);

/// Execution report of a columnar chunk scan: how much the zone maps
/// pruned without I/O, what the decode-ahead loader actually did, and how
/// far the pushdown reached. Static fields (totals, pruned count, depth)
/// are known at plan time; the runtime counters fill in after execution.
struct ColumnarScanStats {
  bool used = false;
  uint64_t chunks_total = 0;
  uint64_t chunks_pruned = 0;       // zone-map rejected: never read/decoded
  uint64_t chunks_read = 0;
  uint64_t rows_decoded = 0;        // surviving the pushed row filter
  uint64_t bytes_decoded = 0;       // ApproxPatchBytes over decoded rows
  size_t sargable_conjuncts = 0;    // conjuncts pushed into the reader
  bool fully_sargable = false;      // row filter alone decides membership
  size_t prefetch_depth = 0;        // resolved DEEPLENS_PREFETCH_DEPTH
  uint64_t prefetch_peak_bytes = 0; // high-water mark of the decode queue
  uint64_t consumer_waits = 0;      // consumer stalled on an empty queue
  uint64_t budget_waits = 0;        // worker stalled on depth/byte budget
};

/// What the planner decided and why.
struct PlanExplanation {
  AccessPath path = AccessPath::kFullScan;
  std::string index_key;
  std::string description;
  uint64_t candidates = 0;  // tuples fetched before residual filtering
  /// NN UDFs the predicate runs per evaluated row, in conjunct order,
  /// each flagged with whether an InferenceCache memoizes it — so
  /// Explain() reports the plan's expected cache interaction honestly.
  std::vector<UdfUse> udfs;
  /// True when at least one UDF will be served by the inference cache.
  bool uses_inference_cache = false;
  /// Filled when `path` is kColumnarScan (disk-backed view).
  ColumnarScanStats columnar;
  /// Fair-share class the query runs under ("tenant 'dash' weight 4");
  /// filled by Session::Explain, empty for plain Query::Explain.
  std::string scheduling_class;
  /// Inferences the serving layer deduplicated by joining an identical
  /// in-flight computation (database-wide running total; filled by
  /// Session::Explain).
  uint64_t inflight_dedup_hits = 0;
};

/// Similarity-join strategies (paper §5/§7.4).
enum class SimJoinStrategy {
  kNestedLoop = 0,  // baseline
  kBallTree = 1,    // on-the-fly index join
  kAllPairs = 2,    // dense device kernel (GPU/AVX)
};

const char* SimJoinStrategyName(SimJoinStrategy strategy);

/// \brief The planner. Stateless; all inputs are explicit.
class Planner {
 public:
  /// Chooses an access path for `predicate` over `view` given the indexes
  /// that exist on it.
  static PlanExplanation PlanScan(const ViewCache& view,
                                  const ExprPtr& predicate);

  /// Executes a scan with the chosen plan: index-driven candidate fetch,
  /// then residual predicate. Returns matching patches.
  static Result<PatchCollection> ExecuteScan(const ViewCache& view,
                                             const ExprPtr& predicate,
                                             PlanExplanation* explanation);

  // --- Aggregate scans (pre-merge pushdown) -----------------------------
  // The aggregate analogues of ExecuteScan: index-driven plans aggregate
  // over the candidate rows directly, and full scans run the aggregation
  // below the morsel driver's merge (exec/aggregates.h), so neither path
  // materializes the surviving patches just to reduce them.

  /// COUNT(*) of the rows matching `predicate`.
  static Result<uint64_t> ExecuteScanCount(const ViewCache& view,
                                           const ExprPtr& predicate,
                                           PlanExplanation* explanation);

  /// COUNT(DISTINCT key) of the rows matching `predicate`.
  static Result<uint64_t> ExecuteScanCountDistinct(
      const ViewCache& view, const std::string& key, const ExprPtr& predicate,
      PlanExplanation* explanation);

  /// Group-by `key` → count of the rows matching `predicate`.
  static Result<std::map<std::string, uint64_t>> ExecuteScanGroupCount(
      const ViewCache& view, const std::string& key, const ExprPtr& predicate,
      PlanExplanation* explanation);

  /// Earliest matching row with the minimal `order_key` value (the
  /// Query::FirstBy argmin).
  static Result<std::optional<Patch>> ExecuteScanMinBy(
      const ViewCache& view, const std::string& order_key,
      const ExprPtr& predicate, PlanExplanation* explanation);

  /// Explains an executed equality join from its stats: which core ran
  /// (radix vs shared-build), the per-phase timing breakdown, partition
  /// fan-out and skew — with the residual's NN-UDF/cache usage annotated
  /// like every other plan. Lets benchmarks and queries report *why* a
  /// parallel join was fast or slow without rebuilding the bench.
  static PlanExplanation ExplainJoin(const std::string& key,
                                     const ExprPtr& residual,
                                     const JoinStats& stats);

  /// Cost-model choice of similarity-join strategy. The Ball-Tree wins
  /// when the indexed side is large and dimensionality moderate; dense
  /// all-pairs wins on small inputs (index build overhead) or on a GPU
  /// with very large batches (paper §7.4.1-2: non-linear, data-dependent
  /// costs make this genuinely hard).
  /// `workers` discounts the pool-parallel strategies (tree build and
  /// probe are both morsel-parallel now; the dense device kernel is not
  /// pool-bound). The default of 1 keeps the historical single-threaded
  /// estimate; pass the live worker count for a plan-time choice.
  static SimJoinStrategy ChooseSimilarityJoin(size_t left_size,
                                              size_t right_size, size_t dim,
                                              bool gpu_available,
                                              size_t workers = 1);

  /// Estimated cost (abstract units) used by ChooseSimilarityJoin;
  /// exposed for the cost-model tests and Figure 7 analysis.
  static double EstimateSimJoinCost(SimJoinStrategy strategy,
                                    size_t left_size, size_t right_size,
                                    size_t dim, size_t workers = 1);
};

}  // namespace deeplens
