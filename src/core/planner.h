// Rule/cost-based physical planning (paper §5 "Future Work: Visual Query
// Optimizer" — prototyped here): selects access paths from available
// indexes, reorders AND conjuncts by observed cost-per-surviving-row so
// cheap/cached predicates run before expensive models, inserts
// proxy-model cascades around expensive UDF conjuncts, memoizes plan
// decisions per (view version, predicate shape), picks similarity-join
// strategies from relation sizes and dimensionality, and exposes its
// reasoning via PlanExplanation so benchmarks can report which plan ran.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/database.h"
#include "exec/expression_patterns.h"
#include "exec/joins.h"
#include "exec/nn_udf.h"

namespace deeplens {

/// Physical access path for a filtered view scan.
enum class AccessPath {
  kFullScan = 0,
  kHashLookup = 1,
  kBTreeLookup = 2,
  kBTreeRange = 3,
  kColumnarScan = 4,  // disk-backed view: zone-map pruned chunk stream
};

const char* AccessPathName(AccessPath path);

/// Execution report of a columnar chunk scan: how much the zone maps
/// pruned without I/O, what the decode-ahead loader actually did, and how
/// far the pushdown reached. Static fields (totals, pruned count, depth)
/// are known at plan time; the runtime counters fill in after execution.
struct ColumnarScanStats {
  bool used = false;
  uint64_t chunks_total = 0;
  uint64_t chunks_pruned = 0;       // zone-map rejected: never read/decoded
  uint64_t chunks_read = 0;
  uint64_t rows_decoded = 0;        // surviving the pushed row filter
  uint64_t bytes_decoded = 0;       // ApproxPatchBytes over decoded rows
  size_t sargable_conjuncts = 0;    // conjuncts pushed into the reader
  bool fully_sargable = false;      // row filter alone decides membership
  size_t prefetch_depth = 0;        // resolved DEEPLENS_PREFETCH_DEPTH
  uint64_t prefetch_peak_bytes = 0; // high-water mark of the decode queue
  uint64_t consumer_waits = 0;      // consumer stalled on an empty queue
  uint64_t budget_waits = 0;        // worker stalled on depth/byte budget
};

/// Cost-model estimate for one AND conjunct, reported in *executed*
/// order (after any reordering).
struct ConjunctCost {
  std::string text;           // conjunct expression, as executed
  size_t source_index = 0;    // position in the predicate as written
  double cost_ms = 0.0;       // estimated per-row evaluation cost
  double selectivity = 1.0;   // estimated pass fraction
  bool sargable = false;      // attr-vs-literal shape
  bool cascade = false;       // wrapped in a proxy cascade
  std::vector<std::string> udfs;  // models this conjunct runs per row
};

/// Execution report of the proxy cascades a plan inserted (exec/nn_udf.h).
/// Static fields are known at plan time; the row counters fill in after
/// execution. Precision/recall are the audit-slice estimate from
/// sim::EstimateCascadeAccuracy — precision is 1.0 by construction (the
/// cascade only ever *rejects* on the proxy; every emitted row was
/// confirmed by the full model).
struct CascadeReport {
  bool used = false;
  double threshold = 1.0;      // resolved DEEPLENS_CASCADE_THRESHOLD
  std::string conjuncts;       // which conjunct(s) were cascaded
  uint64_t proxy_evals = 0;    // rows where the proxy had an opinion
  uint64_t proxy_skips = 0;    // full-model evaluations avoided
  uint64_t full_evals = 0;     // rows that ran the full conjunct
  uint64_t audits = 0;         // would-be skips run in full as an audit
  uint64_t audit_overturns = 0;  // audits where the full model disagreed
  double est_precision = 1.0;
  double est_recall = 1.0;
};

/// What the planner decided and why.
struct PlanExplanation {
  AccessPath path = AccessPath::kFullScan;
  std::string index_key;
  std::string description;
  uint64_t candidates = 0;  // tuples fetched before residual filtering
  /// NN UDFs the predicate runs per evaluated row, in conjunct order,
  /// each flagged with whether an InferenceCache memoizes it — so
  /// Explain() reports the plan's expected cache interaction honestly.
  std::vector<UdfUse> udfs;
  /// True when at least one UDF will be served by the inference cache.
  bool uses_inference_cache = false;
  /// Filled when `path` is kColumnarScan (disk-backed view).
  ColumnarScanStats columnar;
  /// Per-conjunct cost estimates in executed order; empty for plans the
  /// optimizer does not decompose (no predicate, columnar pushdown).
  std::vector<ConjunctCost> conjunct_costs;
  /// True when the executed conjunct order differs from the written one.
  bool reordered = false;
  /// Proxy-cascade decisions and (post-execution) accuracy accounting.
  CascadeReport cascade;
  /// True when this plan was replayed from the plan cache instead of
  /// being re-derived.
  bool plan_cache_hit = false;
  /// Fair-share class the query runs under ("tenant 'dash' weight 4");
  /// filled by Session::Explain, empty for plain Query::Explain.
  std::string scheduling_class;
  /// Inferences the serving layer deduplicated by joining an identical
  /// in-flight computation (database-wide running total; filled by
  /// Session::Explain).
  uint64_t inflight_dedup_hits = 0;
  /// Cross-query device batching (exec/batch_former.h). `enabled` is set
  /// when any UDF in this plan stages misses into the former; the cost
  /// figures come from the cost model's batch profile and stay zero
  /// until a batch has been profiled.
  struct DeviceBatchingInfo {
    bool enabled = false;
    uint64_t batch_size = 0;       // configured DEEPLENS_DEVICE_BATCH_SIZE
    double overhead_ms = 0.0;      // fixed per-invocation cost
    double marginal_ms = 0.0;      // per-patch marginal cost
    double mean_items = 0.0;       // observed batch occupancy
    double amortized_speedup = 0.0;  // single-item / per-patch batched
  };
  DeviceBatchingInfo device_batching;
  /// Whole-batch device invocations the former has flushed and the
  /// patches they covered (database-wide running totals; filled by
  /// Session::Explain).
  uint64_t device_batches_formed = 0;
  uint64_t device_batched_patches = 0;
};

/// Similarity-join strategies (paper §5/§7.4).
enum class SimJoinStrategy {
  kNestedLoop = 0,  // baseline
  kBallTree = 1,    // on-the-fly index join
  kAllPairs = 2,    // dense device kernel (GPU/AVX)
};

const char* SimJoinStrategyName(SimJoinStrategy strategy);

/// Resolved DEEPLENS_CASCADE_THRESHOLD: minimum proxy-reject confidence
/// at which the planner's cascades skip the full model, in [0, 1].
/// 1.0 (the default) disables cascades entirely — results are then
/// byte-identical to the exact plan.
double CascadeThresholdFromEnv();

/// Resolved DEEPLENS_PLAN_CACHE_ENTRIES: LRU capacity of the memoized
/// plan cache. 0 disables memoization. Default 128.
uint64_t PlanCacheEntriesFromEnv();

/// A fully planned scan: the explanation plus the predicate to actually
/// execute (conjuncts reordered by estimated cost-per-surviving-row,
/// expensive proxy-capable conjuncts optionally wrapped in cascades).
/// Reordering never changes the result set — AND is commutative and both
/// the index path and the morsel driver's ordered merge preserve source
/// row order — though when several conjuncts would *error* on the same
/// row, which error surfaces first follows the executed order.
struct ScanPlan {
  PlanExplanation explanation;
  /// Predicate to evaluate (null when the scan has none). Equals the
  /// source predicate when the optimizer changed nothing.
  ExprPtr exec_predicate;
  /// Shared counters of every cascade in exec_predicate; null when no
  /// cascade was inserted. Execution fills them; FinalizeScanPlan copies
  /// them into the explanation.
  std::shared_ptr<CascadeTelemetry> telemetry;
};

/// \brief The planner. Stateless; all inputs are explicit.
class Planner {
 public:
  /// Chooses an access path for `predicate` over `view` given the indexes
  /// that exist on it.
  static PlanExplanation PlanScan(const ViewCache& view,
                                  const ExprPtr& predicate);

  /// Full planning: access path + cost-ranked conjunct order + cascade
  /// insertion + plan memoization. Plans for Database-registered views
  /// (version != 0) are memoized per (view version, predicate shape,
  /// cascade threshold) and replayed until the view changes or a UDF's
  /// observed runtime drifts beyond 2x from the memoized snapshot.
  static ScanPlan PlanScanFull(const ViewCache& view,
                               const ExprPtr& predicate);

  /// Copies a finished scan's cascade telemetry into its explanation and
  /// computes the audit-slice accuracy estimate.
  static void FinalizeScanPlan(ScanPlan* plan);

  /// Observability for the memoized-plan cache (process-wide totals).
  struct PlanCacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;  // drift-evicted entries
    uint64_t entries = 0;        // currently resident
  };
  static PlanCacheStats GetPlanCacheStats();

  /// Drops all memoized plans and zeroes the stats (test isolation).
  static void ResetPlanCacheForTest();

  /// Executes a scan with the chosen plan: index-driven candidate fetch,
  /// then residual predicate. Returns matching patches.
  static Result<PatchCollection> ExecuteScan(const ViewCache& view,
                                             const ExprPtr& predicate,
                                             PlanExplanation* explanation);

  // --- Aggregate scans (pre-merge pushdown) -----------------------------
  // The aggregate analogues of ExecuteScan: index-driven plans aggregate
  // over the candidate rows directly, and full scans run the aggregation
  // below the morsel driver's merge (exec/aggregates.h), so neither path
  // materializes the surviving patches just to reduce them.

  /// COUNT(*) of the rows matching `predicate`.
  static Result<uint64_t> ExecuteScanCount(const ViewCache& view,
                                           const ExprPtr& predicate,
                                           PlanExplanation* explanation);

  /// COUNT(DISTINCT key) of the rows matching `predicate`.
  static Result<uint64_t> ExecuteScanCountDistinct(
      const ViewCache& view, const std::string& key, const ExprPtr& predicate,
      PlanExplanation* explanation);

  /// Group-by `key` → count of the rows matching `predicate`.
  static Result<std::map<std::string, uint64_t>> ExecuteScanGroupCount(
      const ViewCache& view, const std::string& key, const ExprPtr& predicate,
      PlanExplanation* explanation);

  /// Earliest matching row with the minimal `order_key` value (the
  /// Query::FirstBy argmin).
  static Result<std::optional<Patch>> ExecuteScanMinBy(
      const ViewCache& view, const std::string& order_key,
      const ExprPtr& predicate, PlanExplanation* explanation);

  /// Explains an executed equality join from its stats: which core ran
  /// (radix vs shared-build), the per-phase timing breakdown, partition
  /// fan-out and skew — with the residual's NN-UDF/cache usage annotated
  /// like every other plan. Lets benchmarks and queries report *why* a
  /// parallel join was fast or slow without rebuilding the bench.
  static PlanExplanation ExplainJoin(const std::string& key,
                                     const ExprPtr& residual,
                                     const JoinStats& stats);

  /// Cost-model choice of similarity-join strategy. The Ball-Tree wins
  /// when the indexed side is large and dimensionality moderate; dense
  /// all-pairs wins on small inputs (index build overhead) or on a GPU
  /// with very large batches (paper §7.4.1-2: non-linear, data-dependent
  /// costs make this genuinely hard).
  /// `workers` discounts the pool-parallel strategies (tree build and
  /// probe are both morsel-parallel now; the dense device kernel is not
  /// pool-bound). The default of 1 keeps the historical single-threaded
  /// estimate; pass the live worker count for a plan-time choice.
  static SimJoinStrategy ChooseSimilarityJoin(size_t left_size,
                                              size_t right_size, size_t dim,
                                              bool gpu_available,
                                              size_t workers = 1);

  /// Estimated cost (abstract units) used by ChooseSimilarityJoin;
  /// exposed for the cost-model tests and Figure 7 analysis.
  static double EstimateSimJoinCost(SimJoinStrategy strategy,
                                    size_t left_size, size_t right_size,
                                    size_t dim, size_t workers = 1);
};

}  // namespace deeplens
