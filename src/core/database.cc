#include "core/database.h"

#include "cache/persistent_cache.h"
#include "common/clock.h"
#include "common/logging.h"
#include "core/session.h"

namespace deeplens {

namespace {

// Process-global view-version source. Monotone and never reused, so a
// memoized plan keyed by (version, shape) can never match a view that was
// re-registered — even under the same name with identical contents but a
// different index set.
uint64_t NextViewVersion() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Database::Database(std::string root)
    : root_(std::move(root)), depth_(nn::kFocalTimesHeight) {
  ConfigureCaches(CacheConfig::FromEnv());
  ConfigureServing(ServingConfig::FromEnv());
}

void Database::ConfigureCaches(const CacheConfig& config) {
  // Staged patches hold raw pointers into the caches being replaced;
  // flush them out before retiring (holders stay safe either way via the
  // retired list, but teardown should not leave batches half-formed).
  batch_former_.Drain();
  if (inference_cache_) {
    // Raw-pointer holders (expressions, EtlOptions) keep the object
    // alive via the retired list, but Retire() drops its entries now so
    // a shrink actually releases memory — stragglers just miss. A
    // persistent instance also spills its working set and closes its
    // log here, so the successor can reopen the same spill file.
    inference_cache_->Retire();
    retired_inference_caches_.push_back(std::move(inference_cache_));
  }
  if (segment_cache_) segment_cache_->Clear();
  cache_config_ = config;
  const size_t shards = config.ResolvedShards();
  if (!config.cache_dir.empty()) {
    auto persistent = PersistentInferenceCache::Open(
        config.cache_dir, config.inference_budget(), shards,
        config.admission);
    if (persistent.ok()) {
      inference_cache_ = std::move(*persistent);
    } else {
      DL_LOG(kWarn) << "persistent inference cache at '" << config.cache_dir
                    << "' unavailable (" << persistent.status().ToString()
                    << "); falling back to in-memory caching";
    }
  }
  if (!inference_cache_) {
    inference_cache_ = std::make_unique<InferenceCache>(
        config.inference_budget(), shards, config.admission);
  }
  inference_cache_->set_inflight(&inflight_);
  inference_cache_->set_batch_former(&batch_former_);
  {
    // Tenant partitions were sized against the old budget; retire them
    // (raw-pointer holders stay safe) and let sessions rebuild lazily.
    std::lock_guard<std::mutex> lock(tenant_mu_);
    for (auto& entry : tenant_caches_) {
      entry.second->Retire();
      retired_inference_caches_.push_back(std::move(entry.second));
    }
    tenant_caches_.clear();
  }
  // Readers from LoadVideo() co-own the old instance; dropping our
  // reference here retires it once the last reader goes away.
  segment_cache_ = std::make_shared<SegmentCache>(config.segment_budget(),
                                                  shards, config.admission);
}

void Database::ConfigureServing(const ServingConfig& config) {
  serving_config_ = config;
  admission_gate_.Configure(config.max_concurrent_queries,
                            config.admission_wait_ms);
  // Configure drains staged patches under the old policy first, so no
  // session is left waiting on a batch sized for a config that no longer
  // exists.
  batch_former_.Configure(
      BatchFormerConfig{config.device_batch_size, config.batch_wait_us});
  // Budgets re-partition under the new weights: retire existing tenant
  // partitions so the next CreateSession rebuilds them.
  std::lock_guard<std::mutex> lock(tenant_mu_);
  for (auto& entry : tenant_caches_) {
    entry.second->Retire();
    retired_inference_caches_.push_back(std::move(entry.second));
  }
  tenant_caches_.clear();
}

InferenceCache* Database::TenantInferenceCache(const std::string& tenant) {
  if (tenant.empty()) return inference_cache_.get();
  std::lock_guard<std::mutex> lock(tenant_mu_);
  auto it = tenant_caches_.find(tenant);
  if (it == tenant_caches_.end()) {
    auto cache = std::make_unique<InferenceCache>(
        serving_config_.TenantCacheBudget(tenant,
                                          cache_config_.inference_budget()),
        cache_config_.ResolvedShards(), cache_config_.admission);
    cache->set_inflight(&inflight_);
    cache->set_batch_former(&batch_former_);
    it = tenant_caches_.emplace(tenant, std::move(cache)).first;
  }
  return it->second.get();
}

Session Database::CreateSession(const std::string& tenant) {
  return Session(this, tenant, serving_config_.WeightFor(tenant),
                 TenantInferenceCache(tenant));
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& root) {
  auto db = std::unique_ptr<Database>(new Database(root));
  DL_RETURN_NOT_OK(CreateDirs(root));
  DL_RETURN_NOT_OK(CreateDirs(root + "/videos"));
  DL_RETURN_NOT_OK(CreateDirs(root + "/views"));
  DL_ASSIGN_OR_RETURN(db->catalog_, Catalog::Open(root));
  return db;
}

std::string Database::VideoPath(const std::string& name) const {
  return root_ + "/videos/" + name;
}

std::string Database::ViewPath(const std::string& name) const {
  return root_ + "/views/" + name;
}

EtlOptions Database::MakeEtlOptions(const std::string& dataset_name,
                                    nn::Device* device) {
  EtlOptions options;
  options.device = device;
  options.dataset_name = dataset_name;
  options.lineage = &lineage_;
  options.id_counter = &id_counter_;
  options.inference_cache = inference_cache_.get();
  return options;
}

Status Database::IngestVideo(const std::string& name, FrameIterator frames,
                             const VideoStoreOptions& options,
                             const std::string& description) {
  DL_ASSIGN_OR_RETURN(auto writer,
                      CreateVideoWriter(VideoPath(name), options));
  int count = 0;
  while (true) {
    DL_ASSIGN_OR_RETURN(auto frame, frames());
    if (!frame.has_value()) break;
    DL_RETURN_NOT_OK(writer->AddFrame(frame->second));
    ++count;
  }
  DL_RETURN_NOT_OK(writer->Finish());
  DatasetInfo info;
  info.name = name;
  info.path = VideoPath(name);
  info.format = options.format;
  info.num_items = count;
  info.description = description;
  return catalog_->Register(info);
}

Result<std::shared_ptr<VideoReader>> Database::LoadVideo(
    const std::string& name) {
  DL_ASSIGN_OR_RETURN(DatasetInfo info, catalog_->Lookup(name));
  DL_ASSIGN_OR_RETURN(auto reader,
                      OpenVideo(info.path, segment_cache_.get()));
  // The deleter co-owns the segment cache so the reader's raw pointer
  // stays valid however long the caller keeps the reader.
  std::shared_ptr<SegmentCache> cache = segment_cache_;
  return std::shared_ptr<VideoReader>(
      reader.release(), [cache](VideoReader* r) { delete r; });
}

Status Database::RegisterView(const std::string& name,
                              PatchCollection patches) {
  ViewCache& view = views_[name];
  view.patches = std::move(patches);
  view.columnar.reset();
  view.hash_indexes.clear();
  view.btree_indexes.clear();
  view.feature_index.reset();
  view.bbox_index.reset();
  view.version = NextViewVersion();
  return Status::OK();
}

Status Database::RegisterView(const std::string& name, BatchIterator* it) {
  DL_ASSIGN_OR_RETURN(PatchCollection patches, CollectBatchPatches(it));
  return RegisterView(name, std::move(patches));
}

Status Database::RegisterView(const std::string& name, PatchIterator* it) {
  auto batched = TupleToBatch(it);
  return RegisterView(name, batched.get());
}

Result<ViewCache*> Database::GetView(const std::string& name) {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  return &it->second;
}

Status Database::PersistView(const std::string& name) {
  DL_ASSIGN_OR_RETURN(ViewCache * view, GetView(name));
  // An attached view's rows already live in the file it streams from;
  // re-persisting from its (empty) resident collection would truncate it.
  if (view->disk_backed()) return Status::OK();
  DL_RETURN_NOT_OK(RemoveFileIfExists(ViewPath(name)));
  DL_ASSIGN_OR_RETURN(auto mat, MaterializedView::Open(ViewPath(name)));
  for (const Patch& p : view->patches) {
    DL_RETURN_NOT_OK(mat->Append(p));
  }
  return mat->Flush();
}

Status Database::LoadPersistedView(const std::string& name) {
  DL_ASSIGN_OR_RETURN(auto mat, MaterializedView::Open(ViewPath(name)));
  DL_ASSIGN_OR_RETURN(PatchCollection patches, mat->LoadAll());
  // Re-register lineage for loaded patches so backtraces work across
  // process restarts.
  for (const Patch& p : patches) lineage_.Record(p);
  return RegisterView(name, std::move(patches));
}

bool Database::HasPersistedView(const std::string& name) const {
  return FileExists(ViewPath(name));
}

Status Database::AttachPersistedView(const std::string& name) {
  DL_ASSIGN_OR_RETURN(auto mat, MaterializedView::Open(ViewPath(name)));
  if (mat->format() == MaterializedView::Format::kLegacy) {
    // Legacy log files have no chunk catalog to stream from; loading
    // them resident keeps the attach call working on old databases.
    return LoadPersistedView(name);
  }
  DL_ASSIGN_OR_RETURN(auto reader, mat->OpenReader());
  ViewCache& view = views_[name];
  view.patches.clear();
  view.columnar = std::move(reader);
  view.hash_indexes.clear();
  view.btree_indexes.clear();
  view.feature_index.reset();
  view.bbox_index.reset();
  view.version = NextViewVersion();
  return Status::OK();
}

Result<IndexStats> Database::BuildIndex(const std::string& view_name,
                                        IndexKind kind,
                                        const std::string& meta_key) {
  DL_ASSIGN_OR_RETURN(ViewCache * view, GetView(view_name));
  Stopwatch timer;
  IndexStats stats;
  switch (kind) {
    case IndexKind::kHash: {
      if (meta_key.empty()) {
        return Status::InvalidArgument("hash index needs a meta key");
      }
      HashIndex index;
      for (size_t i = 0; i < view->patches.size(); ++i) {
        index.Insert(
            Slice(view->patches[i].meta().Get(meta_key).ToIndexKey()),
            static_cast<RowId>(i));
      }
      stats = index.Stats();
      view->hash_indexes[meta_key] = std::move(index);
      break;
    }
    case IndexKind::kBPlusTree: {
      if (meta_key.empty()) {
        return Status::InvalidArgument("b+tree index needs a meta key");
      }
      BPlusTree index;
      for (size_t i = 0; i < view->patches.size(); ++i) {
        index.Insert(
            Slice(view->patches[i].meta().Get(meta_key).ToIndexKey()),
            static_cast<RowId>(i));
      }
      stats = index.Stats();
      view->btree_indexes[meta_key] = std::move(index);
      break;
    }
    case IndexKind::kBallTree: {
      size_t dim = 0;
      for (const Patch& p : view->patches) {
        if (!p.has_features()) {
          return Status::InvalidArgument(
              "ball-tree index needs featurized patches");
        }
        if (dim == 0) dim = static_cast<size_t>(p.features().size());
      }
      if (dim == 0) {
        return Status::InvalidArgument("view is empty or feature-less");
      }
      std::vector<float> points(view->patches.size() * dim);
      for (size_t i = 0; i < view->patches.size(); ++i) {
        const float* f = view->patches[i].features().data();
        std::copy(f, f + dim,
                  points.begin() + static_cast<ptrdiff_t>(i * dim));
      }
      auto tree = std::make_unique<BallTree>();
      DL_RETURN_NOT_OK(tree->Build(std::move(points), dim, {}));
      stats = tree->Stats();
      view->feature_index = std::move(tree);
      break;
    }
    case IndexKind::kRTree: {
      auto tree = std::make_unique<RTree>();
      for (size_t i = 0; i < view->patches.size(); ++i) {
        const nn::BBox& b = view->patches[i].bbox();
        tree->Insert(
            Rect{static_cast<float>(b.x0), static_cast<float>(b.y0),
                 static_cast<float>(b.x1), static_cast<float>(b.y1)},
            static_cast<RowId>(i));
      }
      stats = tree->Stats();
      view->bbox_index = std::move(tree);
      break;
    }
    default:
      return Status::NotImplemented(
          std::string("index kind not buildable via Database: ") +
          IndexKindName(kind));
  }
  stats.build_millis = timer.ElapsedMillis();
  // A new index changes which access paths exist, so memoized plans for
  // the previous version must re-plan.
  view->version = NextViewVersion();
  DL_LOG(kInfo) << "built " << IndexKindName(kind) << " index on '"
                << view_name << "." << meta_key << "' ("
                << stats.num_entries << " entries, "
                << stats.build_millis << " ms)";
  return stats;
}

Status Database::DropIndexes(const std::string& view_name) {
  DL_ASSIGN_OR_RETURN(ViewCache * view, GetView(view_name));
  view->hash_indexes.clear();
  view->btree_indexes.clear();
  view->feature_index.reset();
  view->bbox_index.reset();
  // Index availability shapes plans, so a memoized plan for the old
  // index set must not be replayed against the stripped view.
  view->version = NextViewVersion();
  return Status::OK();
}

}  // namespace deeplens
