// The Patch abstract data type — the paper's "narrow waist" (§2.1/§2.2):
//   Patch(ImgRef, Data, MetaData)
// Data is pixel content (Image) and/or a featurized dense vector (Tensor);
// MetaData is a typed key-value dictionary; ImgRef is the lineage
// descriptor chaining the patch back to its source image and any parent
// patches it was derived from.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/value.h"
#include "nn/domain.h"
#include "tensor/tensor.h"

namespace deeplens {

/// Globally unique patch identifier within a Database instance.
using PatchId = uint64_t;
inline constexpr PatchId kInvalidPatchId = 0;

/// \brief Lineage descriptor: which dataset/frame produced this patch and
/// (for derived patches) the parent patch it was transformed from.
/// Operators are required to preserve/extend this chain (paper §2.2/§5.1).
struct ImgRef {
  std::string dataset;          // source dataset name ("" = unknown)
  int64_t frameno = -1;         // source frame / image number
  PatchId parent = kInvalidPatchId;  // immediate parent patch

  bool operator==(const ImgRef& o) const {
    return dataset == o.dataset && frameno == o.frameno &&
           parent == o.parent;
  }
};

/// \brief A featurized sub-image and its metadata. Copies are cheap-ish
/// (images/tensors share buffers where possible); treat as a value type.
class Patch {
 public:
  Patch() = default;
  // Hand-written only because of the fingerprint memo (std::atomic is
  // not copyable); behaves exactly like the defaulted operations.
  Patch(const Patch& o);
  Patch& operator=(const Patch& o);
  Patch(Patch&& o) noexcept;
  Patch& operator=(Patch&& o) noexcept;

  PatchId id() const { return id_; }
  void set_id(PatchId id) { id_ = id; }

  const ImgRef& ref() const { return ref_; }
  ImgRef& mutable_ref() { return ref_; }
  void set_ref(ImgRef ref) { ref_ = std::move(ref); }

  /// Pixel content (may be empty when only features are kept — the
  /// "pre-compressed to features" representation of §1).
  const Image& pixels() const { return pixels_; }
  void set_pixels(Image img) {
    pixels_ = std::move(img);
    fingerprint_memo_.store(0, std::memory_order_relaxed);
  }
  bool has_pixels() const { return !pixels_.empty(); }

  /// Feature vector (may be empty before a Transformer runs).
  const Tensor& features() const { return features_; }
  void set_features(Tensor t) { features_ = std::move(t); }
  bool has_features() const { return !features_.empty(); }

  /// Location of this patch in the source frame.
  const nn::BBox& bbox() const { return bbox_; }
  void set_bbox(nn::BBox b) {
    bbox_ = b;
    fingerprint_memo_.store(0, std::memory_order_relaxed);
  }

  const MetaDict& meta() const { return meta_; }
  MetaDict& mutable_meta() { return meta_; }

  /// Stable 64-bit content fingerprint: FNV-1a over the pixel bytes,
  /// image geometry (width/height/channels), and the bounding box — the
  /// inputs a model actually consumes. Deliberately independent of id,
  /// lineage, features, and the metadata dictionary, which operators
  /// rewrite without changing what inference would see. This is the
  /// cache-key primitive of the inference cache (cache/inference_cache.h).
  ///
  /// Memoized: the first call hashes the pixels, later calls are a
  /// relaxed atomic load (the batch expression path asks once per UDF
  /// conjunct per query). set_pixels/set_bbox invalidate the memo;
  /// concurrent calls from morsel workers benignly recompute the same
  /// value.
  uint64_t Fingerprint() const;

  /// Serialization for materialization. Pixel payloads are stored raw;
  /// use Transformer-level compression for smaller footprints.
  void SerializeInto(ByteBuffer* out) const;
  static Result<Patch> Deserialize(ByteReader* reader);

 private:
  PatchId id_ = kInvalidPatchId;
  ImgRef ref_;
  Image pixels_;
  Tensor features_;
  nn::BBox bbox_;
  MetaDict meta_;
  // 0 = not yet computed (a real fingerprint of 0 is remapped).
  mutable std::atomic<uint64_t> fingerprint_memo_{0};
};

/// FNV-1a fingerprint of a bare image (geometry + pixel bytes); the
/// frame-level analogue of Patch::Fingerprint, used to memoize detector
/// runs over whole frames.
uint64_t ImageFingerprint(const Image& img);

/// Operators consume/produce tuples of patches (paper §2.2:
/// Operator(Iterator<Tuple<Patch>> in, Iterator<Tuple<Patch>> out)).
/// Single-relation operators use 1-tuples; joins produce wider tuples.
using PatchTuple = std::vector<Patch>;

/// A fully materialized collection (used at API boundaries; operators
/// stream internally).
using PatchCollection = std::vector<Patch>;

/// Common metadata keys produced by the built-in generators/transformers.
namespace meta_keys {
inline constexpr const char* kLabel = "label";
inline constexpr const char* kScore = "score";
inline constexpr const char* kFrameNo = "frameno";
inline constexpr const char* kDataset = "dataset";
inline constexpr const char* kText = "text";
inline constexpr const char* kDepth = "depth";
inline constexpr const char* kPatchId = "pid";
inline constexpr const char* kBoxX0 = "x0";
inline constexpr const char* kBoxY0 = "y0";
inline constexpr const char* kBoxX1 = "x1";
inline constexpr const char* kBoxY1 = "y1";
}  // namespace meta_keys

}  // namespace deeplens
