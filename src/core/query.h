// Fluent query API over Database views: the declarative surface a
// DeepLens application programs against. Plans are produced by the
// Planner; Explain() exposes the chosen physical plan.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/database.h"
#include "core/planner.h"

namespace deeplens {

/// \brief One relational query over a view.
///
///   auto n = Query(db, "traffic")
///                .Where(Eq(Attr("label"), Lit("car")))
///                .CountDistinct("frameno");
class Query {
 public:
  Query(Database* db, std::string view);

  /// Adds a conjunct to the WHERE clause.
  Query& Where(ExprPtr predicate);

  /// Validates predicates against this schema before execution
  /// (paper §4.2); errors surface from the terminal call.
  Query& CheckSchema(PatchSchema schema);

  /// Caps the result size.
  Query& Limit(size_t limit);

  // --- Terminals --------------------------------------------------------

  /// Runs the plan and returns matching patches.
  Result<PatchCollection> Execute();

  // Aggregate terminals are pushed into the scan: on a full-scan plan the
  // reduction runs below the morsel driver's ordered merge (per-worker
  // partial aggregates), so matching patches are never materialized.
  Result<uint64_t> Count();
  Result<uint64_t> CountDistinct(const std::string& key);
  Result<std::map<std::string, uint64_t>> GroupCount(const std::string& key);

  /// First match when ordered ascending by `order_key` (q5's "first image
  /// containing the string").
  Result<std::optional<Patch>> FirstBy(const std::string& order_key);

  /// The physical plan the planner would choose right now.
  Result<PlanExplanation> Explain();

 private:
  Result<PatchCollection> Run(PlanExplanation* explanation);
  Status ValidatePredicate() const;
  ExprPtr CombinedPredicate() const;

  Database* db_;
  std::string view_;
  ExprPtr predicate_;  // conjunction of all Where() calls
  std::optional<PatchSchema> schema_;
  std::optional<size_t> limit_;
};

}  // namespace deeplens
