#include "core/query.h"

#include <unordered_set>

namespace deeplens {

Query::Query(Database* db, std::string view)
    : db_(db), view_(std::move(view)) {}

Query& Query::Where(ExprPtr predicate) {
  predicate_ = predicate_ ? And(std::move(predicate_), std::move(predicate))
                          : std::move(predicate);
  return *this;
}

Query& Query::CheckSchema(PatchSchema schema) {
  schema_ = std::move(schema);
  return *this;
}

Query& Query::Limit(size_t limit) {
  limit_ = limit;
  return *this;
}

ExprPtr Query::CombinedPredicate() const { return predicate_; }

Status Query::ValidatePredicate() const {
  if (schema_.has_value() && predicate_) {
    DL_RETURN_NOT_OK(predicate_->Validate({*schema_}));
  }
  return Status::OK();
}

Result<PatchCollection> Query::Run(PlanExplanation* explanation) {
  DL_RETURN_NOT_OK(ValidatePredicate());
  DL_ASSIGN_OR_RETURN(ViewCache * view, db_->GetView(view_));
  DL_ASSIGN_OR_RETURN(PatchCollection out,
                      Planner::ExecuteScan(*view, predicate_, explanation));
  if (limit_.has_value() && out.size() > *limit_) {
    out.resize(*limit_);
  }
  return out;
}

Result<PatchCollection> Query::Execute() { return Run(nullptr); }

// The aggregate terminals push the reduction into the scan
// (Planner::ExecuteScan* → exec/aggregates.h), so full scans aggregate
// below the morsel driver's merge and never materialize survivors. A
// Limit() changes which rows the aggregate sees, so limited queries keep
// the materializing path.

Result<uint64_t> Query::Count() {
  if (limit_.has_value()) {
    DL_ASSIGN_OR_RETURN(PatchCollection out, Run(nullptr));
    return static_cast<uint64_t>(out.size());
  }
  DL_RETURN_NOT_OK(ValidatePredicate());
  DL_ASSIGN_OR_RETURN(ViewCache * view, db_->GetView(view_));
  return Planner::ExecuteScanCount(*view, predicate_, nullptr);
}

Result<uint64_t> Query::CountDistinct(const std::string& key) {
  if (limit_.has_value()) {
    DL_ASSIGN_OR_RETURN(PatchCollection out, Run(nullptr));
    std::unordered_set<std::string> seen;
    for (const Patch& p : out) {
      seen.insert(p.meta().Get(key).ToIndexKey());
    }
    return static_cast<uint64_t>(seen.size());
  }
  DL_RETURN_NOT_OK(ValidatePredicate());
  DL_ASSIGN_OR_RETURN(ViewCache * view, db_->GetView(view_));
  return Planner::ExecuteScanCountDistinct(*view, key, predicate_, nullptr);
}

Result<std::map<std::string, uint64_t>> Query::GroupCount(
    const std::string& key) {
  if (limit_.has_value()) {
    DL_ASSIGN_OR_RETURN(PatchCollection out, Run(nullptr));
    std::map<std::string, uint64_t> groups;
    for (const Patch& p : out) {
      ++groups[p.meta().Get(key).ToDisplayString()];
    }
    return groups;
  }
  DL_RETURN_NOT_OK(ValidatePredicate());
  DL_ASSIGN_OR_RETURN(ViewCache * view, db_->GetView(view_));
  return Planner::ExecuteScanGroupCount(*view, key, predicate_, nullptr);
}

Result<std::optional<Patch>> Query::FirstBy(const std::string& order_key) {
  if (limit_.has_value()) {
    DL_ASSIGN_OR_RETURN(PatchCollection out, Run(nullptr));
    const Patch* best = nullptr;
    for (const Patch& p : out) {
      if (best == nullptr ||
          p.meta().Get(order_key) < best->meta().Get(order_key)) {
        best = &p;
      }
    }
    if (best == nullptr) return std::optional<Patch>();
    return std::optional<Patch>(*best);
  }
  DL_RETURN_NOT_OK(ValidatePredicate());
  DL_ASSIGN_OR_RETURN(ViewCache * view, db_->GetView(view_));
  return Planner::ExecuteScanMinBy(*view, order_key, predicate_, nullptr);
}

Result<PlanExplanation> Query::Explain() {
  DL_ASSIGN_OR_RETURN(ViewCache * view, db_->GetView(view_));
  return Planner::PlanScan(*view, predicate_);
}

}  // namespace deeplens
