#include "core/types.h"

namespace deeplens {

PatchSchema& PatchSchema::AddAttribute(AttributeSpec spec) {
  attrs_[spec.name] = std::move(spec);
  return *this;
}

bool PatchSchema::HasAttribute(const std::string& name) const {
  return attrs_.find(name) != attrs_.end();
}

const AttributeSpec* PatchSchema::FindAttribute(
    const std::string& name) const {
  auto it = attrs_.find(name);
  return it == attrs_.end() ? nullptr : &it->second;
}

namespace {
bool TypesCompatible(ValueType declared, ValueType actual) {
  if (declared == actual) return true;
  // Numeric widening int → float is allowed in predicates.
  if (declared == ValueType::kFloat && actual == ValueType::kInt) {
    return true;
  }
  if (declared == ValueType::kInt && actual == ValueType::kFloat) {
    return true;
  }
  return false;
}
}  // namespace

Status PatchSchema::ValidatePredicate(const std::string& attr,
                                      const MetaValue& value) const {
  const AttributeSpec* spec = FindAttribute(attr);
  if (spec == nullptr) {
    return Status::TypeError("attribute '" + attr +
                             "' is not produced by this pipeline");
  }
  if (!value.is_null() && !TypesCompatible(spec->type, value.type())) {
    return Status::TypeError(
        "predicate on '" + attr + "' compares " +
        ValueTypeName(spec->type) + " with " + ValueTypeName(value.type()));
  }
  if (!spec->domain.empty() && value.type() == ValueType::kString) {
    const std::string& s = *value.AsString().value();
    if (spec->domain.find(s) == spec->domain.end()) {
      return Status::TypeError(
          "label '" + s + "' can never be produced for attribute '" + attr +
          "' (closed domain)");
    }
  }
  return Status::OK();
}

Status PatchSchema::ValidateConsumer(const PatchSchema& required) const {
  for (const auto& [name, spec] : required.attributes()) {
    const AttributeSpec* have = FindAttribute(name);
    if (have == nullptr) {
      return Status::TypeError("consumer requires attribute '" + name +
                               "' which the producer does not emit");
    }
    if (!TypesCompatible(have->type, spec.type)) {
      return Status::TypeError(
          "attribute '" + name + "' type mismatch: producer " +
          ValueTypeName(have->type) + ", consumer " +
          ValueTypeName(spec.type));
    }
  }
  if (required.width() > 0 && width_ > 0 &&
      (required.width() != width_ || required.height() != height_)) {
    return Status::TypeError("consumer requires a different resolution");
  }
  return Status::OK();
}

Result<PatchSchema> PatchSchema::Join(const PatchSchema& left,
                                      const PatchSchema& right) {
  PatchSchema out = left;
  for (const auto& [name, spec] : right.attributes()) {
    const AttributeSpec* existing = out.FindAttribute(name);
    if (existing != nullptr && !TypesCompatible(existing->type, spec.type)) {
      return Status::TypeError("join schemas conflict on attribute '" +
                               name + "'");
    }
    if (existing == nullptr) {
      out.AddAttribute(spec);
    }
  }
  return out;
}

std::string PatchSchema::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, spec] : attrs_) {
    if (!first) out += ", ";
    first = false;
    out += name;
    out += ":";
    out += ValueTypeName(spec.type);
    if (!spec.domain.empty()) {
      out += "[";
      bool f2 = true;
      for (const auto& d : spec.domain) {
        if (!f2) out += "|";
        f2 = false;
        out += d;
      }
      out += "]";
    }
  }
  out += "}";
  return out;
}

}  // namespace deeplens
