#include "core/cost_model.h"

namespace deeplens {

namespace {

// FNV-1a over a byte string; stable across runs so profiles recorded by
// one query rank the next one's identical shapes.
uint64_t Fnv1a(const std::string& s, uint64_t h = 14695981039346656037ull) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

uint64_t ConjunctShapeFingerprint(const ExprPtr& conjunct) {
  if (!conjunct) return 0;
  int op = 0;
  size_t slot = 0;
  std::string key;
  MetaValue value;
  if (conjunct->AsAttrCmpLit(&op, &slot, &key, &value)) {
    // Literal-abstracted: "age > 10" and "age > 90" pool their
    // selectivity. Good for the common parameterized-query case; a zone
    // map refines the estimate per-literal at plan time when available.
    std::string shape = "attr:";
    shape += std::to_string(op);
    shape += ':';
    shape += std::to_string(slot);
    shape += ':';
    shape += key;
    return Fnv1a(shape);
  }
  return Fnv1a(conjunct->ToString());
}

CostModel* CostModel::Global() {
  static CostModel* model = new CostModel();  // leaky: see header
  return model;
}

void CostModel::RecordUdfEval(const std::string& model, bool cache_hit,
                              double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  UdfCostProfile& p = udf_[model];
  double& ewma = cache_hit ? p.hit_ms : p.miss_ms;
  uint64_t& n = cache_hit ? p.hit_samples : p.miss_samples;
  ewma = n == 0 ? ms : ewma + kEwmaAlpha * (ms - ewma);
  ++n;
}

std::optional<UdfCostProfile> CostModel::UdfProfile(
    const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = udf_.find(model);
  if (it == udf_.end()) return std::nullopt;
  return it->second;
}

double CostModel::ExpectedUdfMs(const std::string& model,
                                double hit_rate) const {
  UdfCostProfile p;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = udf_.find(model);
    if (it != udf_.end()) p = it->second;
  }
  const double hit_ms = p.hit_samples > 0 ? p.hit_ms : kDefaultHitMs;
  const double miss_ms = p.miss_samples > 0 ? p.miss_ms : kDefaultMissMs;
  const double hr = hit_rate < 0.0 ? 0.0 : (hit_rate > 1.0 ? 1.0 : hit_rate);
  return hit_ms * hr + miss_ms * (1.0 - hr);
}

void CostModel::RecordDeviceBatch(const std::string& model, uint64_t items,
                                  double ms) {
  if (items == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  DeviceBatchProfile& p = device_batch_[model];
  p.invocation_ms =
      p.invocations == 0 ? ms : p.invocation_ms + kEwmaAlpha * (ms - p.invocation_ms);
  const double n = static_cast<double>(items);
  p.mean_items =
      p.invocations == 0 ? n : p.mean_items + kEwmaAlpha * (n - p.mean_items);
  ++p.invocations;
  if (items == 1) {
    p.single_ms = p.single_invocations == 0
                      ? ms
                      : p.single_ms + kEwmaAlpha * (ms - p.single_ms);
    ++p.single_invocations;
  }
}

std::optional<DeviceBatchProfile> CostModel::DeviceBatch(
    const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = device_batch_.find(model);
  if (it == device_batch_.end()) return std::nullopt;
  return it->second;
}

std::optional<BatchCostEstimate> CostModel::EstimateBatchCost(
    const std::string& model) const {
  DeviceBatchProfile p;
  double unbatched_miss_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = device_batch_.find(model);
    if (it == device_batch_.end() || it->second.invocations == 0) {
      return std::nullopt;
    }
    p = it->second;
    auto udf = udf_.find(model);
    if (udf != udf_.end() && udf->second.miss_samples > 0) {
      unbatched_miss_ms = udf->second.miss_ms;
    }
  }
  BatchCostEstimate est;
  est.mean_items = p.mean_items < 1.0 ? 1.0 : p.mean_items;
  // The single-item reference: a flushed batch of one when we have seen
  // one (same code path, so overhead is directly comparable), else the
  // unbatched miss EWMA.
  const double single =
      p.single_invocations > 0 ? p.single_ms : unbatched_miss_ms;
  if (est.mean_items > 1.25 && single > 0.0) {
    // Two-point fit: invocation_ms ≈ overhead + marginal·mean_items and
    // single ≈ overhead + marginal, solved for the marginal slope.
    est.marginal_ms = (p.invocation_ms - single) / (est.mean_items - 1.0);
    if (est.marginal_ms < 0.0) est.marginal_ms = 0.0;
    est.overhead_ms = single - est.marginal_ms;
    if (est.overhead_ms < 0.0) est.overhead_ms = 0.0;
  } else {
    // No occupancy spread yet: report the invocation cost as all
    // marginal (no decomposition evidence).
    est.marginal_ms = p.invocation_ms / est.mean_items;
    est.overhead_ms = single > est.marginal_ms ? single - est.marginal_ms : 0.0;
  }
  const double per_item = p.invocation_ms / est.mean_items;
  if (single > 0.0 && per_item > 0.0) {
    est.amortized_speedup = single / per_item;
  }
  return est;
}

void CostModel::RecordSelectivity(uint64_t shape_fp, uint64_t evaluated,
                                  uint64_t passed) {
  if (evaluated == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  SelectivityCounts& c = selectivity_[shape_fp];
  c.evaluated += evaluated;
  c.passed += passed;
}

double CostModel::Selectivity(uint64_t shape_fp, double fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = selectivity_.find(shape_fp);
  if (it == selectivity_.end() ||
      it->second.evaluated < kMinSelectivitySamples) {
    return fallback;
  }
  return static_cast<double>(it->second.passed) /
         static_cast<double>(it->second.evaluated);
}

void CostModel::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  udf_.clear();
  device_batch_.clear();
  selectivity_.clear();
}

}  // namespace deeplens
