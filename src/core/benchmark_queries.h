// The six-query benchmark of paper §6.2, implemented against the public
// Database API. Every query has a baseline (BL: no indexes, nested-loop /
// full-scan plans) and an optimized (DL: hand-tuned physical design)
// implementation, so Figures 4/5/8 and Table 1 can be regenerated.
#pragma once

#include <memory>
#include <string>

#include "core/database.h"
#include "core/query.h"
#include "sim/accuracy.h"
#include "sim/datasets.h"

namespace deeplens {
namespace bench {

/// Dataset scales + ETL device for one workload instantiation.
struct WorkloadConfig {
  sim::TrafficCamConfig traffic;
  sim::FootballConfig football;
  sim::PcConfig pc;
  /// Feature options used by the matching queries (q1/q4).
  ColorHistogramOptions features;
  /// Similarity thresholds (calibrated on the synthetic corpora: q1
  /// duplicate pairs sit below ~0.02 feature distance while distinct
  /// images sit above ~0.09; q4 same-identity crops below ~0.15).
  float q1_max_distance = 0.06f;
  float q4_max_distance = 0.30f;
  /// q6 "behind" margin (meters).
  double q6_depth_margin = 2.0;
  /// q4/Table-1 detection filter: label == person AND score >= this.
  double q4_min_score = 0.30;

  WorkloadConfig() {
    features.bins = 16;
    features.grid = 2;
    // Laptop-scale defaults; PaperScale() on the sims restores the
    // paper's cardinalities.
    traffic.num_frames = 480;
    football.frames_per_video = 24;
    pc.num_images = 240;
    pc.num_duplicates = 24;
    pc.num_text_images = 40;
  }
};

/// Wall-clock breakdown of the ETL phase (paper's "ETL time").
struct EtlTimings {
  double traffic_ms = 0;
  double football_ms = 0;
  double pc_ms = 0;
  double total() const { return traffic_ms + football_ms + pc_ms; }
};

/// Result of one query execution.
struct QueryRun {
  double millis = 0;
  uint64_t result_count = 0;
  std::string plan;
  /// Accuracy against ground truth where defined (negative = n/a).
  double precision = -1;
  double recall = -1;
};

/// Table-1 row: accuracy/runtime of a q4 plan order.
struct PlanAccuracy {
  double recall = 0;
  double precision = 0;
  double runtime_ms = 0;
};

/// \brief Owns the datasets, the Database, and the materialized ETL
/// products (as in-memory views), and implements q1–q6.
///
/// Views created by RunEtl():
///   "pc_images"        whole-image patches of PC, featurized
///   "pc_text"          OCR patches of PC
///   "traffic_dets"     all TinySSD detections on TrafficCam, featurized;
///                      person patches carry a "depth" prediction
///   "football_players" player detections on Football, featurized
///   "football_jerseys" OCR patches (jersey numbers) on Football
class BenchmarkWorkload {
 public:
  static Result<std::unique_ptr<BenchmarkWorkload>> Create(
      const std::string& root, WorkloadConfig config = WorkloadConfig());

  /// Runs the full ETL on `device` (null = vectorized CPU) and registers
  /// the views. Idempotent: re-running replaces the views.
  Status RunEtl(nn::Device* device = nullptr, EtlTimings* timings = nullptr);

  /// Builds the hand-tuned physical design (the "DL" configuration):
  /// hash(label), b+tree(frameno) on traffic; hash(text) on ocr views;
  /// ball-trees on the featurized views. Returns total build millis.
  Result<double> BuildOptimizedIndexes();

  /// Drops every index (the "BL" configuration).
  Status DropAllIndexes();

  // --- The benchmark queries -------------------------------------------
  Result<QueryRun> RunQ1(bool optimized);
  Result<QueryRun> RunQ2(bool optimized);
  Result<QueryRun> RunQ3(bool optimized);
  Result<QueryRun> RunQ4(bool optimized,
                         nn::Device* match_device = nullptr);
  Result<QueryRun> RunQ5(bool optimized);
  Result<QueryRun> RunQ6(bool optimized);
  /// Dispatch by query number 1..6.
  Result<QueryRun> RunQuery(int q, bool optimized);

  /// Table 1: q4 with filter-before-match vs match-before-filter.
  Result<PlanAccuracy> RunQ4PlanOrder(bool filter_first,
                                      nn::Device* match_device = nullptr);

  /// q2 count accuracy against simulation truth (Figure 2's accuracy
  /// axis): 1 - relative error of the vehicle-frame count.
  Result<double> Q2AccuracyFromView(const std::string& view_name);

  Database* db() { return db_.get(); }
  const WorkloadConfig& config() const { return config_; }
  const sim::TrafficCamSim& traffic() const { return traffic_; }
  const sim::FootballSim& football() const { return football_; }
  const sim::PcSim& pc() const { return pc_; }

  /// Global frame number for (video, frame) in the football dataset.
  static int64_t FootballFrameNo(int video, int frameno) {
    return static_cast<int64_t>(video) * 100000 + frameno;
  }

 private:
  BenchmarkWorkload(std::unique_ptr<Database> db, WorkloadConfig config)
      : config_(config),
        db_(std::move(db)),
        traffic_(config.traffic),
        football_(config.football),
        pc_(config.pc) {}

  /// Maps a traffic detection patch to its ground-truth object id
  /// (-1 when unmatched).
  int TruthObjectIdFor(const Patch& patch) const;

  WorkloadConfig config_;
  std::unique_ptr<Database> db_;
  sim::TrafficCamSim traffic_;
  sim::FootballSim football_;
  sim::PcSim pc_;
};

}  // namespace bench
}  // namespace deeplens
