// The DeepLens database facade: one object owning the catalog, the model
// zoo, tuple-level lineage, materialized views, and the index registry.
// This is the public entry point a downstream application uses.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache_config.h"
#include "cache/inference_cache.h"
#include "cache/inflight.h"
#include "cache/segment_cache.h"
#include "core/serving.h"
#include "exec/batch_former.h"
#include "etl/generators.h"
#include "etl/materialize.h"
#include "etl/transformers.h"
#include "exec/aggregates.h"
#include "exec/joins.h"
#include "index/balltree.h"
#include "index/btree.h"
#include "index/hash_index.h"
#include "index/rtree.h"
#include "lineage/lineage.h"
#include "storage/catalog.h"
#include "storage/storage_advisor.h"
#include "storage/video_store.h"

namespace deeplens {

class Session;  // core/session.h

/// \brief A queryable view: a patch collection plus the indexes built
/// over it. RowIds in the indexes are positions in `patches`.
///
/// Resident views hold their rows in `patches`. A view attached from a
/// columnar file (AttachPersistedView) instead holds a footer snapshot in
/// `columnar` with `patches` empty: the planner scans it chunk-at-a-time
/// with zone-map pruning and async decode-ahead rather than from memory.
/// In-memory indexes only ever cover `patches`, so attached views rely on
/// zone maps instead of BuildIndex.
struct ViewCache {
  PatchCollection patches;
  std::shared_ptr<columnar::ColumnarReader> columnar;  // disk-backed scan
  std::map<std::string, HashIndex> hash_indexes;     // by meta key
  std::map<std::string, BPlusTree> btree_indexes;    // by meta key
  std::unique_ptr<BallTree> feature_index;           // over features
  std::unique_ptr<RTree> bbox_index;                 // over bboxes

  /// Monotone cache-invalidation token for memoized plans (core/planner.h):
  /// bumped (process-globally, so re-registering a view never reuses a
  /// version) whenever the Database swaps this view's contents or mutates
  /// its index set. Hand-built ViewCaches keep version 0, which the plan
  /// cache treats as "never memoize".
  uint64_t version = 0;

  /// True when queries stream from the columnar file instead of RAM.
  bool disk_backed() const { return columnar != nullptr && patches.empty(); }
};

/// \brief DeepLens instance rooted at a directory.
class Database {
 public:
  /// Opens (creating directories as needed) a database at `root`.
  static Result<std::unique_ptr<Database>> Open(const std::string& root);

  const std::string& root() const { return root_; }
  Catalog* catalog() { return catalog_.get(); }
  LineageStore* lineage() { return &lineage_; }
  std::atomic<uint64_t>* id_counter() { return &id_counter_; }

  // --- Caches (inference memoization + decoded segments) ---------------
  // Sized by DEEPLENS_CACHE_MB (total budget split between the two;
  // 0 disables caching). With DEEPLENS_CACHE_DIR set, the inference
  // cache is persistent: NN UDF results spill to a crash-safe RecordStore
  // log in that directory, survive restarts, and warm-load on open (the
  // paper's materialized-UDF-view idea). Both caches are shared by every
  // query/ETL run against this database; morsel workers hit the shards
  // concurrently.
  InferenceCache* inference_cache() { return inference_cache_.get(); }
  SegmentCache* segment_cache() { return segment_cache_.get(); }
  const CacheConfig& cache_config() const { return cache_config_; }

  /// Re-sizes both caches (drops all cached entries; stats counters on
  /// the new instances start from zero). A retiring persistent inference
  /// cache spills its working set and closes its log first, so the new
  /// instance reopens the same spill file and warm-loads from it. Readers
  /// obtained from LoadVideo() before this call keep using the retired
  /// segment cache they co-own; reopen them to pick up the new one.
  /// Per-tenant partition caches are retired too (and lazily rebuilt
  /// against the new budget); recreate sessions to pick them up.
  void ConfigureCaches(const CacheConfig& config);

  // --- Multi-tenant serving (admission + fair share + dedup) ------------

  /// A tenant-scoped handle: queries run through Session::Run are
  /// admission-controlled, scheduled under the tenant's fair-share
  /// weight, and cached in the tenant's partition. An empty tenant name
  /// gives the anonymous session (weight 1, shared cache).
  Session CreateSession(const std::string& tenant = "");

  /// Replaces the serving policy (admission bound/wait + tenant
  /// weights). Existing per-tenant caches are retired so budgets
  /// re-partition under the new weights; sessions created before this
  /// call keep their old weight and retired cache — recreate them.
  void ConfigureServing(const ServingConfig& config);
  const ServingConfig& serving_config() const { return serving_config_; }

  AdmissionGate* admission_gate() { return &admission_gate_; }

  /// The database-wide singleflight table: installed on every inference
  /// cache (shared and per-tenant) so identical in-flight inferences
  /// dedup across tenants even when their caches are partitioned.
  InflightTable* inflight_table() { return &inflight_; }

  /// The database-wide cross-query batch former: like the inflight
  /// table, installed on every inference cache so concurrent sessions'
  /// distinct cache-miss patches amortize one device invocation.
  /// Configured from ServingConfig (DEEPLENS_DEVICE_BATCH_SIZE /
  /// DEEPLENS_BATCH_WAIT_US); disabled by default.
  BatchFormer* batch_former() { return &batch_former_; }

  /// `tenant`'s partitioned inference cache, created on first use with
  /// its weight-proportional slice of the configured inference budget
  /// (the shared cache for the empty tenant). Tenant partitions are
  /// in-memory: the persistent spill log stays with the shared cache.
  InferenceCache* TenantInferenceCache(const std::string& tenant);

  // --- Model zoo -------------------------------------------------------
  const nn::TinySsdDetector* detector() const { return &detector_; }
  const nn::TinyOcr* ocr() const { return &ocr_; }
  const nn::TinyDepth* depth_model() const { return &depth_; }

  /// EtlOptions wired to this database's lineage and id allocator.
  EtlOptions MakeEtlOptions(const std::string& dataset_name,
                            nn::Device* device = nullptr);

  // --- Video ingest / load (paper §3.1 Load API) -----------------------

  /// Stores a video under `name` with the chosen layout and registers it.
  Status IngestVideo(const std::string& name, FrameIterator frames,
                     const VideoStoreOptions& options,
                     const std::string& description = "");

  /// Opens a stored video by name (format-agnostic).
  Result<std::shared_ptr<VideoReader>> LoadVideo(const std::string& name);

  // --- Views (in-memory queryable patch collections) -------------------

  /// Registers an in-memory collection as view `name` (replacing any
  /// previous content and its indexes).
  Status RegisterView(const std::string& name, PatchCollection patches);

  /// Drains a batch iterator into view `name` (the native path).
  Status RegisterView(const std::string& name, BatchIterator* it);

  /// Drains a tuple iterator into view `name` by batching it through the
  /// vectorized engine.
  Status RegisterView(const std::string& name, PatchIterator* it);

  /// Fetches a view; NotFound if absent.
  Result<ViewCache*> GetView(const std::string& name);
  bool HasView(const std::string& name) const {
    return views_.find(name) != views_.end();
  }

  /// Persists a view to disk under `<root>/views/<name>` so later opens
  /// can LoadPersistedView() instead of re-running ETL.
  Status PersistView(const std::string& name);
  Status LoadPersistedView(const std::string& name);
  bool HasPersistedView(const std::string& name) const;

  /// Registers persisted view `name` as a disk-backed view: a columnar
  /// footer snapshot is attached and queries stream chunks (zone-map
  /// pruned, decode-ahead) instead of materializing the rows in RAM.
  /// Legacy-format files cannot stream, so they fall back to
  /// LoadPersistedView's full load.
  Status AttachPersistedView(const std::string& name);

  // --- Index management (paper §3.2) ------------------------------------

  /// Builds (or rebuilds) an index over `view`. For kHash/kBPlusTree pass
  /// the meta key; kBallTree uses patch features; kRTree uses bboxes.
  /// Returns build statistics.
  Result<IndexStats> BuildIndex(const std::string& view, IndexKind kind,
                                const std::string& meta_key = "");

  /// Drops all indexes on a view.
  Status DropIndexes(const std::string& view);

 private:
  explicit Database(std::string root);

  std::string VideoPath(const std::string& name) const;
  std::string ViewPath(const std::string& name) const;

  std::string root_;
  std::unique_ptr<Catalog> catalog_;
  LineageStore lineage_;
  std::atomic<uint64_t> id_counter_{1};

  CacheConfig cache_config_;
  // shared_ptr: readers returned by LoadVideo() co-own the segment cache
  // (captured in their deleter), so they stay safe past ConfigureCaches()
  // and even past the Database itself.
  std::shared_ptr<SegmentCache> segment_cache_;
  std::unique_ptr<InferenceCache> inference_cache_;
  // Inference caches replaced by ConfigureCaches(); kept alive because
  // expressions and EtlOptions hold raw pointers into them.
  std::vector<std::unique_ptr<InferenceCache>> retired_inference_caches_;

  ServingConfig serving_config_;
  AdmissionGate admission_gate_;
  InflightTable inflight_;
  BatchFormer batch_former_;
  // Per-tenant cache partitions, lazily built; guarded by tenant_mu_
  // (sessions may be created from concurrent serving threads).
  std::mutex tenant_mu_;
  std::map<std::string, std::unique_ptr<InferenceCache>> tenant_caches_;

  nn::TinySsdDetector detector_;
  nn::TinyOcr ocr_;
  nn::TinyDepth depth_;

  std::map<std::string, ViewCache> views_;
};

}  // namespace deeplens
