// Multi-tenant serving policy: admission control + tenant weights.
//
// The fair-share scheduler (exec/scheduler.h) divides worker time among
// the queries that are *running*; the admission gate bounds how many
// run at once, so a burst of queries degrades into an orderly queue (or
// a typed Saturated rejection) instead of oversubscribing memory and
// thrashing every tenant at once. Tenant weights govern both layers —
// a weight-4 tenant gets ~4x the morsel slots of a weight-1 tenant
// while running, and 4x the partitioned inference-cache bytes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace deeplens {

/// Env knob names (documented here, validated in FromEnv).
namespace serving_env {
/// Max concurrently-executing queries per Database (0 = unlimited).
inline constexpr const char* kMaxConcurrentQueries =
    "DEEPLENS_MAX_CONCURRENT_QUERIES";
/// How long admission blocks before returning Saturated, in
/// milliseconds (0 = fail fast).
inline constexpr const char* kAdmissionWaitMs = "DEEPLENS_ADMISSION_WAIT_MS";
/// Comma-separated tenant=weight pairs, weights in [1, 1000]
/// (e.g. "dash=4,batch=1"). Unlisted tenants get weight 1.
inline constexpr const char* kTenantPriority = "DEEPLENS_TENANT_PRIORITY";
/// Patches per cross-query device batch (exec/batch_former.h).
/// 0 = batching disabled (the default: on CPU backends batching buys
/// nothing and only adds latency; set it when serving on GpuSim).
inline constexpr const char* kDeviceBatchSize = "DEEPLENS_DEVICE_BATCH_SIZE";
/// Longest a staged patch waits for batch-mates before its submitter
/// flushes the queue anyway, in microseconds.
inline constexpr const char* kBatchWaitUs = "DEEPLENS_BATCH_WAIT_US";
}  // namespace serving_env

struct ServingConfig {
  /// 0 disables admission control entirely (no gate, no queueing).
  uint64_t max_concurrent_queries = 0;

  /// Budget a queued query waits for a slot before Saturated. 0 = fail
  /// fast: a full gate rejects immediately.
  uint64_t admission_wait_ms = 10000;

  /// Fair-share weight per tenant; unlisted tenants weigh 1.
  std::map<std::string, uint64_t> tenant_weights;

  /// Cross-query device batch formation (exec/batch_former.h): staged
  /// cache-miss patches per model invocation. 0 (the default) evaluates
  /// misses inline — the pre-batching behavior.
  uint64_t device_batch_size = 0;

  /// Deadline a staged patch waits for batch-mates, in microseconds.
  /// 0 = flush immediately (batches form only from an already-pending
  /// backlog).
  uint64_t batch_wait_us = 2000;

  /// Hard cap on a configured weight (keeps stride arithmetic exact and
  /// one tenant from starving the rest to rounding error).
  static constexpr uint64_t kMaxWeight = 1000;

  /// Config from the DEEPLENS_* knobs above, over these defaults.
  /// Malformed values warn and keep the default (matching every other
  /// knob in common/env.h); a malformed priority map is rejected whole.
  static ServingConfig FromEnv();

  uint64_t WeightFor(const std::string& tenant) const {
    auto it = tenant_weights.find(tenant);
    return it == tenant_weights.end() ? 1 : it->second;
  }

  /// `tenant`'s slice of `total_bytes` of cache budget, proportional to
  /// its weight over the sum of all *configured* weights (+1 for an
  /// unconfigured tenant, which competes as weight 1 on top — mild
  /// overcommit only for tenants nobody listed). Never 0 for a nonzero
  /// total: a tenant always gets at least enough budget to cache.
  size_t TenantCacheBudget(const std::string& tenant,
                           size_t total_bytes) const;
};

/// Point-in-time admission counters.
struct ServingStats {
  uint64_t admitted = 0;
  uint64_t rejected_saturated = 0;
  uint64_t in_flight = 0;       // instantaneous
  uint64_t peak_in_flight = 0;  // high-water mark
};

/// \brief Counting gate bounding concurrently-executing queries.
///
/// Admit() blocks up to the configured wait for a slot and returns a
/// typed Saturated status on timeout — the caller's query never started,
/// so retrying later is always safe. Release() returns the slot (via
/// the RAII Ticket). A limit of 0 admits everything without counting.
class AdmissionGate {
 public:
  /// RAII slot: releases on destruction. Empty (moved-from or
  /// unlimited-gate) tickets release nothing.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept : gate_(other.gate_) {
      other.gate_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        gate_ = other.gate_;
        other.gate_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

   private:
    friend class AdmissionGate;
    explicit Ticket(AdmissionGate* gate) : gate_(gate) {}
    void Release();
    AdmissionGate* gate_ = nullptr;
  };

  void Configure(uint64_t max_concurrent, uint64_t wait_ms);

  /// Blocks until a slot frees (at most the configured wait) or returns
  /// Status::Saturated. On success the returned Ticket holds the slot.
  Result<Ticket> Admit(const std::string& tenant);

  ServingStats Stats() const;

 private:
  void Release();

  mutable std::mutex mu_;
  std::condition_variable slot_freed_;
  uint64_t max_concurrent_ = 0;  // 0 = unlimited
  uint64_t wait_ms_ = 10000;
  uint64_t in_flight_ = 0;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t peak_ = 0;
};

}  // namespace deeplens
