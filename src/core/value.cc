#include "core/value.h"

#include <cmath>

#include "common/string_util.h"

namespace deeplens {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kFloat:
      return "float";
    case ValueType::kString:
      return "string";
    case ValueType::kBool:
      return "bool";
  }
  return "?";
}

ValueType MetaValue::type() const {
  switch (v_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt;
    case 2:
      return ValueType::kFloat;
    case 3:
      return ValueType::kString;
    case 4:
      return ValueType::kBool;
  }
  return ValueType::kNull;
}

Result<int64_t> MetaValue::AsInt() const {
  if (auto* p = std::get_if<int64_t>(&v_)) return *p;
  return Status::TypeError(std::string("expected int, have ") +
                           ValueTypeName(type()));
}

Result<double> MetaValue::AsFloat() const {
  if (auto* p = std::get_if<double>(&v_)) return *p;
  return Status::TypeError(std::string("expected float, have ") +
                           ValueTypeName(type()));
}

Result<const std::string*> MetaValue::AsString() const {
  if (auto* p = std::get_if<std::string>(&v_)) return p;
  return Status::TypeError(std::string("expected string, have ") +
                           ValueTypeName(type()));
}

Result<bool> MetaValue::AsBool() const {
  if (auto* p = std::get_if<bool>(&v_)) return *p;
  return Status::TypeError(std::string("expected bool, have ") +
                           ValueTypeName(type()));
}

Result<double> MetaValue::AsNumeric() const {
  if (auto* p = std::get_if<double>(&v_)) return *p;
  if (auto* p = std::get_if<int64_t>(&v_)) return static_cast<double>(*p);
  return Status::TypeError(std::string("expected numeric, have ") +
                           ValueTypeName(type()));
}

int MetaValue::Compare(const MetaValue& other) const {
  // Numeric types compare by value across int/float; everything else
  // compares by type tag first.
  const bool self_num =
      type() == ValueType::kInt || type() == ValueType::kFloat;
  const bool other_num =
      other.type() == ValueType::kInt || other.type() == ValueType::kFloat;
  if (self_num && other_num) {
    const double a = AsNumeric().value();
    const double b = other.AsNumeric().value();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1
                                                                     : 1;
  }
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kString: {
      const std::string& a = std::get<std::string>(v_);
      const std::string& b = std::get<std::string>(other.v_);
      return a.compare(b) < 0 ? -1 : (a == b ? 0 : 1);
    }
    case ValueType::kBool: {
      const bool a = std::get<bool>(v_);
      const bool b = std::get<bool>(other.v_);
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    default:
      return 0;  // numeric handled above
  }
}

std::string MetaValue::ToIndexKey() const {
  // Numerics share tag 'N' so int/float index keys interleave correctly.
  switch (type()) {
    case ValueType::kNull:
      return "\x00";
    case ValueType::kInt:
      return "N" + EncodeKeyF64(static_cast<double>(
                       std::get<int64_t>(v_)));
    case ValueType::kFloat:
      return "N" + EncodeKeyF64(std::get<double>(v_));
    case ValueType::kString:
      return "S" + std::get<std::string>(v_);
    case ValueType::kBool:
      return std::string("B") + (std::get<bool>(v_) ? "\x01" : "\x00");
  }
  return "";
}

void MetaValue::SerializeInto(ByteBuffer* out) const {
  out->PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      out->PutSignedVarint(std::get<int64_t>(v_));
      break;
    case ValueType::kFloat:
      out->PutF64(std::get<double>(v_));
      break;
    case ValueType::kString:
      out->PutLengthPrefixed(Slice(std::get<std::string>(v_)));
      break;
    case ValueType::kBool:
      out->PutU8(std::get<bool>(v_) ? 1 : 0);
      break;
  }
}

Result<MetaValue> MetaValue::Deserialize(ByteReader* reader) {
  DL_ASSIGN_OR_RETURN(uint8_t tag, reader->GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return MetaValue();
    case ValueType::kInt: {
      DL_ASSIGN_OR_RETURN(int64_t v, reader->GetSignedVarint());
      return MetaValue(v);
    }
    case ValueType::kFloat: {
      DL_ASSIGN_OR_RETURN(double v, reader->GetF64());
      return MetaValue(v);
    }
    case ValueType::kString: {
      DL_ASSIGN_OR_RETURN(Slice v, reader->GetLengthPrefixed());
      return MetaValue(v.ToString());
    }
    case ValueType::kBool: {
      DL_ASSIGN_OR_RETURN(uint8_t v, reader->GetU8());
      return MetaValue(v != 0);
    }
  }
  return Status::Corruption("unknown MetaValue tag");
}

std::string MetaValue::ToDisplayString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(v_));
    case ValueType::kFloat:
      return StringFormat("%g", std::get<double>(v_));
    case ValueType::kString:
      return "'" + std::get<std::string>(v_) + "'";
    case ValueType::kBool:
      return std::get<bool>(v_) ? "true" : "false";
  }
  return "?";
}

const MetaValue& MetaDict::Get(const std::string& key) const {
  static const MetaValue kNull;
  auto it = entries_.find(key);
  return it == entries_.end() ? kNull : it->second;
}

void MetaDict::SerializeInto(ByteBuffer* out) const {
  out->PutVarint(entries_.size());
  for (const auto& [key, value] : entries_) {
    out->PutLengthPrefixed(Slice(key));
    value.SerializeInto(out);
  }
}

Result<MetaDict> MetaDict::Deserialize(ByteReader* reader) {
  DL_ASSIGN_OR_RETURN(uint64_t count, reader->GetVarint());
  MetaDict dict;
  for (uint64_t i = 0; i < count; ++i) {
    DL_ASSIGN_OR_RETURN(Slice key, reader->GetLengthPrefixed());
    DL_ASSIGN_OR_RETURN(MetaValue value, MetaValue::Deserialize(reader));
    dict.Set(key.ToString(), std::move(value));
  }
  return dict;
}

}  // namespace deeplens
