// MetaValue: the typed values stored in a Patch's metadata key-value
// dictionary (paper §2.2). Values serialize to bytes for materialization
// and to order-preserving keys for indexing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace deeplens {

/// Runtime type of a metadata value.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kFloat = 2,
  kString = 3,
  kBool = 4,
};

const char* ValueTypeName(ValueType t);

/// \brief Tagged value: null / int64 / double / string / bool.
class MetaValue {
 public:
  MetaValue() : v_(std::monostate{}) {}
  MetaValue(int64_t v) : v_(v) {}            // NOLINT(runtime/explicit)
  MetaValue(int v) : v_(int64_t{v}) {}       // NOLINT(runtime/explicit)
  MetaValue(double v) : v_(v) {}             // NOLINT(runtime/explicit)
  MetaValue(std::string v) : v_(std::move(v)) {}  // NOLINT
  MetaValue(const char* v) : v_(std::string(v)) {}  // NOLINT
  MetaValue(bool v) : v_(v) {}               // NOLINT(runtime/explicit)

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; TypeError on mismatch.
  Result<int64_t> AsInt() const;
  Result<double> AsFloat() const;
  Result<const std::string*> AsString() const;
  Result<bool> AsBool() const;

  /// Numeric coercion: ints widen to double; TypeError otherwise.
  Result<double> AsNumeric() const;

  /// Total-order comparison within the same type; cross-type compares by
  /// type tag (so heterogeneous sorts are stable and deterministic).
  int Compare(const MetaValue& other) const;
  bool operator==(const MetaValue& other) const { return Compare(other) == 0; }
  bool operator<(const MetaValue& other) const { return Compare(other) < 0; }

  /// Order-preserving index-key encoding (type tag + payload).
  std::string ToIndexKey() const;

  /// Binary (de)serialization for materialization.
  void SerializeInto(ByteBuffer* out) const;
  static Result<MetaValue> Deserialize(ByteReader* reader);

  std::string ToDisplayString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> v_;
};

/// \brief Ordered metadata dictionary.
class MetaDict {
 public:
  void Set(const std::string& key, MetaValue value) {
    entries_[key] = std::move(value);
  }

  /// Null value if absent.
  const MetaValue& Get(const std::string& key) const;
  bool Contains(const std::string& key) const {
    return entries_.find(key) != entries_.end();
  }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  void SerializeInto(ByteBuffer* out) const;
  static Result<MetaDict> Deserialize(ByteReader* reader);

 private:
  std::map<std::string, MetaValue> entries_;
};

}  // namespace deeplens
