#include "core/patch.h"

#include <cstring>

#include "codec/image_codec.h"
#include "common/checksum.h"

namespace deeplens {

uint64_t ImageFingerprint(const Image& img) {
  const int32_t dims[3] = {img.width(), img.height(), img.channels()};
  uint64_t h = Fnv1a64(dims, sizeof(dims));
  if (!img.empty()) {
    h = Fnv1a64(img.data(), img.size_bytes(), h);
  }
  return h;
}

Patch::Patch(const Patch& o)
    : id_(o.id_),
      ref_(o.ref_),
      pixels_(o.pixels_),
      features_(o.features_),
      bbox_(o.bbox_),
      meta_(o.meta_),
      fingerprint_memo_(
          o.fingerprint_memo_.load(std::memory_order_relaxed)) {}

Patch& Patch::operator=(const Patch& o) {
  id_ = o.id_;
  ref_ = o.ref_;
  pixels_ = o.pixels_;
  features_ = o.features_;
  bbox_ = o.bbox_;
  meta_ = o.meta_;
  fingerprint_memo_.store(
      o.fingerprint_memo_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

Patch::Patch(Patch&& o) noexcept
    : id_(o.id_),
      ref_(std::move(o.ref_)),
      pixels_(std::move(o.pixels_)),
      features_(std::move(o.features_)),
      bbox_(o.bbox_),
      meta_(std::move(o.meta_)),
      fingerprint_memo_(
          o.fingerprint_memo_.load(std::memory_order_relaxed)) {}

Patch& Patch::operator=(Patch&& o) noexcept {
  id_ = o.id_;
  ref_ = std::move(o.ref_);
  pixels_ = std::move(o.pixels_);
  features_ = std::move(o.features_);
  bbox_ = o.bbox_;
  meta_ = std::move(o.meta_);
  fingerprint_memo_.store(
      o.fingerprint_memo_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

uint64_t Patch::Fingerprint() const {
  const uint64_t memo = fingerprint_memo_.load(std::memory_order_relaxed);
  if (memo != 0) return memo;
  uint64_t h = ImageFingerprint(pixels_);
  const int32_t box[4] = {bbox_.x0, bbox_.y0, bbox_.x1, bbox_.y1};
  h = Fnv1a64(box, sizeof(box), h);
  if (h == 0) h = 0x9e3779b97f4a7c15ull;  // keep 0 free as the sentinel
  fingerprint_memo_.store(h, std::memory_order_relaxed);
  return h;
}

// Layout: id, ref{dataset, frameno, parent}, bbox, meta, pixel?, feature?
void Patch::SerializeInto(ByteBuffer* out) const {
  out->PutU64(id_);
  out->PutLengthPrefixed(Slice(ref_.dataset));
  out->PutSignedVarint(ref_.frameno);
  out->PutU64(ref_.parent);
  out->PutSignedVarint(bbox_.x0);
  out->PutSignedVarint(bbox_.y0);
  out->PutSignedVarint(bbox_.x1);
  out->PutSignedVarint(bbox_.y1);
  meta_.SerializeInto(out);
  out->PutU8(has_pixels() ? 1 : 0);
  if (has_pixels()) {
    const std::vector<uint8_t> raw = codec::SerializeRawImage(pixels_);
    out->PutLengthPrefixed(Slice(raw));
  }
  out->PutU8(has_features() ? 1 : 0);
  if (has_features()) {
    out->PutVarint(static_cast<uint64_t>(features_.size()));
    out->PutBytes(features_.data(),
                  static_cast<size_t>(features_.size()) * sizeof(float));
  }
}

Result<Patch> Patch::Deserialize(ByteReader* reader) {
  Patch p;
  DL_ASSIGN_OR_RETURN(p.id_, reader->GetU64());
  DL_ASSIGN_OR_RETURN(Slice dataset, reader->GetLengthPrefixed());
  p.ref_.dataset = dataset.ToString();
  DL_ASSIGN_OR_RETURN(p.ref_.frameno, reader->GetSignedVarint());
  DL_ASSIGN_OR_RETURN(p.ref_.parent, reader->GetU64());
  DL_ASSIGN_OR_RETURN(int64_t x0, reader->GetSignedVarint());
  DL_ASSIGN_OR_RETURN(int64_t y0, reader->GetSignedVarint());
  DL_ASSIGN_OR_RETURN(int64_t x1, reader->GetSignedVarint());
  DL_ASSIGN_OR_RETURN(int64_t y1, reader->GetSignedVarint());
  p.bbox_ = nn::BBox{static_cast<int>(x0), static_cast<int>(y0),
                     static_cast<int>(x1), static_cast<int>(y1)};
  DL_ASSIGN_OR_RETURN(p.meta_, MetaDict::Deserialize(reader));
  DL_ASSIGN_OR_RETURN(uint8_t has_pixels, reader->GetU8());
  if (has_pixels) {
    DL_ASSIGN_OR_RETURN(Slice raw, reader->GetLengthPrefixed());
    DL_ASSIGN_OR_RETURN(p.pixels_, codec::DeserializeRawImage(raw));
  }
  DL_ASSIGN_OR_RETURN(uint8_t has_features, reader->GetU8());
  if (has_features) {
    DL_ASSIGN_OR_RETURN(uint64_t n, reader->GetVarint());
    DL_ASSIGN_OR_RETURN(Slice bytes,
                        reader->GetBytes(static_cast<size_t>(n) * 4));
    std::vector<float> values(static_cast<size_t>(n));
    std::memcpy(values.data(), bytes.data(), bytes.size());
    p.features_ = Tensor({static_cast<int64_t>(n)}, std::move(values));
  }
  return p;
}

}  // namespace deeplens
