// Session: a tenant's handle on a Database for multi-tenant serving.
//
// A Session carries the tenant identity through all three serving
// layers: Run() admits the query through the database's AdmissionGate
// (bounded concurrency, typed Saturated on timeout), tags the calling
// thread with a SchedulingContext so every parallel morsel dispatch
// inside competes under the tenant's fair-share weight, and
// inference_cache() hands out the tenant's partitioned slice of the
// inference-cache budget (so one tenant's churn cannot evict another's
// hot results — while the shared InflightTable still dedups identical
// in-flight inferences *across* tenants).
//
// Sessions are cheap value handles; create one per logical client.
// They snapshot the tenant's weight at creation: after
// Database::ConfigureServing, recreate sessions to pick up new weights
// and re-partitioned cache budgets.
#pragma once

#include <string>
#include <utility>

#include "core/database.h"
#include "core/query.h"
#include "exec/scheduler.h"

namespace deeplens {

class Session {
 public:
  const std::string& tenant() const { return tenant_; }
  uint64_t weight() const { return weight_; }

  /// Human-readable fair-share class, as reported by Explain():
  /// "tenant 'dash' weight 4" (or "anonymous weight 1").
  std::string scheduling_class() const;

  /// The tenant's partitioned inference cache (the shared database
  /// cache for anonymous sessions). Build NN UDF expressions against
  /// this instead of Database::inference_cache() to get isolation.
  InferenceCache* inference_cache() const { return cache_; }

  /// Runs `fn` as one admitted query: blocks for an execution slot (up
  /// to the configured admission wait; returns Status::Saturated if the
  /// pool stays full — the query never started), then executes with
  /// this session's scheduling context installed, so every morsel the
  /// query dispatches is weighed under this tenant. `fn` must return
  /// Status or Result<T>.
  template <typename Fn>
  auto Run(Fn&& fn) -> decltype(fn()) {
    auto ticket = db_->admission_gate()->Admit(tenant_);
    if (!ticket.ok()) return ticket.status();
    ScopedSchedulingContext scope(SchedulingContext{tenant_, weight_});
    return fn();
  }

  /// Query::Explain() augmented with the serving view: the scheduling
  /// class this session runs under and the in-flight dedup joins the
  /// database has served so far.
  Result<PlanExplanation> Explain(Query& query) const;

 private:
  friend class Database;
  Session(Database* db, std::string tenant, uint64_t weight,
          InferenceCache* cache)
      : db_(db),
        tenant_(std::move(tenant)),
        weight_(weight),
        cache_(cache) {}

  Database* db_;
  std::string tenant_;
  uint64_t weight_;
  InferenceCache* cache_;
};

}  // namespace deeplens
