#include "core/serving.h"

#include <algorithm>
#include <chrono>

#include "common/env.h"
#include "common/thread_pool.h"

namespace deeplens {

ServingConfig ServingConfig::FromEnv() {
  ServingConfig config;
  // Default bound: comfortably above the pool width so short queries
  // queue behind the gate only under a genuine burst, never in steady
  // state. 2x width keeps one wave executing while the next decodes /
  // waits on inference.
  config.max_concurrent_queries = std::max<uint64_t>(
      4, 2 * ThreadPool::Global().num_threads());
  config.max_concurrent_queries = PositiveIntFromEnv(
      serving_env::kMaxConcurrentQueries, config.max_concurrent_queries,
      /*max_value=*/1u << 20, /*allow_zero=*/true);
  config.admission_wait_ms = PositiveIntFromEnv(
      serving_env::kAdmissionWaitMs, config.admission_wait_ms,
      /*max_value=*/86400000ull, /*allow_zero=*/true);
  config.tenant_weights =
      WeightMapFromEnv(serving_env::kTenantPriority, kMaxWeight);
  // Cap well above any plausible device batch: a larger value only adds
  // latency (patches wait on a batch that drains slower than it fills).
  config.device_batch_size = PositiveIntFromEnv(
      serving_env::kDeviceBatchSize, config.device_batch_size,
      /*max_value=*/4096, /*allow_zero=*/true);
  // Cap at one minute: past that a "batching deadline" is really a hang.
  config.batch_wait_us = PositiveIntFromEnv(
      serving_env::kBatchWaitUs, config.batch_wait_us,
      /*max_value=*/60000000ull, /*allow_zero=*/true);
  return config;
}

size_t ServingConfig::TenantCacheBudget(const std::string& tenant,
                                        size_t total_bytes) const {
  if (total_bytes == 0) return 0;
  uint64_t sum = 0;
  for (const auto& entry : tenant_weights) sum += entry.second;
  const auto it = tenant_weights.find(tenant);
  const uint64_t weight = it == tenant_weights.end() ? 1 : it->second;
  if (it == tenant_weights.end()) sum += 1;
  if (sum == 0) return total_bytes;
  const size_t share = static_cast<size_t>(
      static_cast<uint64_t>(total_bytes) * weight / sum);
  // A zero budget would disable the tenant's cache outright; clamp to
  // something that can hold at least a few inference values.
  return std::max<size_t>(share, 4096);
}

void AdmissionGate::Configure(uint64_t max_concurrent, uint64_t wait_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  max_concurrent_ = max_concurrent;
  wait_ms_ = wait_ms;
  // A raised limit frees queued waiters immediately.
  slot_freed_.notify_all();
}

Result<AdmissionGate::Ticket> AdmissionGate::Admit(
    const std::string& tenant) {
  std::unique_lock<std::mutex> lock(mu_);
  if (max_concurrent_ == 0) {
    // Unlimited: count nothing, return an empty ticket. (Counting here
    // would make a later Configure() race with outstanding tickets.)
    ++admitted_;
    return Ticket();
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wait_ms_);
  while (in_flight_ >= max_concurrent_ && max_concurrent_ != 0) {
    if (wait_ms_ == 0 ||
        slot_freed_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
      if (in_flight_ < max_concurrent_ || max_concurrent_ == 0) break;
      ++rejected_;
      return Status::Saturated(
          "query pool saturated (" + std::to_string(in_flight_) + "/" +
          std::to_string(max_concurrent_) + " queries in flight); " +
          (tenant.empty() ? std::string("anonymous")
                          : "tenant '" + tenant + "'") +
          " not admitted within " + std::to_string(wait_ms_) + "ms");
    }
  }
  if (max_concurrent_ == 0) {
    ++admitted_;
    return Ticket();
  }
  ++in_flight_;
  ++admitted_;
  peak_ = std::max(peak_, in_flight_);
  return Ticket(this);
}

void AdmissionGate::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_flight_ > 0) --in_flight_;
  }
  slot_freed_.notify_one();
}

void AdmissionGate::Ticket::Release() {
  if (gate_ != nullptr) {
    gate_->Release();
    gate_ = nullptr;
  }
}

ServingStats AdmissionGate::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServingStats stats;
  stats.admitted = admitted_;
  stats.rejected_saturated = rejected_;
  stats.in_flight = in_flight_;
  stats.peak_in_flight = peak_;
  return stats;
}

}  // namespace deeplens
