#include "core/benchmark_queries.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <unordered_map>

#include "common/clock.h"
#include "common/string_util.h"
#include "core/planner.h"

namespace deeplens {
namespace bench {

namespace {

constexpr const char* kTrafficName = "traffic";
constexpr const char* kFootballName = "football";
constexpr const char* kPcName = "pc";

// Intra-cluster pair enumeration for dedup-quality scoring.
void ClusterPairs(const std::vector<uint32_t>& cluster_of,
                  const std::function<bool(size_t)>& keep_endpoint,
                  const std::function<bool(size_t, size_t)>& keep_pair,
                  std::vector<std::pair<size_t, size_t>>* out) {
  std::unordered_map<uint32_t, std::vector<size_t>> members;
  for (size_t i = 0; i < cluster_of.size(); ++i) {
    if (keep_endpoint(i)) members[cluster_of[i]].push_back(i);
  }
  for (const auto& [cluster, idxs] : members) {
    (void)cluster;
    for (size_t a = 0; a < idxs.size(); ++a) {
      for (size_t b = a + 1; b < idxs.size(); ++b) {
        if (keep_pair(idxs[a], idxs[b])) {
          out->emplace_back(idxs[a], idxs[b]);
        }
      }
    }
  }
}

}  // namespace

Result<std::unique_ptr<BenchmarkWorkload>> BenchmarkWorkload::Create(
    const std::string& root, WorkloadConfig config) {
  DL_ASSIGN_OR_RETURN(auto db, Database::Open(root));
  return std::unique_ptr<BenchmarkWorkload>(
      new BenchmarkWorkload(std::move(db), config));
}

Status BenchmarkWorkload::RunEtl(nn::Device* device, EtlTimings* timings) {
  EtlTimings local;

  // --- TrafficCam: detector → histogram features → depth on persons ----
  {
    Stopwatch timer;
    auto counter = std::make_shared<int>(0);
    const sim::TrafficCamSim* sim = &traffic_;
    FrameIterator frames =
        [sim, counter]() -> Result<std::optional<std::pair<int, Image>>> {
      if (*counter >= sim->num_frames()) {
        return std::optional<std::pair<int, Image>>();
      }
      const int f = (*counter)++;
      return std::optional<std::pair<int, Image>>(
          std::make_pair(f, sim->FrameAt(f)));
    };
    auto gen = MakeObjectDetectorGenerator(
        std::move(frames), db_->detector(),
        db_->MakeEtlOptions(kTrafficName, device));
    auto featurized =
        MakeColorHistogramTransformer(std::move(gen), config_.features);
    // Depth annotations only make sense for persons; other labels pass
    // through untouched.
    const nn::TinyDepth* depth_model = db_->depth_model();
    const int frame_h = traffic_.config().height;
    // Per-patch depth inference is a small kernel: keep it off the GPU
    // (per-tuple launches would dominate — paper §7.4.2).
    nn::Device* dev = device != nullptr
                          ? device
                          : nn::GetDevice(nn::DeviceKind::kCpuVector);
    if (dev->kind() == nn::DeviceKind::kGpuSim) {
      dev = nn::GetDevice(nn::DeviceKind::kCpuVector);
    }
    InferenceCache* cache = db_->inference_cache();
    auto with_depth = MakeMap(
        std::move(featurized),
        [depth_model, frame_h, dev,
         cache](PatchTuple tuple) -> Result<PatchTuple> {
          for (Patch& p : tuple) {
            auto label = p.meta().Get(meta_keys::kLabel).AsString();
            if (!label.ok() || **label != "person" || !p.has_pixels()) {
              continue;
            }
            DL_ASSIGN_OR_RETURN(double d,
                                CachedDepth(*depth_model, p.pixels(),
                                            p.bbox(), frame_h,
                                            CacheFingerprint(p, cache),
                                            dev, cache));
            p.mutable_meta().Set(meta_keys::kDepth, d);
          }
          return tuple;
        });
    DL_RETURN_NOT_OK(db_->RegisterView("traffic_dets", with_depth.get()));
    local.traffic_ms = timer.ElapsedMillis();
  }

  // --- Football: player detections + jersey OCR -------------------------
  {
    Stopwatch timer;
    const sim::FootballSim* sim = &football_;
    auto make_frames = [sim]() -> FrameIterator {
      auto video = std::make_shared<int>(0);
      auto frame = std::make_shared<int>(0);
      return [sim, video,
              frame]() -> Result<std::optional<std::pair<int, Image>>> {
        if (*video >= sim->num_videos()) {
          return std::optional<std::pair<int, Image>>();
        }
        const int v = *video;
        const int f = *frame;
        if (++*frame >= sim->frames_per_video()) {
          *frame = 0;
          ++*video;
        }
        return std::optional<std::pair<int, Image>>(std::make_pair(
            static_cast<int>(BenchmarkWorkload::FootballFrameNo(v, f)),
            sim->FrameAt(v, f)));
      };
    };
    auto players = MakeObjectDetectorGenerator(
        make_frames(), db_->detector(),
        db_->MakeEtlOptions(kFootballName, device));
    auto featurized =
        MakeColorHistogramTransformer(std::move(players), config_.features);
    DL_RETURN_NOT_OK(db_->RegisterView("football_players",
                                       featurized.get()));
    // Jersey OCR runs per player patch (the paper's "OCR output that
    // identifies a number if one is visible"). Legible numbers become
    // *child* patches whose lineage parent is the player detection, so
    // q3's backtrace walks jersey → player → frame.
    DL_ASSIGN_OR_RETURN(ViewCache * players_view,
                        db_->GetView("football_players"));
    nn::Device* dev = device != nullptr
                          ? device
                          : nn::GetDevice(nn::DeviceKind::kCpuVector);
    if (dev->kind() == nn::DeviceKind::kGpuSim) {
      dev = nn::GetDevice(nn::DeviceKind::kCpuVector);  // per-tuple OCR
    }
    PatchCollection jerseys;
    for (const Patch& player : players_view->patches) {
      if (!player.has_pixels()) continue;
      DL_ASSIGN_OR_RETURN(
          std::string text,
          CachedOcrText(*db_->ocr(), player.pixels(),
                        CacheFingerprint(player, db_->inference_cache()),
                        dev, db_->inference_cache()));
      if (text.empty()) continue;
      Patch jersey;
      jersey.set_id(db_->id_counter()->fetch_add(1));
      jersey.set_ref(ImgRef{kFootballName,
                            player.ref().frameno, player.id()});
      jersey.set_bbox(player.bbox());
      MetaDict& meta = jersey.mutable_meta();
      meta.Set(meta_keys::kText, text);
      meta.Set(meta_keys::kFrameNo,
               player.meta().Get(meta_keys::kFrameNo));
      meta.Set(meta_keys::kDataset, std::string(kFootballName));
      meta.Set(meta_keys::kPatchId, static_cast<int64_t>(jersey.id()));
      db_->lineage()->Record(jersey);
      jerseys.push_back(std::move(jersey));
    }
    DL_RETURN_NOT_OK(db_->RegisterView("football_jerseys",
                                       std::move(jerseys)));
    local.football_ms = timer.ElapsedMillis();
  }

  // --- PC: whole images (featurized) + OCR text --------------------------
  {
    Stopwatch timer;
    const sim::PcSim* sim = &pc_;
    auto make_frames = [sim]() -> FrameIterator {
      auto counter = std::make_shared<int>(0);
      return [sim,
              counter]() -> Result<std::optional<std::pair<int, Image>>> {
        if (*counter >= sim->num_images()) {
          return std::optional<std::pair<int, Image>>();
        }
        const int i = (*counter)++;
        return std::optional<std::pair<int, Image>>(
            std::make_pair(i, sim->ImageAt(i)));
      };
    };
    auto whole = MakeWholeImageGenerator(
        make_frames(), db_->MakeEtlOptions(kPcName, device));
    auto featurized =
        MakeColorHistogramTransformer(std::move(whole), config_.features);
    DL_RETURN_NOT_OK(db_->RegisterView("pc_images", featurized.get()));
    auto text = MakeOcrGenerator(make_frames(), db_->detector(), db_->ocr(),
                                 db_->MakeEtlOptions(kPcName, device));
    DL_RETURN_NOT_OK(db_->RegisterView("pc_text", text.get()));
    local.pc_ms = timer.ElapsedMillis();
  }

  if (timings != nullptr) *timings = local;
  return Status::OK();
}

Result<double> BenchmarkWorkload::BuildOptimizedIndexes() {
  double total = 0;
  auto build = [&](const std::string& view, IndexKind kind,
                   const std::string& key) -> Status {
    DL_ASSIGN_OR_RETURN(IndexStats stats, db_->BuildIndex(view, kind, key));
    total += stats.build_millis;
    return Status::OK();
  };
  DL_RETURN_NOT_OK(build("traffic_dets", IndexKind::kHash,
                         meta_keys::kLabel));
  DL_RETURN_NOT_OK(build("traffic_dets", IndexKind::kBPlusTree,
                         meta_keys::kFrameNo));
  DL_RETURN_NOT_OK(build("traffic_dets", IndexKind::kBallTree, ""));
  DL_RETURN_NOT_OK(build("pc_images", IndexKind::kBallTree, ""));
  DL_RETURN_NOT_OK(build("pc_text", IndexKind::kHash, meta_keys::kText));
  DL_RETURN_NOT_OK(build("football_players", IndexKind::kHash,
                         meta_keys::kPatchId));
  DL_RETURN_NOT_OK(build("football_players", IndexKind::kBPlusTree,
                         meta_keys::kFrameNo));
  DL_RETURN_NOT_OK(build("football_jerseys", IndexKind::kHash,
                         meta_keys::kText));
  return total;
}

Status BenchmarkWorkload::DropAllIndexes() {
  for (const char* view : {"traffic_dets", "pc_images", "pc_text",
                           "football_players", "football_jerseys"}) {
    if (db_->HasView(view)) {
      DL_RETURN_NOT_OK(db_->DropIndexes(view));
    }
  }
  return Status::OK();
}

int BenchmarkWorkload::TruthObjectIdFor(const Patch& patch) const {
  auto frameno = patch.meta().Get(meta_keys::kFrameNo).AsInt();
  if (!frameno.ok()) return -1;
  const sim::FrameTruth truth =
      traffic_.TruthAt(static_cast<int>(frameno.value()));
  float best_iou = 0.2f;  // minimum overlap to accept
  int best = -1;
  for (const sim::SceneObject& o : truth.objects) {
    const float iou = patch.bbox().Iou(o.bbox);
    if (iou > best_iou) {
      best_iou = iou;
      best = o.object_id;
    }
  }
  return best;
}

// --- q1: near-duplicates in PC ------------------------------------------

Result<QueryRun> BenchmarkWorkload::RunQ1(bool optimized) {
  DL_ASSIGN_OR_RETURN(ViewCache * view, db_->GetView("pc_images"));
  QueryRun run;
  Stopwatch timer;

  // Canonical pair order: earlier image first.
  ExprPtr order = Lt(Attr(0, meta_keys::kFrameNo),
                     Attr(1, meta_keys::kFrameNo));
  std::vector<PatchTuple> pairs;
  if (optimized) {
    auto left = MakeVectorSource(view->patches);
    auto right = MakeVectorSource(view->patches);
    SimilarityJoinOptions options;
    options.max_distance = config_.q1_max_distance;
    JoinStats stats;
    DL_ASSIGN_OR_RETURN(pairs,
                        BallTreeSimilarityJoin(left.get(), right.get(),
                                               options, order, &stats));
    run.plan = StringFormat(
        "on-the-fly ball-tree similarity self-join (%llu distance evals)",
        static_cast<unsigned long long>(stats.pairs_examined));
  } else {
    auto left = MakeVectorSource(view->patches);
    auto right = MakeVectorSource(view->patches);
    ExprPtr pred =
        And(Le(FeatureDistance(0, 1),
               Lit(static_cast<double>(config_.q1_max_distance))),
            order);
    JoinStats stats;
    DL_ASSIGN_OR_RETURN(
        pairs, NestedLoopJoin(left.get(), right.get(), pred, &stats));
    run.plan = StringFormat(
        "nested-loop θ-join (%llu pairs examined)",
        static_cast<unsigned long long>(stats.pairs_examined));
  }
  run.millis = timer.ElapsedMillis();
  run.result_count = pairs.size();

  // Accuracy against the known duplicate pairs.
  std::vector<std::pair<int, int>> found;
  for (const PatchTuple& t : pairs) {
    found.emplace_back(
        static_cast<int>(t[0].meta().Get(meta_keys::kFrameNo).AsInt().ValueOr(-1)),
        static_cast<int>(t[1].meta().Get(meta_keys::kFrameNo).AsInt().ValueOr(-1)));
  }
  const sim::PrecisionRecall pr =
      sim::ScorePairs(found, pc_.DuplicatePairs());
  run.precision = pr.precision();
  run.recall = pr.recall();
  return run;
}

// --- q2: frames with at least one vehicle ---------------------------------

Result<QueryRun> BenchmarkWorkload::RunQ2(bool optimized) {
  (void)optimized;  // physical design is whatever is currently built
  QueryRun run;
  Stopwatch timer;
  Query query(db_.get(), "traffic_dets");
  query.Where(Eq(Attr(meta_keys::kLabel), Lit("car")));
  DL_ASSIGN_OR_RETURN(PlanExplanation plan, query.Explain());
  DL_ASSIGN_OR_RETURN(uint64_t frames,
                      query.CountDistinct(meta_keys::kFrameNo));
  run.millis = timer.ElapsedMillis();
  run.result_count = frames;
  run.plan = plan.description;

  const int truth = traffic_.FramesWithVehicles();
  run.recall = truth > 0 ? std::min(
                               1.0, static_cast<double>(frames) / truth)
                         : 1.0;
  run.precision =
      frames > 0
          ? std::min(1.0, static_cast<double>(truth) /
                              static_cast<double>(frames))
          : 1.0;
  return run;
}

// --- q3: track one player's trajectory ------------------------------------

Result<QueryRun> BenchmarkWorkload::RunQ3(bool optimized) {
  DL_ASSIGN_OR_RETURN(ViewCache * jerseys, db_->GetView("football_jerseys"));
  DL_ASSIGN_OR_RETURN(ViewCache * players, db_->GetView("football_players"));
  const std::string tracked =
      std::to_string(football_.config().tracked_jersey);

  QueryRun run;
  Stopwatch timer;
  std::vector<std::pair<int64_t, nn::BBox>> trajectory;

  // The jersey observations for the tracked number.
  PatchCollection hits;
  for (const Patch& p : jerseys->patches) {
    auto text = p.meta().Get(meta_keys::kText).AsString();
    if (text.ok() && **text == tracked) hits.push_back(p);
  }

  if (optimized) {
    // Lineage-backed backtrace: jersey patch → source frame → patches of
    // that frame (lineage frame index) → player boxes containing it.
    const HashIndex* by_pid = nullptr;
    auto it = players->hash_indexes.find(meta_keys::kPatchId);
    if (it == players->hash_indexes.end()) {
      return Status::InvalidArgument(
          "optimized q3 needs the pid hash index (BuildOptimizedIndexes)");
    }
    by_pid = &it->second;
    for (const Patch& jersey : hits) {
      DL_ASSIGN_OR_RETURN(ImgRef root, db_->lineage()->Backtrace(jersey.id()));
      std::vector<PatchId> frame_patches;
      db_->lineage()->PatchesForFrame(root.dataset, root.frameno,
                                      &frame_patches);
      for (PatchId pid : frame_patches) {
        std::vector<RowId> rows;
        by_pid->Lookup(
            Slice(MetaValue(static_cast<int64_t>(pid)).ToIndexKey()),
            &rows);
        for (RowId r : rows) {
          const Patch& player = players->patches[static_cast<size_t>(r)];
          auto label = player.meta().Get(meta_keys::kLabel).AsString();
          if (!label.ok() || **label != "player") continue;
          if (player.bbox().Iou(jersey.bbox()) > 0.0f ||
              player.bbox().ContainsPoint(jersey.bbox().CenterX(),
                                          jersey.bbox().CenterY())) {
            trajectory.emplace_back(root.frameno, player.bbox());
          }
        }
      }
    }
    run.plan = "lineage backtrace + frame index + pid hash lookup";
  } else {
    // Baseline: rescan the full detection relation per jersey hit.
    for (const Patch& jersey : hits) {
      const int64_t frameno =
          jersey.meta().Get(meta_keys::kFrameNo).AsInt().ValueOr(-1);
      for (const Patch& player : players->patches) {
        if (player.meta().Get(meta_keys::kFrameNo).AsInt().ValueOr(-2) !=
            frameno) {
          continue;
        }
        auto label = player.meta().Get(meta_keys::kLabel).AsString();
        if (!label.ok() || **label != "player") continue;
        if (player.bbox().Iou(jersey.bbox()) > 0.0f ||
            player.bbox().ContainsPoint(jersey.bbox().CenterX(),
                                        jersey.bbox().CenterY())) {
          trajectory.emplace_back(frameno, player.bbox());
        }
      }
    }
    run.plan = "full rescan of detections per OCR hit";
  }
  std::sort(trajectory.begin(), trajectory.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  run.millis = timer.ElapsedMillis();
  run.result_count = trajectory.size();

  // Recall vs ground truth: frames where the tracked player exists.
  uint64_t truth_frames = 0;
  for (int v = 0; v < football_.num_videos(); ++v) {
    truth_frames += football_.TrackedTrajectory(v).size();
  }
  std::set<int64_t> covered;
  for (const auto& [frameno, box] : trajectory) covered.insert(frameno);
  run.recall = truth_frames > 0
                   ? static_cast<double>(covered.size()) /
                         static_cast<double>(truth_frames)
                   : 1.0;
  run.precision = -1;
  return run;
}

// --- q4: count distinct pedestrians ----------------------------------------

Result<QueryRun> BenchmarkWorkload::RunQ4(bool optimized,
                                          nn::Device* match_device) {
  QueryRun run;
  Stopwatch timer;
  Query query(db_.get(), "traffic_dets");
  query.Where(Eq(Attr(meta_keys::kLabel), Lit("person")));
  query.Where(Ge(Attr(meta_keys::kScore), Lit(config_.q4_min_score)));
  DL_ASSIGN_OR_RETURN(PlanExplanation plan, query.Explain());
  DL_ASSIGN_OR_RETURN(PatchCollection persons, query.Execute());

  DedupOptions options;
  options.max_distance = config_.q4_max_distance;
  options.strategy = optimized ? DedupOptions::Strategy::kBallTree
                               : DedupOptions::Strategy::kAllPairs;
  options.device = match_device;
  auto source = MakeVectorSource(std::move(persons));
  DL_ASSIGN_OR_RETURN(DedupResult dedup,
                      SimilarityDedup(source.get(), options));
  run.millis = timer.ElapsedMillis();
  run.result_count = dedup.num_clusters;
  run.plan = std::string(plan.description) + "; dedup=" +
             (optimized ? "ball-tree" : "all-pairs");

  const int truth = traffic_.DistinctPedestrians();
  if (truth > 0) {
    run.recall = std::min(
        1.0, static_cast<double>(dedup.num_clusters) / truth);
    run.precision = dedup.num_clusters > 0
                        ? std::min(1.0, static_cast<double>(truth) /
                                            static_cast<double>(
                                                dedup.num_clusters))
                        : 1.0;
  }
  return run;
}

// --- q5: string lookup in PC ------------------------------------------------

Result<QueryRun> BenchmarkWorkload::RunQ5(bool optimized) {
  (void)optimized;
  QueryRun run;
  Stopwatch timer;
  Query query(db_.get(), "pc_text");
  query.Where(Eq(Attr(meta_keys::kText), Lit(pc_.config().target_string)));
  DL_ASSIGN_OR_RETURN(PlanExplanation plan, query.Explain());
  DL_ASSIGN_OR_RETURN(auto first, query.FirstBy(meta_keys::kFrameNo));
  run.millis = timer.ElapsedMillis();
  run.result_count = first.has_value() ? 1 : 0;
  run.plan = plan.description;
  if (first.has_value()) {
    const int64_t image =
        first->meta().Get(meta_keys::kFrameNo).AsInt().ValueOr(-1);
    run.recall = image == pc_.TargetImage() ? 1.0 : 0.0;
    run.precision = run.recall;
  } else {
    run.recall = 0.0;
    run.precision = 1.0;
  }
  return run;
}

// --- q6: pedestrian pairs (p1 behind p2) -------------------------------------

Result<QueryRun> BenchmarkWorkload::RunQ6(bool optimized) {
  DL_ASSIGN_OR_RETURN(ViewCache * view, db_->GetView("traffic_dets"));
  QueryRun run;
  Stopwatch timer;

  // Common predicates over (p1, p2) tuples.
  ExprPtr persons = And(Eq(Attr(0, meta_keys::kLabel), Lit("person")),
                        Eq(Attr(1, meta_keys::kLabel), Lit("person")));
  ExprPtr behind = Gt(Attr(0, meta_keys::kDepth),
                      Add(Attr(1, meta_keys::kDepth),
                          Lit(config_.q6_depth_margin)));
  ExprPtr distinct =
      Ne(Attr(0, meta_keys::kPatchId), Attr(1, meta_keys::kPatchId));
  ExprPtr residual = And(And(persons, behind), distinct);

  std::vector<PatchTuple> pairs;
  JoinStats stats;
  if (optimized) {
    // Index equality join on frameno (same-frame pairs only), residual
    // depth/label predicate.
    auto left = MakeVectorSource(view->patches);
    auto right = MakeVectorSource(view->patches);
    DL_ASSIGN_OR_RETURN(pairs,
                        HashEqualityJoin(left.get(), right.get(),
                                         meta_keys::kFrameNo, residual,
                                         &stats));
    // Explain which join core ran (radix vs shared-build) with its phase
    // breakdown, same as scan plans report their access path.
    run.plan =
        Planner::ExplainJoin(meta_keys::kFrameNo, residual, stats).description;
  } else {
    auto left = MakeVectorSource(view->patches);
    auto right = MakeVectorSource(view->patches);
    ExprPtr same_frame =
        Eq(Attr(0, meta_keys::kFrameNo), Attr(1, meta_keys::kFrameNo));
    DL_ASSIGN_OR_RETURN(pairs,
                        NestedLoopJoin(left.get(), right.get(),
                                       And(same_frame, residual), &stats));
    run.plan = "nested-loop θ-join over all detection pairs";
  }
  run.millis = timer.ElapsedMillis();
  run.result_count = pairs.size();

  // Accuracy: map each endpoint to its ground-truth pedestrian and check
  // the depth ordering truth per frame.
  std::set<std::tuple<int64_t, int, int>> found;
  for (const PatchTuple& t : pairs) {
    const int64_t frameno =
        t[0].meta().Get(meta_keys::kFrameNo).AsInt().ValueOr(-1);
    const int a = TruthObjectIdFor(t[0]);
    const int b = TruthObjectIdFor(t[1]);
    if (a >= 0 && b >= 0 && a != b) found.insert({frameno, a, b});
  }
  std::set<std::tuple<int64_t, int, int>> truth;
  for (int f = 0; f < traffic_.num_frames(); ++f) {
    for (const auto& [behind_id, front_id] : traffic_.BehindPairsAt(f)) {
      truth.insert({f, behind_id, front_id});
    }
  }
  int tp = 0;
  for (const auto& p : found) {
    if (truth.count(p)) ++tp;
  }
  run.precision =
      found.empty() ? 1.0 : static_cast<double>(tp) / found.size();
  run.recall =
      truth.empty() ? 1.0 : static_cast<double>(tp) / truth.size();
  return run;
}

Result<QueryRun> BenchmarkWorkload::RunQuery(int q, bool optimized) {
  switch (q) {
    case 1:
      return RunQ1(optimized);
    case 2:
      return RunQ2(optimized);
    case 3:
      return RunQ3(optimized);
    case 4:
      return RunQ4(optimized);
    case 5:
      return RunQ5(optimized);
    case 6:
      return RunQ6(optimized);
    default:
      return Status::InvalidArgument("query number must be 1..6");
  }
}

// --- Table 1: q4 plan order ---------------------------------------------

Result<PlanAccuracy> BenchmarkWorkload::RunQ4PlanOrder(
    bool filter_first, nn::Device* match_device) {
  DL_ASSIGN_OR_RETURN(ViewCache * view, db_->GetView("traffic_dets"));
  PlanAccuracy out;
  Stopwatch timer;

  auto passes_filter = [this](const Patch& p) {
    auto label = p.meta().Get(meta_keys::kLabel).AsString();
    const double score =
        p.meta().Get(meta_keys::kScore).AsNumeric().ValueOr(0.0);
    return label.ok() && **label == "person" &&
           score >= config_.q4_min_score;
  };

  PatchCollection input;
  if (filter_first) {
    for (const Patch& p : view->patches) {
      if (passes_filter(p)) input.push_back(p);
    }
  } else {
    input = view->patches;
  }

  DedupOptions options;
  options.max_distance = config_.q4_max_distance;
  options.strategy = DedupOptions::Strategy::kAllPairs;
  options.device = match_device;
  auto source = MakeVectorSource(input);
  DL_ASSIGN_OR_RETURN(DedupResult dedup,
                      SimilarityDedup(source.get(), options));
  // Found same-identity pairs under this plan. Match-first keeps pairs
  // whose endpoints clustered together even when one endpoint would have
  // been dropped by the filter — the accuracy effect of Table 1.
  std::vector<std::pair<size_t, size_t>> found_idx;
  if (filter_first) {
    ClusterPairs(
        dedup.cluster_of, [](size_t) { return true; },
        [](size_t, size_t) { return true; }, &found_idx);
  } else {
    ClusterPairs(
        dedup.cluster_of, [](size_t) { return true; },
        [&](size_t a, size_t b) {
          return passes_filter(input[a]) || passes_filter(input[b]);
        },
        &found_idx);
  }
  out.runtime_ms = timer.ElapsedMillis();

  // Ground truth: all pairs of person detections sharing an identity.
  // Work over the full view so both plans are judged against the same
  // truth set.
  std::vector<int> oid(view->patches.size(), -1);
  std::unordered_map<PatchId, size_t> pos_of;
  for (size_t i = 0; i < view->patches.size(); ++i) {
    oid[i] = TruthObjectIdFor(view->patches[i]);
    pos_of[view->patches[i].id()] = i;
  }
  std::set<std::pair<size_t, size_t>> truth;
  std::unordered_map<int, std::vector<size_t>> by_identity;
  for (size_t i = 0; i < view->patches.size(); ++i) {
    if (sim::TrafficCamSim::IsPedestrianId(oid[i])) {
      by_identity[oid[i]].push_back(i);
    }
  }
  for (const auto& [identity, idxs] : by_identity) {
    (void)identity;
    for (size_t a = 0; a < idxs.size(); ++a) {
      for (size_t b = a + 1; b < idxs.size(); ++b) {
        truth.insert({std::min(idxs[a], idxs[b]),
                      std::max(idxs[a], idxs[b])});
      }
    }
  }

  int tp = 0, fp = 0;
  for (auto [a, b] : found_idx) {
    // Translate plan-local indices to view positions via patch ids.
    const size_t va = pos_of[input[a].id()];
    const size_t vb = pos_of[input[b].id()];
    const auto key = std::make_pair(std::min(va, vb), std::max(va, vb));
    if (truth.count(key)) {
      ++tp;
    } else {
      ++fp;
    }
  }
  out.precision = (tp + fp) == 0 ? 1.0
                                 : static_cast<double>(tp) / (tp + fp);
  out.recall = truth.empty()
                   ? 1.0
                   : static_cast<double>(tp) /
                         static_cast<double>(truth.size());
  return out;
}

Result<double> BenchmarkWorkload::Q2AccuracyFromView(
    const std::string& view_name) {
  Query query(db_.get(), view_name);
  query.Where(Eq(Attr(meta_keys::kLabel), Lit("car")));
  DL_ASSIGN_OR_RETURN(uint64_t frames,
                      query.CountDistinct(meta_keys::kFrameNo));
  const int truth = traffic_.FramesWithVehicles();
  if (truth == 0) return 1.0;
  return 1.0 - sim::RelativeError(static_cast<double>(frames),
                                  static_cast<double>(truth));
}

}  // namespace bench
}  // namespace deeplens
