// The DeepLens type system (paper §4.2 "Validation"): every pipeline stage
// declares the schema of the patch collection it produces — attribute
// types, closed label domains, and patch resolution constraints — so
// downstream operators can be validated before execution ("can this
// filter's label plausibly be produced by that detector?").
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/value.h"

namespace deeplens {

/// Declared attribute of a patch collection's metadata.
struct AttributeSpec {
  std::string name;
  ValueType type = ValueType::kNull;
  /// Closed domain for string attributes (e.g. a detector's label set);
  /// empty = open domain.
  std::set<std::string> domain;
};

/// \brief Schema of a patch collection.
class PatchSchema {
 public:
  PatchSchema() = default;

  /// Declares (or overwrites) an attribute.
  PatchSchema& AddAttribute(AttributeSpec spec);
  PatchSchema& AddAttribute(const std::string& name, ValueType type) {
    return AddAttribute(AttributeSpec{name, type, {}});
  }

  /// Declares the fixed resolution patches carry (0 = unconstrained).
  /// Almost all neural networks require fixed input resolutions (§4.2).
  PatchSchema& SetResolution(int width, int height) {
    width_ = width;
    height_ = height;
    return *this;
  }

  bool HasAttribute(const std::string& name) const;
  const AttributeSpec* FindAttribute(const std::string& name) const;
  const std::map<std::string, AttributeSpec>& attributes() const {
    return attrs_;
  }
  int width() const { return width_; }
  int height() const { return height_; }

  /// Validates that an equality/range predicate over `attr` with constant
  /// `value` is type-correct and, for closed string domains, satisfiable.
  Status ValidatePredicate(const std::string& attr,
                           const MetaValue& value) const;

  /// Validates that `inner` (a consumer's requirements) is satisfied by
  /// this schema: every required attribute exists with a compatible type.
  Status ValidateConsumer(const PatchSchema& required) const;

  /// Schema of the join of two collections (attribute union; conflicting
  /// types fail).
  static Result<PatchSchema> Join(const PatchSchema& left,
                                  const PatchSchema& right);

  std::string ToString() const;

 private:
  std::map<std::string, AttributeSpec> attrs_;
  int width_ = 0;
  int height_ = 0;
};

}  // namespace deeplens
