#include "core/session.h"

#include "cache/inflight.h"
#include "exec/batch_former.h"

namespace deeplens {

std::string Session::scheduling_class() const {
  std::string cls = tenant_.empty() ? std::string("anonymous")
                                    : "tenant '" + tenant_ + "'";
  cls += " weight " + std::to_string(weight_);
  return cls;
}

Result<PlanExplanation> Session::Explain(Query& query) const {
  DL_ASSIGN_OR_RETURN(PlanExplanation plan, query.Explain());
  plan.scheduling_class = scheduling_class();
  plan.inflight_dedup_hits = db_->inflight_table()->Stats().joined;
  const BatchFormerStats former = db_->batch_former()->Stats();
  plan.device_batches_formed = former.invocations;
  plan.device_batched_patches = former.batched_items;
  return plan;
}

}  // namespace deeplens
