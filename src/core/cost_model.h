// Cost model feeding the planner's UDF optimizer (paper §5 "Visual Query
// Optimizer": NN UDF placement dominates visual query cost, so the
// planner needs live per-UDF runtime and selectivity figures, not static
// guesses). Three feedback loops meet here:
//
//  * Runtime profiles: every NN UDF evaluation (exec/nn_udf.cc) records
//    its wall time, split into cache-hit and full-model EWMAs, so the
//    expected per-row cost of a UDF conjunct is hit_ms·hr + miss_ms·(1−hr)
//    with `hr` taken from the live InferenceCache stats at plan time.
//  * Selectivity profiles: CompiledPredicate counts per-conjunct
//    evaluated/passed rows (batched, one atomic flush per eval call) and
//    publishes them keyed by the conjunct's shape fingerprint, so repeat
//    queries rank conjuncts by *observed* pass rates.
//  * Both stores are process-global leaky singletons: expressions,
//    benches, and morsel workers publish into them without any plumbing,
//    and no static-destruction-order hazard exists because they are never
//    destroyed.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "exec/expression.h"

namespace deeplens {

/// Per-UDF runtime profile: exponentially-weighted moving averages of
/// the cache-hit path (lookup-bound) and the full-model path
/// (compute-bound), kept separate because they differ by orders of
/// magnitude and the mix depends on the live cache hit rate.
struct UdfCostProfile {
  double hit_ms = 0.0;
  double miss_ms = 0.0;
  uint64_t hit_samples = 0;
  uint64_t miss_samples = 0;
};

/// Per-model device-batch profile: EWMAs over whole-batch invocations
/// flushed by the cross-query batch former (exec/batch_former.h).
/// Single-item invocations are tracked separately — they are the
/// "overhead only" observations that let EstimateBatchCost split an
/// invocation into fixed and marginal parts.
struct DeviceBatchProfile {
  double invocation_ms = 0.0;  // one batched invocation, wall ms
  double mean_items = 0.0;     // patches per invocation
  double single_ms = 0.0;      // invocations that carried one patch
  uint64_t invocations = 0;
  uint64_t single_invocations = 0;
};

/// Two-part cost decomposition of a batched device invocation, surfaced
/// through Explain() so plans can report expected batching benefit.
struct BatchCostEstimate {
  double overhead_ms = 0.0;   // fixed per-invocation cost (launch, sync)
  double marginal_ms = 0.0;   // added cost per extra patch
  double mean_items = 1.0;    // observed batch occupancy
  double amortized_speedup = 1.0;  // single-item cost / per-patch batched
};

/// Stable fingerprint of one conjunct's *shape*. Attr-vs-literal
/// comparisons are literal-abstracted (op, slot, key only) so observed
/// selectivity pools across query constants; opaque conjuncts (UDF
/// comparisons, geometry, arithmetic) are keyed by their full text.
uint64_t ConjunctShapeFingerprint(const ExprPtr& conjunct);

/// \brief Process-global cost observations. Thread-safe; all methods may
/// be called concurrently from morsel workers and planning threads.
class CostModel {
 public:
  /// The singleton (leaky: never destroyed, safe to publish into from
  /// static-destruction time).
  static CostModel* Global();

  /// Records one UDF evaluation of `model` taking `ms` wall milliseconds.
  /// `cache_hit` selects which EWMA absorbs the sample.
  void RecordUdfEval(const std::string& model, bool cache_hit, double ms);

  /// Profile for `model`, if any evaluation has been recorded.
  std::optional<UdfCostProfile> UdfProfile(const std::string& model) const;

  /// Expected per-row cost (ms) of running `model` given the live cache
  /// hit rate. Falls back to conservative defaults (`kDefaultMissMs` /
  /// `kDefaultHitMs`) for sides of the profile with no samples yet.
  double ExpectedUdfMs(const std::string& model, double hit_rate) const;

  /// Records one batched device invocation of `model` covering `items`
  /// patches in `ms` wall milliseconds (called from the batch former's
  /// flush path).
  void RecordDeviceBatch(const std::string& model, uint64_t items, double ms);

  /// Batch profile for `model`, if any invocation has been recorded.
  std::optional<DeviceBatchProfile> DeviceBatch(const std::string& model) const;

  /// Overhead/marginal decomposition for `model`. The single-item
  /// reference point is the single-invocation EWMA when observed,
  /// otherwise the unbatched miss EWMA; nullopt until at least one batch
  /// has been profiled.
  std::optional<BatchCostEstimate> EstimateBatchCost(
      const std::string& model) const;

  /// Records that a conjunct with shape `shape_fp` was evaluated over
  /// `evaluated` rows of which `passed` survived.
  void RecordSelectivity(uint64_t shape_fp, uint64_t evaluated,
                         uint64_t passed);

  /// Observed pass rate for shape `shape_fp`; `fallback` when fewer than
  /// `kMinSelectivitySamples` rows have been observed.
  double Selectivity(uint64_t shape_fp, double fallback) const;

  /// Drops all profiles (test isolation).
  void Clear();

  static constexpr double kDefaultMissMs = 1.0;
  static constexpr double kDefaultHitMs = 0.005;
  static constexpr double kEwmaAlpha = 0.2;
  static constexpr uint64_t kMinSelectivitySamples = 32;

 private:
  struct SelectivityCounts {
    uint64_t evaluated = 0;
    uint64_t passed = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, UdfCostProfile> udf_;
  std::unordered_map<std::string, DeviceBatchProfile> device_batch_;
  std::unordered_map<uint64_t, SelectivityCounts> selectivity_;
};

}  // namespace deeplens
