// Fuzz target: the codec bitstream readers — every byte stream a stored
// video or image hands the decoder at read time. The first input byte
// selects the decoder (so one corpus explores all three); the rest is
// the bitstream. Invariants:
//
//  1. No decoder crashes, overflows, or trips a sanitizer on any input;
//     malformed streams are typed errors.
//  2. Anything a decoder accepts must re-encode and decode again without
//     error (decoded output is a real image, not a view into the input).
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "codec/image_codec.h"
#include "codec/video_codec.h"
#include "common/slice.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using deeplens::Image;
  using deeplens::Slice;

  if (size == 0) return 0;
  const uint8_t selector = data[0];
  const Slice stream(data + 1, size - 1);

  switch (selector % 3) {
    case 0: {
      auto img = deeplens::codec::DecodeImage(stream);
      if (!img.ok()) return 0;
      // Accepted LJPG: re-encoding the decoded image must stay decodable
      // (the decoder's output obeys the encoder's input contract).
      const auto bytes =
          deeplens::codec::EncodeImage(*img, deeplens::codec::Quality::kHigh);
      if (!deeplens::codec::DecodeImage(Slice(bytes)).ok()) std::abort();
      break;
    }
    case 1: {
      auto img = deeplens::codec::DeserializeRawImage(stream);
      if (!img.ok()) return 0;
      // Raw serialization is lossless: the round trip is byte-exact.
      const auto bytes = deeplens::codec::SerializeRawImage(*img);
      auto again = deeplens::codec::DeserializeRawImage(Slice(bytes));
      if (!again.ok() || again->bytes() != img->bytes()) std::abort();
      break;
    }
    default: {
      auto frames = deeplens::codec::DecodeVideo(stream);
      // Decoded frames (if any) must be well-formed enough to re-encode.
      if (frames.ok() && !frames->empty()) {
        deeplens::codec::VideoCodecOptions options;
        options.quality = deeplens::codec::Quality::kLow;
        if (!deeplens::codec::EncodeVideo(*frames, options).ok()) {
          std::abort();
        }
      }
      break;
    }
  }
  return 0;
}
